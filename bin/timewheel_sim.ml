(* timewheel-sim: command-line driver for the timewheel group
   communication service.

   Subcommands:
     run         simulate a scenario and print the observation trace
     experiment  run a paper-reproduction experiment (e1..e10, ablate)
     chaos       fuzz random fault plans against the membership invariants
     list        list scenarios and experiments *)

open Cmdliner
open Tasim
open Timewheel
open Broadcast

(* scenarios live in Harness.Scenario, shared with the tests *)

let pid = Proc_id.of_int

let run_scenario ~name ~n ~seed ~omission ~duration_s ~workload ~verbose
    ~timeline =
  match Harness.Scenario.find name with
  | None ->
    Fmt.epr "unknown scenario %S; try `timewheel-sim list'@." name;
    exit 1
  | Some scenario ->
    let svc = Harness.Run.service ~seed ~omission ~n () in
    let trace =
      if timeline then Some (Service.enable_trace svc) else None
    in
    Service.on_view svc (fun proc view ->
        Fmt.pr "[%a] %a view #%a %a@." Time.pp view.Service.at Proc_id.pp proc
          Group_id.pp view.Service.group_id Proc_set.pp view.Service.group);
    Service.on_obs svc (fun at proc obs ->
        match obs with
        | Member.Suspected _ | Member.Transition _ when verbose ->
          Fmt.pr "[%a] %a %a@." Time.pp at Proc_id.pp proc Member.pp_obs obs
        | Member.Delivered _ when verbose ->
          Fmt.pr "[%a] %a %a@." Time.pp at Proc_id.pp proc Member.pp_obs obs
        | _ -> ());
    let svc = Harness.Run.settle svc in
    let t = Service.now svc in
    Fmt.pr "scenario %S: %s@.expected: %s@.@." scenario.Harness.Scenario.name
      scenario.Harness.Scenario.doc scenario.Harness.Scenario.expected_outcome;
    scenario.Harness.Scenario.inject svc t;
    if workload > 0 then
      for i = 0 to workload - 1 do
        Service.submit_at svc
          (Time.add t (Time.of_ms (20 * i)))
          (pid (i mod n))
          ~semantics:Semantics.total_strong i
      done;
    Service.run svc ~until:(Time.add t (Time.of_sec duration_s));
    (match Service.agreed_view svc with
    | Some v ->
      Fmt.pr "@.agreed view #%a %a@." Group_id.pp v.Service.group_id Proc_set.pp
        v.Service.group
    | None -> Fmt.pr "@.no agreed view among up-to-date members@.");
    if workload > 0 then
      Fmt.pr "survivor logs prefix-consistent: %b@."
        (Harness.Run.survivors_consistent svc);
    Fmt.pr "@.message counters:@.";
    List.iter
      (fun (k, v) -> Fmt.pr "  %-32s %d@." k v)
      (List.filter
         (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "sent:")
         (Stats.counters (Service.stats svc)));
    match trace with
    | Some trace ->
      Fmt.pr "@.timeline (control messages only):@.";
      List.iter
        (fun (e : Trace.entry) ->
          match e.Trace.event with
          | Trace.Sent { kind; _ }
            when kind = "proposal" || kind = "retransmit" || kind = "nack"
                 || kind = "submit" ->
            ()
          | Trace.Delivered _ -> ()
          | Trace.Dropped { kind; _ }
            when kind = "proposal" || kind = "retransmit" ->
            ()
          | _ -> Fmt.pr "  %a@." Trace.pp_entry e)
        (Trace.entries trace)
    | None -> ()

(* ------------------------------------------------------------------ *)
(* chaos: fuzz fault plans against the membership invariants *)

let artifact_path dir index =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Filename.concat dir (Fmt.str "chaos-%d.json" index)

let run_chaos ~seed ~plans ~n ~ops ~artifact_dir ~replay =
  match replay with
  | Some file -> (
    match Chaos.Plan.load file with
    | Error msg ->
      Fmt.epr "cannot load plan artifact %S: %s@." file msg;
      exit 2
    | Ok plan ->
      Fmt.pr "replaying %a@." Chaos.Plan.pp plan;
      let probe svc =
        Service.on_view svc (fun proc view ->
            Fmt.pr "[%a] %a view #%a %a@." Time.pp view.Service.at Proc_id.pp
              proc Group_id.pp view.Service.group_id Proc_set.pp
              view.Service.group);
        Service.on_obs svc (fun at proc obs ->
            match obs with
            | Member.Suspected _ | Member.Transition _ | Member.Excluded ->
              Fmt.pr "[%a] %a %a@." Time.pp at Proc_id.pp proc Member.pp_obs
                obs
            | _ -> ())
      in
      let outcome = Chaos.Runner.run ~probe plan in
      if Chaos.Runner.ok outcome then begin
        Fmt.pr "PASS: no invariant violation (%d invariant samples)@."
          outcome.Chaos.Runner.views_sampled;
        exit 0
      end
      else begin
        Fmt.pr "FAIL:@.%a@."
          Fmt.(vbox (list Chaos.Runner.pp_violation))
          outcome.Chaos.Runner.violations;
        exit 1
      end)
  | None ->
    let report = Chaos.Fuzz.sweep ~ops ~seed ~plans ~n () in
    Fmt.pr "%a@." Chaos.Fuzz.pp_report report;
    List.iter
      (fun (f : Chaos.Fuzz.failure) ->
        let path = artifact_path artifact_dir f.Chaos.Fuzz.index in
        Chaos.Plan.save path f.Chaos.Fuzz.shrunk;
        Fmt.pr "artifact written: %s (replay with `timewheel-sim chaos \
                --replay %s')@."
          path path)
      report.Chaos.Fuzz.failures;
    exit (if Chaos.Fuzz.ok report then 0 else 1)

(* ------------------------------------------------------------------ *)
(* cmdliner terms *)

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Team size.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let omission_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P" ~doc:"Message omission probability.")

let duration_arg =
  Arg.(
    value & opt int 6
    & info [ "duration" ] ~docv:"SECONDS"
        ~doc:"Simulated seconds after group formation.")

let workload_arg =
  Arg.(
    value & opt int 0
    & info [ "updates" ] ~docv:"K"
        ~doc:"Submit K totally ordered updates during the run.")

let verbose_arg =
  Arg.(
    value & flag
    & info [ "v"; "verbose" ] ~doc:"Print suspicions, transitions, deliveries.")

let timeline_arg =
  Arg.(
    value & flag
    & info [ "timeline" ]
        ~doc:"Print the control-message timeline at the end of the run.")

let quick_arg =
  Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweeps.")

let scenario_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SCENARIO" ~doc:"Scenario name (see `list').")

let experiment_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id: e1 .. e10, ablate, or `all'.")

let run_cmd =
  let doc = "simulate a fault scenario and print the membership trace" in
  let term =
    Term.(
      const (fun name n seed omission duration_s workload verbose timeline ->
          run_scenario ~name ~n ~seed ~omission ~duration_s ~workload ~verbose
            ~timeline)
      $ scenario_arg $ n_arg $ seed_arg $ omission_arg $ duration_arg
      $ workload_arg $ verbose_arg $ timeline_arg)
  in
  Cmd.v (Cmd.info "run" ~doc) term

let chaos_cmd =
  let doc =
    "fuzz seeded fault plans against the membership invariants; violating \
     plans are shrunk to a minimal counterexample and written as replayable \
     JSON artifacts"
  in
  let plans_arg =
    Arg.(
      value & opt int 20
      & info [ "plans" ] ~docv:"K" ~doc:"Number of fault plans to fuzz.")
  in
  let ops_arg =
    Arg.(
      value
      & opt int Chaos.Fuzz.default_ops
      & info [ "ops" ] ~docv:"OPS" ~doc:"Fault ops per generated plan.")
  in
  let artifact_dir_arg =
    Arg.(
      value & opt string "."
      & info [ "artifact-dir" ] ~docv:"DIR"
          ~doc:"Directory for counterexample artifacts.")
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Replay a plan artifact instead of sweeping; exits non-zero when \
             the plan still violates an invariant.")
  in
  let term =
    Term.(
      const (fun seed plans n ops artifact_dir replay ->
          run_chaos ~seed ~plans ~n ~ops ~artifact_dir ~replay)
      $ seed_arg $ plans_arg $ n_arg $ ops_arg $ artifact_dir_arg $ replay_arg)
  in
  Cmd.v (Cmd.info "chaos" ~doc) term

let experiment_cmd =
  let doc = "run a paper-reproduction experiment (tables on stdout)" in
  let run id quick =
    if id = "all" then Harness.Experiments.run_all ~quick ()
    else
      match Harness.Experiments.find id with
      | Some e -> List.iter Harness.Table.print (e.Harness.Experiments.run ~quick ())
      | None ->
        Fmt.epr "unknown experiment %S@." id;
        exit 1
  in
  let term = Term.(const run $ experiment_arg $ quick_arg) in
  Cmd.v (Cmd.info "experiment" ~doc) term

let list_cmd =
  let doc = "list scenarios and experiments" in
  let run () =
    Fmt.pr "scenarios:@.";
    List.iter
      (fun s ->
        Fmt.pr "  %-16s %s@." s.Harness.Scenario.name s.Harness.Scenario.doc)
      Harness.Scenario.all;
    Fmt.pr "@.experiments:@.";
    List.iter
      (fun e ->
        Fmt.pr "  %-4s %s@." e.Harness.Experiments.id
          e.Harness.Experiments.title)
      Harness.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let main =
  let doc = "the timewheel group membership protocol, simulated" in
  let info = Cmd.info "timewheel-sim" ~version:"1.0.0" ~doc in
  Cmd.group info [ run_cmd; experiment_cmd; chaos_cmd; list_cmd ]

let () = exit (Cmd.eval main)
