(* timewheel-live: the timewheel stack on real UDP sockets and the
   wall clock.

   Subcommands:
     demo    run an N-member group in one process (N sockets on
             localhost), optionally kill and restart a member, print
             installed views and stats
     member  run a single member (one-process-per-member deployment:
             start N of these, one per id, sharing a base port)
     chaos   run the seeded live chaos scenarios (kill/restart churn,
             storage faults, link impairment, paused members) and
             check the protocol's safety invariants

   demo and member accept --supervise: the run is wrapped in
   Runtime.Supervisor (jittered exponential backoff, max-restart cap),
   so a crashed body restarts and — with a --state-dir — rejoins
   epoch-aware from stable storage. *)

open Cmdliner
open Tasim
open Broadcast
open Runtime

let pp_view ppf (v : Live.view) =
  Fmt.pf ppf "[%a] %a installed view #%a %a" Time.pp v.Live.at Proc_id.pp
    v.Live.proc Group_id.pp v.Live.group_id Proc_set.pp v.Live.group

let print_stats nodes =
  List.iter
    (fun node ->
      let counters =
        List.filter
          (fun (name, _) -> String.length name >= 5 && String.sub name 0 5 = "live:")
          (Stats.counters (Node.stats node))
      in
      Fmt.pr "%a:%a@." Proc_id.pp (Node.self node)
        Fmt.(list ~sep:nop (fun ppf (k, v) -> Fmt.pf ppf " %s=%d" k v))
        counters)
    nodes

(* ---------------------------------------------------------------- *)
(* supervision: demo/member bodies under Runtime.Supervisor *)

let supervised ~supervise ~max_restarts body =
  if not supervise then body ~restarts:0
  else
    let policy = { Supervisor.default_policy with max_restarts } in
    match
      Supervisor.run ~policy
        ~on_restart:(fun ~restarts ~backoff ~reason ->
          Fmt.epr "timewheel-live: body died (%s); restart %d in %a@." reason
            restarts Time.pp backoff)
        body
    with
    | Supervisor.Done restarts ->
      if restarts > 0 then
        Fmt.epr "timewheel-live: clean exit after %d restart(s)@." restarts;
      0
    | Supervisor.Gave_up { restarts; last } ->
      Fmt.epr "timewheel-live: giving up after %d restart(s): %s@." restarts
        last;
      125

(* ---------------------------------------------------------------- *)
(* demo: in-process multi-instance *)

let demo_once n base_port no_batch kill_spec kill_after restart_after duration
    submit verbose =
  let cfg =
    Live.config ~n ~base_port
      ?batching:(if no_batch then Some false else None)
      ()
  in
  let recorder = Live.recorder () in
  let on_log =
    if verbose then Some (fun p line -> Fmt.epr "%a| %s@." Proc_id.pp p line)
    else None
  in
  let clock, cluster = Live.in_process cfg ~recorder ?on_log () in
  (* release the ports whatever happens — a supervised restart rebinds *)
  Fun.protect ~finally:(fun () -> List.iter Node.kill (Cluster.nodes cluster))
  @@ fun () ->
  let seen = ref 0 in
  let drain_views () =
    (* recorder lists are newest-first; print the suffix we have not
       shown yet, oldest first *)
    let views = recorder.Live.views in
    let fresh = List.filteri (fun i _ -> i < List.length views - !seen) views in
    List.iter (Fmt.pr "%a@." pp_view) (List.rev fresh);
    seen := List.length views
  in
  let run_span span =
    let deadline = Time.add (Clock.now clock) span in
    let rec go () =
      ignore
        (Cluster.run_until cluster ~deadline
           ~poll_cap:(Time.of_ms 50) (fun () ->
             drain_views ();
             false));
      if Time.compare (Clock.now clock) deadline < 0 then go ()
    in
    go ()
  in
  Cluster.start cluster;
  Fmt.pr "started %d members on 127.0.0.1:%d-%d@." n base_port
    (base_port + n - 1);

  run_span kill_after;
  let victim =
    match kill_spec with
    | None -> None
    | Some "decider" -> Live.decider cluster
    | Some id -> (
      match int_of_string_opt id with
      | Some i when i >= 0 && i < n -> Some (Proc_id.of_int i)
      | _ ->
        Fmt.epr "timewheel-live: --kill expects a member id or 'decider'@.";
        exit 124)
  in
  (match victim with
  | None -> ()
  | Some p ->
    Node.kill (Cluster.node cluster p);
    Fmt.pr "killed %a at %a@." Proc_id.pp p Time.pp (Clock.now clock);
    run_span restart_after;
    Node.restart (Cluster.node cluster p);
    Fmt.pr "restarted %a at %a@." Proc_id.pp p Time.pp (Clock.now clock));

  (* let the membership settle before broadcasting: an update submitted
     mid-rejoin is legitimately not delivered by the joiner (members
     only deliver updates ordered in views they install) *)
  let settled () =
    match Live.agreed_view cluster with
    | Some (group, _) -> Proc_set.equal group (Proc_set.full ~n)
    | None -> false
  in
  ignore
    (Cluster.run_until cluster
       ~deadline:(Time.add (Clock.now clock) duration)
       ~poll_cap:(Time.of_ms 50)
       (fun () ->
         drain_views ();
         settled ()));
  for i = 1 to submit do
    Live.submit
      (Cluster.node cluster (Proc_id.of_int ((i - 1) mod n)))
      ~semantics:Semantics.total_strong
      (Fmt.str "update-%d" i)
  done;
  let deadline = Time.add (Clock.now clock) duration in
  ignore
    (Cluster.run_until cluster ~deadline ~poll_cap:(Time.of_ms 50) (fun () ->
         drain_views ();
         submit > 0 && List.length recorder.Live.delivered >= submit * n));
  drain_views ();

  let ok =
    match Live.agreed_view cluster with
    | Some (group, group_id) ->
      Fmt.pr "final view: #%a %a@." Group_id.pp group_id Proc_set.pp group;
      Proc_set.equal group (Proc_set.full ~n)
    | None ->
      Fmt.pr "final view: members disagree or none installed@.";
      false
  in
  let delivered = List.length recorder.Live.delivered in
  if submit > 0 then
    Fmt.pr "deliveries: %d (of %d expected)@." delivered (submit * n);
  print_stats (Cluster.nodes cluster);
  if ok && (submit = 0 || delivered = submit * n) then 0 else 1

let demo n base_port no_batch kill_spec kill_after restart_after duration
    submit verbose supervise max_restarts =
  supervised ~supervise ~max_restarts (fun ~restarts:_ ->
      demo_once n base_port no_batch kill_spec kill_after restart_after
        duration submit verbose)

(* ---------------------------------------------------------------- *)
(* member: one process per member *)

let member_once me n base_port no_batch state_dir duration verbose =
  if me < 0 || me >= n then begin
    Fmt.epr "timewheel-live: --me must be in [0, %d)@." n;
    exit 124
  end;
  let store =
    match state_dir with
    | Some dir -> Live_store.on_disk ~dir ()
    | None -> Live_store.in_memory ()
  in
  let cfg =
    Live.config ~n ~base_port ~store
      ?batching:(if no_batch then Some false else None)
      ()
  in
  let recorder = Live.recorder () in
  let clock = Clock.create () in
  let self = Proc_id.of_int me in
  let on_log =
    if verbose then Some (fun line -> Fmt.epr "%a| %s@." Proc_id.pp self line)
    else None
  in
  let node = Live.mk_node cfg ~clock ~self ~recorder ?on_log () in
  let cluster = Cluster.create ~clock ~nodes:[ node ] in
  Fun.protect ~finally:(fun () -> Node.kill node) @@ fun () ->
  Cluster.start cluster;
  Fmt.pr "member %a up on 127.0.0.1:%d (group ports %d-%d)@." Proc_id.pp self
    (base_port + me) base_port
    (base_port + n - 1);
  let deadline = Time.add (Clock.now clock) duration in
  let seen = ref 0 in
  ignore
    (Cluster.run_until cluster ~deadline ~poll_cap:(Time.of_ms 50) (fun () ->
         let views = recorder.Live.views in
         let fresh =
           List.filteri (fun i _ -> i < List.length views - !seen) views
         in
         List.iter (Fmt.pr "%a@." pp_view) (List.rev fresh);
         seen := List.length views;
         false));
  (match Live.member_of node with
  | Some m ->
    Fmt.pr "final: view #%a %a (form epoch %d)@." Group_id.pp
      (Timewheel.Member.group_id m) Proc_set.pp (Timewheel.Member.group m)
      (Timewheel.Member.form_epoch m)
  | None -> Fmt.pr "final: clock never synchronized@.");
  print_stats [ node ];
  match Live.member_of node with
  | Some m when Timewheel.Member.has_group m -> 0
  | _ -> 1

let member me n base_port no_batch state_dir duration verbose supervise
    max_restarts =
  supervised ~supervise ~max_restarts (fun ~restarts:_ ->
      member_once me n base_port no_batch state_dir duration verbose)

(* ---------------------------------------------------------------- *)
(* chaos: the seeded live chaos scenarios *)

let chaos scenario_names seed runs base_port list_only =
  if list_only then begin
    List.iter
      (fun (s : Chaos.Live.scenario) ->
        Fmt.pr "%-18s n=%d  %s@." s.Chaos.Live.name s.Chaos.Live.n
          s.Chaos.Live.describe)
      Chaos.Live.scenarios;
    0
  end
  else begin
    let chosen =
      match scenario_names with
      | [] -> Chaos.Live.scenarios
      | names ->
        List.map
          (fun nm ->
            match Chaos.Live.find nm with
            | Some s -> s
            | None ->
              Fmt.epr "timewheel-live: unknown scenario %s (try --list)@." nm;
              exit 124)
          names
    in
    let all_ok = ref true in
    List.iteri
      (fun i s ->
        let report =
          Chaos.Live.sweep ~runs ~base_port:(base_port + (i * 256)) ~seed s
        in
        Fmt.pr "%a@." Chaos.Live.pp_report report;
        if not (Chaos.Live.report_ok report) then all_ok := false)
      chosen;
    if !all_ok then 0 else 1
  end

(* ---------------------------------------------------------------- *)
(* cmdliner plumbing *)

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Group size.")

let base_port_arg =
  Arg.(
    value & opt int 47700
    & info [ "base-port" ] ~docv:"PORT"
        ~doc:"Member $(i,i) binds UDP port PORT+$(i,i) on 127.0.0.1.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print automaton log lines.")

let no_batch_arg =
  Arg.(
    value & flag
    & info [ "no-batch" ]
        ~doc:
          "Force the portable per-datagram sendto/recvfrom path instead of \
           the batched sendmmsg/recvmmsg syscalls (same effect as \
           $(b,TW_MMSG=0); frame bytes and counters are identical either \
           way).")

let supervise_arg =
  Arg.(
    value & flag
    & info [ "supervise" ]
        ~doc:
          "Restart the run when it dies (an exception or a nonzero result), \
           with jittered exponential backoff; with $(b,--state-dir) each \
           restart rejoins epoch-aware from stable storage.")

let max_restarts_arg =
  Arg.(
    value
    & opt int Supervisor.default_policy.Supervisor.max_restarts
    & info [ "max-restarts" ] ~docv:"K"
        ~doc:"Give up after K supervised restarts.")

let seconds ~default names doc =
  Arg.(
    value
    & opt float default
    & info names ~docv:"SECONDS" ~doc)
  |> Term.map (fun s -> Time.of_us (int_of_float (s *. 1e6)))

let demo_cmd =
  let kill_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "kill" ] ~docv:"WHO"
          ~doc:
            "Kill a member once the group settles: a member id, or \
             $(b,decider) for whoever holds the decider role.")
  in
  let submit_arg =
    Arg.(
      value & opt int 3
      & info [ "submit" ] ~docv:"K"
          ~doc:"Broadcast K updates after the fault schedule.")
  in
  let term =
    Term.(
      const demo $ n_arg $ base_port_arg $ no_batch_arg $ kill_arg
      $ seconds ~default:2.0 [ "kill-after" ]
          "Settle time before the kill (and before updates when no kill)."
      $ seconds ~default:2.0 [ "restart-after" ]
          "Downtime before the killed member restarts."
      $ seconds ~default:3.0 [ "duration" ]
          "Running time after the fault schedule completes."
      $ submit_arg $ verbose_arg $ supervise_arg $ max_restarts_arg)
  in
  Cmd.v
    (Cmd.info "demo"
       ~doc:
         "Run an N-member group in one process, each member a real UDP \
          endpoint; optionally kill and restart one.")
    term

let member_cmd =
  let me_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "me" ] ~docv:"ID" ~doc:"This member's id, in [0, N).")
  in
  let state_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "state-dir" ] ~docv:"DIR"
          ~doc:
            "Stable-storage directory (shared by restarts of this member). \
             Without it a restart is amnesiac.")
  in
  let term =
    Term.(
      const member $ me_arg $ n_arg $ base_port_arg $ no_batch_arg
      $ state_dir_arg
      $ seconds ~default:10.0 [ "duration" ] "How long to run."
      $ verbose_arg $ supervise_arg $ max_restarts_arg)
  in
  Cmd.v
    (Cmd.info "member"
       ~doc:
         "Run one member; start N of these (ids 0..N-1, same base port) to \
          form a group across processes.")
    term

let chaos_cmd =
  let scenario_arg =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Scenario to run (repeatable; default: all). See $(b,--list).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Root seed; per-run seeds derive from it.")
  in
  let runs_arg =
    Arg.(
      value & opt int 3
      & info [ "runs" ] ~docv:"RUNS" ~doc:"Seeds per scenario.")
  in
  let chaos_port_arg =
    Arg.(
      value
      & opt int Chaos.Live.default_base_port
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:
            "First UDP port; each scenario and each run strides upward from \
             it.")
  in
  let list_arg =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the scenario catalogue and exit.")
  in
  let term =
    Term.(
      const chaos $ scenario_arg $ seed_arg $ runs_arg $ chaos_port_arg
      $ list_arg)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Crash the real thing: seeded kill/restart churn, storage faults, \
          link impairment and paused members against real-socket nodes, \
          checking the same invariants as the simulator's chaos runner.")
    term

let () =
  let doc = "the timewheel group membership stack on live UDP" in
  exit
    (Cmd.eval'
       (Cmd.group
          (Cmd.info "timewheel-live" ~doc ~version:"%%VERSION%%")
          [ demo_cmd; member_cmd; chaos_cmd ]))
