open Tasim

type fault = Torn_write | Lost_flush

let pp_fault ppf = function
  | Torn_write -> Fmt.string ppf "torn-write"
  | Lost_flush -> Fmt.string ppf "lost-flush"

type 'r slot = {
  mutable durable : 'r option;
  mutable cached : 'r option;
      (* a record the process believes it wrote but whose flush was
         lost: visible to the running incarnation, gone after a crash *)
  mutable pending : (Time.t * 'r) option; (* (flush due, record) *)
  mutable fault : fault option;
  mutable writes : int;
  mutable lost : int;
}

type 'r t = { write_latency : Time.t; slots : 'r slot array }

let create ?(write_latency = Time.zero) ~n () =
  if write_latency < Time.zero then
    invalid_arg "Store.create: write_latency must be >= 0";
  {
    write_latency;
    slots =
      Array.init n (fun _ ->
          {
            durable = None;
            cached = None;
            pending = None;
            fault = None;
            writes = 0;
            lost = 0;
          });
  }

let slot t proc =
  let i = Proc_id.to_int proc in
  if i < 0 || i >= Array.length t.slots then
    invalid_arg (Fmt.str "Store: unknown process %a" Proc_id.pp proc);
  t.slots.(i)

(* Complete any pending write whose latency has elapsed. *)
let flush slot ~now =
  match slot.pending with
  | Some (due, r) when Time.compare due now <= 0 ->
    slot.pending <- None;
    slot.durable <- Some r;
    slot.cached <- None
  | Some _ | None -> ()

let write t ~proc ~now r =
  let s = slot t proc in
  flush s ~now;
  s.writes <- s.writes + 1;
  match s.fault with
  | Some Torn_write ->
    (* the write tears mid-way; the atomic-rename journal discards the
       incomplete new version at recovery, the previous record
       survives *)
    s.lost <- s.lost + 1
  | Some Lost_flush ->
    (* the write lands in the cache (this incarnation reads it back)
       but never reaches the disk: a crash reverts to the previous
       durable record *)
    s.lost <- s.lost + 1;
    s.pending <- None;
    s.cached <- Some r
  | None ->
    if Time.equal t.write_latency Time.zero then begin
      s.durable <- Some r;
      s.cached <- None
    end
    else begin
      (* a newer write supersedes an unflushed older one *)
      s.pending <- Some (Time.add now t.write_latency, r);
      s.cached <- Some r
    end

let read t ~proc ~now =
  let s = slot t proc in
  flush s ~now;
  match s.cached with Some _ as c -> c | None -> s.durable

let durable t ~proc ~now =
  let s = slot t proc in
  flush s ~now;
  s.durable

let note_crash t ~proc ~now =
  let s = slot t proc in
  flush s ~now;
  s.pending <- None;
  s.cached <- None

let set_fault t ?proc f =
  match proc with
  | Some p -> (slot t p).fault <- f
  | None -> Array.iter (fun s -> s.fault <- f) t.slots

let writes t ~proc = (slot t proc).writes
let lost_writes t ~proc = (slot t proc).lost
