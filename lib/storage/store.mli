(** Per-process stable storage, modeled inside the simulator.

    One store holds one small record per process — for the membership
    protocol, the {!Timewheel.Member.persistent} view record — with the
    semantics of a write-ahead journal updated by atomic rename:

    - {b atomicity}: a read returns a complete record or nothing, never
      a mix of two writes. In particular, a torn write loses the {e
      new} version; the previous durable record survives.
    - {b durability}: a durable record survives crash and recovery
      ({!note_crash} + re-{!read}), unlike every other simulated
      process resource (automaton state, timers).
    - {b write latency}: with [write_latency > 0], a write becomes
      durable only once the latency has elapsed; a crash before then
      loses it (falling back to the previous durable record). The
      running process reads its own unflushed writes back (cache
      visibility).

    Fault injection ({!set_fault}, wired into [Chaos.Plan]):
    - [Torn_write]: writes during the fault window are torn and lost
      entirely — the previous durable record survives, and even the
      running process reads the old record back.
    - [Lost_flush]: writes during the fault window appear to succeed
      (the running process reads them back) but never become durable —
      after a crash the store reverts to the previous durable record.

    The store is engine-external on purpose: [Engine.crash_at] destroys
    a process's state, while the store's [durable] slots survive; the
    only coupling is that the service layer calls {!note_crash} when it
    crashes a process, modeling the loss of the write-back cache and of
    in-flight (latency-pending) writes. *)

open Tasim

type fault = Torn_write | Lost_flush

val pp_fault : fault Fmt.t

type 'r t

val create : ?write_latency:Time.t -> n:int -> unit -> 'r t
(** A store with one empty slot per process. [write_latency] defaults
    to zero (writes are atomically durable at once). Raises
    [Invalid_argument] on a negative latency. *)

val write : 'r t -> proc:Proc_id.t -> now:Time.t -> 'r -> unit
(** Replace [proc]'s record. Subject to the slot's active fault and to
    the store's write latency. *)

val read : 'r t -> proc:Proc_id.t -> now:Time.t -> 'r option
(** What the running process reads back: its latest cached write if
    one is outstanding, else the durable record. *)

val durable : 'r t -> proc:Proc_id.t -> now:Time.t -> 'r option
(** The record that would survive a crash at [now] (for assertions). *)

val note_crash : 'r t -> proc:Proc_id.t -> now:Time.t -> unit
(** The process crashed: flush any pending write whose latency had
    already elapsed, then drop the rest of the cache. The durable
    record is untouched — that is the point of stable storage. *)

val set_fault : 'r t -> ?proc:Proc_id.t -> fault option -> unit
(** Set (or with [None] clear) the active fault of one process's slot,
    or of every slot when [proc] is omitted. *)

val writes : 'r t -> proc:Proc_id.t -> int
(** Total {!write} calls for [proc] (including faulted ones). *)

val lost_writes : 'r t -> proc:Proc_id.t -> int
(** Writes lost to an active fault (torn or flush-lost). *)
