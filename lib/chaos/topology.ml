(* Topology-shaped chaos scenarios over the timeliness graph. See the
   .mli for the catalogue; each scenario derives its per-seed shape
   (which link, which datacenter, which churners) from one Rng stream,
   so a (scenario, seed) pair pins a run exactly. *)

open Tasim
open Timewheel

type scenario = {
  name : string;
  n : int;
  params : Params.t option;
  describe : string;
  plan : seed:int -> Plan.t;
}

(* ------------------------------------------------------------------ *)
(* scenario catalogue *)

(* [delta] = 10ms and the global delay band is [1ms, 8ms]; a "slow"
   link lives at [8ms, 10ms] with performance failures on top, which
   is timely enough to escape the partition logic and late enough to
   trip fail-aware rejection. *)

let distinct rng ~n ~avoid =
  let rec draw () =
    let p = Rng.int rng n in
    if List.mem p avoid then draw () else p
  in
  draw ()

(* One direction of one link degraded for two seconds while the
   reverse stays timely, with a mid-window crash of a third process so
   a view change must cross the slow link. Lifeguard's slow-processing
   observation, applied to a link instead of a member. *)
let asym_slow_link =
  let n = 5 in
  let plan ~seed =
    let rng = Rng.create seed in
    let a = Rng.int rng n in
    let b = distinct rng ~n ~avoid:[ a ] in
    let c = distinct rng ~n ~avoid:[ a; b ] in
    {
      Plan.seed;
      n;
      ops =
        [
          Plan.Link_window
            {
              at = Time.of_ms 200;
              until = Time.of_ms 2200;
              src = Some a;
              dst = Some b;
              delay_min = Time.of_ms 8;
              delay_max = Time.of_ms 10;
              omission_prob = 0.05;
              late_prob = 0.4;
              late_delay_max = Time.of_ms 30;
            };
          Plan.Crash { at = Time.of_ms 1000; proc = c };
          Plan.Recover { at = Time.of_ms 2600; proc = c };
        ];
    }
  in
  {
    name = "asym-slow-link";
    n;
    params = None;
    describe = "one directed link at the delta edge, reverse timely";
    plan;
  }

(* Three 2-member datacenters: every cross-DC directed link carries
   correlated extra latency and lateness, then one DC drops off the
   WAN for 800ms and comes back. *)
let multi_dc =
  let n = 6 in
  let dc p = p / 2 in
  let plan ~seed =
    let rng = Rng.create seed in
    let isolated = Rng.int rng 3 in
    let cross_links =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun d ->
              if dc s = dc d then None
              else
                Some
                  (Plan.Link_window
                     {
                       at = Time.of_ms 100;
                       until = Time.of_ms 3000;
                       src = Some s;
                       dst = Some d;
                       delay_min = Time.of_ms 5;
                       delay_max = Time.of_ms 9;
                       omission_prob = 0.02;
                       late_prob = 0.2;
                       late_delay_max = Time.of_ms 25;
                     }))
            (List.init n Fun.id))
        (List.init n Fun.id)
    in
    let block = [ 2 * isolated; (2 * isolated) + 1 ] in
    {
      Plan.seed;
      n;
      ops =
        cross_links
        @ [
            Plan.Partition { at = Time.of_ms 1000; block };
            Plan.Heal { at = Time.of_ms 1800 };
          ];
    }
  in
  {
    name = "multi-dc";
    n;
    params = None;
    describe = "3x2 datacenters, slow WAN links, one DC partitions off";
    plan;
  }

(* Every link of the team pushed toward the fail-aware bounds at once:
   delays just under delta, a large late fraction whose delays
   straddle late_bound = delta + epsilon + sigma = 13ms, and slow
   scheduling eating into sigma. The scenario where fail-awareness
   (late rejection) does all the work. *)
let drift_storm =
  let n = 5 in
  let plan ~seed =
    let rng = Rng.create seed in
    let late_prob = 0.25 +. (0.25 *. Rng.float rng) in
    let late_delay_max = Rng.uniform_time rng (Time.of_ms 16) (Time.of_ms 30) in
    {
      Plan.seed;
      n;
      ops =
        [
          Plan.Link_window
            {
              at = Time.of_ms 200;
              until = Time.of_ms 2700;
              src = None;
              dst = None;
              delay_min = Time.of_ms 7;
              delay_max = Time.of_ms 10;
              omission_prob = 0.02;
              late_prob;
              late_delay_max;
            };
          Plan.Slow_window
            {
              at = Time.of_ms 200;
              until = Time.of_ms 2700;
              prob = 0.3;
              delay_max = Time.of_ms 3;
            };
        ];
    }
  in
  {
    name = "drift-storm";
    n;
    params = None;
    describe = "all links near delta, lateness straddling late_bound";
    plan;
  }

(* Sustained churn at N=64 under gossip dissemination + adaptive
   suspicion (the M3 configuration): three members leave and rejoin on
   overlapping windows while decisions travel by piggyback. *)
let churn_gossip_64 =
  let n = 64 in
  let params =
    Params.make ~n ~dissemination:Broadcast.Dissemination.default_gossip
      ~adaptive_suspicion:true ()
  in
  let plan ~seed =
    let rng = Rng.create seed in
    let p1 = Rng.int rng n in
    let p2 = distinct rng ~n ~avoid:[ p1 ] in
    let p3 = distinct rng ~n ~avoid:[ p1; p2 ] in
    {
      Plan.seed;
      n;
      ops =
        [
          Plan.Crash { at = Time.of_ms 300; proc = p1 };
          Plan.Crash { at = Time.of_ms 900; proc = p2 };
          Plan.Recover { at = Time.of_ms 1600; proc = p1 };
          Plan.Crash { at = Time.of_ms 2200; proc = p3 };
          Plan.Recover { at = Time.of_ms 2900; proc = p2 };
          Plan.Recover { at = Time.of_ms 3500; proc = p3 };
        ];
    }
  in
  {
    name = "churn-gossip-64";
    n;
    params = Some params;
    describe = "N=64 gossip + adaptive suspicion, 3 overlapping leave/rejoins";
    plan;
  }

let scenarios = [ asym_slow_link; multi_dc; drift_storm; churn_gossip_64 ]
let find name = List.find_opt (fun s -> s.name = name) scenarios

(* ------------------------------------------------------------------ *)
(* sweeping and convergence distributions *)

type dist = {
  samples : int;
  min : Time.t;
  p50 : Time.t;
  p90 : Time.t;
  max : Time.t;
  mean : Time.t;
}

let dist_of = function
  | [] -> None
  | times ->
    let a = Array.of_list times in
    Array.sort Time.compare a;
    let k = Array.length a in
    let total = Array.fold_left Time.add Time.zero a in
    Some
      {
        samples = k;
        min = a.(0);
        (* nearest-rank percentiles *)
        p50 = a.(k / 2);
        p90 = a.(Stdlib.min (k - 1) (9 * k / 10));
        max = a.(k - 1);
        mean = Time.div total k;
      }

type failure = { seed : int; plan : Plan.t; outcome : Runner.outcome }

type report = {
  scenario : scenario;
  root_seed : int;
  runs : int;
  failures : failure list;
  formation : dist option;
  reconvergence : dist option;
}

let run_one scenario ~seed = Runner.run ?params:scenario.params (scenario.plan ~seed)

(* Per-run seeds come off a root stream, Fuzz-style, so run k is
   reproducible without running 0..k-1. *)
let run_seeds ~seed ~runs =
  let root = Rng.create seed in
  Array.init runs (fun _ -> Rng.int root 1_000_000_000)

let sweep ?(runs = 5) ~seed (scenario : scenario) =
  let failures = ref [] in
  let formed = ref [] in
  let reconverged = ref [] in
  Array.iter
    (fun run_seed ->
      let plan = scenario.plan ~seed:run_seed in
      let outcome = Runner.run ?params:scenario.params plan in
      if Runner.ok outcome then begin
        formed := outcome.Runner.formed_in :: !formed;
        match outcome.Runner.reconverged_in with
        | Some t -> reconverged := t :: !reconverged
        | None -> ()
      end
      else failures := { seed = run_seed; plan; outcome } :: !failures)
    (run_seeds ~seed ~runs);
  {
    scenario;
    root_seed = seed;
    runs;
    failures = List.rev !failures;
    formation = dist_of !formed;
    reconvergence = dist_of !reconverged;
  }

let ok report = report.failures = []

let minimize scenario plan = Runner.minimize ?params:scenario.params plan

let pp_dist ppf d =
  Fmt.pf ppf "n=%d min=%a p50=%a p90=%a max=%a mean=%a" d.samples Time.pp
    d.min Time.pp d.p50 Time.pp d.p90 Time.pp d.max Time.pp d.mean

let pp_failure ppf f =
  Fmt.pf ppf "@[<v>seed %d:@,%a@,%a@]" f.seed Plan.pp f.plan
    Fmt.(vbox (list Runner.pp_violation))
    f.outcome.Runner.violations

let pp_report ppf r =
  let pp_opt name ppf = function
    | None -> Fmt.pf ppf "%s: (no samples)" name
    | Some d -> Fmt.pf ppf "%s: %a" name pp_dist d
  in
  Fmt.pf ppf "@[<v>topology %s (n=%d, root seed %d, %d runs): %s@,%a@,%a%a@]"
    r.scenario.name r.scenario.n r.root_seed r.runs
    (if r.failures = [] then "clean"
     else Fmt.str "%d FAILING run(s)" (List.length r.failures))
    (pp_opt "formation") r.formation (pp_opt "reconvergence") r.reconvergence
    (fun ppf -> function
      | [] -> ()
      | fs -> Fmt.pf ppf "@,%a" Fmt.(vbox (list pp_failure)) fs)
    r.failures
