(** Topology-shaped chaos: scenario families over the timeliness graph.

    Where {!Fuzz} draws faults uniformly per-message, real deployments
    fail along structure — some {e links} are slow, some sites are far
    away, whole racks leave at once. Each scenario here shapes its
    faults by topology, built on {!Plan.Link_window} (the per-link
    overrides of {!Tasim.Net.set_link}):

    - ["asym-slow-link"] (n=5): one direction of one link at the delta
      edge with lateness and light loss, reverse direction timely, plus
      a crash whose exclusion must cross the slow link;
    - ["multi-dc"] (n=6): three 2-member datacenters, every cross-DC
      directed link carrying correlated latency/lateness, one DC
      partitioned off for 800ms mid-run;
    - ["drift-storm"] (n=5): every link near delta with late delays
      straddling [late_bound = delta + epsilon + sigma], plus slow
      scheduling — the fail-aware rejection path under maximum stress;
    - ["churn-gossip-64"] (n=64): sustained overlapping leave/rejoin
      churn under gossip dissemination and adaptive suspicion (the M3
      configuration).

    A (scenario, seed) pair is fully deterministic: the seed picks the
    scenario's shape (which link, which DC, which churners) and doubles
    as the engine seed. {!sweep} runs a scenario across seeds derived
    from one root ({!Fuzz}-style) and aggregates the convergence-time
    distributions that become the [topology_runs] series of
    [BENCH_engine.json]. *)

open Tasim
open Timewheel

type scenario = {
  name : string;
  n : int;
  params : Params.t option;
      (** protocol-parameter override ([churn-gossip-64] runs gossip);
          [None] = defaults *)
  describe : string;
  plan : seed:int -> Plan.t;
      (** deterministic in [seed]; the plan's seed is the run's engine
          seed, so a saved plan replays exactly (under [params]) *)
}

val scenarios : scenario list
(** The catalogue, in the order above. *)

val find : string -> scenario option

val run_one : scenario -> seed:int -> Runner.outcome

val minimize : scenario -> Plan.t -> Plan.t
(** {!Runner.minimize} under the scenario's params. *)

(** {1 Sweeps and convergence distributions} *)

type dist = {
  samples : int;
  min : Time.t;
  p50 : Time.t;  (** nearest-rank *)
  p90 : Time.t;
  max : Time.t;
  mean : Time.t;
}

val dist_of : Time.t list -> dist option
(** Nearest-rank distribution of a sample list; [None] when empty.
    Shared with the live chaos driver's recovery-time series. *)

type failure = { seed : int; plan : Plan.t; outcome : Runner.outcome }

type report = {
  scenario : scenario;
  root_seed : int;
  runs : int;
  failures : failure list;
  formation : dist option;
      (** formation times of the clean runs; [None] when none *)
  reconvergence : dist option;
      (** post-fault heal-to-agreed-full-view times of the clean runs
          (cycle-granular, see {!Runner.outcome}) *)
}

val sweep : ?runs:int -> seed:int -> scenario -> report
(** Run [runs] seeds (default 5) derived from the root [seed]. *)

val ok : report -> bool

val pp_dist : dist Fmt.t
val pp_failure : failure Fmt.t
val pp_report : report Fmt.t
