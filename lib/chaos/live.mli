(** Live chaos: seeded fault scenarios against the real runtime.

    Where {!Runner} perturbs the simulator, this driver crashes the
    real thing: an in-process {!Runtime.Cluster} of real-UDP
    {!Runtime.Live} nodes on localhost, perturbed with the live
    counterparts of the simulator's faults — {!Runtime.Node.kill} /
    [restart] churn, {!Runtime.Transport.impair} windows,
    {!Runtime.Live_store.set_fault} storage-fault windows, and
    {!Runtime.Node.pause} (the SIGSTOP analog). Between and after the
    perturbations it checks the same safety properties as the sim
    runner:

    - {!Timewheel.Invariant.check_all} over the live member states;
    - the {e epoch ratchet}: every member's installed group ids are
      strictly increasing (lexicographic), across restarts included;
    - {e no false suspicions}: no view installed after formation
      excludes a member that was never killed or paused;
    - {e convergence}: every perturbation phase re-reaches an agreed
      full (or survivor) view within a wall-clock bound, and broadcasts
      submitted after each phase deliver group-wide.

    A (scenario, seed) pair is deterministic in the driver's choices
    (victims, faults, downtimes); wall-clock scheduling of course is
    not, which is why the checks are phase-convergence-shaped rather
    than sim-trace-shaped. {!sweep} aggregates kill->exclusion and
    restart->rejoin recovery-time distributions, which become the
    [live_chaos_runs] series of [BENCH_engine.json]. *)

open Tasim

type violation = { at : Time.t; property : string; detail : string }

val pp_violation : violation Fmt.t

type outcome = {
  scenario : string;
  seed : int;
  violations : violation list;  (** empty iff the run is clean *)
  formed_in : Time.t;  (** start -> first agreed full view *)
  exclusions : Time.t list;
      (** kill (or pause) -> agreed survivor view, per fault *)
  rejoins : Time.t list;
      (** restart (or resume) -> agreed full view, per recovery *)
  views : int;  (** views installed across the run *)
  persist_failures : int;  (** [live:store:persist-failed] total *)
  corrupt_restores : int;  (** [live:store:restore-corrupt] total *)
}

val ok : outcome -> bool
val pp_outcome : outcome Fmt.t

type scenario = {
  name : string;
  n : int;
  describe : string;
  run : seed:int -> base_port:int -> outcome;
}

(** The catalogue:

    - ["kill-restart-churn"] (n=5): three kill/restart cycles with
      seed-chosen victims (biased toward the decider), a group-wide
      broadcast after each rejoin;
    - ["storage-chaos"] (n=5): an on-disk store under the full
      {!Runtime.Live_store.fault} palette — transient [EIO] windows
      (bounded-retry-then-degrade, node keeps running), torn writes
      (leftover [.tmp] tolerated on restart), lost-flush windows
      closed by a machine-crash ({!Runtime.Live_store.note_crash})
      restart, and a direct on-disk bit flip whose restart must reject
      the record by checksum and rejoin at a strictly later group id;
    - ["impair-churn"] (n=5): one directed link impaired (PR 7's
      established-tolerable delay/jitter/loss) with a kill/restart
      ridden out under the impairment;
    - ["paused-member"] (n=5, [d] widened to 150 ms): a short pause
      (well under the suspicion deadline) must cause no exclusion; a
      long pause must be excluded and absorbed back on resume. *)
val scenarios : scenario list

val find : string -> scenario option

val default_base_port : int
(** 48100 — clear of the [timewheel_live] demo/member default and the
    live smoke tests' ports. *)

val run_one : ?base_port:int -> seed:int -> scenario -> outcome

(** {1 Sweeps and recovery-time distributions} *)

type report = {
  scenario : scenario;
  root_seed : int;
  runs : int;
  outcomes : outcome list;  (** in run order *)
  exclusion : Topology.dist option;
      (** fault -> agreed survivor view, clean runs pooled *)
  rejoin : Topology.dist option;
      (** recovery -> agreed full view, clean runs pooled *)
}

val sweep : ?runs:int -> ?base_port:int -> seed:int -> scenario -> report
(** Run [runs] seeds (default 3) derived from the root [seed], each
    run on its own port stride, nodes torn down between runs. *)

val report_ok : report -> bool
val pp_report : report Fmt.t
