(** Typed fault plans.

    A fault plan is the unit of work of the chaos harness: a list of
    timed fault-injection ops, generated from a single {!Tasim.Rng}
    seed, executed against an [n]-member group by {!Runner}. Op times
    are relative to the end of initial group formation; windowed ops
    carry an explicit close time. Every random choice a plan needs at
    execution time (the omission-burst coin flips) is pinned by a seed
    stored {e in the op}, so removing other ops during shrinking never
    changes its behaviour.

    Plans serialize to a small JSON artifact ([{version; seed; n;
    ops}]) via {!to_json}/{!of_json}; the seed doubles as the engine
    seed of the run, so artifact + [chaos --replay] reproduces a
    failure exactly. *)

open Tasim

type op =
  | Crash of { at : Time.t; proc : int }
  | Recover of { at : Time.t; proc : int }
  | Partition of { at : Time.t; block : int list }
      (** split the team into [block] and its complement *)
  | Heal of { at : Time.t }
  | Omission_burst of {
      at : Time.t;
      until : Time.t;
      prob : float;
      seed : int;  (** pins the per-datagram coin flips of this burst *)
    }
  | Filter_window of {
      at : Time.t;
      until : Time.t;
      kind : string;  (** a {!Timewheel.Control_msg.kind} string *)
      src : int option;
      dst : int option;
    }
  | Slow_window of {
      at : Time.t;
      until : Time.t;
      prob : float;
      delay_max : Time.t;
    }
  | Slow_member of {
      at : Time.t;
      until : Time.t;
      proc : int;
      prob : float;
      delay_max : Time.t;
    }
      (** a single sick machine: only [proc]'s dispatches suffer the
          extra delay, everyone else stays timely (the scenario behind
          adaptive suspicion — not in the random mix, scenario-only) *)
  | Storage_fault of {
      at : Time.t;
      until : Time.t;
      proc : int option;  (** [None] = every process's slot *)
      fault : Storage.Store.fault;
    }
      (** stable-storage writes inside the window are torn or lose
          their flush (see {!Storage.Store.fault}) *)
  | Link_window of {
      at : Time.t;
      until : Time.t;
      src : int option;  (** [None] = every source *)
      dst : int option;  (** [None] = every destination *)
      delay_min : Time.t;
      delay_max : Time.t;
      omission_prob : float;
      late_prob : float;
      late_delay_max : Time.t;
    }
      (** degrade the timeliness of the matching directed links for the
          window via {!Tasim.Net.set_link} — the timeliness-graph op
          behind the topology scenarios (asymmetric slow links,
          cross-datacenter latency). Parameters must satisfy
          {!Tasim.Net.validate_config} against the run's global config.
          Not in the random mix, scenario-only. *)

type t = { seed : int; n : int; ops : op list }

val generate : seed:int -> n:int -> ops:int -> t
(** Deterministic: same [seed]/[n]/[ops] always yields the same plan.
    Op times fall within {!horizon}; crash/recover ops dominate the
    mix. *)

val horizon : Time.t
(** Upper bound on op start times ([4s] past formation). *)

val end_time : t -> Time.t
(** Latest op time (window closes included); [Time.zero] when empty. *)

val op_time : op -> Time.t

val shrink_op : op -> op list
(** Strictly-smaller variants of one op (halved window durations,
    probabilities, delays — each down to a floor; instantaneous ops
    have none), for {!Shrink.shrink_params}. *)

val pp_op : op Fmt.t
val pp : t Fmt.t

val to_json : t -> Harness.Bench_json.t
val of_json : Harness.Bench_json.t -> (t, string) result
val save : string -> t -> unit
val load : string -> (t, string) result
