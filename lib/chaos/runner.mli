(** Execute a fault plan against a live [n]-member group.

    The runner builds a service (engine seed = plan seed), waits for
    initial group formation, schedules every plan op through the
    engine's fault-injection hooks, and drives a light broadcast
    workload so the ordinal invariant has data to bite on. While the
    plan runs, {!Timewheel.Invariant.check_all} is sampled on {e every}
    membership observation (view installation); the first violation
    stops the run. After the last op the runner heals all faults
    (partitions, filters, slow scheduling, storage faults, crashed
    processes) and requires post-quiescence convergence: every member
    back up and one agreed full view within a bounded number of cycles,
    then one final invariant sample. There is no waiver for plans that
    crash the newest view's majority: stable storage makes recovery
    non-amnesiac, so a recovered majority always re-forms at a higher
    epoch and the stragglers rejoin. Everything is deterministic in the
    plan alone. *)

open Tasim

type violation = { at : Time.t; property : string; detail : string }

type outcome = {
  plan : Plan.t;
  violations : violation list;
      (** empty = plan survived; the run stops at the first sample that
          violates, so these all share one sample time *)
  views_sampled : int;  (** invariant samples taken (one per view) *)
  formed_in : Time.t;
      (** sim time from start to the settled initial full view *)
  reconverged_in : Time.t option;
      (** epilogue: heal-everything to agreed full view, at cycle
          granularity; [None] when the run violated (the convergence
          series only aggregates clean runs) *)
}

type check = Harness.Run.svc -> Timewheel.Invariant.violation list
(** Invariant sampler; tests substitute a deliberately broken one to
    exercise shrinking. The default checks
    {!Timewheel.Invariant.check_all}. *)

val pp_violation : violation Fmt.t

val run :
  ?params:Timewheel.Params.t ->
  ?probe:(Harness.Run.svc -> unit) ->
  ?check:check ->
  Plan.t ->
  outcome
(** [probe] is called once on the freshly built service, before
    anything runs — the place to install extra observers (the CLI's
    verbose replay uses it to print views and suspicions). [params]
    overrides the protocol parameters of the run (the churn scenarios
    run under gossip dissemination); the default is
    [Params.make ~n ()], unchanged. *)

val ok : outcome -> bool

val minimize : ?params:Timewheel.Params.t -> ?check:check -> Plan.t -> Plan.t
(** Delta-debug a violating plan down to a 1-minimal op list (see
    {!Shrink.minimize}), then shrink the surviving ops' parameters
    (halved windows and probabilities, see {!Shrink.shrink_params} and
    {!Plan.shrink_op}); returns the plan unchanged when it does not
    violate. *)
