(** Delta-debugging plan minimization (Zeller–Hildebrandt ddmin).

    Given an op list known to make [violates] true, find a
    locally-minimal sublist that still does: the result is 1-minimal
    (removing any single remaining op makes the violation disappear),
    preserves the original op order, and every candidate is probed by
    re-running the deterministic oracle. *)

val minimize : violates:('a list -> bool) -> 'a list -> 'a list
(** Returns the input unchanged when it does not violate (nothing to
    shrink) or is empty. *)

val shrink_params :
  violates:('a list -> bool) -> candidates:('a -> 'a list) -> 'a list -> 'a list
(** Parameter-shrinking pass, run after {!minimize}: for each op in
    turn, try the strictly-smaller variants [candidates] proposes
    (e.g. {!Plan.shrink_op}'s halved window durations and
    probabilities), greedily adopting any that keeps [violates] true
    and re-shrinking that position until none does. The op list's
    length and order never change. [candidates] must only propose
    strictly smaller variants, or this need not terminate. Returns the
    input unchanged when it does not violate or is empty. *)

val probes : unit -> int
(** Oracle invocations since the last {!reset_probes} — for tests and
    sweep reports. *)

val reset_probes : unit -> unit
