(** Delta-debugging plan minimization (Zeller–Hildebrandt ddmin).

    Given an op list known to make [violates] true, find a
    locally-minimal sublist that still does: the result is 1-minimal
    (removing any single remaining op makes the violation disappear),
    preserves the original op order, and every candidate is probed by
    re-running the deterministic oracle. *)

val minimize : violates:('a list -> bool) -> 'a list -> 'a list
(** Returns the input unchanged when it does not violate (nothing to
    shrink) or is empty. *)

val probes : unit -> int
(** Oracle invocations since the last {!reset_probes} — for tests and
    sweep reports. *)

val reset_probes : unit -> unit
