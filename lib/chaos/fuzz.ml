open Tasim

type failure = {
  index : int;
  original : Plan.t;
  shrunk : Plan.t;
  outcome : Runner.outcome;
}

type report = {
  seed : int;
  n : int;
  plans : int;
  ops_per_plan : int;
  views_sampled : int;
  failures : failure list;
}

let default_ops = 8

(* Each plan gets its own seed drawn from a root stream, so plan k is
   reproducible without generating plans 0..k-1's op lists. *)
let plan_seeds ~seed ~plans =
  let root = Rng.create seed in
  Array.init plans (fun _ -> Rng.int root 1_000_000_000)

let plan_of ~seed ~n ~ops ~index =
  let seeds = plan_seeds ~seed ~plans:(index + 1) in
  Plan.generate ~seed:seeds.(index) ~n ~ops

let sweep ?check ?(ops = default_ops) ~seed ~plans ~n () =
  let seeds = plan_seeds ~seed ~plans in
  let views = ref 0 in
  let failures = ref [] in
  Array.iteri
    (fun index plan_seed ->
      let plan = Plan.generate ~seed:plan_seed ~n ~ops in
      let outcome = Runner.run ?check plan in
      views := !views + outcome.Runner.views_sampled;
      if not (Runner.ok outcome) then begin
        let shrunk = Runner.minimize ?check plan in
        let outcome = Runner.run ?check shrunk in
        failures := { index; original = plan; shrunk; outcome } :: !failures
      end)
    seeds;
  {
    seed;
    n;
    plans;
    ops_per_plan = ops;
    views_sampled = !views;
    failures = List.rev !failures;
  }

let ok report = report.failures = []

let pp_failure ppf f =
  Fmt.pf ppf "@[<v>plan #%d: %d ops, shrunk to %d@,%a@,%a@]" f.index
    (List.length f.original.Plan.ops)
    (List.length f.shrunk.Plan.ops)
    Plan.pp f.shrunk
    Fmt.(vbox (list Runner.pp_violation))
    f.outcome.Runner.violations

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>chaos sweep: seed=%d n=%d plans=%d ops/plan=%d invariant \
     samples=%d@,%a@]"
    r.seed r.n r.plans r.ops_per_plan r.views_sampled
    (fun ppf -> function
      | [] -> Fmt.string ppf "all plans passed"
      | fs ->
        Fmt.pf ppf "%d FAILING plan(s):@,%a" (List.length fs)
          Fmt.(vbox (list pp_failure))
          fs)
    r.failures
