open Tasim
open Timewheel

type violation = { at : Time.t; property : string; detail : string }

type outcome = {
  plan : Plan.t;
  violations : violation list;
  views_sampled : int;
  formed_in : Time.t;
  reconverged_in : Time.t option;
}

type check = Harness.Run.svc -> Invariant.violation list

let pp_violation ppf v =
  Fmt.pf ppf "[%a] %s: %s" Time.pp v.at v.property v.detail

let default_check (svc : Harness.Run.svc) =
  let engine = Service.engine svc in
  Invariant.check_all ~n:(Engine.n engine) (Invariant.take engine)

let pid = Proc_id.of_int

(* How long the epilogue waits for re-convergence before declaring a
   violation: generous, because a plan may leave the whole team to
   rebuild through the join protocol from scratch. *)
let convergence_tries = 40

let schedule_op svc ~abs i op =
  let engine = Service.engine svc in
  let net = Engine.net engine in
  match op with
  | Plan.Crash { at; proc } -> Service.crash_at svc (abs at) (pid proc)
  | Plan.Recover { at; proc } -> Service.recover_at svc (abs at) (pid proc)
  | Plan.Partition { at; block } ->
    let n = Engine.n engine in
    let inside = Proc_set.of_list (List.map pid block) in
    let outside = Proc_set.diff (Proc_set.full ~n) inside in
    Service.partition_at svc (abs at) [ inside; outside ]
  | Plan.Heal { at } -> Service.heal_at svc (abs at)
  | Plan.Omission_burst { at; until; prob; seed } ->
    let name = Fmt.str "chaos-burst-%d" i in
    Engine.at engine (abs at) (fun () ->
        let rng = Rng.create seed in
        Net.add_filter net ~name (fun ~src:_ ~dst:_ _ -> Rng.bool rng prob));
    Engine.at engine (abs until) (fun () -> Net.remove_filter net ~name)
  | Plan.Filter_window { at; until; kind; src; dst } ->
    let name = Fmt.str "chaos-drop-%d" i in
    let matches_end want have =
      match want with None -> true | Some x -> Proc_id.to_int have = x
    in
    Engine.at engine (abs at) (fun () ->
        Net.add_filter net ~name (fun ~src:s ~dst:d msg ->
            String.equal (Control_msg.kind msg) kind
            && matches_end src s && matches_end dst d));
    Engine.at engine (abs until) (fun () -> Net.remove_filter net ~name)
  | Plan.Slow_window { at; until; prob; delay_max } ->
    Engine.at engine (abs at) (fun () ->
        Engine.set_slow engine ~slow_prob:prob ~slow_delay_max:delay_max);
    Engine.at engine (abs until) (fun () -> Engine.reset_slow engine)
  | Plan.Slow_member { at; until; proc; prob; delay_max } ->
    Engine.at engine (abs at) (fun () ->
        Engine.set_slow_proc engine ~proc:(pid proc) ~prob ~delay_max);
    Engine.at engine (abs until) (fun () -> Engine.clear_slow_proc engine)
  | Plan.Storage_fault { at; until; proc; fault } ->
    let store = Service.storage svc in
    let proc = Option.map pid proc in
    Engine.at engine (abs at) (fun () ->
        Storage.Store.set_fault store ?proc (Some fault));
    Engine.at engine (abs until) (fun () ->
        Storage.Store.set_fault store ?proc None)
  | Plan.Link_window
      {
        at;
        until;
        src;
        dst;
        delay_min;
        delay_max;
        omission_prob;
        late_prob;
        late_delay_max;
      } ->
    let n = Engine.n engine in
    let matches want x = match want with None -> true | Some w -> w = x in
    let each f =
      for s = 0 to n - 1 do
        for d = 0 to n - 1 do
          if s <> d && matches src s && matches dst d then f (pid s) (pid d)
        done
      done
    in
    Engine.at engine (abs at) (fun () ->
        each (fun src dst ->
            Net.set_link net ~src ~dst ~delay_min ~delay_max ~omission_prob
              ~late_prob ~late_delay_max ()));
    (* the close clears the whole directed link, so of two overlapping
       windows on one link the earlier close wins — plans that want
       layering must use disjoint windows *)
    Engine.at engine (abs until) (fun () ->
        each (fun src dst -> Net.clear_link net ~src ~dst))

let run ?params ?probe ?(check = default_check) (plan : Plan.t) =
  let svc = Harness.Run.service ~seed:plan.Plan.seed ?params ~n:plan.Plan.n () in
  (match probe with Some f -> f svc | None -> ());
  let svc = Harness.Run.settle svc in
  let engine = Service.engine svc in
  let base = Service.now svc in
  let abs at = Time.add base at in
  let violations = ref [] in
  let sampled = ref 0 in
  let record vs =
    if vs <> [] && !violations = [] then begin
      violations :=
        List.map
          (fun (v : Invariant.violation) ->
            {
              at = Engine.now engine;
              property = v.Invariant.property;
              detail = v.Invariant.detail;
            })
          vs;
      Engine.stop engine
    end
  in
  Engine.on_observe engine (fun _at _proc obs ->
      match obs with
      | Member.View_installed _ ->
        incr sampled;
        record (check svc)
      | _ -> ());
  List.iteri (fun i op -> schedule_op svc ~abs i op) plan.Plan.ops;
  (* light workload: one totally ordered update per 100ms, submitter
     rotating over the team, so oals keep growing under faults *)
  let stop_t = abs (Time.add (Plan.end_time plan) (Time.of_sec 1)) in
  let rec submit k t =
    if t < stop_t then begin
      Service.submit_at svc t
        (pid (k mod plan.Plan.n))
        ~semantics:Broadcast.Semantics.total_strong k;
      submit (k + 1) (Time.add t (Time.of_ms 100))
    end
  in
  submit 0 base;
  Service.run svc ~until:stop_t;
  (* post-quiescence: remove every fault and require one agreed full
     view, then take a final invariant sample. With stable storage
     there is no waiver: even a plan that crashes every member of the
     newest view leaves their persisted epochs behind, so a recovered
     majority re-forms at a higher epoch and the stragglers rejoin —
     non-convergence is always a violation. *)
  let reconverged_in = ref None in
  if !violations = [] then begin
    let net = Engine.net engine in
    Net.clear_filters net;
    Net.clear_links net;
    Net.heal net;
    Engine.reset_slow engine;
    Engine.clear_slow_proc engine;
    Storage.Store.set_fault (Service.storage svc) None;
    List.iter
      (fun p ->
        if not (Engine.is_up engine p) then
          Engine.recover_at engine (Engine.now engine) p)
      (Proc_id.all ~n:plan.Plan.n);
    let cycle = Params.cycle (Service.params svc) in
    let heal_start = Service.now svc in
    let converged () =
      match Service.agreed_view svc with
      | Some v -> Proc_set.cardinal v.Service.group = plan.Plan.n
      | None -> false
    in
    let rec wait tries =
      Service.run svc ~until:(Time.add (Service.now svc) cycle);
      if !violations <> [] then () (* an invariant broke during re-join *)
      else if converged () then
        (* cycle-granular: the epilogue advances a cycle at a time *)
        reconverged_in := Some (Time.sub (Service.now svc) heal_start)
      else if tries <= 1 then
        violations :=
          [
            {
              at = Service.now svc;
              property = "convergence";
              detail =
                Fmt.str
                  "no agreed full view within %d cycles of healing all faults"
                  convergence_tries;
            };
          ]
      else wait (tries - 1)
    in
    wait convergence_tries;
    if !violations = [] then record (check svc)
  end;
  {
    plan;
    violations = !violations;
    views_sampled = !sampled;
    formed_in = base;
    reconverged_in = !reconverged_in;
  }

let ok outcome = outcome.violations = []

let minimize ?params ?check (plan : Plan.t) =
  let violates ops = not (ok (run ?params ?check { plan with Plan.ops })) in
  let ops = Shrink.minimize ~violates plan.Plan.ops in
  let ops =
    Shrink.shrink_params ~violates ~candidates:Plan.shrink_op ops
  in
  { plan with Plan.ops }
