(** Seeded fault-plan sweeps: the chaos harness front door.

    [sweep ~seed ~plans ~n ()] derives [plans] independent fault plans
    from the single root [seed], runs each through {!Runner}, and
    delta-debugs every violating plan to a minimal counterexample. The
    whole sweep is a pure function of [(seed, plans, n, ops)] — same
    inputs, same plans, same verdicts — so a CI failure reproduces
    locally with one command, and each failure additionally carries a
    replayable plan artifact (see {!Plan.save}). *)

type failure = {
  index : int;  (** plan position within the sweep *)
  original : Plan.t;
  shrunk : Plan.t;
  outcome : Runner.outcome;  (** outcome of re-running the shrunk plan *)
}

type report = {
  seed : int;
  n : int;
  plans : int;
  ops_per_plan : int;
  views_sampled : int;  (** invariant samples across the whole sweep *)
  failures : failure list;
}

val default_ops : int
(** Ops per generated plan (8). *)

val plan_of : seed:int -> n:int -> ops:int -> index:int -> Plan.t
(** The [index]-th plan of the sweep with root [seed] — what {!sweep}
    runs, exposed so a single plan can be regenerated without rerunning
    the sweep. *)

val sweep :
  ?check:Runner.check -> ?ops:int -> seed:int -> plans:int -> n:int -> unit ->
  report

val ok : report -> bool
val pp_report : report Fmt.t
