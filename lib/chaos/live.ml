open Tasim
open Broadcast
open Timewheel
module Node = Runtime.Node
module Cluster = Runtime.Cluster
module Clock = Runtime.Clock
module Transport = Runtime.Transport
module Live_store = Runtime.Live_store
module L = Runtime.Live

type violation = { at : Time.t; property : string; detail : string }

let pp_violation ppf v =
  Fmt.pf ppf "[%a] %s: %s" Time.pp v.at v.property v.detail

type outcome = {
  scenario : string;
  seed : int;
  violations : violation list;
  formed_in : Time.t;
  exclusions : Time.t list;
  rejoins : Time.t list;
  views : int;
  persist_failures : int;
  corrupt_restores : int;
}

let ok o = o.violations = []

let pp_outcome ppf (o : outcome) =
  Fmt.pf ppf
    "%s seed=%d %s formed=%a views=%d exclusions=%d rejoins=%d \
     persist-failed=%d corrupt-restores=%d"
    o.scenario o.seed
    (if ok o then "ok" else "FAIL")
    Time.pp o.formed_in o.views
    (List.length o.exclusions)
    (List.length o.rejoins)
    o.persist_failures o.corrupt_restores;
  List.iter (fun v -> Fmt.pf ppf "@,  %a" pp_violation v) o.violations

type scenario = {
  name : string;
  n : int;
  describe : string;
  run : seed:int -> base_port:int -> outcome;
}

(* ---------------------------------------------------------------- *)
(* driver context *)

type ctx = {
  n : int;
  clock : Clock.t;
  cluster : L.cluster;
  recorder : L.recorder;
  rng : Rng.t;
  store : Live_store.t;
  mutable perturbed : Proc_set.t;  (* ever killed or paused *)
  mutable paused : Proc_set.t;
  mutable formed_at : Time.t;
  mutable violations : violation list;  (* newest first *)
  mutable exclusions : Time.t list;  (* newest first *)
  mutable rejoins : Time.t list;  (* newest first *)
  mutable bcasts : int;
}

let violate ctx property detail =
  ctx.violations <-
    { at = Clock.now ctx.clock; property; detail } :: ctx.violations

(* Member states of the up, unpaused nodes — the snapshot the
   invariants and agreement checks run over. A paused node's state is
   deliberately frozen mid-past; holding it against the group would
   flag the pause itself, not a protocol bug. *)
let up_states ctx =
  List.filter_map
    (fun nd ->
      if Node.is_up nd && not (Node.is_paused nd) then
        Option.map (fun m -> (Node.self nd, m)) (L.member_of nd)
      else None)
    (Cluster.nodes ctx.cluster)

(* Stricter than {!L.agreed_view}: every up, unpaused node must hold a
   member state (a restarted node that has not resynchronized yet is
   disagreement, not absence), and all must hold the same known view. *)
let agreed ctx =
  let nds =
    List.filter
      (fun nd -> Node.is_up nd && not (Node.is_paused nd))
      (Cluster.nodes ctx.cluster)
  in
  let states = List.filter_map L.member_of nds in
  if states = [] || List.length states <> List.length nds then None
  else
    let m0 = List.hd states in
    let g = Member.group m0 and gid = Member.group_id m0 in
    if
      Group_id.is_known gid
      && List.for_all
           (fun m ->
             Proc_set.equal (Member.group m) g
             && Group_id.equal (Member.group_id m) gid)
           (List.tl states)
    then Some (g, gid)
    else None

let wait ?(timeout = Time.of_sec 30) ctx ~property pred =
  let deadline = Time.add (Clock.now ctx.clock) timeout in
  let met =
    Cluster.run_until ctx.cluster ~deadline ~poll_cap:(Time.of_ms 20) pred
  in
  if not met then
    violate ctx property (Fmt.str "not reached within %a" Time.pp timeout);
  met

let settle ?timeout ctx ~property expected =
  wait ?timeout ctx ~property (fun () ->
      match agreed ctx with
      | Some (g, _) -> Proc_set.equal g expected
      | None -> false)

let run_for ctx span = Cluster.run_for ctx.cluster ~span

let sample_invariants ctx ~phase =
  List.iter
    (fun (v : Invariant.violation) ->
      violate ctx
        ("invariant:" ^ v.Invariant.property)
        (Fmt.str "%s (%s)" v.Invariant.detail phase))
    (Invariant.check_all ~n:ctx.n (up_states ctx))

let delivered_count ctx payload =
  List.length
    (List.filter
       (fun (_, pl) -> String.equal pl payload)
       ctx.recorder.L.delivered)

(* End-to-end delivery check with client-style retries: a submission is
   one UDP proposal broadcast with no request-level retransmission, so
   right after churn it can be legitimately lost (dropped datagram,
   fail-aware late rejection while the submitter is not sigma-stable
   at its receivers yet). A real client resubmits; so does the
   harness — each attempt a fresh payload at a rotating member. Only
   all attempts failing is a liveness violation. *)
let broadcast_expect ctx label =
  let attempts = 3 in
  let rec go attempt =
    let up =
      List.filter
        (fun nd -> Node.is_up nd && not (Node.is_paused nd))
        (Cluster.nodes ctx.cluster)
    in
    match up with
    | [] -> violate ctx ("delivery:" ^ label) "no up member to submit at"
    | _ :: _ ->
      let expected = List.length up in
      let node = List.nth up ((attempt - 1) mod expected) in
      let payload = Fmt.str "%s-%d" label ctx.bcasts in
      ctx.bcasts <- ctx.bcasts + 1;
      L.submit node ~semantics:Semantics.total_strong payload;
      let deadline = Time.add (Clock.now ctx.clock) (Time.of_sec 5) in
      let met =
        Cluster.run_until ctx.cluster ~deadline ~poll_cap:(Time.of_ms 20)
          (fun () -> delivered_count ctx payload >= expected)
      in
      if not met then
        if attempt < attempts then go (attempt + 1)
        else
          violate ctx
            ("delivery:" ^ label)
            (Fmt.str
               "no attempt of %d delivered group-wide (last: %d of %d, by %a)"
               attempts
               (delivered_count ctx payload)
               expected
               Fmt.(list ~sep:comma Proc_id.pp)
               (List.filter_map
                  (fun (p, pl) ->
                    if String.equal pl payload then Some p else None)
                  ctx.recorder.L.delivered))
  in
  go 1

(* One kill/restart cycle with its recovery-time samples. The rejoined
   view must carry a strictly later group id than the one agreed at the
   kill — the live face of the epoch ratchet. [crash] adds
   machine-crash semantics ({!Live_store.note_crash});
   [before_restart] runs while the victim is down (the storage
   scenario corrupts the on-disk record there). *)
let kill_restart ?(downtime = Time.of_ms 100) ?(crash = false) ?before_restart
    ctx victim =
  let node = Cluster.node ctx.cluster victim in
  let full = Proc_set.full ~n:ctx.n in
  let gid0 = Option.map snd (agreed ctx) in
  ctx.perturbed <- Proc_set.add victim ctx.perturbed;
  let t_kill = Clock.now ctx.clock in
  Node.kill node;
  if crash then Live_store.note_crash ctx.store ~self:victim;
  if settle ctx ~property:"exclusion" (Proc_set.remove victim full) then
    ctx.exclusions <- Time.sub (Clock.now ctx.clock) t_kill :: ctx.exclusions;
  sample_invariants ctx ~phase:"post-exclusion";
  run_for ctx downtime;
  (match before_restart with Some f -> f () | None -> ());
  let t_restart = Clock.now ctx.clock in
  Node.restart node;
  (if settle ctx ~property:"rejoin" full then begin
     ctx.rejoins <- Time.sub (Clock.now ctx.clock) t_restart :: ctx.rejoins;
     match (gid0, agreed ctx) with
     | Some g0, Some (_, g1) when not (Group_id.later g1 ~than:g0) ->
       violate ctx "group-id-advance"
         (Fmt.str "rejoined at #%a, not later than #%a held at the kill"
            Group_id.pp g1 Group_id.pp g0)
     | _ -> ()
   end);
  sample_invariants ctx ~phase:"post-rejoin"

(* end-of-run whole-history checks *)

let check_ratchet ctx =
  let last : (int, Group_id.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (v : L.view) ->
      let p = Proc_id.to_int v.L.proc in
      (match Hashtbl.find_opt last p with
      | Some prev when not (Group_id.later v.L.group_id ~than:prev) ->
        ctx.violations <-
          {
            at = v.L.at;
            property = "epoch-ratchet";
            detail =
              Fmt.str "%a installed #%a after #%a" Proc_id.pp v.L.proc
                Group_id.pp v.L.group_id Group_id.pp prev;
          }
          :: ctx.violations
      | _ -> ());
      Hashtbl.replace last p v.L.group_id)
    (List.rev ctx.recorder.L.views)

(* A false suspicion is a view-change exclusion (seq > 0 within an
   epoch) of a member that was never killed or paused. Formation views
   (seq 0) are exempt: a (re-)formation legitimately completes with a
   straggler absent and absorbs it at the next seq — the phase settles
   and the final convergence check already require the stragglers
   back. One violation per distinct view, not per installing member. *)
let check_false_suspicions ctx =
  let healthy = Proc_set.diff (Proc_set.full ~n:ctx.n) ctx.perturbed in
  let seen : (Group_id.t, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (v : L.view) ->
      if
        Time.compare v.L.at ctx.formed_at > 0
        && Group_id.seq v.L.group_id > 0
        && not (Hashtbl.mem seen v.L.group_id)
      then begin
        Hashtbl.add seen v.L.group_id ();
        let missing = Proc_set.diff healthy v.L.group in
        if not (Proc_set.is_empty missing) then
          ctx.violations <-
            {
              at = v.L.at;
              property = "false-suspicion";
              detail =
                Fmt.str "view #%a %a excludes never-perturbed %a" Group_id.pp
                  v.L.group_id Proc_set.pp v.L.group Proc_set.pp missing;
            }
            :: ctx.violations
      end)
    ctx.recorder.L.views

(* Undo every perturbation so the final convergence check starts from
   a healable cluster whatever the scenario body left behind. *)
let heal ctx =
  Live_store.set_fault ctx.store None;
  List.iter
    (fun nd ->
      if Node.is_up nd then begin
        Node.resume nd;
        Transport.clear_impairments (Node.transport nd)
      end
      else Node.restart nd)
    (Cluster.nodes ctx.cluster);
  ctx.paused <- Proc_set.empty

let run_ctx ~name ~n ~seed ~base_port ?params ?store body =
  let store =
    match store with Some s -> s | None -> Live_store.in_memory ()
  in
  let cfg = L.config ~n ~base_port ?params ~store () in
  let recorder = L.recorder () in
  let clock, cluster = L.in_process cfg ~recorder () in
  let ctx =
    {
      n;
      clock;
      cluster;
      recorder;
      rng = Rng.create seed;
      store;
      perturbed = Proc_set.empty;
      paused = Proc_set.empty;
      formed_at = Time.infinity;
      violations = [];
      exclusions = [];
      rejoins = [];
      bcasts = 0;
    }
  in
  Fun.protect ~finally:(fun () ->
      List.iter Node.kill (Cluster.nodes cluster))
  @@ fun () ->
  Cluster.start cluster;
  let t0 = Clock.now clock in
  let formed = settle ctx ~property:"formation" (Proc_set.full ~n) in
  let formed_in = Time.sub (Clock.now clock) t0 in
  ctx.formed_at <- Clock.now clock;
  (if formed then
     try body ctx
     with e -> violate ctx "exception" (Printexc.to_string e));
  heal ctx;
  if formed then begin
    ignore (settle ctx ~property:"final-convergence" (Proc_set.full ~n));
    sample_invariants ctx ~phase:"final";
    broadcast_expect ctx "final"
  end;
  check_ratchet ctx;
  check_false_suspicions ctx;
  let stats = Live_store.stats store in
  {
    scenario = name;
    seed;
    violations = List.rev ctx.violations;
    formed_in;
    exclusions = List.rev ctx.exclusions;
    rejoins = List.rev ctx.rejoins;
    views = List.length recorder.L.views;
    persist_failures = Stats.count stats "live:store:persist-failed";
    corrupt_restores = Stats.count stats "live:store:restore-corrupt";
  }

(* ---------------------------------------------------------------- *)
(* scenarios *)

let pick_proc ctx = Proc_id.of_int (Rng.int ctx.rng ctx.n)

let pick_other ctx avoid =
  let rec go () =
    let p = pick_proc ctx in
    if Proc_id.equal p avoid then go () else p
  in
  go ()

let kill_restart_churn =
  let n = 5 in
  {
    name = "kill-restart-churn";
    n;
    describe =
      "three kill/restart cycles, decider-biased victims, a group-wide \
       broadcast after each rejoin";
    run =
      (fun ~seed ~base_port ->
        run_ctx ~name:"kill-restart-churn" ~n ~seed ~base_port (fun ctx ->
            for cycle = 1 to 3 do
              let victim =
                if Rng.bool ctx.rng 0.5 then
                  match L.decider ctx.cluster with
                  | Some p -> p
                  | None -> pick_proc ctx
                else pick_proc ctx
              in
              kill_restart ctx victim ~downtime:(Time.of_ms (100 * cycle));
              broadcast_expect ctx (Fmt.str "churn%d" cycle)
            done));
  }

let rec rm_rf path =
  let kind =
    try Some (Unix.lstat path).Unix.st_kind with Unix.Unix_error _ -> None
  in
  match kind with
  | Some Unix.S_DIR ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | Some _ -> ( try Sys.remove path with Sys_error _ -> ())
  | None -> ()

let flip_byte path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.of_string (really_input_string ic len) in
  close_in ic;
  if len > 0 then begin
    let i = len / 2 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    let oc = open_out_bin path in
    output_bytes oc b;
    close_out oc
  end

let storage_chaos =
  let n = 5 in
  {
    name = "storage-chaos";
    n;
    describe =
      "on-disk store under transient EIO, torn writes, a lost-flush \
       machine crash, and a direct on-disk bit flip the checksum must \
       reject";
    run =
      (fun ~seed ~base_port ->
        let dir =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Fmt.str "tw-live-chaos-%d-%d-%d" (Unix.getpid ()) base_port seed)
        in
        rm_rf dir;
        let store = Live_store.on_disk ~dir () in
        Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
        run_ctx ~name:"storage-chaos" ~n ~seed ~base_port ~store (fun ctx ->
            let stats = Live_store.stats ctx.store in
            (* transient EIO: rejoin installs degrade (counted), the
               node keeps running on its in-memory state *)
            let v1 = pick_proc ctx in
            Live_store.set_fault ctx.store ~proc:v1
              (Some (Live_store.Io_error Unix.EIO));
            kill_restart ctx v1;
            Live_store.set_fault ctx.store ~proc:v1 None;
            if Stats.count stats "live:store:persist-failed" = 0 then
              violate ctx "store-degrade"
                "no persist failure recorded under the EIO fault";
            broadcast_expect ctx "post-eio";
            (* torn write: a half-written .tmp is left behind; restart
               restores the surviving durable record and discards the
               leftover *)
            let v2 = pick_proc ctx in
            Live_store.set_fault ctx.store ~proc:v2 (Some Live_store.Torn_write);
            kill_restart ctx v2;
            Live_store.set_fault ctx.store ~proc:v2 None;
            broadcast_expect ctx "post-torn";
            (* lost flush closed by a machine crash: the unflushed
               record is lost, the last durable one restores, the
               stale-but-valid state rejoins through the ratchet *)
            let v3 = pick_proc ctx in
            Live_store.set_fault ctx.store ~proc:v3 (Some Live_store.Lost_flush);
            (* cycle a different member so v3 persists view installs
               inside the lost-flush window *)
            kill_restart ctx (pick_other ctx v3);
            Live_store.set_fault ctx.store ~proc:v3 None;
            kill_restart ctx v3 ~crash:true;
            broadcast_expect ctx "post-lost-flush";
            (* direct on-disk corruption: the checksum must reject the
               record (never restore it as valid) and the amnesiac
               restart must rejoin at a strictly later group id *)
            let v4 = pick_proc ctx in
            kill_restart ctx v4 ~before_restart:(fun () ->
                match Live_store.record_path ctx.store ~self:v4 with
                | Some path when Sys.file_exists path -> flip_byte path
                | _ ->
                  violate ctx "corrupt-setup" "no on-disk record to corrupt");
            if Stats.count stats "live:store:restore-corrupt" = 0 then
              violate ctx "checksum"
                "the flipped record was not rejected by restore";
            broadcast_expect ctx "post-corrupt"));
  }

let impair_churn =
  let n = 5 in
  {
    name = "impair-churn";
    n;
    describe =
      "one directed link impaired (15ms +5ms jitter, 20% loss), the \
       group must hold, then a kill/restart ridden out under the \
       impairment";
    run =
      (fun ~seed ~base_port ->
        run_ctx ~name:"impair-churn" ~n ~seed ~base_port (fun ctx ->
            let src = pick_proc ctx in
            let dst = pick_other ctx src in
            let impaired_node = Cluster.node ctx.cluster src in
            Transport.impair
              (Node.transport impaired_node)
              ~dst ~delay:(Time.of_ms 15) ~jitter:(Time.of_ms 5) ~drop:0.2
              ~now:(fun () -> Clock.now ctx.clock)
              ();
            run_for ctx (Time.of_sec 1);
            ignore (settle ctx ~property:"impair-stability" (Proc_set.full ~n));
            sample_invariants ctx ~phase:"impaired";
            broadcast_expect ctx "impaired";
            (* the kill/restart rides out under the impairment; the
               impaired endpoint stays up so the rule survives *)
            kill_restart ctx (pick_other ctx src) ~downtime:(Time.of_ms 200);
            Transport.clear_impairments (Node.transport impaired_node);
            broadcast_expect ctx "healed"));
  }

let paused_member =
  let n = 5 in
  (* The surveillance deadline is [2d]; the default live d of 30 ms
     leaves no room for a pause that is both schedulable and safely
     under 60 ms, so this scenario widens d to 150 ms: a 100 ms pause
     sits at a third of the 300 ms deadline, a multi-second pause is
     far past it. *)
  let params =
    lazy
      (Params.make ~sigma:(Time.of_ms 5) ~epsilon:(Time.of_ms 5)
         ~d:(Time.of_ms 150) ~adaptive_suspicion:true ~n ())
  in
  {
    name = "paused-member";
    n;
    describe =
      "SIGSTOP analog: a 100ms pause (deadline 300ms) must cause no \
       exclusion; a long pause must be excluded and absorbed back on \
       resume";
    run =
      (fun ~seed ~base_port ->
        run_ctx ~name:"paused-member" ~n ~seed ~base_port
          ~params:(Lazy.force params) (fun ctx ->
            let full = Proc_set.full ~n in
            (* short pause: well under the deadline *)
            let p = pick_proc ctx in
            let np = Cluster.node ctx.cluster p in
            ctx.perturbed <- Proc_set.add p ctx.perturbed;
            let t_pause = Clock.now ctx.clock in
            Node.pause np;
            ctx.paused <- Proc_set.add p ctx.paused;
            run_for ctx (Time.of_ms 100);
            Node.resume np;
            ctx.paused <- Proc_set.remove p ctx.paused;
            ignore (settle ctx ~property:"short-pause-stability" full);
            if
              List.exists
                (fun (v : L.view) ->
                  Time.compare v.L.at t_pause >= 0
                  && not (Proc_set.mem p v.L.group))
                ctx.recorder.L.views
            then
              violate ctx "short-pause-exclusion"
                (Fmt.str
                   "a 100 ms pause of %a (deadline 300 ms) caused an exclusion"
                   Proc_id.pp p);
            broadcast_expect ctx "post-short-pause";
            (* long pause: must be excluded, then absorbed on resume *)
            let q = pick_proc ctx in
            let nq = Cluster.node ctx.cluster q in
            ctx.perturbed <- Proc_set.add q ctx.perturbed;
            let t_pause = Clock.now ctx.clock in
            Node.pause nq;
            ctx.paused <- Proc_set.add q ctx.paused;
            if settle ctx ~property:"paused-exclusion" (Proc_set.remove q full)
            then
              ctx.exclusions <-
                Time.sub (Clock.now ctx.clock) t_pause :: ctx.exclusions;
            sample_invariants ctx ~phase:"paused-excluded";
            run_for ctx (Time.of_ms 200);
            let t_resume = Clock.now ctx.clock in
            Node.resume nq;
            ctx.paused <- Proc_set.remove q ctx.paused;
            if settle ctx ~property:"paused-rejoin" full then
              ctx.rejoins <-
                Time.sub (Clock.now ctx.clock) t_resume :: ctx.rejoins;
            broadcast_expect ctx "post-long-pause"));
  }

let scenarios = [ kill_restart_churn; storage_chaos; impair_churn; paused_member ]

let find name = List.find_opt (fun s -> String.equal s.name name) scenarios

let default_base_port = 48100

let run_one ?(base_port = default_base_port) ~seed scenario =
  scenario.run ~seed ~base_port

(* ---------------------------------------------------------------- *)
(* sweeps *)

type report = {
  scenario : scenario;
  root_seed : int;
  runs : int;
  outcomes : outcome list;
  exclusion : Topology.dist option;
  rejoin : Topology.dist option;
}

let sweep ?(runs = 3) ?(base_port = default_base_port) ~seed scenario =
  let root = Rng.create seed in
  let rec draw k acc =
    if k = 0 then List.rev acc
    else draw (k - 1) (Rng.int root 1_000_000_000 :: acc)
  in
  let outcomes =
    List.mapi
      (fun i s ->
        (* each run on its own port stride: sequential runs, but a
           lingering socket must not collide with the next run *)
        scenario.run ~seed:s ~base_port:(base_port + (i * 16)))
      (draw runs [])
  in
  let clean = List.filter ok outcomes in
  {
    scenario;
    root_seed = seed;
    runs;
    outcomes;
    exclusion = Topology.dist_of (List.concat_map (fun (o : outcome) -> o.exclusions) clean);
    rejoin = Topology.dist_of (List.concat_map (fun (o : outcome) -> o.rejoins) clean);
  }

let report_ok r = List.for_all ok r.outcomes

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: %d/%d clean" r.scenario.name
    (List.length (List.filter ok r.outcomes))
    r.runs;
  (match r.exclusion with
  | Some d -> Fmt.pf ppf "@,  exclusion %a" Topology.pp_dist d
  | None -> ());
  (match r.rejoin with
  | Some d -> Fmt.pf ppf "@,  rejoin    %a" Topology.pp_dist d
  | None -> ());
  List.iter
    (fun o -> if not (ok o) then Fmt.pf ppf "@,  %a" pp_outcome o)
    r.outcomes;
  Fmt.pf ppf "@]"
