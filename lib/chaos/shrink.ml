let probe_count = ref 0
let probes () = !probe_count
let reset_probes () = probe_count := 0

(* Split [xs] into [k] contiguous chunks, the first [len mod k] of them
   one element longer, so every chunk is nonempty when k <= len. *)
let split_chunks xs k =
  let len = List.length xs in
  let base = len / k and extra = len mod k in
  let rec go xs i =
    if i >= k then []
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> ([], [])
        | x :: rest ->
          let taken, rest = take (n - 1) rest in
          (x :: taken, rest)
      in
      let chunk, rest = take size xs in
      chunk :: go rest (i + 1)
  in
  go xs 0

let minimize ~violates ops =
  let check xs =
    incr probe_count;
    violates xs
  in
  let rec ddmin ops granularity =
    let len = List.length ops in
    if len <= 1 then ops
    else begin
      let granularity = min granularity len in
      let chunks = split_chunks ops granularity in
      (* a single chunk that still violates: recurse into it *)
      match List.find_opt check chunks with
      | Some chunk -> ddmin chunk 2
      | None -> (
        (* a complement that still violates: drop the chunk *)
        let complements =
          List.mapi
            (fun i _ ->
              List.concat
                (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        let complement =
          if granularity <= 2 then None
          else List.find_opt check complements
        in
        match complement with
        | Some comp -> ddmin comp (max 2 (granularity - 1))
        | None ->
          if granularity < len then ddmin ops (min len (2 * granularity))
          else ops)
    end
  in
  if ops = [] || not (check ops) then ops else ddmin ops 2
