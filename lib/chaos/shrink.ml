let probe_count = ref 0
let probes () = !probe_count
let reset_probes () = probe_count := 0

(* Split [xs] into [k] contiguous chunks, the first [len mod k] of them
   one element longer, so every chunk is nonempty when k <= len. *)
let split_chunks xs k =
  let len = List.length xs in
  let base = len / k and extra = len mod k in
  let rec go xs i =
    if i >= k then []
    else
      let size = base + if i < extra then 1 else 0 in
      let rec take n = function
        | rest when n = 0 -> ([], rest)
        | [] -> ([], [])
        | x :: rest ->
          let taken, rest = take (n - 1) rest in
          (x :: taken, rest)
      in
      let chunk, rest = take size xs in
      chunk :: go rest (i + 1)
  in
  go xs 0

let minimize ~violates ops =
  let check xs =
    incr probe_count;
    violates xs
  in
  let rec ddmin ops granularity =
    let len = List.length ops in
    if len <= 1 then ops
    else begin
      let granularity = min granularity len in
      let chunks = split_chunks ops granularity in
      (* a single chunk that still violates: recurse into it *)
      match List.find_opt check chunks with
      | Some chunk -> ddmin chunk 2
      | None -> (
        (* a complement that still violates: drop the chunk *)
        let complements =
          List.mapi
            (fun i _ ->
              List.concat
                (List.filteri (fun j _ -> j <> i) chunks))
            chunks
        in
        let complement =
          if granularity <= 2 then None
          else List.find_opt check complements
        in
        match complement with
        | Some comp -> ddmin comp (max 2 (granularity - 1))
        | None ->
          if granularity < len then ddmin ops (min len (2 * granularity))
          else ops)
    end
  in
  if ops = [] || not (check ops) then ops else ddmin ops 2

let shrink_params ~violates ~candidates ops =
  let check xs =
    incr probe_count;
    violates xs
  in
  let replace ops i c = List.mapi (fun j o -> if j = i then c else o) ops in
  (* For each position in turn, greedily adopt the first candidate that
     still violates and re-shrink the same position until none does.
     Terminates because [candidates] only returns strictly smaller
     variants (Plan.shrink_op's contract). *)
  let rec at_pos ops i =
    if i >= List.length ops then ops
    else
      let rec try_candidates = function
        | [] -> at_pos ops (i + 1)
        | c :: rest ->
          let ops' = replace ops i c in
          if check ops' then at_pos ops' i else try_candidates rest
      in
      try_candidates (candidates (List.nth ops i))
  in
  if ops = [] || not (check ops) then ops else at_pos ops 0
