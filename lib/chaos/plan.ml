open Tasim
module J = Harness.Bench_json

type op =
  | Crash of { at : Time.t; proc : int }
  | Recover of { at : Time.t; proc : int }
  | Partition of { at : Time.t; block : int list }
  | Heal of { at : Time.t }
  | Omission_burst of { at : Time.t; until : Time.t; prob : float; seed : int }
  | Filter_window of {
      at : Time.t;
      until : Time.t;
      kind : string;
      src : int option;
      dst : int option;
    }
  | Slow_window of {
      at : Time.t;
      until : Time.t;
      prob : float;
      delay_max : Time.t;
    }
  | Slow_member of {
      at : Time.t;
      until : Time.t;
      proc : int;
      prob : float;
      delay_max : Time.t;
    }
  | Storage_fault of {
      at : Time.t;
      until : Time.t;
      proc : int option;
      fault : Storage.Store.fault;
    }
  | Link_window of {
      at : Time.t;
      until : Time.t;
      src : int option;
      dst : int option;
      delay_min : Time.t;
      delay_max : Time.t;
      omission_prob : float;
      late_prob : float;
      late_delay_max : Time.t;
    }

type t = { seed : int; n : int; ops : op list }

let horizon = Time.of_sec 4

let op_time = function
  | Crash { at; _ }
  | Recover { at; _ }
  | Partition { at; _ }
  | Heal { at }
  | Omission_burst { at; _ }
  | Filter_window { at; _ }
  | Slow_window { at; _ }
  | Slow_member { at; _ }
  | Storage_fault { at; _ }
  | Link_window { at; _ } ->
    at

let op_end = function
  | Omission_burst { until; _ }
  | Filter_window { until; _ }
  | Slow_window { until; _ }
  | Slow_member { until; _ }
  | Storage_fault { until; _ }
  | Link_window { until; _ } ->
    until
  | op -> op_time op

let end_time t = List.fold_left (fun acc op -> Time.max acc (op_end op)) Time.zero t.ops

(* Message kinds worth dropping in a filter window: everything the
   protocol actually puts on the wire (Submit bypasses the network). *)
let filter_kinds =
  [|
    "decision";
    "no-decision";
    "join";
    "reconfiguration";
    "proposal";
    "retransmit";
    "nack";
    "state-transfer";
  |]

let gen_op rng ~n =
  let at = Rng.uniform_time rng Time.zero horizon in
  let window () = Time.add at (Rng.uniform_time rng (Time.of_ms 100) (Time.of_ms 1500)) in
  let proc () = Rng.int rng n in
  match Rng.int rng 14 with
  | 0 | 1 | 2 -> Crash { at; proc = proc () }
  | 3 | 4 | 5 -> Recover { at; proc = proc () }
  | 6 ->
    (* a nonempty proper subset: member i goes into the block when bit i
       of a draw from [1, 2^n - 2] is set *)
    let bits = 1 + Rng.int rng ((1 lsl n) - 2) in
    let block = List.filter (fun i -> bits land (1 lsl i) <> 0) (List.init n Fun.id) in
    Partition { at; block }
  | 7 -> Heal { at }
  | 8 ->
    Omission_burst
      {
        at;
        until = window ();
        prob = 0.05 +. (0.55 *. Rng.float rng);
        seed = Rng.int rng 1_000_000;
      }
  | 9 | 10 ->
    let pick_end () = if Rng.bool rng 0.5 then Some (proc ()) else None in
    Filter_window
      {
        at;
        until = window ();
        kind = Rng.pick rng filter_kinds;
        src = pick_end ();
        dst = pick_end ();
      }
  | 11 ->
    Slow_window
      {
        at;
        until = window ();
        prob = 0.25 +. (0.75 *. Rng.float rng);
        delay_max = Rng.uniform_time rng (Time.of_ms 2) (Time.of_ms 20);
      }
  | _ ->
    Storage_fault
      {
        at;
        until = window ();
        proc = (if Rng.bool rng 0.5 then Some (proc ()) else None);
        fault =
          (if Rng.bool rng 0.5 then Storage.Store.Torn_write
           else Storage.Store.Lost_flush);
      }

let generate ~seed ~n ~ops =
  if n < 2 then invalid_arg "Plan.generate: n must be >= 2";
  let rng = Rng.create seed in
  let unsorted = List.init ops (fun _ -> gen_op rng ~n) in
  let sorted =
    List.stable_sort (fun a b -> Time.compare (op_time a) (op_time b)) unsorted
  in
  { seed; n; ops = sorted }

(* ------------------------------------------------------------------ *)
(* Parameter shrinking *)

(* Candidate smaller variants of one op, for {!Shrink.shrink_params}:
   halve window durations, probabilities and delays, each down to a
   floor. Every candidate is strictly smaller by an integer or
   floored-float measure, so repeated shrinking terminates. *)

let halved_until at until =
  let dur = Time.sub until at in
  if Time.compare dur (Time.of_ms 100) > 0 then
    Some (Time.add at (Time.div dur 2))
  else None

let halved_prob p =
  if p > 0.05 then Some (Float.max 0.05 (p /. 2.)) else None

let shrink_op op =
  match op with
  | Crash _ | Recover _ | Partition _ | Heal _ -> []
  | Omission_burst ({ at; until; prob; _ } as o) ->
    (match halved_until at until with
    | Some until -> [ Omission_burst { o with until } ]
    | None -> [])
    @
    (match halved_prob prob with
    | Some prob -> [ Omission_burst { o with prob } ]
    | None -> [])
  | Filter_window ({ at; until; _ } as o) -> (
    match halved_until at until with
    | Some until -> [ Filter_window { o with until } ]
    | None -> [])
  | Slow_window ({ at; until; prob; delay_max } as o) ->
    (match halved_until at until with
    | Some until -> [ Slow_window { o with until } ]
    | None -> [])
    @ (match halved_prob prob with
      | Some prob -> [ Slow_window { o with prob } ]
      | None -> [])
    @
    if Time.compare delay_max (Time.of_ms 2) > 0 then
      [
        Slow_window
          { o with delay_max = Time.max (Time.of_ms 2) (Time.div delay_max 2) };
      ]
    else []
  | Slow_member ({ at; until; prob; delay_max; _ } as o) ->
    (match halved_until at until with
    | Some until -> [ Slow_member { o with until } ]
    | None -> [])
    @ (match halved_prob prob with
      | Some prob -> [ Slow_member { o with prob } ]
      | None -> [])
    @
    if Time.compare delay_max (Time.of_ms 2) > 0 then
      [
        Slow_member
          { o with delay_max = Time.max (Time.of_ms 2) (Time.div delay_max 2) };
      ]
    else []
  | Storage_fault ({ at; until; _ } as o) -> (
    match halved_until at until with
    | Some until -> [ Storage_fault { o with until } ]
    | None -> [])
  | Link_window
      ({ at; until; omission_prob; late_prob; delay_min; delay_max; _ } as o)
    ->
    (* halving both delays preserves [delay_min <= delay_max], so every
       candidate still passes [Net.validate_config] *)
    let half d = Time.max (Time.of_ms 1) (Time.div d 2) in
    (match halved_until at until with
    | Some until -> [ Link_window { o with until } ]
    | None -> [])
    @ (match halved_prob omission_prob with
      | Some omission_prob -> [ Link_window { o with omission_prob } ]
      | None -> [])
    @ (match halved_prob late_prob with
      | Some late_prob -> [ Link_window { o with late_prob } ]
      | None -> [])
    @
    if Time.compare (half delay_max) delay_max < 0 then
      [
        Link_window
          { o with delay_min = half delay_min; delay_max = half delay_max };
      ]
    else []

(* ------------------------------------------------------------------ *)
(* Pretty-printing *)

let pp_endpoint ppf = function
  | None -> Fmt.string ppf "*"
  | Some p -> Fmt.int ppf p

let pp_op ppf = function
  | Crash { at; proc } -> Fmt.pf ppf "[%a] crash p%d" Time.pp at proc
  | Recover { at; proc } -> Fmt.pf ppf "[%a] recover p%d" Time.pp at proc
  | Partition { at; block } ->
    Fmt.pf ppf "[%a] partition {%a}" Time.pp at
      Fmt.(list ~sep:comma int)
      block
  | Heal { at } -> Fmt.pf ppf "[%a] heal" Time.pp at
  | Omission_burst { at; until; prob; seed } ->
    Fmt.pf ppf "[%a..%a] omission burst p=%.2f seed=%d" Time.pp at Time.pp
      until prob seed
  | Filter_window { at; until; kind; src; dst } ->
    Fmt.pf ppf "[%a..%a] drop %s %a->%a" Time.pp at Time.pp until kind
      pp_endpoint src pp_endpoint dst
  | Slow_window { at; until; prob; delay_max } ->
    Fmt.pf ppf "[%a..%a] slow scheduling p=%.2f max=%a" Time.pp at Time.pp
      until prob Time.pp delay_max
  | Slow_member { at; until; proc; prob; delay_max } ->
    Fmt.pf ppf "[%a..%a] slow member p%d p=%.2f max=%a" Time.pp at Time.pp
      until proc prob Time.pp delay_max
  | Storage_fault { at; until; proc; fault } ->
    Fmt.pf ppf "[%a..%a] storage %a p%a" Time.pp at Time.pp until
      Storage.Store.pp_fault fault pp_endpoint proc
  | Link_window
      { at; until; src; dst; delay_min; delay_max; omission_prob; late_prob; _ }
    ->
    Fmt.pf ppf "[%a..%a] link %a->%a delay=[%a,%a] om=%.2f late=%.2f" Time.pp
      at Time.pp until pp_endpoint src pp_endpoint dst Time.pp delay_min
      Time.pp delay_max omission_prob late_prob

let pp ppf t =
  Fmt.pf ppf "plan seed=%d n=%d (%d ops)@,%a" t.seed t.n (List.length t.ops)
    Fmt.(vbox (list pp_op))
    t.ops

(* ------------------------------------------------------------------ *)
(* JSON artifact *)

let version = 1

let json_endpoint = function None -> J.Null | Some p -> J.Int p

let op_to_json op =
  match op with
  | Crash { at; proc } ->
    J.Obj [ ("op", J.String "crash"); ("at", J.Int at); ("proc", J.Int proc) ]
  | Recover { at; proc } ->
    J.Obj [ ("op", J.String "recover"); ("at", J.Int at); ("proc", J.Int proc) ]
  | Partition { at; block } ->
    J.Obj
      [
        ("op", J.String "partition");
        ("at", J.Int at);
        ("block", J.List (List.map (fun p -> J.Int p) block));
      ]
  | Heal { at } -> J.Obj [ ("op", J.String "heal"); ("at", J.Int at) ]
  | Omission_burst { at; until; prob; seed } ->
    J.Obj
      [
        ("op", J.String "omission-burst");
        ("at", J.Int at);
        ("until", J.Int until);
        ("prob", J.Float prob);
        ("seed", J.Int seed);
      ]
  | Filter_window { at; until; kind; src; dst } ->
    J.Obj
      [
        ("op", J.String "filter-window");
        ("at", J.Int at);
        ("until", J.Int until);
        ("kind", J.String kind);
        ("src", json_endpoint src);
        ("dst", json_endpoint dst);
      ]
  | Slow_window { at; until; prob; delay_max } ->
    J.Obj
      [
        ("op", J.String "slow-window");
        ("at", J.Int at);
        ("until", J.Int until);
        ("prob", J.Float prob);
        ("delay_max", J.Int delay_max);
      ]
  | Slow_member { at; until; proc; prob; delay_max } ->
    J.Obj
      [
        ("op", J.String "slow-member");
        ("at", J.Int at);
        ("until", J.Int until);
        ("proc", J.Int proc);
        ("prob", J.Float prob);
        ("delay_max", J.Int delay_max);
      ]
  | Storage_fault { at; until; proc; fault } ->
    J.Obj
      [
        ("op", J.String "storage-fault");
        ("at", J.Int at);
        ("until", J.Int until);
        ("proc", json_endpoint proc);
        ( "fault",
          J.String
            (match fault with
            | Storage.Store.Torn_write -> "torn-write"
            | Storage.Store.Lost_flush -> "lost-flush") );
      ]
  | Link_window
      {
        at;
        until;
        src;
        dst;
        delay_min;
        delay_max;
        omission_prob;
        late_prob;
        late_delay_max;
      } ->
    J.Obj
      [
        ("op", J.String "link-window");
        ("at", J.Int at);
        ("until", J.Int until);
        ("src", json_endpoint src);
        ("dst", json_endpoint dst);
        ("delay_min", J.Int delay_min);
        ("delay_max", J.Int delay_max);
        ("omission_prob", J.Float omission_prob);
        ("late_prob", J.Float late_prob);
        ("late_delay_max", J.Int late_delay_max);
      ]

let to_json t =
  J.Obj
    [
      ("version", J.Int version);
      ("seed", J.Int t.seed);
      ("n", J.Int t.n);
      ("ops", J.List (List.map op_to_json t.ops));
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv j =
  match Option.bind (J.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Fmt.str "plan artifact: bad or missing field %S" name)

let float_field name j =
  match J.member name j with
  | Some (J.Float f) -> Ok f
  | Some (J.Int i) -> Ok (float_of_int i)
  | _ -> Error (Fmt.str "plan artifact: bad or missing field %S" name)

let endpoint_field name j =
  match J.member name j with
  | Some J.Null | None -> Ok None
  | Some (J.Int p) -> Ok (Some p)
  | Some _ -> Error (Fmt.str "plan artifact: bad field %S" name)

let op_of_json j =
  let* tag = field "op" J.to_str j in
  let* at = field "at" J.to_int j in
  match tag with
  | "crash" ->
    let* proc = field "proc" J.to_int j in
    Ok (Crash { at; proc })
  | "recover" ->
    let* proc = field "proc" J.to_int j in
    Ok (Recover { at; proc })
  | "partition" ->
    let* block = field "block" J.to_list j in
    let* block =
      List.fold_right
        (fun p acc ->
          let* acc = acc in
          match J.to_int p with
          | Some p -> Ok (p :: acc)
          | None -> Error "plan artifact: non-integer partition member")
        block (Ok [])
    in
    Ok (Partition { at; block })
  | "heal" -> Ok (Heal { at })
  | "omission-burst" ->
    let* until = field "until" J.to_int j in
    let* prob = float_field "prob" j in
    let* seed = field "seed" J.to_int j in
    Ok (Omission_burst { at; until; prob; seed })
  | "filter-window" ->
    let* until = field "until" J.to_int j in
    let* kind = field "kind" J.to_str j in
    let* src = endpoint_field "src" j in
    let* dst = endpoint_field "dst" j in
    Ok (Filter_window { at; until; kind; src; dst })
  | "slow-window" ->
    let* until = field "until" J.to_int j in
    let* prob = float_field "prob" j in
    let* delay_max = field "delay_max" J.to_int j in
    Ok (Slow_window { at; until; prob; delay_max })
  | "slow-member" ->
    let* until = field "until" J.to_int j in
    let* proc = field "proc" J.to_int j in
    let* prob = float_field "prob" j in
    let* delay_max = field "delay_max" J.to_int j in
    Ok (Slow_member { at; until; proc; prob; delay_max })
  | "storage-fault" ->
    let* until = field "until" J.to_int j in
    let* proc = endpoint_field "proc" j in
    let* fault =
      match J.member "fault" j with
      | Some (J.String "torn-write") -> Ok Storage.Store.Torn_write
      | Some (J.String "lost-flush") -> Ok Storage.Store.Lost_flush
      | _ -> Error "plan artifact: bad or missing field \"fault\""
    in
    Ok (Storage_fault { at; until; proc; fault })
  | "link-window" ->
    let* until = field "until" J.to_int j in
    let* src = endpoint_field "src" j in
    let* dst = endpoint_field "dst" j in
    let* delay_min = field "delay_min" J.to_int j in
    let* delay_max = field "delay_max" J.to_int j in
    let* omission_prob = float_field "omission_prob" j in
    let* late_prob = float_field "late_prob" j in
    let* late_delay_max = field "late_delay_max" J.to_int j in
    Ok
      (Link_window
         {
           at;
           until;
           src;
           dst;
           delay_min;
           delay_max;
           omission_prob;
           late_prob;
           late_delay_max;
         })
  | tag -> Error (Fmt.str "plan artifact: unknown op %S" tag)

let of_json j =
  let* v = field "version" J.to_int j in
  if v <> version then Error (Fmt.str "plan artifact: unsupported version %d" v)
  else
    let* seed = field "seed" J.to_int j in
    let* n = field "n" J.to_int j in
    let* ops = field "ops" J.to_list j in
    let* ops =
      List.fold_right
        (fun op acc ->
          let* acc = acc in
          let* op = op_of_json op in
          Ok (op :: acc))
        ops (Ok [])
    in
    Ok { seed; n; ops }

let save path t = J.write_file path (to_json t)

let load path =
  let* j = J.read_file path in
  of_json j
