(** The live poll loop: one or many {!Node}s multiplexed over
    [Unix.select].

    Runs the classic single-threaded event loop: poll every node
    (advancing timer wheels to the shared monotonic clock and
    dispatching), compute the earliest pending timer deadline across
    nodes, sleep in [select] on every live socket until that deadline,
    hand readable sockets back to their nodes, repeat. With one node
    this is the per-process runtime of the one-process-per-member
    deployment; with N nodes it is the in-process multi-instance mode
    (N real UDP sockets on localhost, one OS process). *)

open Tasim

type ('s, 'm, 'obs) t

val create :
  clock:Clock.t -> nodes:('s, 'm, 'obs) Node.t list -> ('s, 'm, 'obs) t

val nodes : ('s, 'm, 'obs) t -> ('s, 'm, 'obs) Node.t list
val node : ('s, 'm, 'obs) t -> Proc_id.t -> ('s, 'm, 'obs) Node.t
(** Raises [Not_found] on an id no node carries. *)

val start : ('s, 'm, 'obs) t -> unit
(** {!Node.start} every node. *)

val run_until :
  ('s, 'm, 'obs) t ->
  deadline:Time.t ->
  ?poll_cap:Time.t ->
  (unit -> bool) ->
  bool
(** Drive the loop until the predicate holds (checked once per
    iteration, after polling) or the monotonic clock passes
    [deadline]. Returns [true] iff the predicate was met. [poll_cap]
    (default 100 ms) bounds each select sleep so predicate changes
    caused by external action (kill/restart from a signal handler,
    say) are noticed promptly. *)

val select_timeout : progressed:bool -> now:Time.t -> next:Time.t -> float
(** The select sleep (seconds) given the earliest pending deadline
    [next] and whether the last poll pass did any work. A future
    [next] sleeps until it; an overdue [next] re-polls immediately
    only after a productive pass, and otherwise sleeps a small floor —
    an overdue deadline a barren poll could not retire cannot be
    retired until real time advances, and a zero timeout would
    busy-spin on it. Exposed for the regression test. *)

val run_for : ('s, 'm, 'obs) t -> span:Time.t -> unit
(** [run_until] with an always-false predicate: plain running. *)
