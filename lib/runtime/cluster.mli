(** The live poll loop: one or many {!Node}s multiplexed over
    [poll(2)] (via {!Poll} — no FD_SETSIZE cap, unlike the
    [Unix.select] loop it replaced).

    Runs the classic single-threaded event loop: poll every node
    (advancing timer wheels to the shared monotonic clock and
    dispatching), compute the earliest pending timer deadline across
    nodes, sleep in [poll] on every live socket until that deadline,
    hand readable sockets back to their nodes, repeat. With one node
    this is the per-process runtime of the one-process-per-member
    deployment; with N nodes it is the in-process multi-instance mode
    (N real UDP sockets on localhost, one OS process).

    {!Sharded} scales this across OCaml 5 domains: each shard runs
    its own loop over its own nodes — per-domain timer wheels,
    dispatchers, clocks and sockets, with no shared mutable state
    between shards (the codec's scratch is domain-local and {!Stats}
    counters are atomic, so nothing leaks across). *)

open Tasim

type ('s, 'm, 'obs) t

val create :
  clock:Clock.t -> nodes:('s, 'm, 'obs) Node.t list -> ('s, 'm, 'obs) t

val nodes : ('s, 'm, 'obs) t -> ('s, 'm, 'obs) Node.t list
val node : ('s, 'm, 'obs) t -> Proc_id.t -> ('s, 'm, 'obs) Node.t
(** Raises [Not_found] on an id no node carries. *)

val start : ('s, 'm, 'obs) t -> unit
(** {!Node.start} every node. *)

val run_until :
  ('s, 'm, 'obs) t ->
  deadline:Time.t ->
  ?poll_cap:Time.t ->
  (unit -> bool) ->
  bool
(** Drive the loop until the predicate holds (checked once per
    iteration, after polling) or the monotonic clock passes
    [deadline]. Returns [true] iff the predicate was met. [poll_cap]
    (default 100 ms) bounds each select sleep so predicate changes
    caused by external action (kill/restart from a signal handler,
    say) are noticed promptly. *)

val select_timeout : progressed:bool -> now:Time.t -> next:Time.t -> float
(** The select sleep (seconds) given the earliest pending deadline
    [next] and whether the last poll pass did any work. A future
    [next] sleeps until it; an overdue [next] re-polls immediately
    only after a productive pass, and otherwise sleeps a small floor —
    an overdue deadline a barren poll could not retire cannot be
    retired until real time advances, and a zero timeout would
    busy-spin on it. Exposed for the regression test. *)

val run_for : ('s, 'm, 'obs) t -> span:Time.t -> unit
(** [run_until] with an always-false predicate: plain running. *)

(** {1 Multicore sharding} *)

module Sharded : sig
  val recommended : unit -> int
  (** [Domain.recommended_domain_count ()]: how many shards this
      machine can actually run in parallel. *)

  val run : shards:int -> (shard:int -> 'a) -> 'a list
  (** [run ~shards f] runs [f ~shard:i] for [i] in [0..shards-1], each
      in its own domain (inline when [shards = 1]), and returns the
      results in shard order. [f] must build everything it touches —
      clock, transports, nodes, cluster — inside the call so each
      domain owns its state; shards must not share a port range. All
      domains are joined before any shard's exception is re-raised.
      Raises [Invalid_argument] when [shards <= 0]. *)
end
