(** Monotonized wall clock for the live runtime.

    The pure automata consume {!Tasim.Time.t} hardware-clock readings;
    in the live runtime those readings are microseconds elapsed since
    the clock was created. OCaml's stdlib exposes no monotonic clock,
    so this wraps [Unix.gettimeofday] and clamps backwards jumps (NTP
    steps): successive {!now} readings never decrease. Per-process
    origins differ across OS processes — exactly the situation the
    fail-aware clock synchronization protocol exists to handle. *)

open Tasim

type t

val create : unit -> t
(** Origin is the moment of creation: the first {!now} reads ~0. *)

val now : t -> Time.t
(** Microseconds since creation; never decreases. *)
