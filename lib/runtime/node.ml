open Tasim

(* wheel resolution: fine enough that timer slop stays well inside the
   protocol's scheduling-delay budget sigma, coarse enough that
   advancing over long idle stretches is cheap *)
let wheel_tick_us = 500

type 'm ev = Ev_recv of Proc_id.t * 'm | Ev_timer of { key : int; gen : int }

let kind_recv = 0
let kind_timer = 1

type timer_slot = {
  mutable wheel_id : Eventloop.Timer_wheel.timer_id option;
  mutable gen : int;
}

type ('s, 'm, 'obs) t = {
  automaton : ('s, 'm, 'obs) Engine.automaton;
  clock : Clock.t;
  mk_transport : Stats.t -> 'm Transport.t;
  stats : Stats.t;
  wheel : Eventloop.Timer_wheel.t;
  dispatcher : 'm ev Eventloop.Dispatcher.t;
  timers : (int, timer_slot) Hashtbl.t;
  on_obs : Time.t -> 'obs -> unit;
  on_log : string -> unit;
  mutable transport : 'm Transport.t;
  mutable state : 's option;
  mutable incarnation : int;
  mutable paused : bool;
}

let self t = Transport.self t.transport
let stats t = t.stats
let state t = t.state
let is_up t = t.state <> None
let incarnation t = t.incarnation

let is_paused t = t.paused

let fd t =
  if t.state = None || t.paused || Transport.is_closed t.transport then None
  else Some (Transport.fd t.transport)

let slot_of t key =
  match Hashtbl.find_opt t.timers key with
  | Some slot -> slot
  | None ->
    let slot = { wheel_id = None; gen = 0 } in
    Hashtbl.replace t.timers key slot;
    slot

let cancel_slot t slot =
  (match slot.wheel_id with
  | Some id -> ignore (Eventloop.Timer_wheel.cancel t.wheel id)
  | None -> ());
  slot.wheel_id <- None;
  slot.gen <- slot.gen + 1

let set_timer t ~key ~at_clock =
  let slot = slot_of t key in
  cancel_slot t slot;
  let gen = slot.gen in
  let id =
    Eventloop.Timer_wheel.schedule t.wheel ~at:(Time.to_us at_clock)
      (fun () ->
        slot.wheel_id <- None;
        Eventloop.Dispatcher.post t.dispatcher ~kind:kind_timer
          (Ev_timer { key; gen }))
  in
  slot.wheel_id <- Some id

let apply_effect t eff =
  match eff with
  | Engine.Send (dst, m) -> Transport.send t.transport ~dst m
  | Engine.Broadcast m -> Transport.broadcast t.transport m
  | Engine.Set_timer { key; at_clock } -> set_timer t ~key ~at_clock
  | Engine.Cancel_timer key -> (
    match Hashtbl.find_opt t.timers key with
    | Some slot -> cancel_slot t slot
    | None -> ())
  | Engine.Observe o -> t.on_obs (Clock.now t.clock) o
  | Engine.Log line -> t.on_log line

let step t f =
  match t.state with
  | None -> ()
  | Some s ->
    let clock = Clock.now t.clock in
    let s, effects = f s ~clock in
    t.state <- Some s;
    List.iter (apply_effect t) effects

let handle t ev =
  match ev with
  | Ev_recv (src, m) ->
    step t (fun s ~clock -> t.automaton.Engine.on_receive s ~clock ~src m)
  | Ev_timer { key; gen } -> (
    (* a re-arm or cancellation after this fire was posted makes it
       stale: the engine contract is that re-arming replaces any
       pending occurrence *)
    match Hashtbl.find_opt t.timers key with
    | Some slot when slot.gen = gen ->
      step t (fun s ~clock -> t.automaton.Engine.on_timer s ~clock ~key)
    | Some _ | None -> Stats.incr t.stats "live:timer-stale")

let create ~automaton ~clock ~mk_transport ?(on_obs = fun _ _ -> ())
    ?(on_log = fun _ -> ()) () =
  let stats = Stats.create () in
  let t =
    {
      automaton;
      clock;
      mk_transport;
      stats;
      wheel = Eventloop.Timer_wheel.create ~tick:wheel_tick_us ();
      dispatcher = Eventloop.Dispatcher.create ();
      timers = Hashtbl.create 16;
      on_obs;
      on_log;
      transport = mk_transport stats;
      state = None;
      incarnation = 0;
      paused = false;
    }
  in
  Eventloop.Dispatcher.register t.dispatcher ~kind:kind_recv (handle t);
  Eventloop.Dispatcher.register t.dispatcher ~kind:kind_timer (handle t);
  t

let run_init t =
  let clock = Clock.now t.clock in
  let s, effects =
    t.automaton.Engine.init ~self:(self t) ~n:(Transport.n t.transport) ~clock
      ~incarnation:t.incarnation
  in
  t.state <- Some s;
  List.iter (apply_effect t) effects;
  (* init runs outside the poll loop, so its sends (join broadcasts)
     must leave now rather than wait for the first poll's flush *)
  Transport.flush t.transport

let start t = if t.state = None then run_init t

let kill t =
  if t.state <> None then begin
    t.state <- None;
    t.paused <- false;
    Hashtbl.iter (fun _ slot -> cancel_slot t slot) t.timers;
    Hashtbl.reset t.timers;
    (* stale queued events dispatch as no-ops (state is gone); drain
       them so they cannot leak into the next incarnation *)
    ignore (Eventloop.Dispatcher.run_pending t.dispatcher);
    Transport.close t.transport;
    Stats.incr t.stats "live:kill"
  end

let restart t =
  if t.state = None then begin
    if Transport.is_closed t.transport then
      t.transport <- t.mk_transport t.stats;
    t.incarnation <- t.incarnation + 1;
    Stats.incr t.stats "live:restart";
    run_init t
  end

(* The SIGSTOP analog: a paused node's process is off the scheduler —
   it reads nothing from its socket (datagrams queue in the kernel
   buffer, then overflow and drop, exactly like a stopped process), no
   timer fires, no event dispatches, and its deadlines stop driving
   the poll loop. State, socket and pending events all survive;
   [resume] puts the node back and the next [poll] advances the wheel
   across the whole gap in one jump — every timer that came due while
   stopped fires late, which is precisely the scenario the paper's
   wrong-suspicion state and Lifeguard-style local health absorb. *)
let pause t =
  if t.state <> None && not t.paused then begin
    t.paused <- true;
    Stats.incr t.stats "live:pause"
  end

let resume t =
  if t.paused then begin
    t.paused <- false;
    Stats.incr t.stats "live:resume"
  end

let inject t m =
  if t.state <> None then
    Eventloop.Dispatcher.post t.dispatcher ~kind:kind_recv
      (Ev_recv (self t, m))

(* bounded batch per readiness wake-up: a peer flooding the socket can
   delay our timers by at most one batch before the loop services the
   wheel again; leftovers re-trigger readiness immediately *)
let drain_budget = 64

let recv_ready t =
  ignore
    (Transport.drain ~budget:drain_budget t.transport ~handler:(fun ~src m ->
         Eventloop.Dispatcher.post t.dispatcher ~kind:kind_recv
           (Ev_recv (src, m))))

let poll t ~now =
  if t.state = None || t.paused then 0
  else begin
    let released = Transport.pump t.transport ~now in
    let fired = Eventloop.Timer_wheel.advance t.wheel ~to_:(Time.to_us now) in
    let dispatched = Eventloop.Dispatcher.run_pending t.dispatcher in
    (* end of the dispatch pass: everything the handlers sent leaves
       as one batch *)
    Transport.flush t.transport;
    released + fired + dispatched
  end

let transport t = t.transport

let next_deadline t =
  if t.state = None || t.paused then None
  else
    let wheel = Option.map Time.of_us (Eventloop.Timer_wheel.next_expiry t.wheel) in
    match (wheel, Transport.next_release t.transport) with
    | None, release -> release
    | wheel, None -> wheel
    | Some a, Some b -> Some (Time.min a b)
