(* CRC-32/ISO-HDLC: reflected polynomial 0xEDB88320, init and final
   xor 0xFFFFFFFF — byte-at-a-time with a precomputed table. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let digest ?(crc = 0l) s ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length s then
    invalid_arg "Crc32.digest: slice out of bounds";
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string s = digest s ~pos:0 ~len:(String.length s)
