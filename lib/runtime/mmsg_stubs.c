/* Batched-UDP and poll(2) stubs for the live runtime.
 *
 * sendmmsg/recvmmsg are Linux-only; elsewhere (or on ENOSYS) the
 * stubs report "unsupported" and the OCaml side falls back to a
 * portable sendto/recvfrom loop. Errors are returned as small
 * negative codes rather than raised, so the OCaml caller can keep
 * its existing drop-on-pressure semantics without exception churn:
 *
 *   >= 0  number of messages sent/received
 *   -1    would block / no buffer space (EAGAIN, EWOULDBLOCK, ENOBUFS)
 *   -2    connection refused (async ICMP from an earlier datagram)
 *   -3    interrupted (EINTR)
 *   -4    other error
 *   -5    unsupported on this platform (compile-time or ENOSYS)
 *
 * The mmsg stubs use MSG_DONTWAIT and never block, so they keep the
 * OCaml runtime lock; tw_poll blocks and must release it (a domain
 * sleeping in poll would otherwise stall every other domain's GC).
 */

#define _GNU_SOURCE

#include <caml/mlvalues.h>
#include <caml/memory.h>
#include <caml/threads.h>

#include <errno.h>
#include <poll.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#ifdef __linux__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#endif

#define TW_ERR_WOULDBLOCK (-1)
#define TW_ERR_REFUSED (-2)
#define TW_ERR_INTR (-3)
#define TW_ERR_OTHER (-4)
#define TW_ERR_UNSUPPORTED (-5)

/* At most this many datagrams per syscall; the OCaml side loops. */
#define TW_MMSG_SLOTS 64

#ifdef __linux__
static value tw_map_errno(int err)
{
  switch (err) {
  case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
  case EWOULDBLOCK:
#endif
  case ENOBUFS:
    return Val_int(TW_ERR_WOULDBLOCK);
  case ECONNREFUSED:
    return Val_int(TW_ERR_REFUSED);
  case EINTR:
    return Val_int(TW_ERR_INTR);
  case ENOSYS:
    return Val_int(TW_ERR_UNSUPPORTED);
  default:
    return Val_int(TW_ERR_OTHER);
  }
}
#endif

CAMLprim value tw_mmsg_supported(value unit)
{
  (void)unit;
#ifdef __linux__
  return Val_true;
#else
  return Val_false;
#endif
}

/* tw_sendmmsg fd buf meta from count
 *
 * [buf] holds encoded frames back to back; [meta] is an int array
 * laid out as [off; len; port] per message. Sends messages
 * [from, min (from + TW_MMSG_SLOTS, count)) to 127.0.0.1:port in one
 * syscall and returns how many left the socket. All destinations are
 * loopback by construction of the live transport.
 */
CAMLprim value tw_sendmmsg(value v_fd, value v_buf, value v_meta,
                           value v_from, value v_count)
{
#ifdef __linux__
  int fd = Int_val(v_fd);
  long from = Long_val(v_from);
  long count = Long_val(v_count);
  long n = count - from;
  struct mmsghdr hdr[TW_MMSG_SLOTS];
  struct iovec iov[TW_MMSG_SLOTS];
  struct sockaddr_in addr[TW_MMSG_SLOTS];
  char *base = (char *)Bytes_val(v_buf);
  long i;
  int r;

  if (n > TW_MMSG_SLOTS) n = TW_MMSG_SLOTS;
  if (n <= 0) return Val_int(0);
  for (i = 0; i < n; i++) {
    long off = Long_val(Field(v_meta, 3 * (from + i)));
    long len = Long_val(Field(v_meta, (3 * (from + i)) + 1));
    long port = Long_val(Field(v_meta, (3 * (from + i)) + 2));
    memset(&addr[i], 0, sizeof(addr[i]));
    addr[i].sin_family = AF_INET;
    addr[i].sin_port = htons((uint16_t)port);
    addr[i].sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    iov[i].iov_base = base + off;
    iov[i].iov_len = (size_t)len;
    memset(&hdr[i], 0, sizeof(hdr[i]));
    hdr[i].msg_hdr.msg_iov = &iov[i];
    hdr[i].msg_hdr.msg_iovlen = 1;
    hdr[i].msg_hdr.msg_name = &addr[i];
    hdr[i].msg_hdr.msg_namelen = sizeof(addr[i]);
  }
  r = sendmmsg(fd, hdr, (unsigned int)n, MSG_DONTWAIT);
  if (r >= 0) return Val_int(r);
  return tw_map_errno(errno);
#else
  (void)v_fd;
  (void)v_buf;
  (void)v_meta;
  (void)v_from;
  (void)v_count;
  return Val_int(TW_ERR_UNSUPPORTED);
#endif
}

/* tw_recvmmsg fd ring slot lens vlen
 *
 * [ring] is a preallocated Bytes of at least vlen*slot; message i
 * lands at offset i*slot and its length is written to lens.(i).
 * [slot] must be >= the largest possible datagram so nothing is ever
 * truncated. Sender addresses are not collected — the transport
 * already drops foreign frames by the sender id inside the frame.
 */
CAMLprim value tw_recvmmsg(value v_fd, value v_ring, value v_slot,
                           value v_lens, value v_vlen)
{
#ifdef __linux__
  int fd = Int_val(v_fd);
  long slot = Long_val(v_slot);
  long vlen = Long_val(v_vlen);
  struct mmsghdr hdr[TW_MMSG_SLOTS];
  struct iovec iov[TW_MMSG_SLOTS];
  char *base = (char *)Bytes_val(v_ring);
  long i;
  int r;

  if (vlen > TW_MMSG_SLOTS) vlen = TW_MMSG_SLOTS;
  if (vlen <= 0) return Val_int(0);
  for (i = 0; i < vlen; i++) {
    iov[i].iov_base = base + (i * slot);
    iov[i].iov_len = (size_t)slot;
    memset(&hdr[i], 0, sizeof(hdr[i]));
    hdr[i].msg_hdr.msg_iov = &iov[i];
    hdr[i].msg_hdr.msg_iovlen = 1;
  }
  r = recvmmsg(fd, hdr, (unsigned int)vlen, MSG_DONTWAIT, NULL);
  if (r >= 0) {
    for (i = 0; i < r; i++)
      Field(v_lens, i) = Val_long((long)hdr[i].msg_len);
    return Val_int(r);
  }
  return tw_map_errno(errno);
#else
  (void)v_fd;
  (void)v_ring;
  (void)v_slot;
  (void)v_lens;
  (void)v_vlen;
  return Val_int(TW_ERR_UNSUPPORTED);
#endif
}

/* tw_poll fds revents nfds timeout_ms
 *
 * POLLIN-polls [nfds] descriptors; revents.(i) is set to 1 when
 * descriptor i is readable (or in error/hangup — the subsequent read
 * surfaces the condition), 0 otherwise. Returns the number of ready
 * descriptors, or a negative code. Unlike select(2) there is no
 * FD_SETSIZE cap on descriptor values.
 */
CAMLprim value tw_poll(value v_fds, value v_revents, value v_nfds,
                       value v_timeout_ms)
{
  CAMLparam4(v_fds, v_revents, v_nfds, v_timeout_ms);
  long nfds = Long_val(v_nfds);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd stack_pfd[64];
  struct pollfd *pfd = stack_pfd;
  long i;
  int r;

  if (nfds > 64) {
    pfd = malloc(sizeof(struct pollfd) * (size_t)nfds);
    if (pfd == NULL) CAMLreturn(Val_int(TW_ERR_OTHER));
  }
  for (i = 0; i < nfds; i++) {
    pfd[i].fd = Int_val(Field(v_fds, i));
    pfd[i].events = POLLIN;
    pfd[i].revents = 0;
  }
  caml_release_runtime_system();
  r = poll(pfd, (nfds_t)nfds, timeout);
  caml_acquire_runtime_system();
  for (i = 0; i < nfds; i++)
    Field(v_revents, i) =
        Val_int((pfd[i].revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL))
                    ? 1
                    : 0);
  if (pfd != stack_pfd) free(pfd);
  if (r < 0)
    CAMLreturn(Val_int(errno == EINTR ? TW_ERR_INTR : TW_ERR_OTHER));
  CAMLreturn(Val_int(r));
}
