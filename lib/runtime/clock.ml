open Tasim

type t = { origin : float; mutable last : Time.t }

let create () = { origin = Unix.gettimeofday (); last = Time.zero }

let now t =
  let raw = Time.of_us (int_of_float ((Unix.gettimeofday () -. t.origin) *. 1e6)) in
  let v = Time.max raw t.last in
  t.last <- v;
  v
