open Tasim
open Broadcast
open Timewheel

type backend = Memory of (int, Member.persistent) Hashtbl.t | Disk of string

type t = backend

let in_memory () = Memory (Hashtbl.create 8)
let on_disk ~dir = Disk dir

let record_magic = "TWST1"

let wire_of_persistent (p : Member.persistent) =
  let w = Wire.writer () in
  Wire.string w record_magic;
  Wire.int w (Group_id.epoch p.Member.last_group_id);
  Wire.int w (Group_id.seq p.Member.last_group_id);
  Wire.list
    (fun w pid -> Wire.int w (Proc_id.to_int pid))
    w
    (Proc_set.to_list p.Member.last_group);
  Wire.contents w

let persistent_of_wire s =
  match
    let r = Wire.reader s in
    if Wire.r_string r <> record_magic then Wire.fail "bad record magic";
    let epoch = Wire.r_int r in
    let seq = Wire.r_int r in
    let group =
      Proc_set.of_list
        (Wire.r_list (fun r -> Proc_id.of_int (Wire.r_int r)) r)
    in
    if Wire.remaining r <> 0 then Wire.fail "trailing bytes";
    { Member.last_group_id = Group_id.v ~epoch ~seq; last_group = group }
  with
  | record -> Some record
  | exception Wire.Error _ -> None
  | exception Invalid_argument _ -> None

let file_of dir proc =
  Filename.concat dir (Printf.sprintf "member-%d.tw" (Proc_id.to_int proc))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let persist t ~self record =
  match t with
  | Memory tbl -> Hashtbl.replace tbl (Proc_id.to_int self) record
  | Disk dir ->
    mkdir_p dir;
    let path = file_of dir self in
    let tmp = path ^ ".tmp" in
    let oc = open_out_bin tmp in
    output_string oc (wire_of_persistent record);
    close_out oc;
    Sys.rename tmp path

let restore t ~self =
  match t with
  | Memory tbl -> Hashtbl.find_opt tbl (Proc_id.to_int self)
  | Disk dir -> (
    let path = file_of dir self in
    match
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with
    | s -> persistent_of_wire s
    | exception Sys_error _ -> None)
