open Tasim
open Broadcast
open Timewheel

type fault = Torn_write | Lost_flush | Io_error of Unix.error

let pp_fault ppf = function
  | Torn_write -> Fmt.string ppf "torn-write"
  | Lost_flush -> Fmt.string ppf "lost-flush"
  | Io_error e -> Fmt.pf ppf "io-error:%s" (Unix.error_message e)

let persist_attempts = 3

type counters = {
  persisted : Stats.counter;
  persist_failed : Stats.counter;
  retried : Stats.counter;
  fault_torn : Stats.counter;
  fault_lost : Stats.counter;
  fault_io : Stats.counter;
  restored : Stats.counter;
  restore_corrupt : Stats.counter;
  restore_missing : Stats.counter;
  tmp_discarded : Stats.counter;
}

type backend =
  | Memory of {
      durable : (int, Member.persistent) Hashtbl.t;
      cached : (int, Member.persistent) Hashtbl.t;
          (* lost-flush writes: visible to this incarnation, gone
             after a machine crash (note_crash) *)
    }
  | Disk of {
      dir : string;
      shadow : (int, string option) Hashtbl.t;
          (* per member: the last bytes known flushed, captured before
             the first lost-flush overwrite; an entry means the file
             may be ahead of the disk and note_crash must revert it *)
    }

type t = {
  backend : backend;
  stats : Stats.t;
  c : counters;
  mutable fault_all : fault option;
  fault_per : (int, fault option) Hashtbl.t;
}

let counters stats =
  {
    persisted = Stats.counter stats "live:store:persist";
    persist_failed = Stats.counter stats "live:store:persist-failed";
    retried = Stats.counter stats "live:store:retry";
    fault_torn = Stats.counter stats "live:store:fault:torn-write";
    fault_lost = Stats.counter stats "live:store:fault:lost-flush";
    fault_io = Stats.counter stats "live:store:fault:io-error";
    restored = Stats.counter stats "live:store:restore";
    restore_corrupt = Stats.counter stats "live:store:restore-corrupt";
    restore_missing = Stats.counter stats "live:store:restore-missing";
    tmp_discarded = Stats.counter stats "live:store:tmp-discarded";
  }

let create backend stats =
  {
    backend;
    stats;
    c = counters stats;
    fault_all = None;
    fault_per = Hashtbl.create 4;
  }

let in_memory ?stats () =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  create
    (Memory { durable = Hashtbl.create 8; cached = Hashtbl.create 8 })
    stats

let on_disk ?stats ~dir () =
  let stats = match stats with Some s -> s | None -> Stats.create () in
  create (Disk { dir; shadow = Hashtbl.create 8 }) stats

let stats t = t.stats

let set_fault t ?proc f =
  match proc with
  | Some p -> Hashtbl.replace t.fault_per (Proc_id.to_int p) f
  | None ->
    t.fault_all <- f;
    Hashtbl.reset t.fault_per

let fault_of t proc =
  match Hashtbl.find_opt t.fault_per (Proc_id.to_int proc) with
  | Some f -> f
  | None -> t.fault_all

(* ------------------------------------------------------------------ *)
(* Record codec: "TWST2" magic | epoch | seq | member list | CRC-32.

   The CRC covers everything before it and is stored as four raw
   big-endian bytes (fixed width, so the covered span is just
   [len - 4]). A record that parses but fails the checksum — a bit
   flip that landed in a value byte — is rejected the same as one
   that does not parse at all. *)

let record_magic = "TWST2"

let wire_of_persistent (p : Member.persistent) =
  let w = Wire.writer () in
  Wire.string w record_magic;
  Wire.int w (Group_id.epoch p.Member.last_group_id);
  Wire.int w (Group_id.seq p.Member.last_group_id);
  Wire.list
    (fun w pid -> Wire.int w (Proc_id.to_int pid))
    w
    (Proc_set.to_list p.Member.last_group);
  let payload = Wire.contents w in
  let crc = Crc32.string payload in
  let b = Bytes.create (String.length payload + 4) in
  Bytes.blit_string payload 0 b 0 (String.length payload);
  Bytes.set b (String.length payload)
    (Char.chr (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff));
  Bytes.set b (String.length payload + 1)
    (Char.chr (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff));
  Bytes.set b (String.length payload + 2)
    (Char.chr (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff));
  Bytes.set b (String.length payload + 3)
    (Char.chr (Int32.to_int crc land 0xff));
  Bytes.unsafe_to_string b

let persistent_of_wire s =
  let len = String.length s in
  if len < 4 then None
  else begin
    let byte i = Int32.of_int (Char.code s.[i]) in
    let stored =
      Int32.logor
        (Int32.shift_left (byte (len - 4)) 24)
        (Int32.logor
           (Int32.shift_left (byte (len - 3)) 16)
           (Int32.logor (Int32.shift_left (byte (len - 2)) 8) (byte (len - 1))))
    in
    if not (Int32.equal stored (Crc32.digest s ~pos:0 ~len:(len - 4))) then
      None
    else
      match
        let r = Wire.reader ~pos:0 ~len:(len - 4) s in
        if Wire.r_string r <> record_magic then Wire.fail "bad record magic";
        let epoch = Wire.r_int r in
        let seq = Wire.r_int r in
        let group =
          Proc_set.of_list
            (Wire.r_list (fun r -> Proc_id.of_int (Wire.r_int r)) r)
        in
        if Wire.remaining r <> 0 then Wire.fail "trailing bytes";
        { Member.last_group_id = Group_id.v ~epoch ~seq; last_group = group }
      with
      | record -> Some record
      | exception Wire.Error _ -> None
      | exception Invalid_argument _ -> None
  end

(* ------------------------------------------------------------------ *)
(* Disk plumbing *)

let file_of dir proc =
  Filename.concat dir (Printf.sprintf "member-%d.tw" (Proc_id.to_int proc))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_all fd s ~len =
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write_substring fd s !off (len - !off)
  done

(* Directory fsync is what makes the rename itself durable; some
   filesystems refuse to open a directory read-only, so failure here
   is tolerated rather than treated as a failed persist. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())

let unlink_quietly path =
  try Sys.remove path with Sys_error _ -> ()

(* One full-durability write attempt: tmp, write, fsync, close,
   rename, fsync dir. Any failure (including an injected one) closes
   the descriptor and removes the tmp file before re-raising — the
   previous durable record is never at risk and nothing leaks. *)
let durable_write ?inject_error dir path ~len s =
  mkdir_p dir;
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  (match
     (match inject_error with
     | Some e -> raise (Unix.Unix_error (e, "write", tmp))
     | None -> ());
     write_all fd s ~len;
     Unix.fsync fd
   with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    unlink_quietly tmp;
    raise e);
  (match Unix.close fd with
  | () -> ()
  | exception e ->
    unlink_quietly tmp;
    raise e);
  (match Sys.rename tmp path with
  | () -> ()
  | exception e ->
    unlink_quietly tmp;
    raise e);
  fsync_dir dir

let read_record_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
    (fun () -> really_input_string ic (in_channel_length ic))

(* Capture the current on-disk bytes as the durable baseline before a
   lost-flush write makes the file run ahead of the disk. Only the
   first capture matters: later durable writes clear the entry. *)
let ensure_shadow d proc path =
  let i = Proc_id.to_int proc in
  if not (Hashtbl.mem d i) then
    Hashtbl.replace d i
      (match read_record_bytes path with
      | bytes -> Some bytes
      | exception (Sys_error _ | End_of_file) -> None)

(* ------------------------------------------------------------------ *)

let persist t ~self record =
  match t.backend with
  | Memory m -> (
    match fault_of t self with
    | Some Torn_write ->
      (* the write tears before it lands anywhere *)
      Stats.bump t.c.fault_torn;
      Stats.bump t.c.persist_failed
    | Some Lost_flush ->
      Stats.bump t.c.fault_lost;
      Hashtbl.replace m.cached (Proc_id.to_int self) record;
      Stats.bump t.c.persisted
    | Some (Io_error _) ->
      for _ = 2 to persist_attempts do
        Stats.bump t.c.retried
      done;
      Stats.bump t.c.fault_io;
      Stats.bump t.c.persist_failed
    | None ->
      Hashtbl.replace m.durable (Proc_id.to_int self) record;
      Hashtbl.remove m.cached (Proc_id.to_int self);
      Stats.bump t.c.persisted)
  | Disk d -> (
    let path = file_of d.dir self in
    let s = wire_of_persistent record in
    let len = String.length s in
    match fault_of t self with
    | Some Torn_write ->
      (* half the record reaches the tmp file, then the writer "dies":
         no fsync, no rename — the torn tmp is left behind exactly as
         a crashed writer would leave it, and the durable record
         survives untouched *)
      Stats.bump t.c.fault_torn;
      Stats.bump t.c.persist_failed;
      (try
         mkdir_p d.dir;
         let tmp = path ^ ".tmp" in
         let fd =
           Unix.openfile tmp
             [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
             0o644
         in
         (try write_all fd s ~len:(len / 2)
          with e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e);
         Unix.close fd
       with Sys_error _ | Unix.Unix_error _ | End_of_file -> ())
    | Some Lost_flush ->
      Stats.bump t.c.fault_lost;
      (try
         mkdir_p d.dir;
         ensure_shadow d.shadow self path;
         (* visible to this incarnation, but nothing was flushed: a
            machine crash (note_crash) reverts to the shadow *)
         let tmp = path ^ ".tmp" in
         let fd =
           Unix.openfile tmp
             [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
             0o644
         in
         (try write_all fd s ~len
          with e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            unlink_quietly tmp;
            raise e);
         Unix.close fd;
         Sys.rename tmp path;
         Stats.bump t.c.persisted
       with Sys_error _ | Unix.Unix_error _ | End_of_file ->
         Stats.bump t.c.persist_failed)
    | (Some (Io_error _) | None) as f ->
      let inject_error =
        match f with Some (Io_error e) -> Some e | _ -> None
      in
      let rec attempt k =
        match durable_write ?inject_error d.dir path ~len s with
        | () ->
          (* the file now matches the disk: nothing left to revert *)
          Hashtbl.remove d.shadow (Proc_id.to_int self);
          Stats.bump t.c.persisted
        | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) ->
          if k < persist_attempts then begin
            Stats.bump t.c.retried;
            attempt (k + 1)
          end
          else begin
            (* degrade: the node keeps running on in-memory state; the
               previous durable record is intact for the next restart *)
            if inject_error <> None then Stats.bump t.c.fault_io;
            Stats.bump t.c.persist_failed
          end
      in
      attempt 1)

let record_path t ~self =
  match t.backend with
  | Memory _ -> None
  | Disk d -> Some (file_of d.dir self)

let note_crash t ~self =
  match t.backend with
  | Memory m -> Hashtbl.remove m.cached (Proc_id.to_int self)
  | Disk d -> (
    let i = Proc_id.to_int self in
    match Hashtbl.find_opt d.shadow i with
    | None -> ()
    | Some baseline ->
      Hashtbl.remove d.shadow i;
      let path = file_of d.dir self in
      (match baseline with
      | Some bytes -> (
        try durable_write d.dir path ~len:(String.length bytes) bytes
        with Sys_error _ | Unix.Unix_error _ | End_of_file -> ())
      | None -> unlink_quietly path))

let restore t ~self =
  match t.backend with
  | Memory m -> (
    let i = Proc_id.to_int self in
    match Hashtbl.find_opt m.cached i with
    | Some _ as c ->
      Stats.bump t.c.restored;
      c
    | None -> (
      match Hashtbl.find_opt m.durable i with
      | Some _ as r ->
        Stats.bump t.c.restored;
        r
      | None ->
        Stats.bump t.c.restore_missing;
        None))
  | Disk d -> (
    let path = file_of d.dir self in
    (* a leftover tmp is the debris of a writer that died between
       open and rename; it never became the record, so discard it *)
    let tmp = path ^ ".tmp" in
    if Sys.file_exists tmp then begin
      Stats.bump t.c.tmp_discarded;
      unlink_quietly tmp
    end;
    if not (Sys.file_exists path) then begin
      Stats.bump t.c.restore_missing;
      None
    end
    else
      match read_record_bytes path with
      | exception (Sys_error _ | Unix.Unix_error _ | End_of_file) ->
        (* a directory squatting on the path, a permission error, a
           file shrinking under us: all amnesiac, never an exception *)
        Stats.bump t.c.restore_corrupt;
        None
      | bytes -> (
        match persistent_of_wire bytes with
        | Some _ as r ->
          Stats.bump t.c.restored;
          r
        | None ->
          Stats.bump t.c.restore_corrupt;
          None))
