(** Stable storage for live members.

    The member automaton persists its {!Timewheel.Member.persistent}
    record (last installed group id + membership) at every view
    install and restores it at (re)initialization, which is what makes
    a restart rejoin epoch-aware instead of amnesiac (see
    {!Broadcast.Group_id}). Two backends:

    - {!in_memory} — survives kill/restart of a member {e within} one
      OS process (the in-process multi-instance mode's model of stable
      storage);
    - {!on_disk} — one small binary file per member, written with full
      durability (write, fsync, atomic rename, fsync of the directory)
      and a CRC-32 trailer, surviving OS process restarts for the
      one-process-per-member mode.

    {2 Durability contract}

    - A record that {!restore} returns was accepted by its checksum: a
      torn write, a bit flip, truncation or trailing garbage on disk
      can never restore as valid state (it restores as [None],
      counted, and the member starts amnesiac — which the epoch
      machinery already tolerates).
    - {!persist} never raises and never leaks: on any write error the
      out-channel is closed and the [.tmp] file removed; the previous
      durable record survives. Transient errors are retried up to
      {!persist_attempts} times, then the store {e degrades} — the
      node keeps running on its in-memory state, the failure is
      counted ([live:store:persist-failed]), and only a restart whose
      {!restore} genuinely fails rejoins amnesiac.
    - {!restore} is total: a missing file, a directory squatting on the
      record path, a permission error, a leftover [.tmp] from a
      crashed writer — all restore as [Some] previous-valid-record or
      [None], never an exception. A leftover [.tmp] is discarded.

    {2 Fault hook}

    {!set_fault} mirrors {!Storage.Store.set_fault} for the live
    plane: [Torn_write] tears the record write mid-way (a prefix lands
    in the [.tmp] file, which is left behind; the durable record
    survives), [Lost_flush] completes the write visibly but skips the
    flush (this incarnation reads it back; {!note_crash} — the chaos
    driver's machine-crash analog — reverts to the last durable
    record), [Io_error] fails every write attempt with the given errno
    (exercising the bounded-retry-then-degrade path). All outcomes are
    counted under [live:store:*] in {!stats}. *)

open Tasim
open Timewheel

type t

type fault =
  | Torn_write  (** the write tears: half the record, no rename *)
  | Lost_flush  (** visible write, flush dropped; see {!note_crash} *)
  | Io_error of Unix.error  (** every write attempt fails with this *)

val pp_fault : fault Fmt.t

val persist_attempts : int
(** Write attempts per {!persist} before degrading (3). *)

val in_memory : ?stats:Stats.t -> unit -> t

val on_disk : ?stats:Stats.t -> dir:string -> unit -> t
(** Creates [dir] (and parents) on first persist. Unreadable or
    corrupt files restore as [None] — an amnesiac (epoch-0) start,
    which the epoch machinery already tolerates. *)

val stats : t -> Stats.t
(** The store's [live:store:*] counters: [persist], [persist-failed],
    [retry], [fault:torn-write], [fault:lost-flush], [fault:io-error],
    [restore], [restore-corrupt], [restore-missing],
    [tmp-discarded]. *)

val set_fault : t -> ?proc:Proc_id.t -> fault option -> unit
(** Install (or clear, with [None]) a fault for one member's writes,
    or — without [?proc] — for every member's, clearing per-member
    overrides. *)

val note_crash : t -> self:Proc_id.t -> unit
(** Machine-crash semantics for the chaos driver: discard whatever
    [self] wrote but never flushed (lost-flush writes), reverting to
    the last durable record. A node {e kill} alone does not lose
    flushed state; call this when the scenario means the whole machine
    died inside a lost-flush window. *)

val persist : t -> self:Proc_id.t -> Member.persistent -> unit
val restore : t -> self:Proc_id.t -> Member.persistent option

val record_path : t -> self:Proc_id.t -> string option
(** The on-disk record file for [self]; [None] for the in-memory
    backend. For tests and the chaos driver's direct on-disk
    corruption. *)

val wire_of_persistent : Member.persistent -> string
val persistent_of_wire : string -> Member.persistent option
(** Exposed for tests: the on-disk record codec ([TWST2] magic,
    payload, CRC-32 trailer). [persistent_of_wire] rejects any
    mutation of a valid record. *)
