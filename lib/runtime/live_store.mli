(** Stable storage for live members.

    The member automaton persists its {!Timewheel.Member.persistent}
    record (last installed group id + membership) at every view
    install and restores it at (re)initialization, which is what makes
    a restart rejoin epoch-aware instead of amnesiac (see
    {!Broadcast.Group_id}). Two backends:

    - {!in_memory} — survives kill/restart of a member {e within} one
      OS process (the in-process multi-instance mode's model of stable
      storage);
    - {!on_disk} — one small binary file per member, written
      atomically (temp file + rename), surviving OS process restarts
      for the one-process-per-member mode. *)

open Tasim
open Timewheel

type t

val in_memory : unit -> t

val on_disk : dir:string -> t
(** Creates [dir] (and parents) on first persist. Unreadable or
    corrupt files restore as [None] — an amnesiac (epoch-0) start,
    which the epoch machinery already tolerates. *)

val persist : t -> self:Proc_id.t -> Member.persistent -> unit
val restore : t -> self:Proc_id.t -> Member.persistent option

val wire_of_persistent : Member.persistent -> string
val persistent_of_wire : string -> Member.persistent option
(** Exposed for tests: the on-disk record codec. *)
