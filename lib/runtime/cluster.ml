open Tasim

type ('s, 'm, 'obs) t = {
  clock : Clock.t;
  nodes : ('s, 'm, 'obs) Node.t list;
}

let create ~clock ~nodes = { clock; nodes }
let nodes t = t.nodes

let node t proc =
  List.find (fun n -> Proc_id.equal (Node.self n) proc) t.nodes

let start t = List.iter Node.start t.nodes

let run_until t ~deadline ?(poll_cap = Time.of_ms 100) pred =
  let met = ref false in
  let give_up = ref false in
  while (not !met) && not !give_up do
    let now = Clock.now t.clock in
    List.iter (fun n -> Node.poll n ~now) t.nodes;
    if pred () then met := true
    else if Time.compare now deadline >= 0 then give_up := true
    else begin
      let next =
        List.fold_left
          (fun acc n ->
            match Node.next_deadline n with
            | Some d -> Time.min acc d
            | None -> acc)
          (Time.add now poll_cap) t.nodes
      in
      let next = Time.min next deadline in
      let timeout =
        Time.to_sec_f (Time.max Time.zero (Time.sub next now))
      in
      let fds =
        List.filter_map
          (fun n -> Option.map (fun fd -> (fd, n)) (Node.fd n))
          t.nodes
      in
      match Unix.select (List.map fst fds) [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, _, _ ->
        List.iter
          (fun fd ->
            match List.assq_opt fd fds with
            | Some n -> Node.recv_ready n
            | None -> ())
          readable
    end
  done;
  !met

let run_for t ~span =
  let deadline = Time.add (Clock.now t.clock) span in
  ignore (run_until t ~deadline (fun () -> false))
