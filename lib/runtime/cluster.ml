open Tasim

type ('s, 'm, 'obs) t = {
  clock : Clock.t;
  nodes : ('s, 'm, 'obs) Node.t list;
}

let create ~clock ~nodes = { clock; nodes }
let nodes t = t.nodes

let node t proc =
  List.find (fun n -> Proc_id.equal (Node.self n) proc) t.nodes

let start t = List.iter Node.start t.nodes

(* A node may report a deadline at or before [now] — a wheel expiry on
   the current tick boundary, or a clock monotonization plateau — and
   the poll that follows need not retire it. A raw [max 0] timeout
   then degrades the loop into a zero-timeout busy-spin: select
   returns instantly, poll does nothing, repeat at full CPU. The
   timeout is therefore a function of whether the last poll pass made
   progress: after a productive pass an overdue deadline legitimately
   wants an immediate re-poll; after a barren one it cannot be
   serviced until real time advances, so sleep a small floor. *)
let timeout_floor = Time.of_ms 1

let select_timeout ~progressed ~now ~next =
  let span = Time.sub next now in
  if Time.compare span Time.zero > 0 then Time.to_sec_f span
  else if progressed then 0.0
  else Time.to_sec_f timeout_floor

let run_until t ~deadline ?(poll_cap = Time.of_ms 100) pred =
  let met = ref false in
  let give_up = ref false in
  while (not !met) && not !give_up do
    let now = Clock.now t.clock in
    let progress =
      List.fold_left (fun acc n -> acc + Node.poll n ~now) 0 t.nodes
    in
    if pred () then met := true
    else if Time.compare now deadline >= 0 then give_up := true
    else begin
      let next =
        List.fold_left
          (fun acc n ->
            match Node.next_deadline n with
            | Some d -> Time.min acc d
            | None -> acc)
          (Time.add now poll_cap) t.nodes
      in
      let next = Time.min next deadline in
      let timeout = select_timeout ~progressed:(progress > 0) ~now ~next in
      (* poll(2), not select: no FD_SETSIZE cap on descriptor values,
         which a many-socket multi-domain process blows through. The
         timeout policy is unchanged; ms conversion rounds up so the
         anti-busy-spin floor survives the coarser unit. *)
      let live =
        Array.of_list
          (List.filter_map
             (fun n -> Option.map (fun fd -> (fd, n)) (Node.fd n))
             t.nodes)
      in
      let fds = Array.map fst live in
      let revents = Array.make (Array.length live) 0 in
      match Poll.wait ~fds ~revents ~timeout_ms:(Poll.ms_of_span timeout) with
      | Error (`Intr | `Error) -> ()
      | Ok _ready ->
        Array.iteri
          (fun i r -> if r <> 0 then Node.recv_ready (snd live.(i)))
          revents
    end
  done;
  !met

let run_for t ~span =
  let deadline = Time.add (Clock.now t.clock) span in
  ignore (run_until t ~deadline (fun () -> false))

(* ------------------------------------------------------------------ *)
(* Multicore sharding *)

module Sharded = struct
  let recommended () = Domain.recommended_domain_count ()

  let run ~shards f =
    if shards <= 0 then invalid_arg "Cluster.Sharded.run: shards must be > 0";
    if shards = 1 then [ f ~shard:0 ]
    else begin
      let domains =
        List.init shards (fun shard -> Domain.spawn (fun () -> f ~shard))
      in
      (* join everything before re-raising, so no domain is leaked
         when one shard fails *)
      let results =
        List.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains
      in
      List.map (function Ok v -> v | Error e -> raise e) results
    end
end
