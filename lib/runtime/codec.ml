open Tasim
open Broadcast
open Timewheel

let version = 1
let max_frame = 65507

type error =
  | Truncated
  | Bad_magic
  | Bad_version of int
  | Length_mismatch of { declared : int; actual : int }
  | Malformed of string

let pp_error ppf = function
  | Truncated -> Fmt.string ppf "truncated frame"
  | Bad_magic -> Fmt.string ppf "bad magic"
  | Bad_version v -> Fmt.pf ppf "unsupported version %d" v
  | Length_mismatch { declared; actual } ->
    Fmt.pf ppf "length mismatch (declared %d, actual %d)" declared actual
  | Malformed msg -> Fmt.pf ppf "malformed body: %s" msg

type ('u, 'app) payload = {
  write_u : Wire.writer -> 'u -> unit;
  read_u : Wire.reader -> 'u;
  write_app : Wire.writer -> 'app -> unit;
  read_app : Wire.reader -> 'app;
}

(* monomorphic recursive walk: [Wire.list] builds an [(f w)] closure on
   every call, which is the only allocation left on the state-transfer
   encode path *)
let rec w_string_items w = function
  | [] -> ()
  | s :: rest ->
    Wire.string w s;
    w_string_items w rest

let w_string_list w ss =
  Wire.int w (List.length ss);
  w_string_items w ss

let string_payload =
  {
    write_u = Wire.string;
    read_u = Wire.r_string;
    write_app = w_string_list;
    read_app = Wire.(r_list r_string);
  }

(* ---------------------------------------------------------------- *)
(* Leaf encoders *)

let w_proc w p = Wire.int w (Proc_id.to_int p)

let r_proc r =
  let i = Wire.r_int r in
  if i < 0 then Wire.fail "negative proc id";
  Proc_id.of_int i
let w_time w (t : Time.t) = Wire.int w (Time.to_us t)
let r_time r : Time.t = Time.of_us (Wire.r_int r)

(* Per-domain codec scratch, in domain-local storage so sharded
   clusters encode and decode concurrently without sharing mutable
   state. Within one domain the codec stays non-re-entrant (one frame
   at a time), which the runtime's single-threaded node loop
   guarantees; [Domain.DLS.get] is allocation-free after first touch,
   so the zero-allocation data plane survives.

   [sc_writer] is the writer a frame is currently being encoded into:
   iterating sets and oal entries through statically allocated
   callbacks that read this cell — instead of closures capturing the
   writer — keeps the per-datagram encode at zero heap allocation.

   [sc_sets] is the reused set builder: a decision frame at 64 members
   carries dozens of proc sets; building each via [Proc_set.of_list]
   costs an array copy per element plus the intermediate list, the
   builder one allocation per set. Sets never nest, so one per domain
   suffices.

   [sc_entries] is the oal-entry scratch: entries are parsed into this
   array and handed to [Oal.of_wire_indexed], skipping the
   intermediate list a [Wire.r_list] parse would build. Grows to the
   largest oal seen; stale slots beyond the current count are ignored.

   [sc_reader] is the reused frame reader for the decode path — one
   long-lived reader re-aimed per frame instead of allocated per
   frame. *)
type scratch = {
  mutable sc_writer : Wire.writer;
  sc_sets : Proc_set.Builder.t;
  mutable sc_entries : Oal.entry array;
  sc_reader : Wire.reader;
}

let scratch_key =
  Domain.DLS.new_key (fun () ->
      {
        sc_writer = Wire.writer ();
        sc_sets = Proc_set.Builder.create ();
        sc_entries = [||];
        sc_reader = Wire.reader "";
      })

let iter_proc p = w_proc (Domain.DLS.get scratch_key).sc_writer p

(* count + ascending members — the same bytes [Wire.list] over
   [Proc_set.to_list] produced, without materializing the list or
   building a per-call closure *)
let w_proc_set w s =
  Wire.int w (Proc_set.cardinal s);
  Proc_set.iter iter_proc s

let r_proc_set r =
  let count = Wire.r_int r in
  if count < 0 then Wire.fail "negative list count";
  if count > Wire.remaining r then Wire.fail "list count overruns frame";
  let set_builder = (Domain.DLS.get scratch_key).sc_sets in
  Proc_set.Builder.clear set_builder;
  for _ = 1 to count do
    Proc_set.Builder.add set_builder (r_proc r)
  done;
  Proc_set.Builder.build set_builder

let w_group_id w (g : Group_id.t) =
  Wire.int w (Group_id.epoch g);
  Wire.int w (Group_id.seq g)

let r_group_id r =
  let epoch = Wire.r_int r in
  let seq = Wire.r_int r in
  Group_id.v ~epoch ~seq

let w_ordering w (o : Semantics.ordering) =
  Wire.byte w
    (match o with Semantics.Unordered -> 0 | Total -> 1 | Timed -> 2)

let r_ordering r : Semantics.ordering =
  match Wire.r_byte r with
  | 0 -> Unordered
  | 1 -> Total
  | 2 -> Timed
  | b -> Wire.fail (Printf.sprintf "bad ordering tag %d" b)

let w_atomicity w (a : Semantics.atomicity) =
  Wire.byte w (match a with Semantics.Weak -> 0 | Strong -> 1 | Strict -> 2)

let r_atomicity r : Semantics.atomicity =
  match Wire.r_byte r with
  | 0 -> Weak
  | 1 -> Strong
  | 2 -> Strict
  | b -> Wire.fail (Printf.sprintf "bad atomicity tag %d" b)

let w_semantics w (s : Semantics.t) =
  w_ordering w s.Semantics.ordering;
  w_atomicity w s.Semantics.atomicity

let r_semantics r =
  let ordering = r_ordering r in
  let atomicity = r_atomicity r in
  { Semantics.ordering; atomicity }

let w_proposal_id w (id : Proposal.id) =
  w_proc w id.Proposal.origin;
  Wire.int w id.Proposal.seq

let r_proposal_id r =
  let origin = r_proc r in
  let seq = Wire.r_int r in
  { Proposal.origin; seq }

let w_proposal pc w (p : _ Proposal.t) =
  w_proposal_id w p.Proposal.id;
  w_semantics w p.semantics;
  w_time w p.send_ts;
  Wire.int w p.hdo;
  pc.write_u w p.payload

let r_proposal pc r =
  let id = r_proposal_id r in
  let semantics = r_semantics r in
  let send_ts = r_time r in
  let hdo = Wire.r_int r in
  let payload = pc.read_u r in
  { Proposal.id; semantics; send_ts; hdo; payload }

let w_update_info w (u : Oal.update_info) =
  w_proposal_id w u.Oal.proposal_id;
  w_semantics w u.semantics;
  w_time w u.send_ts;
  Wire.int w u.hdo

let r_update_info r =
  let proposal_id = r_proposal_id r in
  let semantics = r_semantics r in
  let send_ts = r_time r in
  let hdo = Wire.r_int r in
  { Oal.proposal_id; semantics; send_ts; hdo }

let w_oal_body w (b : Oal.body) =
  match b with
  | Oal.Update u ->
    Wire.byte w 0;
    w_update_info w u
  | Oal.Membership { group; group_id } ->
    Wire.byte w 1;
    w_proc_set w group;
    w_group_id w group_id

let r_oal_body r : Oal.body =
  match Wire.r_byte r with
  | 0 -> Oal.Update (r_update_info r)
  | 1 ->
    let group = r_proc_set r in
    let group_id = r_group_id r in
    Oal.Membership { group; group_id }
  | b -> Wire.fail (Printf.sprintf "bad oal body tag %d" b)

let w_oal_entry w (e : Oal.entry) =
  Wire.int w e.Oal.ordinal;
  w_oal_body w e.body;
  w_proc_set w e.acks;
  Wire.bool w e.undeliverable;
  Wire.bool w e.known_stable

let r_oal_entry r =
  let ordinal = Wire.r_int r in
  let body = r_oal_body r in
  let acks = r_proc_set r in
  let undeliverable = Wire.r_bool r in
  let known_stable = Wire.r_bool r in
  { Oal.ordinal; body; acks; undeliverable; known_stable }

let w_latest w (ordinal, group, group_id) =
  Wire.int w ordinal;
  w_proc_set w group;
  w_group_id w group_id

let r_latest r =
  let ordinal = Wire.r_int r in
  let group = r_proc_set r in
  let group_id = r_group_id r in
  (ordinal, group, group_id)

let iter_oal_entry _ordinal e =
  w_oal_entry (Domain.DLS.get scratch_key).sc_writer e

(* field-for-field the bytes of the [Oal.to_wire] view, but walking the
   live structure directly: the oal rides in every decision message, so
   its encoder is the steady-state hot path and must not allocate *)
let w_oal w oal =
  Wire.int w (Oal.low oal);
  Wire.int w (Oal.next_ordinal oal);
  Wire.int w (Oal.cardinal oal);
  Oal.iter_entries_ord oal iter_oal_entry;
  Wire.option w_latest w (Oal.latest_membership oal)

let r_oal r =
  let w_low = Wire.r_int r in
  let w_next_ordinal = Wire.r_int r in
  let count = Wire.r_int r in
  if count < 0 then Wire.fail "negative list count";
  if count > Wire.remaining r then Wire.fail "list count overruns frame";
  let scratch = Domain.DLS.get scratch_key in
  if count > 0 then begin
    let e0 = r_oal_entry r in
    if Array.length scratch.sc_entries < count then
      scratch.sc_entries <- Array.make (Stdlib.max count 64) e0
    else scratch.sc_entries.(0) <- e0;
    let sc = scratch.sc_entries in
    for i = 1 to count - 1 do
      sc.(i) <- r_oal_entry r
    done
  end;
  let w_latest = Wire.r_option r_latest r in
  let sc = scratch.sc_entries in
  match
    Oal.of_wire_indexed ~low:w_low ~next_ordinal:w_next_ordinal
      ~latest:w_latest ~count
      ~entry:(fun i -> sc.(i))
  with
  | Ok oal -> oal
  | Error msg -> Wire.fail msg

(* Monomorphic recursive list writers and accumulator-threaded fold
   callbacks: [Wire.list f w items] costs one [(f w)] partial
   application per call, and [Buffers.to_wire] materializes the wire
   lists — together the residual minor words the state-transfer (and
   nack / no-decision / reconfiguration) encode paths showed. Walking
   the live structure with full applications emits identical bytes
   with zero allocation. *)

let fold_w_proposal _id (p : _ Proposal.t) pc =
  w_proposal pc (Domain.DLS.get scratch_key).sc_writer p;
  pc

let fold_w_delivered id ordinal () =
  let w = (Domain.DLS.get scratch_key).sc_writer in
  w_proposal_id w id;
  match ordinal with
  | None -> Wire.byte w 0
  | Some o ->
    Wire.byte w 1;
    Wire.int w o

let rec w_mark_items w = function
  | [] -> ()
  | (id, expires) :: rest ->
    w_proposal_id w id;
    w_time w expires;
    w_mark_items w rest

let rec w_blocked_items w = function
  | [] -> ()
  | (p, expires) :: rest ->
    w_proc w p;
    w_time w expires;
    w_blocked_items w rest

let w_buffers pc w buffers =
  Wire.int w (Buffers.proposal_count buffers);
  let (_ : _ payload) = Buffers.fold_proposals fold_w_proposal buffers pc in
  Wire.int w (Buffers.delivered_count buffers);
  Buffers.fold_delivered fold_w_delivered buffers ();
  let marks = Buffers.marks_of buffers in
  Wire.int w (List.length marks);
  w_mark_items w marks;
  let blocked = Buffers.blocked_of buffers in
  Wire.int w (List.length blocked);
  w_blocked_items w blocked

let r_buffers pc r =
  let w_proposals = Wire.r_list (r_proposal pc) r in
  let w_delivered =
    Wire.r_list
      (fun r ->
        let id = r_proposal_id r in
        let ordinal = Wire.r_option Wire.r_int r in
        (id, ordinal))
      r
  in
  let w_marks =
    Wire.r_list
      (fun r ->
        let id = r_proposal_id r in
        let expires = r_time r in
        (id, expires))
      r
  in
  let w_blocked =
    Wire.r_list
      (fun r ->
        let p = r_proc r in
        let expires = r_time r in
        (p, expires))
      r
  in
  Buffers.of_wire { Buffers.w_proposals; w_delivered; w_marks; w_blocked }

(* ---------------------------------------------------------------- *)
(* Control messages *)

let rec w_proposal_id_items w = function
  | [] -> ()
  | id :: rest ->
    w_proposal_id w id;
    w_proposal_id_items w rest

let w_proposal_id_list w ids =
  Wire.int w (List.length ids);
  w_proposal_id_items w ids

let rec w_update_info_items w = function
  | [] -> ()
  | u :: rest ->
    w_update_info w u;
    w_update_info_items w rest

let w_update_info_list w us =
  Wire.int w (List.length us);
  w_update_info_items w us

let rec w_decision_items w = function
  | [] -> ()
  | { Control_msg.d_ts; d_oal; d_alive } :: rest ->
    w_time w d_ts;
    w_oal w d_oal;
    w_proc_set w d_alive;
    w_decision_items w rest

let r_decision_body r =
  let d_ts = r_time r in
  let d_oal = r_oal r in
  let d_alive = r_proc_set r in
  { Control_msg.d_ts; d_oal; d_alive }

let w_control pc w (m : _ Control_msg.t) =
  match m with
  | Control_msg.Submit { semantics; payload } ->
    Wire.byte w 0;
    w_semantics w semantics;
    pc.write_u w payload
  | Proposal_msg p ->
    Wire.byte w 1;
    w_proposal pc w p
  | Retransmit p ->
    Wire.byte w 2;
    w_proposal pc w p
  | Nack { missing } ->
    Wire.byte w 3;
    w_proposal_id_list w missing
  | Decision { d_ts; d_oal; d_alive } ->
    Wire.byte w 4;
    w_time w d_ts;
    w_oal w d_oal;
    w_proc_set w d_alive
  | No_decision { nd_ts; nd_suspect; nd_since; nd_view; nd_dpd; nd_alive } ->
    Wire.byte w 5;
    w_time w nd_ts;
    w_proc w nd_suspect;
    w_time w nd_since;
    w_oal w nd_view;
    w_update_info_list w nd_dpd;
    w_proc_set w nd_alive
  | Join_msg { j_ts; j_list; j_alive; j_epoch } ->
    Wire.byte w 6;
    w_time w j_ts;
    w_proc_set w j_list;
    w_proc_set w j_alive;
    Wire.int w j_epoch
  | Reconfig { r_ts; r_list; r_last_decision_ts; r_view; r_dpd; r_alive } ->
    Wire.byte w 7;
    w_time w r_ts;
    w_proc_set w r_list;
    w_time w r_last_decision_ts;
    w_oal w r_view;
    w_update_info_list w r_dpd;
    w_proc_set w r_alive
  | State_transfer { st_ts; st_group; st_group_id; st_oal; st_app; st_buffers }
    ->
    Wire.byte w 8;
    w_time w st_ts;
    w_proc_set w st_group;
    w_group_id w st_group_id;
    w_oal w st_oal;
    pc.write_app w st_app;
    w_buffers pc w st_buffers
  | Gossip { g_ts; g_alive; g_decisions } ->
    Wire.byte w 9;
    w_time w g_ts;
    w_proc_set w g_alive;
    Wire.int w (List.length g_decisions);
    w_decision_items w g_decisions

let r_control pc r : _ Control_msg.t =
  match Wire.r_byte r with
  | 0 ->
    let semantics = r_semantics r in
    let payload = pc.read_u r in
    Control_msg.Submit { semantics; payload }
  | 1 -> Proposal_msg (r_proposal pc r)
  | 2 -> Retransmit (r_proposal pc r)
  | 3 -> Nack { missing = Wire.r_list r_proposal_id r }
  | 4 ->
    let d_ts = r_time r in
    let d_oal = r_oal r in
    let d_alive = r_proc_set r in
    Decision { d_ts; d_oal; d_alive }
  | 5 ->
    let nd_ts = r_time r in
    let nd_suspect = r_proc r in
    let nd_since = r_time r in
    let nd_view = r_oal r in
    let nd_dpd = Wire.r_list r_update_info r in
    let nd_alive = r_proc_set r in
    No_decision { nd_ts; nd_suspect; nd_since; nd_view; nd_dpd; nd_alive }
  | 6 ->
    let j_ts = r_time r in
    let j_list = r_proc_set r in
    let j_alive = r_proc_set r in
    let j_epoch = Wire.r_int r in
    Join_msg { j_ts; j_list; j_alive; j_epoch }
  | 7 ->
    let r_ts = r_time r in
    let r_list = r_proc_set r in
    let r_last_decision_ts = r_time r in
    let r_view = r_oal r in
    let r_dpd = Wire.r_list r_update_info r in
    let r_alive = r_proc_set r in
    Reconfig { r_ts; r_list; r_last_decision_ts; r_view; r_dpd; r_alive }
  | 8 ->
    let st_ts = r_time r in
    let st_group = r_proc_set r in
    let st_group_id = r_group_id r in
    let st_oal = r_oal r in
    let st_app = pc.read_app r in
    let st_buffers = r_buffers pc r in
    State_transfer { st_ts; st_group; st_group_id; st_oal; st_app; st_buffers }
  | 9 ->
    let g_ts = r_time r in
    let g_alive = r_proc_set r in
    let g_decisions = Wire.r_list r_decision_body r in
    Gossip { g_ts; g_alive; g_decisions }
  | b -> Wire.fail (Printf.sprintf "bad control tag %d" b)

let w_cs w (m : Clocksync.Protocol.msg) =
  match m with
  | Clocksync.Protocol.Request { seq; sender_clock } ->
    Wire.byte w 0;
    Wire.int w seq;
    w_time w sender_clock
  | Reply { seq; echo_sender_clock; replier_clock } ->
    Wire.byte w 1;
    Wire.int w seq;
    w_time w echo_sender_clock;
    w_time w replier_clock

let r_cs r : Clocksync.Protocol.msg =
  match Wire.r_byte r with
  | 0 ->
    let seq = Wire.r_int r in
    let sender_clock = r_time r in
    Request { seq; sender_clock }
  | 1 ->
    let seq = Wire.r_int r in
    let echo_sender_clock = r_time r in
    let replier_clock = r_time r in
    Reply { seq; echo_sender_clock; replier_clock }
  | b -> Wire.fail (Printf.sprintf "bad clocksync tag %d" b)

let w_msg pc w (m : _ Full_stack.msg) =
  match m with
  | Full_stack.Cs cs ->
    Wire.byte w 0;
    w_cs w cs
  | Full_stack.Gc gc ->
    Wire.byte w 1;
    w_control pc w gc

let r_msg pc r : _ Full_stack.msg =
  match Wire.r_byte r with
  | 0 -> Full_stack.Cs (r_cs r)
  | 1 -> Full_stack.Gc (r_control pc r)
  | b -> Wire.fail (Printf.sprintf "bad stack tag %d" b)

(* ---------------------------------------------------------------- *)
(* Framing *)

let magic0 = 'T'
let magic1 = 'W'

(* header, then the body inside a length frame: single pass, no body
   staging buffer, and byte-for-byte the format documented in the mli
   (the length varint is never padded) *)
let write_frame pc ~sender msg w =
  (Domain.DLS.get scratch_key).sc_writer <- w;
  Wire.byte w (Char.code magic0);
  Wire.byte w (Char.code magic1);
  Wire.byte w version;
  Wire.int w (Proc_id.to_int sender);
  let mark = Wire.begin_frame w in
  w_msg pc w msg;
  Wire.end_frame w mark

let encode pc ~sender msg =
  let w = Wire.writer () in
  write_frame pc ~sender msg w;
  Wire.contents w

let encode_to pc ~sender msg w =
  Wire.reset w;
  write_frame pc ~sender msg w;
  Wire.pos w

let encode_into pc ~sender msg buf ~pos =
  let w = Wire.writer_into buf ~pos in
  write_frame pc ~sender msg w;
  Wire.pos w

let decode_window pc data ~pos ~len =
  if len < 3 then Error Truncated
  else if data.[pos] <> magic0 || data.[pos + 1] <> magic1 then Error Bad_magic
  else if Char.code data.[pos + 2] <> version then
    Error (Bad_version (Char.code data.[pos + 2]))
  else begin
    (* reused per-domain reader: no allocation per frame. Sound for
       the same reason the scratch writer is — frames decode one at a
       time per domain, and nothing retains the reader past the call *)
    let r = (Domain.DLS.get scratch_key).sc_reader in
    Wire.reset_window r data ~pos:(pos + 3) ~len:(len - 3);
    (* the two header ints are matched one at a time — pairing them up
       would build a tuple per frame on an otherwise allocation-lean
       path *)
    match Wire.r_int r with
    | exception Wire.Error _ -> Error Truncated
    | sender when sender < 0 -> Error (Malformed "negative sender id")
    | sender -> (
      match Wire.r_int r with
      | exception Wire.Error _ -> Error Truncated
      | declared ->
        let actual = Wire.remaining r in
        if declared <> actual then Error (Length_mismatch { declared; actual })
        else begin
          match
            let msg = r_msg pc r in
            if Wire.remaining r <> 0 then
              Wire.fail "trailing bytes after message";
            msg
          with
          | exception Wire.Error msg -> Error (Malformed msg)
          (* domain-validating constructors (Proc_id, Time, ...) raise on
             out-of-range values a mutated frame can carry; the codec is
             total, so those surface as Malformed too *)
          | exception Invalid_argument msg -> Error (Malformed msg)
          | exception Failure msg -> Error (Malformed msg)
          | msg -> Ok (Proc_id.of_int sender, msg)
        end)
  end

let decode pc frame = decode_window pc frame ~pos:0 ~len:(String.length frame)

let decode_bytes pc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Codec.decode_bytes: window out of bounds";
  (* zero-copy: the window is only read, never kept past the call *)
  decode_window pc (Bytes.unsafe_to_string buf) ~pos ~len
