open Tasim

(* interned counter handles for one message kind — resolved once per
   kind, then every datagram is a couple of [Stats.bump]s *)
type kind_counters = {
  kc_sent : Stats.counter;
  kc_sent_bytes : Stats.counter;
  kc_recv : Stats.counter;
  kc_recv_bytes : Stats.counter;
}

(* loopback impairment shim: an outbound per-peer rule, Net-style.
   Frames to an impaired destination may be dropped or held and
   released by [pump] once their due time passes — the live mirror of
   the simulator's per-link timeliness overrides. *)
type impair_rule = { ir_delay : Time.t; ir_jitter : Time.t; ir_drop : float }
type held = { h_due : Time.t; h_dst : int; h_frame : Bytes.t }

type 'm t = {
  encode_to : sender:Proc_id.t -> 'm -> Wire.writer -> int;
  decode :
    Bytes.t -> pos:int -> len:int -> (Proc_id.t * 'm, Codec.error) result;
  kind_of : 'm -> string;
  self : Proc_id.t;
  n : int;
  addrs : Unix.sockaddr array; (* indexed by proc id; built once *)
  socket : Unix.file_descr;
  send_buf : Bytes.t; (* every outgoing frame is built here in place *)
  send_writer : Wire.writer; (* long-lived fixed writer over send_buf *)
  recv_buf : Bytes.t;
  stats : Stats.t;
  kinds : (string, kind_counters) Hashtbl.t;
  sent_total : Stats.counter;
  recv_total : Stats.counter;
  drop_send : Stats.counter;
  drop_oversize : Stats.counter;
  drop_foreign : Stats.counter;
  drop_truncated : Stats.counter;
  drop_bad_magic : Stats.counter;
  drop_bad_version : Stats.counter;
  drop_length_mismatch : Stats.counter;
  drop_malformed : Stats.counter;
  (* the shim is off ([impair_count = 0]) unless a scenario installs a
     rule, so the zero-allocation data plane is untouched by default *)
  mutable impair_rules : impair_rule option array; (* length 0 = never used *)
  mutable impair_count : int;
  mutable impair_clock : unit -> Time.t;
  impair_rng : Rng.t;
  mutable held : held list; (* newest first; pump sorts the due ones *)
  impair_dropped : Stats.counter;
  impair_released : Stats.counter;
  mutable closed : bool;
}

let create ~encode_to ~decode ?(kind_of = fun _ -> "msg") ~self ~n ~port_of
    ~stats () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (match
     Unix.set_nonblock socket;
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.bind socket
       (Unix.ADDR_INET (Unix.inet_addr_loopback, port_of self))
   with
  | () -> ()
  | exception e ->
    Unix.close socket;
    raise e);
  let addrs =
    Array.init n (fun p ->
        Unix.ADDR_INET (Unix.inet_addr_loopback, port_of (Proc_id.of_int p)))
  in
  let send_buf = Bytes.create 65536 in
  {
    encode_to;
    decode;
    kind_of;
    self;
    n;
    addrs;
    socket;
    send_buf;
    send_writer = Wire.writer_into send_buf ~pos:0;
    recv_buf = Bytes.create 65536;
    stats;
    kinds = Hashtbl.create 16;
    sent_total = Stats.counter stats "live:sent";
    recv_total = Stats.counter stats "live:recv";
    drop_send = Stats.counter stats "live:drop:send";
    drop_oversize = Stats.counter stats "live:drop:oversize";
    drop_foreign = Stats.counter stats "live:drop:foreign-sender";
    drop_truncated = Stats.counter stats "live:drop:truncated";
    drop_bad_magic = Stats.counter stats "live:drop:bad-magic";
    drop_bad_version = Stats.counter stats "live:drop:bad-version";
    drop_length_mismatch = Stats.counter stats "live:drop:length-mismatch";
    drop_malformed = Stats.counter stats "live:drop:malformed";
    impair_rules = [||];
    impair_count = 0;
    impair_clock = (fun () -> Time.zero);
    (* deterministic per process, like the simulator's seeded streams *)
    impair_rng = Rng.create (0x7731 + Proc_id.to_int self);
    held = [];
    impair_dropped = Stats.counter stats "live:impair:drop";
    impair_released = Stats.counter stats "live:impair:released";
    closed = false;
  }

let self t = t.self
let n t = t.n
let fd t = t.socket
let is_closed t = t.closed

let slow_kind_counters t kind =
  let kc =
    {
      kc_sent = Stats.counter t.stats ("live:sent:" ^ kind);
      kc_sent_bytes = Stats.counter t.stats ("live:sent-bytes:" ^ kind);
      kc_recv = Stats.counter t.stats ("live:recv:" ^ kind);
      kc_recv_bytes = Stats.counter t.stats ("live:recv-bytes:" ^ kind);
    }
  in
  Hashtbl.add t.kinds kind kc;
  kc

(* [Hashtbl.find], not [find_opt]: no [Some] box on the per-datagram
   path (kinds are a handful of static strings, so after warm-up the
   exception branch never runs) *)
let kind_counters t kind =
  try Hashtbl.find t.kinds kind with Not_found -> slow_kind_counters t kind

let try_sendto t buf len dst =
  match Unix.sendto t.socket buf 0 len [] t.addrs.(dst) with
  | _ -> true
  | exception
      Unix.Unix_error
        ((EWOULDBLOCK | EAGAIN | ECONNREFUSED | ENOBUFS | EINTR), _, _) ->
    (* an unreliable datagram service may drop; the stack copes *)
    Stats.bump t.drop_send;
    false

let count_sent t msg len =
  Stats.bump t.sent_total;
  let kc = kind_counters t (t.kind_of msg) in
  Stats.bump kc.kc_sent;
  Stats.bump_by kc.kc_sent_bytes len

let send t ~dst msg =
  if not t.closed then begin
    match t.encode_to ~sender:t.self msg t.send_writer with
    | exception Wire.Error _ ->
      (* does not fit the scratch buffer: necessarily over the
         datagram limit as well *)
      Stats.bump t.drop_oversize
    | len ->
      if len > Codec.max_frame then Stats.bump t.drop_oversize
      else begin
        let d = Proc_id.to_int dst in
        let rule =
          if t.impair_count = 0 then None else t.impair_rules.(d)
        in
        match rule with
        | None -> if try_sendto t t.send_buf len d then count_sent t msg len
        | Some r ->
          if Rng.bool t.impair_rng r.ir_drop then Stats.bump t.impair_dropped
          else begin
            let extra =
              if Time.compare r.ir_jitter Time.zero > 0 then
                Time.add r.ir_delay
                  (Rng.uniform_time t.impair_rng Time.zero r.ir_jitter)
              else r.ir_delay
            in
            if Time.compare extra Time.zero <= 0 then begin
              if try_sendto t t.send_buf len d then count_sent t msg len
            end
            else begin
              (* held frames count as sent now (the kind is only known
                 here); [pump] transmits them when due *)
              let due = Time.add (t.impair_clock ()) extra in
              t.held <-
                { h_due = due; h_dst = d; h_frame = Bytes.sub t.send_buf 0 len }
                :: t.held;
              count_sent t msg len
            end
          end
      end
  end

(* ------------------------------------------------------------------ *)
(* Impairment shim management *)

let impair t ~dst ?(delay = Time.zero) ?(jitter = Time.zero) ?(drop = 0.0)
    ~now () =
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Transport.impair: delay must be >= 0";
  if Time.compare jitter Time.zero < 0 then
    invalid_arg "Transport.impair: jitter must be >= 0";
  if drop < 0.0 || drop > 1.0 then
    invalid_arg "Transport.impair: drop out of [0,1]";
  if Array.length t.impair_rules = 0 then
    t.impair_rules <- Array.make t.n None;
  let d = Proc_id.to_int dst in
  if t.impair_rules.(d) = None then t.impair_count <- t.impair_count + 1;
  t.impair_rules.(d) <-
    Some { ir_delay = delay; ir_jitter = jitter; ir_drop = drop };
  t.impair_clock <- now

let clear_impair t ~dst =
  let d = Proc_id.to_int dst in
  if Array.length t.impair_rules > 0 && t.impair_rules.(d) <> None then begin
    t.impair_rules.(d) <- None;
    t.impair_count <- t.impair_count - 1
  end

let clear_impairments t =
  if Array.length t.impair_rules > 0 then Array.fill t.impair_rules 0 t.n None;
  t.impair_count <- 0;
  (* in-flight held frames are dropped, as a real link tear-down would *)
  List.iter (fun _ -> Stats.bump t.impair_dropped) t.held;
  t.held <- []

let impaired t = t.impair_count

let next_release t =
  List.fold_left
    (fun acc h ->
      match acc with
      | None -> Some h.h_due
      | Some d -> Some (Time.min d h.h_due))
    None t.held

let pump t ~now =
  if t.held = [] || t.closed then 0
  else begin
    let due, rest =
      List.partition (fun h -> Time.compare h.h_due now <= 0) t.held
    in
    t.held <- rest;
    (* [held] is newest-first; reverse then stable-sort by due time so
       same-due frames to one peer keep their send order *)
    let due =
      List.stable_sort (fun a b -> Time.compare a.h_due b.h_due) (List.rev due)
    in
    List.iter
      (fun h ->
        ignore (try_sendto t h.h_frame (Bytes.length h.h_frame) h.h_dst);
        Stats.bump t.impair_released)
      due;
    List.length due
  end

let broadcast t msg =
  List.iter
    (fun dst -> if not (Proc_id.equal dst t.self) then send t ~dst msg)
    (Proc_id.all ~n:t.n)

let drop_counter t (err : Codec.error) =
  match err with
  | Codec.Truncated -> t.drop_truncated
  | Bad_magic -> t.drop_bad_magic
  | Bad_version _ -> t.drop_bad_version
  | Length_mismatch _ -> t.drop_length_mismatch
  | Malformed _ -> t.drop_malformed

let drain ?budget t ~handler =
  if t.closed then 0
  else begin
    let budget = match budget with Some b -> b | None -> max_int in
    let handled = ref 0 in
    let seen = ref 0 in
    let continue = ref true in
    while !continue && !seen < budget do
      match Unix.recvfrom t.socket t.recv_buf 0 (Bytes.length t.recv_buf) []
      with
      | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN), _, _) ->
        continue := false
      | exception Unix.Unix_error ((ECONNREFUSED | EINTR), _, _) ->
        (* ICMP port-unreachable bounce from a dead peer: ignore *)
        ()
      | len, _src_addr -> (
        incr seen;
        (* decode straight out of the receive buffer — the datagram is
           fully consumed by [handler] before the next [recvfrom]
           overwrites the window *)
        match t.decode t.recv_buf ~pos:0 ~len with
        | Ok (src, msg) ->
          if Proc_id.to_int src < t.n && not (Proc_id.equal src t.self)
          then begin
            Stats.bump t.recv_total;
            let kc = kind_counters t (t.kind_of msg) in
            Stats.bump kc.kc_recv;
            Stats.bump_by kc.kc_recv_bytes len;
            incr handled;
            handler ~src msg
          end
          else Stats.bump t.drop_foreign
        | Error err -> Stats.bump (drop_counter t err))
    done;
    !handled
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.held <- [];
    (try Unix.close t.socket with Unix.Unix_error _ -> ())
  end
