open Tasim

type 'm t = {
  encode : sender:Proc_id.t -> 'm -> string;
  decode : string -> (Proc_id.t * 'm, Codec.error) result;
  self : Proc_id.t;
  n : int;
  addr_of : Proc_id.t -> Unix.sockaddr;
  socket : Unix.file_descr;
  recv_buf : Bytes.t;
  stats : Stats.t;
  mutable closed : bool;
}

let create ~encode ~decode ~self ~n ~port_of ~stats () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (match
     Unix.set_nonblock socket;
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.bind socket
       (Unix.ADDR_INET (Unix.inet_addr_loopback, port_of self))
   with
  | () -> ()
  | exception e ->
    Unix.close socket;
    raise e);
  let addr_of p = Unix.ADDR_INET (Unix.inet_addr_loopback, port_of p) in
  {
    encode;
    decode;
    self;
    n;
    addr_of;
    socket;
    recv_buf = Bytes.create 65536;
    stats;
    closed = false;
  }

let self t = t.self
let n t = t.n
let fd t = t.socket
let is_closed t = t.closed

let send t ~dst msg =
  if not t.closed then begin
    let frame = t.encode ~sender:t.self msg in
    let len = String.length frame in
    if len > Codec.max_frame then Stats.incr t.stats "live:drop:oversize"
    else begin
      match
        Unix.sendto t.socket (Bytes.unsafe_of_string frame) 0 len []
          (t.addr_of dst)
      with
      | _ -> Stats.incr t.stats "live:sent"
      | exception
          Unix.Unix_error
            ((EWOULDBLOCK | EAGAIN | ECONNREFUSED | ENOBUFS | EINTR), _, _) ->
        (* an unreliable datagram service may drop; the stack copes *)
        Stats.incr t.stats "live:drop:send"
    end
  end

let broadcast t msg =
  List.iter
    (fun dst -> if not (Proc_id.equal dst t.self) then send t ~dst msg)
    (Proc_id.all ~n:t.n)

let error_kind (err : Codec.error) =
  match err with
  | Codec.Truncated -> "truncated"
  | Bad_magic -> "bad-magic"
  | Bad_version _ -> "bad-version"
  | Length_mismatch _ -> "length-mismatch"
  | Malformed _ -> "malformed"

let drain t ~handler =
  if t.closed then 0
  else begin
    let handled = ref 0 in
    let continue = ref true in
    while !continue do
      match Unix.recvfrom t.socket t.recv_buf 0 (Bytes.length t.recv_buf) []
      with
      | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN), _, _) ->
        continue := false
      | exception Unix.Unix_error ((ECONNREFUSED | EINTR), _, _) ->
        (* ICMP port-unreachable bounce from a dead peer: ignore *)
        ()
      | len, _src_addr -> (
        let frame = Bytes.sub_string t.recv_buf 0 len in
        match t.decode frame with
        | Ok (src, msg) ->
          if Proc_id.to_int src < t.n && not (Proc_id.equal src t.self) then begin
            Stats.incr t.stats "live:recv";
            incr handled;
            handler ~src msg
          end
          else Stats.incr t.stats "live:drop:foreign-sender"
        | Error err ->
          Stats.incr t.stats ("live:drop:" ^ error_kind err))
    done;
    !handled
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.socket with Unix.Unix_error _ -> ())
  end
