open Tasim

(* interned counter handles for one message kind — resolved once per
   kind, then every datagram is a couple of [Stats.bump]s *)
type kind_counters = {
  kc_sent : Stats.counter;
  kc_sent_bytes : Stats.counter;
  kc_recv : Stats.counter;
  kc_recv_bytes : Stats.counter;
}

(* loopback impairment shim: an outbound per-peer rule, Net-style.
   Frames to an impaired destination may be dropped or held and
   released by [pump] once their due time passes — the live mirror of
   the simulator's per-link timeliness overrides. *)
type impair_rule = { ir_delay : Time.t; ir_jitter : Time.t; ir_drop : float }
type held = { h_due : Time.t; h_dst : int; h_frame : Bytes.t }

(* Outbound frames accumulate here, back to back in [bt_buf], and
   leave in one [sendmmsg] per [flush] (or a sendto loop on the
   fallback path — same frames, same flush points, different syscall
   count). [bt_meta] is the [| off; len; port |]-per-message layout
   the C stub consumes; [bt_dst] keeps the destination index for the
   fallback and for nothing else. [bt_writer] is one long-lived fixed
   writer rebased at the batch tail per frame, so the batched encode
   allocates exactly as much as the unbatched one did: nothing. *)
type batch = {
  bt_buf : Bytes.t;
  bt_meta : int array;
  bt_dst : int array;
  mutable bt_len : int;
  mutable bt_count : int;
  bt_writer : Wire.writer;
}

(* [recvmmsg] ring: datagram [i] of one syscall lands at offset
   [i * ring_slot]. A slot is 65536 >= the largest UDP datagram, so
   frames are never truncated; allocated lazily on first batched
   drain (fallback transports never pay for it). *)
let ring_slot = 65536
let ring_vlen = 16

type 'm t = {
  encode_to : sender:Proc_id.t -> 'm -> Wire.writer -> int;
  decode :
    Bytes.t -> pos:int -> len:int -> (Proc_id.t * 'm, Codec.error) result;
  kind_of : 'm -> string;
  self : Proc_id.t;
  n : int;
  addrs : Unix.sockaddr array; (* indexed by proc id; built once *)
  ports : int array; (* same index; what the sendmmsg stub needs *)
  socket : Unix.file_descr;
  batch : batch;
  mutable ring : Bytes.t; (* length 0 until the first batched drain *)
  ring_lens : int array;
  recv_buf : Bytes.t; (* fallback drain reads into this *)
  stats : Stats.t;
  kinds : (string, kind_counters) Hashtbl.t;
  sent_total : Stats.counter;
  recv_total : Stats.counter;
  drop_send : Stats.counter;
  drop_oversize : Stats.counter;
  drop_foreign : Stats.counter;
  drop_truncated : Stats.counter;
  drop_bad_magic : Stats.counter;
  drop_bad_version : Stats.counter;
  drop_length_mismatch : Stats.counter;
  drop_malformed : Stats.counter;
  sc_sendto : Stats.counter;
  sc_recvfrom : Stats.counter;
  sc_sendmmsg : Stats.counter;
  sc_recvmmsg : Stats.counter;
  (* the shim is off ([impair_count = 0]) unless a scenario installs a
     rule, so the zero-allocation data plane is untouched by default *)
  mutable impair_rules : impair_rule option array; (* length 0 = never used *)
  mutable impair_count : int;
  mutable impair_clock : unit -> Time.t;
  impair_rng : Rng.t;
  mutable held : held list; (* newest first; pump sorts the due ones *)
  impair_dropped : Stats.counter;
  impair_released : Stats.counter;
  mutable use_mmsg : bool; (* downgrades once on runtime ENOSYS *)
  mutable closed : bool;
}

let create ~encode_to ~decode ?(kind_of = fun _ -> "msg") ?batching ~self ~n
    ~port_of ~stats () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (match
     Unix.set_nonblock socket;
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.bind socket
       (Unix.ADDR_INET (Unix.inet_addr_loopback, port_of self))
   with
  | () -> ()
  | exception e ->
    Unix.close socket;
    raise e);
  let addrs =
    Array.init n (fun p ->
        Unix.ADDR_INET (Unix.inet_addr_loopback, port_of (Proc_id.of_int p)))
  in
  let ports = Array.init n (fun p -> port_of (Proc_id.of_int p)) in
  (* two max frames, so after a pressure flush the next frame always
     fits and a single frame can never overflow for size reasons the
     old 64 KiB scratch buffer tolerated *)
  let bt_buf = Bytes.create (2 * 65536) in
  let use_mmsg =
    match batching with Some b -> b && Mmsg.supported | None -> Mmsg.default_enabled ()
  in
  {
    encode_to;
    decode;
    kind_of;
    self;
    n;
    addrs;
    ports;
    socket;
    batch =
      {
        bt_buf;
        bt_meta = Array.make (3 * Mmsg.slots) 0;
        bt_dst = Array.make Mmsg.slots 0;
        bt_len = 0;
        bt_count = 0;
        bt_writer = Wire.writer_into bt_buf ~pos:0;
      };
    ring = Bytes.create 0;
    ring_lens = Array.make ring_vlen 0;
    recv_buf = Bytes.create 65536;
    stats;
    kinds = Hashtbl.create 16;
    sent_total = Stats.counter stats "live:sent";
    recv_total = Stats.counter stats "live:recv";
    drop_send = Stats.counter stats "live:drop:send";
    drop_oversize = Stats.counter stats "live:drop:oversize";
    drop_foreign = Stats.counter stats "live:drop:foreign-sender";
    drop_truncated = Stats.counter stats "live:drop:truncated";
    drop_bad_magic = Stats.counter stats "live:drop:bad-magic";
    drop_bad_version = Stats.counter stats "live:drop:bad-version";
    drop_length_mismatch = Stats.counter stats "live:drop:length-mismatch";
    drop_malformed = Stats.counter stats "live:drop:malformed";
    sc_sendto = Stats.counter stats "live:syscall:sendto";
    sc_recvfrom = Stats.counter stats "live:syscall:recvfrom";
    sc_sendmmsg = Stats.counter stats "live:syscall:sendmmsg";
    sc_recvmmsg = Stats.counter stats "live:syscall:recvmmsg";
    impair_rules = [||];
    impair_count = 0;
    impair_clock = (fun () -> Time.zero);
    (* deterministic per process, like the simulator's seeded streams *)
    impair_rng = Rng.create (0x7731 + Proc_id.to_int self);
    held = [];
    impair_dropped = Stats.counter stats "live:impair:drop";
    impair_released = Stats.counter stats "live:impair:released";
    use_mmsg;
    closed = false;
  }

let self t = t.self
let n t = t.n
let fd t = t.socket
let is_closed t = t.closed
let batched t = t.use_mmsg

let slow_kind_counters t kind =
  let kc =
    {
      kc_sent = Stats.counter t.stats ("live:sent:" ^ kind);
      kc_sent_bytes = Stats.counter t.stats ("live:sent-bytes:" ^ kind);
      kc_recv = Stats.counter t.stats ("live:recv:" ^ kind);
      kc_recv_bytes = Stats.counter t.stats ("live:recv-bytes:" ^ kind);
    }
  in
  Hashtbl.add t.kinds kind kc;
  kc

(* [Hashtbl.find], not [find_opt]: no [Some] box on the per-datagram
   path (kinds are a handful of static strings, so after warm-up the
   exception branch never runs) *)
let kind_counters t kind =
  try Hashtbl.find t.kinds kind with Not_found -> slow_kind_counters t kind

let try_sendto t buf ~pos ~len dst =
  Stats.bump t.sc_sendto;
  match Unix.sendto t.socket buf pos len [] t.addrs.(dst) with
  | _ -> true
  | exception
      Unix.Unix_error
        ((EWOULDBLOCK | EAGAIN | ECONNREFUSED | ENOBUFS | EINTR), _, _) ->
    (* an unreliable datagram service may drop; the stack copes *)
    Stats.bump t.drop_send;
    false

(* ------------------------------------------------------------------ *)
(* Batched send path *)

let flush_sendto t ~from =
  let b = t.batch in
  for i = from to b.bt_count - 1 do
    ignore
      (try_sendto t b.bt_buf ~pos:b.bt_meta.(3 * i) ~len:b.bt_meta.((3 * i) + 1)
         b.bt_dst.(i))
  done

let drop_rest t ~from =
  Stats.bump_by t.drop_send (t.batch.bt_count - from)

(* One sendmmsg per [Mmsg.slots] frames in the common case. Error
   semantics mirror the per-datagram path: would-block / no-buffers
   drops the remainder (the kernel queue is full; the protocol
   retransmits), a connection-refused bounce — async ICMP from an
   earlier datagram to a dead peer — charges one frame and moves on,
   EINTR retries. The attempt bound makes any kernel misbehavior
   terminate in drops rather than a spin. *)
let flush_mmsg t =
  let b = t.batch in
  let from = ref 0 in
  let attempts = ref 0 in
  let max_attempts = (2 * b.bt_count) + 8 in
  while !from < b.bt_count && t.use_mmsg do
    if !attempts > max_attempts then begin
      drop_rest t ~from:!from;
      from := b.bt_count
    end
    else begin
      incr attempts;
      Stats.bump t.sc_sendmmsg;
      match
        Mmsg.send_batch t.socket ~buf:b.bt_buf ~meta:b.bt_meta ~from:!from
          ~count:b.bt_count
      with
      | Ok 0 ->
        (* kernel accepted nothing without raising: treat as pressure *)
        drop_rest t ~from:!from;
        from := b.bt_count
      | Ok k -> from := !from + k
      | Error `Refused ->
        Stats.bump t.drop_send;
        incr from
      | Error `Intr -> ()
      | Error (`Would_block | `Error) ->
        drop_rest t ~from:!from;
        from := b.bt_count
      | Error `Unsupported ->
        (* runtime ENOSYS: downgrade for good, finish this batch over
           sendto so no frame is lost to the probe *)
        t.use_mmsg <- false
    end
  done;
  if not t.use_mmsg then flush_sendto t ~from:!from

let flush t =
  let b = t.batch in
  if b.bt_count > 0 then begin
    if not t.closed then
      if t.use_mmsg then flush_mmsg t else flush_sendto t ~from:0;
    b.bt_count <- 0;
    b.bt_len <- 0
  end

(* Encode at the batch tail through the long-lived writer; on fixed
   buffer overflow flush the pending frames and retry once from an
   empty buffer — only a frame too large for the buffer itself (and
   therefore far over the datagram limit) still fails. *)
let encode_frame t msg =
  let b = t.batch in
  Wire.rebase b.bt_writer b.bt_buf ~pos:b.bt_len;
  match t.encode_to ~sender:t.self msg b.bt_writer with
  | len -> len
  | exception Wire.Error _ ->
    if b.bt_count = 0 then -1
    else begin
      flush t;
      Wire.rebase b.bt_writer b.bt_buf ~pos:0;
      (match t.encode_to ~sender:t.self msg b.bt_writer with
      | len -> len
      | exception Wire.Error _ -> -1)
    end

let count_sent t msg len =
  Stats.bump t.sent_total;
  let kc = kind_counters t (t.kind_of msg) in
  Stats.bump kc.kc_sent;
  Stats.bump_by kc.kc_sent_bytes len

let send t ~dst msg =
  if not t.closed then begin
    let len = encode_frame t msg in
    if len < 0 || len > Codec.max_frame then Stats.bump t.drop_oversize
    else begin
      let b = t.batch in
      let d = Proc_id.to_int dst in
      let rule = if t.impair_count = 0 then None else t.impair_rules.(d) in
      match rule with
      | None ->
        (* commit the frame to the batch; it counts as sent now (an
           unreliable datagram service may still drop it at flush) *)
        let i = b.bt_count in
        b.bt_meta.(3 * i) <- b.bt_len;
        b.bt_meta.((3 * i) + 1) <- len;
        b.bt_meta.((3 * i) + 2) <- t.ports.(d);
        b.bt_dst.(i) <- d;
        b.bt_count <- i + 1;
        b.bt_len <- b.bt_len + len;
        count_sent t msg len;
        if
          b.bt_count >= Mmsg.slots
          || b.bt_len + Codec.max_frame > Bytes.length b.bt_buf
        then flush t
      | Some r ->
        (* impaired destinations bypass the batch: the shim owns their
           timing, and the frame sits at the batch tail uncommitted *)
        if Rng.bool t.impair_rng r.ir_drop then Stats.bump t.impair_dropped
        else begin
          let extra =
            if Time.compare r.ir_jitter Time.zero > 0 then
              Time.add r.ir_delay
                (Rng.uniform_time t.impair_rng Time.zero r.ir_jitter)
            else r.ir_delay
          in
          if Time.compare extra Time.zero <= 0 then begin
            if try_sendto t b.bt_buf ~pos:b.bt_len ~len d then
              count_sent t msg len
          end
          else begin
            (* held frames count as sent now (the kind is only known
               here); [pump] transmits them when due *)
            let due = Time.add (t.impair_clock ()) extra in
            t.held <-
              { h_due = due; h_dst = d; h_frame = Bytes.sub b.bt_buf b.bt_len len }
              :: t.held;
            count_sent t msg len
          end
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Impairment shim management *)

let impair t ~dst ?(delay = Time.zero) ?(jitter = Time.zero) ?(drop = 0.0)
    ~now () =
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Transport.impair: delay must be >= 0";
  if Time.compare jitter Time.zero < 0 then
    invalid_arg "Transport.impair: jitter must be >= 0";
  if drop < 0.0 || drop > 1.0 then
    invalid_arg "Transport.impair: drop out of [0,1]";
  if Array.length t.impair_rules = 0 then
    t.impair_rules <- Array.make t.n None;
  let d = Proc_id.to_int dst in
  if t.impair_rules.(d) = None then t.impair_count <- t.impair_count + 1;
  t.impair_rules.(d) <-
    Some { ir_delay = delay; ir_jitter = jitter; ir_drop = drop };
  t.impair_clock <- now

let clear_impair t ~dst =
  let d = Proc_id.to_int dst in
  if Array.length t.impair_rules > 0 && t.impair_rules.(d) <> None then begin
    t.impair_rules.(d) <- None;
    t.impair_count <- t.impair_count - 1
  end

let clear_impairments t =
  if Array.length t.impair_rules > 0 then Array.fill t.impair_rules 0 t.n None;
  t.impair_count <- 0;
  (* in-flight held frames are dropped, as a real link tear-down would *)
  List.iter (fun _ -> Stats.bump t.impair_dropped) t.held;
  t.held <- []

let impaired t = t.impair_count

let next_release t =
  List.fold_left
    (fun acc h ->
      match acc with
      | None -> Some h.h_due
      | Some d -> Some (Time.min d h.h_due))
    None t.held

let pump t ~now =
  if t.held = [] || t.closed then 0
  else begin
    let due, rest =
      List.partition (fun h -> Time.compare h.h_due now <= 0) t.held
    in
    t.held <- rest;
    (* [held] is newest-first; reverse then stable-sort by due time so
       same-due frames to one peer keep their send order *)
    let due =
      List.stable_sort (fun a b -> Time.compare a.h_due b.h_due) (List.rev due)
    in
    List.iter
      (fun h ->
        ignore
          (try_sendto t h.h_frame ~pos:0 ~len:(Bytes.length h.h_frame) h.h_dst);
        Stats.bump t.impair_released)
      due;
    List.length due
  end

let broadcast t msg =
  List.iter
    (fun dst -> if not (Proc_id.equal dst t.self) then send t ~dst msg)
    (Proc_id.all ~n:t.n)

let drop_counter t (err : Codec.error) =
  match err with
  | Codec.Truncated -> t.drop_truncated
  | Bad_magic -> t.drop_bad_magic
  | Bad_version _ -> t.drop_bad_version
  | Length_mismatch _ -> t.drop_length_mismatch
  | Malformed _ -> t.drop_malformed

(* One received frame, wherever it landed (recvmmsg ring or fallback
   receive buffer) — decoded in place; the datagram is fully consumed
   by [handler] before the buffer window is reused. *)
let handle_frame t ~handler buf ~pos ~len handled =
  match t.decode buf ~pos ~len with
  | Ok (src, msg) ->
    if Proc_id.to_int src < t.n && not (Proc_id.equal src t.self) then begin
      Stats.bump t.recv_total;
      let kc = kind_counters t (t.kind_of msg) in
      Stats.bump kc.kc_recv;
      Stats.bump_by kc.kc_recv_bytes len;
      incr handled;
      handler ~src msg
    end
    else Stats.bump t.drop_foreign
  | Error err -> Stats.bump (drop_counter t err)

let drain_mmsg t ~budget ~handler ~handled ~seen =
  if Bytes.length t.ring = 0 then
    t.ring <- Bytes.create (ring_vlen * ring_slot);
  let continue = ref true in
  while !continue && !seen < budget && t.use_mmsg do
    let want = Stdlib.min ring_vlen (budget - !seen) in
    Stats.bump t.sc_recvmmsg;
    match
      Mmsg.recv_batch t.socket ~ring:t.ring ~slot:ring_slot ~lens:t.ring_lens
        ~vlen:want
    with
    | Ok 0 | Error (`Would_block | `Error) -> continue := false
    | Ok got ->
      for i = 0 to got - 1 do
        incr seen;
        handle_frame t ~handler t.ring ~pos:(i * ring_slot)
          ~len:t.ring_lens.(i) handled
      done;
      (* a short batch means the queue is (momentarily) empty *)
      if got < want then continue := false
    | Error (`Refused | `Intr) ->
      (* ICMP port-unreachable bounce from a dead peer: ignore *)
      ()
    | Error `Unsupported -> t.use_mmsg <- false
  done

let drain_loop t ~budget ~handler ~handled ~seen =
  let continue = ref true in
  while !continue && !seen < budget do
    Stats.bump t.sc_recvfrom;
    match Unix.recvfrom t.socket t.recv_buf 0 (Bytes.length t.recv_buf) [] with
    | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN), _, _) ->
      continue := false
    | exception Unix.Unix_error ((ECONNREFUSED | EINTR), _, _) ->
      (* ICMP port-unreachable bounce from a dead peer: ignore *)
      ()
    | len, _src_addr ->
      incr seen;
      handle_frame t ~handler t.recv_buf ~pos:0 ~len handled
  done

let drain ?budget t ~handler =
  if t.closed then 0
  else begin
    let budget = match budget with Some b -> b | None -> max_int in
    let handled = ref 0 in
    let seen = ref 0 in
    if t.use_mmsg then drain_mmsg t ~budget ~handler ~handled ~seen;
    (* covers both the fallback mode and a mid-drain ENOSYS downgrade *)
    if not t.use_mmsg then drain_loop t ~budget ~handler ~handled ~seen;
    !handled
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.held <- [];
    (* pending batched frames go down with the process: crash-stop *)
    t.batch.bt_count <- 0;
    t.batch.bt_len <- 0;
    (try Unix.close t.socket with Unix.Unix_error _ -> ())
  end
