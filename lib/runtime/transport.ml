open Tasim

(* interned counter handles for one message kind — resolved once per
   kind, then every datagram is a couple of [Stats.bump]s *)
type kind_counters = {
  kc_sent : Stats.counter;
  kc_sent_bytes : Stats.counter;
  kc_recv : Stats.counter;
  kc_recv_bytes : Stats.counter;
}

type 'm t = {
  encode_to : sender:Proc_id.t -> 'm -> Wire.writer -> int;
  decode :
    Bytes.t -> pos:int -> len:int -> (Proc_id.t * 'm, Codec.error) result;
  kind_of : 'm -> string;
  self : Proc_id.t;
  n : int;
  addrs : Unix.sockaddr array; (* indexed by proc id; built once *)
  socket : Unix.file_descr;
  send_buf : Bytes.t; (* every outgoing frame is built here in place *)
  send_writer : Wire.writer; (* long-lived fixed writer over send_buf *)
  recv_buf : Bytes.t;
  stats : Stats.t;
  kinds : (string, kind_counters) Hashtbl.t;
  sent_total : Stats.counter;
  recv_total : Stats.counter;
  drop_send : Stats.counter;
  drop_oversize : Stats.counter;
  drop_foreign : Stats.counter;
  drop_truncated : Stats.counter;
  drop_bad_magic : Stats.counter;
  drop_bad_version : Stats.counter;
  drop_length_mismatch : Stats.counter;
  drop_malformed : Stats.counter;
  mutable closed : bool;
}

let create ~encode_to ~decode ?(kind_of = fun _ -> "msg") ~self ~n ~port_of
    ~stats () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (match
     Unix.set_nonblock socket;
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.bind socket
       (Unix.ADDR_INET (Unix.inet_addr_loopback, port_of self))
   with
  | () -> ()
  | exception e ->
    Unix.close socket;
    raise e);
  let addrs =
    Array.init n (fun p ->
        Unix.ADDR_INET (Unix.inet_addr_loopback, port_of (Proc_id.of_int p)))
  in
  let send_buf = Bytes.create 65536 in
  {
    encode_to;
    decode;
    kind_of;
    self;
    n;
    addrs;
    socket;
    send_buf;
    send_writer = Wire.writer_into send_buf ~pos:0;
    recv_buf = Bytes.create 65536;
    stats;
    kinds = Hashtbl.create 16;
    sent_total = Stats.counter stats "live:sent";
    recv_total = Stats.counter stats "live:recv";
    drop_send = Stats.counter stats "live:drop:send";
    drop_oversize = Stats.counter stats "live:drop:oversize";
    drop_foreign = Stats.counter stats "live:drop:foreign-sender";
    drop_truncated = Stats.counter stats "live:drop:truncated";
    drop_bad_magic = Stats.counter stats "live:drop:bad-magic";
    drop_bad_version = Stats.counter stats "live:drop:bad-version";
    drop_length_mismatch = Stats.counter stats "live:drop:length-mismatch";
    drop_malformed = Stats.counter stats "live:drop:malformed";
    closed = false;
  }

let self t = t.self
let n t = t.n
let fd t = t.socket
let is_closed t = t.closed

let slow_kind_counters t kind =
  let kc =
    {
      kc_sent = Stats.counter t.stats ("live:sent:" ^ kind);
      kc_sent_bytes = Stats.counter t.stats ("live:sent-bytes:" ^ kind);
      kc_recv = Stats.counter t.stats ("live:recv:" ^ kind);
      kc_recv_bytes = Stats.counter t.stats ("live:recv-bytes:" ^ kind);
    }
  in
  Hashtbl.add t.kinds kind kc;
  kc

(* [Hashtbl.find], not [find_opt]: no [Some] box on the per-datagram
   path (kinds are a handful of static strings, so after warm-up the
   exception branch never runs) *)
let kind_counters t kind =
  try Hashtbl.find t.kinds kind with Not_found -> slow_kind_counters t kind

let send t ~dst msg =
  if not t.closed then begin
    match t.encode_to ~sender:t.self msg t.send_writer with
    | exception Wire.Error _ ->
      (* does not fit the scratch buffer: necessarily over the
         datagram limit as well *)
      Stats.bump t.drop_oversize
    | len ->
      if len > Codec.max_frame then Stats.bump t.drop_oversize
      else begin
        match
          Unix.sendto t.socket t.send_buf 0 len []
            t.addrs.(Proc_id.to_int dst)
        with
        | _ ->
          Stats.bump t.sent_total;
          let kc = kind_counters t (t.kind_of msg) in
          Stats.bump kc.kc_sent;
          Stats.bump_by kc.kc_sent_bytes len
        | exception
            Unix.Unix_error
              ((EWOULDBLOCK | EAGAIN | ECONNREFUSED | ENOBUFS | EINTR), _, _)
          ->
          (* an unreliable datagram service may drop; the stack copes *)
          Stats.bump t.drop_send
      end
  end

let broadcast t msg =
  List.iter
    (fun dst -> if not (Proc_id.equal dst t.self) then send t ~dst msg)
    (Proc_id.all ~n:t.n)

let drop_counter t (err : Codec.error) =
  match err with
  | Codec.Truncated -> t.drop_truncated
  | Bad_magic -> t.drop_bad_magic
  | Bad_version _ -> t.drop_bad_version
  | Length_mismatch _ -> t.drop_length_mismatch
  | Malformed _ -> t.drop_malformed

let drain ?budget t ~handler =
  if t.closed then 0
  else begin
    let budget = match budget with Some b -> b | None -> max_int in
    let handled = ref 0 in
    let seen = ref 0 in
    let continue = ref true in
    while !continue && !seen < budget do
      match Unix.recvfrom t.socket t.recv_buf 0 (Bytes.length t.recv_buf) []
      with
      | exception Unix.Unix_error ((EWOULDBLOCK | EAGAIN), _, _) ->
        continue := false
      | exception Unix.Unix_error ((ECONNREFUSED | EINTR), _, _) ->
        (* ICMP port-unreachable bounce from a dead peer: ignore *)
        ()
      | len, _src_addr -> (
        incr seen;
        (* decode straight out of the receive buffer — the datagram is
           fully consumed by [handler] before the next [recvfrom]
           overwrites the window *)
        match t.decode t.recv_buf ~pos:0 ~len with
        | Ok (src, msg) ->
          if Proc_id.to_int src < t.n && not (Proc_id.equal src t.self)
          then begin
            Stats.bump t.recv_total;
            let kc = kind_counters t (t.kind_of msg) in
            Stats.bump kc.kc_recv;
            Stats.bump_by kc.kc_recv_bytes len;
            incr handled;
            handler ~src msg
          end
          else Stats.bump t.drop_foreign
        | Error err -> Stats.bump (drop_counter t err))
    done;
    !handled
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.socket with Unix.Unix_error _ -> ())
  end
