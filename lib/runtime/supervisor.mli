(** Restart supervision for the live binary.

    [timewheel_live] member/demo modes are meant to run unattended;
    when the process body dies (an exception out of the poll loop, an
    abnormal exit), the supervisor restarts it with jittered
    exponential backoff — jitter so a fleet of members all killed by
    the same event does not thundering-herd the network on the same
    millisecond, exponential so a persistently crashing body backs off
    instead of spinning, and a max-restart cap so a hopeless
    configuration eventually surfaces as an exit instead of looping
    forever. Stable storage ({!Live_store}) is what makes each
    restart rejoin epoch-aware rather than amnesiac.

    The backoff schedule is a pure function (exposed for tests); the
    sleep is injectable, so the policy is testable without wall
    time. *)

open Tasim

type policy = {
  base : Time.t;  (** first backoff (default 500 ms) *)
  cap : Time.t;  (** backoff ceiling (default 30 s) *)
  jitter : float;
      (** uniform multiplicative jitter, a fraction in [0, 1):
          the slept backoff is [b * u] with [u] drawn from
          [[1 - jitter, 1 + jitter]] (default 0.2) *)
  max_restarts : int;  (** give up after this many restarts (default 10) *)
}

val default_policy : policy

val backoff : policy -> rng:Rng.t -> restarts:int -> Time.t
(** The sleep before restart number [restarts] (1-based):
    [base * 2^(restarts-1)] capped at [cap], then jittered. Raises
    [Invalid_argument] on [restarts < 1] or an invalid policy. *)

type outcome =
  | Done of int
      (** the body exited cleanly (returned 0); carries the number of
          restarts it took to get there *)
  | Gave_up of { restarts : int; last : string }
      (** the cap was exhausted; [last] describes the final failure *)

val run :
  ?policy:policy ->
  ?seed:int ->
  ?sleep:(Time.t -> unit) ->
  ?on_restart:(restarts:int -> backoff:Time.t -> reason:string -> unit) ->
  (restarts:int -> int) ->
  outcome
(** [run body] calls [body ~restarts:0]; a return of [0] is a clean
    exit ([Done]). A raised exception or a nonzero return is a crash:
    the supervisor sleeps the backoff (default [Unix.sleepf]) and
    calls the body again with the restart count, until the policy's
    cap. [on_restart] fires before each sleep (the CLI logs it).
    [seed] pins the jitter stream (default: self-init). *)
