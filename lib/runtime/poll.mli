(** poll(2) for the cluster loop.

    Replaces [Unix.select], whose [fd_set] caps descriptor values at
    FD_SETSIZE (1024) — too small for many-socket multi-domain runs.
    Readiness covers error/hangup too, so a dead socket wakes the
    loop and the subsequent read surfaces the condition (the same
    contract select gave us). The blocking wait releases the OCaml
    runtime lock so other domains keep running. *)

type error = [ `Intr | `Error ]

val wait :
  fds:Unix.file_descr array ->
  revents:int array ->
  timeout_ms:int ->
  (int, error) result
(** POLLIN-polls [fds]; sets [revents.(i)] to 1 when [fds.(i)] is
    readable (or errored/hung up), 0 otherwise, and returns the ready
    count. [revents] must be at least as long as [fds]. A [timeout_ms]
    of 0 returns immediately; there is no infinite wait (callers
    always have a deadline). *)

val ms_of_span : float -> int
(** Seconds → milliseconds for [timeout_ms], rounding up so a
    positive sub-millisecond timeout still sleeps (1ms) rather than
    busy-spinning — the same guard the select loop's timeout floor
    provided. Zero stays zero. *)
