open Tasim
open Broadcast
open Timewheel

type msg = (string, string list) Full_stack.msg
type state = (string, string list) Full_stack.state
type obs = string Full_stack.obs
type node = (state, msg, obs) Node.t
type cluster = (state, msg, obs) Cluster.t

type config = {
  n : int;
  base_port : int;
  params : Params.t;
  cs_config : Clocksync.Protocol.config;
  store : Live_store.t;
  batching : bool option;
}

let config ?(base_port = 47800) ?params ?cs_config ?store ?batching ~n () =
  let params =
    match params with
    | Some p -> p
    | None ->
      (* the simulator's sigma = 1ms is optimistic for a real OS
         scheduler; widen the scheduling and clock-deviation budgets
         so a briefly preempted process is not declared late *)
      Params.make ~sigma:(Time.of_ms 5) ~epsilon:(Time.of_ms 5) ~n ()
  in
  let cs_config =
    match cs_config with
    | Some c -> c
    | None -> Clocksync.Protocol.default_config ~n
  in
  let store = match store with Some s -> s | None -> Live_store.in_memory () in
  { n; base_port; params; cs_config; store; batching }

type view = {
  at : Time.t;
  proc : Proc_id.t;
  group : Proc_set.t;
  group_id : Group_id.t;
}

type recorder = {
  mutable views : view list;
  mutable started : Proc_id.t list;
  mutable delivered : (Proc_id.t * string) list;
}

let recorder () = { views = []; started = []; delivered = [] }

let record recorder ~proc at (o : obs) =
  match o with
  | Full_stack.Member_obs (Member.View_installed { group; group_id }) ->
    recorder.views <- { at; proc; group; group_id } :: recorder.views
  | Full_stack.Member_obs (Member.Delivered { proposal; _ }) ->
    recorder.delivered <-
      (proc, proposal.Proposal.payload) :: recorder.delivered
  | Full_stack.Member_started -> recorder.started <- proc :: recorder.started
  | Full_stack.Member_obs _ | Full_stack.Sync_obs _ -> ()

let automaton_of cfg =
  let member_cfg =
    Member.config
      ~apply:(fun log u -> u :: log)
      ~persist:(fun ~self ~now:_ record ->
        Live_store.persist cfg.store ~self record)
      ~restore:(fun ~self ~now:_ -> Live_store.restore cfg.store ~self)
      ~initial_app:[] cfg.params
  in
  Full_stack.automaton member_cfg cfg.cs_config

let mk_node cfg ~clock ~self ?recorder ?on_log () =
  let port_of p = cfg.base_port + Proc_id.to_int p in
  let mk_transport stats =
    Transport.create
      ~encode_to:(Codec.encode_to Codec.string_payload)
      ~decode:(Codec.decode_bytes Codec.string_payload)
      ~kind_of:Full_stack.kind_of_msg ?batching:cfg.batching ~self ~n:cfg.n
      ~port_of ~stats ()
  in
  let on_obs =
    match recorder with
    | Some r -> fun at o -> record r ~proc:self at o
    | None -> fun _ _ -> ()
  in
  Node.create ~automaton:(automaton_of cfg) ~clock ~mk_transport ~on_obs
    ?on_log ()

let in_process cfg ?recorder ?on_log () =
  let clock = Clock.create () in
  let nodes =
    List.map
      (fun self ->
        let on_log = Option.map (fun f -> f self) on_log in
        mk_node cfg ~clock ~self ?recorder ?on_log ())
      (Proc_id.all ~n:cfg.n)
  in
  (clock, Cluster.create ~clock ~nodes)

let member_of node = Option.bind (Node.state node) Full_stack.member

let decider cluster =
  List.find_map
    (fun node ->
      match member_of node with
      | Some m when Member.is_decider m -> Some (Node.self node)
      | Some _ | None -> None)
    (Cluster.nodes cluster)

let agreed_view cluster =
  let members =
    List.filter_map
      (fun node ->
        if Node.is_up node then
          Option.map (fun m -> (Member.group m, Member.group_id m))
            (member_of node)
        else None)
      (Cluster.nodes cluster)
  in
  match members with
  | [] -> None
  | ((group, group_id) as first) :: rest ->
    if
      Group_id.is_known group_id
      && (not (Proc_set.is_empty group))
      && List.for_all
           (fun (g, gid) ->
             Proc_set.equal g group && Group_id.equal gid group_id)
           rest
    then Some first
    else None

let submit node ~semantics payload =
  Node.inject node (Full_stack.submit ~semantics payload)
