(** CRC-32 (IEEE 802.3, the zlib polynomial), for the stable-store
    record checksum.

    A torn or bit-flipped on-disk record that happens to still parse
    would otherwise restore as {e valid} state and silently violate
    the epoch ratchet; the checksum makes every corruption a detected
    corruption ([restore] = [None]). Self-contained table-driven
    implementation — no new dependency. *)

val digest : ?crc:int32 -> string -> pos:int -> len:int -> int32
(** Running update: feed successive slices, threading the returned
    value back through [?crc] (default: the empty-message state).
    [digest s ~pos:0 ~len:(String.length s)] is the one-shot CRC. *)

val string : string -> int32
(** One-shot CRC of a whole string. *)
