external tw_mmsg_supported : unit -> bool = "tw_mmsg_supported"

external tw_sendmmsg :
  Unix.file_descr -> Bytes.t -> int array -> int -> int -> int = "tw_sendmmsg"
  [@@noalloc]

external tw_recvmmsg :
  Unix.file_descr -> Bytes.t -> int -> int array -> int -> int = "tw_recvmmsg"
  [@@noalloc]

let supported = tw_mmsg_supported ()

let env_disabled () =
  match Sys.getenv_opt "TW_MMSG" with
  | Some ("0" | "off" | "false" | "OFF" | "FALSE") -> true
  | _ -> false

let default_enabled () = supported && not (env_disabled ())
let slots = 64

type error = [ `Would_block | `Refused | `Intr | `Unsupported | `Error ]

let classify r : (int, error) result =
  if r >= 0 then Ok r
  else
    match r with
    | -1 -> Error `Would_block
    | -2 -> Error `Refused
    | -3 -> Error `Intr
    | -5 -> Error `Unsupported
    | _ -> Error `Error

let send_batch fd ~buf ~meta ~from ~count =
  classify (tw_sendmmsg fd buf meta from count)

let recv_batch fd ~ring ~slot ~lens ~vlen =
  classify (tw_recvmmsg fd ring slot lens vlen)
