(** Bindings to the batched-UDP syscalls ([sendmmsg]/[recvmmsg]).

    The stubs are compiled everywhere but only do real work on Linux;
    elsewhere they report [`Unsupported] and {!Transport} falls back
    to its portable [sendto]/[recvfrom] loop. The [TW_MMSG]
    environment variable (["0"], ["off"] or ["false"]) forces the
    fallback even where the syscalls exist — used by CI to exercise
    both paths on the same machine. *)

val supported : bool
(** Compile-time support (Linux). Runtime [ENOSYS] is still possible
    on exotic kernels and surfaces as [`Unsupported] from the calls
    below; the transport downgrades itself on first sight of it. *)

val env_disabled : unit -> bool
(** [true] when [TW_MMSG] is set to ["0"], ["off"] or ["false"]. *)

val default_enabled : unit -> bool
(** [supported && not (env_disabled ())] — the default batching mode
    for new transports. *)

val slots : int
(** Max datagrams per syscall; longer batches take multiple calls. *)

type error = [ `Would_block | `Refused | `Intr | `Unsupported | `Error ]

val send_batch :
  Unix.file_descr ->
  buf:Bytes.t ->
  meta:int array ->
  from:int ->
  count:int ->
  (int, error) result
(** [send_batch fd ~buf ~meta ~from ~count] sends messages
    [from, min (from + slots, count)) of the batch in one syscall.
    [buf] holds the encoded frames back to back; [meta] is laid out
    as [| off; len; port; ... |] per message, destinations all
    loopback. [Ok n] is the number actually sent (possibly short);
    an [Error _] means nothing was sent by this call. *)

val recv_batch :
  Unix.file_descr ->
  ring:Bytes.t ->
  slot:int ->
  lens:int array ->
  vlen:int ->
  (int, error) result
(** [recv_batch fd ~ring ~slot ~lens ~vlen] receives up to [vlen]
    datagrams in one syscall; datagram [i] lands at [ring] offset
    [i * slot] with its length in [lens.(i)]. [slot] must be at least
    the largest possible datagram (65507 for UDP), so frames are
    never truncated. *)
