(** One live protocol instance: a pure {!Tasim.Engine.automaton}
    driven by wall time over a real UDP socket.

    This is the live counterpart of one process slot inside
    {!Tasim.Engine}: the paper's event-based execution environment
    (Section 5) realized with the repo's own building blocks —

    - received datagrams and expired timers are posted as events to an
      {!Eventloop.Dispatcher}, so at most one handler runs at a time
      and the automaton needs no synchronization;
    - [Set_timer]/[Cancel_timer] effects are backed by an
      {!Eventloop.Timer_wheel} keyed by the automaton's timer keys,
      with per-key generations so a re-arm replaces any pending
      occurrence (the engine's timer contract);
    - [Send]/[Broadcast] effects go out through a {!Transport};
    - the automaton's hardware-clock readings come from a monotonic
      {!Clock}.

    A node can be {!kill}ed (socket closed, timers cancelled, state
    dropped — a crash-stop) and {!restart}ed (fresh socket, [init]
    rerun with an incremented incarnation), which is how the live
    binary exercises the failure/recovery paths for real. *)

open Tasim

type ('s, 'm, 'obs) t

val create :
  automaton:('s, 'm, 'obs) Engine.automaton ->
  clock:Clock.t ->
  mk_transport:(Stats.t -> 'm Transport.t) ->
  ?on_obs:(Time.t -> 'obs -> unit) ->
  ?on_log:(string -> unit) ->
  unit ->
  ('s, 'm, 'obs) t
(** The node opens its transport (via [mk_transport], so a restart can
    open a fresh socket) but does not run [init] until {!start}. *)

val self : ('s, 'm, 'obs) t -> Proc_id.t
val stats : ('s, 'm, 'obs) t -> Stats.t
val state : ('s, 'm, 'obs) t -> 's option
(** [None] before {!start} and while killed. *)

val is_up : ('s, 'm, 'obs) t -> bool
val incarnation : ('s, 'm, 'obs) t -> int

val fd : ('s, 'm, 'obs) t -> Unix.file_descr option
(** The socket to select on; [None] while killed. *)

val start : ('s, 'm, 'obs) t -> unit
(** Run [init] at the current clock reading (incarnation 0). *)

val kill : ('s, 'm, 'obs) t -> unit
(** Crash-stop: drop state, cancel timers, close the socket. In-flight
    datagrams addressed to the node are lost (real UDP drops them on
    the floor once the port closes). Idempotent. *)

val restart : ('s, 'm, 'obs) t -> unit
(** Reopen the socket and rerun [init] with an incremented
    incarnation. No-op when the node is up. *)

val pause : ('s, 'm, 'obs) t -> unit
(** The SIGSTOP analog: stop scheduling this node. While paused the
    node's fd is withheld from the poll loop (incoming datagrams queue
    in the kernel socket buffer and eventually drop, as for a stopped
    process), {!poll} is a no-op, and {!next_deadline} is [None].
    State and socket survive. No-op while down. *)

val resume : ('s, 'm, 'obs) t -> unit
(** Undo {!pause}; the next {!poll} advances the timer wheel across
    the whole stopped gap, firing every overdue timer late, and the
    queued datagrams flood in — the paused member wakes up behind the
    group and must be absorbed (wrong-suspicion state, adaptive
    suspicion), not crash it. *)

val is_paused : ('s, 'm, 'obs) t -> bool

val inject : ('s, 'm, 'obs) t -> 'm -> unit
(** Deliver a message from the node to itself, bypassing the network —
    the local client call path ({!Tasim.Engine.inject}'s live
    counterpart). Dropped while killed. Processed at the next
    {!poll}. *)

val recv_ready : ('s, 'm, 'obs) t -> unit
(** Drain the socket, posting received messages as dispatcher events
    (called by the poll loop when the fd is readable). Events are not
    processed until {!poll}. *)

val poll : ('s, 'm, 'obs) t -> now:Time.t -> int
(** Release due impaired frames ({!Transport.pump}), advance the timer
    wheel to [now] and dispatch every pending event (timer fires and
    received messages) through the automaton. Returns the amount of
    work done (frames released + timers fired + events dispatched) —
    the poll loop's progress signal (see {!Cluster.run_until}). *)

val transport : ('s, 'm, 'obs) t -> 'm Transport.t
(** The node's current transport — the handle scenarios use to install
    {!Transport.impair} rules. Replaced by {!restart} after a kill. *)

val next_deadline : ('s, 'm, 'obs) t -> Time.t option
(** Earliest pending timer or impaired-frame release, for the select
    timeout; [None] when down with nothing pending. *)
