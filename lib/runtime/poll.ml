external tw_poll : Unix.file_descr array -> int array -> int -> int -> int
  = "tw_poll"

type error = [ `Intr | `Error ]

let wait ~fds ~revents ~timeout_ms =
  let n = Array.length fds in
  if Array.length revents < n then invalid_arg "Poll.wait: revents too short";
  match tw_poll fds revents n timeout_ms with
  | r when r >= 0 -> Ok r
  | -3 -> Error `Intr
  | _ -> Error `Error

let ms_of_span span =
  if span <= 0.0 then 0 else Stdlib.max 1 (int_of_float (ceil (span *. 1000.0)))
