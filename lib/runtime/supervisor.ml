open Tasim

type policy = {
  base : Time.t;
  cap : Time.t;
  jitter : float;
  max_restarts : int;
}

let default_policy =
  {
    base = Time.of_ms 500;
    cap = Time.of_sec 30;
    jitter = 0.2;
    max_restarts = 10;
  }

let validate p =
  if Time.compare p.base Time.zero <= 0 then
    invalid_arg "Supervisor: base backoff must be > 0";
  if Time.compare p.cap p.base < 0 then
    invalid_arg "Supervisor: cap must be >= base";
  if p.jitter < 0.0 || p.jitter >= 1.0 then
    invalid_arg "Supervisor: jitter must be in [0, 1)";
  if p.max_restarts < 0 then
    invalid_arg "Supervisor: max_restarts must be >= 0"

let backoff p ~rng ~restarts =
  validate p;
  if restarts < 1 then invalid_arg "Supervisor.backoff: restarts < 1";
  (* cap the exponent too: 2^62 would overflow long before the Time
     cap gets a chance to clamp *)
  let exp = min (restarts - 1) 40 in
  let b = Time.min p.cap (Time.mul p.base (1 lsl exp)) in
  if p.jitter = 0.0 then b
  else
    let u = 1.0 +. (p.jitter *. ((2.0 *. Rng.float rng) -. 1.0)) in
    Time.scale b u

type outcome = Done of int | Gave_up of { restarts : int; last : string }

let run ?(policy = default_policy) ?seed ?(sleep = fun t -> Unix.sleepf (Time.to_sec_f t))
    ?(on_restart = fun ~restarts:_ ~backoff:_ ~reason:_ -> ()) body =
  validate policy;
  let rng =
    Rng.create
      (match seed with
      | Some s -> s
      | None -> Unix.getpid () lxor int_of_float (Unix.gettimeofday () *. 1e6))
  in
  let rec go restarts =
    let result =
      match body ~restarts with
      | 0 -> Ok ()
      | code -> Error (Printf.sprintf "exit code %d" code)
      | exception e -> Error (Printexc.to_string e)
    in
    match result with
    | Ok () -> Done restarts
    | Error reason ->
      if restarts >= policy.max_restarts then
        Gave_up { restarts; last = reason }
      else begin
        let restarts = restarts + 1 in
        let b = backoff policy ~rng ~restarts in
        on_restart ~restarts ~backoff:b ~reason;
        sleep b;
        go restarts
      end
  in
  go 0
