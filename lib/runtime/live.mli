(** The full Figure 1 stack, live: ready-made wiring of
    {!Timewheel.Full_stack} (clock synchronization + membership +
    broadcast) onto {!Node}/{!Cluster} with the string-payload codec.

    This is what [timewheel_live] runs: update payloads are strings,
    the replicated application state is the list of delivered updates
    (newest first), stable storage is a {!Live_store}, and each member
    owns UDP port [base_port + id] on localhost. *)

open Tasim
open Broadcast
open Timewheel

type msg = (string, string list) Full_stack.msg
type state = (string, string list) Full_stack.state
type obs = string Full_stack.obs
type node = (state, msg, obs) Node.t
type cluster = (state, msg, obs) Cluster.t

type config = {
  n : int;
  base_port : int;
  params : Params.t;
  cs_config : Clocksync.Protocol.config;
  store : Live_store.t;
  batching : bool option;
      (** Forced syscall-batching mode for every transport; [None]
          (the default) defers to {!Mmsg.default_enabled} — batched
          where the platform supports it, portable loop under
          [TW_MMSG=0]. *)
}

val config :
  ?base_port:int ->
  ?params:Params.t ->
  ?cs_config:Clocksync.Protocol.config ->
  ?store:Live_store.t ->
  ?batching:bool ->
  n:int ->
  unit ->
  config
(** Defaults: base port 47800, in-memory store, protocol params
    [Params.make ~n] with sigma and epsilon widened to 5 ms (real
    scheduling is far noisier than the simulator's), clocksync
    defaults for [n]. *)

(** {1 Observation log} *)

type view = { at : Time.t; proc : Proc_id.t; group : Proc_set.t; group_id : Group_id.t }

type recorder = {
  mutable views : view list;  (** newest first *)
  mutable started : Proc_id.t list;  (** members whose clock synced *)
  mutable delivered : (Proc_id.t * string) list;  (** newest first *)
}

val recorder : unit -> recorder

(** {1 Assembly} *)

val mk_node :
  config ->
  clock:Clock.t ->
  self:Proc_id.t ->
  ?recorder:recorder ->
  ?on_log:(string -> unit) ->
  unit ->
  node

val in_process :
  config ->
  ?recorder:recorder ->
  ?on_log:(Proc_id.t -> string -> unit) ->
  unit ->
  Clock.t * cluster
(** All [n] members as nodes of one cluster in this process — each
    still a real UDP endpoint on localhost. Nodes are created but not
    started. *)

(** {1 Inspection} *)

val member_of : node -> (string, string list) Member.state option
(** [None] while down or before the member's clock first
    synchronized. *)

val decider : cluster -> Proc_id.t option
(** The current decider, if some up member believes it holds the
    role. *)

val agreed_view : cluster -> (Proc_set.t * Group_id.t) option
(** The view every up member agrees on; [None] while they differ (or
    nobody has one). *)

val submit : node -> semantics:Semantics.t -> string -> unit
(** Inject a client update at this member (local call path). *)
