exception Error of string

let fail msg = raise (Error msg)

type writer = Buffer.t

let writer () = Buffer.create 256
let contents w = Buffer.contents w
let byte w v = Buffer.add_char w (Char.chr (v land 0xff))

(* zigzag so small negative sentinels (-1 ordinals, Group_id.none) stay
   one byte; OCaml ints are 63-bit, hence the [asr 62] sign smear *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

let int w n =
  let rec go z =
    if z land lnot 0x7f = 0 then byte w z
    else begin
      byte w (0x80 lor (z land 0x7f));
      go (z lsr 7)
    end
  in
  go (zigzag n)

let bool w b = byte w (if b then 1 else 0)

let string w s =
  int w (String.length s);
  Buffer.add_string w s

let option f w = function
  | None -> byte w 0
  | Some v ->
    byte w 1;
    f w v

let list f w items =
  int w (List.length items);
  List.iter (f w) items

type reader = { data : string; mutable pos : int; limit : int }

let reader ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Wire.reader: window out of bounds";
  { data; pos; limit = pos + len }

let remaining r = r.limit - r.pos

let r_byte r =
  if r.pos >= r.limit then fail "truncated: expected byte";
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_int r =
  let rec go shift acc =
    if shift > 62 then fail "varint too long";
    let b = r_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  unzigzag (go 0 0)

let r_bool r =
  match r_byte r with
  | 0 -> false
  | 1 -> true
  | b -> fail (Printf.sprintf "bad bool tag %d" b)

let r_string r =
  let len = r_int r in
  if len < 0 then fail "negative string length";
  if len > remaining r then fail "truncated: string overruns frame";
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let r_option f r =
  match r_byte r with
  | 0 -> None
  | 1 -> Some (f r)
  | b -> fail (Printf.sprintf "bad option tag %d" b)

let r_list f r =
  let count = r_int r in
  if count < 0 then fail "negative list count";
  (* every element costs at least one byte: reject counts no
     well-formed remainder of the frame could satisfy *)
  if count > remaining r then fail "list count overruns frame";
  List.init count (fun _ -> f r)
