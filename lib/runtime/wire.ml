exception Error of string

let fail msg = raise (Error msg)

(* Writers target caller-visible [Bytes.t] so the transport send path
   can serialize into one reused scratch buffer: a growable writer
   ([writer ()]) doubles its backing array and is the allocation-when-
   needed path; a fixed writer ([writer_into]) writes a caller-owned
   buffer and raises {!Error} on overflow instead of growing. *)
type writer = {
  mutable out : Bytes.t;
  mutable wpos : int;
  mutable origin : int;
  growable : bool;
}

let writer () =
  { out = Bytes.create 256; wpos = 0; origin = 0; growable = true }

let writer_into buf ~pos =
  if pos < 0 || pos > Bytes.length buf then
    invalid_arg "Wire.writer_into: position out of bounds";
  { out = buf; wpos = pos; origin = pos; growable = false }

let pos w = w.wpos - w.origin
let reset w = w.wpos <- w.origin

(* Re-point a fixed writer at a new buffer/offset: the transport's
   batch path encodes every frame at the batch tail through one
   long-lived writer instead of allocating a writer per frame. *)
let rebase w buf ~pos =
  if w.growable then invalid_arg "Wire.rebase: writer is growable";
  if pos < 0 || pos > Bytes.length buf then
    invalid_arg "Wire.rebase: position out of bounds";
  w.out <- buf;
  w.wpos <- pos;
  w.origin <- pos

let contents w = Bytes.sub_string w.out w.origin (w.wpos - w.origin)

let ensure w n =
  if w.wpos + n > Bytes.length w.out then begin
    if not w.growable then fail "writer overflow: fixed buffer full";
    let cap = ref (Bytes.length w.out * 2) in
    while w.wpos + n > !cap do
      cap := !cap * 2
    done;
    let out = Bytes.create !cap in
    Bytes.blit w.out 0 out 0 w.wpos;
    w.out <- out
  end

let byte w v =
  ensure w 1;
  Bytes.unsafe_set w.out w.wpos (Char.unsafe_chr (v land 0xff));
  w.wpos <- w.wpos + 1

(* zigzag so small negative sentinels (-1 ordinals, Group_id.none) stay
   one byte; OCaml ints are 63-bit, hence the [asr 62] sign smear *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (-(z land 1))

(* a 63-bit zigzag value needs at most ceil(63/7) = 9 varint bytes *)
let max_varint = 9

(* recursion instead of a [ref] loop: the writer's mutable fields carry
   the state, so encoding an int touches no heap *)
let rec put_varint w z =
  if z land lnot 0x7f = 0 then begin
    Bytes.unsafe_set w.out w.wpos (Char.unsafe_chr z);
    w.wpos <- w.wpos + 1
  end
  else begin
    Bytes.unsafe_set w.out w.wpos (Char.unsafe_chr (0x80 lor (z land 0x7f)));
    w.wpos <- w.wpos + 1;
    put_varint w (z lsr 7)
  end

let int w n =
  ensure w max_varint;
  put_varint w (zigzag n)

let bool w b = byte w (if b then 1 else 0)

let string w s =
  let len = String.length s in
  int w len;
  ensure w len;
  Bytes.blit_string s 0 w.out w.wpos len;
  w.wpos <- w.wpos + len

let option f w = function
  | None -> byte w 0
  | Some v ->
    byte w 1;
    f w v

let list f w items =
  int w (List.length items);
  List.iter (f w) items

(* Length-prefixed region with the length varint in front: reserve the
   maximal varint width, write the payload, then encode the now-known
   length and close the gap with one in-buffer blit. The emitted bytes
   are exactly [int w len] followed by the payload — identical to a
   two-pass encode, without building the payload in a side buffer. *)

let begin_frame w =
  ensure w max_varint;
  let mark = w.wpos in
  w.wpos <- mark + max_varint;
  mark

let varint_width z =
  let rec go acc z = if z land lnot 0x7f = 0 then acc else go (acc + 1) (z lsr 7) in
  go 1 z

let rec put_varint_at w p z =
  if z land lnot 0x7f = 0 then Bytes.unsafe_set w.out p (Char.unsafe_chr z)
  else begin
    Bytes.unsafe_set w.out p (Char.unsafe_chr (0x80 lor (z land 0x7f)));
    put_varint_at w (p + 1) (z lsr 7)
  end

let end_frame w mark =
  let payload = mark + max_varint in
  let len = w.wpos - payload in
  let z = zigzag len in
  let k = varint_width z in
  if k < max_varint then begin
    Bytes.blit w.out payload w.out (mark + k) len;
    w.wpos <- mark + k + len
  end;
  put_varint_at w mark z

type reader = { mutable data : string; mutable pos : int; mutable limit : int }

let reader ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Wire.reader: window out of bounds";
  { data; pos; limit = pos + len }

(* Re-aim an existing reader at a new window: the codec decodes every
   frame through one reused reader instead of allocating one per
   frame. [reset_window] is the allocation-free spelling — required
   labels, so no [Some] boxes materialize at the call site the way
   [reset_reader]'s optional arguments force. *)
let reset_window r data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > String.length data then
    invalid_arg "Wire.reset_reader: window out of bounds";
  r.data <- data;
  r.pos <- pos;
  r.limit <- pos + len

let reset_reader r ?(pos = 0) ?len data =
  let len = match len with Some l -> l | None -> String.length data - pos in
  reset_window r data ~pos ~len

let reset_reader_bytes r ?pos ?len data =
  reset_reader r ?pos ?len (Bytes.unsafe_to_string data)

let reader_bytes ?pos ?len data =
  (* zero-copy view: sound because readers never write [data] and every
     caller (the transport drain loop) finishes decoding before it
     refills the buffer *)
  reader ?pos ?len (Bytes.unsafe_to_string data)

let remaining r = r.limit - r.pos

let r_byte r =
  if r.pos >= r.limit then fail "truncated: expected byte";
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

(* top-level so reading a varint allocates nothing: as an inner
   [let rec] this loop captured [r] and cost a fresh closure per
   [r_int] — the single largest decode-side allocation, paid for
   every integer field of every frame *)
let rec r_varint r shift acc =
  if shift > 62 then fail "varint too long";
  let b = r_byte r in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then acc else r_varint r (shift + 7) acc

let r_int r = unzigzag (r_varint r 0 0)

let r_bool r =
  match r_byte r with
  | 0 -> false
  | 1 -> true
  | b -> fail (Printf.sprintf "bad bool tag %d" b)

let r_string r =
  let len = r_int r in
  if len < 0 then fail "negative string length";
  if len > remaining r then fail "truncated: string overruns frame";
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let r_option f r =
  match r_byte r with
  | 0 -> None
  | 1 -> Some (f r)
  | b -> fail (Printf.sprintf "bad option tag %d" b)

let r_list f r =
  let count = r_int r in
  if count < 0 then fail "negative list count";
  (* every element costs at least one byte: reject counts no
     well-formed remainder of the frame could satisfy *)
  if count > remaining r then fail "list count overruns frame";
  List.init count (fun _ -> f r)
