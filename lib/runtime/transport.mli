(** Nonblocking UDP transport: one socket per process, a peer address
    book mapping process ids to localhost ports.

    The transport is deliberately dumb — it moves frames, nothing
    more. Loss, reordering and duplication are the datagram service's
    prerogative (the protocol stack is built for exactly that), so
    every send-side failure (would-block, oversized frame, transient
    ICMP-driven errors) is counted and dropped, never retried or
    surfaced as an exception. Decode failures on receive are counted
    per {!Codec.error} kind in the stats and the frame discarded:
    fail-aware rejection of garbage from the network.

    The data plane is allocation-free per datagram: sends encode
    through one long-lived writer over a reused scratch buffer
    ({!Codec.encode_to}) to precomputed peer addresses, and receives
    decode straight out of the receive buffer ({!Codec.decode_bytes}),
    so steady-state cost per datagram is flat in group size. *)

open Tasim

type 'm t

val create :
  encode_to:(sender:Proc_id.t -> 'm -> Wire.writer -> int) ->
  decode:
    (Bytes.t -> pos:int -> len:int -> (Proc_id.t * 'm, Codec.error) result) ->
  ?kind_of:('m -> string) ->
  self:Proc_id.t ->
  n:int ->
  port_of:(Proc_id.t -> int) ->
  stats:Stats.t ->
  unit ->
  'm t
(** Open and bind a nonblocking UDP socket on
    [127.0.0.1:port_of self]. Raises [Unix.Unix_error] when the port
    is taken. [stats] receives [live:sent]/[live:recv] totals,
    [live:drop:*] counters, and — keyed by [kind_of msg], default
    ["msg"] — per-kind [live:sent:<kind>]/[live:sent-bytes:<kind>]
    and [live:recv:<kind>]/[live:recv-bytes:<kind>] counters. All are
    interned once, so counting costs no allocation per datagram. *)

val self : 'm t -> Proc_id.t
val n : 'm t -> int
val fd : 'm t -> Unix.file_descr
(** For [select]/poll loops. *)

val send : 'm t -> dst:Proc_id.t -> 'm -> unit
val broadcast : 'm t -> 'm -> unit
(** To every team member except [self]. *)

val drain : ?budget:int -> 'm t -> handler:(src:Proc_id.t -> 'm -> unit) -> int
(** Receive and decode datagrams queued on the socket until it would
    block, calling [handler] per well-formed frame; returns the number
    handled. [budget] bounds the datagrams consumed in one call
    (default: unbounded) so one drain cannot starve timers when a peer
    floods the socket. Frames from out-of-range senders or that fail
    to decode are dropped (and counted). Never blocks. *)

val close : 'm t -> unit
(** Close the socket. Further sends/drains are no-ops. *)

val is_closed : 'm t -> bool
