(** Nonblocking UDP transport: one socket per process, a peer address
    book mapping process ids to localhost ports.

    The transport is deliberately dumb — it moves frames, nothing
    more. Loss, reordering and duplication are the datagram service's
    prerogative (the protocol stack is built for exactly that), so
    every send-side failure (would-block, oversized frame, transient
    ICMP-driven errors) is counted and dropped, never retried or
    surfaced as an exception. Decode failures on receive are counted
    per {!Codec.error} kind in the stats and the frame discarded:
    fail-aware rejection of garbage from the network. *)

open Tasim

type 'm t

val create :
  encode:(sender:Proc_id.t -> 'm -> string) ->
  decode:(string -> (Proc_id.t * 'm, Codec.error) result) ->
  self:Proc_id.t ->
  n:int ->
  port_of:(Proc_id.t -> int) ->
  stats:Stats.t ->
  unit ->
  'm t
(** Open and bind a nonblocking UDP socket on
    [127.0.0.1:port_of self]. Raises [Unix.Unix_error] when the port
    is taken. [stats] receives [sent:*]/[recv:*]/drop counters. *)

val self : 'm t -> Proc_id.t
val n : 'm t -> int
val fd : 'm t -> Unix.file_descr
(** For [select]/poll loops. *)

val send : 'm t -> dst:Proc_id.t -> 'm -> unit
val broadcast : 'm t -> 'm -> unit
(** To every team member except [self]. *)

val drain : 'm t -> handler:(src:Proc_id.t -> 'm -> unit) -> int
(** Receive and decode every datagram currently queued on the socket,
    calling [handler] per well-formed frame; returns the number
    handled. Frames from out-of-range senders or that fail to decode
    are dropped (and counted). Never blocks. *)

val close : 'm t -> unit
(** Close the socket. Further sends/drains are no-ops. *)

val is_closed : 'm t -> bool
