(** Nonblocking UDP transport: one socket per process, a peer address
    book mapping process ids to localhost ports.

    The transport is deliberately dumb — it moves frames, nothing
    more. Loss, reordering and duplication are the datagram service's
    prerogative (the protocol stack is built for exactly that), so
    every send-side failure (would-block, oversized frame, transient
    ICMP-driven errors) is counted and dropped, never retried or
    surfaced as an exception. Decode failures on receive are counted
    per {!Codec.error} kind in the stats and the frame discarded:
    fail-aware rejection of garbage from the network.

    The data plane is allocation-free per datagram and batched per
    syscall: sends encode through one long-lived writer at the tail of
    a reused batch buffer and accumulate until {!flush} (called by the
    node driver at the end of every dispatch pass, and internally on
    buffer pressure), which moves the whole batch with one [sendmmsg];
    {!drain} fills a preallocated ring with one [recvmmsg] per up-to-16
    datagrams and decodes frames in place. Where the batched syscalls
    are unavailable (non-Linux, runtime [ENOSYS], or [TW_MMSG=0] /
    [~batching:false] forcing the portable path) the same batch is
    walked with a [sendto]/[recvfrom] loop — identical frame bytes and
    counters, one syscall per datagram. Syscalls are counted under
    [live:syscall:sendto|recvfrom|sendmmsg|recvmmsg].

    Batched frames count as sent when committed to the batch (the kind
    is known there); a flush-time kernel drop still bumps
    [live:drop:send] — the same dropped-not-retried contract as
    before, observed one flush later.

    For live chaos scenarios the transport carries a loopback
    {e impairment shim} ({!impair}): per-destination outbound
    delay/jitter/drop rules in the style of the simulator's
    {!Tasim.Net.set_link}, so the topology scenarios have a live
    reproduction path. Delayed frames are copied into a held queue and
    transmitted by {!pump} once due; {!next_release} feeds the poll
    loop's sleep. With no rules installed the data plane is
    untouched. *)

open Tasim

type 'm t

val create :
  encode_to:(sender:Proc_id.t -> 'm -> Wire.writer -> int) ->
  decode:
    (Bytes.t -> pos:int -> len:int -> (Proc_id.t * 'm, Codec.error) result) ->
  ?kind_of:('m -> string) ->
  ?batching:bool ->
  self:Proc_id.t ->
  n:int ->
  port_of:(Proc_id.t -> int) ->
  stats:Stats.t ->
  unit ->
  'm t
(** Open and bind a nonblocking UDP socket on
    [127.0.0.1:port_of self]. Raises [Unix.Unix_error] when the port
    is taken. [stats] receives [live:sent]/[live:recv] totals,
    [live:drop:*] counters, and — keyed by [kind_of msg], default
    ["msg"] — per-kind [live:sent:<kind>]/[live:sent-bytes:<kind>]
    and [live:recv:<kind>]/[live:recv-bytes:<kind>] counters. All are
    interned once, so counting costs no allocation per datagram.
    [batching] selects the mmsg syscalls vs the portable loop;
    default {!Mmsg.default_enabled} (on where supported, off under
    [TW_MMSG=0]). [~batching:true] is still clamped to platform
    support. *)

val self : 'm t -> Proc_id.t
val n : 'm t -> int
val fd : 'm t -> Unix.file_descr
(** For [select]/poll loops. *)

val send : 'm t -> dst:Proc_id.t -> 'm -> unit
val broadcast : 'm t -> 'm -> unit
(** To every team member except [self]. *)

val flush : 'm t -> unit
(** Transmit the accumulated outbound batch. The node driver calls
    this at the end of every dispatch pass (and after init effects);
    callers driving a transport directly must flush before expecting
    frames on the wire. No-op when the batch is empty; pending frames
    are discarded (not sent) if the transport is closed first. *)

val batched : 'm t -> bool
(** Whether flushes currently use the batched syscalls ([false] on
    the portable fallback path, including after a runtime [ENOSYS]
    downgrade). *)

val drain : ?budget:int -> 'm t -> handler:(src:Proc_id.t -> 'm -> unit) -> int
(** Receive and decode datagrams queued on the socket until it would
    block, calling [handler] per well-formed frame; returns the number
    handled. [budget] bounds the datagrams consumed in one call
    (default: unbounded) so one drain cannot starve timers when a peer
    floods the socket. Frames from out-of-range senders or that fail
    to decode are dropped (and counted). Never blocks. *)

val close : 'm t -> unit
(** Close the socket. Further sends/drains are no-ops; held impaired
    frames are discarded. *)

val is_closed : 'm t -> bool

(** {1 Loopback impairment shim} *)

val impair :
  'm t ->
  dst:Proc_id.t ->
  ?delay:Time.t ->
  ?jitter:Time.t ->
  ?drop:float ->
  now:(unit -> Time.t) ->
  unit ->
  unit
(** Impair the outbound link to [dst]: each frame is dropped with
    probability [drop] (default 0), otherwise held for
    [delay + uniform(0, jitter)] (defaults 0) and transmitted by the
    next {!pump} whose [now] has passed the due time. [now] is the
    time source used to stamp due times — pass the same monotonic
    clock the poll loop pumps with. A zero-delay rule sends inline.
    Held frames count as sent (totals and per-kind) when enqueued;
    shim activity is counted under [live:impair:drop] /
    [live:impair:released]. Re-impairing a destination replaces its
    rule. Randomness is drawn from a per-process deterministic stream.
    Raises [Invalid_argument] on a negative delay/jitter or a [drop]
    outside [0,1]. *)

val clear_impair : 'm t -> dst:Proc_id.t -> unit
(** Remove the rule toward one destination; frames already held keep
    their due times. *)

val clear_impairments : 'm t -> unit
(** Remove every rule and discard held frames (counted as dropped) —
    tearing the impaired link down loses what was inside it, exactly
    like real UDP. *)

val impaired : 'm t -> int
(** Number of destinations currently carrying a rule. *)

val pump : 'm t -> now:Time.t -> int
(** Transmit every held frame whose due time is at or before [now],
    oldest due first; returns the number released. Cheap no-op when
    nothing is held. *)

val next_release : 'm t -> Time.t option
(** Earliest held-frame due time, for the poll loop's sleep. *)
