(** Binary wire primitives for the live runtime's codec.

    A tiny self-contained serialization layer: integers are zigzag
    LEB128 varints (compact for the small non-negative values that
    dominate protocol messages, correct for the occasional [-1]
    sentinel), strings and lists are count-prefixed, options are
    tag-prefixed. Writers emit into [Bytes.t] — growable, or a
    caller-owned fixed buffer for the transport's zero-allocation send
    path. Readers consume a string or bytes slice with hard bounds
    checks — a malformed or truncated frame raises {!Error}, which
    {!Codec} turns into a typed decode error, never an out-of-bounds
    read. *)

exception Error of string
(** Raised by every reader on malformed input, and by writers over a
    fixed buffer on overflow. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
(** A growable writer; retrieve the result with {!contents}. *)

val writer_into : Bytes.t -> pos:int -> writer
(** A fixed writer over [buf] starting at [pos]. Never grows: writing
    past the end of [buf] raises {!Error}. The number of bytes written
    so far is {!pos}. *)

val pos : writer -> int
(** Bytes written so far (relative to the writer's starting point). *)

val reset : writer -> unit
(** Rewind to the starting point, discarding everything written. Lets
    a long-lived writer over a scratch buffer be reused per datagram
    without reallocating. *)

val rebase : writer -> Bytes.t -> pos:int -> unit
(** Re-point a fixed writer at [buf]/[pos] (new starting point, empty
    contents). The batched transport encodes each frame at the tail of
    its batch buffer through one long-lived writer this way. Raises
    [Invalid_argument] on a growable writer or an out-of-bounds
    position. *)

val contents : writer -> string

val byte : writer -> int -> unit
(** Low 8 bits. *)

val int : writer -> int -> unit
val bool : writer -> bool -> unit
val string : writer -> string -> unit
val option : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val list : (writer -> 'a -> unit) -> writer -> 'a list -> unit

(** {1 Length-prefixed regions}

    [begin_frame] reserves room for a length varint and returns a mark;
    write the payload, then [end_frame] encodes the payload length at
    the mark and closes the reservation gap. The resulting bytes are
    exactly what [int w len] followed by the payload would have
    produced — no padded varints — without staging the payload in a
    separate buffer. *)

val begin_frame : writer -> int
val end_frame : writer -> int -> unit

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
(** Read window [\[pos, pos+len)] of the string (default: all of
    it). *)

val reader_bytes : ?pos:int -> ?len:int -> Bytes.t -> reader
(** Zero-copy read window over a [Bytes.t] (the transport's receive
    buffer). The caller must not mutate the buffer while the reader is
    in use. *)

val reset_reader : reader -> ?pos:int -> ?len:int -> string -> unit
(** Re-aim an existing reader at a new window (same contract as
    {!reader}), so a long-lived reader can be reused per frame without
    allocating. *)

val reset_window : reader -> string -> pos:int -> len:int -> unit
(** {!reset_reader} with both bounds required. The optional arguments
    of {!reset_reader} cost two [Some] boxes per call at the call
    site; the decode hot path re-aims its reader through this
    spelling instead, which allocates nothing. *)

val reset_reader_bytes : reader -> ?pos:int -> ?len:int -> Bytes.t -> unit
(** {!reset_reader} over a [Bytes.t], zero-copy like
    {!reader_bytes}. *)

val remaining : reader -> int
val r_byte : reader -> int
val r_int : reader -> int
val r_bool : reader -> bool
val r_string : reader -> string
val r_option : (reader -> 'a) -> reader -> 'a option
val r_list : (reader -> 'a) -> reader -> 'a list

val fail : string -> 'a
(** [raise (Error msg)], for decoders layering their own checks. *)
