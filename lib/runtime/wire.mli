(** Binary wire primitives for the live runtime's codec.

    A tiny self-contained serialization layer: integers are zigzag
    LEB128 varints (compact for the small non-negative values that
    dominate protocol messages, correct for the occasional [-1]
    sentinel), strings and lists are count-prefixed, options are
    tag-prefixed. Writers append to a [Buffer]; readers consume a
    string slice with hard bounds checks — a malformed or truncated
    frame raises {!Error}, which {!Codec} turns into a typed decode
    error, never an out-of-bounds read. *)

exception Error of string
(** Raised by every reader on malformed input. *)

(** {1 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string

val byte : writer -> int -> unit
(** Low 8 bits. *)

val int : writer -> int -> unit
val bool : writer -> bool -> unit
val string : writer -> string -> unit
val option : (writer -> 'a -> unit) -> writer -> 'a option -> unit
val list : (writer -> 'a -> unit) -> writer -> 'a list -> unit

(** {1 Reading} *)

type reader

val reader : ?pos:int -> ?len:int -> string -> reader
(** Read window [\[pos, pos+len)] of the string (default: all of
    it). *)

val remaining : reader -> int
val r_byte : reader -> int
val r_int : reader -> int
val r_bool : reader -> bool
val r_string : reader -> string
val r_option : (reader -> 'a) -> reader -> 'a option
val r_list : (reader -> 'a) -> reader -> 'a list

val fail : string -> 'a
(** [raise (Error msg)], for decoders layering their own checks. *)
