(** Versioned binary codec for the live runtime's datagrams.

    Every UDP datagram carries exactly one frame:

    {v
    magic "TW" (2 bytes) | version (1 byte) | sender id (varint)
    | body length (varint) | body (length bytes)
    v}

    The body is a {!Full_stack.msg} — a clocksync message or a group
    communication {!Control_msg} — serialized with {!Wire}. No
    [Marshal]: the format is explicit, versioned, and rejects
    truncated, over-length and wrong-version frames with a typed
    {!error} instead of a crash or a silently garbled message.

    ['u] (update payload) and ['app] (application state shipped to
    joiners) are application types, so their codecs are supplied as a
    {!payload} record; {!string_payload} covers the common
    string-payload / string-list-app instantiation used by
    [timewheel_live]. *)

open Tasim

val version : int
(** Current frame format version (1). *)

val max_frame : int
(** Largest frame [encode] may produce that still fits a single
    localhost UDP datagram (65507 bytes). Oversized frames are the
    sender's problem: {!Transport} counts them as send errors and
    drops them, which the protocol tolerates by design (the datagram
    service is unreliable). *)

type error =
  | Truncated  (** shorter than the fixed header *)
  | Bad_magic
  | Bad_version of int
  | Length_mismatch of { declared : int; actual : int }
      (** body length field disagrees with the datagram: truncated
          (actual < declared) or over-length (actual > declared) *)
  | Malformed of string  (** body failed to decode *)

val pp_error : error Fmt.t

type ('u, 'app) payload = {
  write_u : Wire.writer -> 'u -> unit;
  read_u : Wire.reader -> 'u;
  write_app : Wire.writer -> 'app -> unit;
  read_app : Wire.reader -> 'app;
}

val string_payload : (string, string list) payload

val encode :
  ('u, 'app) payload ->
  sender:Proc_id.t ->
  ('u, 'app) Timewheel.Full_stack.msg ->
  string

val encode_to :
  ('u, 'app) payload ->
  sender:Proc_id.t ->
  ('u, 'app) Timewheel.Full_stack.msg ->
  Wire.writer ->
  int
(** Encode one frame into the writer, discarding anything written to
    it before ([Wire.reset]), and return the frame length. With a
    long-lived fixed writer over a scratch buffer this is the
    zero-allocation send path: no writer record, no staging buffer, no
    closures — steady-state messages cost 0 minor words to encode.
    Raises [Wire.Error] when a fixed writer overflows. Not re-entrant:
    one encode at a time per domain. *)

val encode_into :
  ('u, 'app) payload ->
  sender:Proc_id.t ->
  ('u, 'app) Timewheel.Full_stack.msg ->
  Bytes.t ->
  pos:int ->
  int
(** Encode one frame into a caller-owned buffer starting at [pos] and
    return the frame length. Produces bytes identical to {!encode},
    allocating nothing when the message's own encoders don't (the
    transport sends every datagram through one reused scratch buffer
    this way). Raises [Wire.Error] when the frame does not fit. *)

val decode :
  ('u, 'app) payload ->
  string ->
  (Proc_id.t * ('u, 'app) Timewheel.Full_stack.msg, error) result
(** Decode one frame occupying the whole string (a UDP datagram is
    self-delimiting). Total function: malformed input yields [Error],
    never an exception. *)

val decode_bytes :
  ('u, 'app) payload ->
  Bytes.t ->
  pos:int ->
  len:int ->
  (Proc_id.t * ('u, 'app) Timewheel.Full_stack.msg, error) result
(** [decode] over the window [\[pos, pos+len)] of a receive buffer,
    without copying the datagram out first. The window must not be
    mutated during the call. *)
