type config = {
  delta : Time.t;
  delay_min : Time.t;
  delay_max : Time.t;
  omission_prob : float;
  late_prob : float;
  late_delay_max : Time.t;
}

let default_config =
  {
    delta = Time.of_ms 10;
    delay_min = Time.of_ms 1;
    delay_max = Time.of_ms 8;
    omission_prob = 0.0;
    late_prob = 0.0;
    late_delay_max = Time.of_ms 50;
  }

let validate_config c =
  if c.delay_min < Time.zero then Error "delay_min must be >= 0"
  else if c.delay_max < c.delay_min then Error "delay_max < delay_min"
  else if c.delay_max > c.delta then Error "delay_max must be <= delta"
  else if c.omission_prob < 0.0 || c.omission_prob > 1.0 then
    Error "omission_prob out of [0,1]"
  else if c.late_prob < 0.0 || c.late_prob > 1.0 then
    Error "late_prob out of [0,1]"
  else if c.late_prob > 0.0 && c.late_delay_max <= c.delta then
    Error "late_delay_max must be > delta"
  else Ok ()

type 'm filter = {
  name : string;
  pred : src:Proc_id.t -> dst:Proc_id.t -> 'm -> bool;
  mutable remaining : int; (* -1 = unlimited *)
}

type 'm t = {
  cfg : config;
  rng : Rng.t;
  mutable partition : Proc_set.t list option;
  (* [filters] is the registration-order list consulted on every
     datagram; [filters_rev] is its reversed twin, prepended to on
     registration (rare) and materialized into [filters] once per
     change, so neither path is quadratic *)
  mutable filters : 'm filter list;
  mutable filters_rev : 'm filter list;
}

let create cfg rng =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Net.create: " ^ msg));
  { cfg; rng; partition = None; filters = []; filters_rev = [] }

let config t = t.cfg

type fate = Deliver_after of Time.t | Dropped of string

let set_partition t blocks = t.partition <- Some blocks
let heal t = t.partition <- None

let partition_of t p =
  match t.partition with
  | None -> None
  | Some blocks -> List.find_opt (Proc_set.mem p) blocks

let same_block t a b =
  match t.partition with
  | None -> true
  | Some blocks -> (
    match List.find_opt (Proc_set.mem a) blocks with
    | Some block -> Proc_set.mem b block
    | None -> false)

let refresh_filters t = t.filters <- List.rev t.filters_rev

let add_filter t ?(max_drops = -1) ~name pred =
  if max_drops <> 0 then begin
    t.filters_rev <- { name; pred; remaining = max_drops } :: t.filters_rev;
    refresh_filters t
  end

let remove_filter t ~name =
  t.filters_rev <- List.filter (fun f -> f.name <> name) t.filters_rev;
  refresh_filters t

let clear_filters t =
  t.filters <- [];
  t.filters_rev <- []

let active_filters t = List.map (fun f -> f.name) t.filters

let matching_filter t ~src ~dst msg =
  let matches f =
    f.remaining <> 0 && f.pred ~src ~dst msg
    && begin
         if f.remaining > 0 then f.remaining <- f.remaining - 1;
         true
       end
  in
  match List.find_opt matches t.filters with
  | Some f as hit ->
    (* drop exhausted filters so they are never consulted again *)
    if f.remaining = 0 then begin
      t.filters_rev <- List.filter (fun g -> g != f) t.filters_rev;
      refresh_filters t
    end;
    hit
  | None -> None

let fate t ~src ~dst msg =
  (* the partition verdict comes first: a message a partition would
     drop anyway must not consume a bounded filter's [max_drops]
     budget (and [matching_filter] mutates that budget as it
     matches) *)
  if not (same_block t src dst) then Dropped "partition"
  else
    match matching_filter t ~src ~dst msg with
    | Some f -> Dropped ("filter:" ^ f.name)
    | None ->
      if Rng.bool t.rng t.cfg.omission_prob then Dropped "omission"
      else if Rng.bool t.rng t.cfg.late_prob then
        (* performance failure: delay strictly greater than delta *)
        let lo = Time.add t.cfg.delta (Time.of_us 1) in
        Deliver_after (Rng.uniform_time t.rng lo t.cfg.late_delay_max)
      else
        Deliver_after (Rng.uniform_time t.rng t.cfg.delay_min t.cfg.delay_max)
