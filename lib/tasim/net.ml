type config = {
  delta : Time.t;
  delay_min : Time.t;
  delay_max : Time.t;
  omission_prob : float;
  late_prob : float;
  late_delay_max : Time.t;
}

let default_config =
  {
    delta = Time.of_ms 10;
    delay_min = Time.of_ms 1;
    delay_max = Time.of_ms 8;
    omission_prob = 0.0;
    late_prob = 0.0;
    late_delay_max = Time.of_ms 50;
  }

let validate_config c =
  if c.delay_min < Time.zero then Error "delay_min must be >= 0"
  else if c.delay_max < c.delay_min then Error "delay_max < delay_min"
  else if c.delay_max > c.delta then Error "delay_max must be <= delta"
  else if c.omission_prob < 0.0 || c.omission_prob > 1.0 then
    Error "omission_prob out of [0,1]"
  else if c.late_prob < 0.0 || c.late_prob > 1.0 then
    Error "late_prob out of [0,1]"
  else if c.late_prob > 0.0 && c.late_delay_max <= c.delta then
    Error "late_delay_max must be > delta"
  else Ok ()

type 'm filter = {
  name : string;
  pred : src:Proc_id.t -> dst:Proc_id.t -> 'm -> bool;
  mutable remaining : int; (* -1 = unlimited *)
}

type 'm t = {
  cfg : config;
  rng : Rng.t;
  mutable partition : Proc_set.t list option;
  (* [filters] is the registration-order list consulted on every
     datagram; [filters_rev] is its reversed twin, prepended to on
     registration (rare) and materialized into [filters] once per
     change, so neither path is quadratic *)
  mutable filters : 'm filter list;
  mutable filters_rev : 'm filter list;
  (* the timeliness graph: per-directed-link effective configs layered
     over [cfg], keyed by [link_key]. [links_count] keeps the empty
     case (every existing experiment) a single int compare on the hot
     path; with no overrides installed the rng draw sequence is
     bit-identical to the pre-timeliness-graph code *)
  links : (int, config) Hashtbl.t;
  mutable links_count : int;
}

let create cfg rng =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Net.create: " ^ msg));
  {
    cfg;
    rng;
    partition = None;
    filters = [];
    filters_rev = [];
    links = Hashtbl.create 16;
    links_count = 0;
  }

let config t = t.cfg

type fate = Deliver_after of Time.t | Dropped of string

let set_partition t blocks =
  (* overlapping blocks make [same_block] order-dependent; reject them
     loudly rather than silently privileging the first block *)
  let rec check_disjoint = function
    | [] -> ()
    | b :: rest ->
      List.iter
        (fun b' ->
          if not (Proc_set.is_empty (Proc_set.inter b b')) then
            invalid_arg "Net.set_partition: blocks overlap")
        rest;
      check_disjoint rest
  in
  check_disjoint blocks;
  t.partition <- Some blocks

let heal t = t.partition <- None

let partition_of t p =
  match t.partition with
  | None -> None
  | Some blocks -> List.find_opt (Proc_set.mem p) blocks

(* A process absent from every block is an implicit singleton block:
   it can reach itself and nobody else. The old behaviour dropped even
   the self-loop and, more importantly, was undocumented — topology
   scenarios that name subsets (say the two slow datacenters) rely on
   the singleton semantics being explicit. *)
let same_block t a b =
  match t.partition with
  | None -> true
  | Some blocks -> (
    match List.find_opt (Proc_set.mem a) blocks with
    | Some block -> Proc_set.mem b block
    | None -> Proc_id.equal a b)

(* ------------------------------------------------------------------ *)
(* Per-link timeliness overrides *)

(* proc ids are small nonnegative ints (teams max out at a few
   thousand), so a directed link packs into one int key *)
let link_key src dst = (Proc_id.to_int src lsl 20) lor Proc_id.to_int dst

let link_config t ~src ~dst =
  if t.links_count = 0 then t.cfg
  else
    try Hashtbl.find t.links (link_key src dst) with Not_found -> t.cfg

let set_link t ~src ~dst ?delay_min ?delay_max ?omission_prob ?late_prob
    ?late_delay_max () =
  let base = t.cfg in
  let value o d = match o with Some v -> v | None -> d in
  let c =
    {
      delta = base.delta;
      delay_min = value delay_min base.delay_min;
      delay_max = value delay_max base.delay_max;
      omission_prob = value omission_prob base.omission_prob;
      late_prob = value late_prob base.late_prob;
      late_delay_max = value late_delay_max base.late_delay_max;
    }
  in
  (match validate_config c with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Net.set_link: " ^ msg));
  let key = link_key src dst in
  if not (Hashtbl.mem t.links key) then t.links_count <- t.links_count + 1;
  Hashtbl.replace t.links key c

let clear_link t ~src ~dst =
  let key = link_key src dst in
  if Hashtbl.mem t.links key then begin
    Hashtbl.remove t.links key;
    t.links_count <- t.links_count - 1
  end

let clear_links t =
  Hashtbl.reset t.links;
  t.links_count <- 0

let links_overridden t = t.links_count

(* ------------------------------------------------------------------ *)
(* Filters *)

let refresh_filters t = t.filters <- List.rev t.filters_rev

let add_filter t ?(max_drops = -1) ~name pred =
  if max_drops <> 0 then begin
    t.filters_rev <- { name; pred; remaining = max_drops } :: t.filters_rev;
    refresh_filters t
  end

let remove_filter t ~name =
  t.filters_rev <- List.filter (fun f -> f.name <> name) t.filters_rev;
  refresh_filters t

let clear_filters t =
  t.filters <- [];
  t.filters_rev <- []

let active_filters t = List.map (fun f -> f.name) t.filters

let matching_filter t ~src ~dst msg =
  let matches f =
    f.remaining <> 0 && f.pred ~src ~dst msg
    && begin
         if f.remaining > 0 then f.remaining <- f.remaining - 1;
         true
       end
  in
  match List.find_opt matches t.filters with
  | Some f as hit ->
    (* drop exhausted filters so they are never consulted again *)
    if f.remaining = 0 then begin
      t.filters_rev <- List.filter (fun g -> g != f) t.filters_rev;
      refresh_filters t
    end;
    hit
  | None -> None

let fate t ~src ~dst msg =
  (* the partition verdict comes first: a message a partition would
     drop anyway must not consume a bounded filter's [max_drops]
     budget (and [matching_filter] mutates that budget as it
     matches) *)
  if not (same_block t src dst) then Dropped "partition"
  else
    match matching_filter t ~src ~dst msg with
    | Some f -> Dropped ("filter:" ^ f.name)
    | None ->
      (* the effective config of this directed link; picking it draws
         no randomness, so unoverridden links (and runs with no
         overrides at all) see exactly the global-config stream *)
      let cfg = link_config t ~src ~dst in
      if Rng.bool t.rng cfg.omission_prob then Dropped "omission"
      else if Rng.bool t.rng cfg.late_prob then
        (* performance failure: delay strictly greater than delta *)
        let lo = Time.add cfg.delta (Time.of_us 1) in
        Deliver_after (Rng.uniform_time t.rng lo cfg.late_delay_max)
      else
        Deliver_after (Rng.uniform_time t.rng cfg.delay_min cfg.delay_max)
