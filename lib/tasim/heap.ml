(* Struct-of-arrays binary min-heap.

   Entries live in three parallel arrays — unboxed [int array]s for
   times and sequence numbers plus one value array — instead of an
   ['a entry option array]. [add]/[pop] therefore allocate nothing per
   event (no entry record, no [Some] box) and sifting compares and
   moves plain ints without pattern matches. The value array is created
   lazily from the first added element so float payloads still get a
   flat array and no dummy value is ever fabricated; popped value slots
   are not overwritten, so up to one array's worth of already-dispatched
   values may stay reachable until overwritten or [clear]ed — fine for
   the small event records the simulator queues. *)

type 'a t = {
  mutable times : int array;
  mutable seqs : int array;
  mutable values : 'a array; (* [||] until the first add *)
  mutable len : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () =
  {
    times = Array.make initial_capacity 0;
    seqs = Array.make initial_capacity 0;
    values = [||];
    len = 0;
    next_seq = 0;
  }

(* entry i < entry j in heap order: earlier time, FIFO on ties *)
let lt t i j =
  t.times.(i) < t.times.(j)
  || (t.times.(i) = t.times.(j) && t.seqs.(i) < t.seqs.(j))

let grow t =
  let cap = 2 * Array.length t.times in
  let times = Array.make cap 0 in
  Array.blit t.times 0 times 0 t.len;
  t.times <- times;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.len;
  t.seqs <- seqs;
  (* grow is only reached with len > 0, so values is non-empty *)
  let values = Array.make cap t.values.(0) in
  Array.blit t.values 0 values 0 t.len;
  t.values <- values

(* Hole-based sifting: carry the moving entry in locals and shift
   blocking entries into the hole, writing the carried entry once at
   its final slot. Versus swap-based sifting this does one 3-array
   store per level instead of three, and the carried entry's fields
   stay in registers for the comparisons. The resulting array layout is
   identical to the swap-based version's, so pop order and seq
   assignment are unchanged. *)

let sift_up t i ~time ~seq value =
  let i = ref i in
  let stop = ref false in
  while (not !stop) && !i > 0 do
    let parent = (!i - 1) / 2 in
    if
      time < t.times.(parent)
      || (time = t.times.(parent) && seq < t.seqs.(parent))
    then begin
      t.times.(!i) <- t.times.(parent);
      t.seqs.(!i) <- t.seqs.(parent);
      t.values.(!i) <- t.values.(parent);
      i := parent
    end
    else stop := true
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- value

let sift_down t i ~time ~seq value =
  let i = ref i in
  let stop = ref false in
  while not !stop do
    let l = (2 * !i) + 1 in
    if l >= t.len then stop := true
    else begin
      let r = l + 1 in
      let c = if r < t.len && lt t r l then r else l in
      if
        t.times.(c) < time || (t.times.(c) = time && t.seqs.(c) < seq)
      then begin
        t.times.(!i) <- t.times.(c);
        t.seqs.(!i) <- t.seqs.(c);
        t.values.(!i) <- t.values.(c);
        i := c
      end
      else stop := true
    end
  done;
  t.times.(!i) <- time;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- value

let add t ~time value =
  if t.len = Array.length t.times then grow t;
  if Array.length t.values = 0 then
    t.values <- Array.make (Array.length t.times) value;
  let i = t.len in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.len <- i + 1;
  sift_up t i ~time ~seq value

let is_empty t = t.len = 0
let size t = t.len

let min_time t =
  if t.len = 0 then invalid_arg "Heap.min_time: empty heap";
  t.times.(0)

let pop_min t =
  if t.len = 0 then invalid_arg "Heap.pop_min: empty heap";
  let v = t.values.(0) in
  let last = t.len - 1 in
  t.len <- last;
  if last > 0 then
    sift_down t 0 ~time:t.times.(last) ~seq:t.seqs.(last) t.values.(last);
  v

let pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    Some (time, pop_min t)
  end

let peek_time t = if t.len = 0 then None else Some t.times.(0)

let clear t =
  t.len <- 0;
  (* release the payloads; capacity of the int arrays is kept *)
  t.values <- [||]

let drain t =
  let rec loop acc =
    match pop t with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []
