(** The discrete-event simulation engine.

    Protocols are written as {e pure automata}: state machines whose
    transition functions consume an input (a received message or an
    expired timer) together with the local clock reading and produce a
    new state plus a list of effects (sends, timer arming,
    observations). The engine owns real time, hardware clocks, the
    datagram service, process crash/recovery and scheduling delays;
    protocol code never sees real time — only its local clock.

    One engine instance simulates one team. All processes of a team
    exchange messages of one type ['m]; observations of type ['obs]
    are the protocol's externally visible outputs (installed views,
    delivered updates, ...) and are what experiments measure. *)

(** {1 Clocks as seen by protocol code} *)

type clock_source = {
  reading : real:Time.t -> Time.t;
      (** local clock reading at a real time instant *)
  real_of : clock:Time.t -> Time.t;
      (** inverse map, used by the engine to arm timers that the
          protocol expresses in local clock time *)
}

val clock_source_of_hardware : Hardware_clock.t -> clock_source

val ideal_clock : clock_source
(** Clock equal to real time. Used by tests and by oracle setups. *)

(** {1 Automata} *)

type ('m, 'obs) effect =
  | Send of Proc_id.t * 'm  (** unicast datagram *)
  | Broadcast of 'm  (** datagram to every other team member *)
  | Set_timer of { key : int; at_clock : Time.t }
      (** (re-)arm the timer [key] to fire when the local clock reads
          [at_clock]; re-arming replaces any pending occurrence *)
  | Cancel_timer of int
  | Observe of 'obs  (** externally visible protocol output *)
  | Log of string  (** free-form debug note, kept in the trace *)

type ('s, 'm, 'obs) automaton = {
  name : string;
  init :
    self:Proc_id.t ->
    n:int ->
    clock:Time.t ->
    incarnation:int ->
    's * ('m, 'obs) effect list;
      (** called at process start and after each recovery; [incarnation]
          is 0 at first start and increments at each recovery *)
  on_receive :
    's -> clock:Time.t -> src:Proc_id.t -> 'm -> 's * ('m, 'obs) effect list;
  on_timer : 's -> clock:Time.t -> key:int -> 's * ('m, 'obs) effect list;
}

(** {1 Engine configuration} *)

type config = {
  net : Net.config;
  sigma : Time.t;  (** maximum timely scheduling delay *)
  sched_min : Time.t;  (** minimum scheduling delay *)
  slow_prob : float;
      (** probability a dispatch suffers a performance failure (reaction
          slower than sigma) *)
  slow_delay_max : Time.t;  (** maximum delay of a slow dispatch *)
  seed : int;
}

val default_config : config
(** delta = 10ms, sigma = 1ms, deterministic seed, no stochastic
    failures. *)

val validate_config : config -> (unit, string) result
(** Reject degenerate timing configs that [Rng.uniform_time] would
    otherwise silently clamp: [sigma <= 0], [sched_min < 0],
    [sched_min > sigma], [slow_prob] outside [0,1], and [slow_prob > 0]
    with [slow_delay_max <= sigma] (a "performance failure" that would
    be no slower than a timely dispatch). The [net] field is validated
    separately by {!Net.create}. *)

(** {1 Engine} *)

type ('s, 'm, 'obs) t

val create : config -> n:int -> ('s, 'm, 'obs) t
(** Raises [Invalid_argument] when {!validate_config} rejects the
    config (or {!Net.create} rejects its [net] field). *)

val n : ('s, 'm, 'obs) t -> int
val now : ('s, 'm, 'obs) t -> Time.t
val net : ('s, 'm, 'obs) t -> 'm Net.t
val stats : ('s, 'm, 'obs) t -> Stats.t
val rng : ('s, 'm, 'obs) t -> Rng.t
(** A stream split off the engine seed, for workload generators. *)

val add_process :
  ('s, 'm, 'obs) t ->
  Proc_id.t ->
  ('s, 'm, 'obs) automaton ->
  clock:clock_source ->
  ?start:Time.t ->
  unit ->
  unit
(** Register a process; it starts (its [init] runs) at real time
    [start] (default 0). Every id in [0..n-1] must be registered before
    [run]. *)

val classify : ('s, 'm, 'obs) t -> ('m -> string) -> unit
(** Install a message classifier; the engine then counts
    ["sent:<kind>"], ["delivered:<kind>"] and ["dropped:<kind>"] in
    [stats]. *)

val on_observe :
  ('s, 'm, 'obs) t -> (Time.t -> Proc_id.t -> 'obs -> unit) -> unit
(** Install an observation probe (in addition to any previous one).
    The probe receives the real time of the observation. *)

val set_trace : ('s, 'm, 'obs) t -> Trace.t -> unit
(** Record message sends/drops/deliveries and crash/recovery events
    into the given trace (kinds come from the installed classifier). *)

val state_of : ('s, 'm, 'obs) t -> Proc_id.t -> 's option
(** Current automaton state of a process, [None] while crashed. For
    assertions in tests and end-of-run inspection. *)

val is_up : ('s, 'm, 'obs) t -> Proc_id.t -> bool
val clock_of : ('s, 'm, 'obs) t -> Proc_id.t -> Time.t
(** Current local clock reading of a process. *)

(** {1 Fault injection and scripting} *)

val at : ('s, 'm, 'obs) t -> Time.t -> (unit -> unit) -> unit
(** Schedule an arbitrary scripted action at a real time. *)

val crash_at : ('s, 'm, 'obs) t -> Time.t -> Proc_id.t -> unit
(** Crash-stop the process: its state is lost, pending timers are
    cancelled, and messages addressed to it are dropped until
    recovery.

    Crashing a process {e before} its registration-time start has fired
    cancels that start: the process stays down (its [init] never runs)
    until {!recover_at}, which re-runs [init] with an incremented
    incarnation.

    Crashing an already-down (crashed) process is a well-defined no-op:
    the state is already lost and the incarnation does not advance, so
    double-crash fault plans are idempotent.

    Delivery semantics across a crash/recovery pair:
    - a datagram in flight when the receiver crashes is {e not}
      discarded by the crash; if the receiver has recovered by the
      datagram's delivery time, the {e new} incarnation receives it
      (the network does not know about process restarts — fail-aware
      protocol layers must reject stale messages themselves);
    - timers armed before the crash never fire after recovery: every
      pending [Ev_timer] carries the arming incarnation (and per-key
      generation) and is suppressed when either is stale. *)

val recover_at : ('s, 'm, 'obs) t -> Time.t -> Proc_id.t -> unit
(** Restart a crashed process with a fresh state (its [init] runs with
    an incremented incarnation).

    Symmetric validation to {!crash_at}: recovering an already-up
    process is a well-defined no-op (double-recover fault plans are
    idempotent), while recovering a process whose registration-time
    start has not yet fired (never started, never crashed) raises
    [Invalid_argument] at the scheduled time — silently early-starting
    it would hide a mis-scheduled fault plan. *)

val set_slow :
  ('s, 'm, 'obs) t -> slow_prob:float -> slow_delay_max:Time.t -> unit
(** Override the scheduling performance-failure regime from this point
    of the run on — the fault-injection hook behind slow-scheduling
    windows. Subject to the same validation as {!create}; raises
    [Invalid_argument] on a degenerate pair. *)

val reset_slow : ('s, 'm, 'obs) t -> unit
(** Restore [slow_prob]/[slow_delay_max] to the creation config. *)

val set_slow_proc :
  ('s, 'm, 'obs) t -> proc:Proc_id.t -> prob:float -> delay_max:Time.t -> unit
(** Single out one process for extra scheduling delay: every event
    dispatched at [proc] (delivery or timer) additionally suffers a
    performance failure with probability [prob], delaying it by up to
    [delay_max] on top of the normal draw — one sick machine while the
    rest of the team stays timely. At most one process is slow at a
    time; a second call replaces the first. When no process is singled
    out the scheduler's random draw sequence is exactly as without the
    hook, so seeded runs reproduce. Same validation as {!set_slow}. *)

val clear_slow_proc : ('s, 'm, 'obs) t -> unit
(** Remove the per-process slow regime (no-op when none is set). *)

val partition_at : ('s, 'm, 'obs) t -> Time.t -> Proc_set.t list -> unit
val heal_at : ('s, 'm, 'obs) t -> Time.t -> unit

val inject : ('s, 'm, 'obs) t -> Proc_id.t -> 'm -> unit
(** Deliver a message from a process to itself immediately, bypassing
    the network — the local client call path (e.g. an application
    submitting an update for broadcast). Silently dropped when the
    process is down. *)

val inject_at : ('s, 'm, 'obs) t -> Time.t -> Proc_id.t -> 'm -> unit

(** {1 Running} *)

val run : ('s, 'm, 'obs) t -> until:Time.t -> unit
(** Process events in time order until the event queue is empty or
    real time reaches [until]. Can be called repeatedly with increasing
    horizons. *)

val stop : ('s, 'm, 'obs) t -> unit
(** Request that [run] return after the current event. Callable from
    probes and scripted actions. *)
