(** Measurement utilities: named counters and sample series.

    Experiments count messages by kind and collect latency samples;
    this module provides both, plus summary statistics (mean, median,
    percentiles) used by the table printers in the harness. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
val incr_by : t -> string -> int -> unit
val count : t -> string -> int
(** 0 when the counter was never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {2 Interned counters}

    Hot paths that bump the same counter millions of times per run
    should not pay a string build plus hashtable lookup per event. An
    interned {!counter} is a handle to the underlying cell: obtain it
    once (a normal lookup, creating the counter at 0 if absent) and
    [bump] it for free afterwards. The handle aliases the cell the
    string API updates, so [incr]/[count]/[counters]/[merge] and
    interned bumps always observe the same totals. Handles stay valid
    for the lifetime of [t], including across [merge]s into or out of
    it. The string API remains for cold paths and reporting.

    All operations are domain-safe: interned bumps are atomic (so
    concurrent bumps from any number of domains lose no counts) and
    table accesses are serialized internally. Single-domain totals are
    bit-identical to the unsynchronized implementation. *)

type counter

val counter : t -> string -> counter
(** Intern [name], creating it with count 0 when absent (it then
    already appears in {!counters}). *)

val bump : counter -> unit
val bump_by : counter -> int -> unit
val counter_value : counter -> int

(** {1 Sample series} *)

val record : t -> string -> float -> unit
val record_time : t -> string -> Time.t -> unit
(** Records the span in microseconds. *)

val samples : t -> string -> float array
(** Samples in insertion order; empty when none recorded. *)

val series_names : t -> string list

(** {1 Summaries} *)

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  stddev : float;
}

val summarize : float array -> summary option
(** [None] on an empty array. *)

val summary_of : t -> string -> summary option
val pp_summary : summary Fmt.t

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s counters and samples into [dst]. *)
