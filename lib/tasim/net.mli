(** The asynchronous datagram service.

    Implements the communication model of the paper (Section 2): an
    unreliable datagram service with omission/performance failure
    semantics and a one-way time-out delay delta. A message is either
    dropped (omission failure), delivered within delta (timely), or
    delivered later than delta (performance failure — the message is
    "late" and fail-aware receivers must reject it).

    Beyond the stochastic model, the service supports targeted fault
    injection used by the experiments: network partitions (messages
    crossing partition boundaries are dropped) and message filters
    (predicates that drop selected messages for a bounded time or a
    bounded number of matches — e.g. "drop the next decision message
    from p2 to p4"). *)

type config = {
  delta : Time.t;  (** one-way time-out delay of the datagram service *)
  delay_min : Time.t;  (** minimum transmission delay *)
  delay_max : Time.t;  (** maximum timely delay; must be <= [delta] *)
  omission_prob : float;  (** probability a message is lost *)
  late_prob : float;
      (** probability a non-lost message suffers a performance failure *)
  late_delay_max : Time.t;
      (** maximum delay of a late message; must be > [delta] *)
}

val default_config : config
(** delta = 10ms, delays 1..8ms, no stochastic loss or lateness. *)

val validate_config : config -> (unit, string) result

type 'm t
(** A datagram service carrying messages of type ['m]. *)

val create : config -> Rng.t -> 'm t
val config : 'm t -> config

type fate =
  | Deliver_after of Time.t  (** transmission delay to apply *)
  | Dropped of string  (** reason, for traces and statistics *)

val fate : 'm t -> src:Proc_id.t -> dst:Proc_id.t -> 'm -> fate
(** Decide the fate of one datagram, consuming randomness. The
    partition check comes first (a partitioned datagram never consumes
    a bounded filter's [max_drops] budget), then filters, then
    stochastic omission, then delay sampling. *)

(** {1 Fault injection} *)

val set_partition : 'm t -> Proc_set.t list -> unit
(** Install a partition: messages between processes not sharing a block
    are dropped. Processes absent from every block are isolated. *)

val heal : 'm t -> unit
(** Remove any partition. *)

val partition_of : 'm t -> Proc_id.t -> Proc_set.t option
(** The block containing the process, when a partition is installed. *)

val add_filter :
  'm t ->
  ?max_drops:int ->
  name:string ->
  (src:Proc_id.t -> dst:Proc_id.t -> 'm -> bool) ->
  unit
(** Drop every message matching the predicate. With [max_drops] the
    filter disarms after that many matches and is removed; a
    [max_drops] of 0 is never installed at all. Filters are checked in
    installation order. *)

val remove_filter : 'm t -> name:string -> unit
(** Remove every filter installed under [name]; unknown names are
    ignored. The uninstall hook behind bounded fault windows. *)

val clear_filters : 'm t -> unit

val active_filters : 'm t -> string list
(** Names of the installed, non-exhausted filters in consultation
    order. *)
