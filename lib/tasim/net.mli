(** The asynchronous datagram service.

    Implements the communication model of the paper (Section 2): an
    unreliable datagram service with omission/performance failure
    semantics and a one-way time-out delay delta. A message is either
    dropped (omission failure), delivered within delta (timely), or
    delivered later than delta (performance failure — the message is
    "late" and fail-aware receivers must reject it).

    Beyond the stochastic model, the service supports targeted fault
    injection used by the experiments: network partitions (messages
    crossing partition boundaries are dropped), message filters
    (predicates that drop selected messages for a bounded time or a
    bounded number of matches — e.g. "drop the next decision message
    from p2 to p4"), and a timeliness graph (Delporte-Gallet et al.):
    per-directed-link delay/omission/lateness overrides layered over
    the global config and mutable at runtime, so scenarios can degrade
    individual links mid-run while the rest of the network stays
    timely. *)

type config = {
  delta : Time.t;  (** one-way time-out delay of the datagram service *)
  delay_min : Time.t;  (** minimum transmission delay *)
  delay_max : Time.t;  (** maximum timely delay; must be <= [delta] *)
  omission_prob : float;  (** probability a message is lost *)
  late_prob : float;
      (** probability a non-lost message suffers a performance failure *)
  late_delay_max : Time.t;
      (** maximum delay of a late message; must be > [delta] *)
}

val default_config : config
(** delta = 10ms, delays 1..8ms, no stochastic loss or lateness. *)

val validate_config : config -> (unit, string) result

type 'm t
(** A datagram service carrying messages of type ['m]. *)

val create : config -> Rng.t -> 'm t
val config : 'm t -> config

type fate =
  | Deliver_after of Time.t  (** transmission delay to apply *)
  | Dropped of string  (** reason, for traces and statistics *)

val fate : 'm t -> src:Proc_id.t -> dst:Proc_id.t -> 'm -> fate
(** Decide the fate of one datagram, consuming randomness. The
    partition check comes first (a partitioned datagram never consumes
    a bounded filter's [max_drops] budget), then filters, then — under
    the directed link's effective config, see {!set_link} — stochastic
    omission, then delay sampling. Selecting the link config draws no
    randomness: runs with no overrides are bit-identical to the
    single-global-config service. *)

(** {1 Per-link timeliness overrides} *)

val set_link :
  'm t ->
  src:Proc_id.t ->
  dst:Proc_id.t ->
  ?delay_min:Time.t ->
  ?delay_max:Time.t ->
  ?omission_prob:float ->
  ?late_prob:float ->
  ?late_delay_max:Time.t ->
  unit ->
  unit
(** Override the stochastic model of the directed link [src -> dst].
    Omitted fields keep the global config's value; [delta] is always
    the global one (it is the protocol's time-out bound, not a link
    property). The combined config must satisfy {!validate_config} or
    [Invalid_argument] is raised — an override can degrade a link, not
    break the model's invariants. Re-setting a link replaces its
    previous override wholesale. *)

val clear_link : 'm t -> src:Proc_id.t -> dst:Proc_id.t -> unit
(** Remove the override of one directed link; unknown links are
    ignored. *)

val clear_links : 'm t -> unit
(** Remove every link override (back to the uniform global config). *)

val link_config : 'm t -> src:Proc_id.t -> dst:Proc_id.t -> config
(** The effective config of the directed link: its override when
    installed, the global config otherwise. *)

val links_overridden : 'm t -> int
(** Number of directed links currently carrying an override. *)

(** {1 Fault injection} *)

val set_partition : 'm t -> Proc_set.t list -> unit
(** Install a partition: messages between processes not sharing a block
    are dropped. Processes absent from every block form implicit
    singleton blocks — they reach themselves and nobody else. Raises
    [Invalid_argument] when two blocks overlap (the membership would be
    ambiguous). *)

val heal : 'm t -> unit
(** Remove any partition. *)

val partition_of : 'm t -> Proc_id.t -> Proc_set.t option
(** The block containing the process, when a partition is installed. *)

val add_filter :
  'm t ->
  ?max_drops:int ->
  name:string ->
  (src:Proc_id.t -> dst:Proc_id.t -> 'm -> bool) ->
  unit
(** Drop every message matching the predicate. With [max_drops] the
    filter disarms after that many matches and is removed; a
    [max_drops] of 0 is never installed at all. Filters are checked in
    installation order. *)

val remove_filter : 'm t -> name:string -> unit
(** Remove every filter installed under [name]; unknown names are
    ignored. The uninstall hook behind bounded fault windows. *)

val clear_filters : 'm t -> unit

val active_filters : 'm t -> string list
(** Names of the installed, non-exhausted filters in consultation
    order. *)
