(** Imperative binary min-heap keyed by [(Time.t, sequence number)].

    The event queue of the simulation engine sits on this heap. Ties on
    time are broken by insertion order (the sequence number), which
    makes simultaneous events fire FIFO and keeps runs deterministic.

    Entries are stored unboxed in parallel arrays (times, sequence
    numbers, values), so [add] and the [min_time]/[pop_min] pair
    perform no per-event allocation — the engine's run loop depends on
    this. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:Time.t -> 'a -> unit
(** Insert an element with the given priority time. Allocation-free
    except when the heap grows. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the minimum element, FIFO among equal times. *)

val min_time : 'a t -> Time.t
(** Priority of the minimum element without removing it; allocation-free
    variant of [peek_time]. @raise Invalid_argument when empty. *)

val pop_min : 'a t -> 'a
(** Remove the minimum element and return its value only (read
    [min_time] first if the time is needed); allocation-free variant of
    [pop]. @raise Invalid_argument when empty. *)

val peek_time : 'a t -> Time.t option
(** Priority of the minimum element without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val drain : 'a t -> (Time.t * 'a) list
(** Pop everything, in order. *)
