let src = Logs.Src.create "tasim.engine" ~doc:"timed asynchronous simulator"

module Log = (val Logs.src_log src : Logs.LOG)

type clock_source = {
  reading : real:Time.t -> Time.t;
  real_of : clock:Time.t -> Time.t;
}

let clock_source_of_hardware hc =
  {
    reading = (fun ~real -> Hardware_clock.reading hc ~real);
    real_of = (fun ~clock -> Hardware_clock.real_of_reading hc ~clock);
  }

let ideal_clock =
  { reading = (fun ~real -> real); real_of = (fun ~clock -> clock) }

type ('m, 'obs) effect =
  | Send of Proc_id.t * 'm
  | Broadcast of 'm
  | Set_timer of { key : int; at_clock : Time.t }
  | Cancel_timer of int
  | Observe of 'obs
  | Log of string

type ('s, 'm, 'obs) automaton = {
  name : string;
  init :
    self:Proc_id.t ->
    n:int ->
    clock:Time.t ->
    incarnation:int ->
    's * ('m, 'obs) effect list;
  on_receive :
    's -> clock:Time.t -> src:Proc_id.t -> 'm -> 's * ('m, 'obs) effect list;
  on_timer : 's -> clock:Time.t -> key:int -> 's * ('m, 'obs) effect list;
}

type config = {
  net : Net.config;
  sigma : Time.t;
  sched_min : Time.t;
  slow_prob : float;
  slow_delay_max : Time.t;
  seed : int;
}

let default_config =
  {
    net = Net.default_config;
    sigma = Time.of_ms 1;
    sched_min = Time.of_us 10;
    slow_prob = 0.0;
    slow_delay_max = Time.of_ms 20;
    seed = 42;
  }

(* Degenerate timing configs must be rejected, not silently clamped:
   [Rng.uniform_time lo hi] returns [lo] whenever [hi <= lo], so e.g.
   [slow_prob > 0] with [slow_delay_max <= sigma] would yield
   "performance failures" no slower than a timely dispatch. *)
let validate_slow ~sigma ~slow_prob ~slow_delay_max =
  if slow_prob < 0.0 || slow_prob > 1.0 then Error "slow_prob out of [0,1]"
  else if slow_prob > 0.0 && slow_delay_max <= sigma then
    Error "slow_delay_max must be > sigma when slow_prob > 0"
  else Ok ()

let validate_config c =
  if c.sigma <= Time.zero then Error "sigma must be > 0"
  else if c.sched_min < Time.zero then Error "sched_min must be >= 0"
  else if c.sched_min > c.sigma then Error "sched_min must be <= sigma"
  else
    validate_slow ~sigma:c.sigma ~slow_prob:c.slow_prob
      ~slow_delay_max:c.slow_delay_max

type ('s, 'm, 'obs) process = {
  id : Proc_id.t;
  automaton : ('s, 'm, 'obs) automaton;
  clock : clock_source;
  mutable state : 's option; (* None while crashed or not yet started *)
  mutable incarnation : int;
  mutable up : bool;
  mutable started : bool;
      (* the registration-time [Ev_start] has been consumed (init ran)
         or cancelled by a pre-start crash *)
  timer_gens : (int, int) Hashtbl.t; (* timer key -> current generation *)
}

type ('s, 'm, 'obs) event =
  | Ev_deliver of { dst : Proc_id.t; src : Proc_id.t; msg : 'm }
  | Ev_timer of { proc : Proc_id.t; key : int; gen : int; inc : int }
  | Ev_start of { proc : Proc_id.t; inc : int }
      (* [inc] guards against a start made stale by a pre-start crash
         (which bumps the incarnation) or an early [recover] *)
  | Ev_action of (unit -> unit)

(* Interned stats handles for one message kind. Built once per kind
   (the only place the "sent:"/"delivered:"/... strings are ever
   concatenated), then every transmit/deliver of that kind is a plain
   int bump. *)
type kind_counters = {
  kind_name : string;
  sent : Stats.counter;
  delivered : Stats.counter;
  dropped : Stats.counter;
  lost_receiver_down : Stats.counter;
}

type ('s, 'm, 'obs) t = {
  cfg : config;
  n : int;
  queue : ('s, 'm, 'obs) event Heap.t;
  net : 'm Net.t;
  procs : ('s, 'm, 'obs) process option array;
  stats : Stats.t;
  sched_rng : Rng.t;
  workload_rng : Rng.t;
  kind_cache : (string, kind_counters) Hashtbl.t;
  reason_cache : (string, Stats.counter) Hashtbl.t;
  observations_c : Stats.counter;
  (* runtime-adjustable copies of cfg.slow_prob / cfg.slow_delay_max,
     so fault injectors can open slow-scheduling windows mid-run *)
  mutable slow_prob : float;
  mutable slow_delay_max : Time.t;
  (* at most one process singled out for extra scheduling delay: the
     fault-injection hook behind a chaos "slow member" (one sick
     machine, everyone else timely) *)
  mutable slow_proc : (Proc_id.t * float * Time.t) option;
  mutable now : Time.t;
  mutable classifier : ('m -> string) option;
  mutable probes : (Time.t -> Proc_id.t -> 'obs -> unit) list;
  mutable probes_rev : (Time.t -> Proc_id.t -> 'obs -> unit) list;
  mutable trace : Trace.t option;
  mutable stopping : bool;
}

let create cfg ~n =
  (match validate_config cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.create: " ^ msg));
  let root = Rng.create cfg.seed in
  let net_rng = Rng.split root in
  let sched_rng = Rng.split root in
  let workload_rng = Rng.split root in
  let stats = Stats.create () in
  {
    cfg;
    n;
    queue = Heap.create ();
    net = Net.create cfg.net net_rng;
    procs = Array.make n None;
    stats;
    sched_rng;
    workload_rng;
    kind_cache = Hashtbl.create 16;
    reason_cache = Hashtbl.create 16;
    observations_c = Stats.counter stats "observations";
    slow_prob = cfg.slow_prob;
    slow_delay_max = cfg.slow_delay_max;
    slow_proc = None;
    now = Time.zero;
    classifier = None;
    probes = [];
    probes_rev = [];
    trace = None;
    stopping = false;
  }

let n t = t.n
let now t = t.now
let net t = t.net
let stats t = t.stats
let rng t = t.workload_rng
let classify t f = t.classifier <- Some f

let set_slow t ~slow_prob ~slow_delay_max =
  (match validate_slow ~sigma:t.cfg.sigma ~slow_prob ~slow_delay_max with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.set_slow: " ^ msg));
  t.slow_prob <- slow_prob;
  t.slow_delay_max <- slow_delay_max

let reset_slow t =
  t.slow_prob <- t.cfg.slow_prob;
  t.slow_delay_max <- t.cfg.slow_delay_max

let set_slow_proc t ~proc ~prob ~delay_max =
  (match validate_slow ~sigma:t.cfg.sigma ~slow_prob:prob
           ~slow_delay_max:delay_max
   with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Engine.set_slow_proc: " ^ msg));
  t.slow_proc <- Some (proc, prob, delay_max)

let clear_slow_proc t = t.slow_proc <- None

(* Registration is rare, dispatch is hot: prepend onto the reversed
   list and materialize the registration-order list once per
   registration, so [Observe] dispatch just iterates. *)
let on_observe t probe =
  t.probes_rev <- probe :: t.probes_rev;
  t.probes <- List.rev t.probes_rev
let set_trace t trace = t.trace <- Some trace

let trace_record t event =
  match t.trace with
  | Some trace -> Trace.record trace t.now event
  | None -> ()

let proc t id =
  match t.procs.(Proc_id.to_int id) with
  | Some p -> p
  | None -> invalid_arg (Fmt.str "Engine: process %a not registered" Proc_id.pp id)

let add_process t id automaton ~clock ?(start = Time.zero) () =
  if t.procs.(Proc_id.to_int id) <> None then
    invalid_arg (Fmt.str "Engine: process %a registered twice" Proc_id.pp id);
  t.procs.(Proc_id.to_int id) <-
    Some
      {
        id;
        automaton;
        clock;
        state = None;
        incarnation = 0;
        up = false;
        started = false;
        timer_gens = Hashtbl.create 8;
      };
  Heap.add t.queue ~time:start (Ev_start { proc = id; inc = 0 })

let state_of t id = (proc t id).state
let is_up t id = (proc t id).up
let clock_of t id = (proc t id).clock.reading ~real:t.now

let kind_of t msg =
  match t.classifier with Some f -> f msg | None -> "msg"

(* Hashtbl.find (not find_opt) so the hit path allocates no [Some]. *)
let kind_counters t kind =
  try Hashtbl.find t.kind_cache kind
  with Not_found ->
    let kc =
      {
        kind_name = kind;
        sent = Stats.counter t.stats ("sent:" ^ kind);
        delivered = Stats.counter t.stats ("delivered:" ^ kind);
        dropped = Stats.counter t.stats ("dropped:" ^ kind);
        lost_receiver_down = Stats.counter t.stats ("lost_receiver_down:" ^ kind);
      }
    in
    Hashtbl.add t.kind_cache kind kc;
    kc

let reason_counter t reason =
  try Hashtbl.find t.reason_cache reason
  with Not_found ->
    let c = Stats.counter t.stats ("drop_reason:" ^ reason) in
    Hashtbl.add t.reason_cache reason c;
    c

(* Scheduling (process reaction) delay: timely within sigma, or a
   performance failure with probability slow_prob. *)
let sched_delay t =
  if Rng.bool t.sched_rng t.slow_prob then
    Rng.uniform_time t.sched_rng
      (Time.add t.cfg.sigma (Time.of_us 1))
      t.slow_delay_max
  else Rng.uniform_time t.sched_rng t.cfg.sched_min t.cfg.sigma

(* Dispatch delay for an event handled AT [pid]. With no slow process
   configured this draws exactly what [sched_delay] draws, so opening
   and never hitting the hook cannot perturb a seeded run; the targeted
   process pays its extra draws only while singled out. *)
let sched_delay_for t pid =
  let base = sched_delay t in
  match t.slow_proc with
  | Some (p, prob, delay_max) when Proc_id.equal p pid ->
    if Rng.bool t.sched_rng prob then
      Time.add base
        (Rng.uniform_time t.sched_rng
           (Time.add t.cfg.sigma (Time.of_us 1))
           delay_max)
    else base
  | Some _ | None -> base

let transmit t ~src ~dst msg =
  let kc = kind_counters t (kind_of t msg) in
  Stats.bump kc.sent;
  trace_record t (Trace.Sent { src; dst; kind = kc.kind_name });
  match Net.fate t.net ~src ~dst msg with
  | Net.Dropped reason ->
    Stats.bump kc.dropped;
    Stats.bump (reason_counter t reason);
    trace_record t (Trace.Dropped { src; dst; kind = kc.kind_name; reason })
  | Net.Deliver_after delay ->
    Heap.add t.queue
      ~time:(Time.add t.now (Time.add delay (sched_delay_for t dst)))
      (Ev_deliver { dst; src; msg })

let set_timer t p ~key ~at_clock =
  let gen = 1 + (try Hashtbl.find p.timer_gens key with Not_found -> 0) in
  Hashtbl.replace p.timer_gens key gen;
  let fire_real = p.clock.real_of ~clock:at_clock in
  let fire_real = Time.max fire_real t.now in
  Heap.add t.queue
    ~time:(Time.add fire_real (sched_delay_for t p.id))
    (Ev_timer { proc = p.id; key; gen; inc = p.incarnation })

let cancel_timer p ~key =
  let gen = 1 + (try Hashtbl.find p.timer_gens key with Not_found -> 0) in
  Hashtbl.replace p.timer_gens key gen

let rec apply_effects t p effects =
  match effects with
  | [] -> ()
  | eff :: rest ->
    (match eff with
    | Send (dst, msg) -> transmit t ~src:p.id ~dst msg
    | Broadcast msg ->
      for dst = 0 to t.n - 1 do
        if dst <> Proc_id.to_int p.id then
          transmit t ~src:p.id ~dst:(Proc_id.of_int dst) msg
      done
    | Set_timer { key; at_clock } -> set_timer t p ~key ~at_clock
    | Cancel_timer key -> cancel_timer p ~key
    | Observe obs ->
      Stats.bump t.observations_c;
      List.iter (fun probe -> probe t.now p.id obs) t.probes
    | Log msg ->
      Log.debug (fun m ->
          m "[%a %a] %s" Time.pp t.now Proc_id.pp p.id msg));
    apply_effects t p rest

let start_process t p =
  p.up <- true;
  p.started <- true;
  Hashtbl.reset p.timer_gens;
  let clock = p.clock.reading ~real:t.now in
  let state, effects =
    p.automaton.init ~self:p.id ~n:t.n ~clock ~incarnation:p.incarnation
  in
  p.state <- Some state;
  apply_effects t p effects

let dispatch t event =
  match event with
  | Ev_start { proc = id; inc } ->
    let p = proc t id in
    (* stale when a pre-start crash bumped the incarnation, or an early
       [recover] already ran init *)
    if (not p.up) && p.incarnation = inc then start_process t p
  | Ev_action f -> f ()
  | Ev_deliver { dst; src; msg } ->
    let p = proc t dst in
    let kc = kind_counters t (kind_of t msg) in
    if not p.up then Stats.bump kc.lost_receiver_down
    else begin
      Stats.bump kc.delivered;
      trace_record t (Trace.Delivered { src; dst; kind = kc.kind_name });
      match p.state with
      | None -> ()
      | Some state ->
        let clock = p.clock.reading ~real:t.now in
        let state', effects = p.automaton.on_receive state ~clock ~src msg in
        p.state <- Some state';
        apply_effects t p effects
    end
  | Ev_timer { proc = id; key; gen; inc } ->
    let p = proc t id in
    let current_gen =
      try Hashtbl.find p.timer_gens key with Not_found -> 0
    in
    if p.up && p.incarnation = inc && current_gen = gen then begin
      match p.state with
      | None -> ()
      | Some state ->
        let clock = p.clock.reading ~real:t.now in
        let state', effects = p.automaton.on_timer state ~clock ~key in
        p.state <- Some state';
        apply_effects t p effects
    end

let at t time f = Heap.add t.queue ~time (Ev_action f)

let crash t id =
  let p = proc t id in
  (* crashing before the registration-time [Ev_start] fired must not
     no-op: bump the incarnation so the pending start is stale, leaving
     the process down until [recover] re-runs init *)
  if p.up || not p.started then begin
    Log.debug (fun m -> m "[%a] crash %a" Time.pp t.now Proc_id.pp id);
    Stats.incr t.stats "crashes";
    trace_record t (Trace.Crashed id);
    p.up <- false;
    p.started <- true;
    p.state <- None;
    p.incarnation <- p.incarnation + 1;
    Hashtbl.reset p.timer_gens
  end

let recover t id =
  let p = proc t id in
  (* recovery is only meaningful for a process that has a start (or a
     start-cancelling crash) behind it: silently early-starting a
     never-started process would hide a mis-scheduled fault plan *)
  if not p.started then
    invalid_arg
      (Fmt.str "Engine.recover: process %a was never started" Proc_id.pp id);
  if not p.up then begin
    Log.debug (fun m -> m "[%a] recover %a" Time.pp t.now Proc_id.pp id);
    Stats.incr t.stats "recoveries";
    trace_record t (Trace.Recovered id);
    start_process t p
  end

let inject t id msg =
  Heap.add t.queue ~time:t.now (Ev_deliver { dst = id; src = id; msg })

let inject_at t time id msg =
  Heap.add t.queue ~time (Ev_deliver { dst = id; src = id; msg })

let crash_at t time id = at t time (fun () -> crash t id)
let recover_at t time id = at t time (fun () -> recover t id)
let partition_at t time blocks =
  at t time (fun () -> Net.set_partition t.net blocks)
let heal_at t time = at t time (fun () -> Net.heal t.net)
let stop t = t.stopping <- true

let run t ~until =
  t.stopping <- false;
  let rec loop () =
    if t.stopping || Heap.is_empty t.queue then ()
    else begin
      let time = Heap.min_time t.queue in
      if time > until then t.now <- until
      else begin
        let event = Heap.pop_min t.queue in
        t.now <- Time.max t.now time;
        dispatch t event;
        loop ()
      end
    end
  in
  loop ();
  if t.now < until && Heap.is_empty t.queue then t.now <- until
