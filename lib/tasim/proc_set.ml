(* Immutable bitset keyed by process id.

   Process ids are small dense ints (team members 0..n-1), so a set is
   an array of bit words: [mem] is one load and a mask, union/inter/diff
   are a handful of word ops, and a 64-member group costs two words.
   The representation is canonical — no trailing zero words — so
   structural equality of the words is set equality, exactly the
   property the protocols lean on ("a majority sent join messages with
   the same join-list").

   The word array is never mutated after construction, so values are
   immutable despite the array underneath. *)

let bpw = Sys.int_size (* bits per word: 63 on 64-bit *)

type t = int array

let empty : t = [||]

(* canonical form: drop trailing zero words *)
let trim (w : int array) =
  let len = ref (Array.length w) in
  while !len > 0 && w.(!len - 1) = 0 do
    decr len
  done;
  if !len = Array.length w then w else Array.sub w 0 !len

let singleton p =
  let i = Proc_id.to_int p in
  let w = Array.make ((i / bpw) + 1) 0 in
  w.(i / bpw) <- 1 lsl (i mod bpw);
  w

let mem p t =
  let i = Proc_id.to_int p in
  let wi = i / bpw in
  wi < Array.length t && t.(wi) land (1 lsl (i mod bpw)) <> 0

let add p t =
  let i = Proc_id.to_int p in
  let wi = i / bpw in
  let len = Stdlib.max (Array.length t) (wi + 1) in
  if wi < Array.length t && t.(wi) land (1 lsl (i mod bpw)) <> 0 then t
  else begin
    let w = Array.make len 0 in
    Array.blit t 0 w 0 (Array.length t);
    w.(wi) <- w.(wi) lor (1 lsl (i mod bpw));
    w
  end

let remove p t =
  let i = Proc_id.to_int p in
  let wi = i / bpw in
  if wi >= Array.length t || t.(wi) land (1 lsl (i mod bpw)) = 0 then t
  else begin
    let w = Array.copy t in
    w.(wi) <- w.(wi) land lnot (1 lsl (i mod bpw));
    trim w
  end

let is_empty t = Array.length t = 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t

let union a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let long, short = if la >= lb then (a, b) else (b, a) in
    let w = Array.copy long in
    for i = 0 to Array.length short - 1 do
      w.(i) <- w.(i) lor short.(i)
    done;
    (* the top word of [long] is nonzero (canonical), so no trim *)
    w
  end

let inter a b =
  let len = Stdlib.min (Array.length a) (Array.length b) in
  if len = 0 then empty
  else begin
    let w = Array.make len 0 in
    for i = 0 to len - 1 do
      w.(i) <- a.(i) land b.(i)
    done;
    trim w
  end

let diff a b =
  let la = Array.length a in
  if la = 0 || Array.length b = 0 then a
  else begin
    let w = Array.copy a in
    let overlap = Stdlib.min la (Array.length b) in
    for i = 0 to overlap - 1 do
      w.(i) <- w.(i) land lnot b.(i)
    done;
    trim w
  end

let subset a b =
  let la = Array.length a in
  la <= Array.length b
  &&
  let rec go i = i >= la || (a.(i) land lnot b.(i) = 0 && go (i + 1)) in
  go 0

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i < 0 || (a.(i) = b.(i) && go (i - 1)) in
  go (Array.length a - 1)

(* any total order serves the interface; order as (unsigned) integers:
   longer canonical array means a higher top bit *)
let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i =
      if i < 0 then 0
      else begin
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i - 1)
      end
    in
    go (la - 1)
  end

(* Iteration peels the lowest set bit with [x land (-x)] and recurses —
   no refs and no intermediate closures, so iterating with a statically
   allocated callback costs zero heap words (the codec's send path
   counts on this). Ascending id order in all cases. *)

let rec iter_bits f base x =
  if x <> 0 then begin
    let b = x land -x in
    f (Proc_id.of_int (base + popcount (b - 1)));
    iter_bits f base (x land (x - 1))
  end

let rec iter_from f (t : t) wi =
  if wi < Array.length t then begin
    iter_bits f (wi * bpw) t.(wi);
    iter_from f t (wi + 1)
  end

let iter f t = iter_from f t 0

let rec fold_bits f base x acc =
  if x = 0 then acc
  else begin
    let b = x land -x in
    let acc = f (Proc_id.of_int (base + popcount (b - 1))) acc in
    fold_bits f base (x land (x - 1)) acc
  end

let rec fold_from f (t : t) wi acc =
  if wi >= Array.length t then acc
  else fold_from f t (wi + 1) (fold_bits f (wi * bpw) t.(wi) acc)

let fold f t acc = fold_from f t 0 acc

let to_list t = List.rev (fold (fun p acc -> p :: acc) t [])
let of_list ps = List.fold_left (fun t p -> add p t) empty ps

exception Early_exit

let for_all f t =
  match iter (fun p -> if not (f p) then raise_notrace Early_exit) t with
  | () -> true
  | exception Early_exit -> false

let exists f t =
  match iter (fun p -> if f p then raise_notrace Early_exit) t with
  | () -> false
  | exception Early_exit -> true

let filter f t = fold (fun p acc -> if f p then add p acc else acc) t empty
let full ~n = of_list (Proc_id.all ~n)
let is_majority t ~n = cardinal t > n / 2

let successor_in t p ~n =
  let rec probe candidate remaining =
    if remaining = 0 then None
    else if mem candidate t then Some candidate
    else probe (Proc_id.successor candidate ~n) (remaining - 1)
  in
  probe (Proc_id.successor p ~n) (n - 1)

let predecessor_in t p ~n =
  let rec probe candidate remaining =
    if remaining = 0 then None
    else if mem candidate t then Some candidate
    else probe (Proc_id.predecessor candidate ~n) (remaining - 1)
  in
  probe (Proc_id.predecessor p ~n) (n - 1)

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:sp Proc_id.pp) (to_list t)

(* Mutable accumulator for building a set element by element without
   the per-[add] array copy of the immutable API. A decoder reading a
   64-member set from the wire does 64 adds; through [add] that is 64
   array copies, through a builder it is 64 in-place bit-ors and one
   final canonical copy in [build]. *)
module Builder = struct
  type set = t

  type t = { mutable words : int array; mutable hi : int }
  (* [hi]: number of live words (beyond it the scratch may be dirty
     from an earlier, larger set — [clear] only resets up to [hi]) *)

  let create () = { words = Array.make 4 0; hi = 0 }

  let clear b =
    Array.fill b.words 0 b.hi 0;
    b.hi <- 0

  let add b p =
    let i = Proc_id.to_int p in
    let wi = i / bpw in
    if wi >= Array.length b.words then begin
      let cap = ref (Array.length b.words * 2) in
      while wi >= !cap do
        cap := !cap * 2
      done;
      let words = Array.make !cap 0 in
      Array.blit b.words 0 words 0 b.hi;
      b.words <- words
    end;
    b.words.(wi) <- b.words.(wi) lor (1 lsl (i mod bpw));
    if wi >= b.hi then b.hi <- wi + 1

  let build b : set =
    let len = ref b.hi in
    while !len > 0 && b.words.(!len - 1) = 0 do
      decr len
    done;
    if !len = 0 then empty else Array.sub b.words 0 !len
end
