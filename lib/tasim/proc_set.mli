(** Immutable sets of process identifiers.

    Alive-lists, join-lists, reconfiguration-lists and group-lists in
    the protocols are all values of this type. Equality of such lists
    is a core protocol operation (e.g. "a majority sent join messages
    with the same join-list"), so the representation is canonical. *)

type t

val empty : t
val singleton : Proc_id.t -> t
val of_list : Proc_id.t list -> t
val to_list : t -> Proc_id.t list
(** In increasing id order. *)

val add : Proc_id.t -> t -> t
val remove : Proc_id.t -> t -> t
val mem : Proc_id.t -> t -> bool
val cardinal : t -> int
val is_empty : t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val for_all : (Proc_id.t -> bool) -> t -> bool
val exists : (Proc_id.t -> bool) -> t -> bool
val filter : (Proc_id.t -> bool) -> t -> t
val iter : (Proc_id.t -> unit) -> t -> unit
val fold : (Proc_id.t -> 'a -> 'a) -> t -> 'a -> 'a

val full : n:int -> t
(** All [n] team members. *)

val is_majority : t -> n:int -> bool
(** [cardinal > n / 2]. *)

val successor_in : t -> Proc_id.t -> n:int -> Proc_id.t option
(** First member of the set strictly after the given process in the
    cyclic order; [None] when the set has no member other than it. *)

val predecessor_in : t -> Proc_id.t -> n:int -> Proc_id.t option
(** First member of the set strictly before the given process in the
    cyclic order; [None] when the set has no member other than it. *)

val pp : t Fmt.t
(** Prints as ["{p0 p2 p3}"]. *)

(** Mutable set accumulator: in-place [add]s, one allocation at
    [build]. For decoders that read many sets per message — the
    immutable {!add} copies the backing array per element. A builder is
    reused across calls via {!Builder.clear}. *)
module Builder : sig
  type set = t
  type t

  val create : unit -> t
  val clear : t -> unit
  val add : t -> Proc_id.t -> unit

  val build : t -> set
  (** Canonical immutable set of everything added since the last
      [clear]. The builder stays usable (and dirty) afterwards. *)
end
