type series = { mutable values : float list; mutable len : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; series = Hashtbl.create 32 }

let incr_by t name k =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + k
  | None -> Hashtbl.add t.counters name (ref k)

let incr t name = incr_by t name 1

(* An interned counter is the very cell the string API updates, so the
   two views can never disagree and [merge] needs no special case. *)
type counter = int ref

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let bump c = Stdlib.incr c
let bump_by c k = c := !c + k
let counter_value c = !c

let count t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let record t name v =
  match Hashtbl.find_opt t.series name with
  | Some s ->
    s.values <- v :: s.values;
    s.len <- s.len + 1
  | None -> Hashtbl.add t.series name { values = [ v ]; len = 1 }

let record_time t name span = record t name (float_of_int (Time.to_us span))

let samples t name =
  match Hashtbl.find_opt t.series name with
  | None -> [||]
  | Some s ->
    let arr = Array.make s.len 0.0 in
    let rec fill i = function
      | [] -> ()
      | v :: rest ->
        arr.(i) <- v;
        fill (i - 1) rest
    in
    fill (s.len - 1) s.values;
    arr

let series_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.series []
  |> List.sort String.compare

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  stddev : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float rank in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize values =
  let n = Array.length values in
  if n = 0 then None
  else begin
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    let mean = sum /. float_of_int n in
    let sq_dev =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 sorted
    in
    let stddev = if n > 1 then sqrt (sq_dev /. float_of_int (n - 1)) else 0.0 in
    Some
      {
        n;
        mean;
        min = sorted.(0);
        max = sorted.(n - 1);
        p50 = percentile sorted 0.50;
        p95 = percentile sorted 0.95;
        p99 = percentile sorted 0.99;
        stddev;
      }
  end

let summary_of t name = summarize (samples t name)

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f max=%.1f" s.n s.mean s.p50
    s.p95 s.max

let merge dst src =
  Hashtbl.iter (fun name r -> incr_by dst name !r) src.counters;
  Hashtbl.iter
    (fun name s -> List.iter (record dst name) (List.rev s.values))
    src.series
