type series = { mutable values : float list; mutable len : int }

(* Counter cells are atomics so interned bumps are domain-safe without
   a lock on the hot path; the tables themselves (interning, series,
   reporting, merge) are cold paths guarded by [lock]. Single-domain
   arithmetic is unchanged: an uncontended [Atomic.incr] is the same
   +1 the old [int ref] did, so counter values are bit-identical. *)
type t = {
  counters : (string, int Atomic.t) Hashtbl.t;
  series : (string, series) Hashtbl.t;
  lock : Mutex.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    series = Hashtbl.create 32;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

(* An interned counter is the very cell the string API updates, so the
   two views can never disagree and [merge] needs no special case. *)
type counter = int Atomic.t

let find_or_add t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = Atomic.make 0 in
    Hashtbl.add t.counters name c;
    c

let incr_by t name k =
  let c = locked t (fun () -> find_or_add t name) in
  ignore (Atomic.fetch_and_add c k)

let incr t name = incr_by t name 1
let counter t name = locked t (fun () -> find_or_add t name)
let bump c = Atomic.incr c
let bump_by c k = ignore (Atomic.fetch_and_add c k)
let counter_value c = Atomic.get c

let count t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> Atomic.get c
      | None -> 0)

let counters t =
  locked t (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c) :: acc) t.counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let record t name v =
  locked t (fun () ->
      match Hashtbl.find_opt t.series name with
      | Some s ->
        s.values <- v :: s.values;
        s.len <- s.len + 1
      | None -> Hashtbl.add t.series name { values = [ v ]; len = 1 })

let record_time t name span = record t name (float_of_int (Time.to_us span))

let samples t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.series name with
      | None -> [||]
      | Some s ->
        let arr = Array.make s.len 0.0 in
        let rec fill i = function
          | [] -> ()
          | v :: rest ->
            arr.(i) <- v;
            fill (i - 1) rest
        in
        fill (s.len - 1) s.values;
        arr)

let series_names t =
  locked t (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) t.series [])
  |> List.sort String.compare

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  stddev : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float rank in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let summarize values =
  let n = Array.length values in
  if n = 0 then None
  else begin
    let sorted = Array.copy values in
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    let mean = sum /. float_of_int n in
    let sq_dev =
      Array.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0 sorted
    in
    let stddev = if n > 1 then sqrt (sq_dev /. float_of_int (n - 1)) else 0.0 in
    Some
      {
        n;
        mean;
        min = sorted.(0);
        max = sorted.(n - 1);
        p50 = percentile sorted 0.50;
        p95 = percentile sorted 0.95;
        p99 = percentile sorted 0.99;
        stddev;
      }
  end

let summary_of t name = summarize (samples t name)

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.1f p50=%.1f p95=%.1f max=%.1f" s.n s.mean s.p50
    s.p95 s.max

let merge dst src =
  (* Snapshot [src] under its own lock, then fold into [dst] under
     [dst]'s — never holding both, so concurrent merges in opposite
     directions cannot deadlock. *)
  let cs =
    locked src (fun () ->
        Hashtbl.fold
          (fun name c acc -> (name, Atomic.get c) :: acc)
          src.counters [])
  in
  let ss =
    locked src (fun () ->
        Hashtbl.fold
          (fun name s acc -> (name, List.rev s.values) :: acc)
          src.series [])
  in
  List.iter (fun (name, v) -> incr_by dst name v) cs;
  List.iter (fun (name, vs) -> List.iter (record dst name) vs) ss
