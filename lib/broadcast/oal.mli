(** The ordering and acknowledgement list (oal).

    A decision message includes an oal "consisting of update/membership
    change descriptors, along with information about which group members
    have received those update/membership changes" (paper, Section 2).
    The oal associates unique numbers — {e ordinals} — to updates and
    membership changes, establishes their stability, and lets receivers
    detect message losses (a descriptor for a proposal they never
    received).

    An oal value is one process's current view of the list. The decider
    extends it and broadcasts it inside its decision message; receivers
    {!merge} the incoming (authoritative) list into their local copy and
    add their own acknowledgements. Entries whose update is stable
    (acknowledged by all group members) and locally delivered are purged
    from the head; [low] records the purge frontier, so a receiver of a
    purged list learns that every ordinal below [low] is stable. *)

open Tasim

type update_info = {
  proposal_id : Proposal.id;
  semantics : Semantics.t;
  send_ts : Time.t;
  hdo : int;
}

type body =
  | Update of update_info
  | Membership of { group : Proc_set.t; group_id : Group_id.t }

type entry = {
  ordinal : int;
  body : body;
  acks : Proc_set.t;  (** members known to have received the item *)
  undeliverable : bool;
      (** decider-set mark: no group member may deliver this update *)
  known_stable : bool;
      (** acknowledged by all members of the group (directly observed,
          or learned from a purged incoming list) *)
}

type t

val empty : t
val low : t -> int
(** Smallest ordinal not yet purged; every ordinal below is stable. *)

val next_ordinal : t -> int
val entries : t -> entry list
(** In increasing ordinal order. *)

val iter_entries : t -> (entry -> unit) -> unit
(** Apply a function to every entry in increasing ordinal order,
    without materializing the list — the serialization and recovery
    hot paths' allocation-free traversal. *)

val iter_entries_ord : t -> (int -> entry -> unit) -> unit
(** Like {!iter_entries} with the ordinal passed first. The callback
    reaches the underlying map unwrapped, so passing a statically
    allocated function costs zero heap words per call — the live
    codec's per-datagram encode depends on this. *)

val cardinal : t -> int
val is_empty : t -> bool

(** {1 Extension (decider side)} *)

val append_update : t -> update_info -> acks:Proc_set.t -> t * int
(** Assign the next ordinal to an update descriptor. Returns the
    ordinal. *)

val append_membership : t -> group:Proc_set.t -> group_id:Group_id.t -> t * int

(** {1 Lookup} *)

val entry_at : t -> int -> entry option
val find_update : t -> Proposal.id -> entry option
val mem_update : t -> Proposal.id -> bool
val highest_ordinal : t -> int
(** -1 when the list never held an entry. *)

val latest_membership : t -> (int * Proc_set.t * Group_id.t) option
(** The newest membership: [(ordinal, group, group_id)]. Kept even
    after the descriptor entry itself is purged, so receivers of a
    truncated list still learn the current group. *)

(** {1 Acknowledgements and stability} *)

val ack_update : t -> Proposal.id -> Proc_id.t -> t
(** No-op when the descriptor is absent. *)

val ack_all_received : t -> received:(Proposal.id -> bool) -> by:Proc_id.t -> t
(** Add [by]'s acknowledgement to every update descriptor whose
    proposal [by] has received — how a process turns the incoming oal
    into its own view v_p (paper, Section 4.3). *)

val refresh_stability : t -> group:Proc_set.t -> t
(** Set [known_stable] on every entry acknowledged by all of [group].
    Membership entries are acked like updates (receipt of the decision
    message that introduced them). *)

val purge_stable : t -> delivered:(int -> bool) -> t
(** Advance [low] over the longest head run of entries that are
    [known_stable] and either [delivered] locally, undeliverable, or
    membership descriptors (whose information survives in
    {!latest_membership}). Purged entries are dropped. *)

(** {1 Undeliverable marking (group changes, Section 4.3)} *)

val mark_undeliverable : t -> Proposal.id -> t
val undeliverable_ids : t -> Proposal.id list

(** {1 Wire view}

    Concrete, loss-free image of an oal for serialization (the live
    runtime's binary codec, {!module:Runtime} when built). The wire
    form exposes exactly the abstract state: entries in increasing
    ordinal order, the purge frontier, the ordinal counter, and the
    latest-membership memo that survives purging. *)

type wire = {
  w_low : int;
  w_next_ordinal : int;
  w_entries : entry list;  (** increasing ordinal order *)
  w_latest : (int * Proc_set.t * Group_id.t) option;
}

val to_wire : t -> wire

val of_wire : wire -> (t, string) result
(** Rebuild an oal; rejects unordered ordinals or entries outside
    [\[w_low, w_next_ordinal)]. [of_wire (to_wire t)] reconstructs [t]
    exactly. *)

(** {1 Merging views} *)

val merge : local:t -> incoming:t -> t
(** Adopt the incoming list as authoritative for ordinals >=
    [low incoming]: incoming entries replace or extend local ones (acks
    are unioned; undeliverable marks are or-ed). Local entries below
    [low incoming] become [known_stable]. The local purge frontier
    [low local] is kept. *)

val is_prefix : t -> of_:t -> bool
(** [is_prefix a ~of_:b]: every entry of [a] appears in [b] with the
    same ordinal and body, ignoring acknowledgement and stability
    differences and entries already purged from either list. *)

val pp : t Fmt.t

val of_wire_indexed :
  low:int ->
  next_ordinal:int ->
  latest:(int * Proc_set.t * Group_id.t) option ->
  count:int ->
  entry:(int -> entry) ->
  (t, string) result
(** {!of_wire} for a decoder holding the parsed entries in an indexed
    scratch buffer: [entry i] is the i-th entry in read order. Same
    validation and result as building a {!wire} record, without the
    intermediate list. *)
