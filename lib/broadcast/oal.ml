open Tasim

type update_info = {
  proposal_id : Proposal.id;
  semantics : Semantics.t;
  send_ts : Time.t;
  hdo : int;
}

type body =
  | Update of update_info
  | Membership of { group : Proc_set.t; group_id : Group_id.t }

type entry = {
  ordinal : int;
  body : body;
  acks : Proc_set.t;
  undeliverable : bool;
  known_stable : bool;
}

module Imap = Map.Make (Int)

type t = {
  entries : entry Imap.t;
  low : int;
  next_ordinal : int;
  current : (int * Proc_set.t * Group_id.t) option;
      (* newest membership: (ordinal, group, group id) — kept as a
         field so the descriptor entry itself can be purged once
         stable *)
}

let empty = { entries = Imap.empty; low = 0; next_ordinal = 0; current = None }
let low t = t.low
let next_ordinal t = t.next_ordinal
let entries t = List.map snd (Imap.bindings t.entries)
let cardinal t = Imap.cardinal t.entries
let is_empty t = Imap.is_empty t.entries

let append t body ~acks =
  let ordinal = t.next_ordinal in
  let entry =
    { ordinal; body; acks; undeliverable = false; known_stable = false }
  in
  ( { t with entries = Imap.add ordinal entry t.entries;
      next_ordinal = ordinal + 1 },
    ordinal )

let append_update t info ~acks = append t (Update info) ~acks

let append_membership t ~group ~group_id =
  (* the creating decider has, by definition, the membership change *)
  let t, ordinal = append t (Membership { group; group_id }) ~acks:Proc_set.empty in
  ({ t with current = Some (ordinal, group, group_id) }, ordinal)

let entry_at t ordinal = Imap.find_opt ordinal t.entries

let find_update t id =
  Imap.fold
    (fun _ e acc ->
      match acc with
      | Some _ -> acc
      | None -> (
        match e.body with
        | Update info when Proposal.id_equal info.proposal_id id -> Some e
        | Update _ | Membership _ -> None))
    t.entries None

let mem_update t id = Option.is_some (find_update t id)

let highest_ordinal t =
  match Imap.max_binding_opt t.entries with
  | Some (ordinal, _) -> ordinal
  | None -> t.next_ordinal - 1

let latest_membership t = t.current

let update_entry t ordinal f =
  match Imap.find_opt ordinal t.entries with
  | None -> t
  | Some e -> { t with entries = Imap.add ordinal (f e) t.entries }

let ack_update t id p =
  match find_update t id with
  | None -> t
  | Some e ->
    update_entry t e.ordinal (fun e -> { e with acks = Proc_set.add p e.acks })

let ack_all_received t ~received ~by =
  let ack _ e =
    match e.body with
    | Update info when received info.proposal_id ->
      { e with acks = Proc_set.add by e.acks }
    | Membership _ ->
      (* a membership descriptor present in a process's list was, by
         construction, received by that process *)
      { e with acks = Proc_set.add by e.acks }
    | Update _ -> e
  in
  { t with entries = Imap.mapi ack t.entries }

let refresh_stability t ~group =
  let refresh _ e =
    if e.known_stable then e
    else { e with known_stable = Proc_set.subset group e.acks }
  in
  { t with entries = Imap.mapi refresh t.entries }

let purge_stable t ~delivered =
  (* the current group survives purging in the [current] field, so a
     stable membership descriptor is as purgeable as a delivered
     update *)
  let purgeable e =
    e.known_stable
    &&
    match e.body with
    | Update _ -> delivered e.ordinal || e.undeliverable
    | Membership _ -> true
  in
  let rec advance t =
    match Imap.find_opt t.low t.entries with
    | Some e when purgeable e ->
      advance { t with entries = Imap.remove t.low t.entries; low = t.low + 1 }
    | Some _ | None -> t
  in
  advance t

type wire = {
  w_low : int;
  w_next_ordinal : int;
  w_entries : entry list;
  w_latest : (int * Proc_set.t * Group_id.t) option;
}

let to_wire t =
  {
    w_low = t.low;
    w_next_ordinal = t.next_ordinal;
    w_entries = entries t;
    w_latest = t.current;
  }

let of_wire w =
  if w.w_low < 0 then Error "oal wire: negative low"
  else if w.w_next_ordinal < w.w_low then Error "oal wire: next < low"
  else
    let rec build prev entries = function
      | [] -> Ok entries
      | e :: rest ->
        if e.ordinal <= prev then Error "oal wire: ordinals not increasing"
        else if e.ordinal < w.w_low then Error "oal wire: entry below low"
        else if e.ordinal >= w.w_next_ordinal then
          Error "oal wire: entry beyond next ordinal"
        else build e.ordinal (Imap.add e.ordinal e entries) rest
    in
    match build (w.w_low - 1) Imap.empty w.w_entries with
    | Error _ as e -> e
    | Ok entries ->
      Ok
        {
          entries;
          low = w.w_low;
          next_ordinal = w.w_next_ordinal;
          current = w.w_latest;
        }

let mark_undeliverable t id =
  match find_update t id with
  | None -> t
  | Some e ->
    update_entry t e.ordinal (fun e -> { e with undeliverable = true })

let undeliverable_ids t =
  Imap.fold
    (fun _ e acc ->
      match e.body with
      | Update info when e.undeliverable -> info.proposal_id :: acc
      | Update _ | Membership _ -> acc)
    t.entries []
  |> List.rev

let merge ~local ~incoming =
  (* local entries below the incoming purge frontier are known stable *)
  let entries =
    Imap.mapi
      (fun ordinal e ->
        if ordinal < incoming.low then { e with known_stable = true } else e)
      local.entries
  in
  (* incoming entries are authoritative from incoming.low upwards *)
  let entries =
    Imap.fold
      (fun ordinal inc acc ->
        if ordinal < local.low then acc
        else
          match Imap.find_opt ordinal acc with
          | None -> Imap.add ordinal inc acc
          | Some mine ->
            Imap.add ordinal
              {
                inc with
                acks = Proc_set.union mine.acks inc.acks;
                undeliverable = mine.undeliverable || inc.undeliverable;
                known_stable = mine.known_stable || inc.known_stable;
              }
              acc)
      incoming.entries entries
  in
  let current =
    match (local.current, incoming.current) with
    | Some (_, _, g1), Some (_, _, g2) when Group_id.compare g2 g1 >= 0 ->
      incoming.current
    | Some _, Some _ -> local.current
    | Some c, None | None, Some c -> Some c
    | None, None -> None
  in
  {
    entries;
    low = local.low;
    next_ordinal = max local.next_ordinal incoming.next_ordinal;
    current;
  }

let body_equal a b =
  match (a, b) with
  | Update x, Update y ->
    Proposal.id_equal x.proposal_id y.proposal_id
    && Semantics.equal x.semantics y.semantics
    && Time.equal x.send_ts y.send_ts && x.hdo = y.hdo
  | Membership m1, Membership m2 ->
    Proc_set.equal m1.group m2.group && Group_id.equal m1.group_id m2.group_id
  | Update _, Membership _ | Membership _, Update _ -> false

let is_prefix a ~of_ =
  Imap.for_all
    (fun ordinal ea ->
      if ordinal < of_.low then true
      else
        match Imap.find_opt ordinal of_.entries with
        | None -> ordinal >= of_.next_ordinal && false
        | Some eb -> body_equal ea.body eb.body)
    a.entries

let pp_entry ppf e =
  let mark =
    if e.undeliverable then "!" else if e.known_stable then "*" else ""
  in
  match e.body with
  | Update info ->
    Fmt.pf ppf "%d%s:%a(acks=%a)" e.ordinal mark Proposal.pp_id
      info.proposal_id Proc_set.pp e.acks
  | Membership { group; group_id } ->
    Fmt.pf ppf "%d%s:grp#%a%a" e.ordinal mark Group_id.pp group_id Proc_set.pp
      group

let pp ppf t =
  Fmt.pf ppf "oal[low=%d next=%d %a]" t.low t.next_ordinal
    Fmt.(list ~sep:sp pp_entry)
    (entries t)
