open Tasim

type update_info = {
  proposal_id : Proposal.id;
  semantics : Semantics.t;
  send_ts : Time.t;
  hdo : int;
}

type body =
  | Update of update_info
  | Membership of { group : Proc_set.t; group_id : Group_id.t }

type entry = {
  ordinal : int;
  body : body;
  acks : Proc_set.t;
  undeliverable : bool;
  known_stable : bool;
}

module Imap = Map.Make (Int)

module Idmap = Map.Make (struct
  type t = Proposal.id

  let compare (a : Proposal.id) (b : Proposal.id) =
    match Proc_id.compare a.Proposal.origin b.Proposal.origin with
    | 0 -> Int.compare a.Proposal.seq b.Proposal.seq
    | c -> c
end)

type t = {
  entries : entry Imap.t;
  low : int;
  next_ordinal : int;
  current : (int * Proc_set.t * Group_id.t) option;
      (* newest membership: (ordinal, group, group id) — kept as a
         field so the descriptor entry itself can be purged once
         stable *)
  index : int Idmap.t;
      (* proposal id -> ordinal of its update descriptor, so
         [find_update]/[mem_update]/[ack_update] — the retransmission
         and acknowledgement hot paths — do one map lookup instead of
         a full scan of the list. Lookups verify the target entry still
         carries the id (merges of adversarial wire data could shadow a
         mapping) and fall back to the scan, so the index is purely an
         accelerator and never changes observable behavior. *)
}

let empty =
  {
    entries = Imap.empty;
    low = 0;
    next_ordinal = 0;
    current = None;
    index = Idmap.empty;
  }

let low t = t.low
let next_ordinal t = t.next_ordinal
let entries t = List.map snd (Imap.bindings t.entries)
let iter_entries t f = Imap.iter (fun _ e -> f e) t.entries

(* the callback goes to the map unwrapped, so a statically allocated
   callback makes the traversal allocation-free (codec send path) *)
let iter_entries_ord t f = Imap.iter f t.entries
let cardinal t = Imap.cardinal t.entries
let is_empty t = Imap.is_empty t.entries

let index_body index ordinal = function
  | Update info -> Idmap.add info.proposal_id ordinal index
  | Membership _ -> index

let append t body ~acks =
  let ordinal = t.next_ordinal in
  let entry =
    { ordinal; body; acks; undeliverable = false; known_stable = false }
  in
  ( { t with
      entries = Imap.add ordinal entry t.entries;
      next_ordinal = ordinal + 1;
      index = index_body t.index ordinal body;
    },
    ordinal )

let append_update t info ~acks = append t (Update info) ~acks

let append_membership t ~group ~group_id =
  (* the creating decider has, by definition, the membership change *)
  let t, ordinal = append t (Membership { group; group_id }) ~acks:Proc_set.empty in
  ({ t with current = Some (ordinal, group, group_id) }, ordinal)

let entry_at t ordinal = Imap.find_opt ordinal t.entries

let scan_update t id =
  Imap.fold
    (fun _ e acc ->
      match acc with
      | Some _ -> acc
      | None -> (
        match e.body with
        | Update info when Proposal.id_equal info.proposal_id id -> Some e
        | Update _ | Membership _ -> None))
    t.entries None

let find_update t id =
  match Idmap.find_opt id t.index with
  | Some ordinal -> (
    match Imap.find_opt ordinal t.entries with
    | Some ({ body = Update info; _ } as e)
      when Proposal.id_equal info.proposal_id id ->
      Some e
    | Some _ | None ->
      (* stale or shadowed mapping (only reachable through merges of
         ill-formed wire lists) — answer exactly as the scan would *)
      scan_update t id)
  | None ->
    (* the index maps every update id present in the entries (append,
       merge and of_wire all maintain it; purge removes exactly the
       purged entry's mapping), so a miss means the id is absent *)
    None

let mem_update t id = Option.is_some (find_update t id)

let highest_ordinal t =
  match Imap.max_binding_opt t.entries with
  | Some (ordinal, _) -> ordinal
  | None -> t.next_ordinal - 1

let latest_membership t = t.current

let update_entry t ordinal f =
  match Imap.find_opt ordinal t.entries with
  | None -> t
  | Some e -> { t with entries = Imap.add ordinal (f e) t.entries }

let ack_update t id p =
  match find_update t id with
  | None -> t
  | Some e ->
    update_entry t e.ordinal (fun e -> { e with acks = Proc_set.add p e.acks })

let ack_all_received t ~received ~by =
  let ack _ e =
    match e.body with
    | Update info when received info.proposal_id ->
      { e with acks = Proc_set.add by e.acks }
    | Membership _ ->
      (* a membership descriptor present in a process's list was, by
         construction, received by that process *)
      { e with acks = Proc_set.add by e.acks }
    | Update _ -> e
  in
  { t with entries = Imap.mapi ack t.entries }

let refresh_stability t ~group =
  let refresh _ e =
    if e.known_stable then e
    else { e with known_stable = Proc_set.subset group e.acks }
  in
  { t with entries = Imap.mapi refresh t.entries }

let purge_stable t ~delivered =
  (* the current group survives purging in the [current] field, so a
     stable membership descriptor is as purgeable as a delivered
     update *)
  let purgeable e =
    e.known_stable
    &&
    match e.body with
    | Update _ -> delivered e.ordinal || e.undeliverable
    | Membership _ -> true
  in
  let unindex index (e : entry) =
    match e.body with
    | Update info -> (
      match Idmap.find_opt info.proposal_id index with
      | Some o when o = e.ordinal -> Idmap.remove info.proposal_id index
      | Some _ | None -> index)
    | Membership _ -> index
  in
  let rec advance t =
    match Imap.find_opt t.low t.entries with
    | Some e when purgeable e ->
      advance
        {
          t with
          entries = Imap.remove t.low t.entries;
          low = t.low + 1;
          index = unindex t.index e;
        }
    | Some _ | None -> t
  in
  advance t

type wire = {
  w_low : int;
  w_next_ordinal : int;
  w_entries : entry list;
  w_latest : (int * Proc_set.t * Group_id.t) option;
}

let to_wire t =
  {
    w_low = t.low;
    w_next_ordinal = t.next_ordinal;
    w_entries = entries t;
    w_latest = t.current;
  }

let of_wire w =
  if w.w_low < 0 then Error "oal wire: negative low"
  else if w.w_next_ordinal < w.w_low then Error "oal wire: next < low"
  else
    let rec build prev entries = function
      | [] -> Ok entries
      | e :: rest ->
        if e.ordinal <= prev then Error "oal wire: ordinals not increasing"
        else if e.ordinal < w.w_low then Error "oal wire: entry below low"
        else if e.ordinal >= w.w_next_ordinal then
          Error "oal wire: entry beyond next ordinal"
        else build e.ordinal (Imap.add e.ordinal e entries) rest
    in
    match build (w.w_low - 1) Imap.empty w.w_entries with
    | Error _ as e -> e
    | Ok entries ->
      let index =
        Imap.fold (fun ordinal e acc -> index_body acc ordinal e.body) entries
          Idmap.empty
      in
      Ok
        {
          entries;
          low = w.w_low;
          next_ordinal = w.w_next_ordinal;
          current = w.w_latest;
          index;
        }

let mark_undeliverable t id =
  match find_update t id with
  | None -> t
  | Some e ->
    update_entry t e.ordinal (fun e -> { e with undeliverable = true })

let undeliverable_ids t =
  Imap.fold
    (fun _ e acc ->
      match e.body with
      | Update info when e.undeliverable -> info.proposal_id :: acc
      | Update _ | Membership _ -> acc)
    t.entries []
  |> List.rev

let merge ~local ~incoming =
  (* local entries below the incoming purge frontier are known stable.
     Local entries all have ordinal >= local.low (purging drops them),
     so when the incoming frontier is not ahead of ours no local entry
     qualifies and the rebuild is skipped — the common steady-state
     case where decider and receiver purge in lockstep. *)
  let entries =
    if incoming.low <= local.low then local.entries
    else
      Imap.mapi
        (fun ordinal e ->
          if ordinal < incoming.low then { e with known_stable = true } else e)
        local.entries
  in
  (* merge-path indexing: in steady state the incoming entries repeat
     what local already holds, so check before rebuilding O(log k) of
     index spine per entry; the add still runs whenever the merged
     entry's id is new or moved, keeping the index complete *)
  let index_merged index ordinal = function
    | Update info -> (
      match Idmap.find_opt info.proposal_id index with
      | Some o when o = ordinal -> index
      | Some _ | None -> Idmap.add info.proposal_id ordinal index)
    | Membership _ -> index
  in
  (* incoming entries are authoritative from incoming.low upwards *)
  let entries, index =
    Imap.fold
      (fun ordinal inc (acc, index) ->
        if ordinal < local.low then (acc, index)
        else
          let index = index_merged index ordinal inc.body in
          match Imap.find_opt ordinal acc with
          | None -> (Imap.add ordinal inc acc, index)
          | Some mine ->
            ( Imap.add ordinal
                {
                  inc with
                  acks = Proc_set.union mine.acks inc.acks;
                  undeliverable = mine.undeliverable || inc.undeliverable;
                  known_stable = mine.known_stable || inc.known_stable;
                }
                acc,
              index ))
      incoming.entries (entries, local.index)
  in
  let current =
    match (local.current, incoming.current) with
    | Some (_, _, g1), Some (_, _, g2) when Group_id.compare g2 g1 >= 0 ->
      incoming.current
    | Some _, Some _ -> local.current
    | Some c, None | None, Some c -> Some c
    | None, None -> None
  in
  {
    entries;
    low = local.low;
    next_ordinal = max local.next_ordinal incoming.next_ordinal;
    current;
    index;
  }

let body_equal a b =
  match (a, b) with
  | Update x, Update y ->
    Proposal.id_equal x.proposal_id y.proposal_id
    && Semantics.equal x.semantics y.semantics
    && Time.equal x.send_ts y.send_ts && x.hdo = y.hdo
  | Membership m1, Membership m2 ->
    Proc_set.equal m1.group m2.group && Group_id.equal m1.group_id m2.group_id
  | Update _, Membership _ | Membership _, Update _ -> false

let is_prefix a ~of_ =
  Imap.for_all
    (fun ordinal ea ->
      if ordinal < of_.low then true
      else
        match Imap.find_opt ordinal of_.entries with
        | None -> ordinal >= of_.next_ordinal && false
        | Some eb -> body_equal ea.body eb.body)
    a.entries

let pp_entry ppf e =
  let mark =
    if e.undeliverable then "!" else if e.known_stable then "*" else ""
  in
  match e.body with
  | Update info ->
    Fmt.pf ppf "%d%s:%a(acks=%a)" e.ordinal mark Proposal.pp_id
      info.proposal_id Proc_set.pp e.acks
  | Membership { group; group_id } ->
    Fmt.pf ppf "%d%s:grp#%a%a" e.ordinal mark Group_id.pp group_id Proc_set.pp
      group

let pp ppf t =
  Fmt.pf ppf "oal[low=%d next=%d %a]" t.low t.next_ordinal
    Fmt.(list ~sep:sp pp_entry)
    (entries t)

(* [of_wire] for a decoder that parsed the entries into a reusable
   scratch array instead of a list: same validation, same result, no
   intermediate list cells. [entry i] must return the i-th wire entry
   in the order read (increasing ordinal for a well-formed frame). *)
let of_wire_indexed ~low ~next_ordinal ~latest ~count ~entry =
  if low < 0 then Error "oal wire: negative low"
  else if next_ordinal < low then Error "oal wire: next < low"
  else if count < 0 then Error "oal wire: negative entry count"
  else begin
    let rec build i prev entries =
      if i >= count then Ok entries
      else begin
        let e = entry i in
        if e.ordinal <= prev then Error "oal wire: ordinals not increasing"
        else if e.ordinal < low then Error "oal wire: entry below low"
        else if e.ordinal >= next_ordinal then
          Error "oal wire: entry beyond next ordinal"
        else build (i + 1) e.ordinal (Imap.add e.ordinal e entries)
      end
    in
    match build 0 (low - 1) Imap.empty with
    | Error _ as e -> e
    | Ok entries ->
      let index =
        Imap.fold
          (fun ordinal e acc -> index_body acc ordinal e.body)
          entries Idmap.empty
      in
      Ok { entries; low; next_ordinal; current = latest; index }
  end
