(** Standalone timewheel atomic broadcast automaton.

    The full system couples broadcast and membership through shared
    decision messages (that coupling lives in [Timewheel.Member]). This
    automaton runs the broadcast machinery alone over a {e static}
    group of all team members, under the stable-period assumption (no
    crashes; decision messages reach the next decider). It exists to
    test the broadcast substrate in isolation and to drive experiment
    E8 (per-semantics delivery cost), exactly because the paper
    evaluates semantics behaviour during failure-free periods.

    Mechanism: the decider role rotates in the cyclic order; a decider
    sends its decision message D time units after assuming the role.
    The decision carries the decider's oal view: its own
    acknowledgements merged in, descriptors appended (ordinals
    assigned) for every received-but-unordered proposal, stability
    refreshed and the stable delivered prefix purged. Receivers merge
    the oal, detect losses by descriptor-without-proposal and recover
    them with a targeted negative acknowledgement to a process the oal
    proves has the proposal. *)

open Tasim

type config = {
  d : Time.t;  (** D: max time the decider holds the role *)
  timed_delay : Time.t;  (** delivery delay of [Timed] ordering *)
  dissemination : Dissemination.policy;
      (** how decisions travel: [All_to_all] broadcasts every decision;
          [Gossip] sends it point-to-point to a rotating fanout whose
          first target is always the ring successor (the next decider),
          so the handover never depends on the rotation *)
}

val default_config : config

type 'u msg =
  | Submit of { semantics : Semantics.t; payload : 'u }
      (** client call, injected locally via [Engine.inject] *)
  | Proposal_msg of 'u Proposal.t
  | Decision of { ts : Time.t; oal : Oal.t }
  | Nack of { missing : Proposal.id list }
  | Retransmit of 'u Proposal.t

val kind_of_msg : 'u msg -> string
val pp_msg : 'u Fmt.t -> 'u msg Fmt.t

type 'u obs =
  | Delivered of { proposal : 'u Proposal.t; ordinal : int option }
  | Became_decider
  | Stable of { proposal_id : Proposal.id; ordinal : int }

val pp_obs : 'u Fmt.t -> 'u obs Fmt.t

type 'u state

val automaton : config -> ('u state, 'u msg, 'u obs) Engine.automaton

(** {1 Inspection (tests, CLI)} *)

val oal_of : 'u state -> Oal.t
val buffers_of : 'u state -> 'u Buffers.t
val is_decider : 'u state -> bool
val delivered_count : 'u state -> int
