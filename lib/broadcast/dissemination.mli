(** Pluggable steady-state dissemination.

    The paper's protocol broadcasts every decision to every member, so
    the group-wide message count per decider rotation is O(N) and each
    member processes every O(N)-sized decision frame. This module
    factors the {e routing} of steady-state dissemination out of the
    protocol automata so the broadcast instance (the paper's behavior,
    and the default) and a gossip instance (SWIM/Lifeguard-style
    piggybacking, for large N) are interchangeable:

    - {!All_to_all}: one [Engine.Broadcast] per decision — the exact
      message pattern of the paper. With this policy the automata are
      byte-identical to the pre-dissemination-layer code (E1-E10 and
      the ablation tables do not change).
    - {!Gossip}: decisions travel point-to-point to the ring successor
      (preserving decider rotation and surveillance), and to everyone
      else by riding periodic probe messages: each member probes
      [fanout] rotating targets every [probe_period], piggybacking at
      most [piggyback_budget] queued updates per probe, and forwards a
      given update in at most [max_forwards] probe rounds.

    The piggyback queue is {e epoch-aware}: accepting an update of a
    higher formation epoch invalidates every queued lower-epoch update,
    and once a higher-epoch update has been accepted a lower-epoch one
    is never accepted (nor therefore ever drained) again — a member
    that has seen the new incarnation's history never re-gossips the
    dead one's. *)

open Tasim

type policy =
  | All_to_all
  | Gossip of {
      fanout : int;  (** probe targets per round (>= 1) *)
      piggyback_budget : int;
          (** max updates piggybacked on one probe (>= 1) *)
      probe_period : Time.t;  (** interval between probe rounds (> 0) *)
      max_forwards : int;
          (** probe rounds a given update rides before it is dropped
              from the queue (>= 1) *)
    }

val default_gossip : policy
(** [Gossip] with fanout 2, piggyback budget 4, probe period 30ms (the
    default decision period D), max forwards 3. *)

val validate : policy -> (unit, string) result

val pp_policy : policy Fmt.t

(** {1 Epoch-aware piggyback queue}

    Updates are ranked by [(epoch, stamp)]: [epoch] is the formation
    epoch of the update's group incarnation, [stamp] a monotone
    within-epoch order (the decision send timestamp). A push is
    {e fresh} iff its rank is strictly above every rank ever accepted;
    a fresh push drops all queued strictly-lower-epoch items. Draining
    returns up to [budget] items in descending rank and charges one
    forward to each returned item. *)

module Queue : sig
  type 'a t

  val empty : 'a t

  val push : 'a t -> epoch:int -> stamp:int -> forwards:int -> 'a -> 'a t * bool
  (** [push q ~epoch ~stamp ~forwards x] accepts [x] iff
      [(epoch, stamp)] ranks strictly above the queue's high-water
      mark; returns the new queue and whether the push was fresh.
      [forwards] is the number of drains the item survives. A stale
      push returns [q] unchanged. *)

  val drain : 'a t -> budget:int -> 'a list * 'a t
  (** Up to [budget] queued items, highest rank first. Each returned
      item is charged one forward and removed once its forwards are
      exhausted. *)

  val length : 'a t -> int
  val is_empty : 'a t -> bool

  val seen : 'a t -> (int * int) option
  (** High-water [(epoch, stamp)] over every accepted push, if any. *)
end

val probe_targets :
  group:Proc_set.t ->
  self:Proc_id.t ->
  n:int ->
  fanout:int ->
  round:int ->
  Proc_id.t list
(** Deterministic probe-target choice for one round: the ring successor
    always (it carries the freshest decisions to the member whose
    surveillance watches us), plus up to [fanout - 1] further members
    chosen by rotating over the rest of the group with the round
    number, so over consecutive rounds every member is probed. Empty
    when [self] is the only member. *)
