open Tasim
module Id_map = Proposal.Id_map
module Int_set = Set.Make (Int)

type 'u t = {
  proposals : 'u Proposal.t Id_map.t;
      (* every received proposal still of possible use: undelivered, or
         delivered but maybe needed for retransmission until stable *)
  delivered_map : int option Id_map.t; (* delivered id -> ordinal if known *)
  delivered_ordinals : Int_set.t;
  marks : (Proposal.id * Time.t) list;
  blocked_origins : (Proc_id.t * Time.t) list;
}

let empty =
  {
    proposals = Id_map.empty;
    delivered_map = Id_map.empty;
    delivered_ordinals = Int_set.empty;
    marks = [];
    blocked_origins = [];
  }

let received t id =
  Id_map.mem id t.proposals || Id_map.mem id t.delivered_map

let store t proposal =
  let id = proposal.Proposal.id in
  if received t id then (t, false)
  else ({ t with proposals = Id_map.add id proposal t.proposals }, true)

let get t id = Id_map.find_opt id t.proposals

let stored t = List.map snd (Id_map.bindings t.proposals)
let remove t id = { t with proposals = Id_map.remove id t.proposals }
let delivered t id = Id_map.mem id t.delivered_map

let note_delivered t id ~ordinal =
  let t = { t with delivered_map = Id_map.add id ordinal t.delivered_map } in
  match ordinal with
  | Some o ->
    { t with delivered_ordinals = Int_set.add o t.delivered_ordinals }
  | None -> t

let note_ordinal t id ordinal =
  match Id_map.find_opt id t.delivered_map with
  | Some None ->
    {
      t with
      delivered_map = Id_map.add id (Some ordinal) t.delivered_map;
      delivered_ordinals = Int_set.add ordinal t.delivered_ordinals;
    }
  | Some (Some _) | None -> t

let delivered_ordinal t o = Int_set.mem o t.delivered_ordinals

let highest_delivered_ordinal t =
  match Int_set.max_elt_opt t.delivered_ordinals with
  | Some o -> o
  | None -> -1

let dpd t =
  Id_map.fold
    (fun id ordinal acc -> match ordinal with None -> id :: acc | Some _ -> acc)
    t.delivered_map []
  |> List.rev

let ordinal_of_delivered t id =
  match Id_map.find_opt id t.delivered_map with
  | Some (Some o) -> Some o
  | Some None | None -> None

let compact t ~purged =
  (* forget payloads of delivered proposals whose descriptor was purged
     from the oal (stable everywhere, so nobody can ask for them) *)
  let keep id _ =
    match Id_map.find_opt id t.delivered_map with
    | Some (Some ordinal) -> not (purged ordinal)
    | Some None | None -> true
  in
  { t with proposals = Id_map.filter keep t.proposals }

let mark_undeliverable t id ~expires =
  let marks =
    (id, expires)
    :: List.filter (fun (i, _) -> not (Proposal.id_equal i id)) t.marks
  in
  { t with marks }

let block_origin t origin ~expires =
  let blocked_origins =
    (origin, expires)
    :: List.filter
         (fun (p, _) -> not (Proc_id.equal p origin))
         t.blocked_origins
  in
  { t with blocked_origins }

let is_marked t id ~now =
  List.exists
    (fun (i, expires) ->
      Proposal.id_equal i id && Time.compare now expires <= 0)
    t.marks
  || List.exists
       (fun (p, expires) ->
         Proc_id.equal p id.Proposal.origin && Time.compare now expires <= 0)
       t.blocked_origins

let expire_marks t ~now =
  {
    t with
    marks = List.filter (fun (_, e) -> Time.compare now e <= 0) t.marks;
    blocked_origins =
      List.filter (fun (_, e) -> Time.compare now e <= 0) t.blocked_origins;
  }

(* Direct walking accessors for the serializer: iterate the live maps
   (ascending id order, same as the {!wire} lists) without
   materializing them. The fold signatures thread the caller's
   accumulator so a statically allocated callback suffices — the
   state-transfer encode path counts on this being allocation-free. *)
let proposal_count t = Id_map.cardinal t.proposals
let fold_proposals f t acc = Id_map.fold f t.proposals acc
let delivered_count t = Id_map.cardinal t.delivered_map
let fold_delivered f t acc = Id_map.fold f t.delivered_map acc
let marks_of t = t.marks
let blocked_of t = t.blocked_origins

type 'u wire = {
  w_proposals : 'u Proposal.t list;
  w_delivered : (Proposal.id * int option) list;
  w_marks : (Proposal.id * Time.t) list;
  w_blocked : (Proc_id.t * Time.t) list;
}

let to_wire t =
  {
    w_proposals = stored t;
    w_delivered = Id_map.bindings t.delivered_map;
    w_marks = t.marks;
    w_blocked = t.blocked_origins;
  }

let of_wire w =
  let proposals =
    List.fold_left
      (fun m (p : 'u Proposal.t) -> Id_map.add p.Proposal.id p m)
      Id_map.empty w.w_proposals
  in
  let delivered_map =
    List.fold_left
      (fun m (id, ordinal) -> Id_map.add id ordinal m)
      Id_map.empty w.w_delivered
  in
  let delivered_ordinals =
    List.fold_left
      (fun s (_, ordinal) ->
        match ordinal with Some o -> Int_set.add o s | None -> s)
      Int_set.empty w.w_delivered
  in
  {
    proposals;
    delivered_map;
    delivered_ordinals;
    marks = w.w_marks;
    blocked_origins = w.w_blocked;
  }

let purge_marked t ~now =
  {
    t with
    proposals =
      Id_map.filter
        (fun id _ -> (not (is_marked t id ~now)) || delivered t id)
        t.proposals;
  }
