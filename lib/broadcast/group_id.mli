(** Epoch-qualified group identifiers.

    The paper numbers groups with a single counter and assumes "a
    majority of members of the last group survive" across any crash
    pattern, so a counter restarted from zero can never collide with a
    surviving view. The chaos sweep's mass-crash counterexample
    (chaos-11, DESIGN.md section 8) breaks that assumption: an amnesiac
    recovered majority re-forms group #1 while first-incarnation
    survivors still hold a different group #1.

    A group id is therefore a pair [(epoch, seq)], ordered
    lexicographically. [seq] is the paper's counter: initial formation
    starts it at 0 and every reconfiguration increments it. [epoch]
    counts initial formations: a cold team forms at epoch 0; a process
    that recovers with persisted membership state (Storage) only ever
    takes part in a formation at an epoch {e strictly above} its
    persisted one, so a re-formed group's ids compare later than every
    id the previous incarnation could have issued.

    Epoch 0 ids print as the bare [seq] — identical to the historical
    integer ids, keeping single-epoch traces and tables unchanged. *)

type t = { epoch : int; seq : int }
(** Exposed so the stdlib's polymorphic compare (used by containers
    keyed on group ids) agrees with {!compare}: [epoch] is declared
    first, making the polymorphic order lexicographic too. *)

val none : t
(** Sentinel for "not in a group": [(0, -1)], earlier than every
    formed id. *)

val is_known : t -> bool
(** [true] for every id except {!none} (and other negative [seq]). *)

val v : epoch:int -> seq:int -> t
val form : epoch:int -> t
(** First id of an initial formation at [epoch]: [(epoch, 0)]. *)

val succ : t -> t
(** Next group id within the same epoch (reconfiguration, join). *)

val epoch : t -> int
val seq : t -> int
val compare : t -> t -> int
(** Lexicographic: epoch first, then seq. *)

val equal : t -> t -> bool
val later : t -> than:t -> bool
val max : t -> t -> t
val pp : t Fmt.t
