open Tasim

type config = {
  d : Time.t;
  timed_delay : Time.t;
  dissemination : Dissemination.policy;
}

let default_config =
  {
    d = Time.of_ms 30;
    timed_delay = Time.of_ms 200;
    dissemination = Dissemination.All_to_all;
  }

type 'u msg =
  | Submit of { semantics : Semantics.t; payload : 'u }
  | Proposal_msg of 'u Proposal.t
  | Decision of { ts : Time.t; oal : Oal.t }
  | Nack of { missing : Proposal.id list }
  | Retransmit of 'u Proposal.t

let kind_of_msg = function
  | Submit _ -> "submit"
  | Proposal_msg _ -> "proposal"
  | Decision _ -> "decision"
  | Nack _ -> "nack"
  | Retransmit _ -> "retransmit"

let pp_msg pp_payload ppf = function
  | Submit { semantics; payload } ->
    Fmt.pf ppf "submit(%a %a)" Semantics.pp semantics pp_payload payload
  | Proposal_msg p -> Fmt.pf ppf "proposal(%a)" (Proposal.pp pp_payload) p
  | Decision { ts; oal } ->
    Fmt.pf ppf "decision(ts=%a %a)" Time.pp ts Oal.pp oal
  | Nack { missing } ->
    Fmt.pf ppf "nack(%a)" Fmt.(list ~sep:sp Proposal.pp_id) missing
  | Retransmit p -> Fmt.pf ppf "retransmit(%a)" (Proposal.pp pp_payload) p

type 'u obs =
  | Delivered of { proposal : 'u Proposal.t; ordinal : int option }
  | Became_decider
  | Stable of { proposal_id : Proposal.id; ordinal : int }

let pp_obs pp_payload ppf = function
  | Delivered { proposal; ordinal } ->
    Fmt.pf ppf "delivered(%a ord=%a)"
      (Proposal.pp pp_payload)
      proposal
      Fmt.(option ~none:(any "-") int)
      ordinal
  | Became_decider -> Fmt.string ppf "became-decider"
  | Stable { proposal_id; ordinal } ->
    Fmt.pf ppf "stable(%a ord=%d)" Proposal.pp_id proposal_id ordinal

(* Reused per-call working storage for [recover_missing]; indexed by
   holder proc id, always left empty between calls. Shared by every
   functional copy of the state — it carries no state across calls. *)
type scratch = {
  sc_ids : Proposal.id list array; (* per holder, newest first *)
  mutable sc_holders : int list; (* dirty slots, reverse touch order *)
}

type 'u state = {
  cfg : config;
  self : Proc_id.t;
  n : int;
  group : Proc_set.t;
  oal : Oal.t;
  buffers : 'u Buffers.t;
  next_seq : int;
  decider : bool;
  stable_seen : int; (* ordinals < stable_seen already reported stable *)
  round : int; (* decision rounds sent; rotates the gossip fanout *)
  scratch : scratch;
}

let timer_decide = 10

let oal_of s = s.oal
let buffers_of s = s.buffers
let is_decider s = s.decider

let delivered_count s =
  (* delivered updates = delivered ordinals + unordered-pending entries *)
  Buffers.highest_delivered_ordinal s.buffers + 1 |> max 0

(* Run the delivery conditions and emit one observation per delivery. *)
let deliver_step s ~clock =
  let deliveries, buffers =
    Delivery.step ~oal:s.oal ~buffers:s.buffers ~now_sync:clock
      ~timed_delay:s.cfg.timed_delay
  in
  let effects =
    List.map
      (fun { Delivery.proposal; ordinal } ->
        Engine.Observe (Delivered { proposal; ordinal }))
      deliveries
  in
  ({ s with buffers }, effects)

(* Report entries newly known stable, in ordinal order. *)
let stability_step s =
  let stable_entries =
    List.filter
      (fun e -> e.Oal.known_stable && e.Oal.ordinal >= s.stable_seen)
      (Oal.entries s.oal)
  in
  let effects =
    List.filter_map
      (fun e ->
        match e.Oal.body with
        | Oal.Update info ->
          Some
            (Engine.Observe
               (Stable
                  {
                    proposal_id = info.Oal.proposal_id;
                    ordinal = e.Oal.ordinal;
                  }))
        | Oal.Membership _ -> None)
      stable_entries
  in
  let top =
    List.fold_left (fun acc e -> max acc (e.Oal.ordinal + 1)) s.stable_seen
      stable_entries
  in
  ({ s with stable_seen = top }, effects)

let init cfg ~self ~n ~clock ~incarnation:_ =
  let group = Proc_set.full ~n in
  let s =
    {
      cfg;
      self;
      n;
      group;
      oal = Oal.empty;
      buffers = Buffers.empty;
      next_seq = 0;
      decider = Proc_id.equal self (Proc_id.of_int 0);
      stable_seen = 0;
      round = 0;
      scratch = { sc_ids = Array.make n []; sc_holders = [] };
    }
  in
  let effects =
    if s.decider then
      [
        Engine.Set_timer { key = timer_decide; at_clock = Time.add clock cfg.d };
        Engine.Observe Became_decider;
      ]
    else []
  in
  (s, effects)

let submit s ~clock ~semantics payload =
  let proposal =
    Proposal.make ~origin:s.self ~seq:s.next_seq ~semantics ~send_ts:clock
      ~hdo:(Buffers.highest_delivered_ordinal s.buffers)
      payload
  in
  let buffers, _fresh = Buffers.store s.buffers proposal in
  let s = { s with next_seq = s.next_seq + 1; buffers } in
  let s, deliver_effects = deliver_step s ~clock in
  (s, Engine.Broadcast (Proposal_msg proposal) :: deliver_effects)

(* Build and broadcast this decider's decision message. *)
let send_decision s ~clock =
  let received id = Buffers.received s.buffers id in
  let oal = Oal.ack_all_received s.oal ~received ~by:s.self in
  (* order every received proposal that has no descriptor yet *)
  let oal =
    List.fold_left
      (fun oal (p : 'u Proposal.t) ->
        if Oal.mem_update oal p.Proposal.id then oal
        else
          let info =
            {
              Oal.proposal_id = p.Proposal.id;
              semantics = p.Proposal.semantics;
              send_ts = p.Proposal.send_ts;
              hdo = p.Proposal.hdo;
            }
          in
          (* only the appender has seen the descriptor; the origin acks
             once it merges an oal carrying it *)
          fst (Oal.append_update oal info ~acks:(Proc_set.singleton s.self)))
      oal (Buffers.stored s.buffers)
  in
  let oal = Oal.refresh_stability oal ~group:s.group in
  (* report stability before purging drops the entries *)
  let s, stable_effects = stability_step { s with oal } in
  let oal =
    Oal.purge_stable s.oal ~delivered:(Buffers.delivered_ordinal s.buffers)
  in
  let low = Oal.low oal in
  let buffers = Buffers.compact s.buffers ~purged:(fun o -> o < low) in
  let s = { s with oal; buffers; decider = false } in
  let s, deliver_effects = deliver_step s ~clock in
  let decision = Decision { ts = clock; oal } in
  let s, send_effects =
    match s.cfg.dissemination with
    | Dissemination.All_to_all -> (s, [ Engine.Broadcast decision ])
    | Dissemination.Gossip { fanout; _ } ->
      (* Point-to-point to the rotating fanout; the ring successor is
         always the first target, so the decider handover still rides
         the decision itself. Other members converge as the rotation
         sweeps them. *)
      let targets =
        Dissemination.probe_targets ~group:s.group ~self:s.self ~n:s.n ~fanout
          ~round:s.round
      in
      ( { s with round = s.round + 1 },
        List.map (fun p -> Engine.Send (p, decision)) targets )
  in
  (s, send_effects @ stable_effects @ deliver_effects)

(* Find, for each missing proposal, a holder proven by the oal acks and
   ask it to retransmit. *)
let recover_missing s =
  let sc = s.scratch in
  Oal.iter_entries s.oal (fun e ->
      match e.Oal.body with
      | Oal.Update info
        when (not (Buffers.received s.buffers info.Oal.proposal_id))
             && not e.Oal.undeliverable -> (
        match Proc_set.successor_in e.Oal.acks s.self ~n:s.n with
        | Some holder ->
          let hi = Proc_id.to_int holder in
          if sc.sc_ids.(hi) = [] then sc.sc_holders <- hi :: sc.sc_holders;
          sc.sc_ids.(hi) <- info.Oal.proposal_id :: sc.sc_ids.(hi)
        | None -> ())
      | Oal.Update _ | Oal.Membership _ -> ());
  let effs =
    List.fold_left
      (fun acc hi ->
        let ids = sc.sc_ids.(hi) in
        sc.sc_ids.(hi) <- [];
        Engine.Send (Proc_id.of_int hi, Nack { missing = List.rev ids }) :: acc)
      [] sc.sc_holders
  in
  sc.sc_holders <- [];
  effs

let on_receive_decision s ~clock ~src ~ts:_ ~oal =
  let s = { s with oal = Oal.merge ~local:s.oal ~incoming:oal } in
  let received id = Buffers.received s.buffers id in
  let s =
    { s with oal = Oal.ack_all_received s.oal ~received ~by:s.self }
  in
  (* learn ordinals of updates we delivered unordered *)
  let s =
    List.fold_left
      (fun s e ->
        match e.Oal.body with
        | Oal.Update info ->
          {
            s with
            buffers =
              Buffers.note_ordinal s.buffers info.Oal.proposal_id e.Oal.ordinal;
          }
        | Oal.Membership _ -> s)
      s (Oal.entries s.oal)
  in
  let s =
    { s with oal = Oal.refresh_stability s.oal ~group:s.group }
  in
  let s, stable_effects = stability_step s in
  let s =
    {
      s with
      oal =
        Oal.purge_stable s.oal
          ~delivered:(Buffers.delivered_ordinal s.buffers);
    }
  in
  let low = Oal.low s.oal in
  let s =
    { s with buffers = Buffers.compact s.buffers ~purged:(fun o -> o < low) }
  in
  let nacks = recover_missing s in
  let s, deliver_effects = deliver_step s ~clock in
  let become =
    Rotation.is_next_decider ~group:s.group ~after:src ~n:s.n s.self
  in
  if become && not s.decider then
    ( { s with decider = true },
      nacks @ stable_effects @ deliver_effects
      @ [
          Engine.Set_timer
            { key = timer_decide; at_clock = Time.add clock s.cfg.d };
          Engine.Observe Became_decider;
        ] )
  else (s, nacks @ stable_effects @ deliver_effects)

let on_receive s ~clock ~src msg =
  match msg with
  | Submit { semantics; payload } -> submit s ~clock ~semantics payload
  | Proposal_msg p | Retransmit p ->
    let buffers, fresh = Buffers.store s.buffers p in
    if not fresh then (s, [])
    else begin
      let s = { s with buffers } in
      let s =
        { s with oal = Oal.ack_update s.oal p.Proposal.id s.self }
      in
      deliver_step s ~clock
    end
  | Decision { ts; oal } -> on_receive_decision s ~clock ~src ~ts ~oal
  | Nack { missing } ->
    let resend =
      List.filter_map
        (fun id ->
          match Buffers.get s.buffers id with
          | Some p -> Some (Engine.Send (src, Retransmit p))
          | None -> None)
        missing
    in
    (s, resend)

let on_timer s ~clock ~key =
  if key = timer_decide && s.decider then send_decision s ~clock
  else (s, [])

let automaton cfg =
  {
    Engine.name = "broadcast";
    init = (fun ~self ~n ~clock ~incarnation -> init cfg ~self ~n ~clock ~incarnation);
    on_receive;
    on_timer;
  }
