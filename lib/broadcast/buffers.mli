(** Per-member proposal storage.

    Each member maintains two buffers (paper, Section 2): a {e proposal
    buffer} storing received proposals and a {e proposal descriptor
    buffer} storing descriptors and ordinals — the latter is the
    member's oal view and lives in {!Oal}; this module owns the
    proposal buffer plus the local delivery and undeliverable-mark
    bookkeeping of Section 4.3. *)

open Tasim

type 'u t

val empty : 'u t

(** {1 Proposal buffer} *)

val store : 'u t -> 'u Proposal.t -> 'u t * bool
(** Insert a received proposal; [false] when it was a duplicate. *)

val received : 'u t -> Proposal.id -> bool
val get : 'u t -> Proposal.id -> 'u Proposal.t option
val stored : 'u t -> 'u Proposal.t list
(** Every proposal still buffered, including delivered ones retained
    for retransmission until stable. *)

val remove : 'u t -> Proposal.id -> 'u t

(** {1 Delivery bookkeeping} *)

val delivered : 'u t -> Proposal.id -> bool
val note_delivered : 'u t -> Proposal.id -> ordinal:int option -> 'u t
(** Mark delivered. The payload is retained (other members may still
    need a retransmission) until {!compact} drops it. [ordinal = None]
    for updates delivered before being ordered (unordered
    semantics). *)

val note_ordinal : 'u t -> Proposal.id -> int -> 'u t
(** Record the ordinal of an already-delivered proposal once learned. *)

val delivered_ordinal : 'u t -> int -> bool
val highest_delivered_ordinal : 'u t -> int
(** -1 when nothing ordered was delivered yet. *)

val dpd : 'u t -> Proposal.id list
(** Delivered proposal descriptors with no ordinal yet — the [dpd]
    field carried on no-decision and reconfiguration messages. *)

val ordinal_of_delivered : 'u t -> Proposal.id -> int option

val compact : 'u t -> purged:(int -> bool) -> 'u t
(** Drop retained payloads of delivered proposals whose ordinal has
    been purged from the oal (they are stable everywhere). *)

(** {1 Undeliverable marks (auto-clearing, Section 4.3)} *)

val mark_undeliverable : 'u t -> Proposal.id -> expires:Time.t -> 'u t
(** Explicitly mark one proposal until the synchronized-clock time
    [expires] ("an undeliverable mark is automatically cleared after
    one cycle, unless it was set again"). *)

val block_origin : 'u t -> Proc_id.t -> expires:Time.t -> 'u t
(** Mark every proposal from this origin received before [expires] —
    the "received after p has sent the no-decision or reconfiguration
    message" rule. *)

val is_marked : 'u t -> Proposal.id -> now:Time.t -> bool
val expire_marks : 'u t -> now:Time.t -> 'u t

val purge_marked : 'u t -> now:Time.t -> 'u t
(** Drop marked proposals from the proposal buffer ("each group member
    purges all proposals marked as undeliverable from their pdb and
    pb"). *)

(** {1 Direct serialization walks}

    Counted folds over the live maps in ascending id order — the same
    elements and order as the {!wire} lists, without materializing
    them. The accumulator threading lets an encoder use a statically
    allocated callback, keeping the state-transfer encode path free of
    per-frame allocation. *)

val proposal_count : 'u t -> int
val fold_proposals : (Proposal.id -> 'u Proposal.t -> 'a -> 'a) -> 'u t -> 'a -> 'a
val delivered_count : 'u t -> int
val fold_delivered : (Proposal.id -> int option -> 'a -> 'a) -> 'u t -> 'a -> 'a

val marks_of : 'u t -> (Proposal.id * Time.t) list
(** The live marks list (newest first), shared, not copied. *)

val blocked_of : 'u t -> (Proc_id.t * Time.t) list
(** The live blocked-origins list (newest first), shared, not
    copied. *)

(** {1 Wire view}

    Concrete image of the buffers for serialization (state-transfer
    messages cross the live runtime's UDP codec carrying the sender's
    buffers). [of_wire (to_wire t)] reconstructs [t] exactly. *)

type 'u wire = {
  w_proposals : 'u Proposal.t list;
  w_delivered : (Proposal.id * int option) list;
  w_marks : (Proposal.id * Time.t) list;
  w_blocked : (Proc_id.t * Time.t) list;
}

val to_wire : 'u t -> 'u wire
val of_wire : 'u wire -> 'u t
