type t = { epoch : int; seq : int }

let none = { epoch = 0; seq = -1 }
let is_known t = t.seq >= 0
let v ~epoch ~seq = { epoch; seq }
let form ~epoch = { epoch; seq = 0 }
let succ t = { t with seq = t.seq + 1 }
let epoch t = t.epoch
let seq t = t.seq

let compare a b =
  match Int.compare a.epoch b.epoch with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let equal a b = compare a b = 0
let later a ~than = compare a than > 0
let max a b = if compare a b >= 0 then a else b

let pp ppf t =
  if t.epoch = 0 then Fmt.int ppf t.seq
  else Fmt.pf ppf "%d.%d" t.epoch t.seq
