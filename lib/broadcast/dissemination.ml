(* Pluggable steady-state dissemination: routing policy + the
   epoch-aware piggyback queue shared by the member and broadcast
   protocol gossip instances. See the .mli for the design rationale. *)

open Tasim

type policy =
  | All_to_all
  | Gossip of {
      fanout : int;
      piggyback_budget : int;
      probe_period : Time.t;
      max_forwards : int;
    }

let default_gossip =
  Gossip
    {
      fanout = 2;
      piggyback_budget = 4;
      probe_period = Time.of_ms 30;
      max_forwards = 3;
    }

let validate = function
  | All_to_all -> Ok ()
  | Gossip { fanout; piggyback_budget; probe_period; max_forwards } ->
    if fanout < 1 then Error "gossip fanout must be >= 1"
    else if piggyback_budget < 1 then Error "gossip piggyback budget must be >= 1"
    else if Time.compare probe_period Time.zero <= 0 then
      Error "gossip probe period must be positive"
    else if max_forwards < 1 then Error "gossip max forwards must be >= 1"
    else Ok ()

let pp_policy ppf = function
  | All_to_all -> Fmt.string ppf "all-to-all"
  | Gossip { fanout; piggyback_budget; probe_period; max_forwards } ->
    Fmt.pf ppf "gossip(fanout=%d budget=%d period=%a forwards=%d)" fanout
      piggyback_budget Time.pp probe_period max_forwards

module Queue = struct
  (* Items sorted by descending (epoch, stamp); the list is short in
     practice (a fresh decision supersedes what its predecessor decided
     plus merged, so steady state queues at most a handful) and every
     operation walks it once. [seen_*] is the high-water mark over all
     accepted pushes — it survives drains, which is what makes "never
     deliver a lower epoch after a higher one" hold across the queue
     emptying and refilling. *)
  type 'a item = {
    it_epoch : int;
    it_stamp : int;
    it_forwards : int;
    it_payload : 'a;
  }

  type 'a t = { items : 'a item list; seen_epoch : int; seen_stamp : int }

  let empty = { items = []; seen_epoch = min_int; seen_stamp = min_int }

  let rank_above ~epoch ~stamp ~than_epoch ~than_stamp =
    epoch > than_epoch || (epoch = than_epoch && stamp > than_stamp)

  let push q ~epoch ~stamp ~forwards x =
    if
      not
        (rank_above ~epoch ~stamp ~than_epoch:q.seen_epoch
           ~than_stamp:q.seen_stamp)
    then (q, false)
    else begin
      (* fresh: ranks above everything queued, so it goes in front;
         queued lower-epoch items are invalidated *)
      let keep = List.filter (fun it -> it.it_epoch >= epoch) q.items in
      let item =
        { it_epoch = epoch; it_stamp = stamp; it_forwards = forwards; it_payload = x }
      in
      ( { items = item :: keep; seen_epoch = epoch; seen_stamp = stamp },
        true )
    end

  let drain q ~budget =
    if budget <= 0 || q.items = [] then ([], q)
    else begin
      let rec go n taken kept = function
        | [] -> (List.rev taken, List.rev kept)
        | it :: rest when n > 0 ->
          let kept =
            if it.it_forwards <= 1 then kept
            else { it with it_forwards = it.it_forwards - 1 } :: kept
          in
          go (n - 1) (it.it_payload :: taken) kept rest
        | rest -> (List.rev taken, List.rev_append kept rest)
      in
      let taken, items = go budget [] [] q.items in
      (taken, { q with items })
    end

  let length q = List.length q.items
  let is_empty q = q.items = []

  let seen q =
    if q.seen_epoch = min_int then None else Some (q.seen_epoch, q.seen_stamp)
end

(* One probe round's targets: the ring successor always (its
   surveillance watches us, and it is the next decider, so it must see
   our freshest state first), plus [fanout - 1] members picked by
   striding over the remaining ring with the round number so
   consecutive rounds cover the whole group. Deterministic — no RNG —
   so simulation runs stay reproducible. *)
let probe_targets ~group ~self ~n ~fanout ~round =
  match Proc_set.successor_in group self ~n with
  | None -> []
  | Some succ when Proc_id.equal succ self -> []
  | Some succ ->
    let m = Proc_set.cardinal group in
    (* others = group members that are neither self nor succ, in ring
       order starting after succ *)
    let others = m - 2 in
    if fanout <= 1 || others <= 0 then [ succ ]
    else begin
      let want = Stdlib.min (fanout - 1) others in
      (* walk the ring collecting the [others] candidates once, then
         select [want] of them by a round-rotating stride *)
      let candidates = Array.make others self in
      let rec collect i p =
        if i < others then begin
          match Proc_set.successor_in group p ~n with
          | Some q when not (Proc_id.equal q self) ->
            candidates.(i) <- q;
            collect (i + 1) q
          | Some q -> collect i q (* skip self, keep walking *)
          | None -> ()
        end
      in
      collect 0 succ;
      let picked = ref [] in
      for k = want - 1 downto 0 do
        let idx = (round * want + k) mod others in
        let c = candidates.(idx) in
        if not (List.exists (Proc_id.equal c) !picked) then
          picked := c :: !picked
      done;
      succ :: !picked
    end
