(** The complete timewheel group-communication member.

    One value of {!type:state} is the entire protocol stack of one team
    member: the failure detector (Section 4.2), the six-state group
    creator (Fig. 2) with both the single-failure no-decision ring and
    the slotted multiple-failure reconfiguration election, the join
    protocol, and the atomic broadcast data path (oal, buffers,
    delivery, rotating decider) whose decision messages double as the
    membership heartbeat — during failure-free periods the membership
    protocol adds no messages of its own (the paper's headline claim).

    The automaton runs on the {e synchronized} time base: the
    [clock] values the engine feeds it must come from synchronized
    clocks (oracle or the [clocksync] protocol) with pairwise deviation
    at most [epsilon].

    ['u] is the update payload; ['app] the replicated application
    state, maintained inside the member by folding delivered updates so
    it can be shipped to joiners ("q retrieves its application state by
    calling a dedicated function provided by the application",
    Section 4.2). *)

open Tasim
open Broadcast

type persistent = { last_group_id : Group_id.t; last_group : Proc_set.t }
(** The stable-storage record a member maintains: the group id (whose
    epoch component is what crash recovery needs) and membership of the
    last installed view. Written through [config.persist] at every view
    install; read back through [config.restore] at (re)initialization
    to pick the formation epoch. *)

type ('u, 'app) config = {
  params : Params.t;
  apply : 'app -> 'u -> 'app;  (** deterministic update application *)
  initial_app : 'app;
  persist : self:Proc_id.t -> now:Time.t -> persistent -> unit;
      (** stable-storage write hook, called at every view install *)
  restore : self:Proc_id.t -> now:Time.t -> persistent option;
      (** stable-storage read hook, called once at initialization *)
}

val config :
  ?apply:('app -> 'u -> 'app) ->
  ?persist:(self:Proc_id.t -> now:Time.t -> persistent -> unit) ->
  ?restore:(self:Proc_id.t -> now:Time.t -> persistent option) ->
  initial_app:'app ->
  Params.t ->
  ('u, 'app) config
(** [apply] defaults to ignoring updates (membership-only runs).
    [persist]/[restore] default to no storage (every incarnation is
    amnesiac, the seed behaviour); {!Service} wires them to a
    {!Storage.Store} so recovery is epoch-aware. *)

type 'u obs =
  | View_installed of { group : Proc_set.t; group_id : Group_id.t }
      (** a new group-list was adopted (including the initial one and
          re-adoption after a rejoin) *)
  | Delivered of { proposal : 'u Proposal.t; ordinal : int option }
  | Transition of {
      from_ : Creator_state.kind;
      to_ : Creator_state.kind;
    }  (** group-creator state change, for conformance tracking *)
  | Suspected of { suspect : Proc_id.t }
      (** the local failure detector reported a timeout failure *)
  | Late_rejected of { from : Proc_id.t }
      (** a control message was rejected as late (fail-aware datagram
          rejection: the sender is not sigma-stable right now) *)
  | Became_decider
  | Excluded  (** this process learned it was removed from the group *)

val pp_obs : 'u obs Fmt.t

type ('u, 'app) state

val automaton :
  ('u, 'app) config ->
  (('u, 'app) state, ('u, 'app) Control_msg.t, 'u obs) Engine.automaton

(** {1 Client operations}

    Submissions enter through the message channel so that harnesses can
    use [Engine.inject p (submit ...)]. *)

val submit : semantics:Semantics.t -> 'u -> ('u, 'app) Control_msg.t

(** {1 Inspection} *)

val creator_state : ('u, 'app) state -> Creator_state.t
val group : ('u, 'app) state -> Proc_set.t
(** Current group-list (empty before any group was formed). *)

val group_id : ('u, 'app) state -> Group_id.t
(** {!Group_id.none} before any group was formed. *)

val form_epoch : ('u, 'app) state -> int
(** The epoch any initial formation this process takes part in would
    use: 0 cold, one above the persisted epoch after recovery,
    ratcheted up by join messages carrying a later epoch. *)

val has_group : ('u, 'app) state -> bool
val is_decider : ('u, 'app) state -> bool
val app : ('u, 'app) state -> 'app
val oal_of : ('u, 'app) state -> Oal.t
val buffers_of : ('u, 'app) state -> 'u Buffers.t
val alive_list : ('u, 'app) state -> now:Time.t -> Proc_set.t
val failure_detector : ('u, 'app) state -> Failure_detector.t
