open Tasim
open Creator_state

type env = {
  self : Proc_id.t;
  group : Proc_set.t;
  n : int;
  majority : int;
  current_slot : int;
  single_failure_election : bool;
}

type event =
  | Fd_timeout of { suspect : Proc_id.t; since : Time.t }
  | Nd_received of {
      from : Proc_id.t;
      suspect : Proc_id.t;
      since : Time.t;
      concur : bool;
      from_ring_predecessor : bool;
    }
  | Decision_received of {
      from : Proc_id.t;
      from_expected : bool;
      from_suspect : bool;
      in_new_group : bool;
    }
  | Reconfig_received of { from_expected : bool; from_member : bool }
  | All_new_members_heard

type directive =
  | Send_no_decision of { suspect : Proc_id.t; since : Time.t }
  | Exclude_and_decide of { suspect : Proc_id.t }
  | Take_over_decider
  | Resend_last_control
  | Start_reconfiguration
  | Adopt_decision
  | Enter_join

let pp_directive ppf = function
  | Send_no_decision { suspect; _ } ->
    Fmt.pf ppf "send-no-decision(%a)" Proc_id.pp suspect
  | Exclude_and_decide { suspect } ->
    Fmt.pf ppf "exclude-and-decide(%a)" Proc_id.pp suspect
  | Take_over_decider -> Fmt.string ppf "take-over-decider"
  | Resend_last_control -> Fmt.string ppf "resend-last-control"
  | Start_reconfiguration -> Fmt.string ppf "start-reconfiguration"
  | Adopt_decision -> Fmt.string ppf "adopt-decision"
  | Enter_join -> Fmt.string ppf "enter-join"

let i_am_suspect_successor env suspect =
  match Proc_set.successor_in env.group suspect ~n:env.n with
  | Some p -> Proc_id.equal p env.self
  | None -> false

let i_am_suspect_predecessor env suspect =
  match Proc_set.predecessor_in env.group suspect ~n:env.n with
  | Some p -> Proc_id.equal p env.self
  | None -> false

(* "when p switches to n-failure state, it does not participate in a new
   election for the duration of N-1 slot times" *)
let enter_n_failure env =
  ( N_failure { wait_until_slot = env.current_slot + env.n - 1 },
    [ Start_reconfiguration ] )

(* Shared single-failure entry: the failure detector (or a concurred
   no-decision message) reports the suspect. The suspect's group
   successor starts the no-decision ring; everyone else waits for the
   ring to reach them. *)
let begin_single_failure env ~suspect ~since =
  if not env.single_failure_election then enter_n_failure env
  else if i_am_suspect_successor env suspect then
    ( One_failure_send { suspect; since },
      [ Send_no_decision { suspect; since } ] )
  else (One_failure_receive { suspect; since }, [])

(* Terminal step of the no-decision ring at the suspect's predecessor:
   all other members have concurred. Exclude the suspect if a group
   larger than a bare majority remains, else fall back to the slotted
   reconfiguration election. *)
let ring_terminates env ~suspect =
  if Proc_set.cardinal env.group > env.majority then
    (Failure_free, [ Exclude_and_decide { suspect } ])
  else enter_n_failure env

(* A no-decision from the ring predecessor, concurred with: relay it, or
   terminate the election when this process is the suspect's
   predecessor. *)
let ring_advance env ~suspect ~since =
  if i_am_suspect_predecessor env suspect then ring_terminates env ~suspect
  else
    ( One_failure_send { suspect; since },
      [ Send_no_decision { suspect; since } ] )

let on_decision state ~from_expected ~in_new_group =
  match (from_expected, in_new_group) with
  | true, true -> (Failure_free, [ Adopt_decision ])
  | true, false -> (Join, [ Adopt_decision; Enter_join ])
  | false, _ ->
    (* information is always welcome; the state machine only moves on a
       decision that satisfies the surveillance *)
    (state, [ Adopt_decision ])

let step env state event =
  match (state, event) with
  (* ------------------------------------------------------------ join *)
  | Join, Decision_received { in_new_group; _ } ->
    if in_new_group then (Failure_free, [ Adopt_decision ])
    else (Join, [ Adopt_decision ])
  | Join, (Fd_timeout _ | Nd_received _ | Reconfig_received _
          | All_new_members_heard) ->
    (Join, [])
  (* ---------------------------------------------------- failure-free *)
  | Failure_free, Fd_timeout { suspect; since } ->
    begin_single_failure env ~suspect ~since
  | Failure_free, Nd_received { suspect; since; concur; from_ring_predecessor; _ }
    ->
    if not concur then
      if Proc_id.equal suspect env.self then
        (Wrong_suspicion { suspect }, [ Resend_last_control ])
      else if from_ring_predecessor then
        (* the no-decision sender's successor holds the decision the
           sender missed: it takes over the decider role at once and the
           suspicion is masked without a membership change *)
        (Failure_free, [ Take_over_decider ])
      else (Wrong_suspicion { suspect }, [])
    else if from_ring_predecessor then ring_advance env ~suspect ~since
    else (One_failure_receive { suspect; since }, [])
  | Failure_free, Decision_received { from_expected; in_new_group; _ } ->
    on_decision state ~from_expected ~in_new_group
  | Failure_free, Reconfig_received { from_expected; _ } ->
    if from_expected then enter_n_failure env else (state, [])
  | Failure_free, All_new_members_heard -> (state, [])
  (* ------------------------------------------------- wrong-suspicion *)
  | Wrong_suspicion { suspect }, Nd_received { from_ring_predecessor; _ } ->
    if Proc_id.equal suspect env.self then (state, [ Resend_last_control ])
    else if from_ring_predecessor then (Failure_free, [ Take_over_decider ])
    else (state, [])
  | Wrong_suspicion _, Decision_received { from_expected; in_new_group; _ }
    ->
    on_decision state ~from_expected ~in_new_group
  | Wrong_suspicion _, Fd_timeout _ -> enter_n_failure env
  | Wrong_suspicion _, Reconfig_received { from_expected; from_member } ->
    (* A wrongly-suspected process's surveillance can point at nobody
       (its ring successor may be itself, which suspends the FD), so
       [from_expected] alone would leave it deaf to the reconfig
       stream when the rest of the group collapses to n-failure — and
       an election needing its vote deadlocks (chaos counterexample
       chaos-17). In this state a reconfiguration from any current
       group member is believable: the group has given up on the ring. *)
    if from_expected || from_member then enter_n_failure env
    else (state, [])
  | Wrong_suspicion _, All_new_members_heard -> (state, [])
  (* ----------------------------------------------- 1-failure-receive *)
  | ( One_failure_receive { suspect; since },
      Nd_received { suspect = s; from_ring_predecessor; concur; _ } ) ->
    if from_ring_predecessor && Proc_id.equal s suspect && concur then
      ring_advance env ~suspect ~since
    else (state, [])
  | ( One_failure_receive { suspect; _ },
      Decision_received { from_expected; from_suspect; in_new_group; _ } )
    ->
    if from_suspect then
      (* the suspect is alive after all *)
      (Wrong_suspicion { suspect }, [ Adopt_decision ])
    else on_decision state ~from_expected ~in_new_group
  | One_failure_receive _, Fd_timeout _ -> enter_n_failure env
  | One_failure_receive _, Reconfig_received { from_expected; _ } ->
    if from_expected then enter_n_failure env else (state, [])
  | One_failure_receive _, All_new_members_heard -> (state, [])
  (* -------------------------------------------------- 1-failure-send *)
  | One_failure_send _, Nd_received _ -> (state, [])
  | ( One_failure_send _,
      Decision_received { from_expected; in_new_group; _ } ) ->
    on_decision state ~from_expected ~in_new_group
  | One_failure_send _, Fd_timeout _ -> enter_n_failure env
  | One_failure_send _, Reconfig_received { from_expected; _ } ->
    if from_expected then enter_n_failure env else (state, [])
  | One_failure_send _, All_new_members_heard -> (state, [])
  (* ------------------------------------------------------- n-failure *)
  | N_failure _, Decision_received { in_new_group; _ } ->
    if in_new_group then (Failure_free, [ Adopt_decision ])
    else (state, [ Adopt_decision ])
  | N_failure _, All_new_members_heard -> (Join, [ Enter_join ])
  | N_failure _, (Fd_timeout _ | Nd_received _ | Reconfig_received _) ->
    (state, [])
