(** Protocol parameters.

    The timed asynchronous model and the protocol are parameterized by
    a handful of bounds (paper, Sections 2 and 4.2):

    - [n]: team size (N in the paper);
    - [delta]: one-way time-out delay of the datagram service;
    - [sigma]: maximum timely scheduling delay;
    - [epsilon]: maximum deviation between synchronized clocks;
    - [d]: the maximum interval after which a decider sends its
      decision message (D in the paper);
    - [slot_len]: length of a time slot, which "has to be at least
      D + delta" (Section 4.2);
    - [timed_delay]: delivery delay for [Timed]-ordered updates.

    All times are on the synchronized clock time base. *)

open Tasim

type t = private {
  n : int;
  delta : Time.t;
  sigma : Time.t;
  epsilon : Time.t;
  d : Time.t;
  slot_len : Time.t;
  timed_delay : Time.t;
  eager_decisions : bool;
      (** when true a decider with unordered proposals pending sends its
          decision early instead of waiting the full D *)
  single_failure_election : bool;
      (** the paper's fast path: the no-decision ring for single
          failures. Disabling it (ablation A3) routes every suspicion
          through the slotted reconfiguration election *)
  dissemination : Broadcast.Dissemination.policy;
      (** how steady-state decisions reach the group: [All_to_all] is
          the paper's broadcast (the default, byte-identical to the
          pre-pluggable code); [Gossip] piggybacks them on periodic
          probes for large N *)
  adaptive_suspicion : bool;
      (** Lifeguard-style local health: late-message and late-timer
          evidence at a member stretches that member's own suspicion
          timeout, so a slow member doubts itself before its peers *)
}

val make :
  ?delta:Time.t ->
  ?sigma:Time.t ->
  ?epsilon:Time.t ->
  ?d:Time.t ->
  ?slot_len:Time.t ->
  ?timed_delay:Time.t ->
  ?eager_decisions:bool ->
  ?single_failure_election:bool ->
  ?dissemination:Broadcast.Dissemination.policy ->
  ?adaptive_suspicion:bool ->
  n:int ->
  unit ->
  t
(** Defaults: delta = 10ms, sigma = 1ms, epsilon = 2ms, d = 30ms,
    slot_len = d + delta, timed_delay = 200ms, eager_decisions = false,
    single_failure_election = true, dissemination = All_to_all,
    adaptive_suspicion = false. Raises [Invalid_argument] when
    [n < 2], [slot_len < d + delta], any bound is non-positive, or the
    dissemination policy fails {!Broadcast.Dissemination.validate}. *)

val cycle : t -> Time.t
(** [n * slot_len]: the length of one cycle of the slotted time base. *)

val fd_timeout : t -> Time.t
(** [2 * d]: the failure detector's surveillance deadline increment. *)

val suspicion_timeout : t -> Time.t
(** Base surveillance deadline increment under the configured
    dissemination policy: {!fd_timeout} for all-to-all; under gossip at
    least two probe periods, since surveillance is then fed by probes
    rather than by every decision. The failure detector scales this by
    the local-health multiplier when [adaptive_suspicion] is set. *)

val gossip_probe_period : t -> Time.t option
(** The gossip probe period, when dissemination is [Gossip]. *)

val alive_window : t -> Time.t
(** [n * slot_len]: a process is on the alive-list when heard from
    within the last N slots (Section 4.2). *)

val late_bound : t -> Time.t
(** [delta + epsilon + sigma]: a control message whose apparent one-way
    delay on the synchronized time base exceeds this is late and must
    be rejected (fail-awareness). *)

val majority : t -> int
(** Smallest cardinality that is a majority of [n]. *)

val pp : t Fmt.t
