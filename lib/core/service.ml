open Tasim
open Broadcast

type clocks = Perfect | Oracle

type view = { group : Proc_set.t; group_id : Group_id.t; at : Time.t }

type ('u, 'app) t = {
  params : Params.t;
  engine :
    (('u, 'app) Member.state, ('u, 'app) Control_msg.t, 'u Member.obs) Engine.t;
  storage : Member.persistent Storage.Store.t;
  mutable view_probes : (Proc_id.t -> view -> unit) list;
  mutable delivery_probes :
    (Proc_id.t -> at:Time.t -> 'u Proposal.t -> ordinal:int option -> unit)
    list;
  mutable views : (Proc_id.t * view) list; (* newest first *)
}

let create ?engine_config ?(clocks = Oracle) ?storage_write_latency ?apply
    ~initial_app params =
  let base =
    match engine_config with
    | Some c -> c
    | None -> Engine.default_config
  in
  let engine_config =
    { base with Engine.net = { base.Engine.net with Net.delta = params.Params.delta } }
  in
  let n = params.Params.n in
  let engine = Engine.create engine_config ~n in
  Engine.classify engine Control_msg.kind;
  let clock_sources =
    match clocks with
    | Perfect -> Clocksync.Oracle.perfect ~n
    | Oracle ->
      Clocksync.Oracle.clocks (Engine.rng engine) ~n
        ~epsilon:params.Params.epsilon ~max_drift:1e-6
  in
  let storage =
    Storage.Store.create ?write_latency:storage_write_latency ~n ()
  in
  (* members persist through the store keyed by their process id; the
     store's clock is the member's synchronized clock, which under the
     oracle clock sources stays within epsilon of real time *)
  let member_cfg =
    Member.config ?apply
      ~persist:(fun ~self ~now record ->
        Storage.Store.write storage ~proc:self ~now record)
      ~restore:(fun ~self ~now -> Storage.Store.read storage ~proc:self ~now)
      ~initial_app params
  in
  let automaton = Member.automaton member_cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:clock_sources.(Proc_id.to_int id)
        ())
    (Proc_id.all ~n);
  let t =
    {
      params;
      engine;
      storage;
      view_probes = [];
      delivery_probes = [];
      views = [];
    }
  in
  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Member.View_installed { group; group_id } ->
        let view = { group; group_id; at } in
        t.views <- (proc, view) :: t.views;
        List.iter (fun probe -> probe proc view) t.view_probes
      | Member.Delivered { proposal; ordinal } ->
        List.iter
          (fun probe -> probe proc ~at proposal ~ordinal)
          t.delivery_probes
      | Member.Transition _ | Member.Suspected _ | Member.Late_rejected _
      | Member.Became_decider | Member.Excluded ->
        ());
  t

let params t = t.params
let engine t = t.engine
let run t ~until = Engine.run t.engine ~until
let now t = Engine.now t.engine

let submit t proc ~semantics payload =
  Engine.inject t.engine proc (Member.submit ~semantics payload)

let submit_at t time proc ~semantics payload =
  Engine.inject_at t.engine time proc (Member.submit ~semantics payload)

let on_view t probe = t.view_probes <- t.view_probes @ [ probe ]
let on_delivery t probe = t.delivery_probes <- t.delivery_probes @ [ probe ]
let on_obs t probe = Engine.on_observe t.engine probe

let views_installed t = List.rev t.views

let current_view t proc =
  Member.(
    match Engine.state_of t.engine proc with
    | Some s when has_group s ->
      Some { group = group s; group_id = group_id s; at = Engine.now t.engine }
    | Some _ | None -> None)

let agreed_view t =
  let n = t.params.Params.n in
  let up_to_date id =
    (* fail-awareness: a member in the join or n-failure state knows its
       view is out of date and is not counted *)
    match Engine.state_of t.engine id with
    | Some s -> (
      match Creator_state.kind_of (Member.creator_state s) with
      | Creator_state.KJoin | Creator_state.KN_failure -> false
      | Creator_state.KFailure_free | Creator_state.KWrong_suspicion
      | Creator_state.KOne_failure_receive | Creator_state.KOne_failure_send
        ->
        true)
    | None -> false
  in
  let members_with_views =
    List.filter_map
      (fun id ->
        if Engine.is_up t.engine id && up_to_date id then
          match current_view t id with
          | Some v when Proc_set.mem id v.group -> Some v
          | Some _ | None -> None
        else None)
      (Proc_id.all ~n)
  in
  match members_with_views with
  | [] -> None
  | v :: rest ->
    let newest =
      List.fold_left
        (fun best v ->
          if Group_id.later v.group_id ~than:best.group_id then v else best)
        v rest
    in
    let agree =
      List.for_all
        (fun (v : view) ->
          Group_id.equal v.group_id newest.group_id
          && Proc_set.equal v.group newest.group)
        members_with_views
    in
    if agree then Some newest else None

let storage t = t.storage

let crash_at t time p =
  Engine.crash_at t.engine time p;
  (* scheduled after the crash thunk at the same instant (the event
     heap is stable): the store drops the crashed process's write-back
     cache and latency-pending writes, keeping only durable records *)
  Engine.at t.engine time (fun () ->
      Storage.Store.note_crash t.storage ~proc:p ~now:time)
let recover_at t time p = Engine.recover_at t.engine time p
let partition_at t time blocks = Engine.partition_at t.engine time blocks
let heal_at t time = Engine.heal_at t.engine time

let drop_control t ?max_drops ~name ~kind ~src ~dst () =
  Net.add_filter (Engine.net t.engine) ?max_drops ~name
    (fun ~src:s ~dst:d msg ->
      String.equal (Control_msg.kind msg) kind
      && (match src with None -> true | Some x -> Proc_id.equal x s)
      && match dst with None -> true | Some x -> Proc_id.equal x d)

let enable_trace ?capacity t =
  let trace = Trace.create ?capacity () in
  Engine.set_trace t.engine trace;
  trace

let member_state t proc = Engine.state_of t.engine proc
let app_state t proc = Option.map Member.app (member_state t proc)
let stats t = Engine.stats t.engine
