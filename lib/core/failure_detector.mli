(** The unreliable failure detector (paper, Section 4.2).

    The failure detector of process p keeps all group members under
    surveillance by checking that they send control messages
    periodically. It maintains

    - an {e alive-list}: p plus every process from which p received at
      least one (timely, fresh) control message in the last N slots;
    - an {e expected sender}: after accepting a control message with
      send timestamp [ts] from x, a control message with a greater
      timestamp is expected from x's group successor before
      synchronized time [ts + 2D] — on expiry, a {e timeout failure}
      of that successor is reported to the group creator.

    The detector is unreliable by construction: an alive-list may
    contain crashed processes and omit live ones, and different
    detectors may disagree (Section 4.1).

    This module is pure state; the surrounding automaton arms real
    timers from {!deadline} and feeds expiry back via
    {!timeout_suspect}. All times are synchronized-clock times. *)

open Tasim

type t

val create : Params.t -> self:Proc_id.t -> t

(** {1 Message admission} *)

type verdict =
  | Fresh  (** timely, not a duplicate: the message must be processed *)
  | Stale  (** duplicate or old (timestamp not newer): reject *)
  | Late  (** apparent transmission delay exceeded the fail-aware
              bound: reject (sender not sigma-stable) *)

val admit : t -> from:Proc_id.t -> ts:Time.t -> now:Time.t -> t * verdict
(** Check a control message and, when [Fresh], record the sender as
    heard-from. *)

val admit_probe : t -> from:Proc_id.t -> ts:Time.t -> now:Time.t -> t * verdict
(** Like {!admit}, but for gossip probes. Probes are stamped when the
    sender's probe timer fires, so they routinely carry a newer
    timestamp than a ring control message of the same sender still in
    flight; to keep such a probe from shadowing the control message
    into a [Stale] rejection, probe freshness is tracked per sender in
    its own channel and never advances the staleness floor used by
    {!admit}. Fresh probes do count toward {!alive_list}. *)

val note_sent : t -> ts:Time.t -> t
(** Record a control message this process itself just sent: needed so a
    process never concurs with a suspicion of itself (it knows it
    spoke). *)

val last_heard : t -> Proc_id.t -> Time.t option
(** Send timestamp of the freshest control message accepted from the
    process. *)

val heard_after : t -> Proc_id.t -> since:Time.t -> bool
(** Has a control message with timestamp strictly greater than [since]
    been accepted from the process? Decides concurrence with a
    suspicion. *)

val alive_list : t -> now:Time.t -> Proc_set.t
(** Self plus every process heard from within the last N slots. *)

val forget : t -> Proc_id.t -> t
(** Erase the heard-from record of a process (used after it is excluded
    so a stale record cannot immediately re-admit it). *)

(** {1 Local health (Lifeguard)}

    When [Params.adaptive_suspicion] is set, evidence that {e this}
    process is running slowly — a late-rejected inbound message, or a
    local timer that fired well past its deadline — bumps a saturating
    local-health score. The surveillance timeout is the base
    [Params.suspicion_timeout] scaled by [1 + health], so a slow member
    stretches its own deadlines instead of wrongly suspecting timely
    peers (Lifeguard's local health multiplier, PAPERS.md). The score
    decays by one per elapsed cycle of fresh traffic. With adaptive
    suspicion off the score is pinned at 0 and every deadline is
    byte-identical to the paper's 2D rule. *)

val note_late_evidence : t -> now:Time.t -> t
(** Record lateness evidence against this process itself (no-op unless
    adaptive suspicion is enabled). *)

val health : t -> int
(** Current local-health score (0 = healthy). *)

val timeout : t -> Time.t
(** The surveillance deadline increment currently in force:
    [suspicion_timeout * (1 + health)]. *)

(** {1 Expected-sender surveillance} *)

val expect : t -> sender:Proc_id.t -> base:Time.t -> t
(** Arm surveillance: a control message from [sender] with timestamp >
    [base] is expected before [base + 2D]. *)

val suspend : t -> t
(** Stop ring surveillance (used in the n-failure state, where the
    slotted reconfiguration protocol takes over). *)

val expected : t -> Proc_id.t option
val deadline : t -> Time.t option
(** The synchronized time at which a timeout failure must be reported,
    when surveillance is armed. *)

val satisfied_by : t -> from:Proc_id.t -> ts:Time.t -> bool
(** Does an accepted control message satisfy the current surveillance
    (right sender, fresh enough timestamp)? *)

val timeout_suspect : t -> now:Time.t -> Proc_id.t option
(** When [now] has reached the deadline, the process to suspect (the
    expected sender); [None] when surveillance is not armed or not yet
    expired. *)

val pp : t Fmt.t
