(** The group-creator transition function (paper, Section 4.2, Fig. 2).

    This module is the pure heart of the membership protocol: given the
    current creator state and one classified event, it returns the next
    state and a list of directives for the surrounding automaton
    ([Member]) to execute. Keeping it pure and free of message plumbing
    lets the test suite drive every edge of the published state
    diagram directly (experiment E5's conformance matrix).

    Event classification (who is the suspect's successor, does this
    process concur, is the sender the ring predecessor, ...) is the
    caller's job; the environment record carries those facts. *)

open Tasim

type env = {
  self : Proc_id.t;
  group : Proc_set.t;  (** current group-list *)
  n : int;  (** team size *)
  majority : int;
  current_slot : int;
      (** global slot index now — fixes the abstention horizon when
          entering the n-failure state *)
  single_failure_election : bool;
      (** when false (ablation A3), suspicions go straight to the
          n-failure state instead of the no-decision ring *)
}

type event =
  | Fd_timeout of { suspect : Proc_id.t; since : Time.t }
      (** the failure detector reported a timeout failure; [since] is
          the surveillance base timestamp *)
  | Nd_received of {
      from : Proc_id.t;
      suspect : Proc_id.t;
      since : Time.t;
      concur : bool;
          (** this process has heard nothing from the suspect newer
              than [since] *)
      from_ring_predecessor : bool;
          (** the sender is this process's predecessor in the current
              group ring *)
    }
  | Decision_received of {
      from : Proc_id.t;
      from_expected : bool;  (** sender satisfies FD surveillance *)
      from_suspect : bool;  (** sender is the currently suspected process *)
      in_new_group : bool;
          (** true when the decision carries no membership change, or
              carries one whose group contains this process *)
    }
  | Reconfig_received of {
      from_expected : bool;  (** sender satisfies FD surveillance *)
      from_member : bool;
          (** sender is a member of this process's current group — in
              the wrong-suspicion state (whose FD may be suspended when
              the ring successor is this process itself) this is enough
              to join the reconfiguration, closing chaos-17 *)
    }
  | All_new_members_heard
      (** in n-failure, excluded from the new group, and decisions from
          every new-group member have now been received (the delayed
          switch to join, Section 4.2) *)

type directive =
  | Send_no_decision of { suspect : Proc_id.t; since : Time.t }
      (** broadcast a no-decision message requesting the suspect's
          removal *)
  | Exclude_and_decide of { suspect : Proc_id.t }
      (** single-failure election terminated at this process: remove
          the suspect, create the new group, become the decider *)
  | Take_over_decider
      (** wrong-suspicion resolution: assume the decider role using the
          suspect's last decision; membership unchanged *)
  | Resend_last_control
      (** this process is the suspect: retransmit its last control
          message *)
  | Start_reconfiguration
      (** entering n-failure: begin the slotted election, abstaining
          for N-1 slots *)
  | Adopt_decision
      (** accept the decision (merge oal, adopt any membership change) *)
  | Enter_join  (** excluded from the group: return to join state *)

val step :
  env -> Creator_state.t -> event -> Creator_state.t * directive list
(** One transition of Fig. 2. Events that the current state ignores
    return the state unchanged with no directives. *)

val pp_directive : directive Fmt.t
