open Tasim
open Broadcast
module CS = Creator_state

let take engine =
  List.filter_map
    (fun p ->
      match Engine.state_of engine p with
      | Some s -> Some (p, s)
      | None -> None)
    (Proc_id.all ~n:(Engine.n engine))

type violation = { property : string; detail : string }

let pp_violation ppf v = Fmt.pf ppf "%s: %s" v.property v.detail

let body_descr = function
  | Oal.Update info -> Fmt.str "update %a" Proposal.pp_id info.Oal.proposal_id
  | Oal.Membership { group; group_id } ->
    Fmt.str "membership #%a %a" Group_id.pp group_id Proc_set.pp group

let bodies_equal a b =
  match (a, b) with
  | Oal.Update x, Oal.Update y -> Proposal.id_equal x.Oal.proposal_id y.Oal.proposal_id
  | Oal.Membership m1, Oal.Membership m2 ->
    Group_id.equal m1.group_id m2.group_id && Proc_set.equal m1.group m2.group
  | Oal.Update _, Oal.Membership _ | Oal.Membership _, Oal.Update _ -> false

let is_up_to_date p s =
  (match CS.kind_of (Member.creator_state s) with
  | CS.KFailure_free | CS.KWrong_suspicion | CS.KOne_failure_receive
  | CS.KOne_failure_send ->
    true
  | CS.KJoin | CS.KN_failure -> false)
  && Member.has_group s
  && Proc_set.mem p (Member.group s)

let ordinals_consistent states =
  (* members of the newest group share one decider chain: their ordinal
     assignments must agree. (A stale epoch may hold void assignments
     from a decider that crashed before anyone heard it; those members
     are excluded or rejoin with a fresh replica, so they are out of
     scope here.) *)
  let utd = List.filter (fun (p, s) -> is_up_to_date p s) states in
  let newest =
    List.fold_left
      (fun acc (_, s) -> Group_id.max acc (Member.group_id s))
      Group_id.none utd
  in
  let cohort =
    List.filter (fun (_, s) -> Group_id.equal (Member.group_id s) newest) utd
  in
  let seen : (int, Proc_id.t * Oal.body) Hashtbl.t = Hashtbl.create 64 in
  List.concat_map
    (fun (p, s) ->
      List.filter_map
        (fun e ->
          match Hashtbl.find_opt seen e.Oal.ordinal with
          | None ->
            Hashtbl.add seen e.Oal.ordinal (p, e.Oal.body);
            None
          | Some (q, body) ->
            if bodies_equal body e.Oal.body then None
            else
              Some
                {
                  property = "ordinal consistency";
                  detail =
                    Fmt.str
                      "ordinal %d is %s at %a but %s at %a" e.Oal.ordinal
                      (body_descr body) Proc_id.pp q (body_descr e.Oal.body)
                      Proc_id.pp p;
                })
        (Oal.entries (Member.oal_of s)))
    cohort

let views_consistent ~n:_ states =
  let utd =
    List.filter_map
      (fun (p, s) ->
        if is_up_to_date p s then
          Some (p, Member.group_id s, Member.group s)
        else None)
      states
  in
  (* same gid -> same group *)
  let by_gid : (Group_id.t, Proc_id.t * Proc_set.t) Hashtbl.t =
    Hashtbl.create 8
  in
  List.filter_map
    (fun (p, gid, g) ->
      match Hashtbl.find_opt by_gid gid with
      | None ->
        Hashtbl.add by_gid gid (p, g);
        None
      | Some (q, g') ->
        if Proc_set.equal g g' then None
        else
          Some
            {
              property = "view agreement";
              detail =
                Fmt.str "group #%a is %a at %a but %a at %a" Group_id.pp gid
                  Proc_set.pp g' Proc_id.pp q Proc_set.pp g Proc_id.pp p;
            })
    utd

let epochs_monotone states =
  (* within one process's ordering and acknowledgement list, membership
     descriptors must carry strictly increasing (lexicographic) group
     ids in ordinal order: every view change either increments seq
     inside an epoch or moves to a later epoch's formation. A violation
     means an old-epoch view survived past a re-formation — exactly the
     collision the epoch-aware formation guard exists to prevent. *)
  List.concat_map
    (fun (p, s) ->
      let descriptors =
        List.filter_map
          (fun e ->
            match e.Oal.body with
            | Oal.Membership { group_id; _ } -> Some (e.Oal.ordinal, group_id)
            | Oal.Update _ -> None)
          (Oal.entries (Member.oal_of s))
      in
      let rec check = function
        | (o1, g1) :: ((o2, g2) :: _ as rest) ->
          if Group_id.later g2 ~than:g1 then check rest
          else
            {
              property = "epoch monotonicity";
              detail =
                Fmt.str
                  "%a holds membership #%a at ordinal %d not later than \
                   #%a at ordinal %d"
                  Proc_id.pp p Group_id.pp g2 o2 Group_id.pp g1 o1;
            }
            :: check rest
        | [ _ ] | [] -> []
      in
      check descriptors)
    states

let groups_majority ~n states =
  List.filter_map
    (fun (p, s) ->
      if
        Member.has_group s
        && Proc_set.mem p (Member.group s)
        && not (Proc_set.is_majority (Member.group s) ~n)
      then
        Some
          {
            property = "majority";
            detail =
              Fmt.str "%a holds non-majority group %a" Proc_id.pp p
                Proc_set.pp (Member.group s);
          }
      else None)
    states

let check_all ~n states =
  ordinals_consistent states
  @ views_consistent ~n states
  @ groups_majority ~n states
  @ epochs_monotone states
