open Tasim
open Broadcast
module C = Control_msg
module CS = Creator_state
module FD = Failure_detector
module GC = Group_creator

module Pmap = Map.Make (struct
  type t = Proc_id.t

  let compare = Proc_id.compare
end)

(* timer keys *)
let timer_expect = 1
let timer_decide = 2
let timer_slot = 3
let timer_gossip = 4

type persistent = { last_group_id : Group_id.t; last_group : Proc_set.t }

type ('u, 'app) config = {
  params : Params.t;
  apply : 'app -> 'u -> 'app;
  initial_app : 'app;
  persist : self:Proc_id.t -> now:Time.t -> persistent -> unit;
  restore : self:Proc_id.t -> now:Time.t -> persistent option;
}

let config ?apply ?persist ?restore ~initial_app params =
  let apply = match apply with Some f -> f | None -> fun app _ -> app in
  let persist =
    match persist with Some f -> f | None -> fun ~self:_ ~now:_ _ -> ()
  in
  let restore =
    match restore with Some f -> f | None -> fun ~self:_ ~now:_ -> None
  in
  { params; apply; initial_app; persist; restore }

type 'u obs =
  | View_installed of { group : Proc_set.t; group_id : Group_id.t }
  | Delivered of { proposal : 'u Proposal.t; ordinal : int option }
  | Transition of { from_ : CS.kind; to_ : CS.kind }
  | Suspected of { suspect : Proc_id.t }
  | Late_rejected of { from : Proc_id.t }
  | Became_decider
  | Excluded

let pp_obs ppf = function
  | View_installed { group; group_id } ->
    Fmt.pf ppf "view#%a%a" Group_id.pp group_id Proc_set.pp group
  | Delivered { proposal; ordinal } ->
    Fmt.pf ppf "delivered(%a ord=%a)" Proposal.pp_id proposal.Proposal.id
      Fmt.(option ~none:(any "-") int)
      ordinal
  | Transition { from_; to_ } ->
    Fmt.pf ppf "%a->%a" CS.pp_kind from_ CS.pp_kind to_
  | Suspected { suspect } -> Fmt.pf ppf "suspected(%a)" Proc_id.pp suspect
  | Late_rejected { from } -> Fmt.pf ppf "late-rejected(%a)" Proc_id.pp from
  | Became_decider -> Fmt.string ppf "became-decider"
  | Excluded -> Fmt.string ppf "excluded"

type peer_view = {
  pv_ts : Time.t;
  pv_view : Oal.t;
  pv_dpd : Oal.update_info list;
}

type join_info = { ji_ts : Time.t; ji_list : Proc_set.t; ji_epoch : int }

type reconfig_info = {
  rc_ts : Time.t;
  rc_list : Proc_set.t;
  rc_last_decision_ts : Time.t;
}

type alive_info = { ai_ts : Time.t; ai_alive : Proc_set.t }

(* Per-call working storage for [recover_missing], hoisted so the
   surveillance-driven recovery path allocates no fresh table per call.
   The arrays are indexed by holder proc id; [sc_holders] lists the
   dirty slots in reverse touch order. Always left empty between calls.
   The scratch is shared by every functional copy of the state — it
   carries no state across calls, so sharing is safe. *)
type scratch = {
  sc_ids : Proposal.id list array; (* per holder, newest first *)
  mutable sc_holders : int list;
}

type ('u, 'app) state = {
  cfg : ('u, 'app) config;
  self : Proc_id.t;
  n : int;
  creator : CS.t;
  group : Proc_set.t;
  group_id : Group_id.t; (* Group_id.none until a first group is known *)
  form_epoch : int;
      (* epoch any initial formation this process takes part in must
         use: 0 cold, one above the persisted epoch after recovery,
         ratcheted up to the largest epoch heard in a join message *)
  fd : FD.t;
  oal : Oal.t;
  buffers : 'u Buffers.t;
  next_seq : int;
  last_decision_ts : Time.t;
  decider : bool;
  last_control_sent : ('u, 'app) C.t option;
  app : 'app;
  join_msgs : join_info Pmap.t;
  reconfig_msgs : reconfig_info Pmap.t;
  peer_views : peer_view Pmap.t;
  alive_views : alive_info Pmap.t;
  pending_new_group : (Group_id.t * Proc_set.t * Proc_set.t) option;
      (* excluded while in n-failure: (group_id, group, members heard) *)
  gossip_q : C.decision Dissemination.Queue.t;
      (* decisions awaiting piggybacked forwarding (gossip mode only);
         doubles as the seen-rank dedup for gossiped copies *)
  gossip_round : int; (* probe rounds sent, drives target rotation *)
  gossip_due : Time.t; (* when the armed gossip timer ought to fire *)
  scratch : scratch;
}

type ('u, 'app) eff = (('u, 'app) C.t, 'u obs) Engine.effect

let creator_state s = s.creator
let group s = s.group
let group_id s = s.group_id
let form_epoch s = s.form_epoch
let has_group s = Group_id.is_known s.group_id
let is_decider s = s.decider
let app s = s.app
let oal_of s = s.oal
let buffers_of s = s.buffers
let alive_list s ~now = FD.alive_list s.fd ~now
let failure_detector s = s.fd

let submit ~semantics payload = C.Submit { semantics; payload }

let params s = s.cfg.params
let majority s = Params.majority (params s)

let env_of s ~clock =
  {
    GC.self = s.self;
    group = s.group;
    n = s.n;
    majority = majority s;
    current_slot = Slots.index (params s) clock;
    single_failure_election = (params s).Params.single_failure_election;
  }

(* ------------------------------------------------------------------ *)
(* small helpers producing (state, effect list)                        *)

let member_of_current_group s =
  Group_id.is_known s.group_id && Proc_set.mem s.self s.group

(* ------------------------------------------------------------------ *)
(* gossip dissemination helpers                                        *)

let gossip_mode s =
  match (params s).Params.dissemination with
  | Dissemination.Gossip _ -> true
  | Dissemination.All_to_all -> false

(* Rank of a decision for the piggyback queue: formation epoch first
   (a decision of a later incarnation supersedes any queued older-epoch
   one), decision timestamp within the epoch. *)
let decision_rank (d : C.decision) =
  let epoch =
    match Oal.latest_membership d.C.d_oal with
    | Some (_, _, gid) -> Group_id.epoch gid
    | None -> 0
  in
  (epoch, Time.to_us d.C.d_ts)

(* Queue a decision for piggybacked forwarding. Returns whether it was
   fresh (rank above everything this process already gossiped): stale
   gossiped copies are neither re-adopted nor re-forwarded. No-op under
   all-to-all. *)
let gossip_enqueue s (d : C.decision) =
  match (params s).Params.dissemination with
  | Dissemination.All_to_all -> (s, false)
  | Dissemination.Gossip { max_forwards; _ } ->
    let epoch, stamp = decision_rank d in
    let gossip_q, fresh =
      Dissemination.Queue.push s.gossip_q ~epoch ~stamp ~forwards:max_forwards
        d
    in
    ({ s with gossip_q }, fresh)

(* Stable storage: record the installed view. Called at every view
   install so a recovered incarnation knows the epoch it must form
   above (chaos-11: an amnesiac majority re-forming a colliding
   epoch). *)
let persist_view s ~clock =
  s.cfg.persist ~self:s.self ~now:clock
    { last_group_id = s.group_id; last_group = s.group }

let can_deliver s =
  member_of_current_group s && CS.kind_of s.creator <> CS.KJoin

let fsm_transition s creator' : ('u, 'app) eff list =
  let from_ = CS.kind_of s.creator and to_ = CS.kind_of creator' in
  if CS.equal_kind from_ to_ then []
  else [ Engine.Observe (Transition { from_; to_ }) ]

(* Keep the engine timer for the FD surveillance deadline in sync. *)
let sync_expect_timer s : ('u, 'app) eff list =
  match FD.deadline s.fd with
  | Some dl -> [ Engine.Set_timer { key = timer_expect; at_clock = dl } ]
  | None -> [ Engine.Cancel_timer timer_expect ]

let my_view s =
  Oal.ack_all_received s.oal
    ~received:(fun id -> Buffers.received s.buffers id)
    ~by:s.self

let dpd_infos s =
  List.filter_map
    (fun id ->
      match Buffers.get s.buffers id with
      | Some (p : 'u Proposal.t) ->
        Some
          {
            Oal.proposal_id = p.Proposal.id;
            semantics = p.Proposal.semantics;
            send_ts = p.Proposal.send_ts;
            hdo = p.Proposal.hdo;
          }
      | None -> None)
    (Buffers.dpd s.buffers)

let deliver s ~clock : ('u, 'app) state * ('u, 'app) eff list =
  if not (can_deliver s) then (s, [])
  else begin
    let deliveries, buffers =
      Delivery.step ~oal:s.oal ~buffers:s.buffers ~now_sync:clock
        ~timed_delay:(params s).Params.timed_delay
    in
    let app =
      List.fold_left
        (fun app { Delivery.proposal; _ } ->
          s.cfg.apply app proposal.Proposal.payload)
        s.app deliveries
    in
    let effects =
      List.map
        (fun { Delivery.proposal; ordinal } ->
          Engine.Observe (Delivered { proposal; ordinal }))
        deliveries
    in
    ({ s with buffers; app }, effects)
  end

(* Negative acknowledgements for updates the oal proves exist but we
   never received: ask the ring-wise closest acknowledged holder.
   Missing updates are batched per holder in the reused scratch arrays
   (one slot per process) instead of a per-call hash table, and the
   oal is walked directly instead of materializing a missing-list. *)
let recover_missing s : ('u, 'app) eff list =
  let sc = s.scratch in
  Oal.iter_entries s.oal (fun e ->
      match e.Oal.body with
      | Oal.Update info
        when (not (Buffers.received s.buffers info.Oal.proposal_id))
             && not e.Oal.undeliverable -> (
        (* ask a holder that is still a group member; an acknowledged
           departed process can no longer retransmit *)
        let holders =
          let members = Proc_set.inter e.Oal.acks s.group in
          if Proc_set.is_empty members then e.Oal.acks else members
        in
        match Proc_set.successor_in holders s.self ~n:s.n with
        | Some holder ->
          let hi = Proc_id.to_int holder in
          if sc.sc_ids.(hi) = [] then sc.sc_holders <- hi :: sc.sc_holders;
          sc.sc_ids.(hi) <- info.Oal.proposal_id :: sc.sc_ids.(hi)
        | None -> ())
      | Oal.Update _ | Oal.Membership _ -> ());
  let effs =
    List.fold_left
      (fun acc hi ->
        let ids = sc.sc_ids.(hi) in
        sc.sc_ids.(hi) <- [];
        Engine.Send (Proc_id.of_int hi, C.Nack { missing = List.rev ids })
        :: acc)
      [] sc.sc_holders
  in
  sc.sc_holders <- [];
  effs

let housekeeping_oal s =
  let oal = Oal.refresh_stability s.oal ~group:s.group in
  let oal =
    Oal.purge_stable oal ~delivered:(fun o ->
        Buffers.delivered_ordinal s.buffers o)
  in
  let low = Oal.low oal in
  let buffers = Buffers.compact s.buffers ~purged:(fun o -> o < low) in
  { s with oal; buffers }

(* Record a control message we are about to broadcast: remember it for
   wrong-suspicion retransmission and, for ring messages (decisions and
   no-decisions), point the surveillance at our own successor — except
   under gossip dissemination, where surveillance always watches the
   ring predecessor (it is fed by the predecessor's probes, not by
   every member's broadcasts), so a ring send re-arms the predecessor
   watch instead. *)
let send_control s ~ring ~ts msg : ('u, 'app) state * ('u, 'app) eff list =
  let s =
    { s with last_control_sent = Some msg; fd = FD.note_sent s.fd ~ts }
  in
  if not ring then (s, [ Engine.Broadcast msg ])
  else if gossip_mode s then begin
    match Proc_set.predecessor_in s.group s.self ~n:s.n with
    | Some pred when not (Proc_id.equal pred s.self) ->
      let s = { s with fd = FD.expect s.fd ~sender:pred ~base:ts } in
      (s, Engine.Broadcast msg :: sync_expect_timer s)
    | Some _ | None -> (s, [ Engine.Broadcast msg ])
  end
  else begin
    match Proc_set.successor_in s.group s.self ~n:s.n with
    | Some next ->
      let s = { s with fd = FD.expect s.fd ~sender:next ~base:ts } in
      (s, (Engine.Broadcast msg :: sync_expect_timer s))
    | None -> (s, [ Engine.Broadcast msg ])
  end

(* ------------------------------------------------------------------ *)
(* decision construction                                               *)

(* Append descriptors (assign ordinals) for every buffered proposal that
   is not yet ordered and not locally marked undeliverable. *)
let order_pending s ~clock =
  let oal, buffers =
    List.fold_left
      (fun (oal, buffers) (p : 'u Proposal.t) ->
        if Oal.mem_update oal p.Proposal.id then (oal, buffers)
        else if Buffers.is_marked buffers p.Proposal.id ~now:clock then
          (oal, buffers)
        else
          let info =
            {
              Oal.proposal_id = p.Proposal.id;
              semantics = p.Proposal.semantics;
              send_ts = p.Proposal.send_ts;
              hdo = p.Proposal.hdo;
            }
          in
          (* the ack bit means "has merged an oal containing this
             descriptor (and holds the payload)": only the appender
             qualifies at append time — pre-acking the origin would let
             the entry stabilize and be purged before the origin ever
             learned its ordinal, leaving it a silent gap *)
          let acks = Proc_set.singleton s.self in
          let oal, ordinal = Oal.append_update oal info ~acks in
          (oal, Buffers.note_ordinal buffers p.Proposal.id ordinal))
      (s.oal, s.buffers) (Buffers.stored s.buffers)
  in
  { s with oal; buffers }

(* Integration of joiners (Section 4.2): a decider adds process p to the
   group when every current member's (fresh) piggybacked alive-list
   contains p. Also detect members that never got their state transfer
   (still sending join messages) and re-send it. *)
let joiners_ready s ~clock =
  let fresh_alive m =
    if Proc_id.equal m s.self then Some (FD.alive_list s.fd ~now:clock)
    else
      match Pmap.find_opt m s.alive_views with
      | Some { ai_ts; ai_alive }
        when Time.compare (Time.sub clock ai_ts)
               (Params.alive_window (params s))
             <= 0 ->
        Some ai_alive
      | Some _ | None -> None
  in
  let all_views =
    Proc_set.fold
      (fun m acc ->
        match acc with
        | None -> None
        | Some views -> (
          match fresh_alive m with
          | Some v -> Some (v :: views)
          | None -> None))
      s.group (Some [])
  in
  match all_views with
  | None -> Proc_set.empty (* missing a fresh view: integrate nothing *)
  | Some views ->
    let everywhere p = List.for_all (Proc_set.mem p) views in
    let candidates =
      Proc_set.diff (FD.alive_list s.fd ~now:clock) s.group
    in
    Proc_set.filter everywhere candidates

let needs_transfer_refresh s ~clock =
  (* members still in join state keep sending join messages *)
  Proc_set.filter
    (fun m ->
      (not (Proc_id.equal m s.self))
      &&
      match Pmap.find_opt m s.join_msgs with
      | Some { ji_ts; _ } ->
        Time.compare (Time.sub clock ji_ts) (Params.cycle (params s)) <= 0
      | None -> false)
    s.group

let state_transfer_msg s ~ts =
  C.State_transfer
    {
      st_ts = ts;
      st_group = s.group;
      st_group_id = s.group_id;
      st_oal = s.oal;
      st_app = s.app;
      st_buffers = s.buffers;
    }

(* The decider's decision send: integrate joiners, order pending
   proposals, refresh/purge the oal, broadcast, hand the role over. *)
let send_decision s ~clock : ('u, 'app) state * ('u, 'app) eff list =
  let s = { s with oal = my_view s } in
  let joiners = joiners_ready s ~clock in
  let s, view_effects =
    if Proc_set.is_empty joiners then (s, [])
    else begin
      let group = Proc_set.union s.group joiners in
      let group_id = Group_id.succ s.group_id in
      let oal, _ = Oal.append_membership s.oal ~group ~group_id in
      let s = { s with group; group_id; oal } in
      persist_view s ~clock;
      (s, [ Engine.Observe (View_installed { group; group_id }) ])
    end
  in
  let s = order_pending s ~clock in
  let s = housekeeping_oal s in
  let ts = clock in
  let d =
    { C.d_ts = ts; d_oal = s.oal; d_alive = FD.alive_list s.fd ~now:clock }
  in
  let msg = C.Decision d in
  let s = { s with decider = false; last_decision_ts = ts } in
  let s, send_effects =
    if not (gossip_mode s) then send_control s ~ring:true ~ts msg
    else begin
      (* gossip: the decision travels point-to-point to the ring
         successor — it hands over the decider role and satisfies the
         successor's surveillance of us — and reaches everyone else by
         riding our (and then their) probes *)
      let s =
        { s with last_control_sent = Some msg; fd = FD.note_sent s.fd ~ts }
      in
      let s, _ = gossip_enqueue s d in
      match Proc_set.successor_in s.group s.self ~n:s.n with
      | Some next when not (Proc_id.equal next s.self) ->
        (s, [ Engine.Send (next, msg) ])
      | Some _ | None -> (s, [])
    end
  in
  let transfer_targets =
    Proc_set.union joiners (needs_transfer_refresh s ~clock)
  in
  let transfer_effects =
    Proc_set.fold
      (fun p acc -> Engine.Send (p, state_transfer_msg s ~ts) :: acc)
      transfer_targets []
  in
  let s, deliver_effects = deliver s ~clock in
  (s, view_effects @ send_effects @ transfer_effects @ deliver_effects)

let become_decider s ~clock : ('u, 'app) state * ('u, 'app) eff list =
  if s.decider then (s, [])
  else begin
    let s = { s with decider = true } in
    let delay =
      if (params s).Params.eager_decisions then Time.of_us 1
      else (params s).Params.d
    in
    ( s,
      [
        Engine.Set_timer { key = timer_decide; at_clock = Time.add clock delay };
        Engine.Observe Became_decider;
      ] )
  end

(* ------------------------------------------------------------------ *)
(* group-changing decisions (elections)                                *)

(* Rebuild the oal as the new decider of [new_group]: merge the views
   collected from the no-decision / reconfiguration messages of the new
   members, classify and mark undeliverable proposals, append the dpd
   descriptors every member reported, and append the membership
   descriptor. *)
let create_group s ~clock ~new_group : ('u, 'app) state * ('u, 'app) eff list =
  let departed = Proc_set.diff s.group new_group in
  (* 1. my own view, acks refreshed *)
  let oal = my_view s in
  (* 2. merge peer views *)
  let oal =
    Proc_set.fold
      (fun m oal ->
        match Pmap.find_opt m s.peer_views with
        | Some { pv_view; _ } -> Oal.merge ~local:oal ~incoming:pv_view
        | None -> oal)
      new_group oal
  in
  (* 3. classify undeliverable proposals *)
  let highest_known = Oal.highest_ordinal oal in
  let classified =
    Undeliverable.classify ~oal ~departed ~highest_known_ordinal:highest_known
  in
  let oal = Undeliverable.apply ~oal classified in
  (* 4. append dpd descriptors reported by new members (and self) *)
  let dpd_all =
    let own = List.map (fun info -> (info, s.self)) (dpd_infos s) in
    Proc_set.fold
      (fun m acc ->
        match Pmap.find_opt m s.peer_views with
        | Some { pv_dpd; _ } ->
          List.map (fun info -> (info, m)) pv_dpd @ acc
        | None -> acc)
      new_group own
  in
  let oal =
    List.fold_left
      (fun oal ((info : Oal.update_info), reporter) ->
        if Oal.mem_update oal info.Oal.proposal_id then
          Oal.ack_update oal info.Oal.proposal_id reporter
        else
          fst
            (Oal.append_update oal info
               ~acks:(Proc_set.singleton reporter)))
      oal dpd_all
  in
  let s = { s with oal } in
  (* 5. block further proposals from departed members for one cycle and
     purge marked payloads *)
  let expires = Time.add clock (Params.cycle (params s)) in
  let buffers =
    Proc_set.fold
      (fun q buffers -> Buffers.block_origin buffers q ~expires)
      departed s.buffers
  in
  let buffers = Buffers.purge_marked buffers ~now:clock in
  let s = { s with buffers } in
  (* 6. order surviving pending proposals, filtering departed-origin
     ones that the pending rules condemn *)
  let undeliv_ordinals =
    List.filter_map
      (fun e -> if e.Oal.undeliverable then Some e.Oal.ordinal else None)
      (Oal.entries s.oal)
  in
  let s =
    let buffers =
      List.fold_left
        (fun buffers (p : 'u Proposal.t) ->
          let origin = p.Proposal.id.Proposal.origin in
          if
            Proc_set.mem origin departed
            && (not (Oal.mem_update s.oal p.Proposal.id))
            && Undeliverable.pending_category
                 ~undeliverable_ordinals:undeliv_ordinals
                 ~highest_known_ordinal:highest_known
                 ~semantics:p.Proposal.semantics ~hdo:p.Proposal.hdo
               <> None
          then Buffers.mark_undeliverable buffers p.Proposal.id ~expires
          else buffers)
        s.buffers (Buffers.stored s.buffers)
    in
    { s with buffers }
  in
  let s = order_pending s ~clock in
  (* 7. membership descriptor and adoption *)
  let group_id = Group_id.succ s.group_id in
  let oal, _ = Oal.append_membership s.oal ~group:new_group ~group_id in
  let s = { s with oal; group = new_group; group_id } in
  persist_view s ~clock;
  let view_effect =
    Engine.Observe (View_installed { group = new_group; group_id })
  in
  (* 8. housekeeping and broadcast as the new decider. Election
     outcomes are always broadcast, even under gossip dissemination:
     every survivor must learn the new view promptly, and electors may
     have their probe surveillance suspended. The copy is also queued
     for gossip so probes keep re-carrying it to anyone who missed the
     broadcast. *)
  let s = housekeeping_oal s in
  let ts = clock in
  let d =
    { C.d_ts = ts; d_oal = s.oal; d_alive = FD.alive_list s.fd ~now:clock }
  in
  let msg = C.Decision d in
  let s = { s with decider = false; last_decision_ts = ts } in
  let s, _ = gossip_enqueue s d in
  let s, send_effects = send_control s ~ring:true ~ts msg in
  let s, deliver_effects = deliver s ~clock in
  (s, (view_effect :: send_effects) @ deliver_effects)

(* ------------------------------------------------------------------ *)
(* directive execution                                                 *)

let make_no_decision s ~clock ~suspect ~since =
  C.No_decision
    {
      nd_ts = clock;
      nd_suspect = suspect;
      nd_since = since;
      nd_view = my_view s;
      nd_dpd = dpd_infos s;
      nd_alive = FD.alive_list s.fd ~now:clock;
    }

let make_reconfig s ~clock ~list =
  C.Reconfig
    {
      r_ts = clock;
      r_list = list;
      r_last_decision_ts = s.last_decision_ts;
      r_view = my_view s;
      r_dpd = dpd_infos s;
      r_alive = FD.alive_list s.fd ~now:clock;
    }

let enter_join s : ('u, 'app) state * ('u, 'app) eff list =
  let s =
    {
      s with
      decider = false;
      fd = FD.suspend s.fd;
      join_msgs = Pmap.empty;
      pending_new_group = None;
    }
  in
  ( s,
    [
      Engine.Cancel_timer timer_expect;
      Engine.Cancel_timer timer_decide;
      Engine.Observe Excluded;
    ] )

let exec_directive (s, effects) ~clock directive =
  match directive with
  | GC.Send_no_decision { suspect; since } ->
    let expires = Time.add clock (Params.cycle (params s)) in
    let s =
      { s with buffers = Buffers.block_origin s.buffers suspect ~expires }
    in
    let msg = make_no_decision s ~clock ~suspect ~since in
    let s, send_effects = send_control s ~ring:true ~ts:clock msg in
    (s, effects @ send_effects)
  | GC.Exclude_and_decide { suspect } ->
    let new_group = Proc_set.remove suspect s.group in
    let s, create_effects = create_group s ~clock ~new_group in
    (s, effects @ create_effects)
  | GC.Take_over_decider ->
    let s, decider_effects = become_decider s ~clock in
    (s, effects @ decider_effects)
  | GC.Resend_last_control -> (
    match s.last_control_sent with
    | Some msg -> (s, effects @ [ Engine.Broadcast msg ])
    | None -> (s, effects))
  | GC.Start_reconfiguration ->
    let s = { s with decider = false; fd = FD.suspend s.fd } in
    let msg = make_reconfig s ~clock ~list:Proc_set.empty in
    let s, send_effects = send_control s ~ring:false ~ts:clock msg in
    ( s,
      effects
      @ [ Engine.Cancel_timer timer_expect; Engine.Cancel_timer timer_decide ]
      @ send_effects )
  | GC.Adopt_decision ->
    (* performed inline by the decision handler, which has the payload *)
    (s, effects)
  | GC.Enter_join ->
    let s, join_effects = enter_join s in
    (s, effects @ join_effects)

let run_fsm s ~clock event : ('u, 'app) state * GC.directive list * ('u, 'app) eff list =
  let creator', directives = GC.step (env_of s ~clock) s.creator event in
  let transition_effects = fsm_transition s creator' in
  ({ s with creator = creator' }, directives, transition_effects)

(* ------------------------------------------------------------------ *)
(* message handlers                                                    *)

let on_submit s ~clock ~semantics payload =
  if not (member_of_current_group s) then
    (s, [ Engine.Log "submit dropped: not a group member" ])
  else begin
    let proposal =
      Proposal.make ~origin:s.self ~seq:s.next_seq ~semantics ~send_ts:clock
        ~hdo:(Buffers.highest_delivered_ordinal s.buffers)
        payload
    in
    let buffers, _ = Buffers.store s.buffers proposal in
    let s = { s with buffers; next_seq = s.next_seq + 1 } in
    let s = { s with oal = Oal.ack_update s.oal proposal.Proposal.id s.self } in
    let s, deliver_effects = deliver s ~clock in
    (s, Engine.Broadcast (C.Proposal_msg proposal) :: deliver_effects)
  end

let on_proposal s ~clock (p : 'u Proposal.t) =
  if Buffers.is_marked s.buffers p.Proposal.id ~now:clock then (s, [])
  else begin
    let buffers, fresh = Buffers.store s.buffers p in
    if not fresh then (s, [])
    else begin
      let s = { s with buffers } in
      let s = { s with oal = Oal.ack_update s.oal p.Proposal.id s.self } in
      deliver s ~clock
    end
  end

let on_nack s ~src missing =
  let resend =
    List.filter_map
      (fun id ->
        match Buffers.get s.buffers id with
        | Some p -> Some (Engine.Send (src, C.Retransmit p))
        | None -> None)
      missing
  in
  (s, resend)

(* Only majority groups are valid membership descriptors (Section 3,
   property 5); anything else is noise from outside the failure model
   and is ignored defensively. *)
let valid_membership s oal =
  match Oal.latest_membership oal with
  | Some (_, grp, gid) when Proc_set.is_majority grp ~n:s.n ->
    Some (grp, gid)
  | Some _ | None -> None

(* Adoption of an accepted decision message: merge the oal, learn
   ordinals, adopt any newer membership descriptor, recover losses,
   deliver. Returns the updated state plus whether the decision named a
   new group that excludes this process. *)
let adopt_decision s ~clock ~(d : C.decision) =
  let s =
    (* A decision of a later incarnation (strictly higher formation
       epoch) carries the fresh history of a group formed after this
       process's group died. The local history must not be merged into
       it ordinal by ordinal — stale descriptors would land above the
       new formation and break epoch monotonicity — so it is replaced
       wholesale, as a state transfer replaces it. *)
    let incoming_epoch =
      match Oal.latest_membership d.C.d_oal with
      | Some (_, _, gid) -> Group_id.epoch gid
      | None -> 0
    in
    if incoming_epoch > Group_id.epoch s.group_id then
      { s with oal = d.C.d_oal }
    else { s with oal = Oal.merge ~local:s.oal ~incoming:d.C.d_oal }
  in
  let s = { s with oal = my_view s } in
  (* learn ordinals for unordered-delivered updates *)
  let s =
    List.fold_left
      (fun s e ->
        match e.Oal.body with
        | Oal.Update info ->
          {
            s with
            buffers =
              Buffers.note_ordinal s.buffers info.Oal.proposal_id
                e.Oal.ordinal;
          }
        | Oal.Membership _ -> s)
      s (Oal.entries s.oal)
  in
  let s, view_effects, excluded =
    match valid_membership s s.oal with
    | Some (grp, gid) when Group_id.later gid ~than:s.group_id ->
      if Proc_set.mem s.self grp then
        if CS.kind_of s.creator = CS.KJoin && Group_id.seq gid > 0 then
          (* joining an existing group: adoption waits for the state
             transfer, which carries the replica state *)
          (s, [], false)
        else begin
          let s = { s with group = grp; group_id = gid } in
          persist_view s ~clock;
          ( s,
            [ Engine.Observe (View_installed { group = grp; group_id = gid }) ],
            false )
        end
      else (s, [], true)
    | Some _ | None -> (s, [], false)
  in
  let s =
    { s with last_decision_ts = Time.max s.last_decision_ts d.C.d_ts }
  in
  let s = housekeeping_oal s in
  let nacks = recover_missing s in
  let s, deliver_effects = deliver s ~clock in
  (s, view_effects @ nacks @ deliver_effects, excluded)

(* Should the FSM treat this decision as "contains me"? A decision with
   no newer membership descriptor keeps the current group. While in the
   join state, a membership descriptor of a later group (id > 0) is
   only actionable once the state transfer arrives. *)
let decision_in_new_group s (d : C.decision) =
  match valid_membership s d.C.d_oal with
  | Some (grp, gid) when Group_id.later gid ~than:s.group_id ->
    if Proc_set.mem s.self grp then
      not (CS.kind_of s.creator = CS.KJoin && Group_id.seq gid > 0)
    else false
  | Some _ | None -> Group_id.is_known s.group_id

(* Track decisions from the members of a new group that excluded us (the
   delayed switch to join in the n-failure state). *)
let track_exclusion s ~src (d : C.decision) =
  match valid_membership s d.C.d_oal with
  | Some (grp, gid)
    when Group_id.later gid ~than:s.group_id
         && not (Proc_set.mem s.self grp) ->
    let gid0, grp0, heard =
      match s.pending_new_group with
      | Some (g_id, g, h) when Group_id.compare g_id gid >= 0 -> (g_id, g, h)
      | Some _ | None -> (gid, grp, Proc_set.empty)
    in
    let heard =
      if Proc_set.mem src grp0 then Proc_set.add src heard else heard
    in
    let complete = Proc_set.equal heard grp0 in
    ({ s with pending_new_group = Some (gid0, grp0, heard) }, complete)
  | Some _ | None -> (s, false)

let realign_surveillance s ~from ~ts =
  (* after accepting a ring control message (decision / no-decision)
     from a group member, expect its successor next — unless the ring is
     suspended (join, n-failure). When the successor is this process
     itself there is nobody to surveil: our own next send re-arms the
     surveillance (and if we fail to send, the others exclude us).

     Under gossip dissemination the watch relation is fixed instead of
     rotating: each member watches its ring predecessor, whose probes
     (or direct decision sends) arrive every probe period. A fresh
     control message from the predecessor re-arms the watch; messages
     from anyone else arm it only when it is idle (e.g. right after a
     view change). *)
  match CS.kind_of s.creator with
  | CS.KJoin | CS.KN_failure -> s
  | CS.KFailure_free | CS.KWrong_suspicion | CS.KOne_failure_receive
  | CS.KOne_failure_send ->
    if gossip_mode s then begin
      match Proc_set.predecessor_in s.group s.self ~n:s.n with
      | Some pred when Proc_id.equal pred s.self ->
        { s with fd = FD.suspend s.fd }
      | Some pred
        when Proc_id.equal pred from || FD.expected s.fd = None ->
        { s with fd = FD.expect s.fd ~sender:pred ~base:ts }
      | Some _ | None -> s
    end
    else begin
      match Proc_set.successor_in s.group from ~n:s.n with
      | Some next when Proc_id.equal next s.self ->
        { s with fd = FD.suspend s.fd }
      | Some next -> { s with fd = FD.expect s.fd ~sender:next ~base:ts }
      | None -> s
    end

let current_suspect s =
  match s.creator with
  | CS.Wrong_suspicion { suspect }
  | CS.One_failure_receive { suspect; _ }
  | CS.One_failure_send { suspect; _ } ->
    Some suspect
  | CS.Join | CS.Failure_free | CS.N_failure _ -> None

let on_decision s ~clock ~src (d : C.decision) =
  (* a decision announcing a newer group that contains us is an election
     outcome: it is authoritative regardless of where our ring pointer
     was when the election ran *)
  let election_outcome =
    match valid_membership s d.C.d_oal with
    | Some (grp, gid) ->
      Group_id.later gid ~than:s.group_id && Proc_set.mem s.self grp
    | None -> false
  in
  let from_expected =
    FD.satisfied_by s.fd ~from:src ~ts:d.C.d_ts || election_outcome
  in
  let from_suspect =
    match current_suspect s with
    | Some q -> Proc_id.equal q src
    | None -> false
  in
  let in_new_group = decision_in_new_group s d in
  let s, directives, transition_effects =
    run_fsm s ~clock
      (GC.Decision_received { from = src; from_expected; from_suspect; in_new_group })
  in
  let adopt = List.mem GC.Adopt_decision directives in
  let s, adopt_effects, excluded =
    if adopt then adopt_decision s ~clock ~d else (s, [], false)
  in
  (* under gossip, a directly received decision is queued so our own
     probes forward it onward (no-op under all-to-all) *)
  let s = if adopt then fst (gossip_enqueue s d) else s in
  (* delayed join switch bookkeeping while in n-failure *)
  let s, all_heard =
    match CS.kind_of s.creator with
    | CS.KN_failure when excluded -> track_exclusion s ~src d
    | _ -> (s, false)
  in
  let s, directives2, transition_effects2 =
    if all_heard then run_fsm s ~clock GC.All_new_members_heard
    else (s, [], [])
  in
  (* execute the remaining directives *)
  let s, directive_effects =
    List.fold_left
      (fun acc dir ->
        match dir with GC.Adopt_decision -> acc | _ -> exec_directive acc ~clock dir)
      (s, [])
      (directives @ directives2)
  in
  (* surveillance and decider handover *)
  let s = realign_surveillance s ~from:src ~ts:d.C.d_ts in
  let s, decider_effects =
    match CS.kind_of s.creator with
    | CS.KFailure_free
      when member_of_current_group s
           && (match Proc_set.successor_in s.group src ~n:s.n with
              | Some next -> Proc_id.equal next s.self
              | None -> false) ->
      become_decider s ~clock
    | _ -> (s, [])
  in
  ( s,
    transition_effects @ adopt_effects @ transition_effects2
    @ directive_effects @ decider_effects @ sync_expect_timer s )

let on_no_decision s ~clock ~src (nd : 'u C.no_decision) =
  let s =
    {
      s with
      peer_views =
        Pmap.add src
          { pv_ts = nd.C.nd_ts; pv_view = nd.C.nd_view; pv_dpd = nd.C.nd_dpd }
          s.peer_views;
    }
  in
  (* a no-decision about a process that is no longer (or not yet) in our
     group is from an already-settled election: record the view above,
     but do not re-open the suspicion *)
  if
    Group_id.is_known s.group_id
    && not (Proc_set.mem nd.C.nd_suspect s.group)
  then (s, [])
  else
  let concur =
    not (FD.heard_after s.fd nd.C.nd_suspect ~since:nd.C.nd_since)
  in
  let from_ring_predecessor =
    match Proc_set.predecessor_in s.group s.self ~n:s.n with
    | Some pred -> Proc_id.equal pred src
    | None -> false
  in
  let s = realign_surveillance s ~from:src ~ts:nd.C.nd_ts in
  let s, directives, transition_effects =
    run_fsm s ~clock
      (GC.Nd_received
         {
           from = src;
           suspect = nd.C.nd_suspect;
           since = nd.C.nd_since;
           concur;
           from_ring_predecessor;
         })
  in
  let s, directive_effects =
    List.fold_left (fun acc dir -> exec_directive acc ~clock dir) (s, [])
      directives
  in
  (s, transition_effects @ directive_effects @ sync_expect_timer s)

let on_join_msg s ~src (j : C.join) =
  let s =
    {
      s with
      join_msgs =
        Pmap.add src
          { ji_ts = j.C.j_ts; ji_list = j.C.j_list; ji_epoch = j.C.j_epoch }
          s.join_msgs;
      (* epoch ratchet: a process recovering into a team whose other
         recovered members persisted a later epoch must form at that
         later epoch, or mixed-epoch join lists would never agree *)
      form_epoch = max s.form_epoch j.C.j_epoch;
    }
  in
  (* Epoch-join rescue. A member stuck in the n-failure state has an
     election that cannot complete (the survivors of its group are
     fewer than a team majority — only possible after its group lost
     members to crashes). A join message at a strictly higher epoch
     than its own group proves one of those crashed members is back
     and forming the group's next incarnation: abandon the dead
     election and join it. States with a live ring (failure-free and
     the failure states) never react — a recovering process rejoins a
     functioning group through state transfer, not by tearing it
     down. *)
  match CS.kind_of s.creator with
  | CS.KN_failure when j.C.j_epoch > Group_id.epoch s.group_id ->
    let creator' = CS.Join in
    let transition_effects = fsm_transition s creator' in
    let s = { s with creator = creator' } in
    let s, join_effects = enter_join s in
    (s, transition_effects @ join_effects)
  | _ -> (s, [])

let on_reconfig s ~clock ~src (r : 'u C.reconfig) =
  let s =
    {
      s with
      peer_views =
        Pmap.add src
          { pv_ts = r.C.r_ts; pv_view = r.C.r_view; pv_dpd = r.C.r_dpd }
          s.peer_views;
      reconfig_msgs =
        Pmap.add src
          {
            rc_ts = r.C.r_ts;
            rc_list = r.C.r_list;
            rc_last_decision_ts = r.C.r_last_decision_ts;
          }
          s.reconfig_msgs;
    }
  in
  let from_expected = FD.satisfied_by s.fd ~from:src ~ts:r.C.r_ts in
  let from_member =
    Group_id.is_known s.group_id && Proc_set.mem src s.group
  in
  let s, directives, transition_effects =
    run_fsm s ~clock (GC.Reconfig_received { from_expected; from_member })
  in
  let s, directive_effects =
    List.fold_left (fun acc dir -> exec_directive acc ~clock dir) (s, [])
      directives
  in
  (s, transition_effects @ directive_effects @ sync_expect_timer s)

let on_state_transfer s ~clock ~src (st : ('u, 'app) C.state_transfer) =
  if CS.kind_of s.creator <> CS.KJoin then (s, [])
  else if not (Proc_set.mem s.self st.C.st_group) then (s, [])
  else if not (Proc_set.is_majority st.C.st_group ~n:s.n) then (s, [])
  else if Group_id.compare st.C.st_group_id s.group_id < 0 then (s, [])
  else begin
    (* adopt the transferred replica state (merging any oal information
       absorbed while waiting — decisions may have raced the transfer),
       then fold back any proposals we buffered *)
    let buffers =
      List.fold_left
        (fun buffers p -> fst (Buffers.store buffers p))
        st.C.st_buffers
        (Buffers.stored s.buffers)
    in
    let s =
      {
        s with
        group = st.C.st_group;
        group_id = st.C.st_group_id;
        oal =
          (* same epoch: keep oal information absorbed while waiting
             (decisions may have raced the transfer); later incarnation:
             the local history is from a dead epoch — replace it *)
          (if Group_id.epoch st.C.st_group_id > Group_id.epoch s.group_id then
             st.C.st_oal
           else Oal.merge ~local:st.C.st_oal ~incoming:s.oal);
        buffers;
        app = st.C.st_app;
        pending_new_group = None;
      }
    in
    persist_view s ~clock;
    let transition_effects = fsm_transition s CS.Failure_free in
    let s = { s with creator = CS.Failure_free } in
    let s = realign_surveillance s ~from:src ~ts:st.C.st_ts in
    (* the decision that integrated us also advanced the decider role:
       when we are the integrator's group successor, the role is ours *)
    let s, decider_effects =
      match Proc_set.successor_in s.group src ~n:s.n with
      | Some next when Proc_id.equal next s.self -> become_decider s ~clock
      | Some _ | None -> (s, [])
    in
    let s, deliver_effects = deliver s ~clock in
    ( s,
      transition_effects
      @ [
          Engine.Observe
            (View_installed { group = s.group; group_id = s.group_id });
        ]
      @ decider_effects @ deliver_effects @ sync_expect_timer s )
  end

(* ------------------------------------------------------------------ *)
(* gossip probes                                                       *)

(* A gossiped decision is a delayed copy: adopt it (merge the oal,
   learn ordinals, install any newer view, recover losses, deliver) but
   never run the decider FSM or rotate the decider off it — rotation is
   driven solely by the direct decision send to the ring successor, and
   a gossiped copy's timestamp is stale by up to the gossip spreading
   time, so treating it as a ring event would wreck surveillance
   deadlines. [gossip_enqueue] doubles as the dedup: a copy at or below
   the rank this process already processed is dropped. *)
let on_gossip s ~clock ~src (g : C.gossip) =
  (* the generic admission path recorded freshness and the piggybacked
     alive-list; a probe from the watched predecessor re-arms the
     surveillance *)
  let s = realign_surveillance s ~from:src ~ts:g.C.g_ts in
  let adoptable s =
    member_of_current_group s
    &&
    match CS.kind_of s.creator with
    | CS.KJoin | CS.KN_failure -> false
    | CS.KFailure_free | CS.KWrong_suspicion | CS.KOne_failure_receive
    | CS.KOne_failure_send -> true
  in
  let s, effects =
    List.fold_left
      (fun (s, effs) (d : C.decision) ->
        let s, fresh = gossip_enqueue s d in
        if not (fresh && adoptable s) then (s, effs)
        else begin
          let s, adopt_effects, excluded = adopt_decision s ~clock ~d in
          if not excluded then (s, effs @ adopt_effects)
          else begin
            (* a gossiped later view that drops us is as authoritative
               as a direct one: leave the group and rejoin *)
            let transition_effects = fsm_transition s CS.Join in
            let s = { s with creator = CS.Join } in
            let s, join_effects = enter_join s in
            (s, effs @ adopt_effects @ transition_effects @ join_effects)
          end
        end)
      (s, []) g.C.g_decisions
  in
  (s, effects @ sync_expect_timer s)

(* One probe round: drain the piggyback budget, send to the ring
   successor plus the rotating fanout targets, and keep the timer
   armed. Runs only under gossip dissemination (the timer is never set
   otherwise). Probes carry our alive-list, so they feed the
   successor's surveillance of us and everyone's alive-windows — the
   role the all-to-all decision broadcast plays in the paper. *)
let on_gossip_timer s ~clock =
  match (params s).Params.dissemination with
  | Dissemination.All_to_all -> (s, [])
  | Dissemination.Gossip { fanout; piggyback_budget; probe_period; _ } ->
    (* a probe timer firing well past its due time is local-slowness
       evidence, like a late surveillance timer *)
    let s =
      if
        Time.compare s.gossip_due Time.zero > 0
        && Time.compare (Time.sub clock s.gossip_due)
             (Time.mul (params s).Params.sigma 4)
           > 0
      then { s with fd = FD.note_late_evidence s.fd ~now:clock }
      else s
    in
    let due = Time.add clock probe_period in
    let s = { s with gossip_due = due } in
    let rearm = Engine.Set_timer { key = timer_gossip; at_clock = due } in
    let live =
      member_of_current_group s
      &&
      match CS.kind_of s.creator with
      | CS.KJoin | CS.KN_failure -> false
      | _ -> true
    in
    if not live then (s, [ rearm ])
    else begin
      let targets =
        Dissemination.probe_targets ~group:s.group ~self:s.self ~n:s.n
          ~fanout ~round:s.gossip_round
      in
      if targets = [] then (s, [ rearm ])
      else begin
        let decisions, gossip_q =
          Dissemination.Queue.drain s.gossip_q ~budget:piggyback_budget
        in
        let msg =
          C.Gossip
            {
              g_ts = clock;
              g_alive = FD.alive_list s.fd ~now:clock;
              g_decisions = decisions;
            }
        in
        let s =
          {
            s with
            gossip_q;
            gossip_round = s.gossip_round + 1;
            fd = FD.note_sent s.fd ~ts:clock;
          }
        in
        (* self-heal: if surveillance went idle (e.g. the predecessor
           watch was suspended after a view change), re-arm it on the
           current predecessor, skipping a member we already suspect *)
        let s =
          if FD.expected s.fd <> None then s
          else begin
            let watchable =
              match current_suspect s with
              | Some q -> Proc_set.remove q s.group
              | None -> s.group
            in
            match Proc_set.predecessor_in watchable s.self ~n:s.n with
            | Some pred when not (Proc_id.equal pred s.self) ->
              { s with fd = FD.expect s.fd ~sender:pred ~base:clock }
            | Some _ | None -> s
          end
        in
        let sends = List.map (fun p -> Engine.Send (p, msg)) targets in
        (s, (rearm :: sends) @ sync_expect_timer s)
      end
    end

(* ------------------------------------------------------------------ *)
(* slotted protocols: join and reconfiguration                         *)

let fresh_within s ~clock ~ts ~slots =
  Slots.in_last_k_slots (params s) ~now:clock ~sent_at:ts ~k:slots

let join_list_of s ~clock =
  (* only join messages of this process's own formation epoch count: a
     sender still at an older epoch (not yet ratcheted) must not land in
     the join-list a formation is based on *)
  Pmap.fold
    (fun p { ji_ts; ji_epoch; _ } acc ->
      if
        ji_epoch = s.form_epoch
        && fresh_within s ~clock ~ts:ji_ts ~slots:(s.n - 1)
      then Proc_set.add p acc
      else acc)
    s.join_msgs
    (Proc_set.singleton s.self)

let reconfig_list_of s ~clock =
  Pmap.fold
    (fun p { rc_ts; _ } acc ->
      if fresh_within s ~clock ~ts:rc_ts ~slots:(s.n - 1) then
        Proc_set.add p acc
      else acc)
    s.reconfig_msgs
    (Proc_set.singleton s.self)

(* Initial group formation (Section 4.2): at system start, a process
   becomes the first decider when a majority sent join messages, each in
   its own latest slot, all carrying exactly this process's join-list.

   Epoch awareness (closing chaos counterexample chaos-11): this rule
   also fires after a mass crash-and-recovery, where a majority of
   recovered processes is locally indistinguishable from a starting
   system. Formation therefore happens at [s.form_epoch] — strictly
   above any epoch this incarnation (or, via the join-message ratchet,
   any formation peer) ever persisted — so the re-formed group's ids
   compare later than every view the previous epoch could have issued
   and can no longer collide with views held by first-epoch survivors.
   Mass-recovery liveness is preserved: a recovered majority still
   re-forms, just one epoch up. Safety of formation itself rests on the
   same counting argument as before: a formation quorum and a live
   group both need a majority of the team, members of a live group are
   never in the join state, so the two cannot coexist. *)
let try_initial_create s ~clock =
  if Group_id.is_known s.group_id then None
  else begin
    let jl = join_list_of s ~clock in
    let ok =
      Proc_set.is_majority jl ~n:s.n
      && Proc_set.for_all
           (fun p ->
             Proc_id.equal p s.self
             ||
             match Pmap.find_opt p s.join_msgs with
             | Some { ji_ts; ji_list; _ } ->
               Slots.was_own_latest_slot (params s) ~sender:p ~sent_at:ji_ts
                 ~now:clock
               && Proc_set.equal ji_list jl
             | None -> false)
           jl
    in
    if ok then Some jl else None
  end

let create_initial_group s ~clock ~group =
  let group_id = Group_id.form ~epoch:s.form_epoch in
  let oal, _ = Oal.append_membership s.oal ~group ~group_id in
  let s = { s with oal; group; group_id } in
  persist_view s ~clock;
  let transition_effects = fsm_transition s CS.Failure_free in
  let s = { s with creator = CS.Failure_free } in
  let ts = clock in
  let d =
    { C.d_ts = ts; d_oal = s.oal; d_alive = FD.alive_list s.fd ~now:clock }
  in
  let msg = C.Decision d in
  let s = { s with last_decision_ts = ts } in
  let s, _ = gossip_enqueue s d in
  let s, send_effects = send_control s ~ring:true ~ts msg in
  ( s,
    transition_effects
    @ [ Engine.Observe (View_installed { group; group_id }) ]
    @ send_effects @ sync_expect_timer s )

(* Reconfiguration election (Section 4.2): during its slot, a process in
   n-failure that proposed the highest decision timestamp creates a new
   group from a majority S that sent matching reconfiguration messages
   in their latest slots and belonged to the last group. *)
let try_reconfig_create s ~clock ~wait_until_slot =
  let current_slot = Slots.index (params s) clock in
  if current_slot < wait_until_slot then None
  else begin
    let rl = reconfig_list_of s ~clock in
    (* The new group S is chosen from the heard set, not equal to it: a
       stale ex-member (excluded in an earlier view, now running its own
       hopeless election) also broadcasts reconfiguration messages and
       lands in rl, but only processes of the last group this process
       knows are eligible. Requiring rl itself to be inside the group
       would let one such straggler veto the election forever. *)
    let candidates = Proc_set.inter rl s.group in
    let ok =
      Proc_set.is_majority candidates ~n:s.n
      && Group_id.is_known s.group_id
      && Proc_set.for_all
           (fun p ->
             Proc_id.equal p s.self
             ||
             match Pmap.find_opt p s.reconfig_msgs with
             | Some { rc_ts; rc_list; rc_last_decision_ts } ->
               Slots.was_own_latest_slot (params s) ~sender:p ~sent_at:rc_ts
                 ~now:clock
               && Proc_set.equal rc_list rl
               && Time.compare rc_last_decision_ts s.last_decision_ts <= 0
             | None -> false)
           candidates
    in
    if ok then Some candidates else None
  end

let on_slot s ~clock : ('u, 'app) state * ('u, 'app) eff list =
  let next = Slots.next_own_slot (params s) ~self:s.self ~now:clock in
  let rearm = Engine.Set_timer { key = timer_slot; at_clock = next } in
  let s = { s with buffers = Buffers.expire_marks s.buffers ~now:clock } in
  let s, effects =
    match s.creator with
    | CS.Join -> (
      match try_initial_create s ~clock with
      | Some group -> create_initial_group s ~clock ~group
      | None ->
        let msg =
          C.Join_msg
            {
              j_ts = clock;
              j_list = join_list_of s ~clock;
              j_alive = FD.alive_list s.fd ~now:clock;
              j_epoch = s.form_epoch;
            }
        in
        let s, send_effects = send_control s ~ring:false ~ts:clock msg in
        (s, send_effects))
    | CS.N_failure { wait_until_slot } -> (
      match try_reconfig_create s ~clock ~wait_until_slot with
      | Some new_group ->
        let transition_effects = fsm_transition s CS.Failure_free in
        let s = { s with creator = CS.Failure_free } in
        let s, create_effects = create_group s ~clock ~new_group in
        (s, transition_effects @ create_effects @ sync_expect_timer s)
      | None ->
        let current_slot = Slots.index (params s) clock in
        let list =
          if current_slot < wait_until_slot then Proc_set.empty
          else reconfig_list_of s ~clock
        in
        let msg = make_reconfig s ~clock ~list in
        let s, send_effects = send_control s ~ring:false ~ts:clock msg in
        (s, send_effects))
    | CS.Failure_free | CS.Wrong_suspicion _ | CS.One_failure_receive _
    | CS.One_failure_send _ ->
      (s, [])
  in
  (s, rearm :: effects)

let on_expect_timeout s ~clock =
  (* Lifeguard local health: a surveillance timer that fires well past
     its deadline is evidence that this process itself is running
     slowly. Charging the evidence first stretches the in-force
     timeout, which can move the deadline back into the future — the
     timeout_suspect check below then comes up empty and the timer is
     simply re-armed, so an overloaded member doubts itself instead of
     suspecting a timely peer. No-op unless adaptive suspicion is on. *)
  let s =
    match FD.deadline s.fd with
    | Some dl
      when Time.compare (Time.sub clock dl)
             (Time.mul (params s).Params.sigma 4)
           > 0 ->
      { s with fd = FD.note_late_evidence s.fd ~now:clock }
    | Some _ | None -> s
  in
  match FD.timeout_suspect s.fd ~now:clock with
  | None -> (s, sync_expect_timer s)
  | Some suspect when Proc_id.equal suspect s.self ->
    (* never suspect ourselves: if we were due to send and did not, the
       other members will exclude us *)
    let s = { s with fd = FD.suspend s.fd } in
    (s, sync_expect_timer s)
  | Some suspect ->
    let since =
      match FD.deadline s.fd with
      | Some dl -> Time.sub dl (FD.timeout s.fd)
      | None -> clock
    in
    let suspected_effect = Engine.Observe (Suspected { suspect }) in
    let s, directives, transition_effects =
      run_fsm s ~clock (GC.Fd_timeout { suspect; since })
    in
    (* unless the FSM suspended the ring, keep watching: under
       all-to-all the suspect's successor must now produce a control
       message; under gossip we fall back to the closest live
       predecessor short of the suspect *)
    let s =
      match CS.kind_of s.creator with
      | CS.KN_failure | CS.KJoin -> s
      | _ ->
        if gossip_mode s then begin
          match
            Proc_set.predecessor_in
              (Proc_set.remove suspect s.group)
              s.self ~n:s.n
          with
          | Some pred when not (Proc_id.equal pred s.self) ->
            { s with fd = FD.expect s.fd ~sender:pred ~base:clock }
          | Some _ | None -> { s with fd = FD.suspend s.fd }
        end
        else begin
          match Proc_set.successor_in s.group suspect ~n:s.n with
          | Some next ->
            { s with fd = FD.expect s.fd ~sender:next ~base:clock }
          | None -> s
        end
    in
    let s, directive_effects =
      List.fold_left (fun acc dir -> exec_directive acc ~clock dir) (s, [])
        directives
    in
    ( s,
      (suspected_effect :: transition_effects)
      @ directive_effects @ sync_expect_timer s )

(* ------------------------------------------------------------------ *)
(* automaton wiring                                                    *)

let init cfg ~self ~n ~clock ~incarnation:_ =
  if n <> cfg.params.Params.n then
    invalid_arg "Member: engine team size differs from Params.n";
  (* a recovered incarnation never cold-forms at an epoch it already
     lived through: its formation epoch starts one above the persisted
     one. The replica state itself is not restored — a rejoining
     process goes through the join protocol and state transfer exactly
     like a fresh joiner. *)
  let form_epoch =
    match cfg.restore ~self ~now:clock with
    | Some { last_group_id; _ } -> Group_id.epoch last_group_id + 1
    | None -> 0
  in
  let s =
    {
      cfg;
      self;
      n;
      creator = CS.Join;
      group = Proc_set.empty;
      group_id = Group_id.none;
      form_epoch;
      fd = FD.create cfg.params ~self;
      oal = Oal.empty;
      buffers = Buffers.empty;
      next_seq = 0;
      last_decision_ts = Time.zero;
      decider = false;
      last_control_sent = None;
      app = cfg.initial_app;
      join_msgs = Pmap.empty;
      reconfig_msgs = Pmap.empty;
      peer_views = Pmap.empty;
      alive_views = Pmap.empty;
      pending_new_group = None;
      gossip_q = Dissemination.Queue.empty;
      gossip_round = 0;
      gossip_due = Time.zero;
      scratch = { sc_ids = Array.make n []; sc_holders = [] };
    }
  in
  (* under gossip dissemination the probe timer runs from boot; the
     handler is a no-op until this process is a live group member *)
  let s, gossip_effects =
    match Params.gossip_probe_period cfg.params with
    | Some period ->
      let due = Time.add clock period in
      ( { s with gossip_due = due },
        [ Engine.Set_timer { key = timer_gossip; at_clock = due } ] )
    | None -> (s, [])
  in
  (* act in the current slot if it is ours, and arm the next one *)
  if Proc_id.equal (Slots.owner_at cfg.params clock) self then begin
    let s, effects = on_slot s ~clock in
    (s, gossip_effects @ effects)
  end
  else
    ( s,
      gossip_effects
      @ [
          Engine.Set_timer
            {
              key = timer_slot;
              at_clock = Slots.next_own_slot cfg.params ~self ~now:clock;
            };
        ] )

let on_receive s ~clock ~src msg =
  match msg with
  | C.Submit { semantics; payload } -> on_submit s ~clock ~semantics payload
  | C.Proposal_msg p | C.Retransmit p -> on_proposal s ~clock p
  | C.Nack { missing } -> on_nack s ~src missing
  | C.State_transfer st -> on_state_transfer s ~clock ~src st
  | C.Decision _ | C.No_decision _ | C.Join_msg _ | C.Reconfig _
  | C.Gossip _ -> (
    match C.control_ts msg with
    | None -> (s, [])
    | Some ts -> (
      (* probes order only against other probes: a probe stamped after a
         still-in-flight decision must not get that decision rejected as
         stale (the admit_probe doc has the full story) *)
      let fd, verdict =
        match msg with
        | C.Gossip _ -> FD.admit_probe s.fd ~from:src ~ts ~now:clock
        | _ -> FD.admit s.fd ~from:src ~ts ~now:clock
      in
      match verdict with
      | FD.Late ->
        (* keep the detector: a late rejection is local-health evidence
           under adaptive suspicion (identical state otherwise) *)
        ({ s with fd }, [ Engine.Observe (Late_rejected { from = src }) ])
      | FD.Stale -> (s, [])
      | FD.Fresh -> (
        let s = { s with fd } in
        let s =
          match C.alive_of msg with
          | Some alive ->
            {
              s with
              alive_views =
                Pmap.add src { ai_ts = ts; ai_alive = alive } s.alive_views;
            }
          | None -> s
        in
        match msg with
        | C.Decision d -> on_decision s ~clock ~src d
        | C.No_decision nd -> on_no_decision s ~clock ~src nd
        | C.Join_msg j -> on_join_msg s ~src j
        | C.Reconfig r -> on_reconfig s ~clock ~src r
        | C.Gossip g -> on_gossip s ~clock ~src g
        | C.Submit _ | C.Proposal_msg _ | C.Retransmit _ | C.Nack _
        | C.State_transfer _ ->
          (s, []))))

let on_timer s ~clock ~key =
  if key = timer_slot then on_slot s ~clock
  else if key = timer_expect then on_expect_timeout s ~clock
  else if key = timer_gossip then on_gossip_timer s ~clock
  else if key = timer_decide then begin
    if s.decider && CS.kind_of s.creator = CS.KFailure_free then
      send_decision s ~clock
    else (s, [])
  end
  else (s, [])

let automaton cfg =
  {
    Engine.name = "timewheel-member";
    init = (fun ~self ~n ~clock ~incarnation -> init cfg ~self ~n ~clock ~incarnation);
    on_receive;
    on_timer;
  }
