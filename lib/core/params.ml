open Tasim

type t = {
  n : int;
  delta : Time.t;
  sigma : Time.t;
  epsilon : Time.t;
  d : Time.t;
  slot_len : Time.t;
  timed_delay : Time.t;
  eager_decisions : bool;
  single_failure_election : bool;
  dissemination : Broadcast.Dissemination.policy;
  adaptive_suspicion : bool;
}

let make ?(delta = Time.of_ms 10) ?(sigma = Time.of_ms 1)
    ?(epsilon = Time.of_ms 2) ?(d = Time.of_ms 30) ?slot_len
    ?(timed_delay = Time.of_ms 200) ?(eager_decisions = false)
    ?(single_failure_election = true)
    ?(dissemination = Broadcast.Dissemination.All_to_all)
    ?(adaptive_suspicion = false) ~n () =
  let slot_len =
    match slot_len with Some s -> s | None -> Time.add d delta
  in
  if n < 2 then invalid_arg "Params.make: n must be >= 2";
  if Time.compare delta Time.zero <= 0 then
    invalid_arg "Params.make: delta must be positive";
  if Time.compare d Time.zero <= 0 then
    invalid_arg "Params.make: d must be positive";
  if Time.compare slot_len (Time.add d delta) < 0 then
    invalid_arg "Params.make: slot_len must be at least d + delta";
  (match Broadcast.Dissemination.validate dissemination with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Params.make: " ^ msg));
  {
    n; delta; sigma; epsilon; d; slot_len; timed_delay; eager_decisions;
    single_failure_election; dissemination; adaptive_suspicion;
  }

let cycle t = Time.mul t.slot_len t.n
let fd_timeout t = Time.mul t.d 2

let gossip_probe_period t =
  match t.dissemination with
  | Broadcast.Dissemination.Gossip { probe_period; _ } -> Some probe_period
  | Broadcast.Dissemination.All_to_all -> None

let suspicion_timeout t =
  match t.dissemination with
  | Broadcast.Dissemination.All_to_all -> fd_timeout t
  | Broadcast.Dissemination.Gossip { probe_period; _ } ->
    (* probes arrive every [probe_period]; a deadline below two periods
       would suspect on a single sched hiccup of the watched sender *)
    Time.max (fd_timeout t) (Time.mul probe_period 2)
let alive_window t = Time.mul t.slot_len t.n
let late_bound t = Time.add t.delta (Time.add t.epsilon t.sigma)
let majority t = (t.n / 2) + 1

let pp ppf t =
  Fmt.pf ppf
    "params(n=%d delta=%a sigma=%a epsilon=%a d=%a slot=%a cycle=%a)" t.n
    Time.pp t.delta Time.pp t.sigma Time.pp t.epsilon Time.pp t.d Time.pp
    t.slot_len Time.pp (cycle t)
