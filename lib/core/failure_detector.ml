open Tasim

module Pmap = Map.Make (struct
  type t = Proc_id.t

  let compare = Proc_id.compare
end)

type t = {
  params : Params.t;
  self : Proc_id.t;
  heard : Time.t Pmap.t; (* proc -> freshest control msg send ts *)
  probed : Time.t Pmap.t; (* proc -> freshest gossip probe send ts *)
  surveillance : (Proc_id.t * Time.t) option; (* expected sender, base ts *)
  health : int; (* local-health score: 0 = healthy, grows on lateness *)
  health_decayed : Time.t; (* last time the score decayed *)
}

(* Lifeguard's LHM: the multiplier saturates so a long overload cannot
   stretch the timeout without bound (NACK-less variant: our evidence
   is late-rejected inbound messages and late-firing local timers). *)
let max_health = 7

let create params ~self =
  {
    params;
    self;
    heard = Pmap.empty;
    probed = Pmap.empty;
    surveillance = None;
    health = 0;
    health_decayed = Time.zero;
  }

let health t = t.health

(* Base timeout scaled by (1 + health); identical to the paper's 2D
   deadline when adaptive suspicion is off (health is then pinned 0). *)
let timeout t = Time.mul (Params.suspicion_timeout t.params) (1 + t.health)

let note_late_evidence t ~now =
  if not t.params.Params.adaptive_suspicion then t
  else if t.health >= max_health then { t with health_decayed = now }
  else { t with health = t.health + 1; health_decayed = now }

let decay_health t ~now =
  if (not t.params.Params.adaptive_suspicion) || t.health = 0 then t
  else begin
    let period = Params.cycle t.params in
    if Time.compare (Time.sub now t.health_decayed) period >= 0 then
      { t with health = t.health - 1; health_decayed = now }
    else t
  end

type verdict = Fresh | Stale | Late

let admit t ~from ~ts ~now =
  let late_bound = Params.late_bound t.params in
  if Time.compare (Time.sub now ts) late_bound > 0 then
    (* a late inbound message is evidence that we (the receiver) are
       processing slowly — or the sender is; either way, doubt our own
       timeliness before doubting the peers we watch *)
    (note_late_evidence t ~now, Late)
  else
    match Pmap.find_opt from t.heard with
    | Some prev when Time.compare ts prev <= 0 -> (t, Stale)
    | Some _ | None ->
      (decay_health { t with heard = Pmap.add from ts t.heard } ~now, Fresh)

(* Gossip probes are a freshness channel of their own: a probe is
   stamped when the sender's probe timer fires, so it routinely carries
   a NEWER timestamp than a ring control message of the same sender
   still in flight. Folding both into one per-sender floor would let a
   probe overtake a decision and get the decision rejected as stale —
   which is how a decider handover would be lost. Probes therefore
   order only against other probes; [heard] (and with it the staleness
   floor of ring control messages) is untouched. *)
let admit_probe t ~from ~ts ~now =
  let late_bound = Params.late_bound t.params in
  if Time.compare (Time.sub now ts) late_bound > 0 then
    (note_late_evidence t ~now, Late)
  else
    match Pmap.find_opt from t.probed with
    | Some prev when Time.compare ts prev <= 0 -> (t, Stale)
    | Some _ | None ->
      (decay_health { t with probed = Pmap.add from ts t.probed } ~now, Fresh)

let note_sent t ~ts = { t with heard = Pmap.add t.self ts t.heard }
let last_heard t p = Pmap.find_opt p t.heard

let heard_after t p ~since =
  match Pmap.find_opt p t.heard with
  | Some ts -> Time.compare ts since > 0
  | None -> false

let alive_list t ~now =
  let window = Params.alive_window t.params in
  let horizon = Time.sub now window in
  let collect p ts acc =
    if Time.compare ts horizon >= 0 then Proc_set.add p acc else acc
  in
  Pmap.fold collect t.probed
    (Pmap.fold collect t.heard (Proc_set.singleton t.self))

let forget t p =
  { t with heard = Pmap.remove p t.heard; probed = Pmap.remove p t.probed }

let expect t ~sender ~base = { t with surveillance = Some (sender, base) }
let suspend t = { t with surveillance = None }
let expected t = Option.map fst t.surveillance

let deadline t =
  Option.map (fun (_, base) -> Time.add base (timeout t)) t.surveillance

let satisfied_by t ~from ~ts =
  (* [ts] and [base] were read on different synchronized clocks, which
     may deviate by up to epsilon: allow that slack *)
  match t.surveillance with
  | Some (sender, base) ->
    Proc_id.equal from sender
    && Time.compare ts (Time.sub base t.params.Params.epsilon) > 0
  | None -> false

let timeout_suspect t ~now =
  match t.surveillance with
  | Some (sender, base) when Time.compare now (Time.add base (timeout t)) >= 0
    ->
    Some sender
  | Some _ | None -> None

let pp ppf t =
  let pp_surv ppf = function
    | None -> Fmt.string ppf "idle"
    | Some (p, base) ->
      Fmt.pf ppf "expect %a after %a" Proc_id.pp p Time.pp base
  in
  Fmt.pf ppf "fd(self=%a %a heard=%d)" Proc_id.pp t.self pp_surv
    t.surveillance (Pmap.cardinal t.heard)
