(** Cross-member safety invariants.

    Machine-checkable statements of the protocol's safety claims,
    evaluated over a snapshot of every member's state. The property
    tests and experiment E5b sample these during randomized churn; any
    violation is a protocol bug, never load-dependent noise.

    - {!ordinals_consistent} is the heart of the broadcast/membership
      coupling: ordinals are assigned by exactly one decider at a time,
      so two members may disagree on what they have {e seen} but never
      on what an ordinal {e means}. A dual-decider bug shows up here
      first.
    - {!views_consistent} is Section 3's property (2) restricted to
      up-to-date members.
    - {!groups_majority} is Section 3's property (5). *)

open Tasim

val take :
  (('u, 'app) Member.state, ('u, 'app) Control_msg.t, 'u Member.obs) Engine.t ->
  (Proc_id.t * ('u, 'app) Member.state) list
(** States of every process that is currently up. *)

type violation = {
  property : string;
  detail : string;
}

val pp_violation : violation Fmt.t

val ordinals_consistent :
  (Proc_id.t * ('u, 'app) Member.state) list -> violation list
(** Among up-to-date members of the newest group: for every ordinal
    present in two oals, the entries carry the same body (same
    proposal / same membership change). Stale epochs are out of scope:
    they may hold void assignments from a decider that crashed before
    anyone heard it, and their holders are excluded and rejoin with a
    fresh replica. *)

val views_consistent :
  n:int -> (Proc_id.t * ('u, 'app) Member.state) list -> violation list
(** Any two up-to-date members (ring states, holding a group containing
    themselves) with the same group id hold the same group; and the
    newest group id is held identically by all up-to-date members that
    reached it. *)

val groups_majority :
  n:int -> (Proc_id.t * ('u, 'app) Member.state) list -> violation list
(** Every group currently held by a member that belongs to it contains
    a majority of the team. *)

val epochs_monotone :
  (Proc_id.t * ('u, 'app) Member.state) list -> violation list
(** Within every member's oal, membership descriptors carry strictly
    increasing (lexicographic) group ids in ordinal order: a view
    change either increments seq within an epoch or moves to a later
    epoch's formation. Catches old-epoch views surviving past a
    re-formation (the chaos-11 class of bug). *)

val check_all :
  n:int -> (Proc_id.t * ('u, 'app) Member.state) list -> violation list
