(** Messages of the timewheel group communication service.

    The membership protocol uses three control messages of its own —
    no-decision, join and reconfiguration — and treats the broadcast
    protocol's decision message as a fourth control message (paper,
    Section 4.1). The remaining constructors carry the broadcast data
    path (proposals and loss recovery), the local client call, and the
    application-state transfer performed when a process joins an
    existing group.

    ['u] is the update payload type; ['app] the application state type
    shipped to joiners. Every control message piggybacks the sender's
    alive-list (Section 4.2: "group members piggyback their alive-lists
    on all control messages they send"). *)

open Tasim
open Broadcast

type ('u, 'app) t =
  | Submit of { semantics : Semantics.t; payload : 'u }
      (** local client call, injected via [Engine.inject] *)
  | Proposal_msg of 'u Proposal.t
  | Retransmit of 'u Proposal.t
  | Nack of { missing : Proposal.id list }
  | Decision of decision
  | No_decision of 'u no_decision
  | Join_msg of join
  | Reconfig of 'u reconfig
  | State_transfer of ('u, 'app) state_transfer
  | Gossip of gossip
      (** periodic probe under gossip dissemination: carries the
          sender's alive-list (feeding surveillance and alive-windows
          in place of the all-to-all decision broadcast) plus up to the
          piggyback budget of recent decisions *)

and decision = {
  d_ts : Time.t;  (** sender's synchronized clock at send time *)
  d_oal : Oal.t;
  d_alive : Proc_set.t;
}

and 'u no_decision = {
  nd_ts : Time.t;
  nd_suspect : Proc_id.t;
  nd_since : Time.t;
      (** send timestamp of the last control message the suspect is
          known to have followed; receivers concur with the suspicion
          iff they heard nothing fresher from the suspect *)
  nd_view : Oal.t;  (** sender's current view v_p of the oal *)
  nd_dpd : Oal.update_info list;
      (** descriptors of updates the sender delivered unordered *)
  nd_alive : Proc_set.t;
}

and join = {
  j_ts : Time.t;
  j_list : Proc_set.t;
  j_alive : Proc_set.t;
  j_epoch : int;
      (** the sender's formation epoch: 0 for a cold start, one above
          the persisted epoch for a process recovering with stable
          storage. Initial formation only counts join messages of the
          receiver's own epoch, and receivers ratchet their epoch up to
          the largest one heard (see {!Group_id}). *)
}

and 'u reconfig = {
  r_ts : Time.t;
  r_list : Proc_set.t;  (** sender's reconfiguration-list *)
  r_last_decision_ts : Time.t;
      (** timestamp of the last decision message the sender knows *)
  r_view : Oal.t;
  r_dpd : Oal.update_info list;
  r_alive : Proc_set.t;
}

and gossip = {
  g_ts : Time.t;
  g_alive : Proc_set.t;
  g_decisions : decision list;
      (** freshest first; receivers adopt (merge) but never run the
          decider FSM off a gossiped copy — rotation is driven by the
          direct decision send to the ring successor *)
}

and ('u, 'app) state_transfer = {
  st_ts : Time.t;
  st_group : Proc_set.t;
  st_group_id : Group_id.t;
  st_oal : Oal.t;
  st_app : 'app;
  st_buffers : 'u Buffers.t;
      (** the sender's proposal buffers: payloads still of use plus the
          delivered bookkeeping the joiner needs to avoid re-delivery *)
}

val is_control : ('u, 'app) t -> bool
(** Decision, no-decision, join, reconfiguration and gossip
    messages. *)

val control_ts : ('u, 'app) t -> Time.t option
(** Send timestamp of a control message, [None] otherwise. *)

val alive_of : ('u, 'app) t -> Proc_set.t option
(** Piggybacked alive-list of a control message. *)

val kind : ('u, 'app) t -> string
val pp : ('u, 'app) t Fmt.t
(** Payload-agnostic summary printer. *)
