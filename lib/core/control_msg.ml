open Tasim
open Broadcast

type ('u, 'app) t =
  | Submit of { semantics : Semantics.t; payload : 'u }
  | Proposal_msg of 'u Proposal.t
  | Retransmit of 'u Proposal.t
  | Nack of { missing : Proposal.id list }
  | Decision of decision
  | No_decision of 'u no_decision
  | Join_msg of join
  | Reconfig of 'u reconfig
  | State_transfer of ('u, 'app) state_transfer
  | Gossip of gossip

and decision = { d_ts : Time.t; d_oal : Oal.t; d_alive : Proc_set.t }

and gossip = {
  g_ts : Time.t;
  g_alive : Proc_set.t;
  g_decisions : decision list;
}

and 'u no_decision = {
  nd_ts : Time.t;
  nd_suspect : Proc_id.t;
  nd_since : Time.t;
  nd_view : Oal.t;
  nd_dpd : Oal.update_info list;
  nd_alive : Proc_set.t;
}

and join = {
  j_ts : Time.t;
  j_list : Proc_set.t;
  j_alive : Proc_set.t;
  j_epoch : int;
}

and 'u reconfig = {
  r_ts : Time.t;
  r_list : Proc_set.t;
  r_last_decision_ts : Time.t;
  r_view : Oal.t;
  r_dpd : Oal.update_info list;
  r_alive : Proc_set.t;
}

and ('u, 'app) state_transfer = {
  st_ts : Time.t;
  st_group : Proc_set.t;
  st_group_id : Group_id.t;
  st_oal : Oal.t;
  st_app : 'app;
  st_buffers : 'u Buffers.t;
}

let is_control = function
  | Decision _ | No_decision _ | Join_msg _ | Reconfig _ | Gossip _ -> true
  | Submit _ | Proposal_msg _ | Retransmit _ | Nack _ | State_transfer _ ->
    false

let control_ts = function
  | Decision d -> Some d.d_ts
  | No_decision nd -> Some nd.nd_ts
  | Join_msg j -> Some j.j_ts
  | Reconfig r -> Some r.r_ts
  | Gossip g -> Some g.g_ts
  | Submit _ | Proposal_msg _ | Retransmit _ | Nack _ | State_transfer _ ->
    None

let alive_of = function
  | Decision d -> Some d.d_alive
  | No_decision nd -> Some nd.nd_alive
  | Join_msg j -> Some j.j_alive
  | Reconfig r -> Some r.r_alive
  | Gossip g -> Some g.g_alive
  | Submit _ | Proposal_msg _ | Retransmit _ | Nack _ | State_transfer _ ->
    None

let kind = function
  | Submit _ -> "submit"
  | Proposal_msg _ -> "proposal"
  | Retransmit _ -> "retransmit"
  | Nack _ -> "nack"
  | Decision _ -> "decision"
  | No_decision _ -> "no-decision"
  | Join_msg _ -> "join"
  | Reconfig _ -> "reconfiguration"
  | State_transfer _ -> "state-transfer"
  | Gossip _ -> "gossip"

let pp ppf = function
  | Submit _ -> Fmt.string ppf "submit"
  | Proposal_msg p -> Fmt.pf ppf "proposal(%a)" Proposal.pp_id p.Proposal.id
  | Retransmit p ->
    Fmt.pf ppf "retransmit(%a)" Proposal.pp_id p.Proposal.id
  | Nack { missing } ->
    Fmt.pf ppf "nack(%a)" Fmt.(list ~sep:sp Proposal.pp_id) missing
  | Decision { d_ts; d_oal; _ } ->
    Fmt.pf ppf "decision(ts=%a oal=%a)" Time.pp d_ts Oal.pp d_oal
  | No_decision { nd_ts; nd_suspect; nd_since; _ } ->
    Fmt.pf ppf "no-decision(ts=%a suspect=%a since=%a)" Time.pp nd_ts
      Proc_id.pp nd_suspect Time.pp nd_since
  | Join_msg { j_ts; j_list; _ } ->
    Fmt.pf ppf "join(ts=%a list=%a)" Time.pp j_ts Proc_set.pp j_list
  | Reconfig { r_ts; r_list; r_last_decision_ts; _ } ->
    Fmt.pf ppf "reconfiguration(ts=%a list=%a last_d=%a)" Time.pp r_ts
      Proc_set.pp r_list Time.pp r_last_decision_ts
  | State_transfer { st_group; st_group_id; _ } ->
    Fmt.pf ppf "state-transfer(grp#%a %a)" Group_id.pp st_group_id Proc_set.pp
      st_group
  | Gossip { g_ts; g_decisions; _ } ->
    Fmt.pf ppf "gossip(ts=%a decisions=%d)" Time.pp g_ts
      (List.length g_decisions)
