(** The timewheel group communication service, assembled.

    This is the public entry point for applications and experiments: it
    builds a team of {!Member} automata on a {!Tasim.Engine} with
    synchronized clocks, and exposes submission, observation callbacks,
    fault injection and running. Examples and the benchmark harness sit
    on this API.

    ['u] is the update payload; ['app] the replicated application state
    (see {!Member}). *)

open Tasim
open Broadcast

type clocks =
  | Perfect  (** all synchronized clocks equal to real time *)
  | Oracle
      (** per-process offsets within epsilon/2 and drift within the
          hardware bound — the assumed interface of the fail-aware
          clock synchronization service (see DESIGN.md) *)

type ('u, 'app) t

val create :
  ?engine_config:Engine.config ->
  ?clocks:clocks ->
  ?storage_write_latency:Time.t ->
  ?apply:('app -> 'u -> 'app) ->
  initial_app:'app ->
  Params.t ->
  ('u, 'app) t
(** Build a team of [Params.n] members, all starting at time 0 in the
    join state; the initial group forms by the join protocol. The
    engine's network delta is forced to the protocol's delta.

    Every member is wired to a per-process {!Storage.Store} slot: it
    persists its last installed view at each view install and recovers
    its formation epoch from it after a crash (see {!Member.persistent}
    and {!Broadcast.Group_id}). [storage_write_latency] (default zero,
    i.e. atomically durable writes) delays durability; a crash inside
    the window loses the unflushed write. *)

val params : ('u, 'app) t -> Params.t
val engine :
  ('u, 'app) t ->
  (('u, 'app) Member.state, ('u, 'app) Control_msg.t, 'u Member.obs) Engine.t
(** The underlying engine, for fault scripting and advanced probes. *)

val run : ('u, 'app) t -> until:Time.t -> unit
val now : ('u, 'app) t -> Time.t

(** {1 Client operations} *)

val submit :
  ('u, 'app) t -> Proc_id.t -> semantics:Semantics.t -> 'u -> unit
(** Submit an update at the given member, now. *)

val submit_at :
  ('u, 'app) t -> Time.t -> Proc_id.t -> semantics:Semantics.t -> 'u -> unit

(** {1 Observation} *)

type view = { group : Proc_set.t; group_id : Group_id.t; at : Time.t }

val on_view : ('u, 'app) t -> (Proc_id.t -> view -> unit) -> unit
(** Called on every [View_installed] observation. *)

val on_delivery :
  ('u, 'app) t ->
  (Proc_id.t -> at:Time.t -> 'u Proposal.t -> ordinal:int option -> unit) ->
  unit

val on_obs :
  ('u, 'app) t -> (Time.t -> Proc_id.t -> 'u Member.obs -> unit) -> unit
(** Raw observation stream (transitions, suspicions, ...). *)

val views_installed : ('u, 'app) t -> (Proc_id.t * view) list
(** All view installations so far, in time order. *)

val current_view : ('u, 'app) t -> Proc_id.t -> view option
(** Latest view installed at the member. *)

val agreed_view : ('u, 'app) t -> view option
(** When every currently-up member that has a view agrees on the same
    newest group, that view; [None] while they diverge. *)

(** {1 Fault injection} *)

val storage : ('u, 'app) t -> Member.persistent Storage.Store.t
(** The per-process stable store backing the members' persistence, for
    fault injection ([Storage.Store.set_fault]) and test assertions. *)

val crash_at : ('u, 'app) t -> Time.t -> Proc_id.t -> unit
(** Crash the process at [time] (see [Engine.crash_at]) and drop its
    store's unflushed writes; durable records survive. *)

val recover_at : ('u, 'app) t -> Time.t -> Proc_id.t -> unit
val partition_at : ('u, 'app) t -> Time.t -> Proc_set.t list -> unit
val heal_at : ('u, 'app) t -> Time.t -> unit

val drop_control :
  ('u, 'app) t ->
  ?max_drops:int ->
  name:string ->
  kind:string ->
  src:Proc_id.t option ->
  dst:Proc_id.t option ->
  unit ->
  unit
(** Install a network filter dropping control messages of the given
    kind (as returned by [Control_msg.kind]) between the given
    endpoints ([None] = any). *)

(** {1 Inspection} *)

val member_state : ('u, 'app) t -> Proc_id.t -> ('u, 'app) Member.state option
val app_state : ('u, 'app) t -> Proc_id.t -> 'app option
val stats : ('u, 'app) t -> Stats.t

val enable_trace : ?capacity:int -> ('u, 'app) t -> Trace.t
(** Start recording a message-level event trace (see [Tasim.Trace]);
    returns the recorder for querying and rendering. *)
