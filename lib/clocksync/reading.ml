open Tasim

type t = { offset : Time.t; error : Time.t; read_at : Time.t }

let of_round_trip ~send_local ~recv_local ~remote_clock ~min_delay
    ~drift_bound =
  if Time.compare recv_local send_local < 0 then None
  else begin
    let rtt = Time.sub recv_local send_local in
    let half = Time.div rtt 2 in
    let estimate = Time.add remote_clock half in
    let drift_term = Time.scale rtt (2.0 *. drift_bound) in
    (* the estimate uses floor(rtt/2), so the worst-case deviation from
       the true offset is ceil(rtt/2) - min_delay = (rtt - half) -
       min_delay: using floor here too leaves the true offset one tick
       outside the bound when rtt is odd and one leg is minimal *)
    let base_error = Time.max Time.zero (Time.sub (Time.sub rtt half) min_delay) in
    Some
      {
        offset = Time.sub estimate recv_local;
        error = Time.add base_error drift_term;
        read_at = recv_local;
      }
  end

let error_at t ~now_local ~drift_bound =
  let age = Time.max Time.zero (Time.sub now_local t.read_at) in
  Time.add t.error (Time.scale age (2.0 *. drift_bound))

let pp ppf t =
  Fmt.pf ppf "reading(offset=%a error=%a at=%a)" Time.pp t.offset Time.pp
    t.error Time.pp t.read_at
