(** M3 macrobenchmark: membership past the ring — N=256/1024.

    Forms an [n]-member group under either dissemination policy and
    runs [seconds] of faultless steady state. The quantity of interest
    is the per-member receive rate: under [All_to_all] every decision
    reaches every member directly, so each member's inbound datagram
    rate grows linearly with [n]; under [Gossip] decisions ride the
    probe traffic, whose per-member rate is fixed by the probe period
    and fanout, so the receive rate should stay roughly flat as [n]
    grows.

    Gossip runs enable adaptive (Lifeguard-style) suspicion; the run is
    faultless, so every suspicion observed is a false positive and is
    counted as such. *)

type mode = All_to_all | Gossip

val mode_name : mode -> string

type result = {
  n : int;
  mode : mode;
  formed : bool;  (** the full [n]-member view was agreed *)
  form_sim_seconds : float;
  form_wall_seconds : float;
  sim_seconds : float;  (** steady-state window, simulated *)
  wall_seconds : float;
  receives : int;  (** datagrams delivered during the window *)
  receives_per_member_per_sec : float;
      (** [receives / n / sim_seconds] — the sublinearity probe *)
  false_suspicions : int;
      (** suspicion observations over the whole run (faultless, so all
          false) *)
  events : int;  (** sends + deliveries in the window *)
  events_per_sec : float;
}

val run :
  ?n:int -> ?seconds:int -> ?seed:int -> ?mode:mode -> unit -> result
(** Defaults: [n = 256], [seconds = 3], [seed = 42], [mode = Gossip].
    When the group fails to form within {!Run.settle}'s bound, returns
    with [formed = false] instead of raising. *)
