open Tasim
open Broadcast
open Runtime

(* ------------------------------------------------------------------ *)
(* Flood: raw transport throughput and syscall efficiency *)

type flood_result = {
  fl_n : int;
  fl_batched : bool;
  fl_wall_seconds : float;
  fl_sent : int;
  fl_received : int;
  fl_frames_per_sec : float;
  fl_syscalls : int;
  fl_syscalls_per_frame : float;
}

(* minimal frame: sender id + sequence number — small enough that the
   syscall, not the codec, dominates, which is what this measures *)
let flood_encode ~sender (m : int) w =
  Wire.reset w;
  Wire.int w (Proc_id.to_int sender);
  Wire.int w m;
  Wire.pos w

let flood_decode buf ~pos ~len =
  let r = Wire.reader_bytes ~pos ~len buf in
  let src = Wire.r_int r in
  let m = Wire.r_int r in
  Ok (Proc_id.of_int src, m)

(* modest burst so a receiver's kernel buffer (a few hundred datagrams
   on default rmem) never overflows between drains: the measurement is
   syscall efficiency, not loss behaviour *)
let flood_burst = 64

let flood ?(n = 4) ?(seconds = 1.0) ?(base_port = 49400) ?batching () =
  let stats = Stats.create () in
  let mk self =
    Transport.create ~encode_to:flood_encode ~decode:flood_decode ?batching
      ~self ~n
      ~port_of:(fun p -> base_port + Proc_id.to_int p)
      ~stats ()
  in
  let transports = List.map mk (Proc_id.all ~n) in
  Fun.protect ~finally:(fun () -> List.iter Transport.close transports)
  @@ fun () ->
  let sender = List.hd transports in
  let receivers = List.tl transports in
  let handler ~src:_ (_ : int) = () in
  let drain_all () =
    List.iter (fun t -> ignore (Transport.drain t ~handler)) receivers
  in
  let seq = ref 0 in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. seconds in
  while Unix.gettimeofday () < deadline do
    for _ = 1 to flood_burst do
      Transport.broadcast sender !seq;
      incr seq
    done;
    Transport.flush sender;
    drain_all ()
  done;
  (* one last sweep for frames still queued in the kernel *)
  Unix.sleepf 0.01;
  drain_all ();
  let wall = Unix.gettimeofday () -. t0 in
  let sent = Stats.count stats "live:sent" in
  let received = Stats.count stats "live:recv" in
  let syscalls =
    Stats.count stats "live:syscall:sendto"
    + Stats.count stats "live:syscall:recvfrom"
    + Stats.count stats "live:syscall:sendmmsg"
    + Stats.count stats "live:syscall:recvmmsg"
  in
  let moved = sent + received in
  {
    fl_n = n;
    fl_batched = Transport.batched sender;
    fl_wall_seconds = wall;
    fl_sent = sent;
    fl_received = received;
    fl_frames_per_sec = float_of_int received /. wall;
    fl_syscalls = syscalls;
    fl_syscalls_per_frame =
      (if moved = 0 then 0.0 else float_of_int syscalls /. float_of_int moved);
  }

(* ------------------------------------------------------------------ *)
(* Cluster: full-stack groups under load, optionally sharded across
   domains *)

type cluster_result = {
  cl_n : int; (* members per shard *)
  cl_shards : int;
  cl_batched : bool;
  cl_formed : bool; (* every shard agreed on its full view *)
  cl_wall_seconds : float; (* slowest shard's steady window *)
  cl_frames : int; (* datagrams received across shards, steady window *)
  cl_frames_per_sec : float; (* aggregate across shards *)
  cl_submits : int;
  cl_deliveries : int;
  cl_latency : Hdr.t; (* submit->deliver, microseconds, all shards *)
  cl_false_suspicions : int; (* view changes after formation (faultless) *)
}

let form_timeout = Time.of_sec 30

(* keep a fixed number of updates in flight: enough to exercise the
   pipeline, few enough that delivery latency is queue-free *)
let inflight_target = 2

type shard_outcome = {
  sh_formed : bool;
  sh_wall : float;
  sh_frames : int;
  sh_submits : int;
  sh_deliveries : int;
  sh_latency : Hdr.t;
  sh_false_suspicions : int;
  sh_batched : bool;
}

let run_shard ~n ~seconds ~base_port ?batching ~shard () =
  let cfg = Live.config ~n ~base_port:(base_port + (shard * 64)) ?batching () in
  let recorder = Live.recorder () in
  let clock, cluster = Live.in_process cfg ~recorder () in
  Fun.protect ~finally:(fun () -> List.iter Node.kill (Cluster.nodes cluster))
  @@ fun () ->
  Cluster.start cluster;
  let full = Proc_set.full ~n in
  let formed () =
    match Live.agreed_view cluster with
    | Some (group, _) -> Proc_set.equal group full
    | None -> false
  in
  let sh_formed =
    Cluster.run_until cluster
      ~deadline:(Time.add (Clock.now clock) form_timeout)
      formed
  in
  let batched =
    Transport.batched (Node.transport (List.hd (Cluster.nodes cluster)))
  in
  let recv_total () =
    List.fold_left
      (fun acc node -> acc + Stats.count (Node.stats node) "live:recv")
      0 (Cluster.nodes cluster)
  in
  if not sh_formed then
    {
      sh_formed = false;
      sh_wall = 0.0;
      sh_frames = 0;
      sh_submits = 0;
      sh_deliveries = 0;
      sh_latency = Hdr.create ();
      sh_false_suspicions = 0;
      sh_batched = batched;
    }
  else begin
    let views_at_formation = List.length recorder.Live.views in
    let frames_at_formation = recv_total () in
    let latency = Hdr.create () in
    let submit_at = Hashtbl.create 64 in
    let seen_deliveries = ref 0 in
    let submits = ref 0 in
    let retired = ref 0 in
    let nodes = Array.of_list (Cluster.nodes cluster) in
    let pending = Hashtbl.create 16 in
    let submit_one () =
      let payload = Printf.sprintf "s%d-u%d" shard !submits in
      Hashtbl.replace submit_at payload (Clock.now clock);
      Hashtbl.replace pending payload n;
      Live.submit nodes.(!submits mod n) ~semantics:Semantics.total_strong
        payload;
      incr submits
    in
    let t0 = Unix.gettimeofday () in
    let wall_deadline = t0 +. seconds in
    let deadline = Time.add (Clock.now clock) (Time.of_sec 120) in
    (* the predicate runs right after each poll pass, so delivery
       timestamps are at most one pass late *)
    let step () =
      let now = Clock.now clock in
      let deliveries = recorder.Live.delivered in
      let fresh = List.length deliveries - !seen_deliveries in
      if fresh > 0 then begin
        List.iteri
          (fun i (_proc, payload) ->
            if i < fresh then begin
              (match Hashtbl.find_opt submit_at payload with
              | Some at -> Hdr.record latency (Time.to_us (Time.sub now at))
              | None -> ());
              match Hashtbl.find_opt pending payload with
              | Some 1 ->
                Hashtbl.remove pending payload;
                incr retired
              | Some k -> Hashtbl.replace pending payload (k - 1)
              | None -> ()
            end)
          deliveries;
        seen_deliveries := List.length deliveries
      end;
      if Unix.gettimeofday () >= wall_deadline then
        (* stop submitting, run on until everything in flight lands *)
        Hashtbl.length pending = 0
      else begin
        while Hashtbl.length pending < inflight_target do
          submit_one ()
        done;
        false
      end
    in
    ignore (Cluster.run_until cluster ~deadline ~poll_cap:(Time.of_ms 10) step);
    let wall = Unix.gettimeofday () -. t0 in
    {
      sh_formed = true;
      sh_wall = wall;
      sh_frames = recv_total () - frames_at_formation;
      sh_submits = !submits;
      sh_deliveries = !seen_deliveries;
      sh_latency = latency;
      sh_false_suspicions =
        List.length recorder.Live.views - views_at_formation;
      sh_batched = batched;
    }
  end

let cluster ?(n = 5) ?(shards = 1) ?(seconds = 2.0) ?(base_port = 49600)
    ?batching () =
  let outcomes =
    Cluster.Sharded.run ~shards (fun ~shard ->
        run_shard ~n ~seconds ~base_port ?batching ~shard ())
  in
  let latency = Hdr.create () in
  List.iter (fun o -> Hdr.merge ~into:latency o.sh_latency) outcomes;
  let wall = List.fold_left (fun acc o -> Float.max acc o.sh_wall) 0.0 outcomes in
  let frames = List.fold_left (fun acc o -> acc + o.sh_frames) 0 outcomes in
  {
    cl_n = n;
    cl_shards = shards;
    cl_batched = List.for_all (fun o -> o.sh_batched) outcomes;
    cl_formed = List.for_all (fun o -> o.sh_formed) outcomes;
    cl_wall_seconds = wall;
    cl_frames = frames;
    cl_frames_per_sec =
      (if wall > 0.0 then float_of_int frames /. wall else 0.0);
    cl_submits = List.fold_left (fun acc o -> acc + o.sh_submits) 0 outcomes;
    cl_deliveries =
      List.fold_left (fun acc o -> acc + o.sh_deliveries) 0 outcomes;
    cl_latency = latency;
    cl_false_suspicions =
      List.fold_left (fun acc o -> acc + o.sh_false_suspicions) 0 outcomes;
  }
