open Tasim
open Timewheel
module CS = Creator_state
module GC = Group_creator

(* ------------------------------------------------------------------ *)
(* Fig. 2 transition matrix                                            *)

let states_under_test =
  [
    CS.Join;
    CS.Failure_free;
    CS.Wrong_suspicion { suspect = Proc_id.of_int 2 };
    CS.One_failure_receive { suspect = Proc_id.of_int 2; since = Time.zero };
    CS.One_failure_send { suspect = Proc_id.of_int 2; since = Time.zero };
    CS.N_failure { wait_until_slot = 4 };
  ]

(* event classes, instantiated for self = p1, group = {p0..p4},
   suspect = p2. p1 is p2's ring predecessor; p3 is p2's successor. *)
let env =
  {
    GC.self = Proc_id.of_int 1;
    group = Proc_set.full ~n:5;
    n = 5;
    majority = 3;
    current_slot = 10;
    single_failure_election = true;
  }

let event_classes =
  let nd ~from ~concur ~pred =
    GC.Nd_received
      {
        from = Proc_id.of_int from;
        suspect = Proc_id.of_int 2;
        since = Time.zero;
        concur;
        from_ring_predecessor = pred;
      }
  in
  [
    ("timeout", GC.Fd_timeout { suspect = Proc_id.of_int 2; since = Time.zero });
    ("ND concur,pred", nd ~from:0 ~concur:true ~pred:true);
    ("ND concur", nd ~from:3 ~concur:true ~pred:false);
    ("ND !concur", nd ~from:3 ~concur:false ~pred:false);
    ( "D member",
      GC.Decision_received
        {
          from = Proc_id.of_int 3;
          from_expected = true;
          from_suspect = false;
          in_new_group = true;
        } );
    ( "D excl",
      GC.Decision_received
        {
          from = Proc_id.of_int 3;
          from_expected = true;
          from_suspect = false;
          in_new_group = false;
        } );
    ( "D suspect",
      GC.Decision_received
        {
          from = Proc_id.of_int 2;
          from_expected = false;
          from_suspect = true;
          in_new_group = true;
        } );
    ( "R expected",
      GC.Reconfig_received { from_expected = true; from_member = true } );
    ("all heard", GC.All_new_members_heard);
  ]

let abbrev = function
  | CS.KJoin -> "J"
  | CS.KFailure_free -> "FF"
  | CS.KWrong_suspicion -> "WS"
  | CS.KOne_failure_receive -> "1R"
  | CS.KOne_failure_send -> "1S"
  | CS.KN_failure -> "NF"

let transition_matrix () =
  let table =
    Table.create
      ~title:
        "E5a: group-creator transition matrix (regenerates Fig. 2; self=p1, \
         suspect=p2, group=p0..p4)"
      ~columns:("state" :: List.map fst event_classes)
  in
  List.iter
    (fun state ->
      let row =
        List.map
          (fun (_, event) ->
            let state', directives = GC.step env state event in
            let dir_marks =
              List.filter_map
                (fun d ->
                  match d with
                  | GC.Send_no_decision _ -> Some "nd!"
                  | GC.Exclude_and_decide _ -> Some "excl!"
                  | GC.Take_over_decider -> Some "take!"
                  | GC.Resend_last_control -> Some "resend!"
                  | GC.Start_reconfiguration -> Some "rcfg!"
                  | GC.Adopt_decision -> None
                  | GC.Enter_join -> None)
                directives
            in
            String.concat " "
              (abbrev (CS.kind_of state') :: dir_marks))
          event_classes
      in
      Table.add_row table (Fmt.str "%a" CS.pp_kind (CS.kind_of state) :: row))
    states_under_test;
  Table.note table
    "cells: next state (J/FF/WS/1R/1S/NF) plus side effects (nd! send \
     no-decision, excl! exclude suspect & decide, take! take over decider, \
     resend! retransmit last control, rcfg! start reconfiguration)";
  table

(* ------------------------------------------------------------------ *)
(* randomized timed-spec check                                         *)

type spec_result = {
  runs : int;
  agreement_violations : int;
  majority_violations : int;
  converged : int;
  max_delta_us : float;
}

let random_schedule ~rng ~n ~horizon =
  (* a few crash / recover events, never killing a majority for good *)
  let events = ref [] in
  let crashed = ref Proc_set.empty in
  let t = ref (Time.of_sec 1) in
  while Time.compare !t horizon < 0 do
    t := Time.add !t (Time.of_ms (200 + Rng.int rng 800));
    if Time.compare !t horizon < 0 then begin
      let p = Proc_id.of_int (Rng.int rng n) in
      if Proc_set.mem p !crashed then begin
        crashed := Proc_set.remove p !crashed;
        events := (!t, `Recover p) :: !events
      end
      else if Proc_set.cardinal !crashed + 1 <= (n - 1) / 2 then begin
        crashed := Proc_set.add p !crashed;
        events := (!t, `Crash p) :: !events
      end
    end
  done;
  (* recover everyone at the horizon so the system can converge *)
  let heal =
    List.map (fun p -> (horizon, `Recover p)) (Proc_set.to_list !crashed)
  in
  (List.rev !events @ heal, horizon)

let one_spec_run ~n ~seed =
  let svc = Run.service ~seed ~n () in
  let rng = Rng.create (seed * 7919) in
  let svc = Run.settle svc in
  let engine = Service.engine svc in
  let quiesce =
    Time.add (Service.now svc) (Time.of_sec 6)
  in
  let schedule, _ = random_schedule ~rng ~n ~horizon:quiesce in
  List.iter
    (fun (t, ev) ->
      match ev with
      | `Crash p -> Service.crash_at svc t p
      | `Recover p -> Service.recover_at svc t p)
    schedule;
  (* property (2)+(5) sampling probe *)
  let agreement_violations = ref 0 in
  let majority_violations = ref 0 in
  (* check every installed view for majority *)
  Service.on_view svc (fun _proc v ->
      if not (Proc_set.is_majority v.Service.group ~n) then
        incr majority_violations);
  (* sample concurrent agreement every 50 ms *)
  let rec sample t =
    if Time.compare t (Time.add quiesce (Time.of_sec 6)) < 0 then begin
      Engine.at engine t (fun () ->
          (* all up-to-date members must agree on the newest gid *)
          let views =
            List.filter_map
              (fun id ->
                match Engine.state_of engine id with
                | Some s
                  when (match CS.kind_of (Member.creator_state s) with
                       | CS.KFailure_free | CS.KWrong_suspicion
                       | CS.KOne_failure_receive | CS.KOne_failure_send ->
                         true
                       | CS.KJoin | CS.KN_failure -> false)
                       && Member.has_group s ->
                  Some (Member.group_id s, Member.group s)
                | Some _ | None -> None)
              (Proc_id.all ~n)
          in
          let max_gid =
            List.fold_left
              (fun acc (gid, _) -> Broadcast.Group_id.max acc gid)
              Broadcast.Group_id.none views
          in
          let newest =
            List.filter
              (fun (gid, _) -> Broadcast.Group_id.equal gid max_gid)
              views
          in
          match newest with
          | (_, g) :: rest ->
            if not (List.for_all (fun (_, g') -> Proc_set.equal g g') rest)
            then incr agreement_violations
          | [] -> ());
      sample (Time.add t (Time.of_ms 50))
    end
  in
  sample (Service.now svc);
  Service.run svc ~until:(Time.add quiesce (Time.of_sec 6));
  (* convergence after quiescence *)
  let converged, delta =
    let views = Service.views_installed svc in
    let full_after =
      List.filter
        (fun (_, v) ->
          Time.compare v.Service.at quiesce >= 0
          && Proc_set.cardinal v.Service.group = n)
        views
    in
    match Service.agreed_view svc with
    | Some v when Proc_set.cardinal v.Service.group = n ->
      let last_install =
        List.fold_left
          (fun acc (_, v) -> Time.max acc v.Service.at)
          Time.zero full_after
      in
      (true, float_of_int (Time.sub last_install quiesce))
    | Some _ | None -> (false, nan)
  in
  ( !agreement_violations,
    !majority_violations,
    converged,
    delta,
    Run.survivors_consistent svc )

let spec_check ~seeds ~n =
  List.fold_left
    (fun acc seed ->
      let agree, majority, converged, delta, _consistent =
        one_spec_run ~n ~seed
      in
      {
        runs = acc.runs + 1;
        agreement_violations = acc.agreement_violations + agree;
        majority_violations = acc.majority_violations + majority;
        converged = (acc.converged + if converged then 1 else 0);
        max_delta_us =
          (if Float.is_nan delta then acc.max_delta_us
           else Float.max acc.max_delta_us delta);
      })
    {
      runs = 0;
      agreement_violations = 0;
      majority_violations = 0;
      converged = 0;
      max_delta_us = 0.0;
    }
    seeds

let run ?(quick = false) () =
  let matrix = transition_matrix () in
  let seeds = if quick then [ 41 ] else [ 41; 42; 43; 44; 45; 46 ] in
  let table =
    Table.create ~title:"E5b: Section 3 membership properties under churn"
      ~columns:
        [
          "N";
          "runs";
          "agreement violations";
          "majority violations";
          "converged";
          "max Delta after quiescence";
        ]
  in
  List.iter
    (fun n ->
      let r = spec_check ~seeds ~n in
      Table.add_row table
        [
          string_of_int n;
          string_of_int r.runs;
          string_of_int r.agreement_violations;
          string_of_int r.majority_violations;
          Fmt.str "%d/%d" r.converged r.runs;
          Table.cell_ms r.max_delta_us;
        ])
    (if quick then [ 5 ] else [ 5; 7 ]);
  Table.note table
    "random crash/recovery schedules; agreement sampled every 50ms over \
     up-to-date members (properties 2 and 5 must never be violated; \
     property 1/3/4: bounded convergence after quiescence)";
  [ matrix; table ]
