(* Log-bucketed latency histogram in the HdrHistogram style.

   Values below [sub] (32) are exact; above, each power-of-two range
   splits into [sub] subbuckets, so the representative value of any
   bucket is within 1/32 (~3%) of every value it absorbed. Recording
   is a couple of shifts and one array increment — no allocation —
   so it is safe inside a latency-measuring hot loop. *)

let sub = 32
let sub_bits = 5 (* log2 sub *)

(* enough ranges to cover any int64-microsecond span we could observe *)
let ranges = 56
let buckets = sub + (ranges * sub)

type t = {
  counts : int array;
  mutable total : int;
  mutable lo : int; (* exact observed min; max_int when empty *)
  mutable hi : int; (* exact observed max *)
  mutable sum : int;
}

let create () =
  { counts = Array.make buckets 0; total = 0; lo = max_int; hi = 0; sum = 0 }

let msb v =
  (* position of the highest set bit; v >= 1 *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index v =
  if v < sub then v
  else
    let b = msb v - sub_bits in
    let b = if b >= ranges then ranges - 1 else b in
    sub + (b * sub) + ((v lsr b) - sub)

(* representative (midpoint) value of a bucket *)
let value_at idx =
  if idx < sub then idx
  else
    let b = (idx - sub) / sub in
    let s = (idx - sub) mod sub in
    (((sub + s) lsl b) + ((sub + s + 1) lsl b) - 1) / 2

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(index v) <- t.counts.(index v) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v < t.lo then t.lo <- v;
  if v > t.hi then t.hi <- v

let count t = t.total
let min_value t = if t.total = 0 then 0 else t.lo
let max_value t = t.hi
let mean t = if t.total = 0 then 0.0 else float_of_int t.sum /. float_of_int t.total

let percentile t p =
  if t.total = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
      if r < 1 then 1 else if r > t.total then t.total else r
    in
    let acc = ref 0 in
    let found = ref t.hi in
    (try
       for i = 0 to buckets - 1 do
         acc := !acc + t.counts.(i);
         if !acc >= rank then begin
           found := value_at i;
           raise Exit
         end
       done
     with Exit -> ());
    (* clamp the bucket representative to the exact observed range *)
    if !found < t.lo then t.lo else if !found > t.hi then t.hi else !found
  end

let merge ~into src =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) src.counts;
  into.total <- into.total + src.total;
  into.sum <- into.sum + src.sum;
  if src.total > 0 then begin
    if src.lo < into.lo then into.lo <- src.lo;
    if src.hi > into.hi then into.hi <- src.hi
  end
