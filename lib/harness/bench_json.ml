type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then begin
      (* shortest decimal form that parses back to the same double:
         artifacts must replay bit-exactly (a chaos plan's [prob] feeds
         seeded coin flips) *)
      let s = Printf.sprintf "%.15g" f in
      let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
      Buffer.add_string buf s
    end
    else Buffer.add_string buf "null"
  | String s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_string buf ", ";
        emit buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        emit buf (String k);
        Buffer.add_string buf ": ";
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the same subset the emitter writes. *)

exception Parse_error of string

let of_string s =
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < len
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= len
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= len then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= len then fail "unterminated escape";
         (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'u' ->
           if !pos + 4 >= len then fail "truncated \\u escape";
           let hex = String.sub s (!pos + 1) 4 in
           let code =
             try int_of_string ("0x" ^ hex)
             with Failure _ -> fail "bad \\u escape"
           in
           if code > 0xff then fail "\\u escape beyond latin-1"
           else Buffer.add_char buf (Char.chr code);
           pos := !pos + 4
         | c -> fail (Printf.sprintf "bad escape %C" c));
         advance ());
        go ()
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' -> true
      | '.' | 'e' | 'E' ->
        is_float := true;
        true
      | _ -> false
    in
    while !pos < len && numeric s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> of_string contents
  | exception Sys_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
