(** Engine-throughput macrobenchmark.

    A fixed, deterministic 5-process broadcast workload: every process
    broadcasts one message per simulated millisecond (4 datagrams each,
    no losses) and every 256th payload raises an observation, so one
    simulated second dispatches a stable mix of timer, delivery and
    observation events through the full [Tasim.Engine] hot path. The
    measured quantity is wall-clock events per second; the simulated
    event counts are seed-determined and identical across runs, so two
    builds are directly comparable. Results land in [BENCH_engine.json]
    via [bench/main.exe micro] (see DESIGN.md section 5). *)

type result = {
  sim_seconds : float;  (** simulated duration of the run *)
  wall_seconds : float;  (** wall-clock time of [Engine.run] *)
  sends : int;  (** datagrams handed to the network *)
  deliveries : int;  (** datagrams dispatched to automata *)
  timer_fires : int;
  observations : int;
  events : int;  (** sends + deliveries + timer fires *)
  events_per_sec : float;  (** events / wall_seconds *)
  minor_words_per_event : float;
      (** minor-heap allocation per event over the run *)
}

val run : ?seconds:int -> ?seed:int -> unit -> result
(** Defaults: 10 simulated seconds, seed 42 (~450k events). *)
