(** M4 macrobenchmark: the live data plane at hardware speed.

    Two experiments over real UDP sockets on localhost:

    {b Flood} — raw {!Runtime.Transport} throughput: one sender
    broadcasts minimal frames to [n-1] receivers as fast as the data
    plane moves them. Run once batched ([sendmmsg]/[recvmmsg]) and
    once on the portable per-datagram fallback, the pair measures the
    syscall-batching speedup and the syscalls-per-frame ratio (from
    the [live:syscall:*] counters).

    {b Cluster} — the full Figure 1 stack under load: [shards]
    independent [n]-member groups, one per OCaml domain
    ({!Runtime.Cluster.Sharded}), each forming a view and then
    sustaining a steady stream of totally-ordered updates. Records
    submit→deliver latency into an {!Hdr} histogram (stamped by the
    shard's own poll loop, so samples are at most one poll pass
    coarse), aggregate frames/s across shards, and — the run being
    faultless — every post-formation view change as a false
    suspicion. *)

type flood_result = {
  fl_n : int;
  fl_batched : bool;
  fl_wall_seconds : float;
  fl_sent : int;
  fl_received : int;
  fl_frames_per_sec : float;  (** received frames per wall second *)
  fl_syscalls : int;  (** send + receive syscalls, both primitives *)
  fl_syscalls_per_frame : float;  (** syscalls / (sent + received) *)
}

val flood :
  ?n:int ->
  ?seconds:float ->
  ?base_port:int ->
  ?batching:bool ->
  unit ->
  flood_result
(** Defaults: [n = 4] transports on [base_port = 49400], one second.
    [batching] as {!Runtime.Transport.create}. *)

type cluster_result = {
  cl_n : int;  (** members per shard *)
  cl_shards : int;
  cl_batched : bool;
  cl_formed : bool;  (** every shard agreed on its full view *)
  cl_wall_seconds : float;  (** slowest shard's steady-state window *)
  cl_frames : int;  (** datagrams received across shards in the window *)
  cl_frames_per_sec : float;  (** aggregate across shards *)
  cl_submits : int;
  cl_deliveries : int;
  cl_latency : Hdr.t;  (** submit→deliver, microseconds, all shards *)
  cl_false_suspicions : int;
      (** post-formation view changes (the run is faultless, so any
          change is a false suspicion) *)
}

val cluster :
  ?n:int ->
  ?shards:int ->
  ?seconds:float ->
  ?base_port:int ->
  ?batching:bool ->
  unit ->
  cluster_result
(** Defaults: [n = 5] members per shard, [shards = 1], two seconds of
    steady state, ports from [base_port = 49600] (each shard strides
    64 ports up). A shard that fails to form within 30 s reports
    [cl_formed = false] with empty measurements rather than raising. *)
