open Tasim
open Timewheel

type mode = All_to_all | Gossip

let mode_name = function All_to_all -> "all-to-all" | Gossip -> "gossip"

type result = {
  n : int;
  mode : mode;
  formed : bool;
  form_sim_seconds : float;
  form_wall_seconds : float;
  sim_seconds : float;
  wall_seconds : float;
  receives : int;
  receives_per_member_per_sec : float;
  false_suspicions : int;
  events : int;
  events_per_sec : float;
}

let total counters prefix =
  let lp = String.length prefix in
  List.fold_left
    (fun acc (name, v) ->
      if String.length name >= lp && String.sub name 0 lp = prefix then acc + v
      else acc)
    0 counters

let params ~n ~mode =
  match mode with
  | All_to_all -> Params.make ~n ()
  | Gossip ->
    Params.make ~n ~dissemination:Broadcast.Dissemination.default_gossip
      ~adaptive_suspicion:true ()

let run ?(n = 256) ?(seconds = 3) ?(seed = 42) ?(mode = Gossip) () =
  let params = params ~n ~mode in
  let svc = Run.service ~seed ~params ~n () in
  (* the run is faultless, so every suspicion observed is a false one *)
  let suspicions = ref 0 in
  Service.on_obs svc (fun _at _proc obs ->
      match obs with
      | Member.Suspected _ -> incr suspicions
      | _ -> ());
  let w0 = Unix.gettimeofday () in
  let formed = match Run.settle svc with _ -> true | exception Failure _ -> false in
  let form_wall = Unix.gettimeofday () -. w0 in
  let form_sim = Time.to_sec_f (Service.now svc) in
  if not formed then
    {
      n;
      mode;
      formed;
      form_sim_seconds = form_sim;
      form_wall_seconds = form_wall;
      sim_seconds = 0.0;
      wall_seconds = 0.0;
      receives = 0;
      receives_per_member_per_sec = 0.0;
      false_suspicions = !suspicions;
      events = 0;
      events_per_sec = 0.0;
    }
  else begin
    let before = Run.counters_snapshot svc in
    let until = Time.add (Service.now svc) (Time.of_sec seconds) in
    let t0 = Unix.gettimeofday () in
    Service.run svc ~until;
    let wall = Unix.gettimeofday () -. t0 in
    let diff = Run.counters_diff ~before ~after:(Run.counters_snapshot svc) in
    let sends = total diff "sent:" in
    let receives = total diff "delivered:" in
    let events = sends + receives in
    {
      n;
      mode;
      formed;
      form_sim_seconds = form_sim;
      form_wall_seconds = form_wall;
      sim_seconds = float_of_int seconds;
      wall_seconds = wall;
      receives;
      receives_per_member_per_sec =
        float_of_int receives /. float_of_int n /. float_of_int seconds;
      false_suspicions = !suspicions;
      events;
      events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    }
  end
