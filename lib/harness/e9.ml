open Tasim
open Timewheel

type outcome = {
  formed_at : Time.t option;
  excluded_at : Time.t option;  (** all survivors installed a view w/o victim *)
  rejoined_at : Time.t option;  (** full group again *)
  cs_msgs : int;
  gc_msgs : int;
}

let one_run ~n ~seed ~omission ~crash =
  let params = Params.make ~n () in
  let cs_cfg = Clocksync.Protocol.default_config ~n in
  let cs_cfg = { cs_cfg with Clocksync.Protocol.delta = params.Params.delta } in
  let member_cfg = Member.config ~initial_app:() params in
  let net =
    {
      Net.default_config with
      Net.delta = params.Params.delta;
      omission_prob = omission;
    }
  in
  let engine = Engine.create { Engine.default_config with Engine.net; seed } ~n in
  Engine.classify engine Full_stack.kind_of_msg;
  let rng = Rng.create (seed + 17) in
  let clocks =
    Array.init n (fun _ ->
        Hardware_clock.random rng ~max_offset:(Time.of_ms 100) ~max_drift:1e-5)
  in
  let views : (Time.t * Proc_id.t * Broadcast.Group_id.t * Proc_set.t) list ref =
    ref []
  in
  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Full_stack.Member_obs (Member.View_installed { group; group_id }) ->
        views := (at, proc, group_id, group) :: !views
      | _ -> ());
  let automaton = Full_stack.automaton member_cfg cs_cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:(Engine.clock_source_of_hardware clocks.(Proc_id.to_int id))
        ())
    (Proc_id.all ~n);
  let victim = Proc_id.of_int 2 in
  let crash_at = Time.of_sec 3 in
  let recover_at = Time.of_sec 6 in
  if crash then begin
    Engine.crash_at engine crash_at victim;
    Engine.recover_at engine recover_at victim
  end;
  Engine.run engine ~until:(Time.of_sec 12);
  (* analysis over view installations *)
  let all = List.rev !views in
  let time_all_hold pred ~among ~after =
    (* earliest time every process in [among] has most recently
       installed a view satisfying [pred], looking at installs >= after *)
    let ok p =
      List.find_map
        (fun (at, proc, gid, g) ->
          if Proc_id.equal proc p && Time.compare at after >= 0 && pred gid g
          then Some at
          else None)
        all
    in
    let times = List.map ok among in
    if List.for_all Option.is_some times then
      Some
        (List.fold_left (fun acc t -> Time.max acc (Option.get t)) Time.zero
           times)
    else None
  in
  let everyone = Proc_id.all ~n in
  let survivors = List.filter (fun p -> not (Proc_id.equal p victim)) everyone in
  let formed_at =
    time_all_hold
      (fun _ g -> Proc_set.cardinal g = n)
      ~among:everyone ~after:Time.zero
  in
  let excluded_at =
    if crash then
      time_all_hold
        (fun _ g -> not (Proc_set.mem victim g))
        ~among:survivors ~after:crash_at
    else None
  in
  let rejoined_at =
    if crash then
      time_all_hold
        (fun _ g -> Proc_set.cardinal g = n)
        ~among:everyone ~after:recover_at
    else None
  in
  let stats = Engine.stats engine in
  let count prefix =
    Run.sent_matching (Stats.counters stats) ~prefixes:prefix
  in
  {
    formed_at;
    excluded_at;
    rejoined_at;
    cs_msgs = count [ "cs-" ];
    gc_msgs = count [ "decision"; "join"; "no-decision"; "reconfiguration";
                      "state-transfer" ];
  }

let cell_time = function
  | Some t -> Fmt.str "%a" Time.pp t
  | None -> "-"

let run ?(quick = false) () =
  let n = 5 in
  let table =
    Table.create
      ~title:
        "E9: full Fig.1 stack (membership over real fail-aware clock sync, \
         N=5; crash p2 at 3s, recover at 6s)"
      ~columns:
        [
          "omission prob";
          "group formed";
          "victim excluded";
          "victim rejoined";
          "cs msgs";
          "gc msgs";
        ]
  in
  let omissions = if quick then [ 0.0 ] else [ 0.0; 0.05; 0.1 ] in
  List.iter
    (fun omission ->
      let r = one_run ~n ~seed:71 ~omission ~crash:true in
      Table.add_row table
        [
          Table.cell_f omission;
          cell_time r.formed_at;
          cell_time r.excluded_at;
          cell_time r.rejoined_at;
          string_of_int r.cs_msgs;
          string_of_int r.gc_msgs;
        ])
    omissions;
  Table.note table
    "clock-sync traffic (cs msgs) is the substrate's own layer (Fig. 1); \
     the membership protocol itself still adds no failure-free messages";
  [ table ]
