open Tasim

type result = {
  sim_seconds : float;
  wall_seconds : float;
  sends : int;
  deliveries : int;
  timer_fires : int;
  observations : int;
  events : int;
  events_per_sec : float;
  minor_words_per_event : float;
}

let n = 5
let period = Time.of_ms 1

(* Four message kinds so the engine's per-kind counter path is
   exercised with more than one key, as real protocols do. *)
let classify k =
  match k land 3 with
  | 0 -> "alpha"
  | 1 -> "beta"
  | 2 -> "gamma"
  | _ -> "delta"

let automaton ~timer_fires =
  {
    Engine.name = "bench-broadcast";
    init =
      (fun ~self:_ ~n:_ ~clock ~incarnation:_ ->
        (0, [ Engine.Set_timer { key = 0; at_clock = Time.add clock period } ]));
    on_receive =
      (fun round ~clock:_ ~src:_ msg ->
        if msg land 255 = 0 then (round, [ Engine.Observe () ])
        else (round, []));
    on_timer =
      (fun round ~clock ~key:_ ->
        incr timer_fires;
        ( round + 1,
          [
            Engine.Broadcast round;
            Engine.Set_timer { key = 0; at_clock = Time.add clock period };
          ] ));
  }

let run ?(seconds = 10) ?(seed = 42) () =
  let engine = Engine.create { Engine.default_config with Engine.seed } ~n in
  Engine.classify engine classify;
  let observations = ref 0 in
  Engine.on_observe engine (fun _at _proc () -> incr observations);
  let timer_fires = ref 0 in
  let a = automaton ~timer_fires in
  List.iter
    (fun id -> Engine.add_process engine id a ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  Gc.minor ();
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Engine.run engine ~until:(Time.of_sec seconds);
  let wall = Unix.gettimeofday () -. t0 in
  let m1 = Gc.minor_words () in
  let stats = Engine.stats engine in
  let total prefix =
    let lp = String.length prefix in
    List.fold_left
      (fun acc (name, v) ->
        if String.length name >= lp && String.sub name 0 lp = prefix then
          acc + v
        else acc)
      0 (Stats.counters stats)
  in
  let sends = total "sent:" in
  let deliveries = total "delivered:" in
  let events = sends + deliveries + !timer_fires in
  {
    sim_seconds = float_of_int seconds;
    wall_seconds = wall;
    sends;
    deliveries;
    timer_fires = !timer_fires;
    observations = !observations;
    events;
    events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    minor_words_per_event =
      (if events > 0 then (m1 -. m0) /. float_of_int events else 0.0);
  }
