(** M2 macrobenchmark: large-group membership steady state.

    Forms an [n]-member group (default 64) under the full simulated
    stack — membership, broadcast, clock sync — then runs [seconds] of
    faultless steady state and reports simulator throughput
    (sends + deliveries per wall second) and GC pressure
    ({!Gc.minor_words} per event) over that window.

    Where {!Engine_bench} (M1) measures the bare event loop with a
    trivial automaton, this measures the protocol itself at a group
    size where any O(n) scan per message or per-call allocation in the
    membership hot paths dominates the profile. *)

type result = {
  n : int;
  form_sim_seconds : float;  (** simulated time until the full view *)
  form_wall_seconds : float;
  sim_seconds : float;  (** steady-state window, simulated *)
  wall_seconds : float;  (** steady-state window, wall clock *)
  sends : int;
  deliveries : int;
  events : int;  (** sends + deliveries *)
  events_per_sec : float;
  minor_words_per_event : float;
}

val run : ?n:int -> ?seconds:int -> ?seed:int -> unit -> result
