(** Minimal JSON emitter and parser for machine-readable artifacts.

    Just enough JSON to write [BENCH_engine.json] (see DESIGN.md
    section 5) and to round-trip chaos fault-plan artifacts (DESIGN.md
    section 8) without adding a dependency: objects, arrays, numbers,
    strings, booleans, null. Non-finite floats are emitted as [null]
    so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val write_file : string -> t -> unit
(** Serialize to a file, overwriting it, with a trailing newline. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (integers without [.]/[e] come back as [Int],
    other numbers as [Float]; string escapes are limited to the ones
    {!to_string} emits plus [\u00XX]). Trailing whitespace is allowed,
    trailing garbage is an error. *)

val read_file : string -> (t, string) result

(** {1 Accessors} — shallow, for decoding parsed artifacts. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val to_int : t -> int option
val to_str : t -> string option
val to_list : t -> t list option
