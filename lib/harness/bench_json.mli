(** Minimal JSON emitter for machine-readable benchmark results.

    Just enough JSON to write [BENCH_engine.json] (see DESIGN.md
    section 5) without adding a dependency: objects, arrays, numbers,
    strings, booleans, null. Non-finite floats are emitted as [null]
    so the output always parses. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string

val write_file : string -> t -> unit
(** Serialize to a file, overwriting it, with a trailing newline. *)
