open Tasim

type result = {
  n : int;
  form_sim_seconds : float;
  form_wall_seconds : float;
  sim_seconds : float;
  wall_seconds : float;
  sends : int;
  deliveries : int;
  events : int;
  events_per_sec : float;
  minor_words_per_event : float;
}

let total counters prefix =
  let lp = String.length prefix in
  List.fold_left
    (fun acc (name, v) ->
      if String.length name >= lp && String.sub name 0 lp = prefix then acc + v
      else acc)
    0 counters

let run ?(n = 64) ?(seconds = 3) ?(seed = 42) () =
  let svc = Run.service ~seed ~n () in
  let w0 = Unix.gettimeofday () in
  let svc = Run.settle svc in
  let form_wall = Unix.gettimeofday () -. w0 in
  let form_sim = Time.to_sec_f (Timewheel.Service.now svc) in
  (* steady state: the formed group rotating deciders, syncing clocks,
     exchanging proposals/decisions — no faults, no membership churn *)
  let before = Run.counters_snapshot svc in
  let until =
    Time.add (Timewheel.Service.now svc) (Time.of_sec seconds)
  in
  Gc.minor ();
  let m0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  Timewheel.Service.run svc ~until;
  let wall = Unix.gettimeofday () -. t0 in
  let m1 = Gc.minor_words () in
  let diff = Run.counters_diff ~before ~after:(Run.counters_snapshot svc) in
  let sends = total diff "sent:" in
  let deliveries = total diff "delivered:" in
  let events = sends + deliveries in
  {
    n;
    form_sim_seconds = form_sim;
    form_wall_seconds = form_wall;
    sim_seconds = float_of_int seconds;
    wall_seconds = wall;
    sends;
    deliveries;
    events;
    events_per_sec = (if wall > 0.0 then float_of_int events /. wall else 0.0);
    minor_words_per_event =
      (if events > 0 then (m1 -. m0) /. float_of_int events else 0.0);
  }
