(** Log-bucketed latency histogram in the HdrHistogram style.

    Records non-negative integers (microseconds, in this repo's use)
    with ~3% relative error: values below 32 are exact, larger values
    land in one of 32 subbuckets per power-of-two range. Recording is
    allocation-free, so the histogram can sit inside the latency path
    it measures. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Negative values clamp to 0. *)

val count : t -> int
val min_value : t -> int
(** Exact observed minimum; 0 when empty. *)

val max_value : t -> int
(** Exact observed maximum; 0 when empty. *)

val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0, 100]: the representative value of
    the bucket holding the rank-⌈p/100·count⌉ observation, clamped to
    the exact observed min/max. 0 when empty. *)

val merge : into:t -> t -> unit
(** Fold one histogram into another (e.g. per-shard histograms into a
    run total). *)
