type timer_id = int

type timer = {
  id : timer_id;
  expiry_tick : int;
  callback : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  tick : int;
  wheel_size : int;
  buckets : timer list ref array; (* unordered; filtered at fire time *)
  by_id : (timer_id, timer) Hashtbl.t;
  mutable current_tick : int;
  mutable next_id : int;
  mutable pending : int;
}

let create ?(wheel_size = 256) ~tick () =
  if tick <= 0 then invalid_arg "Timer_wheel.create: tick must be positive";
  {
    tick;
    wheel_size;
    buckets = Array.init wheel_size (fun _ -> ref []);
    by_id = Hashtbl.create 64;
    current_tick = 0;
    next_id = 0;
    pending = 0;
  }

let now t = t.current_tick * t.tick

let schedule t ~at callback =
  let expiry_tick =
    let raw = (at + t.tick - 1) / t.tick in
    if raw <= t.current_tick then t.current_tick + 1 else raw
  in
  let id = t.next_id in
  t.next_id <- id + 1;
  let timer = { id; expiry_tick; callback; cancelled = false } in
  let bucket = t.buckets.(expiry_tick mod t.wheel_size) in
  bucket := timer :: !bucket;
  Hashtbl.add t.by_id id timer;
  t.pending <- t.pending + 1;
  id

let cancel t id =
  match Hashtbl.find_opt t.by_id id with
  | None -> false
  | Some timer ->
    if timer.cancelled then false
    else begin
      timer.cancelled <- true;
      Hashtbl.remove t.by_id id;
      t.pending <- t.pending - 1;
      (* purge the bucket now: under an arm/cancel/re-arm-every-cycle
         pattern, leaving cancelled timers in place until their expiry
         tick makes buckets accumulate garbage that every fire_bucket
         partition then has to scan. The timer may legitimately be
         absent (cancelled from a callback while sitting in the due
         list fire_bucket already detached); the [cancelled] flag
         covers that path. *)
      let bucket = t.buckets.(timer.expiry_tick mod t.wheel_size) in
      bucket := List.filter (fun other -> other != timer) !bucket;
      true
    end

let fire_bucket t tick =
  let bucket = t.buckets.(tick mod t.wheel_size) in
  let due, later =
    List.partition (fun timer -> timer.expiry_tick = tick) !bucket
  in
  bucket := later;
  (* fire in arming order: the bucket list is LIFO *)
  let due = List.rev due in
  let fired = ref 0 in
  let fire timer =
    if not timer.cancelled then begin
      Hashtbl.remove t.by_id timer.id;
      t.pending <- t.pending - 1;
      incr fired;
      timer.callback ()
    end
  in
  List.iter fire due;
  !fired

let advance t ~to_ =
  let target_tick = to_ / t.tick in
  let fired = ref 0 in
  while t.current_tick < target_tick do
    t.current_tick <- t.current_tick + 1;
    fired := !fired + fire_bucket t t.current_tick
  done;
  !fired

let pending t = t.pending

let resident t =
  Array.fold_left (fun acc bucket -> acc + List.length !bucket) 0 t.buckets

let next_expiry t =
  if t.pending = 0 then None
  else
    Some
      (Hashtbl.fold
         (fun _ timer acc -> Stdlib.min acc (timer.expiry_tick * t.tick))
         t.by_id max_int)
