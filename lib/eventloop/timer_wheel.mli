(** Hashed timing wheel.

    The event-based implementation described in Section 5 of the paper
    must manage a large number of concurrently armed timeouts (one per
    surveilled group member, plus protocol timers) cheaply. A hashed
    timing wheel gives O(1) arming and cancellation: time advances in
    fixed-size ticks over a circular array of buckets, and a timer armed
    [d] ticks ahead lands in bucket [(current + d) mod size] with a
    remaining-rounds counter.

    The wheel is driven by logical ticks so it is usable both inside the
    deterministic simulator and in wall-clock event loops. *)

type t

type timer_id
(** Handle for cancellation. Ids are never reused by a wheel. *)

val create : ?wheel_size:int -> tick:int -> unit -> t
(** [tick] is the tick length in arbitrary time units (e.g.
    microseconds); [wheel_size] is the number of buckets (default
    256). *)

val now : t -> int
(** Current wheel time, in the same units as [tick]. *)

val schedule : t -> at:int -> (unit -> unit) -> timer_id
(** Arm a timer to fire when the wheel reaches time [at] (clamped to
    the next tick when already past). *)

val cancel : t -> timer_id -> bool
(** [true] when the timer was still pending. Cancelling an expired or
    already-cancelled timer returns [false]. The timer is purged from
    its bucket immediately, so arm/cancel/re-arm churn never
    accumulates dead entries ({!resident} stays equal to
    {!pending}). *)

val advance : t -> to_:int -> int
(** Move wheel time forward to [to_], firing every timer whose expiry
    was reached, in expiry order within each tick. Returns the number
    of timers fired. Time never moves backwards. *)

val pending : t -> int
(** Number of armed, not-yet-fired, not-cancelled timers. *)

val resident : t -> int
(** Number of timer records physically held in buckets. Equal to
    {!pending} (cancellation purges its bucket); exposed so tests can
    assert bucket load stays bounded under re-arm churn. *)

val next_expiry : t -> int option
(** Earliest pending expiry, in the same units as [tick] (the time the
    wheel must be {!advance}d to for the next timer to fire); [None]
    when nothing is pending. O(pending) — meant for wall-clock event
    loops computing a poll deadline, not for hot per-event use. *)
