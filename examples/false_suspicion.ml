(* False suspicion masked: the wrong-suspicion state at work.

   One decision message is dropped between the decider and its successor
   only. The successor's failure detector times out and starts a
   no-decision election — but every other member still holds the
   decision, does not concur, and the sender's successor takes the
   decider role over immediately (Section 4.2, wrong-suspicion state).
   Result: the group never changes and the update stream continues
   undisturbed — the paper's claim that "the group communication service
   is not interrupted, if a failure suspicion turns out to be a false
   alarm".

   Run with:  dune exec examples/false_suspicion.exe *)

open Tasim
open Timewheel
open Broadcast

let () =
  let n = 5 in
  let params = Params.make ~n () in
  let svc =
    Service.create ~apply:(fun log v -> v :: log) ~initial_app:[] params
  in
  Service.on_view svc (fun proc view ->
      Fmt.pr "[%a] %a installed view #%a = %a@." Time.pp view.Service.at
        Proc_id.pp proc Group_id.pp view.Service.group_id Proc_set.pp
        view.Service.group);
  Service.on_obs svc (fun at proc obs ->
      match obs with
      | Member.Suspected { suspect } ->
        Fmt.pr "[%a] %a SUSPECTS %a@." Time.pp at Proc_id.pp proc Proc_id.pp
          suspect
      | Member.Transition { from_; to_ } ->
        Fmt.pr "[%a] %a: %a -> %a@." Time.pp at Proc_id.pp proc
          Creator_state.pp_kind from_ Creator_state.pp_kind to_
      | _ -> ());
  Service.run svc ~until:(Time.of_sec 1);

  (* steady update stream so the disturbance would be visible *)
  for i = 0 to 199 do
    Service.submit_at svc
      (Time.add (Time.of_sec 1) (Time.of_ms (10 * i)))
      (Proc_id.of_int (i mod n))
      ~semantics:Semantics.{ ordering = Total; atomicity = Weak }
      i
  done;

  (* at t = 1.5s, drop exactly one decision on the link from the current
     decider to its group successor *)
  let engine = Service.engine svc in
  Engine.at engine (Time.of_ms 1500) (fun () ->
      Fmt.pr "@.--- arming a one-shot drop: next decision to its successor ---@.";
      Net.add_filter (Engine.net engine) ~max_drops:1 ~name:"lose-one-decision"
        (fun ~src ~dst msg ->
          Control_msg.kind msg = "decision"
          &&
          match Engine.state_of engine src with
          | Some s -> (
            match Proc_set.successor_in (Member.group s) src ~n with
            | Some next -> Proc_id.equal next dst
            | None -> false)
          | None -> false));
  Service.run svc ~until:(Time.of_sec 4);

  (* verdict *)
  let views =
    Service.views_installed svc
    |> List.map (fun (_, v) -> v.Service.group_id)
    |> List.sort_uniq compare
  in
  Fmt.pr "@.distinct groups over the whole run: %d (1 = formation only)@."
    (List.length views);
  (match Service.agreed_view svc with
  | Some v when Proc_set.cardinal v.Service.group = n ->
    Fmt.pr "group intact: the false alarm was masked.@."
  | _ -> Fmt.pr "group changed: unexpected!@.");
  match Service.app_state svc (Proc_id.of_int 0) with
  | Some log -> Fmt.pr "p0 delivered %d/200 updates@." (List.length log)
  | None -> ()
