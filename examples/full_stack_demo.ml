(* The complete Figure 1 architecture, live.

   Every other example uses oracle synchronized clocks (the paper's own
   methodological stance when describing the membership protocol). This
   one composes the real layers: each process owns a drifting hardware
   clock with an arbitrary offset; the fail-aware clock synchronization
   protocol builds the synchronized time base; the membership and
   broadcast protocols run on top of it. Watch the members hold off
   until their clocks synchronize, form the group, survive a crash and
   re-admit the recovered process.

   Run with:  dune exec examples/full_stack_demo.exe *)

open Tasim
open Timewheel
open Broadcast

let pid = Proc_id.of_int

let () =
  let n = 5 in
  let params = Params.make ~n () in
  let cs_cfg = Clocksync.Protocol.default_config ~n in
  let member_cfg =
    Member.config ~apply:(fun log v -> v :: log) ~initial_app:[] params
  in
  let engine = Engine.create Engine.default_config ~n in
  Engine.classify engine Full_stack.kind_of_msg;

  (* hardware clocks: offsets up to 300ms apart, drifting at 1e-5 *)
  let rng = Rng.create 2026 in
  let clocks =
    Array.init n (fun _ ->
        Hardware_clock.random rng ~max_offset:(Time.of_ms 300) ~max_drift:1e-5)
  in
  Array.iteri
    (fun i c -> Fmt.pr "p%d hardware clock: %a@." i Hardware_clock.pp c)
    clocks;

  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Full_stack.Member_started ->
        Fmt.pr "[%a] %a clock synchronized; member starts in join state@."
          Time.pp at Proc_id.pp proc
      | Full_stack.Member_obs (Member.View_installed { group; group_id }) ->
        Fmt.pr "[%a] %a installed view #%a = %a@." Time.pp at Proc_id.pp proc
          Group_id.pp group_id Proc_set.pp group
      | Full_stack.Sync_obs (Clocksync.Protocol.Status_change { synchronized; _ })
        when not synchronized ->
        Fmt.pr "[%a] %a LOST clock synchronization@." Time.pp at Proc_id.pp
          proc
      | _ -> ());

  let automaton = Full_stack.automaton member_cfg cs_cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:(Engine.clock_source_of_hardware clocks.(Proc_id.to_int id))
        ())
    (Proc_id.all ~n);

  (* a few updates through the stack *)
  for i = 0 to 4 do
    Engine.inject_at engine
      (Time.add (Time.of_sec 2) (Time.of_ms (50 * i)))
      (pid i)
      (Full_stack.submit ~semantics:Semantics.total_strong (10 + i))
  done;

  Fmt.pr "@.--- crash p1 at 3s, recover at 6s ---@.";
  Engine.crash_at engine (Time.of_sec 3) (pid 1);
  Engine.recover_at engine (Time.of_sec 6) (pid 1);
  Engine.run engine ~until:(Time.of_sec 12);

  Fmt.pr "@.final replica logs:@.";
  List.iter
    (fun p ->
      match Engine.state_of engine p with
      | Some st -> (
        match Full_stack.member st with
        | Some m ->
          Fmt.pr "  %a (view #%a): [%a]@." Proc_id.pp p Group_id.pp
            (Member.group_id m)
            Fmt.(list ~sep:(any "; ") int)
            (List.rev (Member.app m))
        | None -> Fmt.pr "  %a: member not started@." Proc_id.pp p)
      | None -> Fmt.pr "  %a: down@." Proc_id.pp p)
    (Proc_id.all ~n);
  let stats = Engine.stats engine in
  Fmt.pr "@.clock-sync datagrams: %d, group-communication datagrams: %d@."
    (Stats.count stats "sent:cs-request" + Stats.count stats "sent:cs-reply")
    (List.fold_left
       (fun acc kind -> acc + Stats.count stats ("sent:" ^ kind))
       0
       [ "decision"; "join"; "no-decision"; "reconfiguration"; "proposal" ])
