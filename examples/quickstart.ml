(* Quickstart: a five-member timewheel group.

   Builds the service, waits for the initial group to form via the join
   protocol, broadcasts a few totally ordered updates, crashes one
   member (watch the single-failure election remove it within ~100ms),
   then recovers it (watch the join protocol and state transfer bring it
   back).

   Run with:  dune exec examples/quickstart.exe *)

open Tasim
open Timewheel
open Broadcast

let () =
  (* 1. protocol parameters: 5 processes, D = 30ms, delta = 10ms *)
  let params = Params.make ~n:5 () in
  Fmt.pr "parameters: %a@." Params.pp params;

  (* 2. the service; the replicated application folds delivered updates
     into a list *)
  let svc =
    Service.create ~apply:(fun log update -> update :: log) ~initial_app:[]
      params
  in

  (* 3. subscribe to membership views and deliveries *)
  Service.on_view svc (fun proc view ->
      Fmt.pr "[%a] %a installed view #%a = %a@." Time.pp view.Service.at
        Proc_id.pp proc Group_id.pp view.Service.group_id Proc_set.pp
        view.Service.group);
  Service.on_delivery svc (fun proc ~at proposal ~ordinal ->
      if Proc_id.equal proc (Proc_id.of_int 0) then
        Fmt.pr "[%a] %a delivered %a (ordinal %a)@." Time.pp at Proc_id.pp
          proc Fmt.(option ~none:(any "?") int)
          (Some proposal.Proposal.payload)
          Fmt.(option ~none:(any "-") int)
          ordinal);

  (* 4. let the initial group form (the join protocol needs ~2 cycles) *)
  Service.run svc ~until:(Time.of_sec 1);

  (* 5. broadcast three totally ordered updates from different members *)
  List.iteri
    (fun i origin ->
      Service.submit_at svc
        (Time.add (Time.of_sec 1) (Time.of_ms (50 * i)))
        (Proc_id.of_int origin) ~semantics:Semantics.total_strong (100 + i))
    [ 0; 2; 4 ];
  Service.run svc ~until:(Time.of_sec 2);

  (* 6. crash p3 and watch the single-failure election exclude it *)
  Fmt.pr "@.--- crashing p3 ---@.";
  Service.crash_at svc (Time.of_sec 2) (Proc_id.of_int 3);
  Service.run svc ~until:(Time.of_sec 4);

  (* 7. recover p3: it rejoins via join messages + state transfer *)
  Fmt.pr "@.--- recovering p3 ---@.";
  Service.recover_at svc (Time.of_sec 4) (Proc_id.of_int 3);
  Service.run svc ~until:(Time.of_sec 8);

  (* 8. final state: everyone agrees, logs identical *)
  (match Service.agreed_view svc with
  | Some v ->
    Fmt.pr "@.final agreed view #%a: %a@." Group_id.pp v.Service.group_id
      Proc_set.pp v.Service.group
  | None -> Fmt.pr "@.no agreement (unexpected)@.");
  List.iter
    (fun p ->
      match Service.app_state svc p with
      | Some log ->
        Fmt.pr "%a log: [%a]@." Proc_id.pp p
          Fmt.(list ~sep:(any "; ") int)
          (List.rev log)
      | None -> Fmt.pr "%a: down@." Proc_id.pp p)
    (Proc_id.all ~n:5)
