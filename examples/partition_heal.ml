(* Partition and heal: the majority-agreement guarantee in action.

   The team is split {p0,p1,p2} | {p3,p4}. The majority side elects a
   new decider through the slotted reconfiguration protocol and keeps
   operating; the minority side knows it is out of date (fail-awareness:
   its members sit in the n-failure state and never install a minority
   group). After the partition heals, the minority members rejoin
   through the join protocol and receive the application state they
   missed.

   Run with:  dune exec examples/partition_heal.exe *)

open Tasim
open Timewheel
open Broadcast

let pid = Proc_id.of_int

let show_group svc label =
  match Service.agreed_view svc with
  | Some v ->
    Fmt.pr "%s: agreed view #%a = %a@." label Group_id.pp v.Service.group_id
      Proc_set.pp v.Service.group
  | None -> Fmt.pr "%s: no agreed view among up-to-date members@." label

let show_states svc =
  List.iter
    (fun p ->
      match Service.member_state svc p with
      | Some s ->
        Fmt.pr "  %a: %a (group #%a)@." Proc_id.pp p Creator_state.pp
          (Member.creator_state s) Group_id.pp (Member.group_id s)
      | None -> Fmt.pr "  %a: down@." Proc_id.pp p)
    (Proc_id.all ~n:5)

let () =
  let params = Params.make ~n:5 () in
  let svc =
    Service.create ~apply:(fun log v -> v :: log) ~initial_app:[] params
  in
  Service.run svc ~until:(Time.of_sec 1);
  show_group svc "before partition";

  (* split the network *)
  let majority = Proc_set.of_list [ pid 0; pid 1; pid 2 ] in
  let minority = Proc_set.of_list [ pid 3; pid 4 ] in
  Fmt.pr "@.--- partitioning %a | %a ---@." Proc_set.pp majority Proc_set.pp
    minority;
  Service.partition_at svc (Time.of_sec 1) [ majority; minority ];

  (* workload submitted on the majority side during the partition *)
  for i = 0 to 9 do
    Service.submit_at svc
      (Time.add (Time.of_sec 2) (Time.of_ms (100 * i)))
      (pid 0) ~semantics:Semantics.total_strong i
  done;
  Service.run svc ~until:(Time.of_sec 4);
  show_group svc "during partition";
  Fmt.pr "member states during the partition:@.";
  show_states svc;

  (* heal: the minority rejoins and catches up via state transfer *)
  Fmt.pr "@.--- healing ---@.";
  Service.heal_at svc (Time.of_sec 4);
  Service.run svc ~until:(Time.of_sec 10);
  show_group svc "after heal";
  Fmt.pr "member states after heal:@.";
  show_states svc;

  (* the previously partitioned minority now has the full history *)
  List.iter
    (fun p ->
      match Service.app_state svc p with
      | Some log ->
        Fmt.pr "  %a log: [%a]@." Proc_id.pp p
          Fmt.(list ~sep:(any "; ") int)
          (List.rev log)
      | None -> ())
    [ pid 0; pid 3; pid 4 ]
