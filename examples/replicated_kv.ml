(* A replicated key-value store on the timewheel service.

   This is the paper's motivating use case: "implement a dependable
   service by a team of replicated servers" that "maintain a consistent
   replicated service state and, if one member fails, the others form a
   new group and continue to provide the service" (Section 1).

   Each replica applies totally ordered, strongly atomic updates to its
   local map. Clients submit at any replica. We kill the current decider
   mid-workload and show that every surviving replica ends with exactly
   the same store, and that a recovering replica is brought back in sync
   by the state transfer.

   Run with:  dune exec examples/replicated_kv.exe *)

open Tasim
open Timewheel
open Broadcast

(* ------------------------------------------------------------------ *)
(* the replicated application *)

module Kv = Map.Make (String)

type op = Put of string * int | Del of string

let apply store = function
  | Put (k, v) -> Kv.add k v store
  | Del k -> Kv.remove k store

let pp_store ppf store =
  Fmt.pf ppf "{%a}"
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string int))
    (Kv.bindings store)

(* ------------------------------------------------------------------ *)

let () =
  let n = 5 in
  let params = Params.make ~n () in
  let svc = Service.create ~apply ~initial_app:Kv.empty params in
  Service.run svc ~until:(Time.of_sec 1);

  (* workload: interleaved puts and deletes from all replicas *)
  let submit at origin op =
    Service.submit_at svc at (Proc_id.of_int origin)
      ~semantics:Semantics.total_strong op
  in
  let t0 = Time.of_sec 1 in
  let keys = [| "alpha"; "beta"; "gamma"; "delta" |] in
  for i = 0 to 39 do
    let at = Time.add t0 (Time.of_ms (25 * i)) in
    let key = keys.(i mod Array.length keys) in
    if i mod 7 = 6 then submit at (i mod n) (Del key)
    else submit at (i mod n) (Put (key, i))
  done;

  (* kill whoever holds the decider role at t0+500ms *)
  let engine = Service.engine svc in
  Engine.at engine (Time.add t0 (Time.of_ms 500)) (fun () ->
      let decider =
        List.find_opt
          (fun p ->
            match Engine.state_of engine p with
            | Some s -> Member.is_decider s
            | None -> false)
          (Proc_id.all ~n)
      in
      (* between a decision send and its receipt nobody holds the role:
         fall back to a fixed member in that window *)
      let d = Option.value decider ~default:(Proc_id.of_int 1) in
      Fmt.pr "[%a] crashing %a mid-workload@." Time.pp (Engine.now engine)
        Proc_id.pp d;
      Engine.crash_at engine (Engine.now engine) d);
  Service.run svc ~until:(Time.add t0 (Time.of_sec 3));

  (* all surviving replicas must agree exactly *)
  let stores =
    List.filter_map
      (fun p ->
        Option.map (fun s -> (p, s)) (Service.app_state svc p))
      (Proc_id.all ~n)
  in
  Fmt.pr "@.stores after decider crash:@.";
  List.iter
    (fun (p, store) -> Fmt.pr "  %a -> %a@." Proc_id.pp p pp_store store)
    stores;
  (match stores with
  | (_, first) :: rest ->
    let all_equal =
      List.for_all (fun (_, s) -> Kv.equal Int.equal s first) rest
    in
    Fmt.pr "replicas identical: %b@." all_equal
  | [] -> ());

  (* recover the crashed replica: the state transfer re-syncs it *)
  let crashed =
    List.find
      (fun p -> not (Engine.is_up engine p))
      (Proc_id.all ~n)
  in
  Fmt.pr "@.recovering %a ...@." Proc_id.pp crashed;
  Service.recover_at svc (Service.now svc) crashed;
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 4));
  (match (Service.app_state svc crashed, stores) with
  | Some recovered, (_, reference) :: _ ->
    Fmt.pr "%a after rejoin -> %a@." Proc_id.pp crashed pp_store recovered;
    Fmt.pr "recovered replica in sync: %b@."
      (Kv.equal Int.equal recovered reference)
  | _ -> Fmt.pr "recovery failed@.");
  match Service.agreed_view svc with
  | Some v ->
    Fmt.pr "final view #%a: %a@." Group_id.pp v.Service.group_id Proc_set.pp
      v.Service.group
  | None -> Fmt.pr "no agreed view@."
