(* Benchmark and experiment harness.

   Usage:
     bench/main.exe               run every experiment (full sweeps) and
                                  the microbenchmarks
     bench/main.exe quick         reduced sweeps (CI-sized; --quick is
                                  accepted as a synonym)
     bench/main.exe e3            one experiment
     bench/main.exe quick e3      one experiment, reduced
     bench/main.exe micro         microbenchmarks + M1/M2/M3 macrobenches
     bench/main.exe m3            the M3 large-N dissemination bench alone
     bench/main.exe topology      the topology-shaped chaos sweep: per-
                                  scenario convergence-time distributions
     bench/main.exe live-chaos    the live chaos sweep: seeded faults
                                  against real-socket nodes, recovery-
                                  time distributions
     bench/main.exe live-perf     the M4 live data-plane bench: batched
                                  vs per-datagram syscall throughput,
                                  submit->deliver latency histograms,
                                  multicore cluster sharding

   Each experiment prints the table(s) recorded in EXPERIMENTS.md; see
   DESIGN.md section 5 for the experiment index. Unknown experiment ids
   exit non-zero so a typo'd CI invocation fails loudly.

   The micro target additionally runs the M1 engine-throughput, M2
   64-member and M3 large-N (256/1024) membership macrobenchmarks plus
   the per-kind codec microbenchmarks, and writes machine-readable
   results to BENCH_engine.json in the current directory (schema v7,
   DESIGN.md section 5; v1-v6 files are migrated in place). M1, M2,
   M3, topology, live-chaos and live-perf results are APPENDED to the
   file's engine_runs/m2_runs/m3_runs/topology_runs/live_chaos_runs/
   live_perf_runs series — successive invocations accumulate a perf
   trajectory instead of overwriting the previous point. The topology,
   live-chaos and live-perf targets append only to their own series,
   preserving every other series and snapshot.

   Perf gates run with the micro target and fail the process:
   - every fixed-shape wire kind must encode with zero minor-heap
     allocation per frame (the variable payload kinds submit, proposal
     and retransmit are also held to zero: their payload writers are
     allocation-free for string payloads);
   - M1 throughput must clear a catastrophic-regression floor of
     1M events/s (typical is ~4-5M; the floor only trips on an
     order-of-magnitude regression, not machine noise);
   - M3 under gossip at N=256 must form the full view with zero false
     suspicions (fixed seed, faultless run, adaptive suspicion on),
     and its per-member receive rate must stay within 1.5x the N=64
     gossip rate — the sublinearity probe. The N=1024 gossip point and
     the all-to-all baselines are recorded but not gated;
   - the steady-state decode kinds (proposal, decision, cs-request,
     cs-reply) must stay under per-kind minor-word ceilings — the
     decode-allocation non-regression gate.

   The live-perf (M4) target carries its own gates: the batched data
   plane must move >= 2x the frames per syscall of the per-datagram
   fallback (it actually moves ~20x) at <= 0.25 syscalls/frame and
   must never fall below 0.9x the fallback's wall-clock frames/s; the
   cluster run must form, record a p99 latency and see zero false
   suspicions; and — only on machines with >= 2 cores — the 2-shard
   run must clear 1.5x the 1-shard aggregate frames/s. *)

open Tasim
open Timewheel
open Broadcast

(* ------------------------------------------------------------------ *)
(* M0: Bechamel microbenchmarks of protocol hot paths                  *)

(* a warm 32-entry ordering-and-acknowledgement list, the realistic
   payload for merge and codec benches *)
let bench_oal () =
  List.fold_left
    (fun oal i ->
      fst
        (Oal.append_update oal
           {
             Oal.proposal_id = { Proposal.origin = Proc_id.of_int (i mod 5); seq = i };
             semantics = Semantics.total_strong;
             send_ts = Tasim.Time.of_us i;
             hdo = i - 1;
           }
           ~acks:(Proc_set.singleton (Proc_id.of_int 0))))
    Oal.empty
    (List.init 32 Fun.id)

let microbenches () =
  let open Bechamel in
  let params = Params.make ~n:5 () in
  let fd = Failure_detector.create params ~self:(Proc_id.of_int 0) in
  let fd = Failure_detector.expect fd ~sender:(Proc_id.of_int 1) ~base:Tasim.Time.zero in
  let oal = bench_oal () in
  let env =
    {
      Group_creator.self = Proc_id.of_int 0;
      group = Proc_set.full ~n:5;
      n = 5;
      majority = 3;
      current_slot = 10;
      single_failure_election = true;
    }
  in
  let gc_event =
    Group_creator.Fd_timeout { suspect = Proc_id.of_int 2; since = Tasim.Time.zero }
  in
  let heap_test =
    Test.make ~name:"event-queue add+pop"
      (Staged.stage (fun () ->
           let h = Heap.create () in
           for i = 0 to 31 do
             Heap.add h ~time:(i * 13 mod 32) i
           done;
           while Heap.pop h <> None do
             ()
           done))
  in
  let heap_hot_test =
    (* steady-state churn on a warm heap via the allocation-free
       min_time/pop_min pair: the engine run-loop's exact access
       pattern. Re-arms land a full window (32 ticks) past the popped
       minimum, like a periodic timer rescheduling at now + period;
       the earlier bench re-inserted 1..8 ticks ahead of the minimum,
       an adversarial pattern that forced a full-depth sift on every
       add and made the "hot" path read 2x slower than add+pop
       (DESIGN.md section 5). *)
    Test.make ~name:"event-queue hot add+pop_min"
      (Staged.stage
         (let h = Heap.create () in
          let tick = ref 0 in
          for i = 0 to 31 do
            Heap.add h ~time:i i
          done;
          fun () ->
            for _ = 0 to 31 do
              let t = Heap.min_time h in
              let v = Heap.pop_min h in
              incr tick;
              Heap.add h ~time:(t + 32 + (v land 7)) ((v + !tick) land 1023)
            done))
  in
  let stats_interned_test =
    Test.make ~name:"stats bump (interned)"
      (Staged.stage
         (let s = Stats.create () in
          let c = Stats.counter s "sent:decision" in
          fun () -> Stats.bump c))
  in
  let stats_string_test =
    Test.make ~name:"stats incr (string build)"
      (Staged.stage
         (let s = Stats.create () in
          let kind = "decision" in
          fun () -> Stats.incr s ("sent:" ^ kind)))
  in
  let fd_test =
    Test.make ~name:"failure-detector admit"
      (Staged.stage (fun () ->
           ignore
             (Failure_detector.admit fd ~from:(Proc_id.of_int 1)
                ~ts:(Tasim.Time.of_ms 5) ~now:(Tasim.Time.of_ms 7))))
  in
  let oal_test =
    Test.make ~name:"oal merge (32 entries)"
      (Staged.stage (fun () -> ignore (Oal.merge ~local:oal ~incoming:oal)))
  in
  let gc_test =
    Test.make ~name:"group-creator step"
      (Staged.stage (fun () ->
           ignore (Group_creator.step env Creator_state.Failure_free gc_event)))
  in
  let dispatcher_test =
    Test.make ~name:"dispatcher post+run"
      (Staged.stage
         (let d = Eventloop.Dispatcher.create () in
          Eventloop.Dispatcher.register d ~kind:0 (fun _ -> ());
          fun () ->
            Eventloop.Dispatcher.post d ~kind:0 0;
            ignore (Eventloop.Dispatcher.run_pending d)))
  in
  let wheel_test =
    Test.make ~name:"timer-wheel schedule+advance"
      (Staged.stage
         (let w = Eventloop.Timer_wheel.create ~tick:10 () in
          let now = ref 0 in
          fun () ->
            ignore (Eventloop.Timer_wheel.schedule w ~at:(!now + 50) (fun () -> ()));
            now := !now + 10;
            ignore (Eventloop.Timer_wheel.advance w ~to_:!now)))
  in
  [
    heap_test;
    heap_hot_test;
    stats_interned_test;
    stats_string_test;
    fd_test;
    oal_test;
    gc_test;
    dispatcher_test;
    wheel_test;
  ]

(* ns-per-run estimates, in test declaration order *)
let measure_tests tests =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.5) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.fold
        (fun name result acc ->
          let name =
            if String.length name > 2 && String.sub name 0 2 = "g/" then
              String.sub name 2 (String.length name - 2)
            else name
          in
          match Analyze.OLS.estimates result with
          | Some [ est ] -> (name, est) :: acc
          | _ -> acc)
        ols [])
    tests

let measure_micro () = measure_tests (microbenches ())

(* ------------------------------------------------------------------ *)
(* Codec microbenchmarks: encode/decode cost per wire message kind     *)

(* one representative message per wire kind, sized like steady-state
   traffic (32-entry oal in the membership messages) *)
let codec_messages () : (string * Runtime.Live.msg) list =
  let open Timewheel.Full_stack in
  let pid = Proc_id.of_int in
  let group = Proc_set.full ~n:5 in
  let oal = bench_oal () in
  let prop seq =
    Proposal.make ~origin:(pid 1) ~seq ~semantics:Semantics.total_strong
      ~send_ts:(Tasim.Time.of_ms 3) ~hdo:(seq - 1) "bench-payload-0123456789"
  in
  let upd seq =
    {
      Oal.proposal_id = { Proposal.origin = pid 2; seq };
      semantics = Semantics.total_strong;
      send_ts = Tasim.Time.of_us seq;
      hdo = seq - 1;
    }
  in
  [
    ( "submit",
      Gc
        (Control_msg.Submit
           { semantics = Semantics.total_strong; payload = "bench-payload" })
    );
    ("proposal", Gc (Control_msg.Proposal_msg (prop 7)));
    ("retransmit", Gc (Control_msg.Retransmit (prop 8)));
    ( "nack",
      Gc
        (Control_msg.Nack
           {
             missing =
               [
                 { Proposal.origin = pid 1; seq = 4 };
                 { Proposal.origin = pid 3; seq = 9 };
               ];
           }) );
    ( "decision",
      Gc
        (Control_msg.Decision
           { d_ts = Tasim.Time.of_ms 5; d_oal = oal; d_alive = group }) );
    ( "no-decision",
      Gc
        (Control_msg.No_decision
           {
             nd_ts = Tasim.Time.of_ms 5;
             nd_suspect = pid 2;
             nd_since = Tasim.Time.of_ms 4;
             nd_view = oal;
             nd_dpd = [ upd 40; upd 41 ];
             nd_alive = group;
           }) );
    ( "join",
      Gc
        (Control_msg.Join_msg
           {
             j_ts = Tasim.Time.of_ms 5;
             j_list = group;
             j_alive = group;
             j_epoch = 3;
           }) );
    ( "reconfiguration",
      Gc
        (Control_msg.Reconfig
           {
             r_ts = Tasim.Time.of_ms 5;
             r_list = group;
             r_last_decision_ts = Tasim.Time.of_ms 2;
             r_view = oal;
             r_dpd = [ upd 42 ];
             r_alive = group;
           }) );
    ( "state-transfer",
      Gc
        (Control_msg.State_transfer
           {
             st_ts = Tasim.Time.of_ms 5;
             st_group = group;
             st_group_id = { Group_id.epoch = 2; seq = 7 };
             st_oal = oal;
             st_app = [ "log-entry-1"; "log-entry-2" ];
             st_buffers = Buffers.empty;
           }) );
    ( "cs-request",
      Cs
        (Clocksync.Protocol.Request { seq = 7; sender_clock = Tasim.Time.of_ms 3 })
    );
    ( "cs-reply",
      Cs
        (Clocksync.Protocol.Reply
           {
             seq = 7;
             echo_sender_clock = Tasim.Time.of_ms 3;
             replier_clock = Tasim.Time.of_ms 4;
           }) );
  ]

type codec_row = {
  kind : string;
  frame_bytes : int;
  encode_ns : float;
  encode_minor_words : float;
  decode_ns : float;
  decode_minor_words : float;
}

(* amortized minor-heap words per call of [f], measured over a
   deterministic loop; the two [Gc.minor_words] float boxes sit outside
   the loop so a genuinely allocation-free [f] reads as ~0.0001 *)
let minor_words_per_op ?(iters = 100_000) f =
  f ();
  Gc.minor ();
  let m0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  (Gc.minor_words () -. m0) /. float_of_int iters

let codec_micro () =
  let open Bechamel in
  let pc = Runtime.Codec.string_payload in
  let sender = Proc_id.of_int 1 in
  let buf = Bytes.create Runtime.Codec.max_frame in
  let w = Runtime.Wire.writer_into buf ~pos:0 in
  List.map
    (fun (kind, msg) ->
      let len = Runtime.Codec.encode_to pc ~sender msg w in
      let encode () = ignore (Runtime.Codec.encode_to pc ~sender msg w : int) in
      let decode () =
        match Runtime.Codec.decode_bytes pc buf ~pos:0 ~len with
        | Ok _ -> ()
        | Error _ -> assert false
      in
      let ns name f =
        match measure_tests [ Test.make ~name (Staged.stage f) ] with
        | [ (_, est) ] -> est
        | _ -> 0.0
      in
      {
        kind;
        frame_bytes = len;
        encode_ns = ns ("encode " ^ kind) encode;
        encode_minor_words = minor_words_per_op encode;
        decode_ns = ns ("decode " ^ kind) decode;
        decode_minor_words = minor_words_per_op ~iters:10_000 decode;
      })
    (codec_messages ())

(* every wire kind must encode allocation-free: the steady-state kinds
   because the transport's data plane depends on it, the recovery and
   election kinds because an allocating encoder under churn is exactly
   when GC pressure hurts most *)
let zero_alloc_kinds =
  [
    "submit"; "proposal"; "retransmit"; "nack"; "decision"; "no-decision";
    "join"; "reconfiguration"; "state-transfer"; "cs-request"; "cs-reply";
  ]

let check_zero_alloc_encode rows =
  let bad =
    List.filter
      (fun r ->
        List.mem r.kind zero_alloc_kinds && r.encode_minor_words > 0.01)
      rows
  in
  List.iter
    (fun r ->
      Fmt.epr "GATE FAILED: %s encodes at %.3f minor words/frame (want 0)@."
        r.kind r.encode_minor_words)
    bad;
  bad = []

(* Decode-allocation ceilings for the steady-state kinds, in minor
   words per frame. Measured after three decode-path fixes: the
   varint loop hoisted to top level (as an inner [let rec] it
   captured the reader and allocated a closure per integer field —
   the dominant cost, ~5 words per int of every frame), the reader
   re-aimed through [Wire.reset_window] (the optional arguments of
   [reset_reader] boxed two [Some]s per frame), and the frame
   header parsed without pairing its two ints into a tuple. Together:
   cs-request 37 -> 10, cs-reply 43 -> 11, proposal 68 -> 26,
   decision 4236 -> 3049 words. What remains is the decoded message
   itself, which the handler owns and keeps — for a decision that is
   a real persistent oal (balanced-map nodes, entry records, ack
   sets), so its floor is payload-proportional, measured here against
   the fixed 32-entry bench oal. Ceilings sit a little above the
   measured values so the gate catches a reintroduced per-frame
   allocation (a revived closure costs 4+ words per integer field),
   not allocator noise. *)
let decode_alloc_ceilings =
  [ ("proposal", 30.0); ("decision", 3200.0); ("cs-request", 12.0);
    ("cs-reply", 13.0) ]

let check_decode_alloc rows =
  let bad =
    List.filter_map
      (fun r ->
        match List.assoc_opt r.kind decode_alloc_ceilings with
        | Some ceiling when r.decode_minor_words > ceiling ->
          Some (r, ceiling)
        | _ -> None)
      rows
  in
  List.iter
    (fun (r, ceiling) ->
      Fmt.epr
        "GATE FAILED: %s decodes at %.1f minor words/frame (ceiling %.1f)@."
        r.kind r.decode_minor_words ceiling)
    bad;
  bad = []

let bench_json_file = "BENCH_engine.json"

let engine_throughput ~quick =
  let seconds = if quick then 3 else 10 in
  (* best of three: the simulated work is identical each run, only
     wall-clock noise differs *)
  let runs = List.init 3 (fun _ -> Harness.Engine_bench.run ~seconds ()) in
  List.fold_left
    (fun best (r : Harness.Engine_bench.result) ->
      if r.events_per_sec > best.Harness.Engine_bench.events_per_sec then r
      else best)
    (List.hd runs) (List.tl runs)

(* M1 throughput floor: an order-of-magnitude tripwire, not a tight
   bound — typical is 4-5M events/s, so only a catastrophic hot-path
   regression (or a debug build) trips it *)
let m1_floor_events_per_sec = 1_000_000.0

let m2_throughput ~quick =
  let seconds = if quick then 3 else 10 in
  let runs = List.init 3 (fun _ -> Harness.Member_bench.run ~seconds ()) in
  List.fold_left
    (fun best (r : Harness.Member_bench.result) ->
      if r.events_per_sec > best.Harness.Member_bench.events_per_sec then r
      else best)
    (List.hd runs) (List.tl runs)

(* M3: one run per (mode, n) point — the receive-rate and
   false-suspicion numbers are seed-deterministic, so repetition buys
   nothing. N=1024 only in full mode (its formation alone simulates
   minutes of protocol time). *)
let m3_points ~quick =
  let base =
    [
      (Harness.M3_bench.Gossip, 64);
      (Harness.M3_bench.Gossip, 256);
      (Harness.M3_bench.All_to_all, 64);
      (Harness.M3_bench.All_to_all, 256);
    ]
  in
  if quick then base else base @ [ (Harness.M3_bench.Gossip, 1024) ]

let m3_runs ~quick =
  let seconds = if quick then 3 else 10 in
  List.map
    (fun (mode, n) -> Harness.M3_bench.run ~n ~seconds ~mode ())
    (m3_points ~quick)

(* The gated sublinearity bound: under gossip the per-member receive
   rate is set by the probe period and fanout, not by N, so the N=256
   rate may exceed the N=64 rate only by slack (ring-successor decision
   deliveries and rotation effects), not by anything resembling the 4x
   of all-to-all. *)
let m3_rate_slack = 1.5

let find_m3 rows mode n =
  List.find_opt
    (fun (r : Harness.M3_bench.result) -> r.mode = mode && r.n = n)
    rows

let check_m3_gates rows =
  let fail = ref false in
  let gate msg ok = if not ok then (Fmt.epr "GATE FAILED: %s@." msg; fail := true) in
  (match find_m3 rows Harness.M3_bench.Gossip 256 with
  | None -> gate "M3 gossip N=256 run missing" false
  | Some r ->
    gate "M3 gossip N=256 did not form the full view" r.formed;
    gate
      (Fmt.str "M3 gossip N=256 saw %d false suspicions (want 0)"
         r.false_suspicions)
      (r.false_suspicions = 0));
  (match
     ( find_m3 rows Harness.M3_bench.Gossip 64,
       find_m3 rows Harness.M3_bench.Gossip 256 )
   with
  | Some r64, Some r256 when r64.formed && r256.formed ->
    gate
      (Fmt.str
         "M3 receive rate not sublinear: gossip N=256 %.1f/member/s vs \
          N=64 %.1f/member/s (bound %.1fx)"
         r256.receives_per_member_per_sec r64.receives_per_member_per_sec
         m3_rate_slack)
      (r256.receives_per_member_per_sec
      <= m3_rate_slack *. r64.receives_per_member_per_sec)
  | _ -> gate "M3 gossip N=64 run missing or unformed" false);
  not !fail

let m3_table rows =
  let table =
    Harness.Table.create ~title:"M3: per-member receive rate vs N"
      ~columns:
        [
          "mode"; "members"; "formed"; "form (sim s)"; "recv/member/s";
          "false susp."; "events/sec";
        ]
  in
  List.iter
    (fun (r : Harness.M3_bench.result) ->
      Harness.Table.add_row table
        [
          Harness.M3_bench.mode_name r.mode;
          string_of_int r.n;
          (if r.formed then "yes" else "NO");
          Harness.Table.cell_f r.form_sim_seconds;
          Harness.Table.cell_f r.receives_per_member_per_sec;
          string_of_int r.false_suspicions;
          Harness.Table.cell_f r.events_per_sec;
        ])
    rows;
  Harness.Table.note table
    "faultless steady state, fixed seed; gossip recv/member/s must stay \
     ~flat in N (gated at 256 <= 1.5x 64), all-to-all grows linearly";
  table

let engine_run_record ~quick (tput : Harness.Engine_bench.result) =
  let open Harness.Bench_json in
  Obj
    [
      ("workload", String "5-process broadcast, 1ms period, fixed seed");
      ("quick", Bool quick);
      ("sim_seconds", Float tput.Harness.Engine_bench.sim_seconds);
      ("wall_seconds", Float tput.wall_seconds);
      ("events", Int tput.events);
      ("sends", Int tput.sends);
      ("deliveries", Int tput.deliveries);
      ("timer_fires", Int tput.timer_fires);
      ("observations", Int tput.observations);
      ("events_per_sec", Float tput.events_per_sec);
      ("minor_words_per_event", Float tput.minor_words_per_event);
    ]

let m2_run_record ~quick (r : Harness.Member_bench.result) =
  let open Harness.Bench_json in
  Obj
    [
      ( "workload",
        String "64-member formation + faultless steady state, fixed seed" );
      ("quick", Bool quick);
      ("n", Int r.Harness.Member_bench.n);
      ("form_sim_seconds", Float r.form_sim_seconds);
      ("form_wall_seconds", Float r.form_wall_seconds);
      ("sim_seconds", Float r.sim_seconds);
      ("wall_seconds", Float r.wall_seconds);
      ("sends", Int r.sends);
      ("deliveries", Int r.deliveries);
      ("events", Int r.events);
      ("events_per_sec", Float r.events_per_sec);
      ("minor_words_per_event", Float r.minor_words_per_event);
    ]

let m3_run_record ~quick (r : Harness.M3_bench.result) =
  let open Harness.Bench_json in
  Obj
    [
      ( "workload",
        String "large-N formation + faultless steady state, fixed seed" );
      ("quick", Bool quick);
      ("mode", String (Harness.M3_bench.mode_name r.mode));
      ("n", Int r.n);
      ("formed", Bool r.formed);
      ("form_sim_seconds", Float r.form_sim_seconds);
      ("form_wall_seconds", Float r.form_wall_seconds);
      ("sim_seconds", Float r.sim_seconds);
      ("wall_seconds", Float r.wall_seconds);
      ("receives", Int r.receives);
      ("receives_per_member_per_sec", Float r.receives_per_member_per_sec);
      ("false_suspicions", Int r.false_suspicions);
      ("events", Int r.events);
      ("events_per_sec", Float r.events_per_sec);
    ]

(* Topology sweeps: per-scenario convergence-time distributions under
   shaped chaos (lib/chaos/topology.ml). Distributions are emitted in
   seconds; a missing formation/reconvergence field means no clean run
   produced that sample. *)
let topology_dist_fields name (d : Chaos.Topology.dist option) =
  let open Harness.Bench_json in
  match d with
  | None -> []
  | Some d ->
    [
      ( name,
        Obj
          [
            ("samples", Int d.Chaos.Topology.samples);
            ("min_s", Float (Time.to_sec_f d.min));
            ("p50_s", Float (Time.to_sec_f d.p50));
            ("p90_s", Float (Time.to_sec_f d.p90));
            ("max_s", Float (Time.to_sec_f d.max));
            ("mean_s", Float (Time.to_sec_f d.mean));
          ] );
    ]

let topology_run_record ~quick (r : Chaos.Topology.report) =
  let open Harness.Bench_json in
  Obj
    ([
       ("scenario", String r.scenario.Chaos.Topology.name);
       ("n", Int r.scenario.Chaos.Topology.n);
       ("quick", Bool quick);
       ("root_seed", Int r.root_seed);
       ("runs", Int r.runs);
       ("failures", Int (List.length r.failures));
     ]
    @ topology_dist_fields "formation" r.formation
    @ topology_dist_fields "reconvergence" r.reconvergence)

(* Live chaos sweeps: per-scenario recovery-time distributions of the
   real-socket fault scenarios (lib/chaos/live.ml). Wall-clock seconds;
   a missing dist field means no clean run produced that sample. *)
let live_chaos_run_record ~quick (r : Chaos.Live.report) =
  let open Harness.Bench_json in
  let outcomes = r.Chaos.Live.outcomes in
  let clean = List.filter Chaos.Live.ok outcomes in
  let formation =
    Chaos.Topology.dist_of
      (List.map (fun (o : Chaos.Live.outcome) -> o.Chaos.Live.formed_in) clean)
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  Obj
    ([
       ("scenario", String r.Chaos.Live.scenario.Chaos.Live.name);
       ("n", Int r.Chaos.Live.scenario.Chaos.Live.n);
       ("quick", Bool quick);
       ("root_seed", Int r.Chaos.Live.root_seed);
       ("runs", Int r.Chaos.Live.runs);
       ("failures", Int (List.length outcomes - List.length clean));
       ("views", Int (sum (fun (o : Chaos.Live.outcome) -> o.Chaos.Live.views)));
       ( "persist_failures",
         Int (sum (fun (o : Chaos.Live.outcome) -> o.Chaos.Live.persist_failures)) );
       ( "corrupt_restores",
         Int (sum (fun (o : Chaos.Live.outcome) -> o.Chaos.Live.corrupt_restores)) );
     ]
    @ topology_dist_fields "formation" formation
    @ topology_dist_fields "exclusion" r.Chaos.Live.exclusion
    @ topology_dist_fields "rejoin" r.Chaos.Live.rejoin)

(* Live-perf (M4) runs: the live data plane measured over real UDP.
   Flood records carry the syscall-batching numbers, cluster records
   the full-stack latency histogram and sharding aggregate. *)
let live_perf_flood_record ~quick (r : Harness.Live_perf_bench.flood_result) =
  let open Harness.Bench_json in
  Obj
    [
      ("kind", String "flood");
      ("quick", Bool quick);
      ("n", Int r.fl_n);
      ("batched", Bool r.fl_batched);
      ("wall_seconds", Float r.fl_wall_seconds);
      ("sent", Int r.fl_sent);
      ("received", Int r.fl_received);
      ("frames_per_sec", Float r.fl_frames_per_sec);
      ("syscalls", Int r.fl_syscalls);
      ("syscalls_per_frame", Float r.fl_syscalls_per_frame);
    ]

let live_perf_cluster_record ~quick (r : Harness.Live_perf_bench.cluster_result)
    =
  let open Harness.Bench_json in
  let lat = r.cl_latency in
  Obj
    [
      ("kind", String "cluster");
      ("quick", Bool quick);
      ("n", Int r.cl_n);
      ("shards", Int r.cl_shards);
      ("batched", Bool r.cl_batched);
      ("formed", Bool r.cl_formed);
      ("wall_seconds", Float r.cl_wall_seconds);
      ("frames", Int r.cl_frames);
      ("frames_per_sec", Float r.cl_frames_per_sec);
      ("submits", Int r.cl_submits);
      ("deliveries", Int r.cl_deliveries);
      ("latency_samples", Int (Harness.Hdr.count lat));
      ("latency_p50_us", Int (Harness.Hdr.percentile lat 50.0));
      ("latency_p99_us", Int (Harness.Hdr.percentile lat 99.0));
      ("latency_p999_us", Int (Harness.Hdr.percentile lat 99.9));
      ("latency_max_us", Int (Harness.Hdr.max_value lat));
      ("false_suspicions", Int r.cl_false_suspicions);
    ]

let codec_micro_record row =
  let open Harness.Bench_json in
  Obj
    [
      ("kind", String row.kind);
      ("frame_bytes", Int row.frame_bytes);
      ("encode_ns_per_op", Float row.encode_ns);
      ("encode_minor_words_per_op", Float row.encode_minor_words);
      ("decode_ns_per_op", Float row.decode_ns);
      ("decode_minor_words_per_op", Float row.decode_minor_words);
    ]

(* M1/M2/M3/topology/live-chaos/live-perf results accumulate across
   invocations so regressions are visible as a series, not silently
   overwritten; schema v7 (DESIGN.md section 5). Earlier schemas
   migrate on the next write: a v1 file's single engine_throughput
   object becomes the first element of the engine_runs series, a v2
   file (no m2_runs, no codec rows) starts its m2_runs series empty,
   a v3 file (no m3_runs) starts its m3_runs series empty, a v4 file
   (no topology_runs) starts its topology_runs series empty, a v5
   file (no live_chaos_runs) starts its live_chaos_runs series empty,
   and a v6 file (no live_perf_runs) starts its live_perf_runs series
   empty. *)
let prior_engine_runs () =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> []
  | Ok json -> (
    match member "engine_runs" json with
    | Some (List runs) -> runs
    | Some _ | None -> (
      match member "engine_throughput" json with
      | Some (Obj fields) ->
        let quick =
          match member "quick" json with Some (Bool b) -> b | _ -> false
        in
        [ Obj (("quick", Bool quick) :: fields) ]
      | Some _ | None -> []))

let prior_m2_runs () =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> []
  | Ok json -> (
    match member "m2_runs" json with Some (List runs) -> runs | Some _ | None -> [])

let prior_m3_runs () =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> []
  | Ok json -> (
    match member "m3_runs" json with Some (List runs) -> runs | Some _ | None -> [])

let prior_topology_runs () =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> []
  | Ok json -> (
    match member "topology_runs" json with
    | Some (List runs) -> runs
    | Some _ | None -> [])

let prior_live_chaos_runs () =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> []
  | Ok json -> (
    match member "live_chaos_runs" json with
    | Some (List runs) -> runs
    | Some _ | None -> [])

let prior_live_perf_runs () =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> []
  | Ok json -> (
    match member "live_perf_runs" json with
    | Some (List runs) -> runs
    | Some _ | None -> [])

(* The micro path overwrites the micro/codec snapshots and appends to
   the run series; the topology, live-chaos and live-perf paths
   preserve the prior snapshots (their invocations never re-measure
   them) and append only to their own series. All rewrite the whole
   file at schema v7, which is what migrates an older file. *)
let prior_snapshot name =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> List []
  | Ok json -> (
    match member name json with Some v -> v | None -> List [])

let write_bench_json_file ~quick ~micro ~codec ~engine_runs ~m2_runs ~m3_runs
    ~topology_runs ~live_chaos_runs ~live_perf_runs =
  let open Harness.Bench_json in
  let json =
    Obj
      [
        ("schema", String "timewheel/bench-engine/v7");
        ("quick", Bool quick);
        ("seed", Int 42);
        ("micro", micro);
        ("codec_micro", codec);
        ("engine_runs", List engine_runs);
        ("m2_runs", List m2_runs);
        ("m3_runs", List m3_runs);
        ("topology_runs", List topology_runs);
        ("live_chaos_runs", List live_chaos_runs);
        ("live_perf_runs", List live_perf_runs);
      ]
  in
  write_file bench_json_file json;
  Fmt.pr
    "wrote %s (%d engine run%s, %d m2 run%s, %d m3 run%s, %d topology run%s, \
     %d live-chaos run%s, %d live-perf run%s recorded)@."
    bench_json_file
    (List.length engine_runs)
    (if List.length engine_runs = 1 then "" else "s")
    (List.length m2_runs)
    (if List.length m2_runs = 1 then "" else "s")
    (List.length m3_runs)
    (if List.length m3_runs = 1 then "" else "s")
    (List.length topology_runs)
    (if List.length topology_runs = 1 then "" else "s")
    (List.length live_chaos_runs)
    (if List.length live_chaos_runs = 1 then "" else "s")
    (List.length live_perf_runs)
    (if List.length live_perf_runs = 1 then "" else "s")

let write_bench_json ~quick micro codec (tput : Harness.Engine_bench.result)
    (m2 : Harness.Member_bench.result) (m3 : Harness.M3_bench.result list) =
  let open Harness.Bench_json in
  let engine_runs = prior_engine_runs () @ [ engine_run_record ~quick tput ] in
  let m2_runs = prior_m2_runs () @ [ m2_run_record ~quick m2 ] in
  let m3_runs = prior_m3_runs () @ List.map (m3_run_record ~quick) m3 in
  let topology_runs = prior_topology_runs () in
  write_bench_json_file ~quick
    ~micro:
      (List
         (List.map
            (fun (name, ns) ->
              Obj [ ("name", String name); ("ns_per_op", Float ns) ])
            micro))
    ~codec:(List (List.map codec_micro_record codec))
    ~engine_runs ~m2_runs ~m3_runs ~topology_runs
    ~live_chaos_runs:(prior_live_chaos_runs ())
    ~live_perf_runs:(prior_live_perf_runs ())

let write_topology_json ~quick reports =
  let topology_runs =
    prior_topology_runs () @ List.map (topology_run_record ~quick) reports
  in
  write_bench_json_file ~quick ~micro:(prior_snapshot "micro")
    ~codec:(prior_snapshot "codec_micro") ~engine_runs:(prior_engine_runs ())
    ~m2_runs:(prior_m2_runs ()) ~m3_runs:(prior_m3_runs ()) ~topology_runs
    ~live_chaos_runs:(prior_live_chaos_runs ())
    ~live_perf_runs:(prior_live_perf_runs ())

let write_live_chaos_json ~quick reports =
  let live_chaos_runs =
    prior_live_chaos_runs () @ List.map (live_chaos_run_record ~quick) reports
  in
  write_bench_json_file ~quick ~micro:(prior_snapshot "micro")
    ~codec:(prior_snapshot "codec_micro") ~engine_runs:(prior_engine_runs ())
    ~m2_runs:(prior_m2_runs ()) ~m3_runs:(prior_m3_runs ())
    ~topology_runs:(prior_topology_runs ()) ~live_chaos_runs
    ~live_perf_runs:(prior_live_perf_runs ())

let write_live_perf_json ~quick records =
  let live_perf_runs = prior_live_perf_runs () @ records in
  write_bench_json_file ~quick ~micro:(prior_snapshot "micro")
    ~codec:(prior_snapshot "codec_micro") ~engine_runs:(prior_engine_runs ())
    ~m2_runs:(prior_m2_runs ()) ~m3_runs:(prior_m3_runs ())
    ~topology_runs:(prior_topology_runs ())
    ~live_chaos_runs:(prior_live_chaos_runs ()) ~live_perf_runs

let run_micro ?(quick = false) () =
  Fmt.pr "@.=== M0: hot-path microbenchmarks (Bechamel) ===@.@.";
  let micro = measure_micro () in
  let table =
    Harness.Table.create ~title:"M0: ns per call"
      ~columns:[ "operation"; "ns/run" ]
  in
  List.iter
    (fun (name, est) ->
      Harness.Table.add_row table [ name; Harness.Table.cell_f est ])
    micro;
  Harness.Table.print table;
  Fmt.pr "@.=== Codec: encode/decode per message kind ===@.@.";
  let codec = codec_micro () in
  let table =
    Harness.Table.create ~title:"codec cost per frame"
      ~columns:
        [ "kind"; "bytes"; "enc ns"; "enc words"; "dec ns"; "dec words" ]
  in
  List.iter
    (fun r ->
      Harness.Table.add_row table
        [
          r.kind;
          string_of_int r.frame_bytes;
          Harness.Table.cell_f r.encode_ns;
          Fmt.str "%.3f" r.encode_minor_words;
          Harness.Table.cell_f r.decode_ns;
          Fmt.str "%.1f" r.decode_minor_words;
        ])
    codec;
  Harness.Table.note table
    "words = minor-heap words allocated per frame; steady-state kinds must encode at 0";
  Harness.Table.print table;
  let zero_alloc_ok = check_zero_alloc_encode codec in
  let decode_alloc_ok = check_decode_alloc codec in
  Fmt.pr "@.=== M1: engine throughput (5-process broadcast) ===@.@.";
  let tput = engine_throughput ~quick in
  let table =
    Harness.Table.create ~title:"M1: events through the engine hot path"
      ~columns:[ "metric"; "value" ]
  in
  Harness.Table.add_rows table
    [
      [ "simulated seconds"; Harness.Table.cell_f tput.Harness.Engine_bench.sim_seconds ];
      [ "events dispatched"; string_of_int tput.events ];
      [ "wall seconds (best of 3)"; Harness.Table.cell_f tput.wall_seconds ];
      [ "events/sec"; Harness.Table.cell_f tput.events_per_sec ];
      [ "minor words/event"; Fmt.str "%.1f" tput.minor_words_per_event ];
    ];
  Harness.Table.note table
    "deterministic workload: event counts are seed-fixed, only wall time varies";
  Harness.Table.print table;
  Fmt.pr "@.=== M2: 64-member group, formation + steady state ===@.@.";
  let m2 = m2_throughput ~quick in
  let table =
    Harness.Table.create ~title:"M2: full protocol stack at n=64"
      ~columns:[ "metric"; "value" ]
  in
  Harness.Table.add_rows table
    [
      [ "members"; string_of_int m2.Harness.Member_bench.n ];
      [ "formation (sim s)"; Harness.Table.cell_f m2.form_sim_seconds ];
      [ "steady window (sim s)"; Harness.Table.cell_f m2.sim_seconds ];
      [ "wall seconds (best of 3)"; Harness.Table.cell_f m2.wall_seconds ];
      [ "sends + deliveries"; string_of_int m2.events ];
      [ "events/sec"; Harness.Table.cell_f m2.events_per_sec ];
      [ "minor words/event"; Fmt.str "%.1f" m2.minor_words_per_event ];
    ];
  Harness.Table.note table
    "full membership/broadcast/clocksync stack, faultless; seed-fixed counts";
  Harness.Table.print table;
  Fmt.pr "@.=== M3: large-N dissemination (gossip vs all-to-all) ===@.@.";
  let m3 = m3_runs ~quick in
  Harness.Table.print (m3_table m3);
  let m3_ok = check_m3_gates m3 in
  write_bench_json ~quick micro codec tput m2 m3;
  let m1_ok = tput.events_per_sec >= m1_floor_events_per_sec in
  if not m1_ok then
    Fmt.epr "GATE FAILED: M1 %.0f events/s below floor %.0f@."
      tput.events_per_sec m1_floor_events_per_sec;
  if not (zero_alloc_ok && decode_alloc_ok && m1_ok && m3_ok) then exit 1

(* Topology sweep sizing: the small scenarios are cheap (n<=6, ~3 sim
   seconds each) so they get many seeds; churn-gossip-64 simulates a
   64-member gossip group through formation plus churn (~12 sim
   seconds, the dominant wall cost) so it gets few. *)
let topology_sweep_runs ~quick (s : Chaos.Topology.scenario) =
  if s.Chaos.Topology.n >= 64 then if quick then 1 else 2
  else if quick then 3
  else 10

let topology_root_seed = 42

let run_topology ?(quick = false) () =
  Fmt.pr "@.=== Topology: convergence under shaped chaos ===@.@.";
  let reports =
    List.map
      (fun s ->
        let runs = topology_sweep_runs ~quick s in
        Fmt.pr "sweeping %s (n=%d, %d run%s)...@." s.Chaos.Topology.name
          s.Chaos.Topology.n runs
          (if runs = 1 then "" else "s");
        Chaos.Topology.sweep ~runs ~seed:topology_root_seed s)
      Chaos.Topology.scenarios
  in
  let table =
    Harness.Table.create ~title:"topology scenarios: convergence times (s)"
      ~columns:
        [
          "scenario"; "n"; "runs"; "fail"; "form p50"; "form p90";
          "reconv p50"; "reconv p90";
        ]
  in
  List.iter
    (fun (r : Chaos.Topology.report) ->
      let cell field = function
        | None -> "-"
        | Some (d : Chaos.Topology.dist) ->
          Harness.Table.cell_f (Time.to_sec_f (field d))
      in
      Harness.Table.add_row table
        [
          r.scenario.Chaos.Topology.name;
          string_of_int r.scenario.Chaos.Topology.n;
          string_of_int r.runs;
          string_of_int (List.length r.failures);
          cell (fun d -> d.Chaos.Topology.p50) r.formation;
          cell (fun d -> d.Chaos.Topology.p90) r.formation;
          cell (fun d -> d.Chaos.Topology.p50) r.reconvergence;
          cell (fun d -> d.Chaos.Topology.p90) r.reconvergence;
        ])
    reports;
  Harness.Table.note table
    (Fmt.str
       "fixed root seed %d; formation = time to the settled initial view, \
        reconvergence = heal-to-agreed-full-view after the plan's faults"
       topology_root_seed);
  Harness.Table.print table;
  write_topology_json ~quick reports;
  let bad = List.filter (fun r -> not (Chaos.Topology.ok r)) reports in
  List.iter (fun r -> Fmt.epr "%a@." Chaos.Topology.pp_report r) bad;
  if bad <> [] then begin
    Fmt.epr "GATE FAILED: %d topology scenario(s) saw violations@."
      (List.length bad);
    exit 1
  end

(* Live chaos sweep sizing: every scenario runs real-socket nodes in
   real time (wall-clock-bound phases, ~5-25s per run), so runs are
   few; quick keeps one seed per scenario. *)
let live_chaos_root_seed = 42
let live_chaos_base_port = 48612

let run_live_chaos ?(quick = false) () =
  Fmt.pr "@.=== Live chaos: recovery under real-socket faults ===@.@.";
  let runs = if quick then 1 else 3 in
  let reports =
    List.mapi
      (fun i (s : Chaos.Live.scenario) ->
        Fmt.pr "sweeping %s (n=%d, %d run%s)...@." s.Chaos.Live.name
          s.Chaos.Live.n runs
          (if runs = 1 then "" else "s");
        Chaos.Live.sweep ~runs
          ~base_port:(live_chaos_base_port + (i * 256))
          ~seed:live_chaos_root_seed s)
      Chaos.Live.scenarios
  in
  let table =
    Harness.Table.create ~title:"live chaos: recovery times (wall s)"
      ~columns:
        [
          "scenario"; "n"; "runs"; "fail"; "excl p50"; "excl p90";
          "rejoin p50"; "rejoin p90";
        ]
  in
  List.iter
    (fun (r : Chaos.Live.report) ->
      let cell field = function
        | None -> "-"
        | Some (d : Chaos.Topology.dist) ->
          Harness.Table.cell_f (Time.to_sec_f (field d))
      in
      Harness.Table.add_row table
        [
          r.Chaos.Live.scenario.Chaos.Live.name;
          string_of_int r.Chaos.Live.scenario.Chaos.Live.n;
          string_of_int r.Chaos.Live.runs;
          string_of_int
            (List.length
               (List.filter
                  (fun o -> not (Chaos.Live.ok o))
                  r.Chaos.Live.outcomes));
          cell (fun d -> d.Chaos.Topology.p50) r.Chaos.Live.exclusion;
          cell (fun d -> d.Chaos.Topology.p90) r.Chaos.Live.exclusion;
          cell (fun d -> d.Chaos.Topology.p50) r.Chaos.Live.rejoin;
          cell (fun d -> d.Chaos.Topology.p90) r.Chaos.Live.rejoin;
        ])
    reports;
  Harness.Table.note table
    (Fmt.str
       "fixed root seed %d, real UDP on localhost; exclusion = fault to \
        agreed survivor view, rejoin = recovery to agreed full view"
       live_chaos_root_seed);
  Harness.Table.print table;
  write_live_chaos_json ~quick reports;
  let bad = List.filter (fun r -> not (Chaos.Live.report_ok r)) reports in
  List.iter (fun r -> Fmt.epr "%a@." Chaos.Live.pp_report r) bad;
  if bad <> [] then begin
    Fmt.epr "GATE FAILED: %d live chaos scenario(s) saw violations@."
      (List.length bad);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* M4: the live data plane at hardware speed *)

let live_perf_base_port = 49400

(* Batched must move at least this many times more frames per syscall
   than the per-datagram fallback. Frames-per-syscall is the quantity
   syscall batching actually controls, and it is hardware-independent:
   64-slot send batches and 16-slot receive rings put the true ratio
   near 20x, so 2x only trips if batching effectively stops
   happening. Wall-clock frames/s is recorded for both paths but held
   only to a non-regression floor — on a virtualized single-core
   loopback the kernel's per-datagram path (~0.9 us/frame here,
   measured: a 60-slot sendmmsg costs as much per datagram as 60
   sendto calls minus their transitions) dominates wall time, so the
   wall-clock batching dividend is whatever the machine's
   transition/datagram cost ratio allows, not a constant. *)
let live_perf_frames_per_syscall_floor = 2.0

(* batching must never make wall-clock throughput worse *)
let live_perf_wall_floor = 0.9

(* steady-state syscall budget: 64-slot send batches and 16-slot
   receive rings bound the true ratio near 1/64 + 1/16; 0.25 only
   trips if batching effectively stops happening *)
let live_perf_syscalls_per_frame_ceiling = 0.25

let live_perf_sharded_speedup_floor = 1.5

let run_live_perf ?(quick = false) () =
  Fmt.pr "@.=== M4: live data plane (batched UDP, sharded domains) ===@.@.";
  let flood_seconds = if quick then 0.3 else 1.0 in
  let cluster_seconds = if quick then 1.0 else 2.0 in
  let flood_batched =
    Harness.Live_perf_bench.flood ~seconds:flood_seconds
      ~base_port:live_perf_base_port ~batching:true ()
  in
  let flood_fallback =
    Harness.Live_perf_bench.flood ~seconds:flood_seconds
      ~base_port:(live_perf_base_port + 64) ~batching:false ()
  in
  let table =
    Harness.Table.create ~title:"M4 flood: transport syscall efficiency"
      ~columns:
        [ "path"; "sent"; "received"; "frames/s"; "syscalls"; "sys/frame" ]
  in
  let flood_row name (r : Harness.Live_perf_bench.flood_result) =
    Harness.Table.add_row table
      [
        name;
        string_of_int r.fl_sent;
        string_of_int r.fl_received;
        Harness.Table.cell_f r.fl_frames_per_sec;
        string_of_int r.fl_syscalls;
        Fmt.str "%.3f" r.fl_syscalls_per_frame;
      ]
  in
  flood_row
    (if flood_batched.fl_batched then "batched (mmsg)" else "batched (UNAVAILABLE)")
    flood_batched;
  flood_row "per-datagram" flood_fallback;
  Harness.Table.note table
    "one sender broadcasting minimal frames to 3 receivers over real UDP on \
     localhost; sys/frame = syscalls / (sent + received)";
  Harness.Table.print table;
  let cluster_1 =
    Harness.Live_perf_bench.cluster ~shards:1 ~seconds:cluster_seconds
      ~base_port:(live_perf_base_port + 128) ()
  in
  let cluster_2 =
    Harness.Live_perf_bench.cluster ~shards:2 ~seconds:cluster_seconds
      ~base_port:(live_perf_base_port + 384) ()
  in
  let table =
    Harness.Table.create
      ~title:"M4 cluster: full stack under load, sharded across domains"
      ~columns:
        [
          "shards"; "formed"; "frames/s"; "deliv"; "p50 us"; "p99 us";
          "p999 us"; "false susp.";
        ]
  in
  let cluster_row (r : Harness.Live_perf_bench.cluster_result) =
    let lat = r.cl_latency in
    Harness.Table.add_row table
      [
        string_of_int r.cl_shards;
        (if r.cl_formed then "yes" else "NO");
        Harness.Table.cell_f r.cl_frames_per_sec;
        string_of_int r.cl_deliveries;
        string_of_int (Harness.Hdr.percentile lat 50.0);
        string_of_int (Harness.Hdr.percentile lat 99.0);
        string_of_int (Harness.Hdr.percentile lat 99.9);
        string_of_int r.cl_false_suspicions;
      ]
  in
  cluster_row cluster_1;
  cluster_row cluster_2;
  Harness.Table.note table
    (Fmt.str
       "%d-member group(s), one per domain, steady totally-ordered updates; \
        latency = submit->deliver (this machine reports %d core(s))"
       cluster_1.cl_n
       (Runtime.Cluster.Sharded.recommended ()));
  Harness.Table.print table;
  write_live_perf_json ~quick
    [
      live_perf_flood_record ~quick flood_batched;
      live_perf_flood_record ~quick flood_fallback;
      live_perf_cluster_record ~quick cluster_1;
      live_perf_cluster_record ~quick cluster_2;
    ];
  let fail = ref false in
  let gate msg ok =
    if not ok then begin
      Fmt.epr "GATE FAILED: %s@." msg;
      fail := true
    end
  in
  gate "M4 flood batched path unavailable (mmsg unsupported?)"
    flood_batched.fl_batched;
  let frames_per_syscall (r : Harness.Live_perf_bench.flood_result) =
    if r.fl_syscalls = 0 then 0.0
    else float_of_int (r.fl_sent + r.fl_received) /. float_of_int r.fl_syscalls
  in
  gate
    (Fmt.str
       "M4 batched flood %.1f frames/syscall < %.1fx fallback %.1f \
        frames/syscall"
       (frames_per_syscall flood_batched)
       live_perf_frames_per_syscall_floor
       (frames_per_syscall flood_fallback))
    (frames_per_syscall flood_batched
    >= live_perf_frames_per_syscall_floor *. frames_per_syscall flood_fallback);
  gate
    (Fmt.str
       "M4 batched flood %.0f frames/s regressed below %.1fx fallback %.0f \
        frames/s"
       flood_batched.fl_frames_per_sec live_perf_wall_floor
       flood_fallback.fl_frames_per_sec)
    (flood_batched.fl_frames_per_sec
    >= live_perf_wall_floor *. flood_fallback.fl_frames_per_sec);
  gate
    (Fmt.str "M4 batched flood %.3f syscalls/frame above ceiling %.2f"
       flood_batched.fl_syscalls_per_frame
       live_perf_syscalls_per_frame_ceiling)
    (flood_batched.fl_syscalls_per_frame
    <= live_perf_syscalls_per_frame_ceiling);
  gate "M4 cluster (1 shard) did not form" cluster_1.cl_formed;
  gate "M4 cluster (1 shard) recorded no latency samples"
    (Harness.Hdr.count cluster_1.cl_latency > 0);
  gate
    (Fmt.str "M4 cluster saw %d false suspicions (want 0)"
       (cluster_1.cl_false_suspicions + cluster_2.cl_false_suspicions))
    (cluster_1.cl_false_suspicions = 0 && cluster_2.cl_false_suspicions = 0);
  gate "M4 cluster (2 shards) did not form" cluster_2.cl_formed;
  (* the parallel-speedup gate only means something when the machine
     can actually run two domains at once; single-core boxes record
     the 2-shard point without gating it *)
  if Runtime.Cluster.Sharded.recommended () >= 2 then
    gate
      (Fmt.str
         "M4 sharded: 2 domains %.0f frames/s < %.1fx 1 domain %.0f frames/s"
         cluster_2.cl_frames_per_sec live_perf_sharded_speedup_floor
         cluster_1.cl_frames_per_sec)
      (cluster_2.cl_frames_per_sec
      >= live_perf_sharded_speedup_floor *. cluster_1.cl_frames_per_sec)
  else
    Fmt.pr
      "note: single-core machine — the 2-shard speedup point is recorded \
       but not gated@.";
  if !fail then exit 1

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let is_quick a = a = "quick" || a = "--quick" in
  let quick = List.exists is_quick args in
  let targets = List.filter (fun a -> not (is_quick a)) args in
  let run_m3_alone () =
    Fmt.pr "@.=== M3: large-N dissemination (gossip vs all-to-all) ===@.@.";
    let m3 = m3_runs ~quick in
    Harness.Table.print (m3_table m3);
    if not (check_m3_gates m3) then exit 1
  in
  match targets with
  | [] ->
    Harness.Experiments.run_all ~quick ();
    run_micro ~quick ()
  | [ "micro" ] -> run_micro ~quick ()
  | [ "m3" ] -> run_m3_alone ()
  | [ "topology" ] -> run_topology ~quick ()
  | [ "live-chaos" ] -> run_live_chaos ~quick ()
  | [ "live-perf" ] -> run_live_perf ~quick ()
  | ids ->
    let unknown = ref false in
    List.iter
      (fun id ->
        match Harness.Experiments.find id with
        | Some e ->
          Fmt.pr "@.=== %s: %s ===@.@." e.Harness.Experiments.id
            e.Harness.Experiments.title;
          List.iter Harness.Table.print (e.Harness.Experiments.run ~quick ())
        | None when id = "micro" -> run_micro ~quick ()
        | None when id = "m3" -> run_m3_alone ()
        | None when id = "topology" -> run_topology ~quick ()
        | None when id = "live-chaos" -> run_live_chaos ~quick ()
        | None when id = "live-perf" -> run_live_perf ~quick ()
        | None ->
          Fmt.epr "unknown experiment %S@." id;
          unknown := true)
      ids;
    if !unknown then begin
      Fmt.epr "known ids: %s, micro, m3, topology, live-chaos, live-perf@."
        (String.concat ", "
           (List.map
              (fun e -> e.Harness.Experiments.id)
              Harness.Experiments.all));
      exit 1
    end
