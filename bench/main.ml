(* Benchmark and experiment harness.

   Usage:
     bench/main.exe               run every experiment (full sweeps) and
                                  the microbenchmarks
     bench/main.exe quick         reduced sweeps (CI-sized)
     bench/main.exe e3            one experiment
     bench/main.exe quick e3      one experiment, reduced
     bench/main.exe micro         microbenchmarks only

   Each experiment prints the table(s) recorded in EXPERIMENTS.md; see
   DESIGN.md section 5 for the experiment index. Unknown experiment ids
   exit non-zero so a typo'd CI invocation fails loudly.

   The micro target additionally runs the engine-throughput
   macrobenchmark and writes machine-readable results to
   BENCH_engine.json in the current directory (format in DESIGN.md
   section 5). The M1 result is APPENDED to the file's engine_runs
   series — successive invocations accumulate a perf trajectory
   instead of overwriting the previous point. *)

open Tasim
open Timewheel
open Broadcast

(* ------------------------------------------------------------------ *)
(* M0: Bechamel microbenchmarks of protocol hot paths                  *)

let microbenches () =
  let open Bechamel in
  let params = Params.make ~n:5 () in
  let fd = Failure_detector.create params ~self:(Proc_id.of_int 0) in
  let fd = Failure_detector.expect fd ~sender:(Proc_id.of_int 1) ~base:Tasim.Time.zero in
  let oal =
    List.fold_left
      (fun oal i ->
        fst
          (Oal.append_update oal
             {
               Oal.proposal_id = { Proposal.origin = Proc_id.of_int (i mod 5); seq = i };
               semantics = Semantics.total_strong;
               send_ts = Tasim.Time.of_us i;
               hdo = i - 1;
             }
             ~acks:(Proc_set.singleton (Proc_id.of_int 0))))
      Oal.empty
      (List.init 32 Fun.id)
  in
  let env =
    {
      Group_creator.self = Proc_id.of_int 0;
      group = Proc_set.full ~n:5;
      n = 5;
      majority = 3;
      current_slot = 10;
      single_failure_election = true;
    }
  in
  let gc_event =
    Group_creator.Fd_timeout { suspect = Proc_id.of_int 2; since = Tasim.Time.zero }
  in
  let heap_test =
    Test.make ~name:"event-queue add+pop"
      (Staged.stage (fun () ->
           let h = Heap.create () in
           for i = 0 to 31 do
             Heap.add h ~time:(i * 13 mod 32) i
           done;
           while Heap.pop h <> None do
             ()
           done))
  in
  let heap_hot_test =
    (* steady-state churn on a warm heap via the allocation-free
       min_time/pop_min pair: the engine run-loop's exact access
       pattern *)
    Test.make ~name:"event-queue hot add+pop_min"
      (Staged.stage
         (let h = Heap.create () in
          let tick = ref 0 in
          for i = 0 to 31 do
            Heap.add h ~time:i i
          done;
          fun () ->
            for _ = 0 to 31 do
              let t = Heap.min_time h in
              let v = Heap.pop_min h in
              incr tick;
              Heap.add h ~time:(t + 1 + (v land 7)) ((v + !tick) land 1023)
            done))
  in
  let stats_interned_test =
    Test.make ~name:"stats bump (interned)"
      (Staged.stage
         (let s = Stats.create () in
          let c = Stats.counter s "sent:decision" in
          fun () -> Stats.bump c))
  in
  let stats_string_test =
    Test.make ~name:"stats incr (string build)"
      (Staged.stage
         (let s = Stats.create () in
          let kind = "decision" in
          fun () -> Stats.incr s ("sent:" ^ kind)))
  in
  let fd_test =
    Test.make ~name:"failure-detector admit"
      (Staged.stage (fun () ->
           ignore
             (Failure_detector.admit fd ~from:(Proc_id.of_int 1)
                ~ts:(Tasim.Time.of_ms 5) ~now:(Tasim.Time.of_ms 7))))
  in
  let oal_test =
    Test.make ~name:"oal merge (32 entries)"
      (Staged.stage (fun () -> ignore (Oal.merge ~local:oal ~incoming:oal)))
  in
  let gc_test =
    Test.make ~name:"group-creator step"
      (Staged.stage (fun () ->
           ignore (Group_creator.step env Creator_state.Failure_free gc_event)))
  in
  let dispatcher_test =
    Test.make ~name:"dispatcher post+run"
      (Staged.stage
         (let d = Eventloop.Dispatcher.create () in
          Eventloop.Dispatcher.register d ~kind:0 (fun _ -> ());
          fun () ->
            Eventloop.Dispatcher.post d ~kind:0 0;
            ignore (Eventloop.Dispatcher.run_pending d)))
  in
  let wheel_test =
    Test.make ~name:"timer-wheel schedule+advance"
      (Staged.stage
         (let w = Eventloop.Timer_wheel.create ~tick:10 () in
          let now = ref 0 in
          fun () ->
            ignore (Eventloop.Timer_wheel.schedule w ~at:(!now + 50) (fun () -> ()));
            now := !now + 10;
            ignore (Eventloop.Timer_wheel.advance w ~to_:!now)))
  in
  [
    heap_test;
    heap_hot_test;
    stats_interned_test;
    stats_string_test;
    fd_test;
    oal_test;
    gc_test;
    dispatcher_test;
    wheel_test;
  ]

(* ns-per-run estimates, in microbench declaration order *)
let measure_micro () =
  let open Bechamel in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.5) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.fold
        (fun name result acc ->
          let name =
            if String.length name > 2 && String.sub name 0 2 = "g/" then
              String.sub name 2 (String.length name - 2)
            else name
          in
          match Analyze.OLS.estimates result with
          | Some [ est ] -> (name, est) :: acc
          | _ -> acc)
        ols [])
    (microbenches ())

let bench_json_file = "BENCH_engine.json"

let engine_throughput ~quick =
  let seconds = if quick then 3 else 10 in
  (* best of three: the simulated work is identical each run, only
     wall-clock noise differs *)
  let runs = List.init 3 (fun _ -> Harness.Engine_bench.run ~seconds ()) in
  List.fold_left
    (fun best (r : Harness.Engine_bench.result) ->
      if r.events_per_sec > best.Harness.Engine_bench.events_per_sec then r
      else best)
    (List.hd runs) (List.tl runs)

let engine_run_record ~quick (tput : Harness.Engine_bench.result) =
  let open Harness.Bench_json in
  Obj
    [
      ("workload", String "5-process broadcast, 1ms period, fixed seed");
      ("quick", Bool quick);
      ("sim_seconds", Float tput.Harness.Engine_bench.sim_seconds);
      ("wall_seconds", Float tput.wall_seconds);
      ("events", Int tput.events);
      ("sends", Int tput.sends);
      ("deliveries", Int tput.deliveries);
      ("timer_fires", Int tput.timer_fires);
      ("observations", Int tput.observations);
      ("events_per_sec", Float tput.events_per_sec);
    ]

(* M1 results accumulate across invocations so regressions are visible
   as a series, not silently overwritten; schema v2 (DESIGN.md section
   5). A v1 file's single engine_throughput object migrates to the
   first element of the series. *)
let prior_engine_runs () =
  let open Harness.Bench_json in
  match read_file bench_json_file with
  | Error _ -> []
  | Ok json -> (
    match member "engine_runs" json with
    | Some (List runs) -> runs
    | Some _ | None -> (
      match member "engine_throughput" json with
      | Some (Obj fields) ->
        let quick =
          match member "quick" json with Some (Bool b) -> b | _ -> false
        in
        [ Obj (("quick", Bool quick) :: fields) ]
      | Some _ | None -> []))

let write_bench_json ~quick micro (tput : Harness.Engine_bench.result) =
  let open Harness.Bench_json in
  let engine_runs = prior_engine_runs () @ [ engine_run_record ~quick tput ] in
  let json =
    Obj
      [
        ("schema", String "timewheel/bench-engine/v2");
        ("quick", Bool quick);
        ("seed", Int 42);
        ( "micro",
          List
            (List.map
               (fun (name, ns) ->
                 Obj [ ("name", String name); ("ns_per_op", Float ns) ])
               micro) );
        ("engine_runs", List engine_runs);
      ]
  in
  write_file bench_json_file json;
  Fmt.pr "wrote %s (%d engine run%s recorded)@." bench_json_file
    (List.length engine_runs)
    (if List.length engine_runs = 1 then "" else "s")

let run_micro ?(quick = false) () =
  Fmt.pr "@.=== M0: hot-path microbenchmarks (Bechamel) ===@.@.";
  let micro = measure_micro () in
  let table =
    Harness.Table.create ~title:"M0: ns per call"
      ~columns:[ "operation"; "ns/run" ]
  in
  List.iter
    (fun (name, est) ->
      Harness.Table.add_row table [ name; Harness.Table.cell_f est ])
    micro;
  Harness.Table.print table;
  Fmt.pr "@.=== M1: engine throughput (5-process broadcast) ===@.@.";
  let tput = engine_throughput ~quick in
  let table =
    Harness.Table.create ~title:"M1: events through the engine hot path"
      ~columns:[ "metric"; "value" ]
  in
  Harness.Table.add_rows table
    [
      [ "simulated seconds"; Harness.Table.cell_f tput.Harness.Engine_bench.sim_seconds ];
      [ "events dispatched"; string_of_int tput.events ];
      [ "wall seconds (best of 3)"; Harness.Table.cell_f tput.wall_seconds ];
      [ "events/sec"; Harness.Table.cell_f tput.events_per_sec ];
    ];
  Harness.Table.note table
    "deterministic workload: event counts are seed-fixed, only wall time varies";
  Harness.Table.print table;
  write_bench_json ~quick micro tput

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let targets = List.filter (fun a -> a <> "quick") args in
  match targets with
  | [] ->
    Harness.Experiments.run_all ~quick ();
    run_micro ~quick ()
  | [ "micro" ] -> run_micro ~quick ()
  | ids ->
    let unknown = ref false in
    List.iter
      (fun id ->
        match Harness.Experiments.find id with
        | Some e ->
          Fmt.pr "@.=== %s: %s ===@.@." e.Harness.Experiments.id
            e.Harness.Experiments.title;
          List.iter Harness.Table.print (e.Harness.Experiments.run ~quick ())
        | None when id = "micro" -> run_micro ~quick ()
        | None ->
          Fmt.epr "unknown experiment %S@." id;
          unknown := true)
      ids;
    if !unknown then begin
      Fmt.epr "known ids: %s, micro@."
        (String.concat ", "
           (List.map
              (fun e -> e.Harness.Experiments.id)
              Harness.Experiments.all));
      exit 1
    end
