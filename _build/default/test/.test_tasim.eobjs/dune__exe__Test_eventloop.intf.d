test/test_eventloop.mli:
