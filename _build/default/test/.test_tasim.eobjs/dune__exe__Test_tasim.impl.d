test/test_tasim.ml: Alcotest Array Engine Fun Gen Hardware_clock Heap List Net Option Proc_id Proc_set QCheck QCheck_alcotest Rng Stats Tasim Time Trace
