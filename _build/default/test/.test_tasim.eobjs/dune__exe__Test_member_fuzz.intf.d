test/test_member_fuzz.mli:
