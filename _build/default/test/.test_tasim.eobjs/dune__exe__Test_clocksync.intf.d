test/test_clocksync.mli:
