test/test_full_stack.mli:
