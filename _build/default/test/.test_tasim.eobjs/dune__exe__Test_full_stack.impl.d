test/test_full_stack.ml: Alcotest Array Broadcast Clocksync Engine Fmt Full_stack Hardware_clock List Member Net Option Params Proc_id Proc_set Proposal Rng Semantics Tasim Time Timewheel
