test/test_membership_unit.mli:
