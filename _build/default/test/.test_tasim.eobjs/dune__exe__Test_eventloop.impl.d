test/test_eventloop.ml: Alcotest Array Eventloop Gen List Mutex QCheck QCheck_alcotest
