test/test_clocksync.ml: Alcotest Array Clocksync Engine Hardware_clock List Net Proc_id QCheck QCheck_alcotest Rng Tasim Time
