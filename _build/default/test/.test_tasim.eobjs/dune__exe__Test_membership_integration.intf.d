test/test_membership_integration.mli:
