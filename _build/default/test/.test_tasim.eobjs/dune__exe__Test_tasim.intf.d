test/test_tasim.mli:
