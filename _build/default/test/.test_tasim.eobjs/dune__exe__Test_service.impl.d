test/test_service.ml: Alcotest Broadcast Creator_state Harness List Member Proc_id Proc_set Proposal Semantics Service Stats Tasim Time Timewheel Trace
