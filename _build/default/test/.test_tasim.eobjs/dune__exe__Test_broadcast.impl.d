test/test_broadcast.ml: Alcotest Broadcast Buffers Delivery Engine Fmt Fun Hashtbl List Net Oal Proc_id Proc_set Proposal Protocol QCheck QCheck_alcotest Rng Rotation Semantics Stats Tasim Time
