test/test_baseline.ml: Alcotest Baseline Engine Hashtbl List Net Proc_id Proc_set Stats Tasim Time
