test/test_harness.ml: Alcotest Float Fmt Harness List Proc_set Service String Tasim Time Timewheel
