test/test_member_fuzz.ml: Alcotest Broadcast Buffers Control_msg Engine Fmt List Member Oal Params Proc_id Proc_set Proposal QCheck QCheck_alcotest Semantics Tasim Time Timewheel
