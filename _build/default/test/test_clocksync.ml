(* Tests for the fail-aware clock synchronization substrate. *)

open Tasim

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Reading *)

let test_reading_round_trip () =
  (* request at 100ms, reply carrying remote=500ms, arrives at 110ms:
     rtt 10ms, estimate remote at arrival = 505ms, offset = 395ms *)
  match
    Clocksync.Reading.of_round_trip ~send_local:(Time.of_ms 100)
      ~recv_local:(Time.of_ms 110) ~remote_clock:(Time.of_ms 500)
      ~min_delay:(Time.of_ms 1) ~drift_bound:0.0
  with
  | None -> Alcotest.fail "valid round trip rejected"
  | Some r ->
    check Alcotest.int "offset" (Time.of_ms 395) r.Clocksync.Reading.offset;
    check Alcotest.int "error" (Time.of_ms 4) r.Clocksync.Reading.error;
    check Alcotest.int "read_at" (Time.of_ms 110) r.Clocksync.Reading.read_at

let test_reading_invalid () =
  check Alcotest.bool "negative rtt rejected" true
    (Clocksync.Reading.of_round_trip ~send_local:(Time.of_ms 100)
       ~recv_local:(Time.of_ms 90) ~remote_clock:Time.zero
       ~min_delay:Time.zero ~drift_bound:0.0
    = None)

let test_reading_error_growth () =
  match
    Clocksync.Reading.of_round_trip ~send_local:Time.zero
      ~recv_local:(Time.of_ms 4) ~remote_clock:(Time.of_ms 100)
      ~min_delay:(Time.of_ms 1) ~drift_bound:0.0
  with
  | None -> Alcotest.fail "rejected"
  | Some r ->
    let e0 = Clocksync.Reading.error_at r ~now_local:(Time.of_ms 4) ~drift_bound:1e-5 in
    let e1 =
      Clocksync.Reading.error_at r ~now_local:(Time.of_sec 10) ~drift_bound:1e-5
    in
    check Alcotest.bool "error grows with age" true (e1 > e0);
    (* 10s of 1e-5 drift on both sides = 200us *)
    check Alcotest.int "growth amount" (Time.add e0 (Time.of_us 200)) e1

(* The estimated offset must always be within the error bound of the
   true offset, for any actual delay split within the round trip. *)
let prop_reading_bounds_true_offset =
  QCheck.Test.make ~name:"reading error bound contains the true offset"
    QCheck.(
      triple (int_range 1000 8000) (int_range 1000 8000)
        (int_range (-1_000_000) 1_000_000))
    (fun (d_req, d_reply, true_offset) ->
      (* local sends at t0; request takes d_req; remote replies
         immediately with remote = local_true + true_offset; reply takes
         d_reply *)
      let send_local = Time.of_ms 100 in
      let remote_clock = send_local + d_req + true_offset in
      let recv_local = send_local + d_req + d_reply in
      match
        Clocksync.Reading.of_round_trip ~send_local ~recv_local ~remote_clock
          ~min_delay:(Time.of_us 1000) ~drift_bound:0.0
      with
      | None -> false
      | Some r ->
        abs (r.Clocksync.Reading.offset - true_offset)
        <= r.Clocksync.Reading.error)

(* ------------------------------------------------------------------ *)
(* Sync_clock *)

let params n : Clocksync.Sync_clock.params =
  {
    Clocksync.Sync_clock.epsilon = Time.of_ms 20;
    drift_bound = 1e-5;
    validity = Time.of_sec 2;
    n;
  }

let reading ~offset ~error ~read_at =
  { Clocksync.Reading.offset; error; read_at }

let test_sync_clock_reference_is_p0 () =
  let c = Clocksync.Sync_clock.create (params 5) ~self:(Proc_id.of_int 3) in
  let st = Clocksync.Sync_clock.status c ~now_local:Time.zero in
  check Alcotest.int "reference" 0
    (Proc_id.to_int st.Clocksync.Sync_clock.reference);
  check Alcotest.bool "not synchronized without a reading" false
    st.Clocksync.Sync_clock.synchronized

let test_sync_clock_self_is_reference () =
  let c = Clocksync.Sync_clock.create (params 5) ~self:(Proc_id.of_int 0) in
  let st = Clocksync.Sync_clock.status c ~now_local:(Time.of_sec 1) in
  check Alcotest.bool "reference always synchronized" true
    st.Clocksync.Sync_clock.synchronized;
  check (Alcotest.option Alcotest.int) "reads own clock"
    (Some (Time.of_sec 1))
    (Clocksync.Sync_clock.reading c ~now_local:(Time.of_sec 1))

let test_sync_clock_becomes_synchronized () =
  let c = Clocksync.Sync_clock.create (params 5) ~self:(Proc_id.of_int 2) in
  let c =
    Clocksync.Sync_clock.note_reading c ~of_:(Proc_id.of_int 0)
      (reading ~offset:(Time.of_ms 50) ~error:(Time.of_ms 3)
         ~read_at:(Time.of_ms 100))
  in
  let st = Clocksync.Sync_clock.status c ~now_local:(Time.of_ms 150) in
  check Alcotest.bool "synchronized" true st.Clocksync.Sync_clock.synchronized;
  check (Alcotest.option Alcotest.int) "corrected reading"
    (Some (Time.of_ms 200))
    (Clocksync.Sync_clock.reading c ~now_local:(Time.of_ms 150))

let test_sync_clock_fail_awareness_on_staleness () =
  let c = Clocksync.Sync_clock.create (params 5) ~self:(Proc_id.of_int 2) in
  let c =
    Clocksync.Sync_clock.note_reading c ~of_:(Proc_id.of_int 0)
      (reading ~offset:Time.zero ~error:(Time.of_ms 3) ~read_at:Time.zero)
  in
  (* within validity: synchronized *)
  check Alcotest.bool "fresh" true
    (Clocksync.Sync_clock.status c ~now_local:(Time.of_sec 1))
      .Clocksync.Sync_clock.synchronized;
  (* after validity expires the clock knows it is unsynchronized *)
  let c = Clocksync.Sync_clock.drop_stale c ~now_local:(Time.of_sec 3) in
  check Alcotest.bool "stale" false
    (Clocksync.Sync_clock.status c ~now_local:(Time.of_sec 3))
      .Clocksync.Sync_clock.synchronized

let test_sync_clock_rejects_big_error () =
  let c = Clocksync.Sync_clock.create (params 5) ~self:(Proc_id.of_int 2) in
  let c =
    Clocksync.Sync_clock.note_reading c ~of_:(Proc_id.of_int 0)
      (reading ~offset:Time.zero ~error:(Time.of_ms 15) ~read_at:Time.zero)
  in
  (* bound 15ms > epsilon/2 = 10ms *)
  check Alcotest.bool "too uncertain" false
    (Clocksync.Sync_clock.status c ~now_local:(Time.of_ms 1))
      .Clocksync.Sync_clock.synchronized

let test_sync_clock_keeps_better_reading () =
  let c = Clocksync.Sync_clock.create (params 5) ~self:(Proc_id.of_int 2) in
  let c =
    Clocksync.Sync_clock.note_reading c ~of_:(Proc_id.of_int 0)
      (reading ~offset:(Time.of_ms 10) ~error:(Time.of_ms 1) ~read_at:Time.zero)
  in
  (* worse reading arrives later: must not replace the sharper one *)
  let c =
    Clocksync.Sync_clock.note_reading c ~of_:(Proc_id.of_int 0)
      (reading ~offset:(Time.of_ms 99) ~error:(Time.of_ms 9)
         ~read_at:(Time.of_ms 1))
  in
  check (Alcotest.option Alcotest.int) "kept sharp offset"
    (Some (Time.add (Time.of_ms 100) (Time.of_ms 10)))
    (Clocksync.Sync_clock.reading c ~now_local:(Time.of_ms 100))

let test_sync_clock_local_of_sync () =
  let c = Clocksync.Sync_clock.create (params 5) ~self:(Proc_id.of_int 2) in
  let c =
    Clocksync.Sync_clock.note_reading c ~of_:(Proc_id.of_int 0)
      (reading ~offset:(Time.of_ms 50) ~error:(Time.of_ms 2) ~read_at:Time.zero)
  in
  check (Alcotest.option Alcotest.int) "inverse translation"
    (Some (Time.of_ms 150))
    (Clocksync.Sync_clock.local_of_sync c ~sync:(Time.of_ms 200)
       ~now_local:(Time.of_ms 100))

(* ------------------------------------------------------------------ *)
(* Protocol integration *)

let run_protocol ~n ~omission ~seed ~duration =
  let cfg = Clocksync.Protocol.default_config ~n in
  let net =
    {
      Net.default_config with
      Net.delta = cfg.Clocksync.Protocol.delta;
      omission_prob = omission;
    }
  in
  let engine = Engine.create { Engine.default_config with Engine.net; seed } ~n in
  let rng = Rng.create (seed + 1) in
  let clocks =
    Array.init n (fun _ ->
        Hardware_clock.random rng ~max_offset:(Time.of_sec 1) ~max_drift:1e-5)
  in
  let automaton = Clocksync.Protocol.automaton cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:(Engine.clock_source_of_hardware clocks.(Proc_id.to_int id))
        ())
    (Proc_id.all ~n);
  Engine.run engine ~until:duration;
  (engine, cfg)

let test_protocol_all_synchronize () =
  let engine, _ = run_protocol ~n:5 ~omission:0.0 ~seed:3 ~duration:(Time.of_sec 2) in
  List.iter
    (fun id ->
      match Engine.state_of engine id with
      | Some st ->
        let now_local = Engine.clock_of engine id in
        if Clocksync.Protocol.sync_reading st ~now_local = None then
          Alcotest.failf "process %d not synchronized" (Proc_id.to_int id)
      | None -> Alcotest.fail "process down")
    (Proc_id.all ~n:5)

let test_protocol_deviation_bounded () =
  let engine, cfg =
    run_protocol ~n:5 ~omission:0.1 ~seed:4 ~duration:(Time.of_sec 3)
  in
  let epsilon = cfg.Clocksync.Protocol.clock.Clocksync.Sync_clock.epsilon in
  let readings =
    List.filter_map
      (fun id ->
        match Engine.state_of engine id with
        | Some st ->
          Clocksync.Protocol.sync_reading st
            ~now_local:(Engine.clock_of engine id)
        | None -> None)
      (Proc_id.all ~n:5)
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if abs (Time.sub a b) > epsilon then
            Alcotest.failf "deviation %d exceeds epsilon" (abs (Time.sub a b)))
        readings)
    readings

let test_protocol_rejects_late_replies () =
  (* with heavy performance failures, readings taken must still honour
     the bound: late replies (> 2 delta) are rejected outright *)
  let cfg = Clocksync.Protocol.default_config ~n:3 in
  let net =
    {
      Net.default_config with
      Net.delta = cfg.Clocksync.Protocol.delta;
      late_prob = 0.5;
      late_delay_max = Time.of_ms 100;
    }
  in
  let engine =
    Engine.create { Engine.default_config with Engine.net; seed = 5 } ~n:3
  in
  let rng = Rng.create 6 in
  let clocks =
    Array.init 3 (fun _ ->
        Hardware_clock.random rng ~max_offset:(Time.of_sec 1) ~max_drift:1e-5)
  in
  let automaton = Clocksync.Protocol.automaton cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:(Engine.clock_source_of_hardware clocks.(Proc_id.to_int id))
        ())
    (Proc_id.all ~n:3);
  Engine.run engine ~until:(Time.of_sec 3);
  let epsilon = cfg.Clocksync.Protocol.clock.Clocksync.Sync_clock.epsilon in
  let readings =
    List.filter_map
      (fun id ->
        match Engine.state_of engine id with
        | Some st ->
          Clocksync.Protocol.sync_reading st
            ~now_local:(Engine.clock_of engine id)
        | None -> None)
      (Proc_id.all ~n:3)
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if abs (Time.sub a b) > epsilon then
            Alcotest.fail "late replies corrupted the bound")
        readings)
    readings

(* ------------------------------------------------------------------ *)
(* Oracle *)

let test_oracle_deviation () =
  let rng = Rng.create 9 in
  let epsilon = Time.of_ms 2 in
  let clocks = Clocksync.Oracle.clocks rng ~n:8 ~epsilon ~max_drift:1e-6 in
  (* at several instants, pairwise deviation must stay within epsilon
     plus negligible drift accumulation *)
  List.iter
    (fun real ->
      Array.iter
        (fun (a : Engine.clock_source) ->
          Array.iter
            (fun (b : Engine.clock_source) ->
              let da = a.Engine.reading ~real and db = b.Engine.reading ~real in
              if abs (Time.sub da db) > Time.add epsilon (Time.of_us 50) then
                Alcotest.fail "oracle deviation exceeded")
            clocks)
        clocks)
    [ Time.zero; Time.of_sec 1; Time.of_sec 10 ]

let test_oracle_perfect () =
  let clocks = Clocksync.Oracle.perfect ~n:3 in
  check Alcotest.int "identity" (Time.of_sec 5)
    (clocks.(1).Engine.reading ~real:(Time.of_sec 5))

let () =
  Alcotest.run "clocksync"
    [
      ( "reading",
        [
          Alcotest.test_case "round trip" `Quick test_reading_round_trip;
          Alcotest.test_case "invalid" `Quick test_reading_invalid;
          Alcotest.test_case "error growth" `Quick test_reading_error_growth;
          qcheck prop_reading_bounds_true_offset;
        ] );
      ( "sync clock",
        [
          Alcotest.test_case "reference p0" `Quick test_sync_clock_reference_is_p0;
          Alcotest.test_case "self reference" `Quick test_sync_clock_self_is_reference;
          Alcotest.test_case "synchronizes" `Quick test_sync_clock_becomes_synchronized;
          Alcotest.test_case "fail-aware staleness" `Quick
            test_sync_clock_fail_awareness_on_staleness;
          Alcotest.test_case "rejects big error" `Quick test_sync_clock_rejects_big_error;
          Alcotest.test_case "keeps best reading" `Quick test_sync_clock_keeps_better_reading;
          Alcotest.test_case "local_of_sync" `Quick test_sync_clock_local_of_sync;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "all synchronize" `Quick test_protocol_all_synchronize;
          Alcotest.test_case "deviation bounded" `Quick test_protocol_deviation_bounded;
          Alcotest.test_case "rejects late replies" `Quick
            test_protocol_rejects_late_replies;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "deviation" `Quick test_oracle_deviation;
          Alcotest.test_case "perfect" `Quick test_oracle_perfect;
        ] );
    ]
