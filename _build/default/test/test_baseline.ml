(* Tests for the heartbeat/coordinator baseline membership protocol. *)

open Tasim

let check = Alcotest.check
let pid = Proc_id.of_int

let build ?(seed = 1) ?(cfg_of = Baseline.Heartbeat.default_config) ~n () =
  let cfg = cfg_of ~n in
  let engine = Engine.create { Engine.default_config with Engine.seed } ~n in
  Engine.classify engine Baseline.Heartbeat.kind_of_msg;
  let views = ref [] in
  let suspicions = ref [] in
  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Baseline.Heartbeat.View_installed { view_id; group } ->
        views := (at, proc, view_id, group) :: !views
      | Baseline.Heartbeat.Suspected { suspect } ->
        suspicions := (at, proc, suspect) :: !suspicions);
  let automaton = Baseline.Heartbeat.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  (engine, views, suspicions)

let test_initial_view_forms () =
  let engine, views, _ = build ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 1);
  (* every process installs a full view *)
  let full =
    List.filter
      (fun (_, _, _, g) -> Proc_set.cardinal g = 5)
      !views
  in
  check Alcotest.bool "all installed full view" true (List.length full >= 5)

let test_crash_detected_and_excluded () =
  let engine, views, suspicions = build ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 1);
  Engine.crash_at engine (Time.of_sec 1) (pid 2);
  Engine.run engine ~until:(Time.of_sec 3);
  check Alcotest.bool "suspected" true
    (List.exists (fun (_, _, s) -> Proc_id.equal s (pid 2)) !suspicions);
  (* latest views everywhere exclude the victim *)
  let latest_by_proc = Hashtbl.create 8 in
  List.iter
    (fun (at, proc, view_id, g) ->
      match Hashtbl.find_opt latest_by_proc proc with
      | Some (_, id, _) when id >= view_id -> ()
      | _ -> Hashtbl.replace latest_by_proc proc (at, view_id, g))
    !views;
  Hashtbl.iter
    (fun proc (_, _, g) ->
      if not (Proc_id.equal proc (pid 2)) then
        check Alcotest.bool "excluded" false (Proc_set.mem (pid 2) g))
    latest_by_proc

let test_coordinator_failover () =
  (* crash the coordinator (p0): p1 must take over and run the change *)
  let engine, views, _ = build ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 1);
  Engine.crash_at engine (Time.of_sec 1) (pid 0);
  Engine.run engine ~until:(Time.of_sec 4);
  let newest =
    List.fold_left
      (fun acc (_, _, view_id, g) ->
        match acc with
        | Some (id, _) when id >= view_id -> acc
        | _ -> Some (view_id, g))
      None !views
  in
  match newest with
  | Some (_, g) ->
    check Alcotest.bool "view without p0" false (Proc_set.mem (pid 0) g)
  | None -> Alcotest.fail "no view at all"

let test_heartbeat_message_rate () =
  (* failure-free: about n broadcasts = n*(n-1) datagrams per period *)
  let engine, _, _ = build ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 1);
  let before = Stats.count (Engine.stats engine) "sent:heartbeat" in
  Engine.run engine ~until:(Time.of_sec 2);
  let per_second =
    Stats.count (Engine.stats engine) "sent:heartbeat" - before
  in
  (* period 30ms -> 33.3 rounds -> ~666 datagrams/s *)
  check Alcotest.bool "rate in expected band" true
    (per_second > 500 && per_second < 800)

(* ------------------------------------------------------------------ *)
(* token ring (Totem-style) *)

let build_ring ?(seed = 1) ~n () =
  let cfg = Baseline.Token_ring.default_config ~n in
  let engine = Engine.create { Engine.default_config with Engine.seed } ~n in
  Engine.classify engine Baseline.Token_ring.kind_of_msg;
  let rings = ref [] in
  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Baseline.Token_ring.Ring_installed { ring_id; members } ->
        rings := (at, proc, ring_id, members) :: !rings
      | Baseline.Token_ring.Token_lost -> ());
  let automaton = Baseline.Token_ring.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  (engine, rings)

let current_rings engine ~n =
  List.filter_map
    (fun p ->
      match Engine.state_of engine p with
      | Some s -> Baseline.Token_ring.ring_of s
      | None -> None)
    (Proc_id.all ~n)

let test_ring_forms () =
  let engine, _ = build_ring ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 2);
  let rings = current_rings engine ~n:5 in
  check Alcotest.int "all operational" 5 (List.length rings);
  List.iter
    (fun (_, members) ->
      check Alcotest.int "full ring" 5 (Proc_set.cardinal members))
    rings

let test_ring_token_circulates () =
  let engine, _ = build_ring ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 2);
  let tokens = Stats.count (Engine.stats engine) "sent:token" in
  (* one unicast per hold (10ms): ~100/s once formed *)
  check Alcotest.bool "token keeps moving" true (tokens > 50)

let test_ring_crash_reforms () =
  let engine, _ = build_ring ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 1);
  Engine.crash_at engine (Time.of_sec 1) (pid 2);
  Engine.run engine ~until:(Time.of_sec 4);
  let rings = current_rings engine ~n:5 in
  check Alcotest.int "four operational" 4 (List.length rings);
  List.iter
    (fun (_, members) ->
      check Alcotest.bool "victim excluded" false (Proc_set.mem (pid 2) members);
      check Alcotest.int "ring of four" 4 (Proc_set.cardinal members))
    rings

let test_ring_merge_after_recovery () =
  let engine, _ = build_ring ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 1);
  Engine.crash_at engine (Time.of_sec 1) (pid 2);
  Engine.recover_at engine (Time.of_sec 3) (pid 2);
  Engine.run engine ~until:(Time.of_sec 8);
  let rings = current_rings engine ~n:5 in
  check Alcotest.int "all operational" 5 (List.length rings);
  List.iter
    (fun (_, members) ->
      check Alcotest.int "full ring again" 5 (Proc_set.cardinal members))
    rings

let test_ring_survives_loss () =
  (* the gather protocol re-forms the ring whenever the token is lost to
     omission; with 2% loss the ring keeps recovering *)
  let cfg = Baseline.Token_ring.default_config ~n:5 in
  let net = { Net.default_config with Net.omission_prob = 0.02 } in
  let engine = Engine.create { Engine.default_config with Engine.net; seed = 9 } ~n:5 in
  Engine.classify engine Baseline.Token_ring.kind_of_msg;
  let automaton = Baseline.Token_ring.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n:5);
  Engine.run engine ~until:(Time.of_sec 10);
  let operational =
    List.filter
      (fun p ->
        match Engine.state_of engine p with
        | Some s -> Baseline.Token_ring.is_operational s
        | None -> false)
      (Proc_id.all ~n:5)
  in
  check Alcotest.bool "most of the ring operational" true
    (List.length operational >= 3)

let test_ring_ids_agree () =
  let engine, rings = build_ring ~n:5 () in
  Engine.run engine ~until:(Time.of_sec 1);
  Engine.crash_at engine (Time.of_sec 1) (pid 4);
  Engine.run engine ~until:(Time.of_sec 4);
  (* every install of a given ring id names the same member set *)
  let by_id = Hashtbl.create 8 in
  List.iter
    (fun (_, _, ring_id, members) ->
      match Hashtbl.find_opt by_id ring_id with
      | None -> Hashtbl.add by_id ring_id members
      | Some m ->
        check Alcotest.bool "consistent ring per id" true
          (Proc_set.equal m members))
    !rings

let () =
  Alcotest.run "baseline"
    [
      ( "heartbeat",
        [
          Alcotest.test_case "initial view" `Quick test_initial_view_forms;
          Alcotest.test_case "crash excluded" `Quick test_crash_detected_and_excluded;
          Alcotest.test_case "coordinator failover" `Quick test_coordinator_failover;
          Alcotest.test_case "message rate" `Quick test_heartbeat_message_rate;
        ] );
      ( "token ring",
        [
          Alcotest.test_case "forms" `Quick test_ring_forms;
          Alcotest.test_case "token circulates" `Quick test_ring_token_circulates;
          Alcotest.test_case "crash reforms" `Quick test_ring_crash_reforms;
          Alcotest.test_case "merge after recovery" `Quick
            test_ring_merge_after_recovery;
          Alcotest.test_case "ring ids agree" `Quick test_ring_ids_agree;
          Alcotest.test_case "survives loss" `Quick test_ring_survives_loss;
        ] );
    ]
