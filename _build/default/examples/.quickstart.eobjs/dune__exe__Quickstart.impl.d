examples/quickstart.ml: Broadcast Fmt List Params Proc_id Proc_set Proposal Semantics Service Tasim Time Timewheel
