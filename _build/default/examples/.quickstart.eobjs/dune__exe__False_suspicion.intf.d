examples/false_suspicion.mli:
