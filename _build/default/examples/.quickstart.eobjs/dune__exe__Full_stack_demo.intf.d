examples/full_stack_demo.mli:
