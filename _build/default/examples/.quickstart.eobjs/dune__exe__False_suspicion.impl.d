examples/false_suspicion.ml: Broadcast Control_msg Creator_state Engine Fmt List Member Net Params Proc_id Proc_set Semantics Service Tasim Time Timewheel
