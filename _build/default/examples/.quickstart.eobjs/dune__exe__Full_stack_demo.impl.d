examples/full_stack_demo.ml: Array Broadcast Clocksync Engine Fmt Full_stack Hardware_clock List Member Params Proc_id Proc_set Rng Semantics Stats Tasim Time Timewheel
