examples/replicated_kv.ml: Array Broadcast Engine Fmt Int List Map Member Option Params Proc_id Proc_set Semantics Service String Tasim Time Timewheel
