examples/partition_heal.ml: Broadcast Creator_state Fmt List Member Params Proc_id Proc_set Semantics Service Tasim Time Timewheel
