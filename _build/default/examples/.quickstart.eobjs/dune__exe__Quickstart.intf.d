examples/quickstart.mli:
