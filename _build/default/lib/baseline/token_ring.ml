open Tasim

type config = {
  n : int;
  hold : Time.t;
  token_timeout_factor : int;
  gather_period : Time.t;
}

let default_config ~n =
  {
    n;
    hold = Time.of_ms 10;
    token_timeout_factor = 2;
    gather_period = Time.of_ms 40;
  }

type msg =
  | Token of { ring_id : int; seq : int; members : Proc_set.t }
  | Join_msg of { ring_id : int; set : Proc_set.t }

let kind_of_msg = function
  | Token _ -> "token"
  | Join_msg _ -> "tr-join"

type obs =
  | Ring_installed of { ring_id : int; members : Proc_set.t }
  | Token_lost

module Pmap = Map.Make (struct
  type t = Proc_id.t

  let compare = Proc_id.compare
end)

type mode =
  | Operational
  | Gathering of { sets : (Time.t * Proc_set.t) Pmap.t }

type state = {
  cfg : config;
  self : Proc_id.t;
  ring_id : int; (* highest ring id seen *)
  members : Proc_set.t; (* current ring, when operational *)
  mode : mode;
  holding : (int * Proc_set.t) option; (* token data while held *)
}

let timer_pass = 1
let timer_token_timeout = 2
let timer_gather = 3

let ring_of s =
  match s.mode with
  | Operational -> Some (s.ring_id, s.members)
  | Gathering _ -> None

let is_operational s =
  match s.mode with Operational -> true | Gathering _ -> false

let token_timeout s =
  Time.mul s.cfg.hold (s.cfg.n * s.cfg.token_timeout_factor)

(* Enter (or restart) the gather state: broadcast our current set and
   keep doing so periodically. *)
let enter_gather s ~clock ~initial =
  let sets = Pmap.empty in
  let s = { s with mode = Gathering { sets }; holding = None } in
  let effects =
    [
      Engine.Broadcast
        (Join_msg { ring_id = s.ring_id; set = Proc_set.singleton s.self });
      Engine.Set_timer
        { key = timer_gather; at_clock = Time.add clock s.cfg.gather_period };
      Engine.Cancel_timer timer_pass;
      Engine.Cancel_timer timer_token_timeout;
    ]
  in
  if initial then (s, effects) else (s, Engine.Observe Token_lost :: effects)

let my_set s ~clock =
  match s.mode with
  | Operational -> Proc_set.singleton s.self
  | Gathering { sets } ->
    Pmap.fold
      (fun p (at, set) acc ->
        (* only recent reporters count towards the merged set *)
        if Time.compare (Time.sub clock at) (Time.mul s.cfg.gather_period 3) <= 0
        then Proc_set.union (Proc_set.add p acc) set
        else acc)
      sets
      (Proc_set.singleton s.self)

(* Consensus: every process in my merged set recently reported exactly
   that set. The lowest id installs the ring. *)
let try_install s ~clock =
  match s.mode with
  | Operational -> None
  | Gathering { sets } ->
    let merged = my_set s ~clock in
    let agrees p =
      Proc_id.equal p s.self
      ||
      match Pmap.find_opt p sets with
      | Some (at, set) ->
        Time.compare (Time.sub clock at) (Time.mul s.cfg.gather_period 3) <= 0
        && Proc_set.equal (Proc_set.add p set) merged
      | None -> false
    in
    if
      Proc_set.cardinal merged >= 1
      && Proc_set.for_all agrees merged
      && Proc_id.equal (List.hd (Proc_set.to_list merged)) s.self
      && Proc_set.cardinal merged > 1
    then Some merged
    else None

let install s ~clock merged =
  let ring_id = s.ring_id + 1 in
  let s = { s with ring_id; members = merged; mode = Operational } in
  let successor =
    match Proc_set.successor_in merged s.self ~n:s.cfg.n with
    | Some p -> p
    | None -> s.self
  in
  ( { s with holding = None },
    [
      Engine.Observe (Ring_installed { ring_id; members = merged });
      Engine.Send (successor, Token { ring_id; seq = 0; members = merged });
      Engine.Set_timer
        {
          key = timer_token_timeout;
          at_clock = Time.add clock (token_timeout s);
        };
      Engine.Cancel_timer timer_gather;
    ] )

let init cfg ~self ~n:_ ~clock ~incarnation:_ =
  let s =
    {
      cfg;
      self;
      ring_id = 0;
      members = Proc_set.singleton self;
      mode = Gathering { sets = Pmap.empty };
      holding = None;
    }
  in
  let s, effects = enter_gather s ~clock ~initial:true in
  (s, effects)

let on_token s ~clock ~ring_id ~seq ~members =
  if ring_id < s.ring_id then (s, [])
  else begin
    let changed =
      ring_id > s.ring_id || not (Proc_set.equal members s.members)
    in
    let was_gathering = not (is_operational s) in
    let s = { s with ring_id; members; mode = Operational } in
    let install_obs =
      if changed || was_gathering then
        [ Engine.Observe (Ring_installed { ring_id; members }) ]
      else []
    in
    (* hold the token briefly, then pass it on *)
    let s = { s with holding = Some (seq, members) } in
    ( s,
      install_obs
      @ [
          Engine.Set_timer
            { key = timer_pass; at_clock = Time.add clock s.cfg.hold };
          Engine.Set_timer
            {
              key = timer_token_timeout;
              at_clock = Time.add clock (token_timeout s);
            };
          Engine.Cancel_timer timer_gather;
        ] )
  end

let on_join s ~clock ~src ~ring_id:_ ~set =
  match s.mode with
  | Operational ->
    (* a foreign join message: somebody is outside our ring — fall back
       to gather so the rings merge (Totem's foreign-message rule) *)
    if Proc_set.mem src s.members then (s, [])
    else enter_gather s ~clock ~initial:false
  | Gathering { sets } ->
    let sets = Pmap.add src (clock, set) sets in
    let s = { s with mode = Gathering { sets } } in
    (match try_install s ~clock with
    | Some merged -> install s ~clock merged
    | None -> (s, []))

let on_timer s ~clock ~key =
  if key = timer_pass then begin
    match (s.mode, s.holding) with
    | Operational, Some (seq, members) ->
      let successor =
        match Proc_set.successor_in members s.self ~n:s.cfg.n with
        | Some p -> p
        | None -> s.self
      in
      let s = { s with holding = None } in
      if Proc_id.equal successor s.self then (s, [])
      else
        ( s,
          [
            Engine.Send
              ( successor,
                Token { ring_id = s.ring_id; seq = seq + 1; members } );
          ] )
    | _ -> (s, [])
  end
  else if key = timer_token_timeout then begin
    match s.mode with
    | Operational -> enter_gather s ~clock ~initial:false
    | Gathering _ -> (s, [])
  end
  else if key = timer_gather then begin
    match s.mode with
    | Operational -> (s, [])
    | Gathering _ ->
      let set = my_set s ~clock in
      let effects =
        [
          Engine.Broadcast (Join_msg { ring_id = s.ring_id; set });
          Engine.Set_timer
            {
              key = timer_gather;
              at_clock = Time.add clock s.cfg.gather_period;
            };
        ]
      in
      (match try_install s ~clock with
      | Some merged ->
        let s, install_effects = install s ~clock merged in
        (s, install_effects)
      | None -> (s, effects))
  end
  else (s, [])

let on_receive s ~clock ~src msg =
  match msg with
  | Token { ring_id; seq; members } -> on_token s ~clock ~ring_id ~seq ~members
  | Join_msg { ring_id; set } -> on_join s ~clock ~src ~ring_id ~set

let automaton cfg =
  {
    Engine.name = "token-ring-baseline";
    init = (fun ~self ~n ~clock ~incarnation -> init cfg ~self ~n ~clock ~incarnation);
    on_receive;
    on_timer;
  }
