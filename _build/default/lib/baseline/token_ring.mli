(** Baseline: single-ring token-passing membership (Totem-style).

    The paper's Section 4.1 credits its core idea to the membership
    protocols of Transis, Totem and Consul ([1], [2], [20, 21]). This
    module implements a simplified Totem single-ring membership so the
    experiments can compare the timewheel against its closest ancestor:

    - {e operational}: a token circulates on the logical ring (one
      unicast per hold period); receiving the token proves the ring is
      whole. A member that misses the token for a full timeout enters
      the gather state.
    - {e gather}: members broadcast join messages carrying their
      perceived membership sets and merge what they receive; when every
      process in a member's set reported exactly that set (consensus),
      the lowest-id member installs a new ring and launches a fresh
      token.
    - A recovered process starts in gather; an operational member that
      receives a foreign join message falls back to gather so rings
      merge.

    Cost shape versus the timewheel: the token is a {e unicast} per
    hold period (cheaper than broadcast decisions) but detection needs
    a full token circulation timeout, and every membership change stops
    the ring (no masked false suspicions, no distinction between one
    and many failures). *)

open Tasim

type config = {
  n : int;
  hold : Time.t;  (** token hold time at each member *)
  token_timeout_factor : int;
      (** token declared lost after factor * n * hold without it *)
  gather_period : Time.t;  (** join message cadence while gathering *)
}

val default_config : n:int -> config

type msg =
  | Token of { ring_id : int; seq : int; members : Proc_set.t }
  | Join_msg of { ring_id : int; set : Proc_set.t }

val kind_of_msg : msg -> string

type obs =
  | Ring_installed of { ring_id : int; members : Proc_set.t }
  | Token_lost

type state

val automaton : config -> (state, msg, obs) Engine.automaton
val ring_of : state -> (int * Proc_set.t) option
val is_operational : state -> bool
