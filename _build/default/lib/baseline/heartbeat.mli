(** Baseline: all-to-all heartbeat failure detection with a
    coordinator-driven membership view change.

    This is the conventional design the timewheel protocol implicitly
    competes with on failure-free overhead (paper, claim: "this protocol
    does not cause any extra messages to be exchanged during
    failure-free periods"). Every process broadcasts a heartbeat every
    [period]; a process is suspected after [timeout] without one. The
    lowest-id unsuspected process acts as coordinator: when its alive
    set changes it runs a two-phase view change (propose to all, commit
    once a majority acknowledged).

    The point of this module is the comparison in experiments E1/E2 —
    message counts per second of failure-free operation and detection
    latency — not feature parity: it provides views only, no ordered
    broadcast. *)

open Tasim

type config = {
  n : int;
  period : Time.t;  (** heartbeat interval *)
  timeout : Time.t;  (** suspicion timeout; typically 2-3 periods *)
}

val default_config : n:int -> config

type msg =
  | Heartbeat of { ts : Time.t }
  | Propose of { view_id : int; group : Proc_set.t }
  | Ack of { view_id : int }
  | Commit of { view_id : int; group : Proc_set.t }

val kind_of_msg : msg -> string

type obs =
  | View_installed of { view_id : int; group : Proc_set.t }
  | Suspected of { suspect : Proc_id.t }

type state

val automaton : config -> (state, msg, obs) Engine.automaton
val view_of : state -> (int * Proc_set.t) option
val alive_of : state -> clock:Time.t -> Proc_set.t
