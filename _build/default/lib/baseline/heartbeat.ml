open Tasim

type config = { n : int; period : Time.t; timeout : Time.t }

let default_config ~n =
  { n; period = Time.of_ms 30; timeout = Time.of_ms 90 }

type msg =
  | Heartbeat of { ts : Time.t }
  | Propose of { view_id : int; group : Proc_set.t }
  | Ack of { view_id : int }
  | Commit of { view_id : int; group : Proc_set.t }

let kind_of_msg = function
  | Heartbeat _ -> "heartbeat"
  | Propose _ -> "propose"
  | Ack _ -> "ack"
  | Commit _ -> "commit"

type obs =
  | View_installed of { view_id : int; group : Proc_set.t }
  | Suspected of { suspect : Proc_id.t }

module Pmap = Map.Make (struct
  type t = Proc_id.t

  let compare = Proc_id.compare
end)

type state = {
  cfg : config;
  self : Proc_id.t;
  last_beat : Time.t Pmap.t;
  suspected : Proc_set.t;
  view : (int * Proc_set.t) option;
  proposed : (int * Proc_set.t) option; (* as coordinator *)
  acks : Proc_set.t;
  next_view_id : int;
}

let timer_beat = 1
let timer_check = 2

let view_of s = s.view

let alive_of s ~clock =
  Pmap.fold
    (fun p ts acc ->
      if
        Time.compare (Time.sub clock ts) s.cfg.timeout <= 0
        && not (Proc_set.mem p s.suspected)
      then Proc_set.add p acc
      else acc)
    s.last_beat
    (Proc_set.singleton s.self)

let coordinator s ~clock =
  List.hd (Proc_set.to_list (alive_of s ~clock))

let init cfg ~self ~n:_ ~clock ~incarnation:_ =
  let s =
    {
      cfg;
      self;
      last_beat = Pmap.empty;
      suspected = Proc_set.empty;
      view = None;
      proposed = None;
      acks = Proc_set.empty;
      next_view_id = 1;
    }
  in
  ( s,
    [
      Engine.Broadcast (Heartbeat { ts = clock });
      Engine.Set_timer { key = timer_beat; at_clock = Time.add clock cfg.period };
      Engine.Set_timer
        { key = timer_check; at_clock = Time.add clock cfg.timeout };
    ] )

(* As coordinator, run a view change whenever the alive set differs from
   the committed view. *)
let maybe_propose s ~clock =
  let alive = alive_of s ~clock in
  let am_coordinator = Proc_id.equal (coordinator s ~clock) s.self in
  let current = match s.view with Some (_, g) -> g | None -> Proc_set.empty in
  let in_flight =
    match s.proposed with
    | Some (_, g) -> Proc_set.equal g alive
    | None -> false
  in
  if
    am_coordinator
    && (not (Proc_set.equal alive current))
    && (not in_flight)
    && Proc_set.is_majority alive ~n:s.cfg.n
  then begin
    let view_id = s.next_view_id in
    let s =
      {
        s with
        proposed = Some (view_id, alive);
        acks = Proc_set.singleton s.self;
        next_view_id = view_id + 1;
      }
    in
    (s, [ Engine.Broadcast (Propose { view_id; group = alive }) ])
  end
  else (s, [])

let check_suspicions s ~clock =
  let alive = alive_of s ~clock in
  let known =
    Pmap.fold (fun p _ acc -> Proc_set.add p acc) s.last_beat Proc_set.empty
  in
  let newly =
    Proc_set.filter
      (fun p -> not (Proc_set.mem p s.suspected))
      (Proc_set.diff known alive)
  in
  let effects =
    List.map
      (fun p -> Engine.Observe (Suspected { suspect = p }))
      (Proc_set.to_list newly)
  in
  let s = { s with suspected = Proc_set.union s.suspected newly } in
  (s, effects)

let on_timer s ~clock ~key =
  if key = timer_beat then
    ( s,
      [
        Engine.Broadcast (Heartbeat { ts = clock });
        Engine.Set_timer
          { key = timer_beat; at_clock = Time.add clock s.cfg.period };
      ] )
  else if key = timer_check then begin
    let s, suspect_effects = check_suspicions s ~clock in
    let s, propose_effects = maybe_propose s ~clock in
    ( s,
      suspect_effects @ propose_effects
      @ [
          Engine.Set_timer
            {
              key = timer_check;
              at_clock = Time.add clock (Time.div s.cfg.timeout 2);
            };
        ] )
  end
  else (s, [])

let on_receive s ~clock ~src msg =
  match msg with
  | Heartbeat { ts = _ } ->
    let s =
      {
        s with
        last_beat = Pmap.add src clock s.last_beat;
        suspected = Proc_set.remove src s.suspected;
      }
    in
    (s, [])
  | Propose { view_id; group } ->
    if Proc_set.mem s.self group then
      (s, [ Engine.Send (src, Ack { view_id }) ])
    else (s, [])
  | Ack { view_id } -> (
    match s.proposed with
    | Some (id, group) when id = view_id ->
      let acks = Proc_set.add src s.acks in
      let s = { s with acks } in
      if Proc_set.is_majority acks ~n:s.cfg.n then begin
        let s = { s with proposed = None; view = Some (view_id, group) } in
        ( s,
          [
            Engine.Broadcast (Commit { view_id; group });
            Engine.Observe (View_installed { view_id; group });
          ] )
      end
      else (s, [])
    | Some _ | None -> (s, []))
  | Commit { view_id; group } -> (
    match s.view with
    | Some (id, _) when id >= view_id -> (s, [])
    | Some _ | None ->
      if Proc_set.mem s.self group then
        ( { s with view = Some (view_id, group) },
          [ Engine.Observe (View_installed { view_id; group }) ] )
      else (s, []))

let automaton cfg =
  {
    Engine.name = "heartbeat-baseline";
    init = (fun ~self ~n ~clock ~incarnation -> init cfg ~self ~n ~clock ~incarnation);
    on_receive;
    on_timer;
  }
