lib/baseline/token_ring.mli: Engine Proc_set Tasim Time
