lib/baseline/heartbeat.mli: Engine Proc_id Proc_set Tasim Time
