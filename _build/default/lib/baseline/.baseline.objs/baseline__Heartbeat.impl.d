lib/baseline/heartbeat.ml: Engine List Map Proc_id Proc_set Tasim Time
