lib/baseline/token_ring.ml: Engine List Map Proc_id Proc_set Tasim Time
