(** Imperative binary min-heap keyed by [(Time.t, sequence number)].

    The event queue of the simulation engine sits on this heap. Ties on
    time are broken by insertion order (the sequence number), which
    makes simultaneous events fire FIFO and keeps runs deterministic. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:Time.t -> 'a -> unit
(** Insert an element with the given priority time. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the minimum element, FIFO among equal times. *)

val peek_time : 'a t -> Time.t option
(** Priority of the minimum element without removing it. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit

val drain : 'a t -> (Time.t * 'a) list
(** Pop everything, in order. *)
