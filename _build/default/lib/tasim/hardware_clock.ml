type t = { offset : Time.t; drift : float }

let create ~offset ~drift = { offset; drift }

let random rng ~max_offset ~max_drift =
  let offset = Rng.uniform_time rng Time.zero max_offset in
  let drift = (Rng.float rng *. 2.0 -. 1.0) *. max_drift in
  { offset; drift }

let reading t ~real = Time.add t.offset (Time.scale real (1.0 +. t.drift))

let real_of_reading t ~clock =
  Time.scale (Time.sub clock t.offset) (1.0 /. (1.0 +. t.drift))

let drift t = t.drift
let offset t = t.offset
let pp ppf t = Fmt.pf ppf "clock(offset=%a drift=%.2e)" Time.pp t.offset t.drift
