(** Event trace recording.

    An optional recorder the engine writes message-level events into:
    sends, drops (with reason), deliveries, crashes and recoveries.
    Tests assert over it ("no no-decision message was sent in this
    window"), and the CLI renders it as a timeline. Message payloads
    are recorded as their classifier kind (see [Engine.classify]), so
    the trace is monomorphic and cheap. *)

type event =
  | Sent of { src : Proc_id.t; dst : Proc_id.t; kind : string }
  | Dropped of {
      src : Proc_id.t;
      dst : Proc_id.t;
      kind : string;
      reason : string;
    }
  | Delivered of { src : Proc_id.t; dst : Proc_id.t; kind : string }
  | Crashed of Proc_id.t
  | Recovered of Proc_id.t

type entry = { at : Time.t; event : event }

type t

val create : ?capacity:int -> unit -> t
(** A bounded recorder (default 100_000 entries); past capacity the
    oldest entries are discarded. *)

val record : t -> Time.t -> event -> unit
val length : t -> int
val dropped_entries : t -> int
(** Entries discarded because the capacity was reached. *)

val entries : t -> entry list
(** Oldest first. *)

val between : t -> from:Time.t -> until:Time.t -> entry list

val count :
  ?kind:string -> ?src:Proc_id.t -> ?dst:Proc_id.t -> t -> int
(** Number of [Sent] entries matching the given filters. *)

val clear : t -> unit
val pp_entry : entry Fmt.t
val pp_timeline : t Fmt.t
(** Renders every entry, one per line, oldest first. *)
