(** Process identifiers.

    Team members are identified by small integers [0 .. n-1]. The team
    is cyclically ordered by identifier (paper, Section 2), so ring
    successor/predecessor arithmetic lives here. *)

type t = private int

val of_int : int -> t
(** Raises [Invalid_argument] on negative input. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val successor : t -> n:int -> t
(** Next process in the cyclic order of an [n]-process team. *)

val predecessor : t -> n:int -> t

val ring_distance : from:t -> to_:t -> n:int -> int
(** Hops from [from] to [to_] following successors; 0 when equal. *)

val all : n:int -> t list
(** [\[0; ...; n-1\]] as process ids. *)

val pp : t Fmt.t
(** Prints as ["p3"]. *)
