lib/tasim/trace.mli: Fmt Proc_id Time
