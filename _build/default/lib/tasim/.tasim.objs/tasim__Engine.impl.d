lib/tasim/engine.ml: Array Fmt Hardware_clock Hashtbl Heap List Logs Net Proc_id Rng Stats Time Trace
