lib/tasim/heap.mli: Time
