lib/tasim/rng.ml: Array Int64 Time
