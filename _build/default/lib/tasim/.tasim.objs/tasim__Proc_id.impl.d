lib/tasim/proc_id.ml: Fmt Int List
