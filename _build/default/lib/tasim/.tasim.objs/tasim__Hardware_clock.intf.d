lib/tasim/hardware_clock.mli: Fmt Rng Time
