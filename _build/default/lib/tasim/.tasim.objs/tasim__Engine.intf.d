lib/tasim/engine.mli: Hardware_clock Net Proc_id Proc_set Rng Stats Time Trace
