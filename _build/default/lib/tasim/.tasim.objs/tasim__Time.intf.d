lib/tasim/time.mli: Fmt
