lib/tasim/time.ml: Fmt Int Stdlib
