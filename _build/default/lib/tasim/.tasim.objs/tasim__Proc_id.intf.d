lib/tasim/proc_id.mli: Fmt
