lib/tasim/net.ml: List Proc_id Proc_set Rng Time
