lib/tasim/net.mli: Proc_id Proc_set Rng Time
