lib/tasim/heap.ml: Array List Time
