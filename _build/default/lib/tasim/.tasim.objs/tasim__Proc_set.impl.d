lib/tasim/proc_set.ml: Fmt Proc_id Set
