lib/tasim/stats.mli: Fmt Time
