lib/tasim/trace.ml: Fmt List Proc_id Queue String Time
