lib/tasim/proc_set.mli: Fmt Proc_id
