lib/tasim/stats.ml: Array Float Fmt Hashtbl List Stdlib String Time
