lib/tasim/rng.mli: Time
