lib/tasim/hardware_clock.ml: Fmt Rng Time
