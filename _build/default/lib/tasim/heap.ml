type 'a entry = { time : Time.t; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = Array.make 64 None; len = 0; next_seq = 0 }

let entry_lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.arr.(i) with
  | Some e -> e
  | None -> assert false

let grow t =
  let arr = Array.make (2 * Array.length t.arr) None in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt (get t i) (get t parent) then begin
      let tmp = t.arr.(i) in
      t.arr.(i) <- t.arr.(parent);
      t.arr.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && entry_lt (get t l) (get t !smallest) then smallest := l;
  if r < t.len && entry_lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.arr.(i) in
    t.arr.(i) <- t.arr.(!smallest);
    t.arr.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time value =
  if t.len = Array.length t.arr then grow t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.arr.(t.len) <- Some { time; seq; value };
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    t.len <- t.len - 1;
    t.arr.(0) <- t.arr.(t.len);
    t.arr.(t.len) <- None;
    if t.len > 0 then sift_down t 0;
    Some (top.time, top.value)
  end

let peek_time t = if t.len = 0 then None else Some (get t 0).time
let size t = t.len
let is_empty t = t.len = 0

let clear t =
  Array.fill t.arr 0 t.len None;
  t.len <- 0

let drain t =
  let rec loop acc =
    match pop t with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []
