type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = int64 t }
let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's boxed-free int *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  raw mod bound

let float t =
  (* 53 high bits -> [0,1) *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t p = float t < p

let uniform_time t lo hi =
  if hi <= lo then lo else Time.add lo (int t (Time.sub hi lo + 1))

let exponential t ~mean =
  let u = float t in
  (* avoid log 0 *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
