type t = int

let of_int i =
  if i < 0 then invalid_arg "Proc_id.of_int: negative id";
  i

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let hash t = t
let successor t ~n = (t + 1) mod n
let predecessor t ~n = (t + n - 1) mod n
let ring_distance ~from ~to_ ~n = ((to_ - from) mod n + n) mod n
let all ~n = List.init n (fun i -> i)
let pp ppf t = Fmt.pf ppf "p%d" t
