(** Simulated time.

    All times in the simulator are integers counting microseconds. Using
    integers (rather than floats) keeps every run bit-for-bit
    deterministic and makes ordering of simultaneous events well
    defined. The same representation serves real time, hardware-clock
    time and synchronized-clock time; the three are never mixed except
    through explicit clock translation functions. *)

type t = int
(** A time instant or a time span, in microseconds. *)

val zero : t
val infinity : t
(** A time greater than any time ever scheduled ([max_int]). *)

val of_us : int -> t
val of_ms : int -> t
val of_sec : int -> t
val of_sec_f : float -> t

val to_us : t -> int
val to_ms_f : t -> float
val to_sec_f : t -> float

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t
val div : t -> int -> t

val min : t -> t -> t
val max : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool

val scale : t -> float -> t
(** [scale t f] is [t] multiplied by float factor [f], rounded to the
    nearest microsecond. Used for clock-drift translation. *)

val pp : t Fmt.t
(** Prints a human-readable form, e.g. ["1.250ms"] or ["2.000s"]. *)

val to_string : t -> string
