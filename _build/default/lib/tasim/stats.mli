(** Measurement utilities: named counters and sample series.

    Experiments count messages by kind and collect latency samples;
    this module provides both, plus summary statistics (mean, median,
    percentiles) used by the table printers in the harness. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
val incr_by : t -> string -> int -> unit
val count : t -> string -> int
(** 0 when the counter was never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Sample series} *)

val record : t -> string -> float -> unit
val record_time : t -> string -> Time.t -> unit
(** Records the span in microseconds. *)

val samples : t -> string -> float array
(** Samples in insertion order; empty when none recorded. *)

val series_names : t -> string list

(** {1 Summaries} *)

type summary = {
  n : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  stddev : float;
}

val summarize : float array -> summary option
(** [None] on an empty array. *)

val summary_of : t -> string -> summary option
val pp_summary : summary Fmt.t

val merge : t -> t -> unit
(** [merge dst src] folds [src]'s counters and samples into [dst]. *)
