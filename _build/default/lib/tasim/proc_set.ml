module S = Set.Make (struct
  type t = Proc_id.t

  let compare = Proc_id.compare
end)

type t = S.t

let empty = S.empty
let singleton = S.singleton
let of_list = S.of_list
let to_list = S.elements
let add = S.add
let remove = S.remove
let mem = S.mem
let cardinal = S.cardinal
let is_empty = S.is_empty
let union = S.union
let inter = S.inter
let diff = S.diff
let subset = S.subset
let equal = S.equal
let compare = S.compare
let for_all = S.for_all
let exists = S.exists
let filter = S.filter
let iter = S.iter
let fold = S.fold
let full ~n = of_list (Proc_id.all ~n)
let is_majority t ~n = cardinal t > n / 2

let successor_in t p ~n =
  let rec probe candidate remaining =
    if remaining = 0 then None
    else if mem candidate t then Some candidate
    else probe (Proc_id.successor candidate ~n) (remaining - 1)
  in
  probe (Proc_id.successor p ~n) (n - 1)

let predecessor_in t p ~n =
  let rec probe candidate remaining =
    if remaining = 0 then None
    else if mem candidate t then Some candidate
    else probe (Proc_id.predecessor candidate ~n) (remaining - 1)
  in
  probe (Proc_id.predecessor p ~n) (n - 1)

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:sp Proc_id.pp) (to_list t)
