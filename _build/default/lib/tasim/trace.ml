type event =
  | Sent of { src : Proc_id.t; dst : Proc_id.t; kind : string }
  | Dropped of {
      src : Proc_id.t;
      dst : Proc_id.t;
      kind : string;
      reason : string;
    }
  | Delivered of { src : Proc_id.t; dst : Proc_id.t; kind : string }
  | Crashed of Proc_id.t
  | Recovered of Proc_id.t

type entry = { at : Time.t; event : event }

type t = {
  capacity : int;
  buf : entry Queue.t;
  mutable discarded : int;
}

let create ?(capacity = 100_000) () =
  { capacity; buf = Queue.create (); discarded = 0 }

let record t at event =
  if Queue.length t.buf >= t.capacity then begin
    ignore (Queue.pop t.buf);
    t.discarded <- t.discarded + 1
  end;
  Queue.add { at; event } t.buf

let length t = Queue.length t.buf
let dropped_entries t = t.discarded
let entries t = List.of_seq (Queue.to_seq t.buf)

let between t ~from ~until =
  List.filter
    (fun e -> Time.compare e.at from >= 0 && Time.compare e.at until <= 0)
    (entries t)

let count ?kind ?src ?dst t =
  let matches e =
    match e.event with
    | Sent s ->
      (match kind with None -> true | Some k -> String.equal k s.kind)
      && (match src with None -> true | Some p -> Proc_id.equal p s.src)
      && (match dst with None -> true | Some p -> Proc_id.equal p s.dst)
    | Dropped _ | Delivered _ | Crashed _ | Recovered _ -> false
  in
  List.length (List.filter matches (entries t))

let clear t =
  Queue.clear t.buf;
  t.discarded <- 0

let pp_event ppf = function
  | Sent { src; dst; kind } ->
    Fmt.pf ppf "%a -> %a  %s" Proc_id.pp src Proc_id.pp dst kind
  | Dropped { src; dst; kind; reason } ->
    Fmt.pf ppf "%a -x %a  %s (%s)" Proc_id.pp src Proc_id.pp dst kind reason
  | Delivered { src; dst; kind } ->
    Fmt.pf ppf "%a => %a  %s" Proc_id.pp src Proc_id.pp dst kind
  | Crashed p -> Fmt.pf ppf "%a CRASH" Proc_id.pp p
  | Recovered p -> Fmt.pf ppf "%a RECOVER" Proc_id.pp p

let pp_entry ppf e = Fmt.pf ppf "[%a] %a" Time.pp e.at pp_event e.event

let pp_timeline ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (entries t)
