(** Per-process hardware clocks.

    The timed asynchronous model (paper, Section 2) gives each process a
    local hardware clock whose drift rate is bounded by a constant rho
    (order 1e-4 .. 1e-6 for quartz clocks) and whose offset from real
    time is arbitrary — hardware clocks are not synchronized. A clock
    has crash failure semantics: it never reads wrongly, it can only
    stop with its process.

    A clock is an affine map from real time to clock time:
    [reading = offset + (1 + drift) * real]. *)

type t

val create : offset:Time.t -> drift:float -> t
(** [drift] is the signed relative rate error, e.g. [3e-6]. *)

val random : Rng.t -> max_offset:Time.t -> max_drift:float -> t
(** A clock with offset uniform in [\[0, max_offset\]] and drift uniform
    in [\[-max_drift, +max_drift\]]. *)

val reading : t -> real:Time.t -> Time.t
(** Clock reading at the given real time. Monotone in [real]. *)

val real_of_reading : t -> clock:Time.t -> Time.t
(** Inverse of [reading]: the real time at which the clock shows
    [clock]. Used by the engine to arm timers expressed in local clock
    time. [real_of_reading t (reading t ~real)] is within 1 us of
    [real]. *)

val drift : t -> float
val offset : t -> Time.t
val pp : t Fmt.t
