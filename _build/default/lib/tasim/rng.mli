(** Deterministic, splittable pseudo-random number generator.

    The simulator never touches [Stdlib.Random]: every source of
    randomness is an explicit [Rng.t] seeded by the experiment, so runs
    are reproducible and independent concerns (network delays, clock
    drift, scheduling jitter, workload) draw from split streams that do
    not perturb each other when one concern consumes more numbers.

    The generator is SplitMix64 (Steele, Lea & Flood 2014), which is
    fast, has a 64-bit state, and supports cheap splitting. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator stream. *)

val split : t -> t
(** [split t] derives an independent stream from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future draws). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val uniform_time : t -> Time.t -> Time.t -> Time.t
(** [uniform_time t lo hi] is uniform in [\[lo, hi\]]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniformly chosen element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
