type t = int

let zero = 0
let infinity = max_int
let of_us us = us
let of_ms ms = ms * 1_000
let of_sec s = s * 1_000_000
let of_sec_f s = int_of_float (s *. 1e6 +. 0.5)
let to_us t = t
let to_ms_f t = float_of_int t /. 1e3
let to_sec_f t = float_of_int t /. 1e6
let add = ( + )
let sub = ( - )
let mul t k = t * k
let div t k = t / k
let min = Stdlib.min
let max = Stdlib.max
let compare = Int.compare
let equal = Int.equal

let scale t f =
  let x = float_of_int t *. f in
  if x >= 0.0 then int_of_float (x +. 0.5) else int_of_float (x -. 0.5)

let pp ppf t =
  if t = infinity then Fmt.string ppf "inf"
  else if abs t >= 1_000_000 then Fmt.pf ppf "%.3fs" (to_sec_f t)
  else if abs t >= 1_000 then Fmt.pf ppf "%.3fms" (to_ms_f t)
  else Fmt.pf ppf "%dus" t

let to_string t = Fmt.str "%a" pp t
