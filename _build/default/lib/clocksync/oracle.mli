(** Oracle synchronized clocks.

    When an experiment studies the membership protocol in isolation it
    should not entangle the measurement with the clock-synchronization
    substrate; the paper does the same by {e assuming} the service of
    [15]. The oracle hands every process a clock source that satisfies
    exactly the assumed interface — pairwise deviation at most epsilon,
    small bounded drift — without exchanging any messages.

    DESIGN.md documents this substitution; experiment E7 validates the
    real {!Protocol} against the same interface. *)

open Tasim

val clocks :
  Rng.t -> n:int -> epsilon:Time.t -> max_drift:float -> Engine.clock_source array
(** [clocks rng ~n ~epsilon ~max_drift] returns one clock source per
    process: clock [i] reads [real + off_i] scaled by an individual
    drift in [\[-max_drift, +max_drift\]], with all offsets within
    [epsilon / 2] of zero, so any two clocks deviate by at most
    [epsilon] (plus the negligible drift accumulation). *)

val perfect : n:int -> Engine.clock_source array
(** All clocks equal to real time; for deterministic unit tests. *)
