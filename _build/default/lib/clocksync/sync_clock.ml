open Tasim

type params = {
  epsilon : Time.t;
  drift_bound : float;
  validity : Time.t;
  n : int;
}

module Pmap = Map.Make (struct
  type t = Proc_id.t

  let compare = Proc_id.compare
end)

type t = { params : params; self : Proc_id.t; readings : Reading.t Pmap.t }

let create params ~self = { params; self; readings = Pmap.empty }
let params t = t.params

let note_reading t ~of_ reading =
  if Proc_id.equal of_ t.self then t
  else
    let better =
      match Pmap.find_opt of_ t.readings with
      | None -> true
      | Some old ->
        (* compare at the new reading's time: fresher usually wins *)
        let now_local = reading.Reading.read_at in
        let drift_bound = t.params.drift_bound in
        Time.compare
          (Reading.error_at reading ~now_local ~drift_bound)
          (Reading.error_at old ~now_local ~drift_bound)
        <= 0
    in
    if better then { t with readings = Pmap.add of_ reading t.readings }
    else t

let is_valid t ~now_local reading =
  let age = Time.sub now_local reading.Reading.read_at in
  Time.compare age t.params.validity <= 0

let drop_stale t ~now_local =
  {
    t with
    readings = Pmap.filter (fun _ r -> is_valid t ~now_local r) t.readings;
  }

type status = {
  synchronized : bool;
  reference : Proc_id.t;
  bound : Time.t;
  readable : Proc_set.t;
}

let readable_set t ~now_local =
  Pmap.fold
    (fun p r acc -> if is_valid t ~now_local r then Proc_set.add p acc else acc)
    t.readings
    (Proc_set.singleton t.self)

let reference_of _readable = Proc_id.of_int 0

let bound_to t ~now_local reference =
  if Proc_id.equal reference t.self then Time.zero
  else
    match Pmap.find_opt reference t.readings with
    | None -> Time.infinity
    | Some r ->
      Reading.error_at r ~now_local ~drift_bound:t.params.drift_bound

let status t ~now_local =
  let readable = readable_set t ~now_local in
  let reference = reference_of readable in
  let bound = bound_to t ~now_local reference in
  let synchronized =
    Time.compare bound (Time.div t.params.epsilon 2) <= 0
  in
  { synchronized; reference; bound; readable }

let offset_to t reference =
  if Proc_id.equal reference t.self then Some Time.zero
  else
    match Pmap.find_opt reference t.readings with
    | None -> None
    | Some r -> Some r.Reading.offset

let reading t ~now_local =
  let st = status t ~now_local in
  if not st.synchronized then None
  else
    match offset_to t st.reference with
    | None -> None
    | Some offset -> Some (Time.add now_local offset)

let reading_exn t ~now_local =
  match reading t ~now_local with
  | Some v -> v
  | None -> invalid_arg "Sync_clock.reading_exn: clock not synchronized"

let local_of_sync t ~sync ~now_local =
  let st = status t ~now_local in
  if not st.synchronized then None
  else
    match offset_to t st.reference with
    | None -> None
    | Some offset -> Some (Time.sub sync offset)
