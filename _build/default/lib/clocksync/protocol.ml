open Tasim

type config = {
  clock : Sync_clock.params;
  resync_period : Time.t;
  delta : Time.t;
  min_delay : Time.t;
}

let default_config ~n =
  {
    clock =
      {
        Sync_clock.epsilon = Time.of_ms 20;
        drift_bound = 1e-5;
        validity = Time.of_sec 2;
        n;
      };
    resync_period = Time.of_ms 200;
    delta = Time.of_ms 10;
    min_delay = Time.of_ms 1;
  }

type msg =
  | Request of { seq : int; sender_clock : Time.t }
  | Reply of {
      seq : int;
      echo_sender_clock : Time.t;
      replier_clock : Time.t;
    }

let pp_msg ppf = function
  | Request { seq; sender_clock } ->
    Fmt.pf ppf "request(seq=%d at=%a)" seq Time.pp sender_clock
  | Reply { seq; replier_clock; _ } ->
    Fmt.pf ppf "reply(seq=%d clock=%a)" seq Time.pp replier_clock

let kind_of_msg = function Request _ -> "cs-request" | Reply _ -> "cs-reply"

type obs = Status_change of { synchronized : bool; reference : Proc_id.t }

let pp_obs ppf (Status_change { synchronized; reference }) =
  Fmt.pf ppf "status(sync=%b ref=%a)" synchronized Proc_id.pp reference

type state = {
  cfg : config;
  self_id : Proc_id.t;
  clock : Sync_clock.t;
  next_seq : int;
  last_synchronized : bool;
  last_reference : Proc_id.t;
}

let timer_resync = 1

let sync_clock state = state.clock
let self state = state.self_id

let sync_reading state ~now_local =
  Sync_clock.reading state.clock ~now_local

(* Emit a Status_change observation whenever the synchronization status
   or reference process changed since last reported. *)
let with_status_obs state ~clock_now effects =
  let st = Sync_clock.status state.clock ~now_local:clock_now in
  if
    st.Sync_clock.synchronized <> state.last_synchronized
    || not (Proc_id.equal st.Sync_clock.reference state.last_reference)
  then
    ( {
        state with
        last_synchronized = st.Sync_clock.synchronized;
        last_reference = st.Sync_clock.reference;
      },
      effects
      @ [
          Engine.Observe
            (Status_change
               {
                 synchronized = st.Sync_clock.synchronized;
                 reference = st.Sync_clock.reference;
               });
        ] )
  else (state, effects)

let init cfg ~self ~n:_ ~clock ~incarnation:_ =
  let state =
    {
      cfg;
      self_id = self;
      clock = Sync_clock.create cfg.clock ~self;
      next_seq = 1;
      last_synchronized = false;
      last_reference = self;
    }
  in
  (* poll immediately, then periodically *)
  let effects =
    [
      Engine.Broadcast (Request { seq = 0; sender_clock = clock });
      Engine.Set_timer
        { key = timer_resync; at_clock = Time.add clock cfg.resync_period };
    ]
  in
  (state, effects)

let on_timer state ~clock ~key =
  if key <> timer_resync then (state, [])
  else begin
    let seq = state.next_seq in
    let state =
      {
        state with
        next_seq = seq + 1;
        clock = Sync_clock.drop_stale state.clock ~now_local:clock;
      }
    in
    let effects =
      [
        Engine.Broadcast (Request { seq; sender_clock = clock });
        Engine.Set_timer
          {
            key = timer_resync;
            at_clock = Time.add clock state.cfg.resync_period;
          };
      ]
    in
    with_status_obs state ~clock_now:clock effects
  end

let on_receive state ~clock ~src msg =
  match msg with
  | Request { seq; sender_clock } ->
    ( state,
      [
        Engine.Send
          ( src,
            Reply
              { seq; echo_sender_clock = sender_clock; replier_clock = clock }
          );
      ] )
  | Reply { echo_sender_clock; replier_clock; _ } ->
    let rtt = Time.sub clock echo_sender_clock in
    if Time.compare rtt (Time.mul state.cfg.delta 2) > 0 then
      (* late reply: performance failure, fail-aware rejection *)
      (state, [])
    else begin
      match
        Reading.of_round_trip ~send_local:echo_sender_clock ~recv_local:clock
          ~remote_clock:replier_clock ~min_delay:state.cfg.min_delay
          ~drift_bound:state.cfg.clock.Sync_clock.drift_bound
      with
      | None -> (state, [])
      | Some reading ->
        let state =
          { state with clock = Sync_clock.note_reading state.clock ~of_:src reading }
        in
        with_status_obs state ~clock_now:clock []
    end

let automaton cfg =
  {
    Engine.name = "clocksync";
    init = (fun ~self ~n ~clock ~incarnation -> init cfg ~self ~n ~clock ~incarnation);
    on_receive;
    on_timer;
  }
