open Tasim

let clocks rng ~n ~epsilon ~max_drift =
  Array.init n (fun _ ->
      let half = Time.div epsilon 2 in
      let offset =
        Time.sub (Rng.uniform_time rng Time.zero epsilon) half
      in
      let drift = (Rng.float rng *. 2.0 -. 1.0) *. max_drift in
      let hc = Hardware_clock.create ~offset ~drift in
      Engine.clock_source_of_hardware hc)

let perfect ~n = Array.init n (fun _ -> Engine.ideal_clock)
