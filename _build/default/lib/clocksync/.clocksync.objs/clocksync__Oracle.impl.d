lib/clocksync/oracle.ml: Array Engine Hardware_clock Rng Tasim Time
