lib/clocksync/sync_clock.ml: Map Proc_id Proc_set Reading Tasim Time
