lib/clocksync/protocol.mli: Engine Fmt Proc_id Sync_clock Tasim Time
