lib/clocksync/oracle.mli: Engine Rng Tasim Time
