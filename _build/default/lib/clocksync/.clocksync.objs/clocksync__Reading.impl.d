lib/clocksync/reading.ml: Fmt Tasim Time
