lib/clocksync/protocol.ml: Engine Fmt Proc_id Reading Sync_clock Tasim Time
