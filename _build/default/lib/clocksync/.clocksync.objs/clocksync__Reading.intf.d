lib/clocksync/reading.mli: Fmt Tasim
