lib/clocksync/sync_clock.mli: Proc_id Proc_set Reading Tasim Time
