(** Remote clock reading with explicit error bounds.

    The fail-aware clock synchronization service the membership protocol
    relies on ([15] in the paper) rests on one primitive: reading a
    remote clock together with a bound on the reading error, derived
    from the round-trip time of a request/reply exchange (Cristian's
    probabilistic clock reading). A reading whose error bound is too
    large is {e rejected} — that is what makes the service fail-aware
    rather than merely best-effort. *)

type t = {
  offset : Tasim.Time.t;
      (** estimated [remote_clock - local_clock] at [read_at] *)
  error : Tasim.Time.t;  (** bound on the estimation error *)
  read_at : Tasim.Time.t;  (** local clock time of the reading *)
}

val of_round_trip :
  send_local:Tasim.Time.t ->
  recv_local:Tasim.Time.t ->
  remote_clock:Tasim.Time.t ->
  min_delay:Tasim.Time.t ->
  drift_bound:float ->
  t option
(** [of_round_trip ~send_local ~recv_local ~remote_clock ~min_delay
    ~drift_bound] computes a reading from one request/reply round trip:
    the request left when the local clock read [send_local], the reply
    carrying the remote clock value [remote_clock] (sampled when the
    reply was sent) arrived at local clock time [recv_local].

    The remote clock at [recv_local] is estimated as
    [remote_clock + rtt/2] with error
    [rtt/2 - min_delay + 2 * drift_bound * rtt].
    Returns [None] when the round trip is invalid ([recv_local <
    send_local]). *)

val error_at :
  t -> now_local:Tasim.Time.t -> drift_bound:float -> Tasim.Time.t
(** The reading's error bound grown by relative clock drift since it
    was taken: [error + 2 * drift_bound * (now - read_at)]. *)

val pp : t Fmt.t
