(** Fail-aware synchronized virtual clock.

    A process's synchronized clock is its hardware clock corrected by an
    offset towards a fixed {e reference process} (the lowest process
    id, by convention). The owner reports itself synchronized iff its
    freshest reading of the reference clock, with the error bound grown
    by drift since the reading, is within [epsilon / 2] — which yields
    the interface the membership protocol consumes (paper, Sections
    2-3): the deviation between any two clocks that both claim
    synchronization is at most [epsilon], and a process always {e
    knows} whether the claim holds (fail-awareness).

    The full service of [15] is master-free (internal synchronization
    with agreed failover); fixing the reference is a documented
    simplification (DESIGN.md) that preserves the interface guarantee —
    at the price of availability when the reference is unreachable.
    The reference process itself is synchronized by definition.

    This module is pure state: the distributed part (obtaining the
    readings) lives in {!Protocol}. *)

open Tasim

type params = {
  epsilon : Time.t;  (** max deviation between synchronized clocks *)
  drift_bound : float;  (** rho: hardware clock drift bound *)
  validity : Time.t;
      (** a reading older than this is discarded outright *)
  n : int;  (** team size *)
}

type t

val create : params -> self:Proc_id.t -> t
val params : t -> params

val note_reading : t -> of_:Proc_id.t -> Reading.t -> t
(** Record a (successful, accepted) reading of a remote clock. Keeps
    the reading with the smallest current error per process. *)

val drop_stale : t -> now_local:Time.t -> t
(** Discard readings older than [validity]. *)

type status = {
  synchronized : bool;
  reference : Proc_id.t;  (** the fixed reference process *)
  bound : Time.t;  (** current error bound w.r.t. the reference *)
  readable : Proc_set.t;  (** processes with a valid recent reading *)
}

val status : t -> now_local:Time.t -> status

val reading : t -> now_local:Time.t -> Time.t option
(** The synchronized clock value at local (hardware) clock time
    [now_local]; [None] when not synchronized. *)

val reading_exn : t -> now_local:Time.t -> Time.t

val local_of_sync : t -> sync:Time.t -> now_local:Time.t -> Time.t option
(** Translate a synchronized-clock target back to local hardware clock
    time (for arming timers); [None] when not synchronized. *)
