(** The distributed clock synchronization automaton.

    Each process periodically broadcasts a clock-reading request; every
    receiver answers with its current hardware clock value. Timely
    replies (round trip at most [2 * delta]) become {!Reading}s feeding
    the owner's {!Sync_clock}; late replies are detected by their
    excessive round trip and rejected — the fail-awareness property of
    the underlying datagram service put to work.

    The automaton plugs into {!Tasim.Engine}; its observations report
    every change of synchronization status, which experiment E7
    consumes. *)

open Tasim

type config = {
  clock : Sync_clock.params;
  resync_period : Time.t;  (** how often a process polls all clocks *)
  delta : Time.t;  (** one-way network timeout *)
  min_delay : Time.t;  (** minimum one-way network delay *)
}

val default_config : n:int -> config

type msg =
  | Request of { seq : int; sender_clock : Time.t }
  | Reply of {
      seq : int;
      echo_sender_clock : Time.t;  (** copied from the request *)
      replier_clock : Time.t;
    }

val pp_msg : msg Fmt.t
val kind_of_msg : msg -> string

type obs =
  | Status_change of { synchronized : bool; reference : Proc_id.t }

val pp_obs : obs Fmt.t

type state

val automaton : config -> (state, msg, obs) Engine.automaton

val sync_clock : state -> Sync_clock.t
val self : state -> Proc_id.t

val sync_reading : state -> now_local:Time.t -> Time.t option
(** Synchronized clock value given the current hardware clock reading
    (as obtained from [Engine.clock_of]). *)
