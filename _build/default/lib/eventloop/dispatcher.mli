(** Single-threaded event demultiplexer (the paper's chosen technique).

    Section 5: "we first implemented an event handler that allows a
    client to wait for multiple concurrent events: the client can define
    for each event a procedure that processes that event. As soon as an
    event occurs, the event handler calls the appropriate procedure ...
    At any time, at most one event is processed and therefore no
    explicit synchronization between procedures ... is required."

    A dispatcher owns a FIFO of posted events and a per-event-type
    handler table. ['e] is the event payload type; event types are
    small integer kinds chosen by the client. *)

type 'e t

val create : ?capacity_hint:int -> unit -> 'e t

val register : 'e t -> kind:int -> ('e -> unit) -> unit
(** Define the procedure for one event kind. Registering a kind twice
    replaces the handler. *)

val unregister : 'e t -> kind:int -> unit

val post : 'e t -> kind:int -> 'e -> unit
(** Enqueue an occurrence of an event. O(1). *)

val run_pending : 'e t -> int
(** Dispatch queued events in FIFO order — including events posted by
    handlers while draining — until the queue is empty. Returns the
    number of events dispatched. Events whose kind has no handler are
    counted in [dropped]. *)

val run_one : 'e t -> bool
(** Dispatch at most one event; [false] when the queue was empty. *)

val queue_length : 'e t -> int
val dispatched : 'e t -> int
(** Total events dispatched to a handler over the dispatcher's life. *)

val dropped : 'e t -> int
(** Total events posted for kinds that had no handler at dispatch
    time. *)
