lib/eventloop/timer_wheel.ml: Array Hashtbl List
