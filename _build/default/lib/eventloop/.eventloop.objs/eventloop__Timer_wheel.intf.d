lib/eventloop/timer_wheel.mli:
