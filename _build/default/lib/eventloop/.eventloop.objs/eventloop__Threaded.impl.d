lib/eventloop/threaded.ml: Condition Hashtbl Mutex Queue Thread
