lib/eventloop/threaded.mli:
