lib/eventloop/dispatcher.mli:
