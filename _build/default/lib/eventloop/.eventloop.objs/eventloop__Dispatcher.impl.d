lib/eventloop/dispatcher.ml: Hashtbl Queue
