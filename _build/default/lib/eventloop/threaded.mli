(** Thread-based event processing (the technique the paper rejected).

    Section 5 reports that an initial thread-based implementation — one
    thread per event type, explicitly scheduled to avoid races — had
    significant overhead. This module reproduces that architecture so
    experiment E6 can compare it against {!Dispatcher}:

    - one worker thread per registered event kind, each with its own
      queue;
    - a global exclusion token ("explicit scheduling"): at most one
      handler runs at a time, and after each event the token is handed
      to the next non-empty queue, so every event pays a
      wakeup/context-switch round trip.

    The interface mirrors {!Dispatcher} where it can. All public
    functions except the handlers themselves must be called from the
    owner thread. *)

type 'e t

val create : unit -> 'e t

val register : 'e t -> kind:int -> ('e -> unit) -> unit
(** Spawn the worker thread for one event kind. Must not be called
    after [shutdown]. Registering the same kind twice is an error. *)

val post : 'e t -> kind:int -> 'e -> unit
(** Enqueue an occurrence; raises [Invalid_argument] on an unknown
    kind. *)

val drain : 'e t -> unit
(** Block until every queued event has been processed. *)

val dispatched : 'e t -> int

val shutdown : 'e t -> unit
(** Drain, stop and join all worker threads. The value must not be
    used afterwards. *)
