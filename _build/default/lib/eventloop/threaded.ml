type 'e worker = {
  kind : int;
  queue : 'e Queue.t;
  mutable thread : Thread.t option;
}

type 'e t = {
  mutex : Mutex.t;
  wakeup : Condition.t; (* signalled when work arrives or state changes *)
  idle : Condition.t; (* signalled when a queue may have drained *)
  workers : (int, 'e worker) Hashtbl.t;
  mutable outstanding : int; (* queued but not yet processed events *)
  mutable dispatched : int;
  mutable stopping : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    wakeup = Condition.create ();
    idle = Condition.create ();
    workers = Hashtbl.create 16;
    outstanding = 0;
    dispatched = 0;
    stopping = false;
  }

(* Each worker loops: wait for an event on its own queue, process it
   while holding the global token (the mutex), then signal. Handlers run
   under the mutex, which serializes them exactly like the explicit
   scheduling the paper describes; the per-event wakeup is the cost the
   paper measured. *)
let worker_loop t worker handler =
  Mutex.lock t.mutex;
  let rec loop () =
    if t.stopping then Mutex.unlock t.mutex
    else begin
      match Queue.take_opt worker.queue with
      | None ->
        Condition.wait t.wakeup t.mutex;
        loop ()
      | Some payload ->
        handler payload;
        t.dispatched <- t.dispatched + 1;
        t.outstanding <- t.outstanding - 1;
        if t.outstanding = 0 then Condition.broadcast t.idle;
        (* hand the token over: let other workers contend *)
        Condition.broadcast t.wakeup;
        loop ()
    end
  in
  loop ()

let register t ~kind handler =
  Mutex.lock t.mutex;
  if t.stopping then begin
    Mutex.unlock t.mutex;
    invalid_arg "Threaded.register: dispatcher is shut down"
  end;
  if Hashtbl.mem t.workers kind then begin
    Mutex.unlock t.mutex;
    invalid_arg "Threaded.register: kind registered twice"
  end;
  let worker = { kind; queue = Queue.create (); thread = None } in
  Hashtbl.add t.workers kind worker;
  Mutex.unlock t.mutex;
  let thread = Thread.create (fun () -> worker_loop t worker handler) () in
  worker.thread <- Some thread

let post t ~kind payload =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.workers kind with
  | None ->
    Mutex.unlock t.mutex;
    invalid_arg "Threaded.post: unknown event kind"
  | Some worker ->
    Queue.add payload worker.queue;
    t.outstanding <- t.outstanding + 1;
    Condition.broadcast t.wakeup;
    Mutex.unlock t.mutex

let drain t =
  Mutex.lock t.mutex;
  while t.outstanding > 0 do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let dispatched t =
  Mutex.lock t.mutex;
  let d = t.dispatched in
  Mutex.unlock t.mutex;
  d

let shutdown t =
  drain t;
  Mutex.lock t.mutex;
  t.stopping <- true;
  Condition.broadcast t.wakeup;
  Mutex.unlock t.mutex;
  Hashtbl.iter
    (fun _ worker ->
      match worker.thread with Some th -> Thread.join th | None -> ())
    t.workers
