type 'e t = {
  queue : (int * 'e) Queue.t;
  handlers : (int, 'e -> unit) Hashtbl.t;
  mutable dispatched : int;
  mutable dropped : int;
}

let create ?(capacity_hint = 64) () =
  {
    queue = Queue.create ();
    handlers = Hashtbl.create capacity_hint;
    dispatched = 0;
    dropped = 0;
  }

let register t ~kind handler = Hashtbl.replace t.handlers kind handler
let unregister t ~kind = Hashtbl.remove t.handlers kind
let post t ~kind payload = Queue.add (kind, payload) t.queue

let dispatch t kind payload =
  match Hashtbl.find_opt t.handlers kind with
  | Some handler ->
    t.dispatched <- t.dispatched + 1;
    handler payload
  | None -> t.dropped <- t.dropped + 1

let run_one t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some (kind, payload) ->
    dispatch t kind payload;
    true

let run_pending t =
  let count = ref 0 in
  while run_one t do
    incr count
  done;
  !count

let queue_length t = Queue.length t.queue
let dispatched t = t.dispatched
let dropped t = t.dropped
