lib/core/undeliverable.mli: Broadcast Fmt Oal Proc_set Proposal Semantics Tasim
