lib/core/params.mli: Fmt Tasim Time
