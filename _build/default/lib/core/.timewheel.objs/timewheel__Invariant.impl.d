lib/core/invariant.ml: Broadcast Creator_state Engine Fmt Hashtbl List Member Oal Proc_id Proc_set Proposal Tasim
