lib/core/group_creator.mli: Creator_state Fmt Proc_id Proc_set Tasim Time
