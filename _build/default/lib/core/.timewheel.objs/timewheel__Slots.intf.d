lib/core/slots.mli: Params Proc_id Tasim Time
