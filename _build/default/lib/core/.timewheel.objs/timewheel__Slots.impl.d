lib/core/slots.ml: Params Proc_id Tasim Time
