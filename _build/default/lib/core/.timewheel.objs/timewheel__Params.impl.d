lib/core/params.ml: Fmt Tasim Time
