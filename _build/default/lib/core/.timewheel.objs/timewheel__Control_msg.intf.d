lib/core/control_msg.mli: Broadcast Buffers Fmt Oal Proc_id Proc_set Proposal Semantics Tasim Time
