lib/core/member.ml: Broadcast Buffers Control_msg Creator_state Delivery Engine Failure_detector Fmt Group_creator Hashtbl List Map Oal Params Proc_id Proc_set Proposal Slots Tasim Time Undeliverable
