lib/core/group_creator.ml: Creator_state Fmt Proc_id Proc_set Tasim Time
