lib/core/invariant.mli: Control_msg Engine Fmt Member Proc_id Tasim
