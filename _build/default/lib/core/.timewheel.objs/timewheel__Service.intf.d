lib/core/service.mli: Broadcast Control_msg Engine Member Params Proc_id Proc_set Proposal Semantics Stats Tasim Time Trace
