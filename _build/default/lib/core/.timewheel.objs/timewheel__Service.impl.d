lib/core/service.ml: Array Broadcast Clocksync Control_msg Creator_state Engine List Member Net Option Params Proc_id Proc_set Proposal String Tasim Time Trace
