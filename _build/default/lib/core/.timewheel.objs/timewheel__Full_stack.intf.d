lib/core/full_stack.mli: Broadcast Clocksync Control_msg Engine Member Tasim Time
