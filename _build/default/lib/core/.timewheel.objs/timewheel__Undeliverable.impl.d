lib/core/undeliverable.ml: Broadcast Fmt Int List Oal Proc_id Proc_set Proposal Semantics Tasim
