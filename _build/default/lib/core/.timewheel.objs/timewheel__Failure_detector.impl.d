lib/core/failure_detector.ml: Fmt Map Option Params Proc_id Proc_set Tasim Time
