lib/core/full_stack.ml: Clocksync Control_msg Engine Int List Map Member Proc_id Tasim Time
