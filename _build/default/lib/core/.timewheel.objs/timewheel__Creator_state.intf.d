lib/core/creator_state.mli: Fmt Proc_id Tasim Time
