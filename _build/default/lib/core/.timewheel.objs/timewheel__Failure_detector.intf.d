lib/core/failure_detector.mli: Fmt Params Proc_id Proc_set Tasim Time
