lib/core/member.mli: Broadcast Buffers Control_msg Creator_state Engine Failure_detector Fmt Oal Params Proc_id Proc_set Proposal Semantics Tasim Time
