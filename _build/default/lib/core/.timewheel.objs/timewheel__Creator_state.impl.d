lib/core/creator_state.ml: Fmt Proc_id Tasim Time
