(** The whole Figure 1 stack in one automaton.

    The paper's architecture (Fig. 1) layers the broadcast + membership
    protocols on the fail-aware clock synchronization service, all over
    the unreliable datagram service. Most experiments study membership
    over {e oracle} synchronized clocks (DESIGN.md); this module is the
    real composition: a product automaton running the
    {!Clocksync.Protocol} and the {!Member} side by side on raw
    hardware clocks.

    The member half lives on the synchronized time base:

    - it is only started once the local clock first synchronizes;
    - its timers, expressed in synchronized time, are translated to
      hardware time through the sync clock (and re-translated if the
      translation drifts);
    - while the clock is {e not} synchronized, group-communication
      messages are dropped and member timers are deferred — the process
      will be excluded by the others and rejoins when synchronization
      returns, exactly the paper's prescription: "A process p that
      cannot keep its clock synchronized is removed from the current
      group ... When p can synchronize its clock again, p applies to
      join the group again" (Section 2).

    Experiment E9 runs this stack and compares it with the oracle-clock
    service. *)

open Tasim

type ('u, 'app) msg =
  | Cs of Clocksync.Protocol.msg  (** clock synchronization traffic *)
  | Gc of ('u, 'app) Control_msg.t  (** group communication traffic *)

val kind_of_msg : ('u, 'app) msg -> string

type 'u obs =
  | Member_obs of 'u Member.obs
  | Sync_obs of Clocksync.Protocol.obs
  | Member_started  (** the clock synchronized for the first time *)

type ('u, 'app) state

val automaton :
  ('u, 'app) Member.config ->
  Clocksync.Protocol.config ->
  (('u, 'app) state, ('u, 'app) msg, 'u obs) Engine.automaton
(** The engine's clock sources must be the {e hardware} clocks. *)

val submit : semantics:Broadcast.Semantics.t -> 'u -> ('u, 'app) msg

(** {1 Inspection} *)

val member : ('u, 'app) state -> ('u, 'app) Member.state option
(** [None] until the clock first synchronizes. *)

val sync_state : ('u, 'app) state -> Clocksync.Protocol.state
val is_synchronized : ('u, 'app) state -> now_local:Time.t -> bool
