(** Group-creator states (paper, Figure 2).

    "We describe a group creator as a finite state machine with six
    states: join, failure-free, wrong-suspicion, 1-failure-receive,
    1-failure-send, and n-failure." *)

open Tasim

type t =
  | Join
  | Failure_free
  | Wrong_suspicion of { suspect : Proc_id.t }
      (** a single failure was suspected and this process does not
          concur *)
  | One_failure_receive of { suspect : Proc_id.t; since : Time.t }
      (** concurs with a single failure suspicion, waiting for the
          no-decision ring to reach it *)
  | One_failure_send of { suspect : Proc_id.t; since : Time.t }
      (** concurs and has already sent its no-decision message *)
  | N_failure of { wait_until_slot : int }
      (** multiple failures: the slotted reconfiguration election is
          running; this process abstains (sends empty
          reconfiguration-lists) until the given global slot index *)

(** State identity without per-state data: transition-coverage matrices
    and tests key on this. *)
type kind = KJoin | KFailure_free | KWrong_suspicion | KOne_failure_receive
          | KOne_failure_send | KN_failure

val kind_of : t -> kind
val all_kinds : kind list
val kind_to_string : kind -> string
val equal_kind : kind -> kind -> bool
val pp : t Fmt.t
val pp_kind : kind Fmt.t
