(** Slot and cycle arithmetic over the synchronized time base.

    "The global time-base provided by the synchronized clocks is divided
    into cycles and the cycles are divided into slots; each team member
    has exactly one slot per cycle." (paper, Section 4.1)

    Slot [s] covers synchronized time [\[s * slot_len, (s+1) *
    slot_len)]; its owner is team member [s mod n]. *)

open Tasim

val index : Params.t -> Time.t -> int
(** Global slot index at a synchronized time (0 for t < slot_len). *)

val owner : Params.t -> int -> Proc_id.t
(** Owner of a global slot index. *)

val owner_at : Params.t -> Time.t -> Proc_id.t
val start_of : Params.t -> int -> Time.t

val next_own_slot : Params.t -> self:Proc_id.t -> now:Time.t -> Time.t
(** Start time of [self]'s next slot strictly after [now]. If [now] is
    inside [self]'s slot, this is the slot one cycle later. *)

val current_own_slot_start :
  Params.t -> self:Proc_id.t -> now:Time.t -> Time.t option
(** Start of [self]'s slot when [now] lies inside it. *)

val slot_of_sender : Params.t -> sent_at:Time.t -> int
(** Slot index during which a message with the given send timestamp was
    sent. *)

val in_last_k_slots : Params.t -> now:Time.t -> sent_at:Time.t -> k:int -> bool
(** Was [sent_at] within the last [k] slots (inclusive of the current
    one)? *)

val was_own_latest_slot :
  Params.t -> sender:Proc_id.t -> sent_at:Time.t -> now:Time.t -> bool
(** Was the message sent during [sender]'s most recent slot (the
    sender's own slot in the current or previous cycle, whichever has
    already begun)? This is the "in the p's last time slot" condition
    of the join and reconfiguration elections. *)
