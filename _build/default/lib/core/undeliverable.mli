(** Undeliverable proposals (paper, Section 4.3).

    When a membership change removes processes, some updates proposed
    by the departed members must be discarded to preserve the ordering
    and atomicity semantics. "We call a proposal that should not be
    delivered by any of the current group members an undeliverable
    proposal"; it falls in one of four categories:

    + {e lost}: its descriptor is in the oal but no current member has
      received it;
    + {e orphan-order}: total/time ordered, and an undeliverable
      proposal by the same sender has a smaller ordinal (FIFO would be
      violated);
    + {e orphan-atomicity}: strong/strict atomicity, and an
      undeliverable proposal has an ordinal <= its hdo (a dependency is
      gone);
    + {e unknown dependency}: strong/strict atomicity and its hdo
      exceeds the highest ordinal known to the remaining members (it
      depends on orderings only the departed decider knew).

    The classification runs at the new decider when it rebuilds the oal
    from the views carried on no-decision/reconfiguration messages. *)

open Tasim
open Broadcast

type category = Lost | Orphan_order | Orphan_atomicity | Unknown_dependency

val category_to_string : category -> string
val pp_category : category Fmt.t

val classify :
  oal:Oal.t ->
  departed:Proc_set.t ->
  highest_known_ordinal:int ->
  (Proposal.id * category) list
(** Compute the undeliverable set over the rebuilt oal (whose ack bits
    already reflect the views of all new group members). The oal's ack
    sets decide "received by no current member": an update descriptor
    with an empty ack set restricted to survivors is lost. Categories 2
    and 3 are closed iteratively (an orphan makes later proposals
    orphans in turn). Results are in ordinal order; each proposal is
    reported once with the first category that condemned it. *)

val apply :
  oal:Oal.t -> (Proposal.id * category) list -> Oal.t
(** Mark every classified proposal undeliverable in the oal. *)

val pending_category :
  undeliverable_ordinals:int list ->
  highest_known_ordinal:int ->
  semantics:Semantics.t ->
  hdo:int ->
  category option
(** Classify a {e pending} (received but not yet ordered) proposal from
    a departed member against the rebuilt oal: the unknown-dependency
    and orphan-atomicity rules are the ones that can condemn a proposal
    that never got an ordinal. *)
