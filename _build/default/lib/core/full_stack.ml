open Tasim

type ('u, 'app) msg =
  | Cs of Clocksync.Protocol.msg
  | Gc of ('u, 'app) Control_msg.t

let kind_of_msg = function
  | Cs m -> Clocksync.Protocol.kind_of_msg m
  | Gc m -> Control_msg.kind m

type 'u obs =
  | Member_obs of 'u Member.obs
  | Sync_obs of Clocksync.Protocol.obs
  | Member_started

(* Engine timer-key namespace: the clocksync automaton uses small keys;
   member keys are shifted; one private key polls for first
   synchronization. *)
let key_start_poll = 5
let member_key_base = 10
let start_poll_period = Time.of_ms 50
let retry_period = Time.of_ms 50

module Imap = Map.Make (Int)

type ('u, 'app) state = {
  member_cfg : ('u, 'app) Member.config;
  self : Proc_id.t;
  n : int;
  cs : Clocksync.Protocol.state;
  member : ('u, 'app) Member.state option;
  member_timers : Time.t Imap.t;
      (* member timer key -> synchronized-time deadline (the engine
         timer may be a hardware-time approximation or a retry poll) *)
}

let member s = s.member
let sync_state s = s.cs

let is_synchronized s ~now_local =
  Clocksync.Protocol.sync_reading s.cs ~now_local <> None

let submit ~semantics payload = Gc (Member.submit ~semantics payload)

let sync_clock_of s = Clocksync.Protocol.sync_clock s.cs

(* Translate one member effect into engine effects, tracking timers. *)
let translate_member_effect s ~now_local eff =
  match eff with
  | Engine.Send (dst, m) -> (s, [ Engine.Send (dst, Gc m) ])
  | Engine.Broadcast m -> (s, [ Engine.Broadcast (Gc m) ])
  | Engine.Observe o -> (s, [ Engine.Observe (Member_obs o) ])
  | Engine.Log l -> (s, [ Engine.Log l ])
  | Engine.Cancel_timer key ->
    ( { s with member_timers = Imap.remove key s.member_timers },
      [ Engine.Cancel_timer (member_key_base + key) ] )
  | Engine.Set_timer { key; at_clock = sync_deadline } ->
    let s =
      { s with member_timers = Imap.add key sync_deadline s.member_timers }
    in
    let hw =
      match
        Clocksync.Sync_clock.local_of_sync (sync_clock_of s)
          ~sync:sync_deadline ~now_local
      with
      | Some hw -> Time.max hw now_local
      | None -> Time.add now_local retry_period
    in
    (s, [ Engine.Set_timer { key = member_key_base + key; at_clock = hw } ])

let translate_member_step s ~now_local (member_state, effects) =
  let s = { s with member = Some member_state } in
  List.fold_left
    (fun (s, acc) eff ->
      let s, effs = translate_member_effect s ~now_local eff in
      (s, acc @ effs))
    (s, []) effects

let cs_effects effects =
  List.map
    (fun eff ->
      match eff with
      | Engine.Send (dst, m) -> Engine.Send (dst, Cs m)
      | Engine.Broadcast m -> Engine.Broadcast (Cs m)
      | Engine.Observe o -> Engine.Observe (Sync_obs o)
      | Engine.Log l -> Engine.Log l
      | Engine.Set_timer t -> Engine.Set_timer t
      | Engine.Cancel_timer k -> Engine.Cancel_timer k)
    effects

(* Start the member half once the clock synchronizes for the first
   time. *)
let try_start_member s ~now_local ~incarnation =
  match Clocksync.Protocol.sync_reading s.cs ~now_local with
  | None ->
    ( s,
      [
        Engine.Set_timer
          {
            key = key_start_poll;
            at_clock = Time.add now_local start_poll_period;
          };
      ] )
  | Some sync_now ->
    let member_automaton = Member.automaton s.member_cfg in
    let step =
      member_automaton.Engine.init ~self:s.self ~n:s.n ~clock:sync_now
        ~incarnation
    in
    let s, effects = translate_member_step s ~now_local step in
    (s, (Engine.Observe Member_started :: effects))

let init member_cfg cs_cfg ~self ~n ~clock ~incarnation =
  let cs_automaton = Clocksync.Protocol.automaton cs_cfg in
  let cs, cs_effs = cs_automaton.Engine.init ~self ~n ~clock ~incarnation in
  let s =
    { member_cfg; self; n; cs; member = None; member_timers = Imap.empty }
  in
  let s, start_effs = try_start_member s ~now_local:clock ~incarnation in
  (s, cs_effects cs_effs @ start_effs)

let member_automaton_of s = Member.automaton s.member_cfg

let on_receive cs_cfg s ~clock ~src msg =
  let _ = cs_cfg in
  match msg with
  | Cs m ->
    let cs_automaton = Clocksync.Protocol.automaton cs_cfg in
    let cs, effs = cs_automaton.Engine.on_receive s.cs ~clock ~src m in
    ({ s with cs }, cs_effects effs)
  | Gc m -> (
    match s.member with
    | None -> (s, []) (* not started: no synchronized clock yet *)
    | Some member_state -> (
      match Clocksync.Protocol.sync_reading s.cs ~now_local:clock with
      | None ->
        (* unsynchronized: fail-aware drop; the group will exclude us *)
        (s, [ Engine.Log "gc message dropped: clock not synchronized" ])
      | Some sync_now ->
        let automaton = member_automaton_of s in
        translate_member_step s ~now_local:clock
          (automaton.Engine.on_receive member_state ~clock:sync_now ~src m)))

let on_timer cs_cfg s ~clock ~key =
  if key = key_start_poll then begin
    match s.member with
    | Some _ -> (s, [])
    | None -> try_start_member s ~now_local:clock ~incarnation:0
  end
  else if key >= member_key_base then begin
    let member_key = key - member_key_base in
    match (s.member, Imap.find_opt member_key s.member_timers) with
    | None, _ | _, None -> (s, [])
    | Some member_state, Some sync_deadline -> (
      match Clocksync.Protocol.sync_reading s.cs ~now_local:clock with
      | None ->
        (* cannot place the deadline on the synchronized time base right
           now: retry shortly *)
        ( s,
          [
            Engine.Set_timer
              { key; at_clock = Time.add clock retry_period };
          ] )
      | Some sync_now ->
        if Time.compare sync_now sync_deadline >= 0 then begin
          let s =
            { s with member_timers = Imap.remove member_key s.member_timers }
          in
          let automaton = member_automaton_of s in
          translate_member_step s ~now_local:clock
            (automaton.Engine.on_timer member_state ~clock:sync_now
               ~key:member_key)
        end
        else begin
          (* the hardware approximation fired early (clock drift or a
             resync): re-translate *)
          let hw =
            match
              Clocksync.Sync_clock.local_of_sync (sync_clock_of s)
                ~sync:sync_deadline ~now_local:clock
            with
            | Some hw -> Time.max hw (Time.add clock (Time.of_us 100))
            | None -> Time.add clock retry_period
          in
          (s, [ Engine.Set_timer { key; at_clock = hw } ])
        end)
  end
  else begin
    let cs_automaton = Clocksync.Protocol.automaton cs_cfg in
    let cs, effs = cs_automaton.Engine.on_timer s.cs ~clock ~key in
    ({ s with cs }, cs_effects effs)
  end

let automaton member_cfg cs_cfg =
  {
    Engine.name = "timewheel-full-stack";
    init =
      (fun ~self ~n ~clock ~incarnation ->
        init member_cfg cs_cfg ~self ~n ~clock ~incarnation);
    on_receive = (fun s ~clock ~src msg -> on_receive cs_cfg s ~clock ~src msg);
    on_timer = (fun s ~clock ~key -> on_timer cs_cfg s ~clock ~key);
  }
