open Tasim

type t =
  | Join
  | Failure_free
  | Wrong_suspicion of { suspect : Proc_id.t }
  | One_failure_receive of { suspect : Proc_id.t; since : Time.t }
  | One_failure_send of { suspect : Proc_id.t; since : Time.t }
  | N_failure of { wait_until_slot : int }

type kind = KJoin | KFailure_free | KWrong_suspicion | KOne_failure_receive
          | KOne_failure_send | KN_failure

let kind_of = function
  | Join -> KJoin
  | Failure_free -> KFailure_free
  | Wrong_suspicion _ -> KWrong_suspicion
  | One_failure_receive _ -> KOne_failure_receive
  | One_failure_send _ -> KOne_failure_send
  | N_failure _ -> KN_failure

let all_kinds =
  [
    KJoin; KFailure_free; KWrong_suspicion; KOne_failure_receive;
    KOne_failure_send; KN_failure;
  ]

let kind_to_string = function
  | KJoin -> "join"
  | KFailure_free -> "failure-free"
  | KWrong_suspicion -> "wrong-suspicion"
  | KOne_failure_receive -> "1-failure-receive"
  | KOne_failure_send -> "1-failure-send"
  | KN_failure -> "n-failure"

let equal_kind (a : kind) (b : kind) = a = b
let pp_kind ppf k = Fmt.string ppf (kind_to_string k)

let pp ppf = function
  | Join -> Fmt.string ppf "join"
  | Failure_free -> Fmt.string ppf "failure-free"
  | Wrong_suspicion { suspect } ->
    Fmt.pf ppf "wrong-suspicion(%a)" Proc_id.pp suspect
  | One_failure_receive { suspect; _ } ->
    Fmt.pf ppf "1-failure-receive(%a)" Proc_id.pp suspect
  | One_failure_send { suspect; _ } ->
    Fmt.pf ppf "1-failure-send(%a)" Proc_id.pp suspect
  | N_failure { wait_until_slot } ->
    Fmt.pf ppf "n-failure(wait<%d)" wait_until_slot
