open Tasim
open Broadcast

type category = Lost | Orphan_order | Orphan_atomicity | Unknown_dependency

let category_to_string = function
  | Lost -> "lost"
  | Orphan_order -> "orphan-order"
  | Orphan_atomicity -> "orphan-atomicity"
  | Unknown_dependency -> "unknown-dependency"

let pp_category ppf c = Fmt.string ppf (category_to_string c)

module Id_map = Proposal.Id_map

let classify ~oal ~departed ~highest_known_ordinal =
  (* candidate entries: update descriptors proposed by departed members *)
  let candidates =
    List.filter_map
      (fun e ->
        match e.Oal.body with
        | Oal.Update info
          when Proc_set.mem info.Oal.proposal_id.Proposal.origin departed ->
          Some (e, info)
        | Oal.Update _ | Oal.Membership _ -> None)
      (Oal.entries oal)
  in
  let survivor_ack e = not (Proc_set.is_empty (Proc_set.diff e.Oal.acks departed)) in
  (* fixed point: orphan categories cascade *)
  let rec close marked =
    let undeliv_ordinal o =
      Id_map.exists (fun _ (ordinal, _) -> ordinal = o) marked
    in
    let undeliv_same_origin_below origin ordinal =
      Id_map.exists
        (fun id (o, _) ->
          Proc_id.equal id.Proposal.origin origin && o < ordinal)
        marked
    in
    let undeliv_at_or_below hdo =
      Id_map.exists (fun _ (o, _) -> o <= hdo) marked
    in
    ignore undeliv_ordinal;
    let step marked (e, (info : Oal.update_info)) =
      if Id_map.mem info.Oal.proposal_id marked then marked
      else begin
        let origin = info.Oal.proposal_id.Proposal.origin in
        let ordering = info.Oal.semantics.Semantics.ordering in
        let atomicity = info.Oal.semantics.Semantics.atomicity in
        let category =
          if not (survivor_ack e) then Some Lost
          else if
            (ordering = Semantics.Total || ordering = Semantics.Timed)
            && undeliv_same_origin_below origin e.Oal.ordinal
          then Some Orphan_order
          else if
            (atomicity = Semantics.Strong || atomicity = Semantics.Strict)
            && undeliv_at_or_below info.Oal.hdo
          then Some Orphan_atomicity
          else if
            (atomicity = Semantics.Strong || atomicity = Semantics.Strict)
            && info.Oal.hdo > highest_known_ordinal
          then Some Unknown_dependency
          else None
        in
        match category with
        | Some c ->
          Id_map.add info.Oal.proposal_id (e.Oal.ordinal, c) marked
        | None -> marked
      end
    in
    let marked' = List.fold_left step marked candidates in
    if Id_map.cardinal marked' = Id_map.cardinal marked then marked
    else close marked'
  in
  let marked = close Id_map.empty in
  Id_map.bindings marked
  |> List.sort (fun (_, (o1, _)) (_, (o2, _)) -> Int.compare o1 o2)
  |> List.map (fun (id, (_, c)) -> (id, c))

let apply ~oal classified =
  List.fold_left (fun oal (id, _) -> Oal.mark_undeliverable oal id) oal
    classified

let pending_category ~undeliverable_ordinals ~highest_known_ordinal
    ~(semantics : Semantics.t) ~hdo =
  match semantics.Semantics.atomicity with
  | Semantics.Weak -> None
  | Semantics.Strong | Semantics.Strict ->
    if hdo > highest_known_ordinal then Some Unknown_dependency
    else if List.exists (fun o -> o <= hdo) undeliverable_ordinals then
      Some Orphan_atomicity
    else None
