open Tasim

let index (p : Params.t) t =
  if Time.compare t Time.zero < 0 then 0
  else Time.to_us t / Time.to_us p.Params.slot_len

let owner (p : Params.t) s = Proc_id.of_int (s mod p.Params.n)
let owner_at p t = owner p (index p t)
let start_of (p : Params.t) s = Time.mul p.Params.slot_len s

let next_own_slot (p : Params.t) ~self ~now =
  let s = index p now in
  let rec probe s =
    if Proc_id.equal (owner p s) self then start_of p s else probe (s + 1)
  in
  probe (s + 1)

let current_own_slot_start (p : Params.t) ~self ~now =
  let s = index p now in
  if Proc_id.equal (owner p s) self then Some (start_of p s) else None

let slot_of_sender p ~sent_at = index p sent_at

let in_last_k_slots p ~now ~sent_at ~k =
  (* a message k slots back is still within the "last k slots": with one
     message per cycle, a peer's latest message is exactly N-1 slots old
     when observed from the observer's own slot *)
  let current = index p now in
  let sent = index p sent_at in
  sent >= current - k && sent <= current

let was_own_latest_slot (p : Params.t) ~sender ~sent_at ~now =
  let sent_slot = index p sent_at in
  if not (Proc_id.equal (owner p sent_slot) sender) then false
  else begin
    (* the sender's most recent slot that has already begun *)
    let current = index p now in
    let rec latest s =
      if Proc_id.equal (owner p s) sender then s else latest (s - 1)
    in
    let latest_slot = if current < 0 then 0 else latest current in
    sent_slot = latest_slot
  end
