open Tasim

module Pmap = Map.Make (struct
  type t = Proc_id.t

  let compare = Proc_id.compare
end)

type t = {
  params : Params.t;
  self : Proc_id.t;
  heard : Time.t Pmap.t; (* proc -> freshest control msg send ts *)
  surveillance : (Proc_id.t * Time.t) option; (* expected sender, base ts *)
}

let create params ~self = { params; self; heard = Pmap.empty; surveillance = None }

type verdict = Fresh | Stale | Late

let admit t ~from ~ts ~now =
  let late_bound = Params.late_bound t.params in
  if Time.compare (Time.sub now ts) late_bound > 0 then (t, Late)
  else
    match Pmap.find_opt from t.heard with
    | Some prev when Time.compare ts prev <= 0 -> (t, Stale)
    | Some _ | None -> ({ t with heard = Pmap.add from ts t.heard }, Fresh)

let note_sent t ~ts = { t with heard = Pmap.add t.self ts t.heard }
let last_heard t p = Pmap.find_opt p t.heard

let heard_after t p ~since =
  match Pmap.find_opt p t.heard with
  | Some ts -> Time.compare ts since > 0
  | None -> false

let alive_list t ~now =
  let window = Params.alive_window t.params in
  let horizon = Time.sub now window in
  Pmap.fold
    (fun p ts acc ->
      if Time.compare ts horizon >= 0 then Proc_set.add p acc else acc)
    t.heard
    (Proc_set.singleton t.self)

let forget t p = { t with heard = Pmap.remove p t.heard }

let expect t ~sender ~base = { t with surveillance = Some (sender, base) }
let suspend t = { t with surveillance = None }
let expected t = Option.map fst t.surveillance

let deadline t =
  Option.map
    (fun (_, base) -> Time.add base (Params.fd_timeout t.params))
    t.surveillance

let satisfied_by t ~from ~ts =
  (* [ts] and [base] were read on different synchronized clocks, which
     may deviate by up to epsilon: allow that slack *)
  match t.surveillance with
  | Some (sender, base) ->
    Proc_id.equal from sender
    && Time.compare ts (Time.sub base t.params.Params.epsilon) > 0
  | None -> false

let timeout_suspect t ~now =
  match t.surveillance with
  | Some (sender, base)
    when Time.compare now (Time.add base (Params.fd_timeout t.params)) >= 0
    ->
    Some sender
  | Some _ | None -> None

let pp ppf t =
  let pp_surv ppf = function
    | None -> Fmt.string ppf "idle"
    | Some (p, base) ->
      Fmt.pf ppf "expect %a after %a" Proc_id.pp p Time.pp base
  in
  Fmt.pf ppf "fd(self=%a %a heard=%d)" Proc_id.pp t.self pp_surv
    t.surveillance (Pmap.cardinal t.heard)
