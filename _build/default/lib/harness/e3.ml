open Tasim
open Timewheel
open Broadcast

type mode = Undisturbed | Lost_to_successor | Lost_to_all

let mode_name = function
  | Undisturbed -> "undisturbed"
  | Lost_to_successor -> "decision lost to successor"
  | Lost_to_all -> "decision lost to everyone"

(* Steady workload: one total/weak update every tick from p0. Delivery
   latency per update = delivery time - submit time (perfect-ish sync
   clocks make send_ts comparable to real time within epsilon). *)
let one_run ~seed ~mode =
  let n = 5 in
  let svc = Run.service ~seed ~n () in
  let stats = Stats.create () in
  let deliveries = ref [] in
  Service.on_delivery svc (fun proc ~at proposal ~ordinal:_ ->
      let latency = Time.sub at proposal.Proposal.send_ts in
      Stats.record_time stats "latency" latency;
      if Proc_id.equal proc (Proc_id.of_int 0) then
        deliveries := at :: !deliveries);
  let svc = Run.settle svc in
  let t0 = Service.now svc in
  let formation_views = List.length (Service.views_installed svc) in
  (* fault injection at t0+1s: drop the next decision from p2 *)
  let fault_at = Time.add t0 (Time.of_sec 1) in
  let engine = Service.engine svc in
  Engine.at engine fault_at (fun () ->
      match mode with
      | Undisturbed -> ()
      | Lost_to_successor ->
        (* drop one decision from whoever decides next, to its successor *)
        Net.add_filter (Engine.net engine) ~max_drops:1 ~name:"to-successor"
          (fun ~src ~dst msg ->
            Control_msg.kind msg = "decision"
            &&
            match Engine.state_of engine src with
            | Some s -> (
              match
                Proc_set.successor_in (Member.group s) src ~n
              with
              | Some next -> Proc_id.equal next dst
              | None -> false)
            | None -> false)
      | Lost_to_all ->
        Net.add_filter (Engine.net engine) ~max_drops:(n - 1) ~name:"to-all"
          (fun ~src:_ ~dst:_ msg -> Control_msg.kind msg = "decision"));
  (* workload: 10ms cadence for 4 s *)
  let ticks = 400 in
  for i = 0 to ticks - 1 do
    Service.submit_at svc
      (Time.add t0 (Time.of_ms (10 * i)))
      (Proc_id.of_int 0)
      ~semantics:Semantics.{ ordering = Total; atomicity = Weak }
      i
  done;
  Service.run svc ~until:(Time.add t0 (Time.of_sec 6));
  ignore formation_views;
  let views_after =
    (* distinct groups formed after the fault *)
    Service.views_installed svc
    |> List.filter (fun (_, v) -> Time.compare v.Service.at fault_at >= 0)
    |> List.map (fun (_, v) -> v.Service.group_id)
    |> List.sort_uniq compare |> List.length
  in
  let latency = Stats.summary_of stats "latency" in
  let max_gap =
    let ds = List.sort Time.compare !deliveries in
    let rec gaps acc = function
      | a :: (b :: _ as rest) -> gaps (max acc (Time.sub b a)) rest
      | _ -> acc
    in
    gaps Time.zero ds
  in
  (views_after, latency, max_gap, Run.survivors_consistent svc)

let run ?(quick = false) () =
  let seeds = if quick then [ 21 ] else [ 21; 22; 23 ] in
  let table =
    Table.create ~title:"E3: false-suspicion masking (N=5, steady workload)"
      ~columns:
        [
          "scenario";
          "runs";
          "view changes";
          "latency p50";
          "latency p95";
          "max delivery gap";
          "logs consistent";
        ]
  in
  List.iter
    (fun mode ->
      let results = List.map (fun seed -> one_run ~seed ~mode) seeds in
      let views =
        List.fold_left (fun acc (v, _, _, _) -> acc + v) 0 results
      in
      let lat50, lat95 =
        let all =
          List.filter_map (fun (_, l, _, _) -> l) results
        in
        match all with
        | [] -> (nan, nan)
        | _ ->
          ( List.fold_left (fun a s -> a +. s.Stats.p50) 0.0 all
            /. float_of_int (List.length all),
            List.fold_left (fun a s -> a +. s.Stats.p95) 0.0 all
            /. float_of_int (List.length all) )
      in
      let max_gap =
        List.fold_left (fun acc (_, _, g, _) -> Time.max acc g) Time.zero
          results
      in
      let consistent = List.for_all (fun (_, _, _, c) -> c) results in
      Table.add_row table
        [
          mode_name mode;
          string_of_int (List.length seeds);
          string_of_int views;
          Table.cell_ms lat50;
          Table.cell_ms lat95;
          Table.cell_ms (float_of_int max_gap);
          string_of_bool consistent;
        ])
    [ Undisturbed; Lost_to_successor; Lost_to_all ];
  Table.note table
    "lost-to-successor must show 0 view changes (wrong-suspicion masks the \
     alarm); lost-to-everyone may legitimately exclude and re-admit the \
     live member (2 view changes per run)";
  [ table ]
