let handler_work = ref 0

let handler payload =
  (* a small, fixed amount of work per event *)
  handler_work := !handler_work + payload

let time_ns f =
  let t0 = Unix.gettimeofday () in
  f ();
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9

let event_based ~kinds ~events =
  let d = Eventloop.Dispatcher.create () in
  for k = 0 to kinds - 1 do
    Eventloop.Dispatcher.register d ~kind:k handler
  done;
  let ns =
    time_ns (fun () ->
        for i = 0 to events - 1 do
          Eventloop.Dispatcher.post d ~kind:(i mod kinds) i;
          (* dispatch as we go, like a live event loop *)
          if i mod 64 = 63 then ignore (Eventloop.Dispatcher.run_pending d)
        done;
        ignore (Eventloop.Dispatcher.run_pending d))
  in
  assert (Eventloop.Dispatcher.dispatched d = events);
  ns /. float_of_int events

let thread_based ~kinds ~events =
  let d = Eventloop.Threaded.create () in
  for k = 0 to kinds - 1 do
    Eventloop.Threaded.register d ~kind:k handler
  done;
  let ns =
    time_ns (fun () ->
        for i = 0 to events - 1 do
          Eventloop.Threaded.post d ~kind:(i mod kinds) i
        done;
        Eventloop.Threaded.drain d)
  in
  assert (Eventloop.Threaded.dispatched d = events);
  Eventloop.Threaded.shutdown d;
  ns /. float_of_int events

let run ?(quick = false) () =
  let events = if quick then 20_000 else 200_000 in
  let table =
    Table.create ~title:"E6: event-based vs thread-based dispatch"
      ~columns:
        [ "event kinds"; "events"; "event-based ns/ev"; "threads ns/ev"; "thread/event ratio" ]
  in
  List.iter
    (fun kinds ->
      let ev = event_based ~kinds ~events in
      let th = thread_based ~kinds ~events in
      Table.add_row table
        [
          string_of_int kinds;
          string_of_int events;
          Table.cell_f ev;
          Table.cell_f th;
          Table.cell_f (th /. ev);
        ])
    (if quick then [ 16 ] else [ 4; 16; 64 ]);
  Table.note table
    "thread version: one worker thread per event kind, serialized by a \
     handover token as in the paper's rejected design";
  [ table ]
