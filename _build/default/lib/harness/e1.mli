(** E1 — Failure-free message overhead.

    Paper claim (Sections 1, 4.1): "this protocol does not cause any
    extra messages to be exchanged during failure-free periods" — the
    broadcast protocol's decision messages double as the membership
    heartbeat. The table counts datagrams per second during a
    failure-free window for the timewheel service (split into
    membership-specific kinds and broadcast kinds) and for the
    conventional all-to-all heartbeat baseline at the same surveillance
    period D. Expected shape: membership-specific traffic is exactly 0;
    the heartbeat baseline sends ~N times more datagrams. *)

val run : ?quick:bool -> unit -> Table.t list
