open Tasim
open Timewheel

let token_ring_counters ~n ~seed ~settle ~window =
  let cfg = Baseline.Token_ring.default_config ~n in
  let engine_config = { Engine.default_config with Engine.seed } in
  let engine = Engine.create engine_config ~n in
  Engine.classify engine Baseline.Token_ring.kind_of_msg;
  let automaton = Baseline.Token_ring.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  Engine.run engine ~until:settle;
  let before = Stats.counters (Engine.stats engine) in
  Engine.run engine ~until:(Time.add settle window);
  let after = Stats.counters (Engine.stats engine) in
  Run.counters_diff ~before ~after

let heartbeat_counters ~n ~d ~seed ~settle ~window =
  let cfg = { (Baseline.Heartbeat.default_config ~n) with period = d } in
  let engine_config = { Engine.default_config with Engine.seed } in
  let engine = Engine.create engine_config ~n in
  Engine.classify engine Baseline.Heartbeat.kind_of_msg;
  let automaton = Baseline.Heartbeat.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  Engine.run engine ~until:settle;
  let before = Stats.counters (Engine.stats engine) in
  Engine.run engine ~until:(Time.add settle window);
  let after = Stats.counters (Engine.stats engine) in
  Run.counters_diff ~before ~after

let run ?(quick = false) () =
  let ns = if quick then [ 3; 5 ] else [ 3; 5; 7; 9; 13 ] in
  let window = Time.of_sec (if quick then 3 else 10) in
  let table =
    Table.create ~title:"E1: failure-free datagrams per second"
      ~columns:
        [
          "N";
          "tw total/s";
          "tw decision/s";
          "tw membership/s";
          "hb total/s";
          "tr total/s";
          "hb/tw ratio";
        ]
  in
  List.iter
    (fun n ->
      let params = Params.make ~n () in
      let svc = Run.service ~seed:7 ~n () in
      let svc = Run.settle svc in
      let before = Run.counters_snapshot svc in
      Service.run svc ~until:(Time.add (Service.now svc) window);
      let after = Run.counters_snapshot svc in
      let diff = Run.counters_diff ~before ~after in
      let secs = Time.to_sec_f window in
      let tw_decision =
        float_of_int (Run.sent_matching diff ~prefixes:[ "decision" ]) /. secs
      in
      let tw_membership =
        float_of_int
          (Run.sent_matching diff
             ~prefixes:
               [ "join"; "no-decision"; "reconfiguration"; "state-transfer" ])
        /. secs
      in
      let tw_total =
        float_of_int (Run.sent_matching diff ~prefixes:[ "" ]) /. secs
      in
      let hb =
        heartbeat_counters ~n ~d:params.Params.d ~seed:7
          ~settle:(Time.of_sec 1) ~window
      in
      let hb_total =
        float_of_int (Run.sent_matching hb ~prefixes:[ "" ]) /. secs
      in
      let tr =
        token_ring_counters ~n ~seed:7 ~settle:(Time.of_sec 1) ~window
      in
      let tr_total =
        float_of_int (Run.sent_matching tr ~prefixes:[ "" ]) /. secs
      in
      Table.add_row table
        [
          string_of_int n;
          Table.cell_f tw_total;
          Table.cell_f tw_decision;
          Table.cell_f tw_membership;
          Table.cell_f hb_total;
          Table.cell_f tr_total;
          Table.cell_f (hb_total /. tw_total);
        ])
    ns;
  Table.note table
    "membership/s counts join, no-decision, reconfiguration and \
     state-transfer datagrams: the paper's zero-overhead claim";
  Table.note table
    "heartbeat baseline beats every D (same surveillance latency class)";
  Table.note table
    "tr = Totem-style token ring: one unicast per 10ms hold,      N-independent, but detection needs a full token-circulation timeout";
  [ table ]
