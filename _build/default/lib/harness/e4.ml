open Tasim
open Timewheel

type pick = Spread | Decider_and_successor

let pick_name = function
  | Spread -> "spread"
  | Decider_and_successor -> "decider+succ"

(* Returns the crash-to-agreed-view duration in microseconds, or None
   when no new group formed within the horizon, plus whether survivor
   logs stayed consistent. *)
let one_run ~n ~f ~seed ~pick =
  let svc = Run.service ~seed ~n () in
  let watcher = Run.watch_views svc in
  let svc = Run.settle svc in
  let engine = Service.engine svc in
  let fault_at = Time.add (Service.now svc) (Time.of_sec 1) in
  let victims = ref Proc_set.empty in
  Engine.at engine fault_at (fun () ->
      let decider =
        match
          List.find_opt
            (fun id ->
              match Engine.state_of engine id with
              | Some s -> Member.is_decider s
              | None -> false)
            (Proc_id.all ~n)
        with
        | Some d -> Proc_id.to_int d
        | None -> 0
      in
      let targets =
        match pick with
        | Decider_and_successor ->
          List.init f (fun i -> Proc_id.of_int ((decider + i) mod n))
        | Spread ->
          List.init f (fun i ->
              Proc_id.of_int ((decider + 1 + (i * (n / f))) mod n))
      in
      victims := Proc_set.of_list targets;
      List.iter (fun p -> Engine.crash_at engine (Engine.now engine) p) targets);
  Service.run svc ~until:(Time.add fault_at (Time.of_sec 10));
  let change = Run.measure_exclusion watcher svc ~fault_at ~victims:!victims in
  let duration =
    Option.map
      (fun gone -> float_of_int (Time.sub gone fault_at))
      change.Run.victim_gone
  in
  (duration, Run.survivors_consistent svc)

let run ?(quick = false) () =
  let cases =
    if quick then [ (5, 2, Spread) ]
    else
      [
        (5, 2, Spread);
        (5, 2, Decider_and_successor);
        (7, 2, Spread);
        (7, 3, Spread);
        (7, 3, Decider_and_successor);
        (9, 3, Spread);
        (9, 4, Spread);
      ]
  in
  let seeds = if quick then [ 31; 32 ] else [ 31; 32; 33; 34; 35 ] in
  let table =
    Table.create ~title:"E4: multi-failure reconfiguration latency"
      ~columns:
        [
          "N";
          "f";
          "victims";
          "runs ok";
          "recover mean";
          "recover p95";
          "cycles mean";
          "consistent";
        ]
  in
  List.iter
    (fun (n, f, pick) ->
      let params = Params.make ~n () in
      let cycle_us = float_of_int (Params.cycle params) in
      let results = List.map (fun seed -> one_run ~n ~f ~seed ~pick) seeds in
      let durations = List.filter_map fst results in
      let consistent = List.for_all snd results in
      let oks = List.length durations in
      let cells =
        match Stats.summarize (Array.of_list durations) with
        | Some s ->
          [
            Table.cell_ms s.Stats.mean;
            Table.cell_ms s.Stats.p95;
            Table.cell_f (s.Stats.mean /. cycle_us);
          ]
        | None -> [ "-"; "-"; "-" ]
      in
      Table.add_row table
        ([
           string_of_int n;
           string_of_int f;
           pick_name pick;
           Fmt.str "%d/%d" oks (List.length seeds);
         ]
        @ cells
        @ [ string_of_bool consistent ]))
    cases;
  Table.note table
    "paper: a new decider is typically elected in two rounds (~2 cycles) \
     after the n-failure abstention of N-1 slots";
  [ table ]
