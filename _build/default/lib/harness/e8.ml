open Tasim
open Broadcast

let one_semantics ~seed ~semantics ~updates =
  let n = 5 in
  let cfg = Protocol.default_config in
  let engine_config = { Engine.default_config with Engine.seed } in
  let engine = Engine.create engine_config ~n in
  Engine.classify engine Protocol.kind_of_msg;
  let submit_times : (Proposal.id, Time.t) Hashtbl.t = Hashtbl.create 64 in
  let deliveries : (Proposal.id, (Proc_id.t * Time.t) list) Hashtbl.t =
    Hashtbl.create 64
  in
  let stable_times : (Proposal.id, Time.t) Hashtbl.t = Hashtbl.create 64 in
  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Protocol.Delivered { proposal; _ } ->
        let id = proposal.Proposal.id in
        let prev = try Hashtbl.find deliveries id with Not_found -> [] in
        Hashtbl.replace deliveries id ((proc, at) :: prev)
      | Protocol.Stable { proposal_id; _ } ->
        if not (Hashtbl.mem stable_times proposal_id) then
          Hashtbl.add stable_times proposal_id at
      | Protocol.Became_decider -> ());
  let automaton = Protocol.automaton cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  (* submissions every 25 ms from rotating proposers *)
  let seqs = Array.make n 0 in
  for i = 0 to updates - 1 do
    let origin = i mod n in
    let at = Time.add (Time.of_ms 100) (Time.of_ms (25 * i)) in
    let id = { Proposal.origin = Proc_id.of_int origin; seq = seqs.(origin) } in
    seqs.(origin) <- seqs.(origin) + 1;
    Hashtbl.add submit_times id at;
    Engine.inject_at engine at
      (Proc_id.of_int origin)
      (Protocol.Submit { semantics; payload = i })
  done;
  Engine.run engine
    ~until:(Time.add (Time.of_ms (100 + (25 * updates))) (Time.of_sec 3));
  (* measurements *)
  let all_lat = ref [] in
  let stab_lat = ref [] in
  let complete = ref 0 in
  Hashtbl.iter
    (fun id submit ->
      match Hashtbl.find_opt deliveries id with
      | Some ds when List.length ds = n ->
        incr complete;
        let last =
          List.fold_left (fun acc (_, at) -> Time.max acc at) Time.zero ds
        in
        all_lat := float_of_int (Time.sub last submit) :: !all_lat;
        (match Hashtbl.find_opt stable_times id with
        | Some st ->
          stab_lat := float_of_int (Time.sub st submit) :: !stab_lat
        | None -> ())
      | Some _ | None -> ())
    submit_times;
  ( !complete,
    updates,
    Stats.summarize (Array.of_list !all_lat),
    Stats.summarize (Array.of_list !stab_lat) )

let run ?(quick = false) () =
  let updates = if quick then 20 else 80 in
  let table =
    Table.create
      ~title:"E8: broadcast semantics cost (N=5, failure-free, D=30ms)"
      ~columns:
        [
          "semantics";
          "delivered everywhere";
          "deliver p50";
          "deliver p95";
          "stable p50";
        ]
  in
  List.iter
    (fun semantics ->
      let complete, total, lat, stab =
        one_semantics ~seed:61 ~semantics ~updates
      in
      let cell = function
        | Some s -> Table.cell_ms s.Stats.p50
        | None -> "-"
      in
      let cell95 = function
        | Some s -> Table.cell_ms s.Stats.p95
        | None -> "-"
      in
      Table.add_row table
        [
          Fmt.str "%a" Semantics.pp semantics;
          Fmt.str "%d/%d" complete total;
          cell lat;
          cell95 lat;
          cell stab;
        ])
    Semantics.all;
  Table.note table
    "delivery at ALL five members; stability = acknowledged by every \
     member via the rotating decision's oal (~one cycle = 150ms)";
  [ table ]
