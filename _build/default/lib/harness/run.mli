(** Shared experiment plumbing: building services, counter windows and
    post-hoc trace analysis. *)

open Tasim
open Timewheel

type svc = (int, int list) Service.t
(** The experiment payload is an [int]; the replicated application state
    is the list of applied updates (newest first), which doubles as a
    consistency probe. *)

val service :
  ?seed:int ->
  ?omission:float ->
  ?late:float ->
  ?slow:float ->
  ?params:Timewheel.Params.t ->
  n:int ->
  unit ->
  svc
(** [late] is the probability of a message performance failure (delay
    beyond delta); [slow] the probability of a scheduling performance
    failure (reaction beyond sigma). *)

val settle : svc -> svc
(** Run until the initial group has formed plus one cycle of margin;
    raises [Failure] when it has not formed within 20 cycles. *)

val counters_snapshot : svc -> (string * int) list
val counters_diff :
  before:(string * int) list -> after:(string * int) list -> (string * int) list

val sent_matching : (string * int) list -> prefixes:string list -> int
(** Sum of ["sent:<kind>"] counters whose kind has one of the given
    prefixes. *)

(** {1 View-change measurement} *)

type view_change = {
  victim_gone : Time.t option;
      (** earliest time every surviving member had installed a view
          excluding the victims *)
  suspicion : Time.t option;  (** first suspicion observation *)
  views : int;  (** view installations after the fault *)
}

type watcher

val watch_views : svc -> watcher
(** Install the probes [measure_exclusion] consumes. Call before
    running. *)

val measure_exclusion :
  watcher -> svc -> fault_at:Time.t -> victims:Proc_set.t -> view_change
(** Post-hoc: find when all up survivors agreed on a view excluding the
    victims. *)

val survivors_consistent : svc -> bool
(** All up members that have delivered anything hold prefix-consistent
    application logs (one is a prefix of the other). *)
