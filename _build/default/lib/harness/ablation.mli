(** A — Ablations of the protocol's design choices (DESIGN.md §4).

    + {b A1: the D trade-off.} D bounds both the failure-free message
      rate (one decision per D) and the detection latency (2D, spread
      over a cycle of N·D for non-decider members). Sweeping D exposes
      the knob the paper leaves to deployment.
    + {b A2: eager vs paced decisions.} A decider may hold its decision
      for the full D (paced rotation, minimal messages) or send as soon
      as it takes the role (eager — the rotation spins at network
      speed): ordering latency against message cost.
    + {b A3: the single-failure fast path.} The paper's headline
      optimization is the no-decision ring. Disabling it routes every
      suspicion through the slotted reconfiguration election; the
      recovery latency gap is the value of the optimization. *)

val run : ?quick:bool -> unit -> Table.t list
