(** E8 — Broadcast semantics cost matrix.

    The timewheel service supports three ordering and three atomicity
    semantics simultaneously (paper, Section 1); stronger semantics
    trade delivery latency for guarantees. Over the standalone broadcast
    substrate (static group, failure-free — the regime the semantics
    are priced in), each of the nine combinations carries a stream of
    updates; we report the time from proposal to delivery at all
    members and the time to stability. Expected shape: weak < strong <
    strict in latency; unordered <= total; timed is dominated by its
    fixed delivery delay; stability always takes about one decider
    cycle. *)

val run : ?quick:bool -> unit -> Table.t list
