(** Named fault scenarios.

    One catalogue of canned fault injections, shared by the
    [timewheel-sim] CLI, the integration tests and ad-hoc exploration.
    A scenario is a function that arms its faults on a settled service
    relative to a base time; the service then just runs. *)

open Tasim

type t = {
  name : string;
  doc : string;
  expected_outcome : string;
      (** one line describing what a correct run looks like *)
  inject : Run.svc -> Time.t -> unit;
      (** arm the scenario's faults; the base time is "now", i.e. just
          after group formation *)
}

val all : t list
val find : string -> t option

val names : unit -> string list

(** The catalogue:

    - ["steady"]: failure-free run.
    - ["crash"]: crash one member 1s in (single-failure election).
    - ["crash-recover"]: crash one member, recover it 2s later (join +
      state transfer).
    - ["crash-decider"]: crash whoever holds the decider role 1s in.
    - ["double-crash"]: crash two members simultaneously
      (reconfiguration election).
    - ["partition"]: majority/minority split for 3s, then heal.
    - ["false-suspicion"]: drop one decision to the decider's successor
      only (masked alarm, no membership change).
    - ["lossy"]: 5% message omission throughout.
    - ["churn"]: a rolling wave of crash/recover across the team. *)
