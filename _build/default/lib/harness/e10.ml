open Tasim
open Timewheel
open Broadcast

type outcome = {
  late_rejected : int;
  suspicions : int;
  exclusions : int;  (** View_installed events shrinking the group *)
  reconvergences : bool;  (** full group agreed at the end *)
  consistent : bool;
}

let one_run ~seed ~late ~slow ~duration =
  let n = 5 in
  let svc = Run.service ~seed ~late ~slow ~n () in
  let suspicions = ref 0 in
  let late_rejected = ref 0 in
  let exclusions = ref 0 in
  let last_card = ref n in
  Service.on_obs svc (fun _at _proc obs ->
      match obs with
      | Member.Suspected _ -> incr suspicions
      | Member.Late_rejected _ -> incr late_rejected
      | _ -> ());
  Service.on_view svc (fun _proc v ->
      let card = Proc_set.cardinal v.Service.group in
      if card < !last_card then incr exclusions;
      last_card := card);
  let svc = Run.settle svc in
  let t0 = Service.now svc in
  (* steady workload so deliveries are observable *)
  let updates = Time.to_us duration / Time.to_us (Time.of_ms 50) in
  for i = 0 to updates - 1 do
    Service.submit_at svc
      (Time.add t0 (Time.of_ms (50 * i)))
      (Proc_id.of_int (i mod n))
      ~semantics:Semantics.{ ordering = Total; atomicity = Weak }
      i
  done;
  Service.run svc ~until:(Time.add t0 duration);
  (* give re-admissions time to complete after the workload window *)
  Service.run svc ~until:(Time.add (Service.now svc) (Time.of_sec 4));
  let reconvergences =
    match Service.agreed_view svc with
    | Some v -> Proc_set.cardinal v.Service.group = n
    | None -> false
  in
  {
    late_rejected = !late_rejected;
    suspicions = !suspicions;
    exclusions = !exclusions;
    reconvergences;
    consistent = Run.survivors_consistent svc;
  }

let run ?(quick = false) () =
  let duration = Time.of_sec (if quick then 4 else 10) in
  let seeds = if quick then [ 101 ] else [ 101; 102; 103 ] in
  let table =
    Table.create
      ~title:
        "E10: performance failures (N=5, steady workload, no crashes)"
      ~columns:
        [
          "late prob";
          "slow prob";
          "late ctl msgs rejected";
          "suspicions";
          "exclusions of live members";
          "reconverged";
          "logs consistent";
        ]
  in
  let cases =
    if quick then [ (0.0, 0.0); (0.05, 0.0) ]
    else
      [
        (0.0, 0.0);
        (0.01, 0.0);
        (0.05, 0.0);
        (0.10, 0.0);
        (0.0, 0.05);
        (0.05, 0.05);
      ]
  in
  List.iter
    (fun (late, slow) ->
      let outcomes = List.map (fun seed -> one_run ~seed ~late ~slow ~duration) seeds in
      let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
      Table.add_row table
        [
          Table.cell_f late;
          Table.cell_f slow;
          string_of_int (sum (fun o -> o.late_rejected));
          string_of_int (sum (fun o -> o.suspicions));
          string_of_int (sum (fun o -> o.exclusions));
          Fmt.str "%d/%d"
            (List.length (List.filter (fun o -> o.reconvergences) outcomes))
            (List.length outcomes);
          string_of_bool (List.for_all (fun o -> o.consistent) outcomes);
        ])
    cases;
  Table.note table
    "performance failures are the timed asynchronous model's signature \
     fault: suspicions rise with lateness, most are masked \
     (wrong-suspicion), exclusions of live members are permitted by the \
     model and always heal by re-join; consistency is never violated";
  [ table ]
