(** E5 — Timed specification and Figure 2 conformance.

    Two artifacts:

    + A behavioural regeneration of the paper's Figure 2: the
      group-creator transition function is driven through every (state,
      event-class) pair and the resulting state matrix is printed —
      matching the published diagram edge for edge.
    + A randomized check of the Section 3 properties: across seeds with
      random crash/recovery/loss schedules, (2) any two up-to-date
      groups at the same time are identical, (5) every installed group
      holds a majority, and (1)/(3)/(4) all sigma-stable survivors
      converge to an up-to-date common group within a bounded Delta of
      fault quiescence — the maximum observed Delta is reported. *)

val run : ?quick:bool -> unit -> Table.t list

val transition_matrix : unit -> Table.t
(** The Fig. 2 matrix alone (also used by the conformance test). *)
