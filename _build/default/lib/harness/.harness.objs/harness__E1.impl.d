lib/harness/e1.ml: Baseline Engine List Params Proc_id Run Service Stats Table Tasim Time Timewheel
