lib/harness/e5.mli: Table
