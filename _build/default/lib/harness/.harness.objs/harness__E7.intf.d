lib/harness/e7.mli: Table
