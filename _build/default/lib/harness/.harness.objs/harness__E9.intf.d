lib/harness/e9.mli: Table
