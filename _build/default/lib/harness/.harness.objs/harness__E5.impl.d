lib/harness/e5.ml: Creator_state Engine Float Fmt Group_creator List Member Proc_id Proc_set Rng Run Service String Table Tasim Time Timewheel
