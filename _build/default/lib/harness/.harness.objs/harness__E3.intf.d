lib/harness/e3.mli: Table
