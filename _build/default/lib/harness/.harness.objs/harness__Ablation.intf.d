lib/harness/ablation.mli: Table
