lib/harness/e3.ml: Broadcast Control_msg Engine List Member Net Proc_id Proc_set Proposal Run Semantics Service Stats Table Tasim Time Timewheel
