lib/harness/e9.ml: Array Clocksync Engine Fmt Full_stack Hardware_clock List Member Net Option Params Proc_id Proc_set Rng Run Stats Table Tasim Time Timewheel
