lib/harness/e7.ml: Array Clocksync Engine Fmt Hardware_clock List Net Proc_id Rng Table Tasim Time
