lib/harness/e1.mli: Table
