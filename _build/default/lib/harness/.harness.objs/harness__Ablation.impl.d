lib/harness/ablation.ml: Array Broadcast Fmt List Option Params Proc_id Proc_set Proposal Run Semantics Service Stats Table Tasim Time Timewheel
