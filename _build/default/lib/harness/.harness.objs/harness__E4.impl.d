lib/harness/e4.ml: Array Engine Fmt List Member Option Params Proc_id Proc_set Run Service Stats Table Tasim Time Timewheel
