lib/harness/e6.mli: Table
