lib/harness/e10.ml: Broadcast Fmt List Member Proc_id Proc_set Run Semantics Service Table Tasim Time Timewheel
