lib/harness/e4.mli: Table
