lib/harness/e8.mli: Table
