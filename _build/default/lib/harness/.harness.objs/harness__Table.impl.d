lib/harness/table.ml: Buffer Float Fmt List String
