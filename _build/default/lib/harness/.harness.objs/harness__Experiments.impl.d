lib/harness/experiments.ml: Ablation E1 E10 E2 E3 E4 E5 E6 E7 E8 E9 Fmt List Table
