lib/harness/e8.ml: Array Broadcast Engine Fmt Hashtbl List Proc_id Proposal Protocol Semantics Stats Table Tasim Time
