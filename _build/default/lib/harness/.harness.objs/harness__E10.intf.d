lib/harness/e10.mli: Table
