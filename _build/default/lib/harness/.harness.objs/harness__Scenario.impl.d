lib/harness/scenario.ml: Control_msg Engine List Member Net Option Params Proc_id Proc_set Rng Run Service Tasim Time Timewheel
