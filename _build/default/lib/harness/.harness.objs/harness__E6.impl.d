lib/harness/e6.ml: Eventloop List Table Unix
