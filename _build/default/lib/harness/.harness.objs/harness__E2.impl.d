lib/harness/e2.ml: Array Baseline Engine List Member Option Proc_id Proc_set Run Service Stats Table Tasim Time Timewheel
