lib/harness/run.ml: Engine List Member Net Option Params Proc_id Proc_set Service Stats String Tasim Time Timewheel
