lib/harness/e2.mli: Table
