lib/harness/table.mli:
