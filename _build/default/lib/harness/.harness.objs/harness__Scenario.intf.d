lib/harness/scenario.mli: Run Tasim Time
