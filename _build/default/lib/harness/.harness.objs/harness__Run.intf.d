lib/harness/run.mli: Proc_set Service Tasim Time Timewheel
