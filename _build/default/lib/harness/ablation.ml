open Tasim
open Timewheel
open Broadcast

(* ------------------------------------------------------------------ *)
(* shared machinery: one crash-recovery measurement for given params *)

let crash_recovery ~params ~seed =
  let svc = Run.service ~seed ~params ~n:params.Params.n () in
  let watcher = Run.watch_views svc in
  let svc = Run.settle svc in
  let fault_at = Time.add (Service.now svc) (Time.of_sec 1) in
  let victim = Proc_id.of_int 2 in
  Service.crash_at svc fault_at victim;
  Service.run svc ~until:(Time.add fault_at (Time.of_sec 8));
  let change =
    Run.measure_exclusion watcher svc ~fault_at
      ~victims:(Proc_set.singleton victim)
  in
  ( Option.map (fun t -> float_of_int (Time.sub t fault_at)) change.Run.suspicion,
    Option.map
      (fun t -> float_of_int (Time.sub t fault_at))
      change.Run.victim_gone )

let failure_free_rate ~params ~seed ~window =
  let svc = Run.service ~seed ~params ~n:params.Params.n () in
  let svc = Run.settle svc in
  let before = Run.counters_snapshot svc in
  Service.run svc ~until:(Time.add (Service.now svc) window);
  let after = Run.counters_snapshot svc in
  let diff = Run.counters_diff ~before ~after in
  float_of_int (Run.sent_matching diff ~prefixes:[ "" ])
  /. Time.to_sec_f window

(* ------------------------------------------------------------------ *)
(* A1: sweep D *)

let a1 ~quick =
  let table =
    Table.create
      ~title:"A1: the D trade-off (N=5, crash an ordinary member)"
      ~columns:
        [ "D"; "msgs/s failure-free"; "detect mean"; "recover mean" ]
  in
  let ds =
    if quick then [ 30 ] else [ 10; 20; 30; 50; 100 ]
  in
  let seeds = if quick then [ 81 ] else [ 81; 82; 83 ] in
  List.iter
    (fun d_ms ->
      let params = Params.make ~d:(Time.of_ms d_ms) ~n:5 () in
      let rate = failure_free_rate ~params ~seed:81 ~window:(Time.of_sec 5) in
      let detections, recoveries =
        List.fold_left
          (fun (ds_, rs) seed ->
            match crash_recovery ~params ~seed with
            | Some d, Some r -> (d :: ds_, r :: rs)
            | _ -> (ds_, rs))
          ([], []) seeds
      in
      let mean = function
        | [] -> nan
        | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
      in
      Table.add_row table
        [
          Fmt.str "%dms" d_ms;
          Table.cell_f rate;
          Table.cell_ms (mean detections);
          Table.cell_ms (mean recoveries);
        ])
    ds;
  Table.note table
    "smaller D: more decision traffic, faster detection — the deployment \
     knob the paper leaves open";
  table

(* ------------------------------------------------------------------ *)
(* A2: eager vs paced decisions *)

let a2 ~quick =
  let table =
    Table.create ~title:"A2: eager vs paced decision rotation (N=5)"
      ~columns:
        [ "mode"; "msgs/s failure-free"; "ordering latency p50"; "p95" ]
  in
  let updates = if quick then 40 else 150 in
  List.iter
    (fun eager ->
      let params = Params.make ~eager_decisions:eager ~n:5 () in
      let svc = Run.service ~seed:91 ~params ~n:5 () in
      let stats = Stats.create () in
      Service.on_delivery svc (fun _proc ~at proposal ~ordinal:_ ->
          Stats.record_time stats "lat" (Time.sub at proposal.Proposal.send_ts));
      let svc = Run.settle svc in
      let before = Run.counters_snapshot svc in
      let t0 = Service.now svc in
      for i = 0 to updates - 1 do
        Service.submit_at svc
          (Time.add t0 (Time.of_ms (20 * i)))
          (Proc_id.of_int (i mod 5))
          ~semantics:Semantics.{ ordering = Total; atomicity = Weak }
          i
      done;
      let window = Time.of_ms ((20 * updates) + 2000) in
      Service.run svc ~until:(Time.add t0 window);
      let after = Run.counters_snapshot svc in
      let rate =
        float_of_int
          (Run.sent_matching (Run.counters_diff ~before ~after) ~prefixes:[ "" ])
        /. Time.to_sec_f window
      in
      match Stats.summary_of stats "lat" with
      | Some s ->
        Table.add_row table
          [
            (if eager then "eager" else "paced (D)");
            Table.cell_f rate;
            Table.cell_ms s.Stats.p50;
            Table.cell_ms s.Stats.p95;
          ]
      | None -> ())
    [ false; true ];
  Table.note table
    "eager rotation orders updates at network speed but multiplies the \
     failure-free message rate — the paper's paced design is the \
     low-overhead point";
  table

(* ------------------------------------------------------------------ *)
(* A3: single-failure fast path on/off *)

let a3 ~quick =
  let table =
    Table.create
      ~title:"A3: value of the single-failure election (N=5, one crash)"
      ~columns:[ "fast path"; "detect mean"; "recover mean"; "recover p95" ]
  in
  let seeds = if quick then [ 95 ] else [ 95; 96; 97; 98 ] in
  List.iter
    (fun enabled ->
      let params = Params.make ~single_failure_election:enabled ~n:5 () in
      let recoveries, detections =
        List.fold_left
          (fun (rs, ds) seed ->
            match crash_recovery ~params ~seed with
            | Some d, Some r -> (r :: rs, d :: ds)
            | _ -> (rs, ds))
          ([], []) seeds
      in
      match
        ( Stats.summarize (Array.of_list detections),
          Stats.summarize (Array.of_list recoveries) )
      with
      | Some d, Some r ->
        Table.add_row table
          [
            (if enabled then "no-decision ring (paper)"
             else "disabled (reconfiguration only)");
            Table.cell_ms d.Stats.mean;
            Table.cell_ms r.Stats.mean;
            Table.cell_ms r.Stats.p95;
          ]
      | _ ->
        Table.add_row table
          [
            (if enabled then "no-decision ring (paper)" else "disabled");
            "-"; "-"; "-";
          ])
    [ true; false ];
  Table.note table
    "the ring election is the paper's optimization for the common case: \
     without it every single crash pays the ~2-cycle slotted election";
  table

let run ?(quick = false) () = [ a1 ~quick; a2 ~quick; a3 ~quick ]
