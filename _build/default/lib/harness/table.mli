(** Plain-text result tables.

    Every experiment renders one or more tables in the shape the paper's
    evaluation would have reported them; EXPERIMENTS.md quotes these
    verbatim. *)

type t

val create : title:string -> columns:string list -> t
val add_row : t -> string list -> unit
val add_rows : t -> string list list -> unit

val cell_f : float -> string
(** Format a float with sensible precision. *)

val cell_ms : float -> string
(** Format a microseconds value as milliseconds. *)

val note : t -> string -> unit
(** Attach a footnote line printed under the table. *)

val render : t -> string
val print : t -> unit
