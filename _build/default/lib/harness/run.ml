open Tasim
open Timewheel

type svc = (int, int list) Service.t

type watcher = {
  mutable suspicions : (Time.t * Proc_id.t * Proc_id.t) list; (* at, by, suspect *)
}

let service ?(seed = 1) ?(omission = 0.0) ?(late = 0.0) ?(slow = 0.0) ?params
    ~n () =
  let params =
    match params with Some p -> p | None -> Params.make ~n ()
  in
  let net =
    {
      Net.default_config with
      Net.delta = params.Params.delta;
      omission_prob = omission;
      late_prob = late;
      late_delay_max = Time.mul params.Params.delta 5;
    }
  in
  let engine_config =
    {
      Engine.default_config with
      Engine.net;
      seed;
      slow_prob = slow;
      slow_delay_max = Time.mul params.Params.sigma 20;
    }
  in
  Service.create ~engine_config ~clocks:Service.Oracle
    ~apply:(fun acc v -> v :: acc)
    ~initial_app:[] params

let settle (svc : svc) =
  let params = Service.params svc in
  let cycle = Params.cycle params in
  let rec wait tries =
    if tries = 0 then failwith "Run.settle: initial group did not form";
    Service.run svc ~until:(Time.add (Service.now svc) cycle);
    match Service.agreed_view svc with
    | Some v when Proc_set.cardinal v.Service.group = params.Params.n ->
      (* one more cycle of margin so rotation is well underway *)
      Service.run svc ~until:(Time.add (Service.now svc) cycle);
      svc
    | Some _ | None -> wait (tries - 1)
  in
  wait 20

let counters_snapshot (svc : svc) = Stats.counters (Service.stats svc)

let counters_diff ~before ~after =
  List.filter_map
    (fun (name, v) ->
      let prev = try List.assoc name before with Not_found -> 0 in
      if v - prev <> 0 then Some (name, v - prev) else None)
    after

let sent_matching counters ~prefixes =
  List.fold_left
    (fun acc (name, v) ->
      match String.index_opt name ':' with
      | Some i when String.sub name 0 i = "sent" ->
        let kind = String.sub name (i + 1) (String.length name - i - 1) in
        if List.exists (fun p -> String.length kind >= String.length p
                                 && String.sub kind 0 (String.length p) = p)
             prefixes
        then acc + v
        else acc
      | Some _ | None -> acc)
    0 counters

type view_change = {
  victim_gone : Time.t option;
  suspicion : Time.t option;
  views : int;
}

let watch_views (svc : svc) =
  let probe = { suspicions = [] } in
  Service.on_obs svc (fun at proc obs ->
      match obs with
      | Member.Suspected { suspect } ->
        probe.suspicions <- (at, proc, suspect) :: probe.suspicions
      | _ -> ());
  probe

let measure_exclusion probe (svc : svc) ~fault_at ~victims =
  let n = (Service.params svc).Params.n in
  let survivors =
    List.filter
      (fun id -> not (Proc_set.mem id victims))
      (Proc_id.all ~n)
  in
  let views = Service.views_installed svc in
  let after_fault =
    List.filter (fun (_, v) -> Time.compare v.Service.at fault_at >= 0) views
  in
  (* for each survivor, the first time it installed a view excluding all
     victims (and containing itself) *)
  let first_good p =
    List.find_map
      (fun (proc, v) ->
        if
          Proc_id.equal proc p
          && Proc_set.is_empty (Proc_set.inter v.Service.group victims)
          && Proc_set.mem p v.Service.group
        then Some v.Service.at
        else None)
      after_fault
  in
  let times = List.map first_good survivors in
  let victim_gone =
    if List.for_all Option.is_some times then
      Some
        (List.fold_left
           (fun acc t -> Time.max acc (Option.get t))
           Time.zero times)
    else None
  in
  let suspicion =
    List.fold_left
      (fun acc (at, _, suspect) ->
        if Time.compare at fault_at >= 0 && Proc_set.mem suspect victims then
          match acc with
          | None -> Some at
          | Some t -> Some (Time.min t at)
        else acc)
      None probe.suspicions
  in
  { victim_gone; suspicion; views = List.length after_fault }

let survivors_consistent (svc : svc) =
  let n = (Service.params svc).Params.n in
  let logs =
    List.filter_map
      (fun id ->
        match Service.app_state svc id with
        | Some l when l <> [] -> Some (List.rev l)
        | Some _ | None -> None)
      (Proc_id.all ~n)
  in
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && is_prefix a' b'
    | _ :: _, [] -> false
  in
  let compatible a b = is_prefix a b || is_prefix b a in
  let rec all_pairs = function
    | [] -> true
    | x :: rest -> List.for_all (compatible x) rest && all_pairs rest
  in
  all_pairs logs
