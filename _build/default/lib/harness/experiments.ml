type t = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Table.t list;
}

let all =
  [
    { id = "e1"; title = "failure-free message overhead"; run = E1.run };
    { id = "e2"; title = "single-failure recovery latency"; run = E2.run };
    { id = "e3"; title = "false-suspicion masking"; run = E3.run };
    { id = "e4"; title = "multi-failure reconfiguration"; run = E4.run };
    { id = "e5"; title = "timed spec + Fig.2 conformance"; run = E5.run };
    { id = "e6"; title = "event-based vs thread-based dispatch"; run = E6.run };
    { id = "e7"; title = "fail-aware clock synchronization"; run = E7.run };
    { id = "e8"; title = "broadcast semantics cost"; run = E8.run };
    { id = "e9"; title = "full Fig.1 stack over real clock sync"; run = E9.run };
    { id = "e10"; title = "performance failures"; run = E10.run };
    { id = "ablate"; title = "design-choice ablations (A1-A3)"; run = Ablation.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?quick () =
  List.iter
    (fun e ->
      Fmt.pr "@.=== %s: %s ===@.@." e.id e.title;
      List.iter Table.print (e.run ?quick ()))
    all
