(** Experiment registry: maps experiment ids to runners.

    Shared by [bench/main.exe] and the [timewheel-sim] CLI. *)

type t = {
  id : string;
  title : string;
  run : ?quick:bool -> unit -> Table.t list;
}

val all : t list
val find : string -> t option
val run_all : ?quick:bool -> unit -> unit
(** Run every experiment and print its tables to stdout. *)
