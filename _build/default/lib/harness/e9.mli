(** E9 — The full Figure 1 stack.

    All other membership experiments assume the clock synchronization
    service's interface via the oracle (the paper's own methodological
    stance). This experiment runs the real composition —
    [Timewheel.Full_stack]: membership + broadcast over the fail-aware
    clock synchronization protocol over raw drifting hardware clocks —
    and shows that the system behaves like the oracle-clock system:
    the group forms, a crashed member is excluded by the single-failure
    election in comparable time and re-admitted after recovery, under
    increasing message loss. The clock-synchronization substrate's own
    standing traffic is reported separately (the zero-overhead claim of
    E1 concerns membership messages; the paper's architecture runs clock
    sync as its own layer, Fig. 1). *)

val run : ?quick:bool -> unit -> Table.t list
