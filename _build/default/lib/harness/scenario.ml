open Tasim
open Timewheel

type t = {
  name : string;
  doc : string;
  expected_outcome : string;
  inject : Run.svc -> Time.t -> unit;
}

let pid = Proc_id.of_int

let crash_current_decider svc at =
  let engine = Service.engine svc in
  let n = (Service.params svc).Params.n in
  Engine.at engine at (fun () ->
      let decider =
        List.find_opt
          (fun p ->
            match Engine.state_of engine p with
            | Some s -> Member.is_decider s
            | None -> false)
          (Proc_id.all ~n)
      in
      let d = Option.value decider ~default:(pid 1) in
      Engine.crash_at engine (Engine.now engine) d)

let all =
  [
    {
      name = "steady";
      doc = "failure-free run";
      expected_outcome = "no membership change after formation";
      inject = (fun _svc _t -> ());
    };
    {
      name = "crash";
      doc = "crash one member 1s after formation";
      expected_outcome =
        "single-failure election excludes the victim within ~2D + a ring \
         round";
      inject =
        (fun svc t -> Service.crash_at svc (Time.add t (Time.of_sec 1)) (pid 2));
    };
    {
      name = "crash-recover";
      doc = "crash one member, recover it 2s later";
      expected_outcome = "exclusion, then re-admission via join + state transfer";
      inject =
        (fun svc t ->
          Service.crash_at svc (Time.add t (Time.of_sec 1)) (pid 2);
          Service.recover_at svc (Time.add t (Time.of_sec 3)) (pid 2));
    };
    {
      name = "crash-decider";
      doc = "crash whoever holds the decider role 1s after formation";
      expected_outcome = "fast detection (the decider's silence is noticed at once)";
      inject = (fun svc t -> crash_current_decider svc (Time.add t (Time.of_sec 1)));
    };
    {
      name = "double-crash";
      doc = "crash two members simultaneously (reconfiguration election)";
      expected_outcome = "slotted election forms the majority group in ~2 cycles";
      inject =
        (fun svc t ->
          Service.crash_at svc (Time.add t (Time.of_sec 1)) (pid 1);
          Service.crash_at svc (Time.add t (Time.of_sec 1)) (pid 3));
    };
    {
      name = "partition";
      doc = "majority/minority partition, healed after 3s";
      expected_outcome =
        "majority side keeps operating; minority knows it is out of date; \
         full group after heal";
      inject =
        (fun svc t ->
          let n = (Service.params svc).Params.n in
          let half = (n / 2) + 1 in
          let majority = Proc_set.of_list (List.init half pid) in
          let minority =
            Proc_set.of_list (List.init (n - half) (fun i -> pid (half + i)))
          in
          Service.partition_at svc
            (Time.add t (Time.of_sec 1))
            [ majority; minority ];
          Service.heal_at svc (Time.add t (Time.of_sec 4)));
    };
    {
      name = "false-suspicion";
      doc = "drop one decision to the decider's successor (masked alarm)";
      expected_outcome = "zero membership changes: wrong-suspicion masks the alarm";
      inject =
        (fun svc t ->
          let engine = Service.engine svc in
          let n = (Service.params svc).Params.n in
          Engine.at engine (Time.add t (Time.of_sec 1)) (fun () ->
              Net.add_filter (Engine.net engine) ~max_drops:1 ~name:"one-drop"
                (fun ~src ~dst msg ->
                  Control_msg.kind msg = "decision"
                  &&
                  match Engine.state_of engine src with
                  | Some s -> (
                    match Proc_set.successor_in (Member.group s) src ~n with
                    | Some next -> Proc_id.equal next dst
                    | None -> false)
                  | None -> false)));
    };
    {
      name = "lossy";
      doc = "5% message omission throughout";
      expected_outcome =
        "nack recovery keeps deliveries complete; occasional masked alarms";
      inject =
        (fun svc t ->
          let engine = Service.engine svc in
          let rng = Rng.create 97 in
          ignore t;
          Net.add_filter (Engine.net engine) ~name:"background-loss"
            (fun ~src:_ ~dst:_ _ -> Rng.bool rng 0.05));
    };
    {
      name = "churn";
      doc = "a rolling wave of crash/recover across the team";
      expected_outcome = "full group restored once the wave passes";
      inject =
        (fun svc t ->
          let n = (Service.params svc).Params.n in
          List.iteri
            (fun i p ->
              let down = Time.add t (Time.of_ms (1000 + (800 * i))) in
              let up = Time.add down (Time.of_ms 600) in
              Service.crash_at svc down p;
              Service.recover_at svc up p)
            (Proc_id.all ~n));
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all
let names () = List.map (fun s -> s.name) all
