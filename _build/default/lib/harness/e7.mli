(** E7 — Fail-aware clock synchronization validation.

    The membership protocol consumes the interface of the fail-aware
    clock synchronization service [15]: whenever a process claims to be
    synchronized, its clock deviates from any other synchronized clock
    by at most epsilon — and the process {e knows} when it cannot claim
    that. The real {!Clocksync.Protocol} runs over increasingly lossy
    networks; at sampling instants we measure the worst pairwise
    deviation among processes that claim synchronization and the
    fraction of time processes hold the claim. Expected shape: the
    deviation bound holds at every loss rate (fail-awareness trades
    availability, not correctness), while availability degrades with
    loss. *)

val run : ?quick:bool -> unit -> Table.t list
