open Tasim
open Timewheel

type sample = {
  n : int;
  role : string;
  detect_us : float;
  recover_us : float;
  nd_msgs : int;
}

(* Crash either the current decider or the member ring-farthest from it,
   chosen at fault time by a scripted action. *)
let one_run ~n ~seed ~crash_decider =
  let svc = Run.service ~seed ~n () in
  let watcher = Run.watch_views svc in
  let svc = Run.settle svc in
  let engine = Service.engine svc in
  let fault_at = Time.add (Service.now svc) (Time.of_sec 1) in
  let victim = ref None in
  Engine.at engine fault_at (fun () ->
      let decider =
        List.find_opt
          (fun id ->
            match Engine.state_of engine id with
            | Some s -> Member.is_decider s
            | None -> false)
          (Proc_id.all ~n)
      in
      let target =
        match (crash_decider, decider) with
        | true, Some d -> d
        | true, None -> Proc_id.of_int 0
        | false, Some d ->
          (* a member halfway around the ring from the decider *)
          Proc_id.of_int ((Proc_id.to_int d + (n / 2)) mod n)
        | false, None -> Proc_id.of_int 1
      in
      victim := Some target;
      Engine.crash_at engine (Engine.now engine) target);
  let before = Run.counters_snapshot svc in
  Service.run svc ~until:(Time.add fault_at (Time.of_sec 4));
  let after = Run.counters_snapshot svc in
  match !victim with
  | None -> None
  | Some v ->
    let change =
      Run.measure_exclusion watcher svc ~fault_at
        ~victims:(Proc_set.singleton v)
    in
    let nd_msgs =
      Run.sent_matching
        (Run.counters_diff ~before ~after)
        ~prefixes:[ "no-decision" ]
    in
    (match (change.Run.suspicion, change.Run.victim_gone) with
    | Some det, Some rec_ ->
      Some
        {
          n;
          role = (if crash_decider then "decider" else "member");
          detect_us = float_of_int (Time.sub det fault_at);
          recover_us = float_of_int (Time.sub rec_ fault_at);
          nd_msgs;
        }
    | _ -> None)

let heartbeat_run ~n ~seed =
  let cfg = Baseline.Heartbeat.default_config ~n in
  let engine_config = { Engine.default_config with Engine.seed } in
  let engine = Engine.create engine_config ~n in
  Engine.classify engine Baseline.Heartbeat.kind_of_msg;
  let views = ref [] in
  let suspicions = ref [] in
  Engine.on_observe engine (fun at _proc obs ->
      match obs with
      | Baseline.Heartbeat.View_installed { group; _ } ->
        views := (at, group) :: !views
      | Baseline.Heartbeat.Suspected { suspect } ->
        suspicions := (at, suspect) :: !suspicions);
  let automaton = Baseline.Heartbeat.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  Engine.run engine ~until:(Time.of_sec 1);
  let fault_at = Time.of_sec 1 in
  let victim = Proc_id.of_int 1 in
  Engine.crash_at engine fault_at victim;
  Engine.run engine ~until:(Time.of_sec 4);
  let detect =
    List.fold_left
      (fun acc (at, s) ->
        if Proc_id.equal s victim && Time.compare at fault_at >= 0 then
          match acc with None -> Some at | Some t -> Some (Time.min t at)
        else acc)
      None !suspicions
  in
  let recover =
    (* last survivor's installation of a view without the victim *)
    let goods =
      List.filter
        (fun (at, g) ->
          Time.compare at fault_at >= 0 && not (Proc_set.mem victim g))
        !views
    in
    match goods with
    | [] -> None
    | _ -> Some (List.fold_left (fun acc (at, _) -> Time.max acc at) Time.zero goods)
  in
  match (detect, recover) with
  | Some d, Some r ->
    Some
      ( float_of_int (Time.sub d fault_at),
        float_of_int (Time.sub r fault_at) )
  | _ -> None

let token_ring_run ~n ~seed =
  let cfg = Baseline.Token_ring.default_config ~n in
  let engine_config = { Engine.default_config with Engine.seed } in
  let engine = Engine.create engine_config ~n in
  Engine.classify engine Baseline.Token_ring.kind_of_msg;
  let losses = ref [] in
  let rings = ref [] in
  Engine.on_observe engine (fun at proc obs ->
      match obs with
      | Baseline.Token_ring.Token_lost -> losses := (at, proc) :: !losses
      | Baseline.Token_ring.Ring_installed { members; _ } ->
        rings := (at, proc, members) :: !rings);
  let automaton = Baseline.Token_ring.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  Engine.run engine ~until:(Time.of_sec 1);
  let fault_at = Time.of_sec 1 in
  let victim = Proc_id.of_int 1 in
  Engine.crash_at engine fault_at victim;
  Engine.run engine ~until:(Time.of_sec 4);
  let detect =
    List.fold_left
      (fun acc (at, _) ->
        if Time.compare at fault_at >= 0 then
          match acc with None -> Some at | Some t -> Some (Time.min t at)
        else acc)
      None !losses
  in
  let survivors =
    List.filter (fun p -> not (Proc_id.equal p victim)) (Proc_id.all ~n)
  in
  let recover =
    let ok p =
      List.find_map
        (fun (at, proc, members) ->
          if
            Proc_id.equal proc p
            && Time.compare at fault_at >= 0
            && not (Proc_set.mem victim members)
          then Some at
          else None)
        (List.rev !rings)
    in
    let times = List.map ok survivors in
    if List.for_all Option.is_some times then
      Some
        (List.fold_left (fun acc t -> Time.max acc (Option.get t)) Time.zero
           times)
    else None
  in
  match (detect, recover) with
  | Some d, Some r ->
    Some
      ( float_of_int (Time.sub d fault_at),
        float_of_int (Time.sub r fault_at) )
  | _ -> None

(* E2c: crash the member at a given ring distance ahead of the current
   decider and measure detection latency — exposing the sequential
   surveillance structure (the failure detector watches one process at a
   time, in decider order). *)
let distance_run ~n ~seed ~distance =
  let svc = Run.service ~seed ~n () in
  let watcher = Run.watch_views svc in
  let svc = Run.settle svc in
  let engine = Service.engine svc in
  let fault_at = Time.add (Service.now svc) (Time.of_sec 1) in
  let victim = ref None in
  Engine.at engine fault_at (fun () ->
      let decider =
        match
          List.find_opt
            (fun id ->
              match Engine.state_of engine id with
              | Some s -> Member.is_decider s
              | None -> false)
            (Proc_id.all ~n)
        with
        | Some d -> Proc_id.to_int d
        | None -> 0
      in
      let target = Proc_id.of_int ((decider + distance) mod n) in
      victim := Some target;
      Engine.crash_at engine (Engine.now engine) target);
  Service.run svc ~until:(Time.add fault_at (Time.of_sec 4));
  match !victim with
  | None -> None
  | Some v -> (
    let change =
      Run.measure_exclusion watcher svc ~fault_at
        ~victims:(Proc_set.singleton v)
    in
    match change.Run.suspicion with
    | Some det -> Some (float_of_int (Time.sub det fault_at))
    | None -> None)

let ring_distance_table ~quick =
  let n = 7 in
  let seeds = if quick then [ 61 ] else [ 61; 62; 63; 64; 65 ] in
  let table =
    Table.create
      ~title:"E2c: detection latency by ring distance from the decider (N=7)"
      ~columns:[ "distance"; "runs"; "detect mean"; "detect p95" ]
  in
  List.iter
    (fun distance ->
      let samples =
        List.filter_map (fun seed -> distance_run ~n ~seed ~distance) seeds
      in
      match Stats.summarize (Array.of_list samples) with
      | Some s ->
        Table.add_row table
          [
            string_of_int distance;
            string_of_int (List.length samples);
            Table.cell_ms s.Stats.mean;
            Table.cell_ms s.Stats.p95;
          ]
      | None ->
        Table.add_row table [ string_of_int distance; "0"; "-"; "-" ])
    (List.init (n - 1) (fun i -> i + 1));
  Table.note table
    "surveillance is sequential: a member is only watched when the      rotation reaches it, so detection grows with the victim's ring      distance ahead of the decider — the structural price of zero      failure-free overhead";
  table

let samples ?(quick = false) () =
  let ns = if quick then [ 5 ] else [ 3; 5; 7; 9 ] in
  let seeds = if quick then [ 11; 12 ] else [ 11; 12; 13; 14; 15; 16; 17; 18 ] in
  List.concat_map
    (fun n ->
      List.concat_map
        (fun crash_decider ->
          List.filter_map
            (fun seed -> one_run ~n ~seed ~crash_decider)
            seeds)
        [ true; false ])
    ns

let run ?(quick = false) () =
  let all = samples ~quick () in
  let table =
    Table.create ~title:"E2: single-failure recovery latency"
      ~columns:
        [
          "N";
          "crashed role";
          "runs";
          "detect mean";
          "recover mean";
          "recover p95";
          "nd msgs mean";
        ]
  in
  let ns = List.sort_uniq compare (List.map (fun s -> s.n) all) in
  List.iter
    (fun n ->
      List.iter
        (fun role ->
          let group =
            List.filter (fun s -> s.n = n && s.role = role) all
          in
          if group <> [] then begin
            let arr f = Array.of_list (List.map f group) in
            let detect = Stats.summarize (arr (fun s -> s.detect_us)) in
            let recover = Stats.summarize (arr (fun s -> s.recover_us)) in
            let nds = arr (fun s -> float_of_int s.nd_msgs) in
            let nd_mean =
              Array.fold_left ( +. ) 0.0 nds /. float_of_int (Array.length nds)
            in
            match (detect, recover) with
            | Some d, Some r ->
              Table.add_row table
                [
                  string_of_int n;
                  role;
                  string_of_int (List.length group);
                  Table.cell_ms d.Stats.mean;
                  Table.cell_ms r.Stats.mean;
                  Table.cell_ms r.Stats.p95;
                  Table.cell_f nd_mean;
                ]
            | _ -> ()
          end)
        [ "decider"; "member" ])
    ns;
  Table.note table
    "detection is bounded by 2D (60ms) + scheduling/clock slack; recovery \
     adds one no-decision hop per surviving member";
  let baseline =
    Table.create ~title:"E2b: heartbeat/coordinator baseline (N=5)"
      ~columns:[ "impl"; "detect"; "recover" ]
  in
  (match heartbeat_run ~n:5 ~seed:11 with
  | Some (d, r) ->
    Table.add_row baseline
      [ "heartbeat+coordinator"; Table.cell_ms d; Table.cell_ms r ]
  | None -> ());
  (match token_ring_run ~n:5 ~seed:11 with
  | Some (d, r) ->
    Table.add_row baseline
      [ "token ring (Totem-style)"; Table.cell_ms d; Table.cell_ms r ]
  | None -> ());
  (match List.filter (fun s -> s.n = 5 && s.role = "member") all with
  | [] -> ()
  | group ->
    let arr f = Array.of_list (List.map f group) in
    (match
       ( Stats.summarize (arr (fun s -> s.detect_us)),
         Stats.summarize (arr (fun s -> s.recover_us)) )
     with
    | Some d, Some r ->
      Table.add_row baseline
        [ "timewheel"; Table.cell_ms d.Stats.mean; Table.cell_ms r.Stats.mean ]
    | _ -> ()));
  [ table; baseline; ring_distance_table ~quick ]
