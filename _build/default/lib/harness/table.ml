type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* newest first *)
  mutable notes : string list; (* newest first *)
}

let create ~title ~columns = { title; columns; rows = []; notes = [] }
let add_row t row = t.rows <- row :: t.rows
let add_rows t rows = List.iter (add_row t) rows
let note t line = t.notes <- line :: t.notes

let cell_f v =
  if Float.is_nan v then "-"
  else if Float.abs v >= 1000.0 then Fmt.str "%.0f" v
  else if Float.abs v >= 10.0 then Fmt.str "%.1f" v
  else Fmt.str "%.2f" v

let cell_ms us = cell_f (us /. 1000.0) ^ "ms"

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let width i =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row i with
        | Some cell -> max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let pad cell w = cell ^ String.make (max 0 (w - String.length cell)) ' ' in
  let render_row row =
    let cells =
      List.mapi
        (fun i w ->
          let cell = match List.nth_opt row i with Some c -> c | None -> "" in
          pad cell w)
        widths
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("## " ^ t.title ^ "\n\n");
  Buffer.add_string buf (render_row t.columns ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (render_row row ^ "\n")) rows;
  List.iter
    (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n"))
    (List.rev t.notes);
  Buffer.contents buf

let print t = print_string (render t ^ "\n")
