open Tasim

let one_run ~n ~seed ~omission ~duration =
  let cfg = Clocksync.Protocol.default_config ~n in
  let epsilon = cfg.Clocksync.Protocol.clock.Clocksync.Sync_clock.epsilon in
  let net =
    {
      Net.default_config with
      Net.delta = cfg.Clocksync.Protocol.delta;
      omission_prob = omission;
    }
  in
  let engine_config = { Engine.default_config with Engine.net; seed } in
  let engine = Engine.create engine_config ~n in
  Engine.classify engine Clocksync.Protocol.kind_of_msg;
  let rng = Rng.create (seed + 100) in
  let hw_clocks =
    Array.init n (fun _ ->
        Hardware_clock.random rng ~max_offset:(Time.of_ms 500) ~max_drift:1e-5)
  in
  let automaton = Clocksync.Protocol.automaton cfg in
  List.iter
    (fun id ->
      Engine.add_process engine id automaton
        ~clock:(Engine.clock_source_of_hardware hw_clocks.(Proc_id.to_int id))
        ())
    (Proc_id.all ~n);
  (* sampling *)
  let samples = ref 0 in
  let sync_claims = ref 0 in
  let max_dev = ref 0 in
  let violations = ref 0 in
  let rec sample t =
    if Time.compare t duration < 0 then begin
      Engine.at engine t (fun () ->
          let readings =
            List.filter_map
              (fun id ->
                match Engine.state_of engine id with
                | Some st ->
                  let now_local = Engine.clock_of engine id in
                  incr samples;
                  (match Clocksync.Protocol.sync_reading st ~now_local with
                  | Some r ->
                    incr sync_claims;
                    Some r
                  | None -> None)
                | None -> None)
              (Proc_id.all ~n)
          in
          let rec pairs = function
            | [] -> ()
            | r :: rest ->
              List.iter
                (fun r' ->
                  let dev = abs (Time.sub r r') in
                  if dev > !max_dev then max_dev := dev;
                  if dev > epsilon then incr violations)
                rest;
              pairs rest
          in
          pairs readings);
      sample (Time.add t (Time.of_ms 100))
    end
  in
  sample (Time.of_ms 500);
  Engine.run engine ~until:duration;
  let availability =
    if !samples = 0 then 0.0
    else float_of_int !sync_claims /. float_of_int !samples
  in
  (float_of_int !max_dev, availability, !violations, epsilon)

let run ?(quick = false) () =
  let n = 5 in
  let duration = Time.of_sec (if quick then 5 else 20) in
  let table =
    Table.create
      ~title:"E7: fail-aware clock synchronization under message loss (N=5)"
      ~columns:
        [
          "omission prob";
          "max pairwise deviation";
          "epsilon";
          "sync availability";
          "bound violations";
        ]
  in
  List.iter
    (fun omission ->
      let max_dev, availability, violations, epsilon =
        one_run ~n ~seed:51 ~omission ~duration
      in
      Table.add_row table
        [
          Table.cell_f omission;
          Table.cell_ms max_dev;
          Table.cell_ms (float_of_int epsilon);
          Fmt.str "%.1f%%" (availability *. 100.0);
          string_of_int violations;
        ])
    (if quick then [ 0.0; 0.2 ] else [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.4 ]);
  Table.note table
    "violations counts sampled pairs of clocks that both claimed \
     synchronization while deviating more than epsilon — must be 0";
  [ table ]
