(** E6 — Event-based vs thread-based dispatch.

    Paper, Section 5: "An initial thread-based implementation indicated
    that there is significant performance overhead associated with
    using threads ... We chose an event-based implementation". The
    companion paper [22] quantifies it. We run the same workload — M
    events spread round-robin over K event kinds, each handler doing a
    small fixed amount of work — through the single-threaded
    {!Eventloop.Dispatcher} and the worker-thread-per-event-kind
    {!Eventloop.Threaded} and report wall-clock ns/event. Expected
    shape: the event-based dispatcher wins by a large factor (the
    thread version pays a wakeup/handover per event). *)

val run : ?quick:bool -> unit -> Table.t list
