(** E2 — Single-failure recovery latency.

    Paper claim (Sections 1, 4.1): "it uses a very simple and fast
    algorithm to recover from single failures". One member is crashed;
    we measure, across seeds, the time from the crash to (a) the first
    suspicion (failure-detection latency, bounded by 2D plus slack) and
    (b) every survivor having installed the new agreed view (the
    no-decision ring, ~one message hop per surviving member). Swept over
    team size and over which role crashes (the current decider vs an
    ordinary member), plus the heartbeat/coordinator baseline for
    comparison. *)

type sample = {
  n : int;
  role : string;
  detect_us : float;
  recover_us : float;
  nd_msgs : int;
}

val samples : ?quick:bool -> unit -> sample list
val run : ?quick:bool -> unit -> Table.t list
