(** E4 — Multiple-failure reconfiguration.

    Paper claim (Section 4.2): when more than one failure hits a cycle,
    the time-slotted reconfiguration election takes over, a process
    abstains for N-1 slots after entering n-failure, "and a new decider
    is typically elected in two rounds". We crash f members
    simultaneously (including the adversarial decider-plus-successor
    case) and measure the time until all survivors agree on the new
    group, reported in milliseconds and in cycles (N * slot_len). *)

val run : ?quick:bool -> unit -> Table.t list
