(** E3 — False-suspicion masking.

    Paper claim (Sections 1, 4.1): "the group communication service is
    not interrupted, if a failure suspicion turns out to be a false
    alarm". A steady update workload runs while a decision message is
    dropped on its way to the decider's successor only — the successor
    suspects the decider; everyone else holds the decision, so the
    wrong-suspicion state masks the alarm. Compared against an
    undisturbed run and against the lost-to-everyone case (where the
    timed model permits excluding the live member). Measured: membership
    changes after formation, delivery latency, and the longest gap in
    the delivery stream. *)

val run : ?quick:bool -> unit -> Table.t list
