(** E10 — Performance failures.

    Performance failures are what distinguish the timed asynchronous
    model (paper, Section 2) from both synchronous and time-free
    models: messages may arrive later than delta and processes may
    react slower than sigma — without having crashed. The protocol's
    defenses are fail-aware rejection of late control messages and the
    wrong-suspicion masking of resulting false alarms; the model's
    honesty is that under sustained lateness a live member {e may} be
    excluded (and must re-join).

    We sweep the per-message lateness probability and the per-dispatch
    slow-scheduling probability during an otherwise failure-free run
    with a steady workload and count: late-rejected control messages,
    suspicions raised, suspicions that were masked (no membership
    change), spurious exclusions of live members, whether the group
    re-converged to full by the end, and log consistency. Expected
    shape: suspicions grow with lateness; most are masked; exclusions
    appear only at high rates and always heal; consistency never
    breaks. *)

val run : ?quick:bool -> unit -> Table.t list
