open Tasim

type id = { origin : Proc_id.t; seq : int }

let id_compare a b =
  match Proc_id.compare a.origin b.origin with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let id_equal a b = id_compare a b = 0
let pp_id ppf id = Fmt.pf ppf "%a#%d" Proc_id.pp id.origin id.seq

type 'u t = {
  id : id;
  semantics : Semantics.t;
  send_ts : Time.t;
  hdo : int;
  payload : 'u;
}

let make ~origin ~seq ~semantics ~send_ts ~hdo payload =
  { id = { origin; seq }; semantics; send_ts; hdo; payload }

let pp pp_payload ppf t =
  Fmt.pf ppf "proposal(%a %a ts=%a hdo=%d payload=%a)" pp_id t.id Semantics.pp
    t.semantics Time.pp t.send_ts t.hdo pp_payload t.payload

module Id_map = Map.Make (struct
  type t = id

  let compare = id_compare
end)
