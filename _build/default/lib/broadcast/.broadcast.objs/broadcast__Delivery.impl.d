lib/broadcast/delivery.ml: Buffers Int List Oal Proposal Semantics Tasim Time
