lib/broadcast/proposal.ml: Fmt Int Map Proc_id Semantics Tasim Time
