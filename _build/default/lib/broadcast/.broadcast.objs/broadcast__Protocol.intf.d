lib/broadcast/protocol.mli: Buffers Engine Fmt Oal Proposal Semantics Tasim Time
