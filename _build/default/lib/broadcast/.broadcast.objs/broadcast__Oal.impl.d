lib/broadcast/oal.ml: Fmt Int List Map Option Proc_set Proposal Semantics Tasim Time
