lib/broadcast/rotation.ml: Proc_id Proc_set Tasim Time
