lib/broadcast/buffers.ml: Int List Proc_id Proposal Set Tasim Time
