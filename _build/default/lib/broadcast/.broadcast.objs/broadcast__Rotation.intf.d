lib/broadcast/rotation.mli: Proc_id Proc_set Tasim Time
