lib/broadcast/oal.mli: Fmt Proc_id Proc_set Proposal Semantics Tasim Time
