lib/broadcast/buffers.mli: Proc_id Proposal Tasim Time
