lib/broadcast/proposal.mli: Fmt Map Proc_id Semantics Tasim Time
