lib/broadcast/delivery.mli: Buffers Oal Proposal Tasim Time
