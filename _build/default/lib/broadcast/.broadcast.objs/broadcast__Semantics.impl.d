lib/broadcast/semantics.ml: Fmt List
