lib/broadcast/semantics.mli: Fmt
