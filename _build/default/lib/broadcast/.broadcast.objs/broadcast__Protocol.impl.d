lib/broadcast/protocol.ml: Buffers Delivery Engine Fmt Hashtbl List Oal Proc_id Proc_set Proposal Rotation Semantics Tasim Time
