type ordering = Unordered | Total | Timed
type atomicity = Weak | Strong | Strict
type t = { ordering : ordering; atomicity : atomicity }

let all =
  List.concat_map
    (fun ordering ->
      List.map
        (fun atomicity -> { ordering; atomicity })
        [ Weak; Strong; Strict ])
    [ Unordered; Total; Timed ]

let unordered_weak = { ordering = Unordered; atomicity = Weak }
let total_strong = { ordering = Total; atomicity = Strong }
let timed_strict = { ordering = Timed; atomicity = Strict }
let equal a b = a.ordering = b.ordering && a.atomicity = b.atomicity

let ordering_to_string = function
  | Unordered -> "unordered"
  | Total -> "total"
  | Timed -> "timed"

let atomicity_to_string = function
  | Weak -> "weak"
  | Strong -> "strong"
  | Strict -> "strict"

let pp ppf t =
  Fmt.pf ppf "%s/%s"
    (ordering_to_string t.ordering)
    (atomicity_to_string t.atomicity)
