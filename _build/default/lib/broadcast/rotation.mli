(** Decider rotation.

    "In order to distribute the processing load evenly among all group
    members and to detect process or communication failures fast, the
    role of the decider is rotated among group members. All group
    members are cyclically ordered. A group member d relinquishes its
    decider role by sending a decision message in at most D time units,
    and the next group member in the cyclical order assumes the decider
    role on receiving this decision message." (paper, Section 2) *)

open Tasim

val next_decider : group:Proc_set.t -> after:Proc_id.t -> n:int -> Proc_id.t
(** The group member that assumes the decider role once [after] has
    sent its decision. [after] need not itself be a group member (it
    may just have been excluded). Raises [Invalid_argument] on an empty
    group. *)

val is_next_decider :
  group:Proc_set.t -> after:Proc_id.t -> n:int -> Proc_id.t -> bool

val expected_after :
  group:Proc_set.t -> decider:Proc_id.t -> n:int -> Proc_id.t
(** Alias of {!next_decider} expressing the failure detector's view:
    the process whose control message is expected after the current
    decider's. *)

val cycle_length : group:Proc_set.t -> d:Time.t -> Time.t
(** Time for the decider role to make a full turn: |group| * D. *)
