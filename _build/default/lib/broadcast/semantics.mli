(** Broadcast semantics supported by the timewheel service.

    The timewheel group communication service supports, per update and
    simultaneously, three ordering semantics and three atomicity
    semantics (paper, Section 1). The concrete delivery conditions
    implementing each pair live in {!Delivery}. *)

type ordering =
  | Unordered  (** deliver as soon as the atomicity condition holds *)
  | Total  (** deliver in ordinal order, FIFO per sender *)
  | Timed
      (** deliver in ordinal order, and no earlier than a fixed delay
          after the send timestamp on the synchronized time base *)

type atomicity =
  | Weak
      (** deliver once the update is received and ordered; a failure may
          leave some members having delivered it and others not *)
  | Strong
      (** deliver only once every update it can depend on (ordinal <=
          its hdo) has been received locally *)
  | Strict
      (** deliver only once every update it can depend on is stable —
          acknowledged by all current group members *)

type t = { ordering : ordering; atomicity : atomicity }

val all : t list
(** The nine combinations, for sweeps and tests. *)

val unordered_weak : t
val total_strong : t
val timed_strict : t

val equal : t -> t -> bool
val ordering_to_string : ordering -> string
val atomicity_to_string : atomicity -> string
val pp : t Fmt.t
