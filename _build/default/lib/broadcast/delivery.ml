open Tasim

type 'u delivery = { proposal : 'u Proposal.t; ordinal : int option }

(* An oal update entry counts as "resolved" for ordering purposes when
   it no longer stands in the way: delivered locally or marked
   undeliverable. Membership entries never block update delivery. *)
let entry_resolved ~buffers entry =
  match entry.Oal.body with
  | Oal.Membership _ -> true
  | Oal.Update info ->
    entry.undeliverable
    || Buffers.delivered buffers info.Oal.proposal_id

let order_ok ~oal ~buffers entry =
  let lower_ordered_resolved e =
    e.Oal.ordinal >= entry.Oal.ordinal
    ||
    match e.Oal.body with
    | Oal.Membership _ -> true
    | Oal.Update info -> (
      match info.Oal.semantics.Semantics.ordering with
      | Semantics.Unordered -> true
      | Semantics.Total | Semantics.Timed -> entry_resolved ~buffers e)
  in
  List.for_all lower_ordered_resolved (Oal.entries oal)

(* Strong: dependencies (ordinal <= hdo) received locally.
   Strict: dependencies stable. Entries purged below oal.low are stable
   by construction, hence satisfy both. *)
let atomicity_ok ~oal ~buffers ~(proposal : 'u Proposal.t) =
  let hdo = proposal.Proposal.hdo in
  let dep_ok strictness e =
    e.Oal.ordinal > hdo
    ||
    match e.Oal.body with
    | Oal.Membership _ -> true
    | Oal.Update info -> (
      e.undeliverable
      ||
      match strictness with
      | `Received ->
        Buffers.received buffers info.Oal.proposal_id
        || Buffers.delivered buffers info.Oal.proposal_id
      | `Stable -> e.known_stable)
  in
  match proposal.Proposal.semantics.Semantics.atomicity with
  | Semantics.Weak -> true
  | Semantics.Strong -> List.for_all (dep_ok `Received) (Oal.entries oal)
  | Semantics.Strict -> List.for_all (dep_ok `Stable) (Oal.entries oal)

let general_check ~oal ~buffers ~now_sync (proposal : 'u Proposal.t) =
  let id = proposal.Proposal.id in
  if Buffers.delivered buffers id then Some "already delivered"
  else if Buffers.is_marked buffers id ~now:now_sync then
    Some "marked undeliverable locally"
  else
    match Oal.find_update oal id with
    | Some entry when entry.Oal.undeliverable ->
      Some "marked undeliverable in oal"
    | Some _ -> None
    | None -> (
      match proposal.Proposal.semantics.Semantics.ordering with
      | Semantics.Unordered -> None (* may be delivered before ordering *)
      | Semantics.Total | Semantics.Timed -> Some "no ordinal yet")

let timing_check ~now_sync ~timed_delay (proposal : 'u Proposal.t) =
  match proposal.Proposal.semantics.Semantics.ordering with
  | Semantics.Timed
    when Time.compare now_sync
           (Time.add proposal.Proposal.send_ts timed_delay)
         < 0 ->
    Some "timed delivery instant not reached"
  | Semantics.Timed | Semantics.Total | Semantics.Unordered -> None

let blocked_reason ~oal ~buffers ~now_sync ~timed_delay proposal =
  match general_check ~oal ~buffers ~now_sync proposal with
  | Some r -> Some r
  | None -> (
    match timing_check ~now_sync ~timed_delay proposal with
    | Some r -> Some r
    | None ->
      let entry = Oal.find_update oal proposal.Proposal.id in
      let order_fine =
        match (proposal.Proposal.semantics.Semantics.ordering, entry) with
        | Semantics.Unordered, _ -> true
        | (Semantics.Total | Semantics.Timed), Some e ->
          order_ok ~oal ~buffers e
        | (Semantics.Total | Semantics.Timed), None -> false
      in
      if not order_fine then Some "lower ordinal not yet delivered"
      else if not (atomicity_ok ~oal ~buffers ~proposal) then
        Some "dependencies not satisfied (atomicity)"
      else None)

let deliverable_now ~oal ~buffers ~now_sync ~timed_delay proposal =
  blocked_reason ~oal ~buffers ~now_sync ~timed_delay proposal = None

let step ~oal ~buffers ~now_sync ~timed_delay =
  let rec round buffers acc =
    let candidates = Buffers.stored buffers in
    let ready =
      List.filter (deliverable_now ~oal ~buffers ~now_sync ~timed_delay)
        candidates
    in
    (* unordered first (no ordinal), then ordered by ordinal *)
    let with_ordinal p =
      match Oal.find_update oal p.Proposal.id with
      | Some e -> (p, Some e.Oal.ordinal)
      | None -> (p, None)
    in
    let ready = List.map with_ordinal ready in
    let key (p, o) =
      match o with
      | None -> (0, 0, p.Proposal.id)
      | Some ordinal -> (1, ordinal, p.Proposal.id)
    in
    let ready =
      List.sort
        (fun a b ->
          let ka, oa, ia = key a and kb, ob, ib = key b in
          match Int.compare ka kb with
          | 0 -> (
            match Int.compare oa ob with
            | 0 -> Proposal.id_compare ia ib
            | c -> c)
          | c -> c)
        ready
    in
    match ready with
    | [] -> (List.rev acc, buffers)
    | _ ->
      let buffers, acc =
        List.fold_left
          (fun (buffers, acc) (proposal, ordinal) ->
            ( Buffers.note_delivered buffers proposal.Proposal.id ~ordinal,
              { proposal; ordinal } :: acc ))
          (buffers, acc) ready
      in
      round buffers acc
  in
  round buffers []
