(** Delivery conditions.

    "Updates stored in these buffers are delivered to the clients when
    three delivery conditions, atomicity, order, and general, are
    satisfied" (paper, Section 2). This module concretizes the three
    conditions for the nine (ordering x atomicity) combinations — see
    DESIGN.md for the mapping to the companion paper [19]:

    - {e general}: the proposal has been received, is not marked
      undeliverable (locally or in the oal), and — except for unordered
      proposals, which may be delivered before being ordered — has been
      assigned an ordinal.
    - {e order}: [Unordered] has no constraint. [Total] and [Timed]
      deliver in ordinal order: every lower-ordinal ordered update must
      be delivered or undeliverable first. [Timed] additionally waits
      until the synchronized clock passes [send_ts + timed_delay].
    - {e atomicity}: [Weak] has no constraint. [Strong] requires every
      update with ordinal <= the proposal's hdo to be received locally
      (or undeliverable). [Strict] requires those updates to be stable
      (acknowledged by all group members, or undeliverable). *)

open Tasim

type 'u delivery = { proposal : 'u Proposal.t; ordinal : int option }

val step :
  oal:Oal.t ->
  buffers:'u Buffers.t ->
  now_sync:Time.t ->
  timed_delay:Time.t ->
  'u delivery list * 'u Buffers.t
(** Compute every proposal deliverable right now, iterating to a fixed
    point (a delivery may unblock the next), and mark them delivered in
    the returned buffers. Ordered deliveries come out in ascending
    ordinal order; unordered ones in proposal-id order, before ordered
    ones of the same round. *)

val blocked_reason :
  oal:Oal.t ->
  buffers:'u Buffers.t ->
  now_sync:Time.t ->
  timed_delay:Time.t ->
  'u Proposal.t ->
  string option
(** Diagnostic: why a given stored proposal is not deliverable right
    now ([None] when it is). Used by tests and the CLI inspector. *)
