open Tasim

let next_decider ~group ~after ~n =
  if Proc_set.is_empty group then
    invalid_arg "Rotation.next_decider: empty group";
  match Proc_set.successor_in group after ~n with
  | Some p -> p
  | None ->
    (* group = {after}: the role stays *)
    if Proc_set.mem after group then after
    else invalid_arg "Rotation.next_decider: empty group"

let is_next_decider ~group ~after ~n p =
  Proc_id.equal p (next_decider ~group ~after ~n)

let expected_after ~group ~decider ~n = next_decider ~group ~after:decider ~n

let cycle_length ~group ~d = Time.mul d (Proc_set.cardinal group)
