(** Proposals: updates submitted for broadcast.

    A broadcast is initiated by sending a {e proposal message} to all
    group members (paper, Section 2). The proposal carries the update
    payload, the requested semantics, the sender's synchronized-clock
    send timestamp, and the sender's {e hdo} — the highest delivery
    ordinal the sender had seen when proposing, which bounds the set of
    updates this one may depend on (used by strong/strict atomicity and
    by the unknown-dependency rule of Section 4.3). *)

open Tasim

type id = { origin : Proc_id.t; seq : int }
(** Unique proposal identity: [seq] counts the origin's proposals. *)

val id_equal : id -> id -> bool
val id_compare : id -> id -> int
val pp_id : id Fmt.t

type 'u t = {
  id : id;
  semantics : Semantics.t;
  send_ts : Time.t;  (** sender's synchronized clock at proposal time *)
  hdo : int;  (** highest delivery ordinal known to the sender; -1 if none *)
  payload : 'u;
}

val make :
  origin:Proc_id.t ->
  seq:int ->
  semantics:Semantics.t ->
  send_ts:Time.t ->
  hdo:int ->
  'u ->
  'u t

val pp : 'u Fmt.t -> 'u t Fmt.t

module Id_map : Map.S with type key = id
