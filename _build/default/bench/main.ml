(* Benchmark and experiment harness.

   Usage:
     bench/main.exe               run every experiment (full sweeps) and
                                  the microbenchmarks
     bench/main.exe quick         reduced sweeps (CI-sized)
     bench/main.exe e3            one experiment
     bench/main.exe quick e3      one experiment, reduced
     bench/main.exe micro         microbenchmarks only

   Each experiment prints the table(s) recorded in EXPERIMENTS.md; see
   DESIGN.md section 5 for the experiment index. *)

open Tasim
open Timewheel
open Broadcast

(* ------------------------------------------------------------------ *)
(* M0: Bechamel microbenchmarks of protocol hot paths                  *)

let microbenches () =
  let open Bechamel in
  let params = Params.make ~n:5 () in
  let fd = Failure_detector.create params ~self:(Proc_id.of_int 0) in
  let fd = Failure_detector.expect fd ~sender:(Proc_id.of_int 1) ~base:Tasim.Time.zero in
  let oal =
    List.fold_left
      (fun oal i ->
        fst
          (Oal.append_update oal
             {
               Oal.proposal_id = { Proposal.origin = Proc_id.of_int (i mod 5); seq = i };
               semantics = Semantics.total_strong;
               send_ts = Tasim.Time.of_us i;
               hdo = i - 1;
             }
             ~acks:(Proc_set.singleton (Proc_id.of_int 0))))
      Oal.empty
      (List.init 32 Fun.id)
  in
  let env =
    {
      Group_creator.self = Proc_id.of_int 0;
      group = Proc_set.full ~n:5;
      n = 5;
      majority = 3;
      current_slot = 10;
      single_failure_election = true;
    }
  in
  let gc_event =
    Group_creator.Fd_timeout { suspect = Proc_id.of_int 2; since = Tasim.Time.zero }
  in
  let heap_test =
    Test.make ~name:"event-queue add+pop"
      (Staged.stage (fun () ->
           let h = Heap.create () in
           for i = 0 to 31 do
             Heap.add h ~time:(i * 13 mod 32) i
           done;
           while Heap.pop h <> None do
             ()
           done))
  in
  let fd_test =
    Test.make ~name:"failure-detector admit"
      (Staged.stage (fun () ->
           ignore
             (Failure_detector.admit fd ~from:(Proc_id.of_int 1)
                ~ts:(Tasim.Time.of_ms 5) ~now:(Tasim.Time.of_ms 7))))
  in
  let oal_test =
    Test.make ~name:"oal merge (32 entries)"
      (Staged.stage (fun () -> ignore (Oal.merge ~local:oal ~incoming:oal)))
  in
  let gc_test =
    Test.make ~name:"group-creator step"
      (Staged.stage (fun () ->
           ignore (Group_creator.step env Creator_state.Failure_free gc_event)))
  in
  let dispatcher_test =
    Test.make ~name:"dispatcher post+run"
      (Staged.stage
         (let d = Eventloop.Dispatcher.create () in
          Eventloop.Dispatcher.register d ~kind:0 (fun _ -> ());
          fun () ->
            Eventloop.Dispatcher.post d ~kind:0 0;
            ignore (Eventloop.Dispatcher.run_pending d)))
  in
  let wheel_test =
    Test.make ~name:"timer-wheel schedule+advance"
      (Staged.stage
         (let w = Eventloop.Timer_wheel.create ~tick:10 () in
          let now = ref 0 in
          fun () ->
            ignore (Eventloop.Timer_wheel.schedule w ~at:(!now + 50) (fun () -> ()));
            now := !now + 10;
            ignore (Eventloop.Timer_wheel.advance w ~to_:!now)))
  in
  [ heap_test; fd_test; oal_test; gc_test; dispatcher_test; wheel_test ]

let run_micro () =
  let open Bechamel in
  Fmt.pr "@.=== M0: hot-path microbenchmarks (Bechamel) ===@.@.";
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Bechamel.Time.second 0.5) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let table = Harness.Table.create ~title:"M0: ns per call" ~columns:[ "operation"; "ns/run" ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          Toolkit.Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          let name =
            if String.length name > 2 && String.sub name 0 2 = "g/" then
              String.sub name 2 (String.length name - 2)
            else name
          in
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Harness.Table.add_row table [ name; Harness.Table.cell_f est ]
          | _ -> ())
        ols)
    (microbenches ());
  Harness.Table.print table

(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "quick" args in
  let targets = List.filter (fun a -> a <> "quick") args in
  match targets with
  | [] ->
    Harness.Experiments.run_all ~quick ();
    run_micro ()
  | [ "micro" ] -> run_micro ()
  | ids ->
    List.iter
      (fun id ->
        match Harness.Experiments.find id with
        | Some e ->
          Fmt.pr "@.=== %s: %s ===@.@." e.Harness.Experiments.id
            e.Harness.Experiments.title;
          List.iter Harness.Table.print (e.Harness.Experiments.run ~quick ())
        | None when id = "micro" -> run_micro ()
        | None -> Fmt.epr "unknown experiment %S@." id)
      ids
