(* Live-runtime unit tests: the wire codec and stable storage.

   The codec is the trust boundary of the live runtime — every byte a
   member acts on crossed it — so it gets the property treatment:
   round-trips over all nine Control_msg variants (with epoch-qualified
   group ids) plus both clocksync messages, and rejection of truncated,
   over-length, wrong-version and junk frames without ever raising.

   Structural equality of decoded messages is checked through the
   canonical-bytes trick: [encode] is deterministic, so
   [encode (decode (encode m)) = encode m] holds iff decoding loses
   nothing the codec can represent. *)

open Tasim
open Broadcast
open Timewheel
open Runtime

let qcheck = QCheck_alcotest.to_alcotest
let pid = Proc_id.of_int
let n = 8

(* ------------------------------------------------------------------ *)
(* generators *)

let gen_proc = QCheck.Gen.map pid (QCheck.Gen.int_bound (n - 1))

let gen_set =
  QCheck.Gen.map
    (fun ids -> Proc_set.of_list (List.map pid ids))
    QCheck.Gen.(list_size (int_bound n) (int_bound (n - 1)))

let gen_time = QCheck.Gen.map Time.of_us (QCheck.Gen.int_bound 10_000_000)

(* spans several epochs: the codec must carry recovery-bumped ids *)
let gen_group_id =
  QCheck.Gen.map2
    (fun epoch seq -> { Group_id.epoch; seq })
    (QCheck.Gen.int_bound 3) (QCheck.Gen.int_bound 50)

let gen_semantics = QCheck.Gen.oneofl Semantics.all

let gen_proposal_id =
  QCheck.Gen.map2
    (fun origin seq -> { Proposal.origin; seq })
    gen_proc (QCheck.Gen.int_bound 200)

let gen_payload = QCheck.Gen.(string_size (int_bound 40))

let gen_proposal =
  QCheck.Gen.(
    gen_proposal_id >>= fun id ->
    gen_semantics >>= fun semantics ->
    gen_time >>= fun send_ts ->
    int_range (-1) 30 >>= fun hdo ->
    gen_payload >>= fun payload ->
    return
      (Proposal.make ~origin:id.Proposal.origin ~seq:id.Proposal.seq
         ~semantics ~send_ts ~hdo payload))

let gen_update_info =
  QCheck.Gen.(
    gen_proposal_id >>= fun proposal_id ->
    gen_semantics >>= fun semantics ->
    gen_time >>= fun send_ts ->
    int_range (-1) 30 >>= fun hdo ->
    return { Oal.proposal_id; semantics; send_ts; hdo })

let gen_body =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun u -> Oal.Update u) gen_update_info);
        ( 1,
          map2
            (fun group group_id -> Oal.Membership { group; group_id })
            gen_set gen_group_id );
      ])

let gen_oal =
  QCheck.Gen.(
    int_bound 5 >>= fun low ->
    int_bound 6 >>= fun len ->
    list_repeat len (triple gen_body gen_set (pair bool bool))
    >>= fun raw ->
    (* consecutive ordinals from the frontier keep the image valid *)
    let w_entries =
      List.mapi
        (fun i (body, acks, (undeliverable, known_stable)) ->
          { Oal.ordinal = low + i; body; acks; undeliverable; known_stable })
        raw
    in
    option (triple (int_bound 5) gen_set gen_group_id) >>= fun latest ->
    let w_latest =
      (* the latest-membership memo records an already-purged ordinal,
         so keep it below the frontier *)
      Option.map (fun (o, g, gid) -> (min o low, g, gid)) latest
    in
    let wire =
      { Oal.w_low = low; w_next_ordinal = low + len; w_entries; w_latest }
    in
    match Oal.of_wire wire with
    | Ok oal -> return oal
    | Error e -> failwith ("generator built an invalid oal image: " ^ e))

let gen_buffers =
  QCheck.Gen.(
    list_size (int_bound 5) gen_proposal >>= fun w_proposals ->
    list_size (int_bound 5) (pair gen_proposal_id (option (int_bound 30)))
    >>= fun w_delivered ->
    list_size (int_bound 3) (pair gen_proposal_id gen_time)
    >>= fun w_marks ->
    list_size (int_bound 3) (pair gen_proc gen_time) >>= fun w_blocked ->
    return (Buffers.of_wire { Buffers.w_proposals; w_delivered; w_marks; w_blocked }))

let gen_control : (string, string list) Control_msg.t QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        ( 1,
          map2
            (fun semantics payload -> Control_msg.Submit { semantics; payload })
            gen_semantics gen_payload );
        (2, map (fun p -> Control_msg.Proposal_msg p) gen_proposal);
        (1, map (fun p -> Control_msg.Retransmit p) gen_proposal);
        ( 1,
          map
            (fun missing -> Control_msg.Nack { missing })
            (list_size (int_bound 6) gen_proposal_id) );
        ( 2,
          map3
            (fun d_ts d_oal d_alive ->
              Control_msg.Decision { d_ts; d_oal; d_alive })
            gen_time gen_oal gen_set );
        ( 1,
          gen_time >>= fun nd_ts ->
          gen_proc >>= fun nd_suspect ->
          gen_time >>= fun nd_since ->
          gen_oal >>= fun nd_view ->
          list_size (int_bound 4) gen_update_info >>= fun nd_dpd ->
          gen_set >>= fun nd_alive ->
          return
            (Control_msg.No_decision
               { nd_ts; nd_suspect; nd_since; nd_view; nd_dpd; nd_alive }) );
        ( 2,
          map3
            (fun j_ts (j_list, j_alive) j_epoch ->
              Control_msg.Join_msg { j_ts; j_list; j_alive; j_epoch })
            gen_time (pair gen_set gen_set) (int_bound 3) );
        ( 1,
          gen_time >>= fun r_ts ->
          gen_set >>= fun r_list ->
          gen_time >>= fun r_last_decision_ts ->
          gen_oal >>= fun r_view ->
          list_size (int_bound 4) gen_update_info >>= fun r_dpd ->
          gen_set >>= fun r_alive ->
          return
            (Control_msg.Reconfig
               { r_ts; r_list; r_last_decision_ts; r_view; r_dpd; r_alive }) );
        ( 1,
          gen_time >>= fun st_ts ->
          gen_set >>= fun st_group ->
          gen_group_id >>= fun st_group_id ->
          gen_oal >>= fun st_oal ->
          list_size (int_bound 4) gen_payload >>= fun st_app ->
          gen_buffers >>= fun st_buffers ->
          return
            (Control_msg.State_transfer
               { st_ts; st_group; st_group_id; st_oal; st_app; st_buffers }) );
      ])

let gen_cs =
  QCheck.Gen.(
    frequency
      [
        ( 1,
          map2
            (fun seq sender_clock ->
              Clocksync.Protocol.Request { seq; sender_clock })
            (int_bound 1000) gen_time );
        ( 1,
          map3
            (fun seq echo_sender_clock replier_clock ->
              Clocksync.Protocol.Reply { seq; echo_sender_clock; replier_clock })
            (int_bound 1000) gen_time gen_time );
      ])

let gen_msg : (string, string list) Full_stack.msg QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        (1, map (fun m -> Full_stack.Cs m) gen_cs);
        (4, map (fun m -> Full_stack.Gc m) gen_control);
      ])

let arb_frame =
  QCheck.make
    ~print:(fun (sender, msg) ->
      Fmt.str "from %a: %a" Proc_id.pp sender
        (Fmt.of_to_string (function
          | Full_stack.Cs m -> Fmt.str "cs %a" Clocksync.Protocol.pp_msg m
          | Full_stack.Gc m -> Fmt.str "gc %a" Control_msg.pp m))
        msg)
    QCheck.Gen.(pair gen_proc gen_msg)

let pc = Codec.string_payload

(* ------------------------------------------------------------------ *)
(* round trips *)

let round_trip =
  QCheck.Test.make ~count:500
    ~name:"encode/decode round-trips every message (canonical bytes)"
    arb_frame (fun (sender, msg) ->
      let bytes = Codec.encode pc ~sender msg in
      match Codec.decode pc bytes with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %a" Codec.pp_error e
      | Ok (sender', msg') ->
        Proc_id.equal sender' sender
        && String.equal (Codec.encode pc ~sender:sender' msg') bytes)

let scratch_writer = Wire.writer ()

let encode_into_identical =
  QCheck.Test.make ~count:500
    ~name:"encode_into/encode_to produce encode's exact bytes"
    QCheck.(pair arb_frame (QCheck.make (QCheck.Gen.int_bound 64)))
    (fun ((sender, msg), pos) ->
      let reference = Codec.encode pc ~sender msg in
      let len = String.length reference in
      (* encode_into at an arbitrary offset; slack after the frame is
         scratch (the length varint is staged wide then blitted down),
         but bytes before [pos] must never be touched *)
      let buf = Bytes.make (pos + len + 64) '\xAA' in
      let written = Codec.encode_into pc ~sender msg buf ~pos in
      let into_ok =
        written = len
        && String.equal (Bytes.sub_string buf pos len) reference
        && Bytes.for_all (fun c -> c = '\xAA') (Bytes.sub buf 0 pos)
      in
      (* encode_to on a shared, reused writer *)
      let written' = Codec.encode_to pc ~sender msg scratch_writer in
      into_ok && written' = len
      && String.equal (Wire.contents scratch_writer) reference)

let encode_to_zero_alloc () =
  (* the transport's steady-state kinds must encode without touching
     the minor heap: one long-lived fixed writer, no per-frame garbage *)
  let gid = { Group_id.epoch = 1; seq = 3 } in
  let group = Proc_set.of_list [ pid 0; pid 1; pid 2; pid 3 ] in
  let oal, _ = Oal.append_membership Oal.empty ~group ~group_id:gid in
  let oal =
    fst
      (Oal.append_update oal
         {
           Oal.proposal_id = { Proposal.origin = pid 1; seq = 5 };
           semantics = Semantics.total_strong;
           send_ts = Time.of_ms 2;
           hdo = -1;
         }
         ~acks:group)
  in
  let msgs =
    [
      ( "decision",
        Full_stack.Gc
          (Control_msg.Decision
             { d_ts = Time.of_ms 5; d_oal = oal; d_alive = group }) );
      ( "proposal",
        Full_stack.Gc
          (Control_msg.Proposal_msg
             (Proposal.make ~origin:(pid 1) ~seq:6
                ~semantics:Semantics.total_strong ~send_ts:(Time.of_ms 3)
                ~hdo:0 "payload")) );
      ( "cs-request",
        Full_stack.Cs
          (Clocksync.Protocol.Request { seq = 9; sender_clock = Time.of_ms 1 })
      );
      ( "cs-reply",
        Full_stack.Cs
          (Clocksync.Protocol.Reply
             {
               seq = 9;
               echo_sender_clock = Time.of_ms 1;
               replier_clock = Time.of_ms 2;
             }) );
    ]
  in
  let buf = Bytes.create 65536 in
  let w = Wire.writer_into buf ~pos:0 in
  List.iter
    (fun (kind, msg) ->
      for _ = 1 to 100 do
        ignore (Codec.encode_to pc ~sender:(pid 1) msg w : int)
      done;
      Gc.minor ();
      let m0 = Gc.minor_words () in
      for _ = 1 to 10_000 do
        ignore (Codec.encode_to pc ~sender:(pid 1) msg w : int)
      done;
      let per_op = (Gc.minor_words () -. m0) /. 10_000.0 in
      if per_op > 0.01 then
        Alcotest.failf "%s encode allocates %.3f minor words/frame" kind
          per_op)
    msgs

let round_trip_structural () =
  (* spot structural checks on hand-built messages, so a canonical-bytes
     fixed point that somehow lost data would still be caught *)
  let gid = { Group_id.epoch = 2; seq = 7 } in
  let group = Proc_set.of_list [ pid 0; pid 2; pid 3 ] in
  let join =
    Full_stack.Gc
      (Control_msg.Join_msg
         {
           j_ts = Time.of_ms 1234;
           j_list = group;
           j_alive = Proc_set.of_list [ pid 0 ];
           j_epoch = 3;
         })
  in
  (match Codec.decode pc (Codec.encode pc ~sender:(pid 2) join) with
  | Ok (s, Full_stack.Gc (Control_msg.Join_msg j)) ->
    Alcotest.(check int) "sender" 2 (Proc_id.to_int s);
    Alcotest.(check int) "epoch" 3 j.Control_msg.j_epoch;
    Alcotest.(check bool) "list" true (Proc_set.equal j.Control_msg.j_list group);
    Alcotest.(check bool) "ts" true (Time.equal j.Control_msg.j_ts (Time.of_ms 1234))
  | Ok _ -> Alcotest.fail "decoded to a different constructor"
  | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e);
  let oal, _ = Oal.append_membership Oal.empty ~group ~group_id:gid in
  let decision =
    Full_stack.Gc
      (Control_msg.Decision { d_ts = Time.of_us 5; d_oal = oal; d_alive = group })
  in
  match Codec.decode pc (Codec.encode pc ~sender:(pid 0) decision) with
  | Ok (_, Full_stack.Gc (Control_msg.Decision d)) ->
    (match Oal.latest_membership d.Control_msg.d_oal with
    | Some (_, g, id) ->
      Alcotest.(check bool) "group survives" true (Proc_set.equal g group);
      Alcotest.(check bool) "epoch-qualified id survives" true
        (Group_id.equal id gid)
    | None -> Alcotest.fail "membership entry lost in transit")
  | Ok _ -> Alcotest.fail "decoded to a different constructor"
  | Error e -> Alcotest.failf "decode failed: %a" Codec.pp_error e

(* ------------------------------------------------------------------ *)
(* rejection *)

let sample_frame () =
  let msg =
    Full_stack.Gc
      (Control_msg.Submit
         { semantics = Semantics.total_strong; payload = "payload" })
  in
  Codec.encode pc ~sender:(pid 1) msg

let check_error name expected = function
  | Error e when e = expected -> ()
  | Error e ->
    Alcotest.failf "%s: expected %a, got %a" name Codec.pp_error expected
      Codec.pp_error e
  | Ok _ -> Alcotest.failf "%s: decode accepted a bad frame" name

let decode_bytes_window () =
  let frame = sample_frame () in
  let len = String.length frame in
  let buf = Bytes.make (len + 16) '\xFF' in
  Bytes.blit_string frame 0 buf 7 len;
  match Codec.decode_bytes pc buf ~pos:7 ~len with
  | Ok (sender, msg) ->
    Alcotest.(check int) "sender" 1 (Proc_id.to_int sender);
    Alcotest.(check string) "canonical bytes" frame
      (Codec.encode pc ~sender msg)
  | Error e -> Alcotest.failf "window decode failed: %a" Codec.pp_error e

let rejects_truncated () =
  let frame = sample_frame () in
  (* every proper prefix must be rejected, and prefixes that cut the
     header must say Truncated *)
  for cut = 0 to String.length frame - 1 do
    match Codec.decode pc (String.sub frame 0 cut) with
    | Ok _ -> Alcotest.failf "accepted %d-byte prefix" cut
    | Error (Codec.Truncated | Codec.Length_mismatch _) -> ()
    | Error e ->
      Alcotest.failf "prefix %d: unexpected error %a" cut Codec.pp_error e
  done;
  check_error "empty" Codec.Truncated (Codec.decode pc "");
  check_error "header cut" Codec.Truncated
    (Codec.decode pc (String.sub frame 0 2))

let rejects_over_length () =
  let frame = sample_frame () in
  let declared = String.length frame in
  (match Codec.decode pc (frame ^ "x") with
  | Error (Codec.Length_mismatch { actual; _ }) ->
    Alcotest.(check bool) "actual exceeds declared" true (actual > 0)
  | Error e -> Alcotest.failf "unexpected error %a" Codec.pp_error e
  | Ok _ -> Alcotest.failf "accepted over-length frame (%d+1 bytes)" declared);
  match Codec.decode pc (frame ^ String.make 40 '\x00') with
  | Error (Codec.Length_mismatch _) -> ()
  | Error e -> Alcotest.failf "unexpected error %a" Codec.pp_error e
  | Ok _ -> Alcotest.fail "accepted padded frame"

let rejects_wrong_version () =
  let frame = Bytes.of_string (sample_frame ()) in
  Bytes.set frame 2 (Char.chr 99);
  check_error "version 99" (Codec.Bad_version 99)
    (Codec.decode pc (Bytes.to_string frame))

let rejects_bad_magic () =
  let frame = Bytes.of_string (sample_frame ()) in
  Bytes.set frame 0 'X';
  check_error "magic" Codec.Bad_magic (Codec.decode pc (Bytes.to_string frame))

let decode_total =
  QCheck.Test.make ~count:1000 ~name:"decode never raises on junk"
    QCheck.(string_of_size (QCheck.Gen.int_bound 200))
    (fun junk ->
      match Codec.decode pc junk with Ok _ | Error _ -> true)

let mutation_total =
  (* flip one byte of a valid frame: decode must return, and any
     accepted result must still canonically re-encode *)
  QCheck.Test.make ~count:500 ~name:"decode total under single-byte mutation"
    QCheck.(pair arb_frame (pair small_nat (int_bound 255)))
    (fun ((sender, msg), (pos, byte)) ->
      let frame = Bytes.of_string (Codec.encode pc ~sender msg) in
      let pos = pos mod Bytes.length frame in
      Bytes.set frame pos (Char.chr byte);
      match Codec.decode pc (Bytes.to_string frame) with
      | Error _ -> true
      | Ok (sender', msg') ->
        String.length (Codec.encode pc ~sender:sender' msg') > 0)

(* ------------------------------------------------------------------ *)
(* stable storage *)

let store_round_trip () =
  let record =
    {
      Member.last_group_id = { Group_id.epoch = 4; seq = 17 };
      last_group = Proc_set.of_list [ pid 0; pid 3; pid 4 ];
    }
  in
  (match Live_store.persistent_of_wire (Live_store.wire_of_persistent record) with
  | Some r ->
    Alcotest.(check bool) "id" true
      (Group_id.equal r.Member.last_group_id record.Member.last_group_id);
    Alcotest.(check bool) "group" true
      (Proc_set.equal r.Member.last_group record.Member.last_group)
  | None -> Alcotest.fail "record codec rejected its own output");
  Alcotest.(check bool) "corrupt record restores as None" true
    (Live_store.persistent_of_wire "garbage" = None);
  Alcotest.(check bool) "truncated record restores as None" true
    (Live_store.persistent_of_wire
       (String.sub (Live_store.wire_of_persistent record) 0 6)
    = None)

let store_memory () =
  let store = Live_store.in_memory () in
  Alcotest.(check bool) "fresh store is empty" true
    (Live_store.restore store ~self:(pid 1) = None);
  let record =
    { Member.last_group_id = { Group_id.epoch = 1; seq = 2 };
      last_group = Proc_set.of_list [ pid 1 ] }
  in
  Live_store.persist store ~self:(pid 1) record;
  (match Live_store.restore store ~self:(pid 1) with
  | Some r ->
    Alcotest.(check bool) "persisted id" true
      (Group_id.equal r.Member.last_group_id record.Member.last_group_id)
  | None -> Alcotest.fail "persisted record not restored");
  Alcotest.(check bool) "per-member isolation" true
    (Live_store.restore store ~self:(pid 2) = None)

let store_disk () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "timewheel-store-%d" (Unix.getpid ()))
  in
  let store = Live_store.on_disk ~dir () in
  let record =
    { Member.last_group_id = { Group_id.epoch = 2; seq = 9 };
      last_group = Proc_set.of_list [ pid 0; pid 2 ] }
  in
  Live_store.persist store ~self:(pid 0) record;
  (* a second handle on the same directory models a process restart *)
  (match Live_store.restore (Live_store.on_disk ~dir ()) ~self:(pid 0) with
  | Some r ->
    Alcotest.(check bool) "record survives reopen" true
      (Group_id.equal r.Member.last_group_id record.Member.last_group_id
      && Proc_set.equal r.Member.last_group record.Member.last_group)
  | None -> Alcotest.fail "on-disk record not restored");
  Alcotest.(check bool) "absent member restores as None" true
    (Live_store.restore store ~self:(pid 7) = None)

(* ------------------------------------------------------------------ *)
(* checksum and corruption totality: a corrupted record must never
   restore as valid state — that would silently violate the epoch
   ratchet the recovery protocol depends on *)

let crc32_vector () =
  (* the standard check vector for CRC-32/ISO-HDLC *)
  Alcotest.(check int32) "CRC32(\"123456789\")" 0xCBF43926l
    (Crc32.string "123456789");
  (* incremental digest over split slices equals the one-shot CRC *)
  let s = "timewheel stable storage record" in
  let k = String.length s / 3 in
  let c = Crc32.digest s ~pos:0 ~len:k in
  let c = Crc32.digest ~crc:c s ~pos:k ~len:(String.length s - k) in
  Alcotest.(check int32) "incremental = one-shot" (Crc32.string s) c

let sample_record =
  {
    Member.last_group_id = { Group_id.epoch = 4; seq = 17 };
    last_group = Proc_set.of_list [ pid 0; pid 1; pid 3; pid 4 ];
  }

let store_rejects_corruption () =
  let wire = Live_store.wire_of_persistent sample_record in
  let len = String.length wire in
  Alcotest.(check bool) "empty" true (Live_store.persistent_of_wire "" = None);
  for k = 0 to len - 1 do
    if Live_store.persistent_of_wire (String.sub wire 0 k) <> None then
      Alcotest.failf "truncation to %d of %d bytes accepted" k len
  done;
  Alcotest.(check bool) "trailing NUL" true
    (Live_store.persistent_of_wire (wire ^ "\x00") = None);
  Alcotest.(check bool) "trailing garbage" true
    (Live_store.persistent_of_wire (wire ^ "tail") = None);
  (* every single-bit flip at every position must be caught — that is
     exactly the CRC's job, flips inside the CRC bytes included *)
  for i = 0 to len - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string wire in
      Bytes.set b i (Char.chr (Char.code wire.[i] lxor (1 lsl bit)));
      if Live_store.persistent_of_wire (Bytes.unsafe_to_string b) <> None then
        Alcotest.failf "bit %d of byte %d flipped and still accepted" bit i
    done
  done

let store_codec_round_trip =
  QCheck.Test.make ~count:300 ~name:"store record codec round-trips"
    (QCheck.make QCheck.Gen.(map2 (fun gid g -> (gid, g)) gen_group_id gen_set))
    (fun (gid, group) ->
      let record = { Member.last_group_id = gid; last_group = group } in
      match
        Live_store.persistent_of_wire (Live_store.wire_of_persistent record)
      with
      | Some r ->
        Group_id.equal r.Member.last_group_id gid
        && Proc_set.equal r.Member.last_group group
      | None -> false)

(* ------------------------------------------------------------------ *)
(* the fault palette against a real directory *)

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let with_store_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Fmt.str "timewheel-store-%s-%d" name (Unix.getpid ()))
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let record_v1 =
  { Member.last_group_id = { Group_id.epoch = 1; seq = 3 };
    last_group = Proc_set.of_list [ pid 0; pid 1; pid 2 ] }

let record_v2 =
  { Member.last_group_id = { Group_id.epoch = 1; seq = 4 };
    last_group = Proc_set.of_list [ pid 0; pid 1 ] }

let restored_gid store self =
  match Live_store.restore store ~self with
  | Some r -> Some r.Member.last_group_id
  | None -> None

let no_tmp_litter dir =
  Array.for_all
    (fun f -> not (Filename.check_suffix f ".tmp"))
    (Sys.readdir dir)

let store_io_error_degrades () =
  with_store_dir "eio" @@ fun dir ->
  let store = Live_store.on_disk ~dir () in
  let stats = Live_store.stats store in
  Live_store.persist store ~self:(pid 0) record_v1;
  Live_store.set_fault store ~proc:(pid 0)
    (Some (Live_store.Io_error Unix.EIO));
  Live_store.persist store ~self:(pid 0) record_v2;
  (* bounded retries, then degrade — never an exception *)
  Alcotest.(check int) "retries" (Live_store.persist_attempts - 1)
    (Stats.count stats "live:store:retry");
  Alcotest.(check int) "failure counted" 1
    (Stats.count stats "live:store:persist-failed");
  Alcotest.(check int) "io fault counted" 1
    (Stats.count stats "live:store:fault:io-error");
  (* the failed attempts leak no tmp file *)
  Alcotest.(check bool) "no .tmp litter" true (no_tmp_litter dir);
  (* the previous durable record is intact, as a restart would see it *)
  Alcotest.(check bool) "old record intact" true
    (restored_gid (Live_store.on_disk ~dir ()) (pid 0)
    = Some record_v1.Member.last_group_id);
  (* the fault clears and the store recovers *)
  Live_store.set_fault store ~proc:(pid 0) None;
  Live_store.persist store ~self:(pid 0) record_v2;
  Alcotest.(check bool) "recovered after the fault window" true
    (restored_gid store (pid 0) = Some record_v2.Member.last_group_id)

let store_torn_write_tolerated () =
  with_store_dir "torn" @@ fun dir ->
  let store = Live_store.on_disk ~dir () in
  Live_store.persist store ~self:(pid 0) record_v1;
  Live_store.set_fault store ~proc:(pid 0) (Some Live_store.Torn_write);
  Live_store.persist store ~self:(pid 0) record_v2;
  Alcotest.(check int) "torn fault counted" 1
    (Stats.count (Live_store.stats store) "live:store:fault:torn-write");
  (* the crashed writer leaves its half-written tmp behind *)
  Alcotest.(check bool) "torn .tmp left behind" true (not (no_tmp_litter dir));
  (* a restart (fresh handle) discards the debris and restores the
     last durable record *)
  let store2 = Live_store.on_disk ~dir () in
  Alcotest.(check bool) "durable record survives the tear" true
    (restored_gid store2 (pid 0) = Some record_v1.Member.last_group_id);
  Alcotest.(check int) "tmp discarded on restore" 1
    (Stats.count (Live_store.stats store2) "live:store:tmp-discarded");
  Alcotest.(check bool) "debris gone" true (no_tmp_litter dir)

let store_lost_flush_revert () =
  with_store_dir "lost" @@ fun dir ->
  let store = Live_store.on_disk ~dir () in
  Live_store.persist store ~self:(pid 0) record_v1;
  Live_store.set_fault store ~proc:(pid 0) (Some Live_store.Lost_flush);
  Live_store.persist store ~self:(pid 0) record_v2;
  (* visible to this incarnation — the kernel had the pages — ... *)
  Alcotest.(check bool) "unflushed write visible" true
    (restored_gid store (pid 0) = Some record_v2.Member.last_group_id);
  (* ...but a machine crash loses it: revert to the bytes known flushed *)
  Live_store.note_crash store ~self:(pid 0);
  Alcotest.(check bool) "machine crash reverts to durable bytes" true
    (restored_gid store (pid 0) = Some record_v1.Member.last_group_id);
  (* with no durable baseline at all, the crash loses everything *)
  Live_store.set_fault store ~proc:(pid 3) (Some Live_store.Lost_flush);
  Live_store.persist store ~self:(pid 3) record_v2;
  Alcotest.(check bool) "visible before the crash" true
    (restored_gid store (pid 3) = Some record_v2.Member.last_group_id);
  Live_store.note_crash store ~self:(pid 3);
  Alcotest.(check bool) "nothing durable to revert to" true
    (Live_store.restore store ~self:(pid 3) = None)

let store_restore_total () =
  with_store_dir "total" @@ fun dir ->
  let store = Live_store.on_disk ~dir () in
  Live_store.persist store ~self:(pid 1) record_v1;
  let path_of self =
    match Live_store.record_path store ~self with
    | Some p -> p
    | None -> Alcotest.fail "disk store must expose a record path"
  in
  (* a directory squatting on the record path *)
  Unix.mkdir (path_of (pid 0)) 0o755;
  Alcotest.(check bool) "directory at path restores as None" true
    (Live_store.restore store ~self:(pid 0) = None);
  (* an empty file *)
  close_out (open_out_bin (path_of (pid 2)));
  Alcotest.(check bool) "empty file restores as None" true
    (Live_store.restore store ~self:(pid 2) = None);
  (* trailing garbage appended to a valid record *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 (path_of (pid 1)) in
  output_string oc "xx";
  close_out oc;
  Alcotest.(check bool) "trailing garbage restores as None" true
    (Live_store.restore store ~self:(pid 1) = None);
  Alcotest.(check int) "every corruption counted" 3
    (Stats.count (Live_store.stats store) "live:store:restore-corrupt")

(* ------------------------------------------------------------------ *)
(* the loopback impairment shim and the poll-loop timeout clamp *)

(* a toy 2-int codec so the shim tests need none of the protocol *)
let toy_encode ~sender (m : int) w =
  Wire.reset w;
  Wire.int w (Proc_id.to_int sender);
  Wire.int w m;
  Wire.pos w

let toy_decode buf ~pos ~len =
  let r = Wire.reader_bytes ~pos ~len buf in
  let src = Wire.r_int r in
  let m = Wire.r_int r in
  Ok (Proc_id.of_int src, m)

let shim_base_port = 48860

let mk_toy_transport ?(stats = Stats.create ()) ~port self =
  Transport.create ~encode_to:toy_encode ~decode:toy_decode ~self ~n:2
    ~port_of:(fun p -> port + Proc_id.to_int p)
    ~stats ()

(* send + flush: the batched transport hands frames to the kernel at
   flush points (the node driver's end-of-pass), which a raw
   transport driven directly must invoke itself *)
let toy_send t ~dst m =
  Transport.send t ~dst m;
  Transport.flush t

(* loopback is fast but still asynchronous: poll until a frame lands *)
let toy_recv t =
  let got = ref [] in
  let rec loop tries =
    let k = Transport.drain t ~handler:(fun ~src:_ m -> got := m :: !got) in
    if k = 0 && tries > 0 then begin
      Unix.sleepf 0.002;
      loop (tries - 1)
    end
  in
  loop 250;
  List.rev !got

let toy_recv_nothing t =
  Unix.sleepf 0.02;
  Transport.drain t ~handler:(fun ~src:_ _ -> ()) = 0

let test_impair_shim () =
  let stats0 = Stats.create () in
  let t0 = mk_toy_transport ~stats:stats0 ~port:shim_base_port (pid 0) in
  let t1 = mk_toy_transport ~port:shim_base_port (pid 1) in
  Fun.protect
    ~finally:(fun () ->
      Transport.close t0;
      Transport.close t1)
    (fun () ->
      let now = ref (Time.of_ms 1000) in
      let clock () = !now in
      (* no rule: frames cross directly *)
      toy_send t0 ~dst:(pid 1) 41;
      Alcotest.(check (list int)) "direct" [ 41 ] (toy_recv t1);
      (* a 50ms delay rule holds the frame until pumped past due *)
      Transport.impair t0 ~dst:(pid 1) ~delay:(Time.of_ms 50) ~now:clock ();
      Alcotest.(check int) "one impaired peer" 1 (Transport.impaired t0);
      toy_send t0 ~dst:(pid 1) 42;
      Alcotest.(check bool) "held, not on the wire" true (toy_recv_nothing t1);
      Alcotest.(check bool) "release scheduled at send+delay" true
        (Transport.next_release t0 = Some (Time.add !now (Time.of_ms 50)));
      Alcotest.(check int) "not due yet" 0 (Transport.pump t0 ~now:!now);
      now := Time.add !now (Time.of_ms 50);
      Alcotest.(check int) "released when due" 1 (Transport.pump t0 ~now:!now);
      Alcotest.(check (list int)) "frame arrives after release" [ 42 ]
        (toy_recv t1);
      Alcotest.(check bool) "nothing left to release" true
        (Transport.next_release t0 = None);
      (* two held frames to one peer with equal due keep send order *)
      toy_send t0 ~dst:(pid 1) 43;
      toy_send t0 ~dst:(pid 1) 44;
      now := Time.add !now (Time.of_ms 50);
      Alcotest.(check int) "both released" 2 (Transport.pump t0 ~now:!now);
      Alcotest.(check (list int)) "send order preserved" [ 43; 44 ]
        (toy_recv t1);
      (* drop = 1.0 swallows deterministically *)
      Transport.impair t0 ~dst:(pid 1) ~drop:1.0 ~now:clock ();
      toy_send t0 ~dst:(pid 1) 45;
      Alcotest.(check bool) "dropped" true (toy_recv_nothing t1);
      Alcotest.(check int) "drop counted" 1
        (Stats.count stats0 "live:impair:drop");
      (* clearing the rule restores the direct path *)
      Transport.clear_impair t0 ~dst:(pid 1);
      Alcotest.(check int) "no impaired peers" 0 (Transport.impaired t0);
      toy_send t0 ~dst:(pid 1) 46;
      Alcotest.(check (list int)) "direct again" [ 46 ] (toy_recv t1);
      (* clear_impairments discards what is still held *)
      Transport.impair t0 ~dst:(pid 1) ~delay:(Time.of_ms 50) ~now:clock ();
      toy_send t0 ~dst:(pid 1) 47;
      Transport.clear_impairments t0;
      now := Time.add !now (Time.of_sec 1);
      Alcotest.(check int) "held frame discarded" 0 (Transport.pump t0 ~now:!now);
      Alcotest.(check bool) "nothing arrives" true (toy_recv_nothing t1))

let test_impair_validation () =
  let t0 = mk_toy_transport ~port:(shim_base_port + 10) (pid 0) in
  Fun.protect
    ~finally:(fun () -> Transport.close t0)
    (fun () ->
      let clock () = Time.zero in
      let rejects name f =
        Alcotest.(check bool) name true
          (match f () with
          | () -> false
          | exception Invalid_argument _ -> true)
      in
      rejects "negative delay" (fun () ->
          Transport.impair t0 ~dst:(pid 1) ~delay:(Time.of_us (-1)) ~now:clock
            ());
      rejects "negative jitter" (fun () ->
          Transport.impair t0 ~dst:(pid 1) ~jitter:(Time.of_us (-1)) ~now:clock
            ());
      rejects "drop out of range" (fun () ->
          Transport.impair t0 ~dst:(pid 1) ~drop:1.5 ~now:clock ());
      Alcotest.(check int) "no rule installed by rejects" 0
        (Transport.impaired t0))

(* The busy-spin clamp (see Cluster.select_timeout): an overdue
   deadline only earns a zero select timeout when the poll pass before
   it actually did work; a barren pass must sleep a floor, because
   nothing can retire that deadline until real time advances. *)
let test_select_timeout () =
  let now = Time.of_ms 500 in
  let feq name a b = Alcotest.(check (float 1e-9)) name a b in
  feq "future deadline sleeps until it" 0.25
    (Cluster.select_timeout ~progressed:false ~now
       ~next:(Time.add now (Time.of_ms 250)));
  feq "overdue + progress re-polls immediately" 0.0
    (Cluster.select_timeout ~progressed:true ~now ~next:now);
  Alcotest.(check bool) "due-now + no progress sleeps a floor" true
    (Cluster.select_timeout ~progressed:false ~now ~next:now > 0.0);
  Alcotest.(check bool) "overdue + no progress sleeps a floor" true
    (Cluster.select_timeout ~progressed:false ~now
       ~next:(Time.sub now (Time.of_ms 10))
    > 0.0);
  (* the floor never overshoots a genuinely near deadline *)
  feq "near-future deadline unaffected" 0.0005
    (Cluster.select_timeout ~progressed:false ~now
       ~next:(Time.add now (Time.of_us 500)))

(* the edges of the impairment model: total loss, jitter-only delay,
   and clearing a rule without discarding what it already holds *)
let test_impair_edges () =
  let stats0 = Stats.create () in
  let t0 = mk_toy_transport ~stats:stats0 ~port:(shim_base_port + 20) (pid 0) in
  let t1 = mk_toy_transport ~port:(shim_base_port + 20) (pid 1) in
  Fun.protect
    ~finally:(fun () ->
      Transport.close t0;
      Transport.close t1)
    (fun () ->
      let now = ref (Time.of_ms 1000) in
      let clock () = !now in
      (* drop = 1.0: every frame is swallowed at send time; none is
         held, so there is never a pending release *)
      Transport.impair t0 ~dst:(pid 1) ~drop:1.0 ~now:clock ();
      for m = 1 to 5 do
        toy_send t0 ~dst:(pid 1) m
      done;
      Alcotest.(check bool) "no release pending under total loss" true
        (Transport.next_release t0 = None);
      Alcotest.(check bool) "nothing crosses" true (toy_recv_nothing t1);
      Alcotest.(check int) "all five drops counted" 5
        (Stats.count stats0 "live:impair:drop");
      Transport.clear_impair t0 ~dst:(pid 1);
      (* delay = 0 with jitter only: frames are held for at most the
         jitter bound, and a pump past that bound releases every one *)
      Transport.impair t0 ~dst:(pid 1) ~delay:Time.zero ~jitter:(Time.of_ms 5)
        ~now:clock ();
      let sent = [ 10; 11; 12; 13; 14; 15 ] in
      List.iter (fun m -> toy_send t0 ~dst:(pid 1) m) sent;
      (match Transport.next_release t0 with
      | None -> Alcotest.fail "jitter-only frames must be held"
      | Some due ->
        Alcotest.(check bool) "due within the jitter bound" true
          (Time.compare due !now >= 0
          && Time.compare due (Time.add !now (Time.of_ms 5)) <= 0));
      now := Time.add !now (Time.of_ms 5);
      Alcotest.(check int) "pump past the bound releases all" 6
        (Transport.pump t0 ~now:!now);
      Alcotest.(check int) "releases counted" 6
        (Stats.count stats0 "live:impair:released");
      Alcotest.(check (list int)) "every frame arrives exactly once" sent
        (List.sort compare (toy_recv t1));
      (* clear_impair mid-flight: the rule goes, the held frames stay
         and keep their due times (clear_impairments, tested above,
         is the discarding variant) *)
      Transport.impair t0 ~dst:(pid 1) ~delay:(Time.of_ms 40) ~now:clock ();
      toy_send t0 ~dst:(pid 1) 20;
      toy_send t0 ~dst:(pid 1) 21;
      Transport.clear_impair t0 ~dst:(pid 1);
      Alcotest.(check int) "rule gone" 0 (Transport.impaired t0);
      Alcotest.(check bool) "held frames keep their due times" true
        (Transport.next_release t0 = Some (Time.add !now (Time.of_ms 40)));
      (* new sends cross directly while the old frames wait *)
      toy_send t0 ~dst:(pid 1) 22;
      Alcotest.(check (list int)) "direct send overtakes held frames" [ 22 ]
        (toy_recv t1);
      Alcotest.(check int) "not due yet" 0 (Transport.pump t0 ~now:!now);
      now := Time.add !now (Time.of_ms 40);
      Alcotest.(check int) "due frames release after the clear" 2
        (Transport.pump t0 ~now:!now);
      Alcotest.(check (list int)) "held frames finally arrive" [ 20; 21 ]
        (toy_recv t1))

(* ------------------------------------------------------------------ *)
(* batched data plane: the mmsg path and the per-datagram fallback
   must put byte-identical frames on the wire and count identically *)

let raw_base_port = 48890

(* a raw UDP socket standing in for the peer: captures datagram bytes
   without any transport machinery in the way *)
let raw_receiver port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.set_nonblock fd;
  fd

let raw_recv_n fd ~expect =
  let buf = Bytes.create 65536 in
  let got = ref [] in
  let count = ref 0 in
  let tries = ref 250 in
  while !count < expect && !tries > 0 do
    match Unix.recvfrom fd buf 0 65536 [] with
    | len, _ ->
      got := Bytes.sub_string buf 0 len :: !got;
      incr count
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN), _, _) ->
      decr tries;
      Unix.sleepf 0.002
  done;
  List.rev !got

(* drive one transport through sends, flushes and an impaired hold so
   every send-side path contributes frames *)
let drive_sends t ~dst =
  let now = ref (Time.of_ms 100) in
  Transport.impair t ~dst ~delay:(Time.of_ms 5) ~now:(fun () -> !now) ();
  Transport.send t ~dst 1001;
  (* held *)
  Transport.clear_impair t ~dst;
  for i = 1 to 10 do
    Transport.send t ~dst i
  done;
  Transport.flush t;
  for i = 11 to 13 do
    Transport.send t ~dst (i * 7)
  done;
  Transport.flush t;
  now := Time.add !now (Time.of_ms 5);
  ignore (Transport.pump t ~now:!now)

let send_counters stats =
  List.filter
    (fun (name, _) ->
      (* everything except the syscall counters, which legitimately
         differ between the two primitives *)
      String.length name >= 5
      && String.sub name 0 5 = "live:"
      && not
           (String.length name >= 12 && String.sub name 0 12 = "live:syscall"))
    (Stats.counters stats)

let test_batched_fallback_identical () =
  if not Runtime.Mmsg.supported then ()
  else begin
    let run ~batching ~port =
      let stats = Stats.create () in
      let t =
        Transport.create ~encode_to:toy_encode ~decode:toy_decode ~batching
          ~self:(pid 0) ~n:2
          ~port_of:(fun p -> port + Proc_id.to_int p)
          ~stats ()
      in
      let peer = raw_receiver (port + 1) in
      Fun.protect
        ~finally:(fun () ->
          Transport.close t;
          Unix.close peer)
        (fun () ->
          Alcotest.(check bool) "batching mode as requested" batching
            (Transport.batched t);
          drive_sends t ~dst:(pid 1);
          (raw_recv_n peer ~expect:14, send_counters stats))
    in
    let frames_batched, counters_batched =
      run ~batching:true ~port:raw_base_port
    in
    let frames_fallback, counters_fallback =
      run ~batching:false ~port:(raw_base_port + 8)
    in
    Alcotest.(check int) "frame count" 14 (List.length frames_batched);
    Alcotest.(check (list string)) "frame bytes identical" frames_batched
      frames_fallback;
    Alcotest.(check (list (pair string int))) "counters identical"
      counters_batched counters_fallback
  end

let test_batch_flush_on_pressure () =
  if not Runtime.Mmsg.supported then ()
  else begin
    let port = raw_base_port + 16 in
    let stats = Stats.create () in
    let t =
      Transport.create ~encode_to:toy_encode ~decode:toy_decode ~batching:true
        ~self:(pid 0) ~n:2
        ~port_of:(fun p -> port + Proc_id.to_int p)
        ~stats ()
    in
    let peer = raw_receiver (port + 1) in
    Fun.protect
      ~finally:(fun () ->
        Transport.close t;
        Unix.close peer)
      (fun () ->
        (* one slot past capacity: the 65th commit must force a flush
           of the first 64 without any explicit flush call *)
        for i = 1 to 65 do
          Transport.send t ~dst:(pid 1) i
        done;
        let burst = raw_recv_n peer ~expect:64 in
        Alcotest.(check int) "batch flushed itself at capacity" 64
          (List.length burst);
        Alcotest.(check int) "all 65 counted as sent at commit" 65
          (Stats.count stats "live:sent");
        Transport.flush t;
        Alcotest.(check int) "explicit flush moves the straggler" 1
          (List.length (raw_recv_n peer ~expect:1)))
  end

(* TW_MMSG=0 must force the portable path when no explicit batching
   override is given *)
let test_env_disables_batching () =
  if not Runtime.Mmsg.supported then ()
  else begin
    let mk port =
      Transport.create ~encode_to:toy_encode ~decode:toy_decode ~self:(pid 0)
        ~n:2
        ~port_of:(fun p -> port + Proc_id.to_int p)
        ~stats:(Stats.create ()) ()
    in
    Unix.putenv "TW_MMSG" "0";
    let t = mk (raw_base_port + 24) in
    let disabled = Transport.batched t in
    Transport.close t;
    Unix.putenv "TW_MMSG" "";
    let t = mk (raw_base_port + 24) in
    let restored = Transport.batched t in
    Transport.close t;
    Alcotest.(check bool) "TW_MMSG=0 forces the fallback" false disabled;
    Alcotest.(check bool) "unset re-enables batching" true restored
  end

(* the poll(2) binding under the cluster loop *)
let test_poll_wait () =
  let port = raw_base_port + 32 in
  let a = raw_receiver port in
  let b = raw_receiver (port + 1) in
  Fun.protect
    ~finally:(fun () ->
      Unix.close a;
      Unix.close b)
    (fun () ->
      let fds = [| a; b |] in
      let revents = [| 0; 0 |] in
      (* nothing readable: times out with no descriptor marked *)
      (match Runtime.Poll.wait ~fds ~revents ~timeout_ms:10 with
      | Ok 0 -> ()
      | Ok n -> Alcotest.failf "expected 0 ready, got %d" n
      | Error _ -> Alcotest.fail "poll errored on idle sockets");
      Alcotest.(check (list int)) "no revents" [ 0; 0 ]
        (Array.to_list revents);
      (* one datagram to b: only b's slot lights up *)
      let payload = Bytes.of_string "x" in
      ignore
        (Unix.sendto a payload 0 1 []
           (Unix.ADDR_INET (Unix.inet_addr_loopback, port + 1)));
      (match Runtime.Poll.wait ~fds ~revents ~timeout_ms:1000 with
      | Ok n -> Alcotest.(check int) "one ready" 1 n
      | Error _ -> Alcotest.fail "poll errored with a datagram pending");
      Alcotest.(check (list int)) "only b readable" [ 0; 1 ]
        (Array.to_list revents);
      (* revents array length is validated *)
      Alcotest.(check bool) "short revents rejected" true
        (match Runtime.Poll.wait ~fds ~revents:[| 0 |] ~timeout_ms:0 with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_poll_ms_of_span () =
  Alcotest.(check int) "zero span" 0 (Runtime.Poll.ms_of_span 0.0);
  Alcotest.(check int) "negative span" 0 (Runtime.Poll.ms_of_span (-1.0));
  (* sub-millisecond spans round UP to the 1 ms floor: the poll loop's
     anti-busy-spin floor must survive the coarser unit *)
  Alcotest.(check int) "0.1 ms rounds up" 1 (Runtime.Poll.ms_of_span 0.0001);
  Alcotest.(check int) "1 ms exact" 1 (Runtime.Poll.ms_of_span 0.001);
  Alcotest.(check int) "10.4 ms rounds up" 11 (Runtime.Poll.ms_of_span 0.0104)

(* ------------------------------------------------------------------ *)
(* restart supervisor: backoff shape and the retry loop *)

let ms = Time.of_ms

let test_supervisor_backoff () =
  let rng = Rng.create 7 in
  let pol =
    { Supervisor.base = ms 500; cap = Time.of_sec 30; jitter = 0.0;
      max_restarts = 10 }
  in
  let b k = Supervisor.backoff pol ~rng ~restarts:k in
  Alcotest.(check bool) "first backoff = base" true (Time.equal (b 1) (ms 500));
  Alcotest.(check bool) "doubles" true (Time.equal (b 2) (ms 1000));
  Alcotest.(check bool) "doubles again" true (Time.equal (b 3) (ms 2000));
  Alcotest.(check bool) "caps" true (Time.equal (b 10) (Time.of_sec 30));
  (* far past the cap the exponent itself is clamped: no overflow *)
  Alcotest.(check bool) "deep restart count still capped" true
    (Time.equal (b 1000) (Time.of_sec 30));
  (* jitter keeps every draw within [1-j, 1+j] of the deterministic
     value *)
  let jpol = { pol with Supervisor.jitter = 0.2 } in
  for _ = 1 to 200 do
    let d = Supervisor.backoff jpol ~rng ~restarts:3 in
    if
      Time.compare d (Time.scale (ms 2000) 0.8) < 0
      || Time.compare d (Time.scale (ms 2000) 1.2) > 0
    then Alcotest.failf "jittered backoff %a out of bounds" Time.pp d
  done;
  Alcotest.(check bool) "restarts < 1 rejected" true
    (match Supervisor.backoff pol ~rng ~restarts:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "jitter >= 1 rejected" true
    (match
       Supervisor.backoff { pol with Supervisor.jitter = 1.0 } ~rng ~restarts:1
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_supervisor_run () =
  let policy =
    { Supervisor.base = ms 10; cap = ms 80; jitter = 0.0; max_restarts = 5 }
  in
  let sleeps = ref [] in
  let sleep t = sleeps := t :: !sleeps in
  (* crashes twice (an exception, then a nonzero exit), then succeeds *)
  let outcome =
    Supervisor.run ~policy ~seed:1 ~sleep (fun ~restarts ->
        match restarts with 0 -> failwith "boom" | 1 -> 3 | _ -> 0)
  in
  (match outcome with
  | Supervisor.Done restarts ->
    Alcotest.(check int) "took two restarts" 2 restarts
  | Supervisor.Gave_up _ -> Alcotest.fail "supervisor gave up early");
  Alcotest.(check int) "slept once per restart" 2 (List.length !sleeps);
  (match List.rev !sleeps with
  | [ b1; b2 ] ->
    Alcotest.(check bool) "backoff grows between restarts" true
      (Time.compare b1 b2 < 0)
  | _ -> Alcotest.fail "unexpected sleep trace");
  (* a body that never recovers is abandoned after max_restarts *)
  let calls = ref 0 in
  let outcome =
    Supervisor.run ~policy ~seed:1
      ~sleep:(fun _ -> ())
      (fun ~restarts:_ ->
        incr calls;
        7)
  in
  (match outcome with
  | Supervisor.Gave_up { restarts; last } ->
    Alcotest.(check int) "gave up at the cap" policy.Supervisor.max_restarts
      restarts;
    Alcotest.(check string) "records the last failure" "exit code 7" last
  | Supervisor.Done _ -> Alcotest.fail "supervisor must give up");
  Alcotest.(check int) "initial run + max_restarts attempts"
    (policy.Supervisor.max_restarts + 1)
    !calls

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "runtime"
    [
      ( "codec",
        [
          qcheck round_trip;
          qcheck encode_into_identical;
          Alcotest.test_case "encode_to allocates nothing (steady kinds)"
            `Quick encode_to_zero_alloc;
          Alcotest.test_case "decode_bytes reads a window in place" `Quick
            decode_bytes_window;
          Alcotest.test_case "structural round trip" `Quick
            round_trip_structural;
          Alcotest.test_case "rejects truncated frames" `Quick rejects_truncated;
          Alcotest.test_case "rejects over-length frames" `Quick
            rejects_over_length;
          Alcotest.test_case "rejects wrong version" `Quick
            rejects_wrong_version;
          Alcotest.test_case "rejects bad magic" `Quick rejects_bad_magic;
          qcheck decode_total;
          qcheck mutation_total;
        ] );
      ( "live store",
        [
          Alcotest.test_case "record codec round trip" `Quick store_round_trip;
          Alcotest.test_case "in-memory backend" `Quick store_memory;
          Alcotest.test_case "on-disk backend" `Quick store_disk;
          Alcotest.test_case "CRC-32 check vector, incremental digest" `Quick
            crc32_vector;
          Alcotest.test_case "rejects every corruption" `Quick
            store_rejects_corruption;
          qcheck store_codec_round_trip;
          Alcotest.test_case "io-error: bounded retry then degrade" `Quick
            store_io_error_degrades;
          Alcotest.test_case "torn write: tmp debris tolerated" `Quick
            store_torn_write_tolerated;
          Alcotest.test_case "lost flush: note_crash reverts" `Quick
            store_lost_flush_revert;
          Alcotest.test_case "restore is total" `Quick store_restore_total;
        ] );
      ( "impairment",
        [
          Alcotest.test_case "loopback shim delays, drops, releases" `Quick
            test_impair_shim;
          Alcotest.test_case "shim rejects bad parameters" `Quick
            test_impair_validation;
          Alcotest.test_case "select timeout clamps the busy-spin" `Quick
            test_select_timeout;
          Alcotest.test_case "edges: total loss, jitter-only, clear keeps held"
            `Quick test_impair_edges;
        ] );
      ( "batching",
        [
          Alcotest.test_case "batched and fallback wire bytes identical" `Quick
            test_batched_fallback_identical;
          Alcotest.test_case "full batch flushes itself" `Quick
            test_batch_flush_on_pressure;
          Alcotest.test_case "TW_MMSG=0 forces the fallback" `Quick
            test_env_disables_batching;
        ] );
      ( "poll",
        [
          Alcotest.test_case "wait: timeout, readiness, validation" `Quick
            test_poll_wait;
          Alcotest.test_case "ms_of_span rounds up, clamps at zero" `Quick
            test_poll_ms_of_span;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "backoff doubles, caps, jitters in bounds" `Quick
            test_supervisor_backoff;
          Alcotest.test_case "retries with backoff, gives up at the cap" `Quick
            test_supervisor_run;
        ] );
    ]
