(* Crash-recovery paths through the stable store (DESIGN.md section 8).

   These tests exercise the service-level recovery story end to end:
   the per-process store persists the last installed view, a recovered
   process restores it, and the epoch-aware formation guard turns the
   record into correct rejoin behaviour — including the mass-crash case
   where the whole team restarts and must re-form at a strictly higher
   epoch instead of forking an amnesiac epoch-0 group (chaos-11). *)

open Tasim
open Timewheel
open Broadcast

let check = Alcotest.check
let pid = Proc_id.of_int
let gid_t = Alcotest.testable Group_id.pp Group_id.equal

let test_single_crash_recover_rejoin () =
  let svc = Harness.Run.service ~seed:7 ~n:5 () in
  let svc = Harness.Run.settle svc in
  let t0 = Service.now svc in
  Service.crash_at svc (Time.add t0 (Time.of_ms 100)) (pid 2);
  Service.recover_at svc (Time.add t0 (Time.of_sec 2)) (pid 2);
  Service.run svc ~until:(Time.add t0 (Time.of_sec 12));
  match Service.agreed_view svc with
  | None -> Alcotest.fail "no agreed view after rejoin"
  | Some v ->
    check Alcotest.int "full group again" 5 (Proc_set.cardinal v.Service.group);
    (* one member crashing never loses the majority: no epoch bump *)
    check Alcotest.int "still epoch 0" 0 (Group_id.epoch v.Service.group_id);
    (* the rejoined member's stable record tracks the agreed view *)
    let store = Service.storage svc in
    (match
       Storage.Store.durable store ~proc:(pid 2) ~now:(Service.now svc)
     with
    | None -> Alcotest.fail "rejoined member has no durable record"
    | Some r ->
      check gid_t "persisted group id" v.Service.group_id
        r.Member.last_group_id;
      check Alcotest.bool "persisted membership" true
        (Proc_set.equal v.Service.group r.Member.last_group))

let test_mass_crash_single_epoch () =
  (* crash a majority, then recover everyone: the recovered processes
     know (from their stable records) that epoch 0 was lived through,
     so the team re-forms exactly once, at epoch 1 — never a second
     epoch-0 group beside the survivors' stalled election *)
  let n = 5 in
  let svc = Harness.Run.service ~seed:13 ~n () in
  let svc = Harness.Run.settle svc in
  let t0 = Service.now svc in
  List.iter
    (fun i -> Service.crash_at svc (Time.add t0 (Time.of_ms (100 + (10 * i)))) (pid i))
    [ 0; 1; 2 ];
  List.iter
    (fun i -> Service.recover_at svc (Time.add t0 (Time.of_sec (2 + i))) (pid i))
    [ 0; 1; 2 ];
  Service.run svc ~until:(Time.add t0 (Time.of_sec 30));
  (match Service.agreed_view svc with
  | None -> Alcotest.fail "team did not reconverge after mass crash"
  | Some v ->
    check Alcotest.int "full group again" n (Proc_set.cardinal v.Service.group);
    check Alcotest.int "re-formed at the bumped epoch" 1
      (Group_id.epoch v.Service.group_id);
    (* every member's current view carries that one epoch: no fork *)
    let epochs =
      List.filter_map
        (fun p ->
          Option.map
            (fun (w : Service.view) -> Group_id.epoch w.Service.group_id)
            (Service.current_view svc p))
        (Proc_id.all ~n)
    in
    check Alcotest.int "all five have a view" n (List.length epochs);
    check
      (Alcotest.list Alcotest.int)
      "exactly one epoch" [ 1; 1; 1; 1; 1 ] epochs;
    (* and the stable records agree, so a further restart stays safe *)
    let store = Service.storage svc in
    List.iter
      (fun p ->
        match Storage.Store.durable store ~proc:p ~now:(Service.now svc) with
        | None -> Alcotest.failf "no durable record at %a" Proc_id.pp p
        | Some r ->
          check gid_t
            (Fmt.str "durable gid at %a" Proc_id.pp p)
            v.Service.group_id r.Member.last_group_id)
      (Proc_id.all ~n))

let () =
  Alcotest.run "recovery"
    [
      ( "stable-storage recovery",
        [
          Alcotest.test_case "crash, recover, rejoin" `Quick
            test_single_crash_recover_rejoin;
          Alcotest.test_case "mass crash re-forms at one higher epoch" `Quick
            test_mass_crash_single_epoch;
        ] );
    ]
