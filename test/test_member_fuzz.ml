(* Robustness fuzzing of the member automaton.

   A real deployment receives arbitrary datagrams: stale control
   messages, no-decisions about unknown processes, decisions carrying
   foreign oals, state transfers it never asked for. The automaton must
   never raise, and a handful of structural invariants must hold after
   any input sequence:

   - the member never installs a non-majority group containing itself;
   - group ids never decrease;
   - the oal purge frontier never decreases and next_ordinal never
     decreases (except across a state-transfer adoption, which replaces
     the replica history wholesale);
   - the automaton stays within its six states (trivially by typing) and
     timer effects always target the three known keys. *)

open Tasim
open Broadcast
open Timewheel

let qcheck = QCheck_alcotest.to_alcotest
let pid = Proc_id.of_int
let n = 5
let params = Params.make ~n ()
let cfg : (int, unit) Member.config = Member.config ~initial_app:() params

(* ------------------------------------------------------------------ *)
(* generators *)

let gen_proc = QCheck.Gen.map pid (QCheck.Gen.int_bound (n - 1))

let gen_set =
  QCheck.Gen.map
    (fun ids -> Proc_set.of_list (List.map pid ids))
    QCheck.Gen.(list_size (int_bound n) (int_bound (n - 1)))

let gen_time = QCheck.Gen.map Time.of_ms (QCheck.Gen.int_bound 5_000)

(* epoch-qualified group ids, spanning two epochs so the fuzz also
   feeds the member foreign-epoch ids *)
let gen_gid =
  QCheck.Gen.map
    (fun (epoch, seq) -> Group_id.v ~epoch ~seq)
    QCheck.Gen.(pair (int_bound 1) (int_bound 3))

let gen_semantics =
  QCheck.Gen.oneofl Semantics.all

let gen_proposal =
  QCheck.Gen.(
    map
      (fun (origin, seq, sem, ts, hdo, payload) ->
        Proposal.make ~origin ~seq ~semantics:sem ~send_ts:ts ~hdo payload)
      (tup6 gen_proc (int_bound 5) gen_semantics gen_time
         (map (fun h -> h - 1) (int_bound 6))
         (int_bound 1000)))

let gen_oal =
  (* a small oal with a few update entries and maybe a membership *)
  QCheck.Gen.(
    map
      (fun (infos, membership) ->
        let oal =
          List.fold_left
            (fun oal (p : int Proposal.t) ->
              fst
                (Oal.append_update oal
                   {
                     Oal.proposal_id = p.Proposal.id;
                     semantics = p.Proposal.semantics;
                     send_ts = p.Proposal.send_ts;
                     hdo = p.Proposal.hdo;
                   }
                   ~acks:(Proc_set.singleton p.Proposal.id.Proposal.origin)))
            Oal.empty infos
        in
        match membership with
        | Some (group, gid) when not (Proc_set.is_empty group) ->
          fst (Oal.append_membership oal ~group ~group_id:gid)
        | _ -> oal)
      (pair
         (list_size (int_bound 4) gen_proposal)
         (option (pair gen_set gen_gid))))

let gen_msg : (int, unit) Control_msg.t QCheck.Gen.t =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map
            (fun (sem, payload) ->
              Control_msg.Submit { semantics = sem; payload })
            (pair gen_semantics (int_bound 100)) );
        (3, map (fun p -> Control_msg.Proposal_msg p) gen_proposal);
        (1, map (fun p -> Control_msg.Retransmit p) gen_proposal);
        ( 1,
          map
            (fun ps ->
              Control_msg.Nack
                { missing = List.map (fun p -> p.Proposal.id) ps })
            (list_size (int_bound 3) gen_proposal) );
        ( 4,
          map
            (fun (ts, oal, alive) ->
              Control_msg.Decision { d_ts = ts; d_oal = oal; d_alive = alive })
            (triple gen_time gen_oal gen_set) );
        ( 3,
          map
            (fun ((ts, suspect, since), (oal, alive)) ->
              Control_msg.No_decision
                {
                  nd_ts = ts;
                  nd_suspect = suspect;
                  nd_since = since;
                  nd_view = oal;
                  nd_dpd = [];
                  nd_alive = alive;
                })
            (pair (triple gen_time gen_proc gen_time) (pair gen_oal gen_set))
        );
        ( 2,
          map
            (fun (ts, jl, alive) ->
              Control_msg.Join_msg
                { j_ts = ts; j_list = jl; j_alive = alive; j_epoch = 0 })
            (triple gen_time gen_set gen_set) );
        ( 2,
          map
            (fun ((ts, rl, last), (oal, alive)) ->
              Control_msg.Reconfig
                {
                  r_ts = ts;
                  r_list = rl;
                  r_last_decision_ts = last;
                  r_view = oal;
                  r_dpd = [];
                  r_alive = alive;
                })
            (pair (triple gen_time gen_set gen_time) (pair gen_oal gen_set))
        );
        ( 1,
          map
            (fun ((ts, group, gid), oal) ->
              Control_msg.State_transfer
                {
                  st_ts = ts;
                  st_group = group;
                  st_group_id = gid;
                  st_oal = oal;
                  st_app = ();
                  st_buffers = Buffers.empty;
                })
            (pair (triple gen_time gen_set gen_gid) gen_oal) );
      ])

type input =
  | Recv of Proc_id.t * (int, unit) Control_msg.t * Time.t
  | Fire of int * Time.t

let gen_input =
  QCheck.Gen.(
    frequency
      [
        ( 5,
          map
            (fun ((src, msg), dt) -> Recv (src, msg, dt))
            (pair (pair gen_proc gen_msg) gen_time) );
        (2, map (fun (k, dt) -> Fire (k, dt)) (pair (int_range 1 3) gen_time));
      ])

let arb_inputs =
  QCheck.make
    ~print:(fun l -> Fmt.str "%d inputs" (List.length l))
    QCheck.Gen.(list_size (int_range 1 60) gen_input)

(* ------------------------------------------------------------------ *)
(* the fuzz driver *)

type verdict = {
  no_exception : bool;
  group_ids_monotone : bool;
  majority_respected : bool;
  oal_monotone : bool;
  timer_keys_known : bool;
}

let drive inputs =
  let automaton = Member.automaton cfg in
  let state, init_effs =
    automaton.Engine.init ~self:(pid 0) ~n ~clock:Time.zero ~incarnation:0
  in
  let known_keys = [ 1; 2; 3 ] in
  let verdict =
    ref
      {
        no_exception = true;
        group_ids_monotone = true;
        majority_respected = true;
        oal_monotone = true;
        timer_keys_known = true;
      }
  in
  let check_effects effs =
    List.iter
      (fun eff ->
        match eff with
        | Engine.Set_timer { key; _ } | Engine.Cancel_timer key ->
          if not (List.mem key known_keys) then
            verdict := { !verdict with timer_keys_known = false }
        | _ -> ())
      effs
  in
  check_effects init_effs;
  let clock = ref Time.zero in
  let last_gid = ref (Member.group_id state) in
  let last_low = ref (Oal.low (Member.oal_of state)) in
  let last_next = ref (Oal.next_ordinal (Member.oal_of state)) in
  let state = ref state in
  (try
     List.iter
       (fun input ->
         let epoch_before = Group_id.epoch (Member.group_id !state) in
         let state', effs =
           match input with
           | Recv (src, msg, dt) ->
             clock := Time.add !clock dt;
             automaton.Engine.on_receive !state ~clock:!clock ~src msg
           | Fire (key, dt) ->
             clock := Time.add !clock dt;
             automaton.Engine.on_timer !state ~clock:!clock ~key
         in
         check_effects effs;
         state := state';
         (* a state transfer — or a decision carrying a strictly later
            formation epoch — replaces the replica's oal history
            wholesale (the stale history must not be merged under a new
            formation): the monotonicity baseline restarts there *)
         (match input with
         | Recv (_, Control_msg.State_transfer _, _) ->
           last_low := Oal.low (Member.oal_of state');
           last_next := Oal.next_ordinal (Member.oal_of state')
         | Recv (_, Control_msg.Decision { d_oal; _ }, _)
           when (match Oal.latest_membership d_oal with
                | Some (_, _, gid) -> Group_id.epoch gid > epoch_before
                | None -> false) ->
           last_low := Oal.low (Member.oal_of state');
           last_next := Oal.next_ordinal (Member.oal_of state')
         | _ -> ());
         let gid = Member.group_id state' in
         if Group_id.compare gid !last_gid < 0 then
           verdict := { !verdict with group_ids_monotone = false };
         last_gid := Group_id.max !last_gid gid;
         let g = Member.group state' in
         if
           Member.has_group state'
           && Proc_set.mem (pid 0) g
           && not (Proc_set.is_majority g ~n)
         then verdict := { !verdict with majority_respected = false };
         let low = Oal.low (Member.oal_of state') in
         let next = Oal.next_ordinal (Member.oal_of state') in
         if low < !last_low || next < !last_next then
           verdict := { !verdict with oal_monotone = false };
         last_low := max !last_low low;
         last_next := max !last_next next)
       inputs
   with _ -> verdict := { !verdict with no_exception = false });
  !verdict

let prop field_name field =
  QCheck.Test.make ~count:300 ~name:field_name arb_inputs (fun inputs ->
      field (drive inputs))

let () =
  Alcotest.run "member-fuzz"
    [
      ( "robustness",
        [
          qcheck (prop "never raises on arbitrary input" (fun v -> v.no_exception));
          qcheck (prop "group ids never decrease" (fun v -> v.group_ids_monotone));
          qcheck
            (prop "own installed groups hold a majority" (fun v ->
                 v.majority_respected));
          qcheck (prop "oal frontier and ordinals monotone" (fun v -> v.oal_monotone));
          qcheck (prop "timer keys stay in the known set" (fun v -> v.timer_keys_known));
        ] );
    ]
