(* Tests for the timewheel atomic broadcast substrate: the ordering and
   acknowledgement list, proposal buffers, the delivery conditions for
   all nine semantics, decider rotation and the standalone protocol. *)

open Tasim
open Broadcast

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest
let pid = Proc_id.of_int
let set_of ids = Proc_set.of_list (List.map pid ids)

let info ?(sem = Semantics.unordered_weak) ?(ts = Time.of_ms 1) ?(hdo = -1)
    ~origin ~seq () =
  {
    Oal.proposal_id = { Proposal.origin = pid origin; seq };
    semantics = sem;
    send_ts = ts;
    hdo;
  }

let proposal ?(sem = Semantics.unordered_weak) ?(ts = Time.of_ms 1) ?(hdo = -1)
    ~origin ~seq payload =
  Proposal.make ~origin:(pid origin) ~seq ~semantics:sem ~send_ts:ts ~hdo
    payload

(* ------------------------------------------------------------------ *)
(* Semantics *)

let test_semantics_all () =
  check Alcotest.int "nine combinations" 9 (List.length Semantics.all);
  check Alcotest.bool "distinct" true
    (List.length (List.sort_uniq compare Semantics.all) = 9)

(* ------------------------------------------------------------------ *)
(* Proposal ids *)

let test_proposal_id_order () =
  let a = { Proposal.origin = pid 1; seq = 5 } in
  let b = { Proposal.origin = pid 1; seq = 6 } in
  let c = { Proposal.origin = pid 2; seq = 0 } in
  check Alcotest.bool "same origin by seq" true (Proposal.id_compare a b < 0);
  check Alcotest.bool "by origin first" true (Proposal.id_compare b c < 0);
  check Alcotest.bool "equal" true (Proposal.id_equal a a)

(* ------------------------------------------------------------------ *)
(* Oal *)

let test_oal_append_assigns_ordinals () =
  let oal = Oal.empty in
  let oal, o1 = Oal.append_update oal (info ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty in
  let oal, o2 = Oal.append_update oal (info ~origin:2 ~seq:0 ()) ~acks:Proc_set.empty in
  let oal, o3 =
    Oal.append_membership oal ~group:(set_of [ 0; 1 ])
      ~group_id:(Group_id.v ~epoch:0 ~seq:1)
  in
  check Alcotest.int "first" 0 o1;
  check Alcotest.int "second" 1 o2;
  check Alcotest.int "membership too" 2 o3;
  check Alcotest.int "cardinal" 3 (Oal.cardinal oal);
  check Alcotest.int "highest" 2 (Oal.highest_ordinal oal)

let test_oal_find_and_ack () =
  let id = { Proposal.origin = pid 1; seq = 0 } in
  let oal, _ =
    Oal.append_update Oal.empty (info ~origin:1 ~seq:0 ()) ~acks:(set_of [ 1 ])
  in
  let oal = Oal.ack_update oal id (pid 3) in
  (match Oal.find_update oal id with
  | Some e -> check Alcotest.bool "acked" true (Proc_set.mem (pid 3) e.Oal.acks)
  | None -> Alcotest.fail "missing");
  (* acking an absent descriptor is a no-op *)
  let oal' = Oal.ack_update oal { Proposal.origin = pid 9; seq = 9 } (pid 0) in
  check Alcotest.int "no-op" (Oal.cardinal oal) (Oal.cardinal oal')

let test_oal_ack_all_received () =
  let oal, _ =
    Oal.append_update Oal.empty (info ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let oal, _ =
    Oal.append_update oal (info ~origin:2 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let received id = id.Proposal.origin = pid 1 in
  let oal = Oal.ack_all_received oal ~received ~by:(pid 4) in
  let acked origin =
    match Oal.find_update oal { Proposal.origin = pid origin; seq = 0 } with
    | Some e -> Proc_set.mem (pid 4) e.Oal.acks
    | None -> false
  in
  check Alcotest.bool "received one acked" true (acked 1);
  check Alcotest.bool "other not" false (acked 2)

let test_oal_stability_and_purge () =
  let group = set_of [ 0; 1; 2 ] in
  let oal, o0 =
    Oal.append_update Oal.empty (info ~origin:0 ~seq:0 ()) ~acks:group
  in
  let oal, o1 =
    Oal.append_update oal (info ~origin:1 ~seq:0 ()) ~acks:(set_of [ 0 ])
  in
  let oal = Oal.refresh_stability oal ~group in
  let stable o =
    match Oal.entry_at oal o with
    | Some e -> e.Oal.known_stable
    | None -> false
  in
  check Alcotest.bool "full acks stable" true (stable o0);
  check Alcotest.bool "partial acks not" false (stable o1);
  (* purge advances over stable AND delivered entries only *)
  let purged = Oal.purge_stable oal ~delivered:(fun o -> o = o0) in
  check Alcotest.int "low advanced" (o0 + 1) (Oal.low purged);
  check Alcotest.bool "purged entry gone" true (Oal.entry_at purged o0 = None);
  (* not delivered: purge stops *)
  let kept = Oal.purge_stable oal ~delivered:(fun _ -> false) in
  check Alcotest.int "nothing purged" 0 (Oal.low kept)

let test_oal_merge_authoritative () =
  (* receiver has a shorter list; incoming extends it and unions acks *)
  let local, _ =
    Oal.append_update Oal.empty (info ~origin:0 ~seq:0 ()) ~acks:(set_of [ 0 ])
  in
  let incoming, _ =
    Oal.append_update Oal.empty (info ~origin:0 ~seq:0 ()) ~acks:(set_of [ 1 ])
  in
  let incoming, _ =
    Oal.append_update incoming (info ~origin:1 ~seq:0 ()) ~acks:(set_of [ 1 ])
  in
  let merged = Oal.merge ~local ~incoming in
  check Alcotest.int "extended" 2 (Oal.cardinal merged);
  (match Oal.entry_at merged 0 with
  | Some e ->
    check Alcotest.bool "acks unioned" true
      (Proc_set.equal e.Oal.acks (set_of [ 0; 1 ]))
  | None -> Alcotest.fail "entry lost");
  check Alcotest.int "next ordinal" 2 (Oal.next_ordinal merged)

let test_oal_merge_purged_incoming_marks_stable () =
  (* incoming low=2 tells the receiver ordinals 0,1 are stable *)
  let local, _ =
    Oal.append_update Oal.empty (info ~origin:0 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let local, _ =
    Oal.append_update local (info ~origin:0 ~seq:1 ()) ~acks:Proc_set.empty
  in
  let incoming, _ =
    Oal.append_update Oal.empty (info ~origin:0 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let incoming, _ =
    Oal.append_update incoming (info ~origin:0 ~seq:1 ()) ~acks:Proc_set.empty
  in
  let incoming =
    Oal.refresh_stability
      (Oal.ack_all_received incoming ~received:(fun _ -> true) ~by:(pid 0))
      ~group:(set_of [ 0 ])
  in
  let incoming = Oal.purge_stable incoming ~delivered:(fun _ -> true) in
  check Alcotest.int "incoming purged" 2 (Oal.low incoming);
  let merged = Oal.merge ~local ~incoming in
  match Oal.entry_at merged 0 with
  | Some e -> check Alcotest.bool "learned stability" true e.Oal.known_stable
  | None -> Alcotest.fail "local entry should remain until delivered"

let test_oal_undeliverable_marks () =
  let id = { Proposal.origin = pid 1; seq = 0 } in
  let oal, _ =
    Oal.append_update Oal.empty (info ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let oal = Oal.mark_undeliverable oal id in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "listed"
    [ (1, 0) ]
    (List.map
       (fun (i : Proposal.id) -> (Proc_id.to_int i.Proposal.origin, i.Proposal.seq))
       (Oal.undeliverable_ids oal));
  (* undeliverable or-ed through merge *)
  let plain, _ =
    Oal.append_update Oal.empty (info ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let merged = Oal.merge ~local:plain ~incoming:oal in
  match Oal.find_update merged id with
  | Some e -> check Alcotest.bool "mark survives merge" true e.Oal.undeliverable
  | None -> Alcotest.fail "entry lost"

let test_oal_latest_membership () =
  let oal, _ =
    Oal.append_membership Oal.empty ~group:(set_of [ 0; 1; 2 ])
      ~group_id:(Group_id.v ~epoch:0 ~seq:0)
  in
  let oal, _ = Oal.append_update oal (info ~origin:0 ~seq:0 ()) ~acks:Proc_set.empty in
  let oal, o =
    Oal.append_membership oal ~group:(set_of [ 0; 1 ])
      ~group_id:(Group_id.v ~epoch:0 ~seq:1)
  in
  match Oal.latest_membership oal with
  | Some (ordinal, group, gid) ->
    check Alcotest.int "ordinal" o ordinal;
    check Alcotest.int "gid" 1 (Group_id.seq gid);
    check Alcotest.bool "group" true (Proc_set.equal group (set_of [ 0; 1 ]))
  | None -> Alcotest.fail "no membership found"

let test_oal_is_prefix () =
  let a, _ = Oal.append_update Oal.empty (info ~origin:0 ~seq:0 ()) ~acks:Proc_set.empty in
  let b, _ = Oal.append_update a (info ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty in
  check Alcotest.bool "a prefix of b" true (Oal.is_prefix a ~of_:b);
  check Alcotest.bool "b not prefix of a" false (Oal.is_prefix b ~of_:a);
  (* divergent body at same ordinal is not a prefix *)
  let c, _ = Oal.append_update Oal.empty (info ~origin:9 ~seq:9 ()) ~acks:Proc_set.empty in
  check Alcotest.bool "divergent" false (Oal.is_prefix c ~of_:b)

let prop_oal_merge_preserves_prefix =
  (* merging a view that extends mine yields something my old list is a
     prefix of *)
  QCheck.Test.make ~name:"merge(local, extension) keeps local as prefix"
    QCheck.(pair (int_range 0 6) (int_range 0 6))
    (fun (base, extra) ->
      let build from count start =
        List.fold_left
          (fun oal i ->
            fst
              (Oal.append_update oal
                 (info ~origin:(i mod 3) ~seq:i ())
                 ~acks:Proc_set.empty))
          from
          (List.init count (fun i -> start + i))
      in
      let local = build Oal.empty base 0 in
      let incoming = build local extra base in
      let merged = Oal.merge ~local ~incoming in
      Oal.is_prefix local ~of_:merged && Oal.is_prefix incoming ~of_:merged)

let gen_small_oal =
  QCheck.Gen.(
    map
      (fun specs ->
        List.fold_left
          (fun oal (origin, seq, acks) ->
            fst
              (Oal.append_update oal
                 (info ~origin ~seq ())
                 ~acks:(set_of acks)))
          Oal.empty specs)
      (list_size (int_bound 8)
         (triple (int_bound 4) (int_bound 20) (list_size (int_bound 4) (int_bound 4)))))

let arb_oal = QCheck.make ~print:(fun o -> Fmt.str "%a" Oal.pp o) gen_small_oal

(* wire view: the serialization image used by the live runtime's codec
   must reconstruct the oal exactly, and reject inconsistent images *)

let prop_oal_wire_round_trip =
  QCheck.Test.make ~name:"of_wire (to_wire o) reconstructs o exactly" arb_oal
    (fun oal ->
      (* exercise the purge path too, so w_low > 0 and the
         latest-membership memo cross the wire *)
      let oal, _ =
        Oal.append_membership oal ~group:(set_of [ 0; 1 ])
          ~group_id:{ Group_id.epoch = 1; seq = 2 }
      in
      match Oal.of_wire (Oal.to_wire oal) with
      | Error e -> QCheck.Test.fail_reportf "of_wire rejected to_wire: %s" e
      | Ok back ->
        Oal.low back = Oal.low oal
        && Oal.next_ordinal back = Oal.next_ordinal oal
        && Oal.entries back = Oal.entries oal
        && Oal.latest_membership back = Oal.latest_membership oal)

let test_oal_of_wire_rejects () =
  let entry ordinal =
    {
      Oal.ordinal;
      body = Oal.Update (info ~origin:0 ~seq:ordinal ());
      acks = set_of [ 0 ];
      undeliverable = false;
      known_stable = false;
    }
  in
  let reject name wire =
    match Oal.of_wire wire with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" name
  in
  reject "unordered ordinals"
    { Oal.w_low = 0; w_next_ordinal = 2; w_entries = [ entry 1; entry 0 ];
      w_latest = None };
  reject "duplicate ordinals"
    { Oal.w_low = 0; w_next_ordinal = 2; w_entries = [ entry 0; entry 0 ];
      w_latest = None };
  reject "entry below the frontier"
    { Oal.w_low = 3; w_next_ordinal = 5; w_entries = [ entry 2 ];
      w_latest = None };
  reject "entry beyond the counter"
    { Oal.w_low = 0; w_next_ordinal = 1; w_entries = [ entry 1 ];
      w_latest = None };
  match
    Oal.of_wire
      { Oal.w_low = 1; w_next_ordinal = 3; w_entries = [ entry 1; entry 2 ];
        w_latest = None }
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "valid purged image rejected: %s" e

let test_buffers_wire_round_trip () =
  let p origin seq =
    Proposal.make ~origin:(pid origin) ~seq ~semantics:Semantics.total_strong
      ~send_ts:(Time.of_ms 3) ~hdo:1 ("u" ^ string_of_int seq)
  in
  let b = Buffers.empty in
  let b = fst (Buffers.store b (p 0 1)) in
  let b = fst (Buffers.store b (p 1 2)) in
  let b = Buffers.note_delivered b (p 0 1).Proposal.id ~ordinal:(Some 4) in
  let back = Buffers.of_wire (Buffers.to_wire b) in
  let wire = Buffers.to_wire b and wire' = Buffers.to_wire back in
  Alcotest.(check int) "proposals survive" 2
    (List.length wire'.Buffers.w_proposals);
  Alcotest.(check bool) "wire image is a fixed point" true (wire = wire');
  Alcotest.(check bool) "delivered ordinal survives" true
    (Buffers.delivered back (p 0 1).Proposal.id);
  Alcotest.(check bool) "undelivered stays undelivered" false
    (Buffers.delivered back (p 1 2).Proposal.id)

let prop_oal_merge_idempotent =
  QCheck.Test.make ~name:"merge(o, o) preserves bodies and ordinals" arb_oal
    (fun oal ->
      let merged = Oal.merge ~local:oal ~incoming:oal in
      Oal.is_prefix oal ~of_:merged
      && Oal.cardinal merged = Oal.cardinal oal
      && Oal.next_ordinal merged = Oal.next_ordinal oal)

let prop_oal_merge_next_ordinal_monotone =
  QCheck.Test.make ~name:"merge never loses ordinal ground"
    QCheck.(pair arb_oal arb_oal)
    (fun (a, b) ->
      let m = Oal.merge ~local:a ~incoming:b in
      Oal.next_ordinal m >= Oal.next_ordinal a
      && Oal.next_ordinal m >= Oal.next_ordinal b
      && Oal.low m = Oal.low a)

let prop_oal_purge_only_advances =
  QCheck.Test.make ~name:"purge_stable only advances the frontier" arb_oal
    (fun oal ->
      let oal = Oal.refresh_stability oal ~group:(set_of [ 0; 1 ]) in
      let purged = Oal.purge_stable oal ~delivered:(fun o -> o mod 2 = 0) in
      Oal.low purged >= Oal.low oal
      && Oal.cardinal purged <= Oal.cardinal oal)

(* ------------------------------------------------------------------ *)
(* Buffers *)

let test_buffers_store_dedup () =
  let b = Buffers.empty in
  let p = proposal ~origin:1 ~seq:0 "x" in
  let b, fresh1 = Buffers.store b p in
  let _, fresh2 = Buffers.store b p in
  check Alcotest.bool "first" true fresh1;
  check Alcotest.bool "dup" false fresh2;
  check Alcotest.bool "received" true (Buffers.received b p.Proposal.id)

let test_buffers_delivery_bookkeeping () =
  let p = proposal ~origin:1 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty p in
  let b = Buffers.note_delivered b p.Proposal.id ~ordinal:(Some 3) in
  check Alcotest.bool "delivered" true (Buffers.delivered b p.Proposal.id);
  check Alcotest.bool "ordinal" true (Buffers.delivered_ordinal b 3);
  check Alcotest.int "highest" 3 (Buffers.highest_delivered_ordinal b);
  (* payload retained for retransmission until compacted *)
  check Alcotest.bool "payload kept" true (Buffers.get b p.Proposal.id <> None);
  let b = Buffers.compact b ~purged:(fun o -> o <= 3) in
  check Alcotest.bool "payload dropped" true (Buffers.get b p.Proposal.id = None)

let test_buffers_dpd () =
  let p = proposal ~origin:1 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty p in
  let b = Buffers.note_delivered b p.Proposal.id ~ordinal:None in
  check Alcotest.int "in dpd" 1 (List.length (Buffers.dpd b));
  let b = Buffers.note_ordinal b p.Proposal.id 7 in
  check Alcotest.int "ordinal learned" 0 (List.length (Buffers.dpd b));
  check Alcotest.bool "now counted" true (Buffers.delivered_ordinal b 7)

let test_buffers_marks_and_expiry () =
  let p = proposal ~origin:1 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty p in
  let b = Buffers.mark_undeliverable b p.Proposal.id ~expires:(Time.of_ms 100) in
  check Alcotest.bool "marked" true
    (Buffers.is_marked b p.Proposal.id ~now:(Time.of_ms 50));
  check Alcotest.bool "expired" false
    (Buffers.is_marked b p.Proposal.id ~now:(Time.of_ms 150));
  let b = Buffers.expire_marks b ~now:(Time.of_ms 150) in
  check Alcotest.bool "cleared" false
    (Buffers.is_marked b p.Proposal.id ~now:(Time.of_ms 50))

let test_buffers_block_origin () =
  let b =
    Buffers.block_origin Buffers.empty (pid 2) ~expires:(Time.of_ms 100)
  in
  let from2 = { Proposal.origin = pid 2; seq = 9 } in
  let from3 = { Proposal.origin = pid 3; seq = 9 } in
  check Alcotest.bool "origin blocked" true
    (Buffers.is_marked b from2 ~now:(Time.of_ms 10));
  check Alcotest.bool "other origin fine" false
    (Buffers.is_marked b from3 ~now:(Time.of_ms 10))

let test_buffers_purge_marked () =
  let p = proposal ~origin:2 ~seq:0 "x" in
  let q = proposal ~origin:3 ~seq:0 "y" in
  let b, _ = Buffers.store Buffers.empty p in
  let b, _ = Buffers.store b q in
  let b = Buffers.block_origin b (pid 2) ~expires:(Time.of_ms 100) in
  let b = Buffers.purge_marked b ~now:(Time.of_ms 10) in
  check Alcotest.bool "marked purged" true (Buffers.get b p.Proposal.id = None);
  check Alcotest.bool "other kept" true (Buffers.get b q.Proposal.id <> None)

(* ------------------------------------------------------------------ *)
(* Delivery conditions *)

let deliver_ids ~oal ~buffers ~now =
  let ds, buffers' =
    Delivery.step ~oal ~buffers ~now_sync:now ~timed_delay:(Time.of_ms 100)
  in
  ( List.map (fun d -> (d.Delivery.proposal.Proposal.id, d.Delivery.ordinal)) ds,
    buffers' )

let test_delivery_unordered_weak_immediate () =
  let p = proposal ~origin:1 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty p in
  let ids, _ = deliver_ids ~oal:Oal.empty ~buffers:b ~now:Time.zero in
  check Alcotest.int "delivered without ordinal" 1 (List.length ids);
  match ids with
  | [ (_, ordinal) ] -> check (Alcotest.option Alcotest.int) "no ordinal" None ordinal
  | _ -> Alcotest.fail "unexpected"

let test_delivery_total_needs_ordinal () =
  let sem = Semantics.{ ordering = Total; atomicity = Weak } in
  let p = proposal ~sem ~origin:1 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty p in
  let ids, _ = deliver_ids ~oal:Oal.empty ~buffers:b ~now:Time.zero in
  check Alcotest.int "blocked without ordinal" 0 (List.length ids);
  let oal, _ =
    Oal.append_update Oal.empty
      (info ~sem ~origin:1 ~seq:0 ())
      ~acks:Proc_set.empty
  in
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:Time.zero in
  check Alcotest.int "delivered once ordered" 1 (List.length ids)

let test_delivery_total_gap_blocks () =
  let sem = Semantics.{ ordering = Total; atomicity = Weak } in
  (* two ordered proposals; the payload of ordinal 0 is missing *)
  let oal, _ =
    Oal.append_update Oal.empty (info ~sem ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let oal, _ =
    Oal.append_update oal (info ~sem ~origin:2 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let later = proposal ~sem ~origin:2 ~seq:0 "later" in
  let b, _ = Buffers.store Buffers.empty later in
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:Time.zero in
  check Alcotest.int "gap blocks" 0 (List.length ids);
  (* once the gap entry is marked undeliverable, delivery resumes *)
  let oal = Oal.mark_undeliverable oal { Proposal.origin = pid 1; seq = 0 } in
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:Time.zero in
  check Alcotest.int "skip undeliverable" 1 (List.length ids)

let test_delivery_total_in_ordinal_order () =
  let sem = Semantics.{ ordering = Total; atomicity = Weak } in
  let p0 = proposal ~sem ~origin:1 ~seq:0 "a" in
  let p1 = proposal ~sem ~origin:2 ~seq:0 "b" in
  let oal, _ =
    Oal.append_update Oal.empty (info ~sem ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let oal, _ =
    Oal.append_update oal (info ~sem ~origin:2 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let b, _ = Buffers.store Buffers.empty p1 in
  let b, _ = Buffers.store b p0 in
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:Time.zero in
  check
    (Alcotest.list (Alcotest.option Alcotest.int))
    "ascending ordinals" [ Some 0; Some 1 ] (List.map snd ids)

let test_delivery_strong_needs_deps_received () =
  let strong = Semantics.{ ordering = Total; atomicity = Strong } in
  (* dependency at ordinal 0 not received; pr has hdo = 0 *)
  let oal, _ =
    Oal.append_update Oal.empty (info ~origin:1 ~seq:0 ()) ~acks:Proc_set.empty
  in
  let oal, _ =
    Oal.append_update oal
      (info ~sem:strong ~hdo:0 ~origin:2 ~seq:0 ())
      ~acks:Proc_set.empty
  in
  let pr = proposal ~sem:strong ~hdo:0 ~origin:2 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty pr in
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:Time.zero in
  check Alcotest.int "blocked: dep not received" 0 (List.length ids);
  (* receiving the dependency unblocks (and the dep delivers first) *)
  let dep = proposal ~origin:1 ~seq:0 "dep" in
  let b, _ = Buffers.store b dep in
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:Time.zero in
  check Alcotest.int "both deliver" 2 (List.length ids)

let test_delivery_strict_needs_stability () =
  let strict = Semantics.{ ordering = Total; atomicity = Strict } in
  let group = set_of [ 0; 1; 2 ] in
  let dep = proposal ~origin:1 ~seq:0 "dep" in
  let pr = proposal ~sem:strict ~hdo:0 ~origin:2 ~seq:0 "x" in
  let oal, _ =
    Oal.append_update Oal.empty (info ~origin:1 ~seq:0 ()) ~acks:(set_of [ 0 ])
  in
  let oal, _ =
    Oal.append_update oal
      (info ~sem:strict ~hdo:0 ~origin:2 ~seq:0 ())
      ~acks:Proc_set.empty
  in
  let b, _ = Buffers.store Buffers.empty dep in
  let b, _ = Buffers.store b pr in
  (* dep received but not stable: dep (weak) delivers, pr must wait *)
  let ids, b' = deliver_ids ~oal ~buffers:b ~now:Time.zero in
  check Alcotest.int "only the weak dep" 1 (List.length ids);
  (* stability of the dependency unblocks strict delivery *)
  let oal = Oal.ack_update oal dep.Proposal.id (pid 1) in
  let oal = Oal.ack_update oal dep.Proposal.id (pid 2) in
  let oal = Oal.refresh_stability oal ~group in
  let ids, _ = deliver_ids ~oal ~buffers:b' ~now:Time.zero in
  check Alcotest.int "strict delivers after stability" 1 (List.length ids)

let test_delivery_timed_waits () =
  let timed = Semantics.{ ordering = Timed; atomicity = Weak } in
  let pr = proposal ~sem:timed ~ts:(Time.of_ms 50) ~origin:1 ~seq:0 "x" in
  let oal, _ =
    Oal.append_update Oal.empty
      (info ~sem:timed ~ts:(Time.of_ms 50) ~origin:1 ~seq:0 ())
      ~acks:Proc_set.empty
  in
  let b, _ = Buffers.store Buffers.empty pr in
  (* timed_delay is 100ms: not deliverable before 150ms *)
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:(Time.of_ms 100) in
  check Alcotest.int "too early" 0 (List.length ids);
  let ids, _ = deliver_ids ~oal ~buffers:b ~now:(Time.of_ms 150) in
  check Alcotest.int "at the instant" 1 (List.length ids)

let test_delivery_no_redelivery () =
  let p = proposal ~origin:1 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty p in
  let ids, b = deliver_ids ~oal:Oal.empty ~buffers:b ~now:Time.zero in
  check Alcotest.int "first" 1 (List.length ids);
  let ids, _ = deliver_ids ~oal:Oal.empty ~buffers:b ~now:Time.zero in
  check Alcotest.int "never twice" 0 (List.length ids)

let test_delivery_blocked_reason () =
  let sem = Semantics.{ ordering = Total; atomicity = Weak } in
  let p = proposal ~sem ~origin:1 ~seq:0 "x" in
  let b, _ = Buffers.store Buffers.empty p in
  match
    Delivery.blocked_reason ~oal:Oal.empty ~buffers:b ~now_sync:Time.zero
      ~timed_delay:(Time.of_ms 100) p
  with
  | Some reason -> check Alcotest.string "reason" "no ordinal yet" reason
  | None -> Alcotest.fail "expected a blocked reason"

(* ------------------------------------------------------------------ *)
(* Rotation *)

let test_rotation () =
  let group = set_of [ 0; 2; 4 ] in
  check Alcotest.int "next after 0" 2
    (Proc_id.to_int (Rotation.next_decider ~group ~after:(pid 0) ~n:5));
  check Alcotest.int "wraps" 0
    (Proc_id.to_int (Rotation.next_decider ~group ~after:(pid 4) ~n:5));
  check Alcotest.int "after non-member" 4
    (Proc_id.to_int (Rotation.next_decider ~group ~after:(pid 3) ~n:5));
  check Alcotest.int "cycle length" (Time.of_ms 90)
    (Rotation.cycle_length ~group ~d:(Time.of_ms 30));
  check Alcotest.bool "is_next" true
    (Rotation.is_next_decider ~group ~after:(pid 0) ~n:5 (pid 2))

(* ------------------------------------------------------------------ *)
(* Standalone protocol integration *)

let run_protocol ~n ~seed ~submissions ~until =
  let cfg = Protocol.default_config in
  let engine = Engine.create { Engine.default_config with Engine.seed } ~n in
  Engine.classify engine Protocol.kind_of_msg;
  let delivered : (Proc_id.t * int, int) Hashtbl.t = Hashtbl.create 64 in
  let order : (Proc_id.t, int list) Hashtbl.t = Hashtbl.create 8 in
  Engine.on_observe engine (fun _at proc obs ->
      match obs with
      | Protocol.Delivered { proposal; _ } ->
        Hashtbl.replace delivered (proc, proposal.Proposal.payload) 1;
        let prev = try Hashtbl.find order proc with Not_found -> [] in
        Hashtbl.replace order proc (proposal.Proposal.payload :: prev)
      | Protocol.Became_decider | Protocol.Stable _ -> ());
  let automaton = Protocol.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  List.iter
    (fun (at, origin, sem, payload) ->
      Engine.inject_at engine at (pid origin)
        (Protocol.Submit { semantics = sem; payload }))
    submissions;
  Engine.run engine ~until;
  (engine, delivered, order)

let test_protocol_total_order_agreement () =
  let n = 5 in
  let sem = Semantics.total_strong in
  let submissions =
    List.init 20 (fun i ->
        (Time.of_ms (100 + (15 * i)), i mod n, sem, i))
  in
  let _, delivered, order =
    run_protocol ~n ~seed:77 ~submissions ~until:(Time.of_sec 3)
  in
  (* everyone delivered everything *)
  List.iter
    (fun id ->
      List.iter
        (fun i ->
          if not (Hashtbl.mem delivered (id, i)) then
            Alcotest.failf "p%d missed %d" (Proc_id.to_int id) i)
        (List.init 20 Fun.id))
    (Proc_id.all ~n);
  (* identical delivery order at all members *)
  let orders =
    List.map
      (fun id -> List.rev (try Hashtbl.find order id with Not_found -> []))
      (Proc_id.all ~n)
  in
  match orders with
  | first :: rest ->
    List.iter
      (fun o -> check (Alcotest.list Alcotest.int) "same order" first o)
      rest
  | [] -> Alcotest.fail "no orders"

let test_protocol_loss_recovery_via_nack () =
  (* drop many proposal datagrams (decisions stay intact: the standalone
     substrate assumes a live decider chain); the oal-driven negative
     acknowledgements must recover the payloads *)
  let n = 5 in
  let cfg = Protocol.default_config in
  let engine =
    Engine.create { Engine.default_config with Engine.seed = 78 } ~n
  in
  let drop_rng = Rng.create 4242 in
  Net.add_filter (Engine.net engine) ~name:"lossy-proposals"
    (fun ~src:_ ~dst:_ msg ->
      match msg with
      | Protocol.Proposal_msg _ -> Rng.bool drop_rng 0.4
      | _ -> false);
  Engine.classify engine Protocol.kind_of_msg;
  let delivered : (Proc_id.t * int, int) Hashtbl.t = Hashtbl.create 64 in
  Engine.on_observe engine (fun _at proc obs ->
      match obs with
      | Protocol.Delivered { proposal; _ } ->
        Hashtbl.replace delivered (proc, proposal.Proposal.payload) 1
      | _ -> ());
  let automaton = Protocol.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  (* totals only: unordered could deliver without every member having it *)
  let sem = Semantics.{ ordering = Total; atomicity = Weak } in
  for i = 0 to 9 do
    Engine.inject_at engine (Time.of_ms (100 + (50 * i))) (pid (i mod n))
      (Protocol.Submit { semantics = sem; payload = i })
  done;
  Engine.run engine ~until:(Time.of_sec 8);
  let missing = ref 0 in
  List.iter
    (fun id ->
      for i = 0 to 9 do
        if not (Hashtbl.mem delivered (id, i)) then incr missing
      done)
    (Proc_id.all ~n);
  check Alcotest.int "all recovered" 0 !missing;
  check Alcotest.bool "nacks were used" true
    (Stats.count (Engine.stats engine) "sent:nack" > 0)

let test_protocol_fifo_per_sender () =
  let n = 3 in
  let sem = Semantics.{ ordering = Total; atomicity = Weak } in
  (* p0 proposes 0,1,2,3 rapidly *)
  let submissions =
    List.init 4 (fun i -> (Time.of_ms (100 + i), 0, sem, i))
  in
  let _, _, order =
    run_protocol ~n ~seed:79 ~submissions ~until:(Time.of_sec 2)
  in
  List.iter
    (fun id ->
      let o = List.rev (try Hashtbl.find order id with Not_found -> []) in
      check (Alcotest.list Alcotest.int) "FIFO" [ 0; 1; 2; 3 ] o)
    (Proc_id.all ~n)

let test_protocol_stability_reported () =
  let n = 3 in
  let cfg = Protocol.default_config in
  let engine = Engine.create { Engine.default_config with Engine.seed = 80 } ~n in
  let stable = ref 0 in
  Engine.on_observe engine (fun _at _proc obs ->
      match obs with Protocol.Stable _ -> incr stable | _ -> ());
  let automaton = Protocol.automaton cfg in
  List.iter
    (fun id -> Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
    (Proc_id.all ~n);
  Engine.inject_at engine (Time.of_ms 100) (pid 0)
    (Protocol.Submit { semantics = Semantics.unordered_weak; payload = 1 });
  Engine.run engine ~until:(Time.of_sec 2);
  check Alcotest.bool "stability observed at every member" true (!stable >= n)

(* property: under random proposal loss, every seed still reaches
   total-order agreement at all members (the nack machinery always
   recovers), and FIFO per sender holds *)
let prop_agreement_under_loss =
  QCheck.Test.make ~count:15 ~name:"total order agreement under proposal loss"
    QCheck.(pair (int_range 1 10_000) (int_range 0 40))
    (fun (seed, loss_pct) ->
      let n = 5 in
      let cfg = Protocol.default_config in
      let engine =
        Engine.create { Engine.default_config with Engine.seed } ~n
      in
      let drop_rng = Rng.create (seed + 1) in
      Net.add_filter (Engine.net engine) ~name:"loss"
        (fun ~src:_ ~dst:_ msg ->
          match msg with
          | Protocol.Proposal_msg _ ->
            Rng.bool drop_rng (float_of_int loss_pct /. 100.0)
          | _ -> false);
      let order : (Proc_id.t, int list) Hashtbl.t = Hashtbl.create 8 in
      Engine.on_observe engine (fun _at proc obs ->
          match obs with
          | Protocol.Delivered { proposal; _ } ->
            let prev = try Hashtbl.find order proc with Not_found -> [] in
            Hashtbl.replace order proc (proposal.Proposal.payload :: prev)
          | _ -> ());
      let automaton = Protocol.automaton cfg in
      List.iter
        (fun id ->
          Engine.add_process engine id automaton ~clock:Engine.ideal_clock ())
        (Proc_id.all ~n);
      let sem = Semantics.{ ordering = Total; atomicity = Weak } in
      for i = 0 to 11 do
        Engine.inject_at engine
          (Time.of_ms (100 + (40 * i)))
          (pid (i mod n))
          (Protocol.Submit { semantics = sem; payload = i })
      done;
      Engine.run engine ~until:(Time.of_sec 8);
      let orders =
        List.map
          (fun id -> List.rev (try Hashtbl.find order id with Not_found -> []))
          (Proc_id.all ~n)
      in
      match orders with
      | first :: rest ->
        List.length first = 12 && List.for_all (( = ) first) rest
      | [] -> false)

(* ------------------------------------------------------------------ *)
(* Dissemination: the epoch-aware piggyback queue and probe targets *)

module Q = Dissemination.Queue

let test_queue_push_drain () =
  let q, fresh = Q.push Q.empty ~epoch:0 ~stamp:1 ~forwards:2 "a" in
  check Alcotest.bool "first push fresh" true fresh;
  let q, fresh = Q.push q ~epoch:0 ~stamp:1 ~forwards:2 "a-dup" in
  check Alcotest.bool "equal rank stale" false fresh;
  let q, fresh = Q.push q ~epoch:0 ~stamp:3 ~forwards:2 "b" in
  check Alcotest.bool "higher stamp fresh" true fresh;
  check Alcotest.int "two queued" 2 (Q.length q);
  let items, q = Q.drain q ~budget:1 in
  check (Alcotest.list Alcotest.string) "highest rank first" [ "b" ] items;
  let items, q = Q.drain q ~budget:5 in
  (* second drain: both items again ("b" has one forward left) *)
  check (Alcotest.list Alcotest.string) "budget covers both" [ "b"; "a" ] items;
  let items, q = Q.drain q ~budget:5 in
  (* "b" rode 2 drains, "a" rode 2: both exhausted except "a" joined late *)
  check (Alcotest.list Alcotest.string) "forwards exhausted" [ "a" ] items;
  check Alcotest.bool "queue drains dry" true (Q.is_empty (snd (Q.drain q ~budget:5)));
  check (Alcotest.option (Alcotest.pair Alcotest.int Alcotest.int))
    "high-water survives draining" (Some (0, 3)) (Q.seen q)

let test_queue_epoch_invalidation () =
  let q, _ = Q.push Q.empty ~epoch:1 ~stamp:9 ~forwards:3 "old" in
  let q, fresh = Q.push q ~epoch:2 ~stamp:0 ~forwards:3 "new" in
  check Alcotest.bool "higher epoch fresh despite lower stamp" true fresh;
  check Alcotest.int "lower-epoch item dropped" 1 (Q.length q);
  let items, q = Q.drain q ~budget:4 in
  check (Alcotest.list Alcotest.string) "only the new epoch rides" [ "new" ] items;
  let q, fresh = Q.push q ~epoch:1 ~stamp:50 ~forwards:3 "stale-epoch" in
  check Alcotest.bool "lower epoch never re-accepted" false fresh;
  check Alcotest.int "still just the new item" 1 (Q.length q)

(* property: drains respect the budget, return items in descending
   rank, and never yield a lower epoch after a higher epoch has been
   drained (the queue is single-epoch once invalidation runs) *)
let prop_queue_budget_and_epoch_monotone =
  QCheck.Test.make ~count:200
    ~name:"dissemination queue: budget respected, epochs monotone"
    QCheck.(pair (int_range 0 100_000) (int_range 1 60))
    (fun (seed, steps) ->
      let rng = Rng.create seed in
      let q = ref Q.empty in
      let top_epoch = ref (-1) in
      let ok = ref true in
      for _ = 1 to steps do
        if Rng.bool rng 0.6 then begin
          let epoch = Rng.int rng 4 and stamp = Rng.int rng 50 in
          let q', fresh =
            Q.push !q ~epoch ~stamp ~forwards:(1 + Rng.int rng 3) (epoch, stamp)
          in
          (* freshness must agree with the advertised high-water mark *)
          (match Q.seen !q with
          | Some hw -> if fresh <> (compare (epoch, stamp) hw > 0) then ok := false
          | None -> if not fresh then ok := false);
          q := q'
        end
        else begin
          let budget = 1 + Rng.int rng 5 in
          let items, q' = Q.drain !q ~budget in
          q := q';
          if List.length items > budget then ok := false;
          if List.sort (fun a b -> compare b a) items <> items then ok := false;
          List.iter
            (fun (e, _) ->
              if e < !top_epoch then ok := false
              else if e > !top_epoch then top_epoch := e)
            items
        end
      done;
      !ok)

let test_probe_targets () =
  let group = set_of [ 0; 1; 2; 3; 4 ] in
  let targets r =
    Dissemination.probe_targets ~group ~self:(pid 1) ~n:5 ~fanout:2 ~round:r
  in
  (* the ring successor leads every round: it feeds the member whose
     surveillance watches us *)
  List.iter
    (fun r ->
      match targets r with
      | succ :: rest ->
        check Alcotest.int (Fmt.str "round %d: successor first" r) 2
          (Proc_id.to_int succ);
        check Alcotest.bool "fanout bound" true (List.length rest <= 1);
        List.iter
          (fun t ->
            check Alcotest.bool "target in group, not self" true
              (Proc_set.mem t group && not (Proc_id.equal t (pid 1))))
          rest
      | [] -> Alcotest.fail "no targets in a 5-member group")
    [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  (* over consecutive rounds every other member is probed *)
  let probed =
    List.fold_left
      (fun acc r -> List.fold_left (fun acc t -> Proc_set.add t acc) acc (targets r))
      Proc_set.empty [ 0; 1; 2; 3; 4; 5; 6; 7 ]
  in
  check Alcotest.int "rotation covers the group" 4 (Proc_set.cardinal probed);
  check
    (Alcotest.list Alcotest.int)
    "lone member probes no one" []
    (List.map Proc_id.to_int
       (Dissemination.probe_targets ~group:(set_of [ 1 ]) ~self:(pid 1) ~n:5
          ~fanout:2 ~round:0))

let () =
  Alcotest.run "broadcast"
    [
      ( "semantics",
        [
          Alcotest.test_case "all" `Quick test_semantics_all;
          Alcotest.test_case "proposal ids" `Quick test_proposal_id_order;
        ] );
      ( "oal",
        [
          Alcotest.test_case "append ordinals" `Quick test_oal_append_assigns_ordinals;
          Alcotest.test_case "find/ack" `Quick test_oal_find_and_ack;
          Alcotest.test_case "ack_all_received" `Quick test_oal_ack_all_received;
          Alcotest.test_case "stability/purge" `Quick test_oal_stability_and_purge;
          Alcotest.test_case "merge" `Quick test_oal_merge_authoritative;
          Alcotest.test_case "merge purged" `Quick test_oal_merge_purged_incoming_marks_stable;
          Alcotest.test_case "undeliverable" `Quick test_oal_undeliverable_marks;
          Alcotest.test_case "latest membership" `Quick test_oal_latest_membership;
          Alcotest.test_case "is_prefix" `Quick test_oal_is_prefix;
          qcheck prop_oal_merge_preserves_prefix;
          qcheck prop_oal_wire_round_trip;
          Alcotest.test_case "of_wire rejects bad images" `Quick
            test_oal_of_wire_rejects;
          qcheck prop_oal_merge_idempotent;
          qcheck prop_oal_merge_next_ordinal_monotone;
          qcheck prop_oal_purge_only_advances;
        ] );
      ( "buffers",
        [
          Alcotest.test_case "store/dedup" `Quick test_buffers_store_dedup;
          Alcotest.test_case "delivery" `Quick test_buffers_delivery_bookkeeping;
          Alcotest.test_case "dpd" `Quick test_buffers_dpd;
          Alcotest.test_case "marks expire" `Quick test_buffers_marks_and_expiry;
          Alcotest.test_case "block origin" `Quick test_buffers_block_origin;
          Alcotest.test_case "purge marked" `Quick test_buffers_purge_marked;
          Alcotest.test_case "wire round trip" `Quick
            test_buffers_wire_round_trip;
        ] );
      ( "delivery",
        [
          Alcotest.test_case "unordered weak" `Quick test_delivery_unordered_weak_immediate;
          Alcotest.test_case "total needs ordinal" `Quick test_delivery_total_needs_ordinal;
          Alcotest.test_case "gap blocks" `Quick test_delivery_total_gap_blocks;
          Alcotest.test_case "ordinal order" `Quick test_delivery_total_in_ordinal_order;
          Alcotest.test_case "strong deps" `Quick test_delivery_strong_needs_deps_received;
          Alcotest.test_case "strict stability" `Quick test_delivery_strict_needs_stability;
          Alcotest.test_case "timed waits" `Quick test_delivery_timed_waits;
          Alcotest.test_case "no redelivery" `Quick test_delivery_no_redelivery;
          Alcotest.test_case "blocked reason" `Quick test_delivery_blocked_reason;
        ] );
      ("rotation", [ Alcotest.test_case "ring" `Quick test_rotation ]);
      ( "protocol",
        [
          Alcotest.test_case "total order agreement" `Quick test_protocol_total_order_agreement;
          Alcotest.test_case "nack recovery" `Quick test_protocol_loss_recovery_via_nack;
          Alcotest.test_case "fifo per sender" `Quick test_protocol_fifo_per_sender;
          Alcotest.test_case "stability" `Quick test_protocol_stability_reported;
          qcheck prop_agreement_under_loss;
        ] );
      ( "dissemination",
        [
          Alcotest.test_case "queue push/drain" `Quick test_queue_push_drain;
          Alcotest.test_case "queue epoch invalidation" `Quick
            test_queue_epoch_invalidation;
          qcheck prop_queue_budget_and_epoch_monotone;
          Alcotest.test_case "probe targets" `Quick test_probe_targets;
        ] );
    ]
