(* Tests for the event-based dispatcher, the timing wheel and the
   thread-based comparison dispatcher (paper, Section 5). *)

let check = Alcotest.check
let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Dispatcher *)

let test_dispatcher_fifo () =
  let d = Eventloop.Dispatcher.create () in
  let seen = ref [] in
  Eventloop.Dispatcher.register d ~kind:0 (fun v -> seen := v :: !seen);
  List.iter (fun v -> Eventloop.Dispatcher.post d ~kind:0 v) [ 1; 2; 3 ];
  check Alcotest.int "queued" 3 (Eventloop.Dispatcher.queue_length d);
  check Alcotest.int "dispatched" 3 (Eventloop.Dispatcher.run_pending d);
  check (Alcotest.list Alcotest.int) "FIFO order" [ 1; 2; 3 ] (List.rev !seen)

let test_dispatcher_multi_kind () =
  let d = Eventloop.Dispatcher.create () in
  let a = ref 0 and b = ref 0 in
  Eventloop.Dispatcher.register d ~kind:1 (fun v -> a := !a + v);
  Eventloop.Dispatcher.register d ~kind:2 (fun v -> b := !b + v);
  Eventloop.Dispatcher.post d ~kind:1 10;
  Eventloop.Dispatcher.post d ~kind:2 20;
  Eventloop.Dispatcher.post d ~kind:1 1;
  ignore (Eventloop.Dispatcher.run_pending d);
  check Alcotest.int "kind 1" 11 !a;
  check Alcotest.int "kind 2" 20 !b

let test_dispatcher_reentrant_post () =
  (* a handler posting events must see them drained in the same
     run_pending call *)
  let d = Eventloop.Dispatcher.create () in
  let seen = ref [] in
  Eventloop.Dispatcher.register d ~kind:0 (fun v ->
      seen := v :: !seen;
      if v < 3 then Eventloop.Dispatcher.post d ~kind:0 (v + 1));
  Eventloop.Dispatcher.post d ~kind:0 0;
  check Alcotest.int "cascade" 4 (Eventloop.Dispatcher.run_pending d);
  check (Alcotest.list Alcotest.int) "order" [ 0; 1; 2; 3 ] (List.rev !seen)

let test_dispatcher_unregistered_dropped () =
  let d = Eventloop.Dispatcher.create () in
  Eventloop.Dispatcher.post d ~kind:9 1;
  ignore (Eventloop.Dispatcher.run_pending d);
  check Alcotest.int "dropped" 1 (Eventloop.Dispatcher.dropped d);
  check Alcotest.int "dispatched" 0 (Eventloop.Dispatcher.dispatched d)

let test_dispatcher_replace_handler () =
  let d = Eventloop.Dispatcher.create () in
  let v = ref 0 in
  Eventloop.Dispatcher.register d ~kind:0 (fun _ -> v := 1);
  Eventloop.Dispatcher.register d ~kind:0 (fun _ -> v := 2);
  Eventloop.Dispatcher.post d ~kind:0 ();
  ignore (Eventloop.Dispatcher.run_pending d);
  check Alcotest.int "replaced" 2 !v

let test_dispatcher_unregister () =
  let d = Eventloop.Dispatcher.create () in
  Eventloop.Dispatcher.register d ~kind:0 (fun _ -> ());
  Eventloop.Dispatcher.unregister d ~kind:0;
  Eventloop.Dispatcher.post d ~kind:0 ();
  ignore (Eventloop.Dispatcher.run_pending d);
  check Alcotest.int "dropped after unregister" 1
    (Eventloop.Dispatcher.dropped d)

let test_dispatcher_run_one () =
  let d = Eventloop.Dispatcher.create () in
  let n = ref 0 in
  Eventloop.Dispatcher.register d ~kind:0 (fun _ -> incr n);
  Eventloop.Dispatcher.post d ~kind:0 ();
  Eventloop.Dispatcher.post d ~kind:0 ();
  check Alcotest.bool "one" true (Eventloop.Dispatcher.run_one d);
  check Alcotest.int "only one" 1 !n;
  check Alcotest.bool "second" true (Eventloop.Dispatcher.run_one d);
  check Alcotest.bool "empty" false (Eventloop.Dispatcher.run_one d)

(* ------------------------------------------------------------------ *)
(* Timer wheel *)

let test_wheel_fires_in_order () =
  let w = Eventloop.Timer_wheel.create ~tick:10 () in
  let fired = ref [] in
  let arm at v =
    ignore
      (Eventloop.Timer_wheel.schedule w ~at (fun () -> fired := v :: !fired))
  in
  arm 35 "b";
  arm 15 "a";
  arm 95 "c";
  check Alcotest.int "pending" 3 (Eventloop.Timer_wheel.pending w);
  ignore (Eventloop.Timer_wheel.advance w ~to_:100);
  check (Alcotest.list Alcotest.string) "order" [ "a"; "b"; "c" ]
    (List.rev !fired);
  check Alcotest.int "none pending" 0 (Eventloop.Timer_wheel.pending w)

let test_wheel_cancel () =
  let w = Eventloop.Timer_wheel.create ~tick:10 () in
  let fired = ref 0 in
  let id = Eventloop.Timer_wheel.schedule w ~at:50 (fun () -> incr fired) in
  check Alcotest.bool "cancelled" true (Eventloop.Timer_wheel.cancel w id);
  check Alcotest.bool "double cancel" false (Eventloop.Timer_wheel.cancel w id);
  ignore (Eventloop.Timer_wheel.advance w ~to_:100);
  check Alcotest.int "never fired" 0 !fired

let test_wheel_rearm_churn () =
  (* regression: cancel used to leave cancelled timers resident in
     their buckets until the wheel swept past the slot. A live node
     re-arms its failure-detector timers on every received message —
     thousands of cancel/schedule cycles with time barely advancing —
     so stale residents made bucket scans (and memory) grow without
     bound. After the fix, cancellation purges the bucket: residency
     must stay bounded by the number of genuinely pending timers. *)
  let w = Eventloop.Timer_wheel.create ~wheel_size:64 ~tick:10 () in
  let fired = ref 0 in
  let id = ref (Eventloop.Timer_wheel.schedule w ~at:500 (fun () -> incr fired)) in
  for _ = 1 to 10_000 do
    check Alcotest.bool "cancelled" true (Eventloop.Timer_wheel.cancel w !id);
    (* same slot every time: the worst case for bucket growth *)
    id := Eventloop.Timer_wheel.schedule w ~at:500 (fun () -> incr fired)
  done;
  check Alcotest.int "one pending timer" 1 (Eventloop.Timer_wheel.pending w);
  check Alcotest.int "one resident timer" 1 (Eventloop.Timer_wheel.resident w);
  check (Alcotest.option Alcotest.int) "next expiry visible" (Some 500)
    (Eventloop.Timer_wheel.next_expiry w);
  ignore (Eventloop.Timer_wheel.advance w ~to_:600);
  check Alcotest.int "survivor fires once" 1 !fired;
  check Alcotest.int "empty after firing" 0 (Eventloop.Timer_wheel.resident w);
  check (Alcotest.option Alcotest.int) "no expiry when idle" None
    (Eventloop.Timer_wheel.next_expiry w)

let test_wheel_wraps_rounds () =
  (* expiry far beyond one wheel revolution must still fire exactly once
     at the right tick *)
  let w = Eventloop.Timer_wheel.create ~wheel_size:8 ~tick:1 () in
  let fired_at = ref [] in
  for i = 1 to 40 do
    ignore
      (Eventloop.Timer_wheel.schedule w ~at:i (fun () ->
           fired_at := i :: !fired_at))
  done;
  ignore (Eventloop.Timer_wheel.advance w ~to_:40);
  check (Alcotest.list Alcotest.int) "all fire in order"
    (List.init 40 (fun i -> i + 1))
    (List.rev !fired_at)

let test_wheel_past_deadline_fires_next_tick () =
  let w = Eventloop.Timer_wheel.create ~tick:10 () in
  ignore (Eventloop.Timer_wheel.advance w ~to_:100);
  let fired = ref false in
  ignore (Eventloop.Timer_wheel.schedule w ~at:50 (fun () -> fired := true));
  ignore (Eventloop.Timer_wheel.advance w ~to_:110);
  check Alcotest.bool "clamped to next tick" true !fired

let test_wheel_reentrant_schedule () =
  (* periodic re-arming from inside a callback *)
  let w = Eventloop.Timer_wheel.create ~tick:10 () in
  let count = ref 0 in
  let rec arm at =
    ignore
      (Eventloop.Timer_wheel.schedule w ~at (fun () ->
           incr count;
           if !count < 5 then arm (at + 20)))
  in
  arm 20;
  ignore (Eventloop.Timer_wheel.advance w ~to_:200);
  check Alcotest.int "periodic firings" 5 !count

let prop_wheel_all_fire_once =
  QCheck.Test.make ~name:"every scheduled timer fires exactly once"
    QCheck.(list_of_size (Gen.int_range 1 60) (int_range 1 500))
    (fun ats ->
      let w = Eventloop.Timer_wheel.create ~wheel_size:16 ~tick:7 () in
      let fired = ref 0 in
      List.iter
        (fun at ->
          ignore (Eventloop.Timer_wheel.schedule w ~at (fun () -> incr fired)))
        ats;
      ignore (Eventloop.Timer_wheel.advance w ~to_:1000);
      !fired = List.length ats && Eventloop.Timer_wheel.pending w = 0)

(* ------------------------------------------------------------------ *)
(* Threaded dispatcher *)

let test_threaded_processes_all () =
  let d = Eventloop.Threaded.create () in
  let counters = Array.make 4 0 in
  let mutex = Mutex.create () in
  for k = 0 to 3 do
    Eventloop.Threaded.register d ~kind:k (fun v ->
        Mutex.lock mutex;
        counters.(k) <- counters.(k) + v;
        Mutex.unlock mutex)
  done;
  for i = 0 to 399 do
    Eventloop.Threaded.post d ~kind:(i mod 4) 1
  done;
  Eventloop.Threaded.drain d;
  check Alcotest.int "all dispatched" 400 (Eventloop.Threaded.dispatched d);
  Array.iter (fun c -> check Alcotest.int "per kind" 100 c) counters;
  Eventloop.Threaded.shutdown d

let test_threaded_unknown_kind () =
  let d = Eventloop.Threaded.create () in
  Eventloop.Threaded.register d ~kind:0 (fun () -> ());
  Alcotest.check_raises "unknown kind"
    (Invalid_argument "Threaded.post: unknown event kind") (fun () ->
      Eventloop.Threaded.post d ~kind:7 ());
  Eventloop.Threaded.shutdown d

let test_threaded_double_register () =
  let d = Eventloop.Threaded.create () in
  Eventloop.Threaded.register d ~kind:0 (fun () -> ());
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Threaded.register: kind registered twice") (fun () ->
      Eventloop.Threaded.register d ~kind:0 (fun () -> ()));
  Eventloop.Threaded.shutdown d

let test_threaded_serialized_handlers () =
  (* at most one handler runs at a time: a racy counter must still be
     exact because the handover token serializes handlers *)
  let d = Eventloop.Threaded.create () in
  let counter = ref 0 in
  for k = 0 to 7 do
    Eventloop.Threaded.register d ~kind:k (fun () ->
        let v = !counter in
        (* no mutex here on purpose: serialization must protect us *)
        counter := v + 1)
  done;
  for i = 0 to 799 do
    Eventloop.Threaded.post d ~kind:(i mod 8) ()
  done;
  Eventloop.Threaded.drain d;
  check Alcotest.int "exact count without handler locking" 800 !counter;
  Eventloop.Threaded.shutdown d

(* ------------------------------------------------------------------ *)
(* Crash/recover delivery semantics of the simulation engine's event
   loop (see engine.mli, crash_at). Two behaviors are pinned here: a
   datagram in flight across a receiver crash/recovery pair is handed
   to the NEW incarnation (the network does not know about process
   restarts), while a timer armed before the crash never fires after
   recovery (pending timer events carry the arming incarnation). *)

module Time = Tasim.Time
module Proc_id = Tasim.Proc_id
module Engine = Tasim.Engine

type probe_msg = Mark of int

(* deterministic 5ms transmission delay so the crash/recover window can
   be placed precisely inside the flight time *)
let fixed_delay_config =
  {
    Engine.default_config with
    Engine.net =
      {
        Tasim.Net.default_config with
        Tasim.Net.delay_min = Time.of_ms 5;
        delay_max = Time.of_ms 5;
      };
  }

let test_inflight_delivery_reaches_new_incarnation () =
  let received = ref [] in
  let a =
    {
      Engine.name = "inc-probe";
      init =
        (fun ~self ~n:_ ~clock:_ ~incarnation ->
          let effects =
            if Proc_id.to_int self = 0 && incarnation = 0 then
              [ Engine.Send (Proc_id.of_int 1, Mark 7) ]
            else []
          in
          (incarnation, effects));
      on_receive =
        (fun inc ~clock:_ ~src:_ (Mark k) ->
          received := (inc, k) :: !received;
          (inc, []));
      on_timer = (fun inc ~clock:_ ~key:_ -> (inc, []));
    }
  in
  let engine = Engine.create fixed_delay_config ~n:2 in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  Engine.add_process engine (Proc_id.of_int 1) a ~clock:Engine.ideal_clock ();
  (* the datagram is sent at t=0 and lands at t=5ms; the receiver
     crashes and recovers entirely within the flight window *)
  Engine.crash_at engine (Time.of_ms 1) (Proc_id.of_int 1);
  Engine.recover_at engine (Time.of_ms 3) (Proc_id.of_int 1);
  Engine.run engine ~until:(Time.of_sec 1);
  match !received with
  | [ (inc, 7) ] ->
    Alcotest.check Alcotest.int "delivered to the new incarnation" 1 inc
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l)

let test_precrash_timer_suppressed () =
  let fired = ref [] in
  let a =
    {
      Engine.name = "timer-guard";
      init =
        (fun ~self:_ ~n:_ ~clock ~incarnation ->
          ( incarnation,
            [
              Engine.Set_timer
                { key = 1; at_clock = Time.add clock (Time.of_ms 10) };
            ] ));
      on_receive = (fun inc ~clock:_ ~src:_ (Mark _) -> (inc, []));
      on_timer =
        (fun inc ~clock ~key:_ ->
          fired := (inc, clock) :: !fired;
          (inc, []));
    }
  in
  let engine = Engine.create fixed_delay_config ~n:1 in
  Engine.add_process engine (Proc_id.of_int 0) a ~clock:Engine.ideal_clock ();
  (* incarnation 0 arms a timer for t=10ms, then crashes at 5ms; the
     recovered incarnation re-arms for t=16ms. Only the latter fires. *)
  Engine.crash_at engine (Time.of_ms 5) (Proc_id.of_int 0);
  Engine.recover_at engine (Time.of_ms 6) (Proc_id.of_int 0);
  Engine.run engine ~until:(Time.of_sec 1);
  match !fired with
  | [ (inc, at) ] ->
    Alcotest.check Alcotest.int "fired in the new incarnation" 1 inc;
    Alcotest.check Alcotest.bool "the stale arming never fired" true
      (at >= Time.of_ms 16)
  | l -> Alcotest.failf "expected one firing, got %d" (List.length l)

let () =
  Alcotest.run "eventloop"
    [
      ( "dispatcher",
        [
          Alcotest.test_case "fifo" `Quick test_dispatcher_fifo;
          Alcotest.test_case "multi kind" `Quick test_dispatcher_multi_kind;
          Alcotest.test_case "reentrant post" `Quick test_dispatcher_reentrant_post;
          Alcotest.test_case "unregistered dropped" `Quick
            test_dispatcher_unregistered_dropped;
          Alcotest.test_case "replace handler" `Quick test_dispatcher_replace_handler;
          Alcotest.test_case "unregister" `Quick test_dispatcher_unregister;
          Alcotest.test_case "run_one" `Quick test_dispatcher_run_one;
        ] );
      ( "timer wheel",
        [
          Alcotest.test_case "fires in order" `Quick test_wheel_fires_in_order;
          Alcotest.test_case "cancel" `Quick test_wheel_cancel;
          Alcotest.test_case "re-arm churn stays bounded" `Quick
            test_wheel_rearm_churn;
          Alcotest.test_case "wraps rounds" `Quick test_wheel_wraps_rounds;
          Alcotest.test_case "past deadline" `Quick
            test_wheel_past_deadline_fires_next_tick;
          Alcotest.test_case "reentrant" `Quick test_wheel_reentrant_schedule;
          qcheck prop_wheel_all_fire_once;
        ] );
      ( "threaded",
        [
          Alcotest.test_case "processes all" `Quick test_threaded_processes_all;
          Alcotest.test_case "unknown kind" `Quick test_threaded_unknown_kind;
          Alcotest.test_case "double register" `Quick test_threaded_double_register;
          Alcotest.test_case "serialized" `Quick test_threaded_serialized_handlers;
        ] );
      ( "engine delivery semantics",
        [
          Alcotest.test_case "in-flight datagram across crash/recover" `Quick
            test_inflight_delivery_reaches_new_incarnation;
          Alcotest.test_case "pre-crash timer suppressed" `Quick
            test_precrash_timer_suppressed;
        ] );
    ]
